// experiments runs the full reproduction suite — every figure and claim
// from the paper's evaluation (see EXPERIMENTS.md for the index) — and
// prints a paper-vs-measured report. Each experiment is pass/fail on the
// *shape* of the result: who fails, who succeeds, what stat observes, what
// gets counted.
package main

import (
	"fmt"
	"os"
	"strings"

	"repro/internal/baseline"
	"repro/internal/build"
	"repro/internal/cas"
	"repro/internal/container"
	"repro/internal/core"
	"repro/internal/errno"
	"repro/internal/image"
	"repro/internal/pkgmgr"
	"repro/internal/seccomp"
	"repro/internal/simos"
	"repro/internal/sysarch"
	"repro/internal/vfs"
)

var failures int

func check(id, claim string, ok bool, measured string) {
	status := "PASS"
	if !ok {
		status = "FAIL"
		failures++
	}
	fmt.Printf("%-4s %-4s %-58s %s\n", id, status, claim, measured)
}

func fixtures() (*pkgmgr.World, *image.Store) {
	w := pkgmgr.NewWorld()
	s := image.NewStore()
	for _, d := range []struct{ distro, name string }{
		{pkgmgr.DistroAlpine, "alpine:3.19"},
		{pkgmgr.DistroCentOS7, "centos:7"},
		{pkgmgr.DistroDebian, "debian:12"},
	} {
		img, err := w.BaseImage(d.distro, d.name)
		if err != nil {
			panic(err)
		}
		s.Put(img)
	}
	return w, s
}

func runBuild(text string, opt build.Options) (*build.Result, string, error) {
	var out strings.Builder
	opt.Output = &out
	opt.Tag = "win"
	res, err := build.Build(text, opt)
	return res, out.String(), err
}

func main() {
	fmt.Println("Zero-consistency root emulation — reproduction report")
	fmt.Println(strings.Repeat("=", 100))

	// E1 (Fig. 1a)
	{
		w, s := fixtures()
		_, tr, err := runBuild("FROM alpine:3.19\nRUN apk add sl\n",
			build.Options{World: w, Store: s, Force: build.ForceNone})
		check("E1", "Fig 1a: apk build succeeds with NO emulation",
			err == nil && strings.Contains(tr, "OK: 8 MiB in 18 packages"),
			firstLineMatching(tr, "OK:"))
	}
	// E2 (Fig. 1b)
	{
		w, s := fixtures()
		_, tr, err := runBuild("FROM centos:7\nRUN yum install -y openssh\n",
			build.Options{World: w, Store: s, Force: build.ForceNone})
		check("E2", "Fig 1b: yum build FAILS at cpio chown with no emulation",
			err != nil && strings.Contains(tr, "cpio: chown failed - Invalid argument"),
			firstLineMatching(tr, "cpio"))
	}
	// E3 (Fig. 2)
	{
		w, s := fixtures()
		res, tr, err := runBuild("FROM centos:7\nRUN yum install -y openssh\n",
			build.Options{World: w, Store: s, Force: build.ForceSeccomp})
		check("E3", "Fig 2: same build succeeds under seccomp, 0 RUNs modified",
			err == nil && res.ModifiedRuns == 0 && strings.Contains(tr, "Complete!"),
			fmt.Sprintf("faked=%d modified=%d", res.Counters.Faked, res.ModifiedRuns))
	}
	// E4 (§5 table)
	{
		inv := core.Inventory(core.VariantCharliecloud)
		byClass := core.InventoryByClass(core.VariantCharliecloud)
		prog, _ := core.Generate(core.Config{})
		ok := len(inv) == 29 && len(byClass[core.ClassOwnership]) == 7 &&
			len(byClass[core.ClassIdentity]) == 19 &&
			len(byClass[core.ClassMknod]) == 2 && len(byClass[core.ClassSelfTest]) == 1 &&
			len(sysarch.All()) == 6 && prog.ValidateSeccomp() == nil
		check("E4", "29 syscalls in 4 classes, valid filter for 6 arches", ok,
			fmt.Sprintf("%d syscalls, %d BPF insns", len(inv), len(prog)))
	}
	// E5 (mknod argument inspection)
	{
		f := core.MustNewFilter(core.Config{})
		nr := sysarch.X8664.MustNumber("mknod")
		chr := seccomp.Data{NR: int32(nr), Arch: sysarch.AuditArchX8664, Args: [6]uint64{0, 0x2000 | 0o666, 0}}
		fifo := seccomp.Data{NR: int32(nr), Arch: sysarch.AuditArchX8664, Args: [6]uint64{0, 0x1000 | 0o644, 0}}
		devRet := f.EvaluateData(&chr)
		fifoRet := f.EvaluateData(&fifo)
		check("E5", "mknod: device faked, FIFO executed",
			seccomp.Action(devRet) == seccomp.RetErrnoBase && fifoRet == seccomp.RetAllow,
			fmt.Sprintf("chr=%s fifo=%s", seccomp.ActionName(devRet), seccomp.ActionName(fifoRet)))
	}
	// E6 (kexec self-test, simulated; the native variant lives in
	// internal/seccomp's tests and cmd/seccomp-probe)
	{
		k := simos.NewKernel()
		p := k.NewInitProc(simos.Mount{FS: vfs.New(), Owner: k.InitNS()}, 1000, 1000)
		img := vfs.New()
		img.ChownAll(1000, 1000)
		container.Enter(p, container.Options{Type: container.TypeIII, RootFS: img})
		before := p.KexecLoad()
		p.Prctl(simos.PrSetNoNewPrivs, 1)
		p.SeccompInstall(core.MustNewFilter(core.Config{}))
		after := p.KexecLoad()
		check("E6", "kexec_load: EPERM before filter, success after",
			before == errno.EPERM && after == errno.OK,
			fmt.Sprintf("before=%s after=%s", before.Name(), after.Name()))
	}
	// E7 (apt exception, 3 regimes)
	{
		w, s := fixtures()
		_, _, errNone := runBuild("FROM debian:12\nRUN apt-get install -y curl\n",
			build.Options{World: w, Store: s, Force: build.ForceNone})
		w2, s2 := fixtures()
		_, tr2, errNoFix := runBuild("FROM debian:12\nRUN apt-get install -y curl\n",
			build.Options{World: w2, Store: s2, Force: build.ForceSeccomp, DisableAptWorkaround: true})
		w3, s3 := fixtures()
		res3, _, errFix := runBuild("FROM debian:12\nRUN apt-get install -y curl\n",
			build.Options{World: w3, Store: s3, Force: build.ForceSeccomp})
		ok := errNone != nil && errNoFix != nil && errFix == nil &&
			res3.ModifiedRuns == 1 &&
			strings.Contains(tr2, "reported success but uids are still")
		check("E7", "apt: fails w/o fix (drop verified), works with injection", ok,
			fmt.Sprintf("modified=%d", res3.ModifiedRuns))
	}
	// E8 (overhead order, modeled time per syscall)
	{
		vns := func(setup func(p *simos.Proc), probe func(p *simos.Proc)) int64 {
			k := simos.NewKernel()
			p := k.NewInitProc(simos.Mount{FS: vfs.New(), Owner: k.InitNS()}, 1000, 1000)
			img := vfs.New()
			rc := vfs.RootContext()
			img.MkdirAll(rc, "/data", 0o755, 1000, 1000)
			img.WriteFile(rc, "/data/f", []byte("x"), 0o644, 1000, 1000)
			img.ChownAll(1000, 1000)
			container.Enter(p, container.Options{Type: container.TypeIII, RootFS: img})
			setup(p)
			k.ResetVirtualTime()
			const n = 1000
			for i := 0; i < n; i++ {
				probe(p)
			}
			return k.VirtualNanos() / n
		}
		stat := func(p *simos.Proc) { p.Stat("/data/f") }
		none := vns(func(*simos.Proc) {}, stat)
		sec := vns(func(p *simos.Proc) {
			p.Prctl(simos.PrSetNoNewPrivs, 1)
			p.SeccompInstall(core.MustNewFilter(core.Config{}))
		}, stat)
		pro := vns(func(p *simos.Proc) { baseline.NewPRoot().Attach(p) }, stat)
		fr := baseline.NewFakeroot()
		fake := vns(func(p *simos.Proc) { p.AddPreload(fr.Hook()) },
			func(p *simos.Proc) {
				c := &simos.CLib{P: p, Hooks: p.Preloads()}
				c.Stat("/data/f")
			})
		ok := none < sec && sec*10 < fake && fake < pro
		check("E8", "overhead: none < seccomp << fakeroot < proot (modeled ns)", ok,
			fmt.Sprintf("none=%d seccomp=%d fakeroot=%d proot=%d", none, sec, fake, pro))
	}
	// E9 (simplicity: intercept surface and state)
	{
		w, s := fixtures()
		resS, _, _ := runBuild("FROM centos:7\nRUN yum install -y openssh\n",
			build.Options{World: w, Store: s, Force: build.ForceSeccomp})
		w2, s2 := fixtures()
		resF, _, _ := runBuild("FROM centos:7\nRUN yum install -y openssh\n",
			build.Options{World: w2, Store: s2, Force: build.ForceFakeroot})
		ok := resS.FakerootRecords == 0 && resF.FakerootRecords > 0 &&
			len(core.Inventory(core.VariantCharliecloud)) == 29
		check("E9", "seccomp: zero state; fakeroot: per-file records", ok,
			fmt.Sprintf("seccomp=%d records, fakeroot=%d records",
				resS.FakerootRecords, resF.FakerootRecords))
	}
	// E10 / E11 are asserted by TestCompatibilityMatrix /
	// TestConsistencyMatrix; summarize the key cell here.
	{
		k := simos.NewKernel()
		fs := vfs.New()
		rc := vfs.RootContext()
		fs.Chmod(rc, "/", 0o777, true)
		p := k.NewInitProc(simos.Mount{FS: fs, Owner: k.InitNS()}, 1000, 1000)
		fs.ChownAll(1000, 1000)
		fs.MkdirAll(rc, "/bin", 0o755, 1000, 1000)
		fs.WriteFile(rc, "/bin/probe", []byte("ELF"), 0o755, 1000, 1000)
		p.WriteFileAll("/f", []byte("x"), 0o644)
		p.AddPreload(baseline.NewFakeroot().Hook())
		reg := simos.NewBinaryRegistry()
		reg.Register("/bin/probe", &simos.Binary{Name: "probe", Static: true,
			Main: func(ctx *simos.ExecCtx) int {
				if e := ctx.C.Chown("/f", 74, 74); e != errno.OK {
					return 1
				}
				return 0
			}})
		p.SetRegistry(reg)
		status, _ := p.Exec([]string{"/bin/probe"}, nil, nil, nil, nil)
		check("E10", "LD_PRELOAD emulation misses static binaries", status != 0,
			fmt.Sprintf("static chown exit=%d", status))
	}
	{
		k := simos.NewKernel()
		fs := vfs.New()
		fs.Chmod(vfs.RootContext(), "/", 0o777, true)
		p := k.NewInitProc(simos.Mount{FS: fs, Owner: k.InitNS()}, 1000, 1000)
		fs.ChownAll(1000, 1000)
		p.WriteFileAll("/f", []byte("x"), 0o644)
		p.Prctl(simos.PrSetNoNewPrivs, 1)
		p.SeccompInstall(core.MustNewFilter(core.Config{}))
		e := p.Chown("/f", 74, 74)
		st, _ := p.Stat("/f")
		check("E11", "zero consistency: chown 'succeeds', stat unchanged",
			e == errno.OK && st.UID != 74,
			fmt.Sprintf("chown=%s stat.uid=%d", e.Name(), st.UID))
	}
	// E12 (Type I/II/III)
	{
		mk := func() (*simos.Proc, *vfs.FS) {
			k := simos.NewKernel()
			p := k.NewInitProc(simos.Mount{FS: vfs.New(), Owner: k.InitNS()}, 1000, 1000)
			img := vfs.New()
			img.ChownAll(1000, 1000)
			return p, img
		}
		p1, i1 := mk()
		e1 := container.Enter(p1, container.Options{Type: container.TypeI, RootFS: i1})
		p2, i2 := mk()
		e2 := container.Enter(p2, container.Options{Type: container.TypeII, RootFS: i2})
		p2h, i2h := mk()
		e2h := container.Enter(p2h, container.Options{Type: container.TypeII, RootFS: i2h, Helper: true})
		p3, i3 := mk()
		e3 := container.Enter(p3, container.Options{Type: container.TypeIII, RootFS: i3})
		check("E12", "Type I/II need privilege or helpers; Type III does not",
			e1 != nil && e2 != nil && e2h == nil && e3 == nil,
			fmt.Sprintf("I=%v II=%v II+helper=%v III=%v", e1 != nil, e2 != nil, e2h == nil, e3 == nil))
	}
	// E13 (extended filter: setxattr)
	{
		k := simos.NewKernel()
		fs := vfs.New()
		fs.Chmod(vfs.RootContext(), "/", 0o777, true)
		p := k.NewInitProc(simos.Mount{FS: fs, Owner: k.InitNS()}, 1000, 1000)
		fs.ChownAll(1000, 1000)
		p.WriteFileAll("/bin-ping", []byte("ELF"), 0o755)
		before := p.Setxattr("/bin-ping", "security.capability", []byte{1})
		p.Prctl(simos.PrSetNoNewPrivs, 1)
		p.SeccompInstall(core.MustNewFilter(core.Config{Variant: core.VariantExtended}))
		after := p.Setxattr("/bin-ping", "security.capability", []byte{1})
		check("E13", "extended filter fakes setxattr (future work 1)",
			before == errno.EPERM && after == errno.OK,
			fmt.Sprintf("before=%s after=%s", before.Name(), after.Name()))
	}
	// E14 (ID consistency via USER_NOTIF removes the apt workaround need —
	// at the syscall level: the supervisor records and answers get*).
	{
		k := simos.NewKernel()
		p := k.NewInitProc(simos.Mount{FS: vfs.New(), Owner: k.InitNS()}, 1000, 1000)
		img := vfs.New()
		img.ChownAll(1000, 1000)
		container.Enter(p, container.Options{Type: container.TypeIII, RootFS: img})
		p.Prctl(simos.PrSetNoNewPrivs, 1)
		var recorded int
		p.SetNotifier(simos.NotifierFunc(func(pp *simos.Proc, name string, args []uint64) errno.Errno {
			recorded++
			return errno.OK
		}))
		p.SeccompInstall(core.MustNewFilter(core.Config{IDConsistency: true}))
		e := p.Setresuid(100, 100, 100)
		check("E14", "IDConsistency routes identity calls to a supervisor",
			e == errno.OK && recorded == 1,
			fmt.Sprintf("notif events=%d", recorded))
	}
	// E16 (seccomp/BPF semantics)
	{
		progLin, _ := core.Generate(core.Config{})
		progTree, _ := core.Generate(core.Config{Strategy: core.DispatchTree})
		agree := true
		fLin := core.MustNewFilter(core.Config{})
		fTree := core.MustNewFilter(core.Config{Strategy: core.DispatchTree})
		for _, arch := range sysarch.All() {
			for nr := int32(0); nr < 420; nr++ {
				d := seccomp.Data{NR: nr, Arch: arch.AuditArch}
				if fLin.EvaluateData(&d) != fTree.EvaluateData(&d) {
					agree = false
				}
			}
		}
		check("E16", "verifier-valid programs; linear & tree dispatch agree",
			progLin.ValidateSeccomp() == nil && progTree.ValidateSeccomp() == nil && agree,
			fmt.Sprintf("linear=%d insns, tree=%d insns", len(progLin), len(progTree)))
	}

	// E17 (parallel build farm): the whole E15 matrix submitted to one
	// build.Pool — every job shares one store and one instruction cache —
	// must reproduce exactly the serial pass/fail shapes, and the shared
	// flatten cache must fill once per distro chain however many builders
	// raced on it.
	{
		w, s := fixtures()
		cache := build.NewCache()
		workloads := []struct {
			key, text string
			failNone  bool
		}{
			{"apk", "FROM alpine:3.19\nRUN apk add sl\n", false},
			{"yum", "FROM centos:7\nRUN yum install -y openssh\n", true},
			{"apt", "FROM debian:12\nRUN apt-get install -y curl\n", true},
		}
		modes := []build.ForceMode{build.ForceNone, build.ForceSeccomp, build.ForceFakeroot, build.ForceProot}
		var jobs []build.Job
		wantFail := map[string]bool{}
		for _, wl := range workloads {
			for _, m := range modes {
				name := wl.key + "/" + m.String()
				wantFail[name] = wl.failNone && m == build.ForceNone
				jobs = append(jobs, build.Job{
					Name:       name,
					Dockerfile: wl.text,
					Options: build.Options{
						Tag: "pool-" + wl.key + "-" + m.String(), Force: m,
						Store: s, World: w, Cache: cache,
					},
				})
			}
		}
		results, _ := (&build.Pool{Workers: 4}).Run(jobs)
		shapesOK := true
		for _, r := range results {
			if (r.Err != nil) != wantFail[r.Name] {
				shapesOK = false
			}
		}
		check("E17", "pool: 12-job matrix matches serial shapes, 3 flatten fills",
			shapesOK && s.FlattenFills() == len(workloads),
			fmt.Sprintf("jobs=%d fills=%d", len(results), s.FlattenFills()))
	}

	// E18 (multi-stage builder pattern): a build stage does the privileged
	// package install under seccomp, a slim runtime stage copies only the
	// artifact out of it, and an unreferenced debug stage is pruned. The
	// runtime image must carry the artifact byte-for-byte without any of
	// the build stage's rootfs.
	{
		w, s := fixtures()
		text := `FROM centos:7 AS build
RUN yum install -y openssh
RUN mkdir -p /opt && echo solver-bin > /opt/solver && chmod 755 /opt/solver

FROM alpine:3.19 AS debug
RUN apk add sl

FROM alpine:3.19
COPY --from=build /opt/solver /app/solver
CMD ["/app/solver"]
`
		res, _, err := runBuild(text, build.Options{World: w, Store: s, Force: build.ForceSeccomp})
		ok := err == nil && res.StagesBuilt == 2 && res.StagesSkipped == 1
		var artifact []byte
		if ok {
			if fs, ferr := res.Image.Flatten(); ferr == nil {
				rc := vfs.RootContext()
				artifact, _ = fs.ReadFile(rc, "/app/solver")
				// Slim: nothing of the centos build stage leaks through.
				ok = string(artifact) == "solver-bin\n" && !fs.Exists(rc, "/etc/centos-release")
			} else {
				ok = false
			}
		}
		check("E18", "multi-stage: slim runtime gets artifact, debug pruned", ok,
			fmt.Sprintf("built=%d skipped=%d artifact=%q", res.StagesBuilt, res.StagesSkipped,
				strings.TrimSpace(string(artifact))))
	}

	// E19 (persistent cache): two separate invocations — completely fresh
	// worlds, stores and instruction caches, sharing only an on-disk
	// cas directory — of the E18 builder pattern. The second must run
	// fully warm: every instruction a cache hit, nothing executed, and
	// the flatten chains rehydrated from persisted snapshots instead of
	// filled (zero fills).
	{
		text := `FROM centos:7 AS build
RUN yum install -y openssh
RUN mkdir -p /opt && echo solver-bin > /opt/solver

FROM alpine:3.19
COPY --from=build /opt/solver /app/solver
`
		dir, err := os.MkdirTemp("", "e19-cas-")
		if err != nil {
			panic(err)
		}
		defer os.RemoveAll(dir)
		invoke := func() (*build.Result, *image.Store, error) {
			d, _, err := cas.Open(dir)
			if err != nil {
				return nil, nil, err
			}
			defer d.Close()
			w := pkgmgr.NewWorld()
			s := image.NewStore()
			s.SetBacking(d)
			for _, db := range []struct{ distro, name string }{
				{pkgmgr.DistroCentOS7, "centos:7"},
				{pkgmgr.DistroAlpine, "alpine:3.19"},
			} {
				img, err := w.BaseImage(db.distro, db.name)
				if err != nil {
					return nil, nil, err
				}
				s.Put(img)
			}
			res, err := build.Build(text, build.Options{
				Tag: "e19:1", Force: build.ForceSeccomp,
				Store: s, World: w, Cache: build.NewPersistentCache(d),
			})
			return res, s, err
		}
		cold, _, err1 := invoke()
		warm, s2, err2 := invoke()
		ok := err1 == nil && err2 == nil &&
			cold.Executed > 0 && warm.Executed == 0 &&
			warm.CacheHits == cold.Executed && s2.FlattenFills() == 0
		measured := "build failed"
		if err1 == nil && err2 == nil {
			measured = fmt.Sprintf("cold executed=%d; warm executed=%d hits=%d fills=%d rehydrates=%d",
				cold.Executed, warm.Executed, warm.CacheHits, s2.FlattenFills(), s2.Rehydrates())
		}
		check("E19", "persistent cache: 2nd invocation fully warm from disk", ok, measured)
	}

	fmt.Println(strings.Repeat("=", 100))
	if failures > 0 {
		fmt.Printf("%d experiment(s) FAILED\n", failures)
		os.Exit(1)
	}
	fmt.Println("all experiments reproduce the paper's shapes")
}

func firstLineMatching(s, sub string) string {
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, sub) {
			return strings.TrimSpace(line)
		}
	}
	return "(no match)"
}
