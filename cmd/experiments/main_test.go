package main

import "testing"

// Smoke test: the full E1–E16 reproduction report must pass. main calls
// os.Exit(1) when any experiment's shape deviates, which fails the test
// binary.
func TestAllExperimentsReproduce(t *testing.T) {
	main()
}
