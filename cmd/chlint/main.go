// Command chlint is the project's static-analysis gate: six
// stdlib-only analyzers (go/parser + go/types, no external modules)
// that machine-check the build engine's safety contracts. See
// docs/analysis.md for the invariants and the //chlint:allow
// suppression grammar.
//
// Usage:
//
//	chlint [-C dir] [-o report] [-list] [patterns ...]
//
// Patterns are import paths or directories, optionally suffixed with
// /... for a recursive walk (default: ./...). Exit status is 0 when
// clean, 1 when findings are reported, 2 on usage or load errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

var all = analysis.All()

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("chlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	chdir := fs.String("C", "", "module root to analyze (default: walk up from cwd to go.mod)")
	report := fs.String("o", "", "also write findings to this file (written even when clean, so CI can archive it)")
	list := fs.Bool("list", false, "list analyzers and exit")
	only := fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: chlint [-C dir] [-o report] [-run names] [patterns ...]\n\nAnalyzers:\n")
		for _, a := range all {
			fmt.Fprintf(stderr, "  %-15s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(stderr, "\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range all {
			fmt.Fprintf(stdout, "%-15s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := all
	if *only != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "chlint: unknown analyzer %q\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	modRoot := *chdir
	if modRoot == "" {
		var err error
		modRoot, err = findModRoot()
		if err != nil {
			fmt.Fprintf(stderr, "chlint: %v\n", err)
			return 2
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := analysis.NewLoader(modRoot)
	if err != nil {
		fmt.Fprintf(stderr, "chlint: %v\n", err)
		return 2
	}
	pkgs, err := loader.LoadPatterns(patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "chlint: %v\n", err)
		return 2
	}
	prog := &analysis.Program{Fset: loader.Fset, Packages: pkgs}
	findings := analysis.Run(prog, analyzers)

	// Findings arrive position-sorted from analysis.Run; path shortening
	// preserves that order, so no re-sort (a lexical sort would put
	// line 100 before line 99).
	var lines []string
	for _, f := range findings {
		lines = append(lines, shortenPath(modRoot, f))
	}
	body := strings.Join(lines, "\n")
	if body != "" {
		body += "\n"
	}
	if *report != "" {
		header := fmt.Sprintf("chlint: %d finding(s) over %d package(s)\n", len(findings), len(pkgs))
		if err := os.WriteFile(*report, []byte(header+body), 0o644); err != nil {
			fmt.Fprintf(stderr, "chlint: %v\n", err)
			return 2
		}
	}
	if len(findings) == 0 {
		return 0
	}
	fmt.Fprint(stdout, body)
	fmt.Fprintf(stderr, "chlint: %d finding(s)\n", len(findings))
	return 1
}

// shortenPath renders a finding with the filename relative to the
// module root, so output and report files are machine-stable.
func shortenPath(modRoot string, f analysis.Finding) string {
	if rel, err := filepath.Rel(modRoot, f.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		f.Pos.Filename = rel
	}
	return f.String()
}

// findModRoot walks up from the working directory to the nearest
// go.mod.
func findModRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
