package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func modRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	return root
}

func devNull(t *testing.T) *os.File {
	t.Helper()
	f, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func TestListExitsZero(t *testing.T) {
	null := devNull(t)
	if got := run([]string{"-list"}, null, null); got != 0 {
		t.Fatalf("chlint -list = %d, want 0", got)
	}
}

func TestUnknownAnalyzerIsUsageError(t *testing.T) {
	null := devNull(t)
	if got := run([]string{"-run", "nosuch", "./..."}, null, null); got != 2 {
		t.Fatalf("chlint -run nosuch = %d, want 2", got)
	}
}

// TestRepoIsClean is the command-level self-check: the shipped binary,
// pointed at the repository with default flags, exits 0. CI runs
// exactly this invocation.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-repo type-check is slow; run without -short")
	}
	null := devNull(t)
	report := filepath.Join(t.TempDir(), "report.txt")
	if got := run([]string{"-C", modRoot(t), "-o", report, "./..."}, null, null); got != 0 {
		data, _ := os.ReadFile(report)
		t.Fatalf("chlint ./... = %d, want 0; report:\n%s", got, data)
	}
	data, err := os.ReadFile(report)
	if err != nil {
		t.Fatalf("report not written on clean run: %v", err)
	}
	if !strings.Contains(string(data), "0 finding(s)") {
		t.Fatalf("clean report header missing, got: %q", data)
	}
}

// TestSeededViolationsGoRed is the negative smoke: chlint pointed at a
// deliberately violating corpus package must exit 1 and name the
// analyzer — proof the CI gate actually fires, not just that the repo
// happens to be clean.
func TestSeededViolationsGoRed(t *testing.T) {
	null := devNull(t)
	report := filepath.Join(t.TempDir(), "report.txt")
	corpus := "./internal/analysis/testdata/src/ctxfirst"
	got := run([]string{"-C", modRoot(t), "-o", report, "-run", "ctxfirst", corpus}, null, null)
	if got != 1 {
		t.Fatalf("chlint %s = %d, want 1", corpus, got)
	}
	data, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "[ctxfirst]") {
		t.Fatalf("report does not name the analyzer:\n%s", data)
	}
}
