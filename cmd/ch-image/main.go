// ch-image is the simulated Charliecloud image builder: it builds
// Dockerfiles inside a fully unprivileged (Type III) simulated container
// with a selectable root-emulation mode, printing transcripts in the style
// of the paper's Figures 1 and 2.
//
// Usage:
//
//	ch-image build -t TAG[,TAG...] [-f DOCKERFILE] [--force=none|seccomp|fakeroot|proot]
//	               [--jobs N] [--target STAGE] [--cache-dir DIR] CONTEXT
//	ch-image cache --cache-dir DIR ls|gc [TAG...]|reset
//	ch-image list
//
// With a comma-separated tag list, one build per tag runs through
// build.Pool with up to --jobs concurrent builders, all sharing the image
// store and one instruction cache — the shared steps execute once and
// replay everywhere else.
//
// Multi-stage Dockerfiles (FROM ... AS name, COPY --from=stage) build
// through the stage DAG driver: independent stages run concurrently (also
// bounded by --jobs), unreferenced stages are pruned, and only the final
// stage is tagged; --target STAGE stops the build at a named stage and
// tags that instead. See docs/dockerfile-dialect.md for the full dialect.
// The simulated world ships base images alpine:3.19, centos:7 and
// debian:12 with their package repositories.
//
// --cache-dir DIR makes the build cache persistent (internal/cas): layer
// blobs, instruction-cache entries, tags and flatten-chain snapshots are
// written through to DIR, and the next ch-image invocation against the
// same DIR replays warm — "instructions executed: 0". The cache
// subcommands inspect (ls), garbage-collect (gc, optionally dropping the
// listed tags first) and wipe (reset) such a directory.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	"repro/internal/build"
	"repro/internal/cas"
	"repro/internal/image"
	"repro/internal/obs"
	"repro/internal/pkgmgr"
	"repro/internal/simos"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(1)
	}
	// SIGINT/SIGTERM cancel the command's context: an in-flight build
	// stops at its next instruction boundary, the cache handle closes
	// cleanly through the usual defers, and the process exits 130 like an
	// interrupted shell command. A second signal kills the process the
	// default way (stop() restores default disposition on the first).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	switch os.Args[1] {
	case "build":
		os.Exit(cmdBuild(ctx, os.Args[2:]))
	case "cache":
		os.Exit(cmdCache(ctx, os.Args[2:]))
	case "list":
		os.Exit(cmdList())
	default:
		usage()
		os.Exit(1)
	}
}

// exitInterrupted is the exit status of a build stopped by SIGINT/SIGTERM
// (128 + SIGINT, the shell convention).
const exitInterrupted = 130

func usage() {
	fmt.Fprintln(os.Stderr, "usage: ch-image build -t TAG[,TAG...] [-f DOCKERFILE] [--force=MODE] [--jobs N] [--target STAGE] [--cache-dir DIR] [--cache-verify=full|lazy] [--cache-max-bytes N] CONTEXT")
	fmt.Fprintln(os.Stderr, "       ch-image cache --cache-dir DIR [--cache-verify=full|lazy] [--lock-wait DUR] ls|gc [--max-bytes N] [TAG...]|reset")
	fmt.Fprintln(os.Stderr, "       ch-image list")
}

// verifyMode maps the --cache-verify flag onto cas.VerifyMode.
func verifyMode(s string) (cas.VerifyMode, error) {
	switch s {
	case "full":
		return cas.VerifyFull, nil
	case "lazy":
		return cas.VerifyLazy, nil
	}
	return 0, fmt.Errorf("unknown --cache-verify mode %q (want full or lazy)", s)
}

// openCacheDir opens the persistent store, reporting fsck findings the
// way fsck(8) would: loudly, but without failing the run.
func openCacheDir(dir string, opts ...cas.Option) (*cas.Dir, error) {
	d, rep, err := cas.Open(dir, opts...)
	if err != nil {
		return nil, err
	}
	if rep.Quarantined() {
		fmt.Fprintf(os.Stderr,
			"ch-image: cache-dir %s: quarantined %d corrupt blob(s) and %d journal line(s), dropped %d record(s); affected steps will re-execute\n",
			dir, rep.BlobsQuarantined, rep.JournalQuarantined, rep.RecordsDropped)
	}
	return d, nil
}

// seededStore builds the store of base images. With a cache dir the
// backing is attached before seeding, so base blobs and tags persist and
// later invocations can verify against them.
func seededStore(w *pkgmgr.World, d *cas.Dir) (*image.Store, error) {
	s := image.NewStore()
	if d != nil {
		s.SetBacking(d)
	}
	for _, db := range []struct{ distro, name string }{
		{pkgmgr.DistroAlpine, "alpine:3.19"},
		{pkgmgr.DistroCentOS7, "centos:7"},
		{pkgmgr.DistroDebian, "debian:12"},
	} {
		img, err := w.BaseImage(db.distro, db.name)
		if err != nil {
			return nil, err
		}
		s.Put(img)
	}
	return s, nil
}

func cmdBuild(ctx context.Context, args []string) int {
	// ContinueOnError, not ExitOnError: a bad flag must return exit 2
	// through the normal path (running deferred cleanups), not os.Exit
	// from inside the flag package.
	fs := flag.NewFlagSet("build", flag.ContinueOnError)
	tag := fs.String("t", "", "image tag, or a comma-separated list for a pooled multi-tag build")
	file := fs.String("f", "", "Dockerfile path (default CONTEXT/Dockerfile)")
	force := fs.String("force", "seccomp", "root emulation: none, seccomp, fakeroot, proot")
	noWorkaround := fs.Bool("no-apt-workaround", false, "disable the apt sandbox RUN rewriting")
	rebuild := fs.Bool("rebuild", false, "build twice to demonstrate the instruction cache")
	pushTo := fs.String("push", "", "after a successful build, push the image to this registry URL")
	strace := fs.String("strace", "", "trace syscalls: 'faked' (emulated only) or 'all'")
	trace := fs.Bool("trace", false, "when the build finishes, print its span tree (stages, instructions, cache outcomes) to stderr")
	jobs := fs.Int("jobs", 1, "concurrent builders for a multi-tag build and concurrent stages for a multi-stage build")
	target := fs.String("target", "", "stop the build at this stage (name or index) and tag it")
	cacheDir := fs.String("cache-dir", "", "persistent build-cache directory; warm rebuilds survive across invocations")
	cacheVerify := fs.String("cache-verify", "full", "cache-dir open validation: full (read every blob) or lazy (verify on first read)")
	cacheMaxBytes := fs.Int64("cache-max-bytes", 0, "after the build, evict least-recently-recorded cache entries until the cache-dir blob store fits this many bytes (0 = unbounded)")
	timeout := fs.Duration("timeout", 0, "whole-build deadline; an overrunning build fails at its next instruction boundary (0 = none)")
	instrTimeout := fs.Duration("instr-timeout", 0, "per-instruction deadline (0 = none)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *tag == "" {
		fmt.Fprintln(os.Stderr, "ch-image: -t TAG is required")
		return 2
	}
	if *jobs < 1 {
		fmt.Fprintf(os.Stderr, "ch-image: --jobs %d: must be at least 1\n", *jobs)
		return 2
	}
	tags := strings.Split(*tag, ",")
	for i, tg := range tags {
		tags[i] = strings.TrimSpace(tg)
		if tags[i] == "" {
			fmt.Fprintf(os.Stderr, "ch-image: empty tag in -t %q\n", *tag)
			return 2
		}
	}
	ctxDir := "."
	if fs.NArg() > 0 {
		ctxDir = fs.Arg(0)
	}
	dfPath := *file
	if dfPath == "" {
		dfPath = filepath.Join(ctxDir, "Dockerfile")
	}
	text, err := os.ReadFile(dfPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ch-image: %v\n", err)
		return 2
	}

	var mode build.ForceMode
	switch *force {
	case "none":
		mode = build.ForceNone
	case "seccomp":
		mode = build.ForceSeccomp
	case "fakeroot":
		mode = build.ForceFakeroot
	case "proot":
		mode = build.ForceProot
	default:
		fmt.Fprintf(os.Stderr, "ch-image: unknown --force mode %q\n", *force)
		return 2
	}

	// Load the build context (regular files only, one level of depth is
	// plenty for the examples).
	ctxFiles := map[string][]byte{}
	entries, err := os.ReadDir(ctxDir)
	if err == nil {
		for _, e := range entries {
			if e.Type().IsRegular() {
				if data, err := os.ReadFile(filepath.Join(ctxDir, e.Name())); err == nil {
					ctxFiles[e.Name()] = data
				}
			}
		}
	}

	verify, err := verifyMode(*cacheVerify)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ch-image: %v\n", err)
		return 2
	}
	var dir *cas.Dir
	if *cacheDir != "" {
		var err error
		if dir, err = openCacheDir(*cacheDir, cas.WithVerify(verify)); err != nil {
			fmt.Fprintf(os.Stderr, "ch-image: %v\n", err)
			return 2
		}
		defer dir.Close()
		// CH_IMAGE_CAS_FAULTS injects deterministic faults into the
		// persistent store (testing the degraded-operation contract
		// end to end; see internal/cas.ParseFaults for the syntax).
		if spec := os.Getenv("CH_IMAGE_CAS_FAULTS"); spec != "" {
			inj, err := cas.ParseFaults(spec)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ch-image: CH_IMAGE_CAS_FAULTS: %v\n", err)
				return 2
			}
			dir.SetFailpoints(inj)
		}
	}
	world := pkgmgr.NewWorld()
	store, err := seededStore(world, dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ch-image: %v\n", err)
		return 2
	}
	opts := build.Options{
		Tag: tags[0], Force: mode, Store: store, World: world,
		Context: ctxFiles, Output: os.Stdout,
		DisableAptWorkaround: *noWorkaround,
		StageJobs:            *jobs,
		TargetStage:          *target,
		BuildTimeout:         *timeout,
		InstrTimeout:         *instrTimeout,
	}
	if dir != nil {
		opts.Cache = build.NewPersistentCache(dir)
	} else if *rebuild || len(tags) > 1 {
		opts.Cache = build.NewCache()
	}
	switch *strace {
	case "":
	case "faked":
		opts.Tracer = func(ev simos.TraceEvent) {
			if ev.Faked {
				fmt.Fprintf(os.Stderr, "    [strace pid %d %s] %s(%s) = 0 (faked)\n",
					ev.PID, ev.Comm, ev.Name, ev.Detail)
			}
		}
	case "all":
		opts.Tracer = func(ev simos.TraceEvent) {
			suffix := ""
			if ev.Faked {
				suffix = " (faked)"
			}
			fmt.Fprintf(os.Stderr, "    [strace pid %d %s] %s(%s) = -%d%s\n",
				ev.PID, ev.Comm, ev.Name, ev.Detail, ev.Errno, suffix)
		}
	default:
		fmt.Fprintf(os.Stderr, "ch-image: unknown -strace mode %q\n", *strace)
		return 2
	}
	if len(tags) > 1 {
		if *strace != "" {
			fmt.Fprintln(os.Stderr, "ch-image: -strace does not combine with a multi-tag build")
			return 2
		}
		if *trace {
			fmt.Fprintln(os.Stderr, "ch-image: -trace does not combine with a multi-tag build")
			return 2
		}
		code := cmdBuildPool(ctx, string(text), tags, *jobs, opts, *rebuild, *pushTo)
		if code == 0 {
			budgetGC(ctx, store, *cacheMaxBytes)
		}
		warnDegraded(opts.Cache, store)
		return code
	}
	buildCtx, root := traceCtx(ctx, *trace, "build "+tags[0])
	res, err := build.BuildContext(buildCtx, string(text), opts)
	dumpTrace(root)
	if err != nil {
		return buildFailure(err)
	}
	if *rebuild {
		fmt.Println("--- rebuilding with warm cache ---")
		buildCtx, root = traceCtx(ctx, *trace, "rebuild "+tags[0])
		res, err = build.BuildContext(buildCtx, string(text), opts)
		dumpTrace(root)
		if err != nil {
			return buildFailure(err)
		}
		fmt.Printf("cache hits: %d\n", res.CacheHits)
	}
	if opts.Cache != nil {
		// The `make cache-smoke` assertion line: a second invocation
		// against the same --cache-dir must report 0 executed.
		fmt.Printf("instructions executed: %d (cache hits %d)\n", res.Executed, res.CacheHits)
	}
	budgetGC(ctx, store, *cacheMaxBytes)
	warnDegraded(opts.Cache, store)
	if *pushTo != "" {
		if err := image.Push(*pushTo, res.Image); err != nil {
			fmt.Fprintf(os.Stderr, "ch-image: push: %v\n", err)
			return 1
		}
		fmt.Printf("pushed %s to %s\n", res.Image.Name, *pushTo)
	}
	return 0
}

// traceCtx starts a trace on ctx when --trace asked for one; otherwise
// the context passes through untouched and the nil root makes dumpTrace
// a no-op.
func traceCtx(ctx context.Context, enabled bool, name string) (context.Context, *obs.Span) {
	if !enabled {
		return ctx, nil
	}
	return obs.NewTrace(ctx, name)
}

// dumpTrace ends the root span and prints the tree to stderr. The tree
// prints on failure too — where the build stopped is exactly what the
// flag is for.
func dumpTrace(root *obs.Span) {
	if root == nil {
		return
	}
	root.End()
	root.Snapshot().WriteTree(os.Stderr)
}

// buildFailure reports a failed build and picks its exit status: 130 for
// a build interrupted by a cancelled context (SIGINT/SIGTERM), 1 for
// everything else — a --timeout overrun included, which is an ordinary
// build failure wrapping context.DeadlineExceeded.
func buildFailure(err error) int {
	if errors.Is(err, context.Canceled) {
		fmt.Fprintf(os.Stderr, "ch-image: interrupted: %v\n", err)
		return exitInterrupted
	}
	fmt.Fprintf(os.Stderr, "ch-image: %v\n", err)
	return 1
}

// budgetGC bounds the persistent cache after a successful build
// (--cache-max-bytes): least-recently-recorded entries are evicted until
// the blob store fits. A failure (ErrBusy included) degrades to an
// oversized cache, surfaced by warnDegraded, never a failed build. Runs
// even after an interrupt: it is cleanup of what the build already wrote.
func budgetGC(ctx context.Context, store *image.Store, maxBytes int64) {
	if maxBytes <= 0 || store.Backing() == nil {
		return
	}
	if stats, err := store.GCBacking(context.WithoutCancel(ctx), cas.Budget{MaxBytes: maxBytes}); err == nil {
		fmt.Printf("cache gc: %d bytes kept (budget %d), %d blob(s) evicted\n",
			stats.BytesKept, maxBytes, stats.BlobsSwept)
	}
}

// warnDegraded is the degraded-build contract: when the build succeeded
// but some of its persistence failed — cache write-through or store
// backing writes — ch-image prints one warning on stderr and still exits
// 0. The image is correct; the on-disk cache is merely colder and the
// next invocation re-executes what failed to persist.
func warnDegraded(cache *build.Cache, store *image.Store) {
	var errs []error
	if cache != nil {
		errs = append(errs, cache.PersistErrs()...)
	}
	if store != nil {
		errs = append(errs, store.BackingErrs()...)
	}
	if len(errs) > 0 {
		fmt.Fprintf(os.Stderr, "ch-image: warning: cache degraded: %d persistence failure(s); first: %v\n",
			len(errs), errs[0])
	}
}

// cmdBuildPool runs the same Dockerfile once per tag through build.Pool:
// up to jobs builds in flight, all sharing the store and one instruction
// cache, so shared steps execute once and replay under every other tag.
func cmdBuildPool(ctx context.Context, text string, tags []string, jobs int, opts build.Options, rebuild bool, pushTo string) int {
	mkJobs := func() []build.Job {
		js := make([]build.Job, len(tags))
		for i, tg := range tags {
			o := opts
			o.Tag = tg
			o.Output = nil // captured per job, printed in submission order
			js[i] = build.Job{Name: o.Tag, Dockerfile: text, Options: o}
		}
		return js
	}
	run := func() ([]build.JobResult, error) {
		results, err := (&build.Pool{Workers: jobs}).RunContext(ctx, mkJobs())
		for _, r := range results {
			fmt.Printf("=== %s ===\n", r.Name)
			fmt.Print(r.Transcript)
			if r.Err != nil {
				fmt.Fprintf(os.Stderr, "ch-image: %s: %v\n", r.Name, r.Err)
			} else {
				fmt.Printf("cache hits: %d\n", r.Result.CacheHits)
			}
		}
		return results, err
	}
	results, err := run()
	if err != nil {
		return buildFailure(err)
	}
	if rebuild {
		fmt.Println("--- rebuilding with warm cache ---")
		if results, err = run(); err != nil {
			return buildFailure(err)
		}
	}
	hits, misses := opts.Cache.Stats()
	fmt.Printf("pool: %d builds, %d workers, cache %d hits / %d misses\n",
		len(tags), jobs, hits, misses)
	if pushTo != "" {
		for _, r := range results {
			if err := image.Push(pushTo, r.Result.Image); err != nil {
				fmt.Fprintf(os.Stderr, "ch-image: push: %v\n", err)
				return 1
			}
			fmt.Printf("pushed %s to %s\n", r.Result.Image.Name, pushTo)
		}
	}
	return 0
}

// cmdCache inspects and maintains a persistent cache directory:
//
//	ls                         list tags, cached instructions, chains and blob usage
//	gc [--max-bytes N] [TAG...]  drop the listed tags, then collect: with no
//	                           budget, everything no remaining tag reaches;
//	                           with --max-bytes, the least-recently-recorded
//	                           entries until the blob store fits N bytes
//	reset                      wipe the directory back to empty
//
// Flags may appear before or after the subcommand, so
// `cache gc --max-bytes N --cache-dir DIR` works. The flag set uses
// ContinueOnError: a bad flag returns exit 2 through the normal path
// (deferred handle close included) instead of os.Exit from the flag
// package.
func cmdCache(ctx context.Context, args []string) int {
	fs := flag.NewFlagSet("cache", flag.ContinueOnError)
	cacheDir := fs.String("cache-dir", "", "persistent build-cache directory (required)")
	cacheVerify := fs.String("cache-verify", "full", "open validation: full (read every blob) or lazy (verify on first read)")
	maxBytes := fs.Int64("max-bytes", 0, "gc: evict least-recently-recorded entries until the blob store fits this many bytes (0 = full reachability sweep)")
	lockWait := fs.Duration("lock-wait", cas.DefaultLockWait, "how long gc/reset wait for a store another process holds open")
	// Interleaved parse: flag.Parse stops at the first positional, so
	// collect positionals one at a time and re-parse the rest.
	var pos []string
	for rest := args; ; {
		if err := fs.Parse(rest); err != nil {
			return 2
		}
		if fs.NArg() == 0 {
			break
		}
		pos = append(pos, fs.Arg(0))
		rest = fs.Args()[1:]
	}
	if *cacheDir == "" {
		fmt.Fprintln(os.Stderr, "ch-image: cache: --cache-dir DIR is required")
		return 2
	}
	if len(pos) < 1 {
		fmt.Fprintln(os.Stderr, "ch-image: cache: subcommand required: ls, gc or reset")
		return 2
	}
	verify, err := verifyMode(*cacheVerify)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ch-image: %v\n", err)
		return 2
	}
	d, err := openCacheDir(*cacheDir, cas.WithVerify(verify), cas.WithLockWait(*lockWait))
	if err != nil {
		fmt.Fprintf(os.Stderr, "ch-image: %v\n", err)
		return 2
	}
	defer d.Close()

	switch sub, tags := pos[0], pos[1:]; sub {
	case "ls":
		fmt.Println("tags:")
		for _, name := range d.TagNames() {
			tg, _ := d.Tag(name)
			fmt.Printf("  %-30s %d layer(s)\n", name, len(tg.Layers))
		}
		count, bytes := d.BlobStats()
		fmt.Printf("instruction cache: %d entr(ies)\n", len(d.Steps()))
		fmt.Printf("flatten chains:    %d snapshot(s)\n", d.Chains())
		fmt.Printf("blobs:             %d file(s), %d bytes\n", count, bytes)
		return 0
	case "gc":
		// Validate every tag before deleting any: `gc good:1 typo:1`
		// must be an error and a no-op, not a half-done deletion that
		// aborts without collecting.
		for _, tag := range tags {
			if _, ok := d.Tag(tag); !ok {
				fmt.Fprintf(os.Stderr, "ch-image: cache gc: unknown tag %q; nothing deleted\n", tag)
				return 1
			}
		}
		for _, tag := range tags {
			if err := d.DeleteTag(ctx, tag); err != nil {
				fmt.Fprintf(os.Stderr, "ch-image: cache gc: %v\n", err)
				return 1
			}
		}
		stats, err := d.GC(ctx, cas.Budget{MaxBytes: *maxBytes})
		if err != nil {
			fmt.Fprintf(os.Stderr, "ch-image: cache gc: %v\n", err)
			return 1
		}
		fmt.Printf("gc: kept %d tag(s) and %d blob(s) (%d bytes); swept %d blob(s) (%d bytes), dropped %d step(s) and %d chain(s)\n",
			stats.TagsKept, stats.BlobsKept, stats.BytesKept, stats.BlobsSwept, stats.BytesSwept,
			stats.StepsDropped, stats.ChainsDropped)
		return 0
	case "reset":
		if err := d.Reset(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "ch-image: cache reset: %v\n", err)
			return 1
		}
		fmt.Printf("reset: %s is empty\n", *cacheDir)
		return 0
	default:
		fmt.Fprintf(os.Stderr, "ch-image: cache: unknown subcommand %q (want ls, gc or reset)\n", sub)
		return 2
	}
}

func cmdList() int {
	world := pkgmgr.NewWorld()
	store, err := seededStore(world, nil)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ch-image: %v\n", err)
		return 2
	}
	fmt.Println("base images:")
	for _, t := range store.Tags() {
		fmt.Println("  " + t)
	}
	fmt.Println("packages:")
	for _, d := range []struct {
		name string
		repo *pkgmgr.Repo
	}{{"alpine", world.Alpine}, {"centos7", world.CentOS7}, {"debian", world.Debian}} {
		fmt.Printf("  %s: %s\n", d.name, strings.Join(d.repo.Names(), " "))
	}
	return 0
}
