// ch-image is the simulated Charliecloud image builder: it builds
// Dockerfiles inside a fully unprivileged (Type III) simulated container
// with a selectable root-emulation mode, printing transcripts in the style
// of the paper's Figures 1 and 2.
//
// Usage:
//
//	ch-image build -t TAG [-f DOCKERFILE] [--force=none|seccomp|fakeroot|proot] CONTEXT
//	ch-image list
//
// The simulated world ships base images alpine:3.19, centos:7 and
// debian:12 with their package repositories.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/build"
	"repro/internal/image"
	"repro/internal/pkgmgr"
	"repro/internal/simos"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(1)
	}
	switch os.Args[1] {
	case "build":
		os.Exit(cmdBuild(os.Args[2:]))
	case "list":
		os.Exit(cmdList())
	default:
		usage()
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: ch-image build -t TAG [-f DOCKERFILE] [--force=MODE] CONTEXT")
	fmt.Fprintln(os.Stderr, "       ch-image list")
}

func seededStore(w *pkgmgr.World) (*image.Store, error) {
	s := image.NewStore()
	for _, d := range []struct{ distro, name string }{
		{pkgmgr.DistroAlpine, "alpine:3.19"},
		{pkgmgr.DistroCentOS7, "centos:7"},
		{pkgmgr.DistroDebian, "debian:12"},
	} {
		img, err := w.BaseImage(d.distro, d.name)
		if err != nil {
			return nil, err
		}
		s.Put(img)
	}
	return s, nil
}

func cmdBuild(args []string) int {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	tag := fs.String("t", "", "image tag")
	file := fs.String("f", "", "Dockerfile path (default CONTEXT/Dockerfile)")
	force := fs.String("force", "seccomp", "root emulation: none, seccomp, fakeroot, proot")
	noWorkaround := fs.Bool("no-apt-workaround", false, "disable the apt sandbox RUN rewriting")
	rebuild := fs.Bool("rebuild", false, "build twice to demonstrate the instruction cache")
	pushTo := fs.String("push", "", "after a successful build, push the image to this registry URL")
	strace := fs.String("strace", "", "trace syscalls: 'faked' (emulated only) or 'all'")
	fs.Parse(args)
	if *tag == "" {
		fmt.Fprintln(os.Stderr, "ch-image: -t TAG is required")
		return 2
	}
	ctxDir := "."
	if fs.NArg() > 0 {
		ctxDir = fs.Arg(0)
	}
	dfPath := *file
	if dfPath == "" {
		dfPath = filepath.Join(ctxDir, "Dockerfile")
	}
	text, err := os.ReadFile(dfPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ch-image: %v\n", err)
		return 2
	}

	var mode build.ForceMode
	switch *force {
	case "none":
		mode = build.ForceNone
	case "seccomp":
		mode = build.ForceSeccomp
	case "fakeroot":
		mode = build.ForceFakeroot
	case "proot":
		mode = build.ForceProot
	default:
		fmt.Fprintf(os.Stderr, "ch-image: unknown --force mode %q\n", *force)
		return 2
	}

	// Load the build context (regular files only, one level of depth is
	// plenty for the examples).
	context := map[string][]byte{}
	entries, err := os.ReadDir(ctxDir)
	if err == nil {
		for _, e := range entries {
			if e.Type().IsRegular() {
				if data, err := os.ReadFile(filepath.Join(ctxDir, e.Name())); err == nil {
					context[e.Name()] = data
				}
			}
		}
	}

	world := pkgmgr.NewWorld()
	store, err := seededStore(world)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ch-image: %v\n", err)
		return 2
	}
	opts := build.Options{
		Tag: *tag, Force: mode, Store: store, World: world,
		Context: context, Output: os.Stdout,
		DisableAptWorkaround: *noWorkaround,
	}
	if *rebuild {
		opts.Cache = build.NewCache()
	}
	switch *strace {
	case "":
	case "faked":
		opts.Tracer = func(ev simos.TraceEvent) {
			if ev.Faked {
				fmt.Fprintf(os.Stderr, "    [strace pid %d %s] %s(%s) = 0 (faked)\n",
					ev.PID, ev.Comm, ev.Name, ev.Detail)
			}
		}
	case "all":
		opts.Tracer = func(ev simos.TraceEvent) {
			suffix := ""
			if ev.Faked {
				suffix = " (faked)"
			}
			fmt.Fprintf(os.Stderr, "    [strace pid %d %s] %s(%s) = -%d%s\n",
				ev.PID, ev.Comm, ev.Name, ev.Detail, ev.Errno, suffix)
		}
	default:
		fmt.Fprintf(os.Stderr, "ch-image: unknown -strace mode %q\n", *strace)
		return 2
	}
	res, err := build.Build(string(text), opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ch-image: %v\n", err)
		return 1
	}
	if *rebuild {
		fmt.Println("--- rebuilding with warm cache ---")
		res, err = build.Build(string(text), opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ch-image: %v\n", err)
			return 1
		}
		fmt.Printf("cache hits: %d\n", res.CacheHits)
	}
	if *pushTo != "" {
		if err := image.Push(*pushTo, res.Image); err != nil {
			fmt.Fprintf(os.Stderr, "ch-image: push: %v\n", err)
			return 1
		}
		fmt.Printf("pushed %s to %s\n", res.Image.Name, *pushTo)
	}
	return 0
}

func cmdList() int {
	world := pkgmgr.NewWorld()
	store, err := seededStore(world)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ch-image: %v\n", err)
		return 2
	}
	fmt.Println("base images:")
	for _, t := range store.Tags() {
		fmt.Println("  " + t)
	}
	fmt.Println("packages:")
	for _, d := range []struct {
		name string
		repo *pkgmgr.Repo
	}{{"alpine", world.Alpine}, {"centos7", world.CentOS7}, {"debian", world.Debian}} {
		fmt.Printf("  %s: %s\n", d.name, strings.Join(d.repo.Names(), " "))
	}
	return 0
}
