package main

import (
	"context"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// CLI-level smoke tests: the three figures through cmdBuild with real
// files on disk.

func writeContext(t *testing.T, dockerfile string, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "Dockerfile"), []byte(dockerfile), 0o644); err != nil {
		t.Fatal(err)
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestCLIFig1a(t *testing.T) {
	dir := writeContext(t, "FROM alpine:3.19\nRUN apk add sl\n", nil)
	if code := cmdBuild(context.Background(), []string{"-t", "win", "--force", "none", dir}); code != 0 {
		t.Fatalf("exit %d", code)
	}
}

func TestCLIFig1bFails(t *testing.T) {
	dir := writeContext(t, "FROM centos:7\nRUN yum install -y openssh\n", nil)
	if code := cmdBuild(context.Background(), []string{"-t", "win", "--force", "none", dir}); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
}

func TestCLIFig2Succeeds(t *testing.T) {
	dir := writeContext(t, "FROM centos:7\nRUN yum install -y openssh\n", nil)
	if code := cmdBuild(context.Background(), []string{"-t", "win", "--force", "seccomp", dir}); code != 0 {
		t.Fatalf("exit %d", code)
	}
}

func TestCLIRebuildWithCache(t *testing.T) {
	dir := writeContext(t, "FROM alpine:3.19\nCOPY hello.txt /hello\nRUN apk add sl\n",
		map[string]string{"hello.txt": "hi\n"})
	if code := cmdBuild(context.Background(), []string{"-t", "win", "-rebuild", dir}); code != 0 {
		t.Fatalf("exit %d", code)
	}
}

func TestCLIMultiStage(t *testing.T) {
	dir := writeContext(t, `FROM centos:7 AS build
RUN yum install -y openssh
RUN mkdir -p /opt && echo artifact > /opt/out
FROM alpine:3.19
COPY --from=build /opt/out /app/out
`, nil)
	if code := cmdBuild(context.Background(), []string{"-t", "slim:1", "--jobs", "2", dir}); code != 0 {
		t.Fatalf("exit %d", code)
	}
}

func TestCLIMultiStageForwardReferenceRejected(t *testing.T) {
	dir := writeContext(t, "FROM a\nCOPY --from=later /x /y\nFROM b AS later\n", nil)
	if code := cmdBuild(context.Background(), []string{"-t", "x", dir}); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
}

func TestCLIMultiTagPool(t *testing.T) {
	dir := writeContext(t, "FROM alpine:3.19\nRUN apk add sl\n", nil)
	if code := cmdBuild(context.Background(), []string{"-t", "a:1,b:1,c:1", "--jobs", "3", dir}); code != 0 {
		t.Fatalf("exit %d", code)
	}
}

func TestCLIMultiTagPoolFailure(t *testing.T) {
	dir := writeContext(t, "FROM centos:7\nRUN yum install -y openssh\n", nil)
	if code := cmdBuild(context.Background(), []string{"-t", "a:1,b:1", "--jobs", "2", "--force", "none", dir}); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
}

func TestCLIEmptyTagElementRejected(t *testing.T) {
	dir := writeContext(t, "FROM alpine:3.19\nRUN apk add sl\n", nil)
	if code := cmdBuild(context.Background(), []string{"-t", "a:1,", dir}); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestCLIMultiTagStraceRejected(t *testing.T) {
	dir := writeContext(t, "FROM alpine:3.19\nRUN apk add sl\n", nil)
	if code := cmdBuild(context.Background(), []string{"-t", "a:1,b:1", "-strace", "all", dir}); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestCLIMissingTag(t *testing.T) {
	if code := cmdBuild(context.Background(), []string{}); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestCLIBadForceMode(t *testing.T) {
	dir := writeContext(t, "FROM alpine:3.19\nRUN true\n", nil)
	if code := cmdBuild(context.Background(), []string{"-t", "x", "--force", "magic", dir}); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestCLIList(t *testing.T) {
	if code := cmdList(); code != 0 {
		t.Fatalf("exit %d", code)
	}
}

func TestCLIJobsBelowOneRejected(t *testing.T) {
	dir := writeContext(t, "FROM alpine:3.19\nRUN apk add sl\n", nil)
	for _, jobs := range []string{"0", "-3"} {
		if code := cmdBuild(context.Background(), []string{"-t", "x", "--jobs", jobs, dir}); code != 2 {
			t.Fatalf("--jobs %s: exit %d, want 2", jobs, code)
		}
	}
}

func TestCLICacheDirOnFileRejected(t *testing.T) {
	ctx := writeContext(t, "FROM alpine:3.19\nRUN apk add sl\n", nil)
	notADir := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(notADir, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := cmdBuild(context.Background(), []string{"-t", "x", "--cache-dir", notADir, ctx}); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if code := cmdCache(context.Background(), []string{"--cache-dir", notADir, "ls"}); code != 2 {
		t.Fatalf("cache ls on file: exit %d, want 2", code)
	}
}

// Two cmdBuild invocations with completely fresh state against one
// --cache-dir: the CLI-level warm path.
func TestCLIPersistentCacheWarmSecondRun(t *testing.T) {
	ctx := writeContext(t, "FROM alpine:3.19\nRUN apk add sl\n", nil)
	cache := filepath.Join(t.TempDir(), "cas")
	if code := cmdBuild(context.Background(), []string{"-t", "w:1", "--cache-dir", cache, ctx}); code != 0 {
		t.Fatalf("cold: exit %d", code)
	}
	if code := cmdBuild(context.Background(), []string{"-t", "w:1", "--cache-dir", cache, ctx}); code != 0 {
		t.Fatalf("warm: exit %d", code)
	}
}

func TestCLITargetStage(t *testing.T) {
	dir := writeContext(t, `FROM centos:7 AS build
RUN yum install -y openssh
FROM alpine:3.19
COPY --from=build /etc/centos-release /rel
`, nil)
	if code := cmdBuild(context.Background(), []string{"-t", "b:1", "--target", "build", dir}); code != 0 {
		t.Fatalf("exit %d", code)
	}
	if code := cmdBuild(context.Background(), []string{"-t", "b:1", "--target", "missing", dir}); code != 1 {
		t.Fatalf("unknown target: exit %d, want 1", code)
	}
}

func TestCLICacheSubcommands(t *testing.T) {
	ctx := writeContext(t, "FROM alpine:3.19\nRUN apk add sl\n", nil)
	cache := filepath.Join(t.TempDir(), "cas")
	if code := cmdBuild(context.Background(), []string{"-t", "a:1", "--cache-dir", cache, ctx}); code != 0 {
		t.Fatalf("build: exit %d", code)
	}
	if code := cmdCache(context.Background(), []string{"--cache-dir", cache, "ls"}); code != 0 {
		t.Fatalf("ls: exit %d", code)
	}
	if code := cmdCache(context.Background(), []string{"--cache-dir", cache, "gc", "a:1"}); code != 0 {
		t.Fatalf("gc: exit %d", code)
	}
	if code := cmdCache(context.Background(), []string{"--cache-dir", cache, "reset"}); code != 0 {
		t.Fatalf("reset: exit %d", code)
	}
	// gc on a directory that has never existed is a no-op, exit 0.
	if code := cmdCache(context.Background(), []string{"--cache-dir", filepath.Join(t.TempDir(), "fresh"), "gc"}); code != 0 {
		t.Fatalf("gc on missing dir: exit %d", code)
	}
	if code := cmdCache(context.Background(), []string{"ls"}); code != 2 {
		t.Fatalf("missing --cache-dir: exit %d, want 2", code)
	}
	if code := cmdCache(context.Background(), []string{"--cache-dir", cache}); code != 2 {
		t.Fatalf("missing subcommand: exit %d, want 2", code)
	}
	if code := cmdCache(context.Background(), []string{"--cache-dir", cache, "defrag"}); code != 2 {
		t.Fatalf("unknown subcommand: exit %d, want 2", code)
	}
}

// A bad flag must come back as exit 2 through the normal return path —
// the flag set uses ContinueOnError, so the test process itself surviving
// this call is part of the assertion (ExitOnError would have killed it).
func TestCLICacheBadFlagReturnsTwo(t *testing.T) {
	cache := filepath.Join(t.TempDir(), "cas")
	if code := cmdCache(context.Background(), []string{"--cache-dir", cache, "--bogus", "ls"}); code != 2 {
		t.Fatalf("bad flag: exit %d, want 2", code)
	}
	if code := cmdCache(context.Background(), []string{"--cache-dir", cache, "gc", "--max-bytes", "not-a-number"}); code != 2 {
		t.Fatalf("bad flag value: exit %d, want 2", code)
	}
}

// Flags may follow the subcommand: `cache gc --max-bytes N --cache-dir D`
// is the natural spelling and must parse.
func TestCLICacheFlagsAfterSubcommand(t *testing.T) {
	ctx := writeContext(t, "FROM alpine:3.19\nRUN apk add sl\n", nil)
	cache := filepath.Join(t.TempDir(), "cas")
	if code := cmdBuild(context.Background(), []string{"-t", "i:1", "--cache-dir", cache, ctx}); code != 0 {
		t.Fatalf("build: exit %d", code)
	}
	if code := cmdCache(context.Background(), []string{"ls", "--cache-dir", cache}); code != 0 {
		t.Fatalf("ls with trailing flags: exit %d", code)
	}
	if code := cmdCache(context.Background(), []string{"gc", "--max-bytes", "1048576", "--cache-dir", cache}); code != 0 {
		t.Fatalf("gc with trailing flags: exit %d", code)
	}
	if code := cmdCache(context.Background(), []string{"--cache-dir", cache, "gc", "--max-bytes", "1048576"}); code != 0 {
		t.Fatalf("gc with flags either side: exit %d", code)
	}
}

// `cache gc TAG...` validates every tag before deleting any: one typo
// must not half-delete the list and abort without collecting.
func TestCLICacheGCUnknownTagIsAtomic(t *testing.T) {
	ctx := writeContext(t, "FROM alpine:3.19\nRUN apk add sl\n", nil)
	cache := filepath.Join(t.TempDir(), "cas")
	if code := cmdBuild(context.Background(), []string{"-t", "keep:1", "--cache-dir", cache, ctx}); code != 0 {
		t.Fatalf("build: exit %d", code)
	}
	if code := cmdCache(context.Background(), []string{"--cache-dir", cache, "gc", "keep:1", "nosuch:1"}); code != 1 {
		t.Fatalf("gc with unknown tag: exit %d, want 1", code)
	}
	// The known tag must still be there: nothing was deleted.
	d, err := openCacheDir(cache)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if _, ok := d.Tag("keep:1"); !ok {
		t.Fatal("gc deleted keep:1 before failing on the unknown tag")
	}
}

// The build-side knobs: --cache-verify=lazy opens without the fsck pass,
// --cache-max-bytes runs a budgeted gc after the build. Both exercised
// end to end; bad values are exit 2.
func TestCLIBuildCacheVerifyAndBudget(t *testing.T) {
	ctx := writeContext(t, "FROM alpine:3.19\nRUN apk add sl\n", nil)
	cache := filepath.Join(t.TempDir(), "cas")
	if code := cmdBuild(context.Background(), []string{"-t", "v:1", "--cache-dir", cache, ctx}); code != 0 {
		t.Fatalf("cold build: exit %d", code)
	}
	if code := cmdBuild(context.Background(), []string{"-t", "v:1", "--cache-dir", cache,
		"--cache-verify", "lazy", "--cache-max-bytes", "1", ctx}); code != 0 {
		t.Fatalf("lazy+budget build: exit %d", code)
	}
	if code := cmdBuild(context.Background(), []string{"-t", "v:1", "--cache-dir", cache, "--cache-verify", "paranoid", ctx}); code != 2 {
		t.Fatalf("bad --cache-verify: exit %d, want 2", code)
	}
	if code := cmdCache(context.Background(), []string{"--cache-dir", cache, "--cache-verify", "paranoid", "ls"}); code != 2 {
		t.Fatalf("cache with bad --cache-verify: exit %d, want 2", code)
	}
	// The budgeted gc must not have evicted what the tag pins: the next
	// warm build still succeeds.
	if code := cmdBuild(context.Background(), []string{"-t", "v:1", "--cache-dir", cache, ctx}); code != 0 {
		t.Fatalf("post-budget build: exit %d", code)
	}
}

// captureStderr runs fn with os.Stderr redirected to a pipe and returns
// what fn wrote there.
func captureStderr(t *testing.T, fn func()) string {
	t.Helper()
	old := os.Stderr
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = w
	done := make(chan string, 1)
	go func() {
		b, _ := io.ReadAll(r)
		done <- string(b)
	}()
	defer func() {
		w.Close()
		os.Stderr = old
	}()
	fn()
	w.Close()
	os.Stderr = old
	return <-done
}

// S3, the degraded-build contract: when persistence fails but the build
// succeeds, ch-image prints one "cache degraded" warning on stderr and
// still exits 0.
func TestCLIDegradedBuildWarnsAndExitsZero(t *testing.T) {
	ctx := writeContext(t, "FROM alpine:3.19\nRUN apk add sl\n", nil)
	cache := filepath.Join(t.TempDir(), "cas")
	t.Setenv("CH_IMAGE_CAS_FAULTS", "blob-write")
	var code int
	stderr := captureStderr(t, func() {
		code = cmdBuild(context.Background(), []string{"-t", "d:1", "--cache-dir", cache, ctx})
	})
	if code != 0 {
		t.Fatalf("degraded build must exit 0, got %d (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stderr, "warning: cache degraded") {
		t.Fatalf("missing degraded warning on stderr: %q", stderr)
	}
}

// A bad CH_IMAGE_CAS_FAULTS spec is a usage error, not a silent no-op.
func TestCLIBadFaultSpec(t *testing.T) {
	ctx := writeContext(t, "FROM alpine:3.19\n", nil)
	cache := filepath.Join(t.TempDir(), "cas")
	t.Setenv("CH_IMAGE_CAS_FAULTS", "no-such-op")
	if code := cmdBuild(context.Background(), []string{"-t", "d:1", "--cache-dir", cache, ctx}); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

// --timeout: an overrunning build fails with a deadline error (exit 1),
// it does not hang.
func TestCLIBuildTimeout(t *testing.T) {
	ctx := writeContext(t, "FROM alpine:3.19\nRUN apk add sl\n", nil)
	var code int
	stderr := captureStderr(t, func() {
		code = cmdBuild(context.Background(), []string{"-t", "t:1", "--timeout", "1ns", ctx})
	})
	if code != 1 {
		t.Fatalf("timed-out build: exit %d, want 1", code)
	}
	if !strings.Contains(stderr, "deadline") {
		t.Fatalf("stderr should mention the deadline: %q", stderr)
	}
}

// S1: a cancelled context (SIGINT/SIGTERM through signal.NotifyContext)
// stops the build and exits 130.
func TestCLIInterruptExits130(t *testing.T) {
	dir := writeContext(t, "FROM alpine:3.19\nRUN apk add sl\n", nil)
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	var code int
	stderr := captureStderr(t, func() {
		code = cmdBuild(cctx, []string{"-t", "i:1", dir})
	})
	if code != 130 {
		t.Fatalf("interrupted build: exit %d, want 130", code)
	}
	if !strings.Contains(stderr, "interrupted") {
		t.Fatalf("stderr should say interrupted: %q", stderr)
	}
}
