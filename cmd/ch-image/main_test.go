package main

import (
	"os"
	"path/filepath"
	"testing"
)

// CLI-level smoke tests: the three figures through cmdBuild with real
// files on disk.

func writeContext(t *testing.T, dockerfile string, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "Dockerfile"), []byte(dockerfile), 0o644); err != nil {
		t.Fatal(err)
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestCLIFig1a(t *testing.T) {
	dir := writeContext(t, "FROM alpine:3.19\nRUN apk add sl\n", nil)
	if code := cmdBuild([]string{"-t", "win", "--force", "none", dir}); code != 0 {
		t.Fatalf("exit %d", code)
	}
}

func TestCLIFig1bFails(t *testing.T) {
	dir := writeContext(t, "FROM centos:7\nRUN yum install -y openssh\n", nil)
	if code := cmdBuild([]string{"-t", "win", "--force", "none", dir}); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
}

func TestCLIFig2Succeeds(t *testing.T) {
	dir := writeContext(t, "FROM centos:7\nRUN yum install -y openssh\n", nil)
	if code := cmdBuild([]string{"-t", "win", "--force", "seccomp", dir}); code != 0 {
		t.Fatalf("exit %d", code)
	}
}

func TestCLIRebuildWithCache(t *testing.T) {
	dir := writeContext(t, "FROM alpine:3.19\nCOPY hello.txt /hello\nRUN apk add sl\n",
		map[string]string{"hello.txt": "hi\n"})
	if code := cmdBuild([]string{"-t", "win", "-rebuild", dir}); code != 0 {
		t.Fatalf("exit %d", code)
	}
}

func TestCLIMultiStage(t *testing.T) {
	dir := writeContext(t, `FROM centos:7 AS build
RUN yum install -y openssh
RUN mkdir -p /opt && echo artifact > /opt/out
FROM alpine:3.19
COPY --from=build /opt/out /app/out
`, nil)
	if code := cmdBuild([]string{"-t", "slim:1", "--jobs", "2", dir}); code != 0 {
		t.Fatalf("exit %d", code)
	}
}

func TestCLIMultiStageForwardReferenceRejected(t *testing.T) {
	dir := writeContext(t, "FROM a\nCOPY --from=later /x /y\nFROM b AS later\n", nil)
	if code := cmdBuild([]string{"-t", "x", dir}); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
}

func TestCLIMultiTagPool(t *testing.T) {
	dir := writeContext(t, "FROM alpine:3.19\nRUN apk add sl\n", nil)
	if code := cmdBuild([]string{"-t", "a:1,b:1,c:1", "--jobs", "3", dir}); code != 0 {
		t.Fatalf("exit %d", code)
	}
}

func TestCLIMultiTagPoolFailure(t *testing.T) {
	dir := writeContext(t, "FROM centos:7\nRUN yum install -y openssh\n", nil)
	if code := cmdBuild([]string{"-t", "a:1,b:1", "--jobs", "2", "--force", "none", dir}); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
}

func TestCLIEmptyTagElementRejected(t *testing.T) {
	dir := writeContext(t, "FROM alpine:3.19\nRUN apk add sl\n", nil)
	if code := cmdBuild([]string{"-t", "a:1,", dir}); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestCLIMultiTagStraceRejected(t *testing.T) {
	dir := writeContext(t, "FROM alpine:3.19\nRUN apk add sl\n", nil)
	if code := cmdBuild([]string{"-t", "a:1,b:1", "-strace", "all", dir}); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestCLIMissingTag(t *testing.T) {
	if code := cmdBuild([]string{}); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestCLIBadForceMode(t *testing.T) {
	dir := writeContext(t, "FROM alpine:3.19\nRUN true\n", nil)
	if code := cmdBuild([]string{"-t", "x", "--force", "magic", dir}); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestCLIList(t *testing.T) {
	if code := cmdList(); code != 0 {
		t.Fatalf("exit %d", code)
	}
}
