// seccomp-dump generates the zero-consistency root-emulation BPF filter
// and prints its disassembly — the inspection tool for the paper's §5
// program.
//
// Usage:
//
//	seccomp-dump [-arch NAME|all] [-variant charliecloud|enroot|extended]
//	             [-dispatch linear|tree] [-stats]
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"os"
	"unsafe"

	"repro/internal/bpf"
	"repro/internal/core"
	"repro/internal/sysarch"
)

func main() {
	archName := flag.String("arch", "all", "target architecture (x86_64, i386, arm, arm64, ppc64le, s390x, or all)")
	variant := flag.String("variant", "charliecloud", "filter variant: charliecloud, enroot, extended")
	dispatch := flag.String("dispatch", "linear", "syscall dispatch: linear or tree")
	stats := flag.Bool("stats", false, "print program statistics instead of disassembly")
	format := flag.String("format", "asm", "output format: asm (disassembly), c (C array), raw (sock_filter bytes to stdout)")
	flag.Parse()

	cfg := core.Config{}
	switch *variant {
	case "charliecloud":
	case "enroot":
		cfg.Variant = core.VariantEnroot
	case "extended":
		cfg.Variant = core.VariantExtended
	default:
		fmt.Fprintf(os.Stderr, "seccomp-dump: unknown variant %q\n", *variant)
		os.Exit(2)
	}
	switch *dispatch {
	case "linear":
	case "tree":
		cfg.Strategy = core.DispatchTree
	default:
		fmt.Fprintf(os.Stderr, "seccomp-dump: unknown dispatch %q\n", *dispatch)
		os.Exit(2)
	}
	if *archName != "all" {
		arch, ok := sysarch.ByName(*archName)
		if !ok {
			fmt.Fprintf(os.Stderr, "seccomp-dump: unknown architecture %q\n", *archName)
			os.Exit(2)
		}
		cfg.Arches = []*sysarch.Arch{arch}
	}

	prog, err := core.Generate(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "seccomp-dump: %v\n", err)
		os.Exit(1)
	}
	if *stats {
		fmt.Printf("variant:      %s\n", cfg.Variant)
		fmt.Printf("dispatch:     %s\n", cfg.Strategy)
		fmt.Printf("instructions: %d\n", len(prog))
		fmt.Printf("bytes:        %d\n", len(prog)*bpf.InstructionSize)
		if ps, err := bpf.Analyze(prog); err == nil {
			fmt.Printf("path:         best %d, worst %d instructions per syscall\n",
				ps.Shortest, ps.Longest)
		}
		fmt.Printf("syscalls:     %d filtered (union over arches)\n", len(core.Inventory(cfg.Variant)))
		for class, names := range core.InventoryByClass(cfg.Variant) {
			fmt.Printf("  %-20s %d: %v\n", class.String(), len(names), names)
		}
		return
	}
	switch *format {
	case "asm":
		fmt.Printf("; root-emulation filter, variant=%s dispatch=%s (%d instructions)\n",
			cfg.Variant, cfg.Strategy, len(prog))
		fmt.Print(bpf.Disassemble(prog))
	case "c":
		// The form Charliecloud would embed: a struct sock_filter array.
		fmt.Printf("/* root-emulation filter: variant=%s dispatch=%s */\n", cfg.Variant, cfg.Strategy)
		fmt.Printf("static struct sock_filter rootemu_filter[%d] = {\n", len(prog))
		for _, ins := range prog {
			fmt.Printf("    { 0x%04x, %d, %d, 0x%08x },\n", ins.Op, ins.JT, ins.JF, ins.K)
		}
		fmt.Println("};")
	case "raw":
		// Native-endian sock_filter bytes, loadable via seccomp(2).
		os.Stdout.Write(bpf.Marshal(prog, hostOrder()))
	default:
		fmt.Fprintf(os.Stderr, "seccomp-dump: unknown format %q\n", *format)
		os.Exit(2)
	}
}

// hostOrder returns the byte order of the running machine, the order the
// kernel expects raw sock_filter programs in.
func hostOrder() binary.ByteOrder {
	var probe [2]byte
	*(*uint16)(unsafe.Pointer(&probe[0])) = 1
	if probe[0] == 1 {
		return binary.LittleEndian
	}
	return binary.BigEndian
}
