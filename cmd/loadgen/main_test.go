package main

import (
	"testing"
	"time"
)

func TestPercentileNearestRank(t *testing.T) {
	// 1..100 ms: nearest-rank percentiles are exact.
	d := make([]time.Duration, 100)
	for i := range d {
		d[i] = time.Duration(i+1) * time.Millisecond
	}
	cases := []struct {
		p    float64
		want time.Duration
	}{
		{0.50, 50 * time.Millisecond},
		{0.95, 95 * time.Millisecond},
		{0.99, 99 * time.Millisecond},
		{1.00, 100 * time.Millisecond},
	}
	for _, c := range cases {
		if got := percentile(d, c.p); got != c.want {
			t.Errorf("p%.0f = %v, want %v", c.p*100, got, c.want)
		}
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("empty percentile = %v, want 0", got)
	}
	if got := percentile([]time.Duration{7 * time.Millisecond}, 0.99); got != 7*time.Millisecond {
		t.Errorf("singleton p99 = %v, want 7ms", got)
	}
	// percentile must not reorder its input.
	in := []time.Duration{3, 1, 2}
	percentile(in, 0.5)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("percentile mutated its input: %v", in)
	}
}

func TestRequestForColdCadence(t *testing.T) {
	seenCold := map[string]bool{}
	for i := 0; i < 32; i++ {
		req, cold := requestFor(i, 4, 16)
		wantCold := i%16 == 15
		if cold != wantCold {
			t.Fatalf("request %d: cold=%v, want %v", i, cold, wantCold)
		}
		if cold {
			if seenCold[req.Dockerfile] {
				t.Fatalf("cold dockerfile %d repeats", i)
			}
			seenCold[req.Dockerfile] = true
		} else if req.Dockerfile != variantDockerfile(i%4) {
			t.Fatalf("request %d: not the expected warm variant", i)
		}
	}
	// coldEvery=0 disables cold builds entirely.
	for i := 0; i < 8; i++ {
		if _, cold := requestFor(i, 2, 0); cold {
			t.Fatalf("request %d cold with cold-every=0", i)
		}
	}
}

func TestSummarise(t *testing.T) {
	samples := []opSample{
		{latency: 10 * time.Millisecond, cacheHits: 4, executed: 0},
		{latency: 20 * time.Millisecond, cacheHits: 3, executed: 1},
		{latency: 30 * time.Millisecond, cold: true, executed: 2, rejected: 2},
		{latency: 40 * time.Millisecond, err: errFake, status: "failed"},
		{latency: 50 * time.Millisecond, cacheHits: 1, executed: 0, degraded: true},
	}
	rep := summarise(samples, 2, 2, 4, 100*time.Millisecond)
	if rep.Failed != 1 {
		t.Errorf("failed = %d, want 1", rep.Failed)
	}
	if rep.ColdBuilds != 1 || rep.WarmBuilds != 3 {
		t.Errorf("cold/warm = %d/%d, want 1/3", rep.ColdBuilds, rep.WarmBuilds)
	}
	if rep.Rejected429 != 2 {
		t.Errorf("rejected = %d, want 2", rep.Rejected429)
	}
	if rep.Degraded != 1 {
		t.Errorf("degraded = %d, want 1", rep.Degraded)
	}
	// Warm hit rate counts only warm builds: (4+3+1)/(4+3+1+0+1+0).
	want := 8.0 / 9.0
	if diff := rep.WarmHitRate - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("warm hit rate = %v, want %v", rep.WarmHitRate, want)
	}
}

var errFake = &fakeErr{}

type fakeErr struct{}

func (*fakeErr) Error() string { return "fake" }
