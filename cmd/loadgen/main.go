// loadgen hammers a ch-imaged daemon with N concurrent mixed warm/cold
// builds and reports latency percentiles and cache-hit rates — the
// service-throughput benchmark behind BENCH_daemon.{txt,json}. Exit is
// non-zero when any operation fails or the warm cache-hit rate misses
// the floor, so `make bench` doubles as an acceptance gate.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/daemon"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// opSample is one measured request.
type opSample struct {
	latency   time.Duration
	executed  int
	cacheHits int
	cold      bool
	degraded  bool
	status    string
	rejected  int // 429s absorbed before admission
	err       error
}

// report is the JSON shape of BENCH_daemon.json.
type report struct {
	Requests    int     `json:"requests"`
	Concurrency int     `json:"concurrency"`
	Variants    int     `json:"variants"`
	ColdEvery   int     `json:"coldEvery"`
	Failed      int     `json:"failed"`
	Degraded    int     `json:"degraded"`
	Rejected429 int     `json:"rejected429"`
	P50MS       float64 `json:"p50Ms"`
	P95MS       float64 `json:"p95Ms"`
	P99MS       float64 `json:"p99Ms"`
	MeanMS      float64 `json:"meanMs"`
	WarmHitRate float64 `json:"warmHitRate"`
	ColdBuilds  int     `json:"coldBuilds"`
	WarmBuilds  int     `json:"warmBuilds"`
	ElapsedMS   float64 `json:"elapsedMs"`
	ThroughputS float64 `json:"throughputPerSec"`
}

func run(args []string) int {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	addr := fs.String("addr", "", "daemon address: http://host:port or unix:PATH")
	addrFile := fs.String("addr-file", "", "read the daemon address from this file (polls until it appears)")
	n := fs.Int("n", 64, "total build requests")
	concurrency := fs.Int("c", 8, "concurrent clients")
	variants := fs.Int("variants", 4, "distinct warm Dockerfile variants cycled across requests")
	coldEvery := fs.Int("cold-every", 16, "every k-th request is a unique cold build (0 = all warm)")
	minHitRate := fs.Float64("min-hit-rate", 0, "fail unless the warm cache-hit rate reaches this fraction")
	out := fs.String("out", "", "write the text report here as well as stdout")
	jsonOut := fs.String("json", "", "write the JSON report here")
	scrape := fs.Bool("scrape", false, "scrape /metrics around the measured phase and fail unless the server-side build counters match the client-side results")
	timeout := fs.Duration("timeout", 2*time.Minute, "overall deadline")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *addr == "" && *addrFile == "" {
		fmt.Fprintln(os.Stderr, "loadgen: --addr or --addr-file is required")
		return 2
	}
	if *n < 1 || *concurrency < 1 || *variants < 1 {
		fmt.Fprintln(os.Stderr, "loadgen: -n, -c and --variants must be at least 1")
		return 2
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	base := *addr
	if base == "" {
		var err error
		base, err = waitAddrFile(ctx, *addrFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			return 1
		}
	}
	client, base := newClient(base)

	if err := waitHealthy(ctx, client, base); err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: daemon not healthy: %v\n", err)
		return 1
	}

	// Warm up: build each variant once so the measured phase exercises
	// the warm path. Warmup builds are not measured.
	for v := 0; v < *variants; v++ {
		if _, err := oneBuild(ctx, client, base, variantRequest(v), true); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: warmup variant %d: %v\n", v, err)
			return 1
		}
	}

	// The before-scrape sits between warmup and the measured phase, so
	// the cross-check below sees exactly the measured window's deltas.
	var before map[string]float64
	if *scrape {
		var err error
		if before, err = scrapeMetrics(ctx, client, base); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: scrape: %v\n", err)
			return 1
		}
	}

	// Measured phase: N requests over c workers; every coldEvery-th
	// request is a unique never-seen Dockerfile (a guaranteed cold
	// build), the rest cycle the warm variants.
	samples := make([]opSample, *n)
	var wg sync.WaitGroup
	work := make(chan int)
	start := time.Now()
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				req, cold := requestFor(i, *variants, *coldEvery)
				t0 := time.Now()
				s, err := oneBuild(ctx, client, base, req, false)
				s.latency = time.Since(t0)
				s.cold = cold
				s.err = err
				samples[i] = s
			}
		}()
	}
	for i := 0; i < *n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	elapsed := time.Since(start)

	rep := summarise(samples, *concurrency, *variants, *coldEvery, elapsed)
	text := renderText(rep)
	fmt.Print(text)
	if *out != "" {
		if err := os.WriteFile(*out, []byte(text), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			return 1
		}
	}
	if *jsonOut != "" {
		data, _ := json.MarshalIndent(rep, "", "  ")
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			return 1
		}
	}
	if rep.Failed > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: %d operation(s) failed\n", rep.Failed)
		return 1
	}
	if *minHitRate > 0 && rep.WarmHitRate < *minHitRate {
		fmt.Fprintf(os.Stderr, "loadgen: warm cache-hit rate %.2f below floor %.2f\n",
			rep.WarmHitRate, *minHitRate)
		return 1
	}
	if *scrape {
		after, err := scrapeMetrics(ctx, client, base)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: scrape: %v\n", err)
			return 1
		}
		text, err := crossCheck(before, after, samples)
		fmt.Print(text)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: scrape cross-check: %v\n", err)
			return 1
		}
	}
	return 0
}

// scrapeMetrics GETs /metrics and parses the exposition text into a
// series → value map keyed exactly as the daemon's deterministic
// renderer writes it (`name{l="v",...}` or a bare name).
func scrapeMetrics(ctx context.Context, client *http.Client, base string) (map[string]float64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: %s", resp.Status)
	}
	series := map[string]float64{}
	for _, line := range strings.Split(string(data), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			return nil, fmt.Errorf("unparseable metrics line %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("metrics line %q: %v", line, err)
		}
		series[line[:sp]] = v
	}
	return series, nil
}

// crossCheck compares the measured window's server-side counter deltas
// against the client's own accounting: settled operations, executed
// instructions and cache hits must agree exactly (Cache.Stats semantics
// make the hit totals exact, not approximate), which also makes the two
// hit-rate views identical. Returns the comparison text and the first
// disagreement.
func crossCheck(before, after map[string]float64, samples []opSample) (string, error) {
	d := func(k string) float64 { return after[k] - before[k] }
	var ok, executed, hits int
	for _, s := range samples {
		if s.err != nil {
			continue
		}
		ok++
		executed += s.executed
		hits += s.cacheHits
	}
	sExec := d(`ch_build_instructions_total{mode="executed"}`)
	sHits := d(`ch_build_cache_hits_total`)
	clientRate, serverRate := 0.0, 0.0
	if hits+executed > 0 {
		clientRate = float64(hits) / float64(hits+executed)
	}
	if sHits+sExec > 0 {
		serverRate = sHits / (sHits + sExec)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "  scrape check:  server settled=%g executed=%g hits=%g rate=%.4f\n",
		d(`ch_daemon_operations_settled_total{status="succeeded"}`), sExec, sHits, serverRate)
	fmt.Fprintf(&b, "                 client settled=%d executed=%d hits=%d rate=%.4f\n",
		ok, executed, hits, clientRate)
	if got := d(`ch_daemon_operations_settled_total{status="succeeded"}`); got != float64(ok) {
		return b.String(), fmt.Errorf("settled{succeeded} delta %g != client %d", got, ok)
	}
	if sExec != float64(executed) {
		return b.String(), fmt.Errorf("instructions{executed} delta %g != client %d", sExec, executed)
	}
	if sHits != float64(hits) {
		return b.String(), fmt.Errorf("cache_hits delta %g != client %d", sHits, hits)
	}
	return b.String(), nil
}

// variantDockerfile is warm variant v: identical across runs so repeats
// replay from the shared cache.
func variantDockerfile(v int) string {
	return fmt.Sprintf(`FROM alpine:3.19
RUN echo variant-%d > /variant
COPY f.txt /f.txt
RUN echo done-%d > /done
ENV LOADGEN=%d
`, v, v, v)
}

// coldDockerfile is a never-repeated build: the i makes every
// instruction chain unique, so nothing replays.
func coldDockerfile(i int) string {
	return fmt.Sprintf(`FROM alpine:3.19
RUN echo cold-%d > /cold
RUN echo cold-done-%d > /done
`, i, i)
}

func variantRequest(v int) daemon.BuildRequest {
	return daemon.BuildRequest{
		Tag:        fmt.Sprintf("loadgen-warm-%d:latest", v),
		Dockerfile: variantDockerfile(v),
		Context:    map[string][]byte{"f.txt": []byte("loadgen context file\n")},
	}
}

// requestFor maps measured request i to its build request; cold reports
// whether it is a unique cold build.
func requestFor(i, variants, coldEvery int) (daemon.BuildRequest, bool) {
	if coldEvery > 0 && i%coldEvery == coldEvery-1 {
		return daemon.BuildRequest{
			Tag:        fmt.Sprintf("loadgen-cold-%d:latest", i),
			Dockerfile: coldDockerfile(i),
		}, true
	}
	return variantRequest(i % variants), false
}

// oneBuild POSTs one build and polls its operation to a terminal state.
// A 429 backs off and retries — the bounded queue pushing back is normal
// under saturation; the retries are counted, not fatal.
func oneBuild(ctx context.Context, client *http.Client, base string, req daemon.BuildRequest, warmup bool) (opSample, error) {
	var s opSample
	body, err := json.Marshal(req)
	if err != nil {
		return s, err
	}
	var op daemon.Operation
	backoff := 5 * time.Millisecond
	for {
		hreq, err := http.NewRequestWithContext(ctx, http.MethodPost,
			base+"/v1/builds", bytes.NewReader(body))
		if err != nil {
			return s, err
		}
		hreq.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(hreq)
		if err != nil {
			return s, err
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return s, err
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			s.rejected++
			select {
			case <-ctx.Done():
				return s, ctx.Err()
			case <-time.After(backoff):
			}
			if backoff < 200*time.Millisecond {
				backoff *= 2
			}
			continue
		}
		if resp.StatusCode != http.StatusAccepted {
			return s, fmt.Errorf("POST /v1/builds: %s: %s", resp.Status, strings.TrimSpace(string(data)))
		}
		if err := json.Unmarshal(data, &op); err != nil {
			return s, err
		}
		break
	}

	for {
		hreq, err := http.NewRequestWithContext(ctx, http.MethodGet,
			base+"/v1/operations/"+op.ID, nil)
		if err != nil {
			return s, err
		}
		resp, err := client.Do(hreq)
		if err != nil {
			return s, err
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return s, err
		}
		if resp.StatusCode != http.StatusOK {
			return s, fmt.Errorf("GET operation %s: %s", op.ID, resp.Status)
		}
		var cur daemon.Operation
		if err := json.Unmarshal(data, &cur); err != nil {
			return s, err
		}
		switch cur.Status {
		case daemon.StatusSucceeded:
			if cur.Result != nil {
				s.executed = cur.Result.Executed
				s.cacheHits = cur.Result.CacheHits
				s.degraded = cur.Result.Degraded
			}
			s.status = cur.Status
			return s, nil
		case daemon.StatusFailed, daemon.StatusCancelled:
			s.status = cur.Status
			return s, fmt.Errorf("operation %s %s: %s", op.ID, cur.Status, cur.Error)
		}
		select {
		case <-ctx.Done():
			return s, ctx.Err()
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// summarise folds the samples into the report.
func summarise(samples []opSample, concurrency, variants, coldEvery int, elapsed time.Duration) report {
	rep := report{
		Requests:    len(samples),
		Concurrency: concurrency,
		Variants:    variants,
		ColdEvery:   coldEvery,
		ElapsedMS:   float64(elapsed.Microseconds()) / 1000,
	}
	latencies := make([]time.Duration, 0, len(samples))
	var sum time.Duration
	var warmHits, warmTotal int
	for _, s := range samples {
		if s.err != nil {
			rep.Failed++
			continue
		}
		latencies = append(latencies, s.latency)
		sum += s.latency
		rep.Rejected429 += s.rejected
		if s.degraded {
			rep.Degraded++
		}
		if s.cold {
			rep.ColdBuilds++
		} else {
			rep.WarmBuilds++
			warmHits += s.cacheHits
			warmTotal += s.cacheHits + s.executed
		}
	}
	if len(latencies) > 0 {
		rep.P50MS = ms(percentile(latencies, 0.50))
		rep.P95MS = ms(percentile(latencies, 0.95))
		rep.P99MS = ms(percentile(latencies, 0.99))
		rep.MeanMS = ms(sum / time.Duration(len(latencies)))
	}
	if warmTotal > 0 {
		rep.WarmHitRate = float64(warmHits) / float64(warmTotal)
	}
	if elapsed > 0 {
		rep.ThroughputS = float64(len(latencies)) / elapsed.Seconds()
	}
	return rep
}

// percentile returns the p-th (0..1] latency by the nearest-rank method;
// it sorts a copy.
func percentile(d []time.Duration, p float64) time.Duration {
	if len(d) == 0 {
		return 0
	}
	s := make([]time.Duration, len(d))
	copy(s, d)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	rank := int(p*float64(len(s))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(s) {
		rank = len(s) - 1
	}
	return s[rank]
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

func renderText(rep report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "loadgen: %d requests, %d concurrent, %d warm variants, cold every %d\n",
		rep.Requests, rep.Concurrency, rep.Variants, rep.ColdEvery)
	fmt.Fprintf(&b, "  failed:        %d\n", rep.Failed)
	fmt.Fprintf(&b, "  degraded:      %d\n", rep.Degraded)
	fmt.Fprintf(&b, "  429 retries:   %d\n", rep.Rejected429)
	fmt.Fprintf(&b, "  latency p50:   %.3f ms\n", rep.P50MS)
	fmt.Fprintf(&b, "  latency p95:   %.3f ms\n", rep.P95MS)
	fmt.Fprintf(&b, "  latency p99:   %.3f ms\n", rep.P99MS)
	fmt.Fprintf(&b, "  latency mean:  %.3f ms\n", rep.MeanMS)
	fmt.Fprintf(&b, "  warm builds:   %d (cache-hit rate %.2f)\n", rep.WarmBuilds, rep.WarmHitRate)
	fmt.Fprintf(&b, "  cold builds:   %d\n", rep.ColdBuilds)
	fmt.Fprintf(&b, "  elapsed:       %.1f ms (%.1f builds/sec)\n", rep.ElapsedMS, rep.ThroughputS)
	return b.String()
}

// waitAddrFile polls for the daemon's --addr-file.
func waitAddrFile(ctx context.Context, path string) (string, error) {
	for {
		data, err := os.ReadFile(path)
		if err == nil {
			if addr := strings.TrimSpace(string(data)); addr != "" {
				return addr, nil
			}
		}
		select {
		case <-ctx.Done():
			return "", fmt.Errorf("addr-file %s: %w", path, ctx.Err())
		case <-time.After(20 * time.Millisecond):
		}
	}
}

// newClient builds the HTTP client for base: unix:PATH gets a transport
// dialling the socket (with a placeholder http host), TCP is passed
// through.
func newClient(base string) (*http.Client, string) {
	if path, ok := strings.CutPrefix(base, "unix:"); ok {
		tr := &http.Transport{
			DialContext: func(ctx context.Context, _, _ string) (net.Conn, error) {
				var d net.Dialer
				return d.DialContext(ctx, "unix", path)
			},
		}
		return &http.Client{Transport: tr}, "http://ch-imaged"
	}
	return &http.Client{}, strings.TrimRight(base, "/")
}

// waitHealthy polls /healthz until the daemon answers.
func waitHealthy(ctx context.Context, client *http.Client, base string) error {
	var lastErr error
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/healthz", nil)
		if err != nil {
			return err
		}
		resp, err := client.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
			lastErr = fmt.Errorf("healthz: %s", resp.Status)
		} else {
			lastErr = err
		}
		select {
		case <-ctx.Done():
			if lastErr != nil {
				return fmt.Errorf("%w (last: %v)", ctx.Err(), lastErr)
			}
			return ctx.Err()
		case <-time.After(20 * time.Millisecond):
		}
	}
}
