// Command benchjson converts `go test -bench` text output (the benchstat
// input format) into JSON, one object per benchmark with every reported
// metric — the machine-readable record `make bench` commits to
// BENCH_layercommit.json so the perf trajectory of the commit pipeline is
// tracked across PRs.
//
// Usage: go test -bench=. ... | benchjson > bench.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the full parsed run.
type Report struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	rep, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

func parse(r io.Reader) (*Report, error) {
	rep := &Report{Results: []Result{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		for key, dst := range map[string]*string{
			"goos:": &rep.Goos, "goarch:": &rep.Goarch,
			"pkg:": &rep.Pkg, "cpu:": &rep.CPU,
		} {
			if v, ok := strings.CutPrefix(line, key); ok {
				*dst = strings.TrimSpace(v)
			}
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		res, ok := parseLine(line)
		if ok {
			rep.Results = append(rep.Results, res)
		}
	}
	return rep, sc.Err()
}

// parseLine parses "BenchmarkName-8  20  133199 ns/op  5.0 vns/op ...":
// a name, an iteration count, then value/unit pairs.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{
		Name:       strings.TrimSuffix(fields[0], "-"+lastDashField(fields[0])),
		Iterations: iters,
		Metrics:    map[string]float64{},
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		res.Metrics[fields[i+1]] = v
	}
	return res, true
}

// lastDashField returns the GOMAXPROCS suffix ("8" in "Name-8") if the
// name carries one, else an impossible value so nothing is trimmed.
func lastDashField(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return "\x00"
	}
	suffix := name[i+1:]
	if _, err := strconv.Atoi(suffix); err != nil {
		return "\x00"
	}
	return suffix
}
