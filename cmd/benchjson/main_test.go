package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkLayerCommit/full-8         	      20	     28328 ns/op	   41074 B/op	     139 allocs/op
BenchmarkLayerCommit/incremental-8  	      20	      5731 ns/op	    5388 B/op	      55 allocs/op
BenchmarkBuildMatrix/apk-sl/none    	      20	    834143 ns/op	      6600 vns/op	  362421 B/op	    3946 allocs/op
PASS
ok  	repro	0.148s
`

func TestParseBenchOutput(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.Pkg != "repro" {
		t.Fatalf("header: %+v", rep)
	}
	if len(rep.Results) != 3 {
		t.Fatalf("results: %d", len(rep.Results))
	}
	r := rep.Results[1]
	if r.Name != "BenchmarkLayerCommit/incremental" || r.Iterations != 20 {
		t.Fatalf("result: %+v", r)
	}
	if r.Metrics["ns/op"] != 5731 || r.Metrics["allocs/op"] != 55 {
		t.Fatalf("metrics: %+v", r.Metrics)
	}
	// Custom metrics (the cost model's vns/op) survive.
	if rep.Results[2].Metrics["vns/op"] != 6600 {
		t.Fatalf("vns metric: %+v", rep.Results[2].Metrics)
	}
	// The GOMAXPROCS suffix is stripped only when numeric.
	if rep.Results[2].Name != "BenchmarkBuildMatrix/apk-sl/none" {
		t.Fatalf("name: %q", rep.Results[2].Name)
	}
}

func TestParseIgnoresGarbage(t *testing.T) {
	rep, err := parse(strings.NewReader("PASS\nok repro 0.1s\nBenchmarkBad x y\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 0 {
		t.Fatalf("garbage parsed: %+v", rep.Results)
	}
}
