// ch-imaged is the build daemon: a long-running HTTP server that accepts
// Dockerfile builds over the REST API in internal/daemon and executes
// them asynchronously on one shared pool and one shared (optionally
// persistent) cache. SIGINT/SIGTERM drains in-flight builds and exits 0.
// See docs/daemon.md for the API.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/build"
	"repro/internal/cas"
	"repro/internal/daemon"
	"repro/internal/obs"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	code := serve(ctx, os.Args[1:])
	stop()
	os.Exit(code)
}

// serve runs the daemon until ctx is cancelled; factored from main so
// tests can drive a full serve/drain cycle in-process.
func serve(ctx context.Context, args []string) int {
	fs := flag.NewFlagSet("ch-imaged", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:0", "listen address: host:port, or unix:PATH for a unix socket")
	addrFile := fs.String("addr-file", "", "write the bound address to this file once listening (clients poll it)")
	jobs := fs.Int("jobs", 4, "concurrent builds on the shared pool")
	queue := fs.Int("queue", 0, "admitted builds allowed to wait beyond --jobs running ones before 429 (0 = 2*jobs)")
	force := fs.String("force", "seccomp", "default root emulation: none, seccomp, fakeroot, proot")
	cacheDir := fs.String("cache-dir", "", "persistent build-cache directory shared by every build; the daemon holds its flock for its lifetime")
	cacheVerify := fs.String("cache-verify", "full", "cache-dir open validation: full or lazy")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight builds before cancelling them")
	transcriptTail := fs.Int("transcript-tail", 4096, "transcript bytes an operation rendering carries")
	maxOperations := fs.Int("max-operations", 512, "settled operations retained for polling; the oldest-settled are evicted past this (404 thereafter)")
	debugAddr := fs.String("debug-addr", "", "optional second listen address (host:port) serving /debug/pprof/* and /metrics")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *jobs < 1 {
		fmt.Fprintf(os.Stderr, "ch-imaged: --jobs %d: must be at least 1\n", *jobs)
		return 2
	}

	var mode build.ForceMode
	switch *force {
	case "none":
		mode = build.ForceNone
	case "seccomp":
		mode = build.ForceSeccomp
	case "fakeroot":
		mode = build.ForceFakeroot
	case "proot":
		mode = build.ForceProot
	default:
		fmt.Fprintf(os.Stderr, "ch-imaged: unknown --force mode %q\n", *force)
		return 2
	}
	var verify cas.VerifyMode
	switch *cacheVerify {
	case "full":
		verify = cas.VerifyFull
	case "lazy":
		verify = cas.VerifyLazy
	default:
		fmt.Fprintf(os.Stderr, "ch-imaged: unknown --cache-verify mode %q\n", *cacheVerify)
		return 2
	}

	cfg := daemon.Config{
		Jobs:           *jobs,
		Queue:          *queue,
		Force:          mode,
		CacheDir:       *cacheDir,
		CacheVerify:    verify,
		TranscriptTail: *transcriptTail,
		MaxOperations:  *maxOperations,
	}
	// CH_IMAGE_CAS_FAULTS injects deterministic faults into the
	// persistent store (the degraded-operation contract end to end; see
	// internal/cas.ParseFaults for the syntax).
	if spec := os.Getenv("CH_IMAGE_CAS_FAULTS"); spec != "" {
		inj, err := cas.ParseFaults(spec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ch-imaged: CH_IMAGE_CAS_FAULTS: %v\n", err)
			return 2
		}
		cfg.Faults = inj
	}

	d, err := daemon.New(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ch-imaged: %v\n", err)
		return 1
	}
	if err := d.Start(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "ch-imaged: %v\n", err)
		return 1
	}

	ln, advertised, err := listenOn(*listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ch-imaged: %v\n", err)
		drainCtx, cancel := context.WithTimeout(ctx, *drainTimeout)
		defer cancel()
		_ = d.Shutdown(drainCtx)
		return 1
	}

	srv := &http.Server{Handler: d.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "ch-imaged: listening on %s (jobs=%d)\n", advertised, *jobs)

	// The debug listener is a separate, opt-in server: pprof and the
	// metrics scrape never share a port with the build API unless the
	// operator asks (the API's own /metrics remains for same-socket
	// scrapes).
	var debugSrv *http.Server
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ch-imaged: debug-addr: %v\n", err)
			drainCtx, cancel := context.WithTimeout(ctx, *drainTimeout)
			defer cancel()
			_ = srv.Close()
			_ = d.Shutdown(drainCtx)
			return 1
		}
		debugSrv = &http.Server{Handler: debugMux()}
		go func() {
			if err := debugSrv.Serve(dln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintf(os.Stderr, "ch-imaged: debug serve: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "ch-imaged: debug listener on http://%s (pprof, metrics)\n", dln.Addr())
	}
	if *addrFile != "" {
		// Write-then-rename so pollers never read a partial address.
		tmp := *addrFile + ".tmp"
		if err := os.WriteFile(tmp, []byte(advertised+"\n"), 0o644); err == nil {
			err = os.Rename(tmp, *addrFile)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "ch-imaged: addr-file: %v\n", err)
		}
	}

	code := 0
	select {
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "ch-imaged: signal received, draining")
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "ch-imaged: serve: %v\n", err)
			code = 1
		}
	}

	// Drain: stop accepting HTTP, let in-flight builds finish within the
	// grace period, cancel stragglers, release the cas flock.
	drainCtx, cancel := context.WithTimeout(context.WithoutCancel(ctx), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		_ = srv.Close()
	}
	if debugSrv != nil {
		if err := debugSrv.Shutdown(drainCtx); err != nil {
			_ = debugSrv.Close()
		}
	}
	if err := d.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "ch-imaged: shutdown: %v\n", err)
		code = 1
	}
	fmt.Fprintln(os.Stderr, "ch-imaged: drained, exiting")
	return code
}

// debugMux builds the --debug-addr handler: the pprof surface plus the
// Prometheus scrape. Explicit registrations, not net/http/pprof's
// DefaultServeMux side effects — the build API's mux must never grow
// pprof routes by accident.
func debugMux() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/metrics", obs.Default.Handler())
	return mux
}

// listenOn opens the listener for --listen and returns the address to
// advertise in --addr-file: "http://host:port" for TCP (with the real
// ephemeral port) or "unix:PATH" for a unix socket.
func listenOn(spec string) (net.Listener, string, error) {
	if path, ok := strings.CutPrefix(spec, "unix:"); ok {
		// A stale socket file from a previous run would fail the bind.
		_ = os.Remove(path)
		ln, err := net.Listen("unix", path)
		if err != nil {
			return nil, "", fmt.Errorf("listen %s: %w", spec, err)
		}
		return ln, "unix:" + path, nil
	}
	ln, err := net.Listen("tcp", spec)
	if err != nil {
		return nil, "", fmt.Errorf("listen %s: %w", spec, err)
	}
	return ln, "http://" + ln.Addr().String(), nil
}
