package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestServeLifecycle drives a full serve cycle in-process: bind an
// ephemeral port, publish it via --addr-file, accept one build, then
// cancel the context (the SIGTERM path) and expect a clean exit 0.
func TestServeLifecycle(t *testing.T) {
	dir := t.TempDir()
	addrFile := filepath.Join(dir, "addr")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	exit := make(chan int, 1)
	go func() {
		exit <- serve(ctx, []string{
			"--listen", "127.0.0.1:0",
			"--addr-file", addrFile,
			"--jobs", "2",
			"--drain-timeout", "10s",
		})
	}()

	var base string
	deadline := time.Now().Add(10 * time.Second)
	for base == "" {
		if data, err := os.ReadFile(addrFile); err == nil {
			base = strings.TrimSpace(string(data))
		}
		if time.Now().After(deadline) {
			t.Fatal("addr-file never appeared")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !strings.HasPrefix(base, "http://") {
		t.Fatalf("advertised address %q is not http", base)
	}

	body, _ := json.Marshal(map[string]string{
		"tag":        "serve-test:latest",
		"dockerfile": "FROM alpine:3.19\nRUN echo ok > /ok\n",
	})
	resp, err := http.Post(base+"/v1/builds", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var op struct {
		ID     string `json:"id"`
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&op); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/builds: status %d", resp.StatusCode)
	}

	for {
		resp, err := http.Get(base + "/v1/operations/" + op.ID)
		if err != nil {
			t.Fatal(err)
		}
		var cur struct {
			Status string `json:"status"`
			Error  string `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&cur); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if cur.Status == "succeeded" {
			break
		}
		if cur.Status == "failed" || cur.Status == "cancelled" {
			t.Fatalf("operation %s: %s (%s)", op.ID, cur.Status, cur.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("operation %s stuck in %s", op.ID, cur.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}

	cancel()
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("serve exited %d, want 0", code)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("serve never exited after cancel")
	}
}

// TestServeFlagErrors covers the exit-2 surface.
func TestServeFlagErrors(t *testing.T) {
	cases := [][]string{
		{"--bogus"},
		{"--jobs", "0"},
		{"--force", "magic"},
		{"--cache-verify", "sometimes"},
	}
	for _, args := range cases {
		if code := serve(context.Background(), args); code != 2 {
			t.Errorf("serve(%v) = %d, want 2", args, code)
		}
	}
}

// TestListenUnix binds a unix socket and advertises unix:PATH.
func TestListenUnix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sock")
	ln, adv, err := listenOn("unix:" + path)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if adv != "unix:"+path {
		t.Fatalf("advertised %q", adv)
	}
	// A stale socket file must not fail a rebind.
	ln.Close()
	if err := os.WriteFile(path, nil, 0o600); err != nil {
		t.Fatal(err)
	}
	ln2, _, err := listenOn("unix:" + path)
	if err != nil {
		t.Fatalf("rebind over stale socket: %v", err)
	}
	ln2.Close()
}
