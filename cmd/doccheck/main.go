// doccheck is the documentation linter behind make lint-docs. For every
// Markdown file named on the command line it verifies that
//
//   - every relative link target ([text](path), images included) exists on
//     disk, resolved against the file's directory (external schemes and
//     pure #fragment anchors are skipped), and
//   - every fenced ```go example is gofmt-clean: it must parse (go/format
//     accepts whole files as well as declaration or statement fragments)
//     and be byte-identical to its formatted form.
//
// Problems are printed one per line as file:line: message and the exit
// status is 1 if any were found, so CI can gate on it.
package main

import (
	"fmt"
	"go/format"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doccheck FILE.md ...")
		os.Exit(2)
	}
	problems := 0
	for _, path := range os.Args[1:] {
		for _, p := range checkFile(path) {
			fmt.Println(p)
			problems++
		}
	}
	if problems > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d problem(s)\n", problems)
		os.Exit(1)
	}
}

// linkRE matches inline Markdown links and images; the first group is the
// target. Targets with spaces or titles are out of scope for these docs.
var linkRE = regexp.MustCompile(`!?\[[^\]]*\]\(([^()\s]+)\)`)

// checkFile lints one Markdown file and returns its problems.
func checkFile(path string) []string {
	data, err := os.ReadFile(path)
	if err != nil {
		return []string{fmt.Sprintf("%s: %v", path, err)}
	}
	var problems []string
	report := func(line int, msg string) {
		problems = append(problems, fmt.Sprintf("%s:%d: %s", path, line, msg))
	}

	lines := strings.Split(string(data), "\n")
	inFence := false // inside any fenced code block
	goStart := 0     // 1-based line of the opening ```go fence, 0 outside
	var goBlock []string
	for i, line := range lines {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "```") {
			if inFence {
				if goStart > 0 {
					checkGoBlock(report, goStart, strings.Join(goBlock, "\n"))
					goStart, goBlock = 0, nil
				}
				inFence = false
			} else {
				inFence = true
				if strings.TrimPrefix(trimmed, "```") == "go" {
					goStart = i + 1
				}
			}
			continue
		}
		if inFence {
			if goStart > 0 {
				goBlock = append(goBlock, line)
			}
			continue
		}
		for _, m := range linkRE.FindAllStringSubmatch(line, -1) {
			checkLink(report, i+1, filepath.Dir(path), m[1])
		}
	}
	if inFence {
		report(len(lines), "unterminated code fence")
	}
	return problems
}

// checkLink verifies one link target. Relative targets must exist on disk;
// anything with a scheme, and pure in-page anchors, are skipped.
func checkLink(report func(int, string), line int, dir, target string) {
	if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") ||
		strings.HasPrefix(target, "#") {
		return
	}
	target, _, _ = strings.Cut(target, "#") // strip the fragment
	if target == "" {
		return
	}
	resolved := target
	if !filepath.IsAbs(target) {
		resolved = filepath.Join(dir, target)
	}
	if _, err := os.Stat(resolved); err != nil {
		report(line, fmt.Sprintf("dead link: %s (%s does not exist)", target, resolved))
	}
}

// checkGoBlock verifies one ```go example is gofmt-clean. go/format
// accepts full files and declaration/statement fragments alike.
func checkGoBlock(report func(int, string), line int, src string) {
	formatted, err := format.Source([]byte(src))
	if err != nil {
		report(line, fmt.Sprintf("go example does not parse: %v", err))
		return
	}
	if strings.TrimRight(string(formatted), "\n") != strings.TrimRight(src, "\n") {
		report(line, "go example is not gofmt'd")
	}
}
