package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCleanFile(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "target.md", "# target\n")
	path := write(t, dir, "doc.md", `# Doc

A [relative link](target.md) and an [external one](https://example.com/x)
and an [anchor](#doc) and [with fragment](target.md#target).

`+"```go\nx := 1\nif x > 0 {\n\tx--\n}\n```\n")
	if probs := checkFile(path); len(probs) != 0 {
		t.Fatalf("problems: %v", probs)
	}
}

func TestDeadLink(t *testing.T) {
	dir := t.TempDir()
	path := write(t, dir, "doc.md", "see [missing](nope/missing.md)\n")
	probs := checkFile(path)
	if len(probs) != 1 || !strings.Contains(probs[0], "dead link") {
		t.Fatalf("problems: %v", probs)
	}
	if !strings.Contains(probs[0], "doc.md:1:") {
		t.Fatalf("missing file:line: %v", probs)
	}
}

func TestUnformattedGoExample(t *testing.T) {
	dir := t.TempDir()
	path := write(t, dir, "doc.md", "```go\nx   :=    1\n```\n")
	probs := checkFile(path)
	if len(probs) != 1 || !strings.Contains(probs[0], "not gofmt'd") {
		t.Fatalf("problems: %v", probs)
	}
}

func TestUnparsableGoExample(t *testing.T) {
	dir := t.TempDir()
	path := write(t, dir, "doc.md", "```go\nfunc {{{\n```\n")
	probs := checkFile(path)
	if len(probs) != 1 || !strings.Contains(probs[0], "does not parse") {
		t.Fatalf("problems: %v", probs)
	}
}

func TestNonGoFencesIgnored(t *testing.T) {
	dir := t.TempDir()
	path := write(t, dir, "doc.md", "```\nnot go   at all [dead](nope.md)\n```\n")
	if probs := checkFile(path); len(probs) != 0 {
		t.Fatalf("problems: %v", probs)
	}
}

func TestUnterminatedFence(t *testing.T) {
	dir := t.TempDir()
	path := write(t, dir, "doc.md", "```go\nx := 1\n")
	probs := checkFile(path)
	if len(probs) == 0 || !strings.Contains(probs[len(probs)-1], "unterminated") {
		t.Fatalf("problems: %v", probs)
	}
}
