// seccomp-probe installs the zero-consistency root-emulation filter into
// the REAL kernel (Linux only) and probes its behaviour: chown to root,
// setuid, and the kexec_load self-test. It prints one line per probe:
//
//	probe <name> errno=<n>
//
// Exit status 0 when the filter behaves as the paper describes (all
// privileged probes return success), 1 otherwise, 2 when the host cannot
// install filters.
//
// Installation is irrevocable for the process, which is why this lives in
// its own binary: the native tests re-exec it and parse the output.
package main

import (
	"fmt"
	"os"
	"runtime"
	"syscall"
	"unsafe"

	"repro/internal/core"
	"repro/internal/seccomp"
)

func main() {
	host, ok := seccomp.HostArch()
	if !ok || !seccomp.NativeAvailable() {
		fmt.Println("probe unsupported host")
		os.Exit(2)
	}
	filter, err := core.NewFilter(core.Config{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "seccomp-probe: generate: %v\n", err)
		os.Exit(2)
	}
	if err := seccomp.InstallNative(filter); err != nil {
		fmt.Fprintf(os.Stderr, "seccomp-probe: install: %v\n", err)
		os.Exit(2)
	}
	fmt.Printf("installed filter: %d instructions on %s/%s\n",
		filter.Len(), runtime.GOOS, host.Name)

	fail := false
	probe := func(name string, trap uintptr, args ...uintptr) {
		var a [6]uintptr
		copy(a[:], args)
		_, _, errno := syscall.Syscall6(trap, a[0], a[1], a[2], a[3], a[4], a[5])
		fmt.Printf("probe %s errno=%d\n", name, int(errno))
		if errno != 0 {
			fail = true
		}
	}

	// chown("/", 12345, 12345): normally EPERM for an unprivileged
	// process; under the filter, faked success.
	if nr, ok := host.Number("chown"); ok {
		path := append([]byte("/"), 0)
		probe("chown", uintptr(nr), ptr(path), 12345, 12345)
	} else if nr, ok := host.Number("fchownat"); ok {
		path := append([]byte("/"), 0)
		probe("fchownat", uintptr(nr), ^uintptr(99) /* AT_FDCWD=-100 */, ptr(path), 12345, 12345, 0)
	}
	// setuid(12345): normally EPERM.
	if nr, ok := host.Number("setuid"); ok {
		probe("setuid", uintptr(nr), 12345)
	}
	// The self-test (§5 class 4): kexec_load normally EPERM, faked 0.
	if nr, ok := host.Number("kexec_load"); ok {
		probe("kexec_load", uintptr(nr), 0, 0, 0, 0)
	}
	// Verify the lie: getuid must be unchanged despite the "successful"
	// setuid — zero consistency on the real kernel.
	fmt.Printf("probe getuid-after-setuid uid=%d\n", os.Getuid())

	if fail {
		os.Exit(1)
	}
}

func ptr(b []byte) uintptr {
	if len(b) == 0 {
		return 0
	}
	return uintptr(unsafe.Pointer(&b[0]))
}
