# Tier-1 gate (see ROADMAP.md): the module must build, vet clean and pass
# every test from a clean checkout.
.PHONY: check build test vet race bench experiments lint-docs

check: vet test

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

# The concurrency gate: the pool, the shared caches and the registry must
# be race-clean with the detector on.
race:
	go test -race ./...

# One pass over every benchmark, including the E8/E15 build matrix. The
# raw output (benchstat input format) lands in BENCH_layercommit.txt and a
# parsed JSON record in BENCH_layercommit.json, so the perf trajectory of
# the commit pipeline is recorded run over run (CI uploads both).
# (No pipe into tee: that would mask go test's exit status.)
# BenchmarkBuildParallel gets its own multi-sample run recorded in
# BENCH_parallel.{txt,json}: the pool's scaling claim (a cold 16-build
# pool completes in far less than 16× a single build) is checked against
# those numbers. BenchmarkBuildMultiStage likewise lands in
# BENCH_multistage.{txt,json}: the stage-DAG schedule (stage-jobs=2 vs the
# serial schedule, plus the warm replay) stays recorded run over run.
bench:
	go test -bench=. -skip='BenchmarkBuildParallel|BenchmarkBuildMultiStage' -benchtime=1x -run='^$$' . > BENCH_layercommit.txt; \
		status=$$?; cat BENCH_layercommit.txt; exit $$status
	go run ./cmd/benchjson < BENCH_layercommit.txt > BENCH_layercommit.json
	go test -bench=BenchmarkBuildParallel -benchtime=5x -run='^$$' . > BENCH_parallel.txt; \
		status=$$?; cat BENCH_parallel.txt; exit $$status
	go run ./cmd/benchjson < BENCH_parallel.txt > BENCH_parallel.json
	go test -bench=BenchmarkBuildMultiStage -benchtime=5x -run='^$$' . > BENCH_multistage.txt; \
		status=$$?; cat BENCH_multistage.txt; exit $$status
	go run ./cmd/benchjson < BENCH_multistage.txt > BENCH_multistage.json

# Documentation gate: every relative link in the Markdown docs must
# resolve and every ```go example must be gofmt-clean (cmd/doccheck).
lint-docs:
	go run ./cmd/doccheck README.md ROADMAP.md CHANGES.md docs/*.md

# The full paper reproduction report (E1–E18).
experiments:
	go run ./cmd/experiments
