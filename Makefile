# Tier-1 gate (see ROADMAP.md): the module must build, vet clean and pass
# every test from a clean checkout.
.PHONY: check build test vet bench experiments

check: vet test

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

# One pass over every benchmark, including the E8/E15 build matrix.
bench:
	go test -bench=. -benchtime=1x -run='^$$' .

# The full paper reproduction report (E1–E16).
experiments:
	go run ./cmd/experiments
