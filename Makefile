# Tier-1 gate (see ROADMAP.md): the module must build, vet clean and pass
# every test from a clean checkout.
.PHONY: check build test vet bench experiments

check: vet test

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

# One pass over every benchmark, including the E8/E15 build matrix. The
# raw output (benchstat input format) lands in BENCH_layercommit.txt and a
# parsed JSON record in BENCH_layercommit.json, so the perf trajectory of
# the commit pipeline is recorded run over run (CI uploads both).
# (No pipe into tee: that would mask go test's exit status.)
bench:
	go test -bench=. -benchtime=1x -run='^$$' . > BENCH_layercommit.txt; \
		status=$$?; cat BENCH_layercommit.txt; exit $$status
	go run ./cmd/benchjson < BENCH_layercommit.txt > BENCH_layercommit.json

# The full paper reproduction report (E1–E16).
experiments:
	go run ./cmd/experiments
