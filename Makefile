# Tier-1 gate (see ROADMAP.md): the module must build, vet clean and pass
# every test from a clean checkout.
.PHONY: check build test vet race bench bench-daemon experiments lint lint-docs cache-smoke fault-smoke daemon-smoke

check: vet test

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

# The concurrency gate: the pool, the shared caches and the registry must
# be race-clean with the detector on.
race:
	go test -race ./...

# One pass over every benchmark, including the E8/E15 build matrix. The
# raw output (benchstat input format) lands in BENCH_layercommit.txt and a
# parsed JSON record in BENCH_layercommit.json, so the perf trajectory of
# the commit pipeline is recorded run over run (CI uploads both).
# (No pipe into tee: that would mask go test's exit status.)
# BenchmarkBuildParallel gets its own multi-sample run recorded in
# BENCH_parallel.{txt,json}: the pool's scaling claim (a cold 16-build
# pool completes in far less than 16× a single build) is checked against
# those numbers. BenchmarkBuildMultiStage likewise lands in
# BENCH_multistage.{txt,json}: the stage-DAG schedule (stage-jobs=2 vs the
# serial schedule, plus the warm replay) stays recorded run over run.
# BenchmarkBuildPersistent lands in BENCH_persistent.{txt,json}: the
# persistent-cache claim (a warm-from-disk invocation with completely
# fresh in-memory state lands far under a cold one, approaching the
# in-memory warm rebuild) stays recorded run over run.
# BenchmarkCacheOpen lands in BENCH_cas.{txt,json}: the --cache-verify
# claim (a lazy open of a large store skips the O(store bytes) fsck and
# lands far — at least 5× — under the full-verify open) stays recorded
# run over run.
# BenchmarkObsOverhead lands in BENCH_obs.{txt,json}: the observability
# instrumentation's cost on the warm build path, instrumented vs
# obs.SetDisabled — the <3% acceptance ceiling in docs/observability.md
# is checked against these numbers.
bench:
	go test -bench=. -skip='BenchmarkBuildParallel|BenchmarkBuildMultiStage|BenchmarkBuildPersistent|BenchmarkCacheOpen|BenchmarkObsOverhead' -benchtime=1x -run='^$$' . > BENCH_layercommit.txt; \
		status=$$?; cat BENCH_layercommit.txt; exit $$status
	go run ./cmd/benchjson < BENCH_layercommit.txt > BENCH_layercommit.json
	go test -bench=BenchmarkBuildParallel -benchtime=5x -run='^$$' . > BENCH_parallel.txt; \
		status=$$?; cat BENCH_parallel.txt; exit $$status
	go run ./cmd/benchjson < BENCH_parallel.txt > BENCH_parallel.json
	go test -bench=BenchmarkBuildMultiStage -benchtime=5x -run='^$$' . > BENCH_multistage.txt; \
		status=$$?; cat BENCH_multistage.txt; exit $$status
	go run ./cmd/benchjson < BENCH_multistage.txt > BENCH_multistage.json
	go test -bench=BenchmarkBuildPersistent -benchtime=5x -run='^$$' . > BENCH_persistent.txt; \
		status=$$?; cat BENCH_persistent.txt; exit $$status
	go run ./cmd/benchjson < BENCH_persistent.txt > BENCH_persistent.json
	go test -bench=BenchmarkCacheOpen -benchtime=5x -run='^$$' . > BENCH_cas.txt; \
		status=$$?; cat BENCH_cas.txt; exit $$status
	go run ./cmd/benchjson < BENCH_cas.txt > BENCH_cas.json
	go test -bench=BenchmarkObsOverhead -benchtime=5x -run='^$$' . > BENCH_obs.txt; \
		status=$$?; cat BENCH_obs.txt; exit $$status
	go run ./cmd/benchjson < BENCH_obs.txt > BENCH_obs.json
	$(MAKE) bench-daemon

# The service-throughput benchmark behind BENCH_daemon.{txt,json}: a real
# ch-imaged subprocess with --jobs 4 takes 64 concurrent mixed warm/cold
# loadgen builds. The loadgen exit status IS the acceptance gate: zero
# failed operations and a >=75% warm cache-hit rate, with p50/p95/p99
# latency recorded run over run.
DAEMON_BENCH_DIR ?= .daemon-bench
bench-daemon:
	@rm -rf $(DAEMON_BENCH_DIR) && mkdir -p $(DAEMON_BENCH_DIR)
	go build -o $(DAEMON_BENCH_DIR)/ch-imaged ./cmd/ch-imaged
	go build -o $(DAEMON_BENCH_DIR)/loadgen ./cmd/loadgen
	@$(DAEMON_BENCH_DIR)/ch-imaged --listen 127.0.0.1:0 --jobs 4 --queue 128 \
		--cache-dir $(DAEMON_BENCH_DIR)/cas \
		--addr-file $(DAEMON_BENCH_DIR)/addr 2> $(DAEMON_BENCH_DIR)/daemon.log & \
		daemon_pid=$$!; \
		$(DAEMON_BENCH_DIR)/loadgen --addr-file $(DAEMON_BENCH_DIR)/addr \
			-n 64 -c 8 --variants 4 --cold-every 16 --min-hit-rate 0.75 \
			--out BENCH_daemon.txt --json BENCH_daemon.json; load_status=$$?; \
		kill -TERM $$daemon_pid; wait $$daemon_pid; daemon_status=$$?; \
		if [ $$load_status -ne 0 ] || [ $$daemon_status -ne 0 ]; then \
			echo "bench-daemon FAILED (loadgen=$$load_status daemon=$$daemon_status)"; \
			cat $(DAEMON_BENCH_DIR)/daemon.log; exit 1; \
		fi
	@echo "bench-daemon OK: 64 builds served, daemon drained cleanly"

# The cross-invocation acceptance check: two ch-image builds in two
# SEPARATE processes against one --cache-dir; the second must execute
# nothing. CACHE_SMOKE_DIR is overridable so CI can persist the cas
# fixture between jobs and runs (exercising warm-from-disk open-time
# validation on every CI run).
CACHE_SMOKE_DIR ?= .cache-smoke
cache-smoke:
	@mkdir -p $(CACHE_SMOKE_DIR)/ctx
	@printf 'FROM alpine:3.19\nRUN apk add sl\nRUN mkdir -p /srv && echo cached > /srv/marker\n' > $(CACHE_SMOKE_DIR)/ctx/Dockerfile
	go run ./cmd/ch-image build -t smoke:1 --cache-dir $(CACHE_SMOKE_DIR)/cas $(CACHE_SMOKE_DIR)/ctx > $(CACHE_SMOKE_DIR)/first.out
	go run ./cmd/ch-image build -t smoke:1 --cache-dir $(CACHE_SMOKE_DIR)/cas $(CACHE_SMOKE_DIR)/ctx > $(CACHE_SMOKE_DIR)/second.out
	@grep -q '^instructions executed: 0 ' $(CACHE_SMOKE_DIR)/second.out || \
		{ echo "cache-smoke FAILED: second process executed instructions:"; cat $(CACHE_SMOKE_DIR)/second.out; exit 1; }
	@echo "cache-smoke OK: second process ran fully warm from $(CACHE_SMOKE_DIR)/cas"
	@# Cross-process flock: a build and a budgeted gc race on ONE
	@# --cache-dir. The gc's exclusive lock conversion blocks behind the
	@# build's shared hold (up to --lock-wait) instead of rewriting the
	@# journal underneath it; both must exit 0 in any interleaving.
	go run ./cmd/ch-image build -t smoke:2 --cache-dir $(CACHE_SMOKE_DIR)/cas $(CACHE_SMOKE_DIR)/ctx > $(CACHE_SMOKE_DIR)/third.out & \
		build_pid=$$!; \
		go run ./cmd/ch-image cache --cache-dir $(CACHE_SMOKE_DIR)/cas gc --max-bytes 1073741824 > $(CACHE_SMOKE_DIR)/gc.out; gc_status=$$?; \
		wait $$build_pid; build_status=$$?; \
		if [ $$gc_status -ne 0 ] || [ $$build_status -ne 0 ]; then \
			echo "cache-smoke FAILED: concurrent build/gc (build=$$build_status gc=$$gc_status)"; \
			cat $(CACHE_SMOKE_DIR)/third.out $(CACHE_SMOKE_DIR)/gc.out; exit 1; \
		fi
	@echo "cache-smoke OK: concurrent build and gc on one store both succeeded"
	@# Bound the fixture: CI restores+saves this dir forever, so collect
	@# everything the tagged images don't reach before it is cached again.
	go run ./cmd/ch-image cache --cache-dir $(CACHE_SMOKE_DIR)/cas gc smoke:2

# The fault-injection soak (deterministic per FAULT_SOAK_SEED): seeded
# randomized builds against a persistent store with faults injected at
# every cas failpoint — torn blob writes, rename and read errors, ENOSPC
# on the journal, lock busyness. Every build must either succeed
# (degraded allowed) or fail with a clean error, and the store must
# reopen with zero damage after every single build. Invariant violations
# are appended to FAULT_SOAK_LOG, which CI uploads on failure.
FAULT_SOAK_BUILDS ?= 200
FAULT_SOAK_SEED ?= 1
FAULT_SOAK_LOG ?= $(abspath fault-soak.log)
FAULT_SOAK_DAEMON_BUILDS ?= 48
fault-smoke:
	FAULT_SOAK_BUILDS=$(FAULT_SOAK_BUILDS) FAULT_SOAK_SEED=$(FAULT_SOAK_SEED) \
		FAULT_SOAK_LOG=$(FAULT_SOAK_LOG) \
		go test -run TestFaultSoak -count=1 -v ./internal/build
	FAULT_SOAK_DAEMON_BUILDS=$(FAULT_SOAK_DAEMON_BUILDS) FAULT_SOAK_SEED=$(FAULT_SOAK_SEED) \
		go test -run TestDaemonFaultSoak -count=1 -v ./internal/daemon

# The daemon subprocess smoke: a real ch-imaged on a unix socket takes two
# loadgen builds, then SIGTERM drains in-flight work and the process exits
# 0 — the service analog of cache-smoke.
DAEMON_SMOKE_DIR ?= .daemon-smoke
daemon-smoke:
	@rm -rf $(DAEMON_SMOKE_DIR) && mkdir -p $(DAEMON_SMOKE_DIR)
	go build -o $(DAEMON_SMOKE_DIR)/ch-imaged ./cmd/ch-imaged
	go build -o $(DAEMON_SMOKE_DIR)/loadgen ./cmd/loadgen
	@$(DAEMON_SMOKE_DIR)/ch-imaged --listen unix:$(DAEMON_SMOKE_DIR)/sock --jobs 2 \
		--cache-dir $(DAEMON_SMOKE_DIR)/cas \
		--addr-file $(DAEMON_SMOKE_DIR)/addr 2> $(DAEMON_SMOKE_DIR)/daemon.log & \
		daemon_pid=$$!; \
		$(DAEMON_SMOKE_DIR)/loadgen --addr-file $(DAEMON_SMOKE_DIR)/addr \
			-n 2 -c 2 --variants 2 --cold-every 0 --scrape > $(DAEMON_SMOKE_DIR)/loadgen.out; load_status=$$?; \
		kill -TERM $$daemon_pid; wait $$daemon_pid; daemon_status=$$?; \
		if [ $$load_status -ne 0 ] || [ $$daemon_status -ne 0 ]; then \
			echo "daemon-smoke FAILED (loadgen=$$load_status daemon=$$daemon_status)"; \
			cat $(DAEMON_SMOKE_DIR)/daemon.log $(DAEMON_SMOKE_DIR)/loadgen.out; exit 1; \
		fi
	@grep -q 'drained, exiting' $(DAEMON_SMOKE_DIR)/daemon.log || \
		{ echo "daemon-smoke FAILED: no clean drain message:"; cat $(DAEMON_SMOKE_DIR)/daemon.log; exit 1; }
	@echo "daemon-smoke OK: unix-socket daemon served 2 builds and drained on SIGTERM"

# Static-analysis gate: go vet plus the project's own analyzers
# (cmd/chlint → internal/analysis, stdlib-only; see docs/analysis.md).
# chlint exits 1 on any finding; the report file is written either way
# so CI can archive it. CHLINT_REPORT is overridable for CI artifacts.
CHLINT_REPORT ?= chlint-report.txt
lint:
	go vet ./...
	go run ./cmd/chlint -o $(CHLINT_REPORT) ./...

# Documentation gate: every relative link in the Markdown docs must
# resolve and every ```go example must be gofmt-clean (cmd/doccheck).
lint-docs:
	go run ./cmd/doccheck README.md ROADMAP.md CHANGES.md docs/*.md

# The full paper reproduction report (E1–E19).
experiments:
	go run ./cmd/experiments
