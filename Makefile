# Tier-1 gate (see ROADMAP.md): the module must build, vet clean and pass
# every test from a clean checkout.
.PHONY: check build test vet race bench experiments

check: vet test

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

# The concurrency gate: the pool, the shared caches and the registry must
# be race-clean with the detector on.
race:
	go test -race ./...

# One pass over every benchmark, including the E8/E15 build matrix. The
# raw output (benchstat input format) lands in BENCH_layercommit.txt and a
# parsed JSON record in BENCH_layercommit.json, so the perf trajectory of
# the commit pipeline is recorded run over run (CI uploads both).
# (No pipe into tee: that would mask go test's exit status.)
# BenchmarkBuildParallel gets its own multi-sample run recorded in
# BENCH_parallel.{txt,json}: the pool's scaling claim (a cold 16-build
# pool completes in far less than 16× a single build) is checked against
# those numbers.
bench:
	go test -bench=. -skip=BenchmarkBuildParallel -benchtime=1x -run='^$$' . > BENCH_layercommit.txt; \
		status=$$?; cat BENCH_layercommit.txt; exit $$status
	go run ./cmd/benchjson < BENCH_layercommit.txt > BENCH_layercommit.json
	go test -bench=BenchmarkBuildParallel -benchtime=5x -run='^$$' . > BENCH_parallel.txt; \
		status=$$?; cat BENCH_parallel.txt; exit $$status
	go run ./cmd/benchjson < BENCH_parallel.txt > BENCH_parallel.json

# The full paper reproduction report (E1–E16).
experiments:
	go run ./cmd/experiments
