// Package core implements the paper's primary contribution: Charliecloud's
// zero-consistency root emulation (§5). It generates a seccomp BPF filter
// that intercepts the privileged system calls distribution package managers
// issue during container image build, executes nothing, and returns success
// — "telling processes simple lies instead of complex ones".
//
// The package provides:
//
//   - the inventory of the 29 filtered syscalls in the paper's four classes
//     (file ownership, identity/capability manipulation, the mknod pair
//     with file-type argument inspection, and the kexec_load self-test);
//
//   - a filter generator producing one multi-architecture BPF program (or
//     single-architecture programs) with either linear or binary-tree
//     syscall dispatch (an ablation the benches compare);
//
//   - variants: the Enroot-style reduced set (§3: "trap all setuid-related
//     syscalls"), the extended xattr set (future work #1), and an ID-only
//     consistency mode built on SECCOMP_RET_USER_NOTIF (future work #2);
//
//   - the apt(8) sandbox workaround (§5): RUN-instruction rewriting that
//     injects -o APT::Sandbox::User=root.
package core

import "sort"

// Class is one of the paper's four categories of filtered syscalls (§5).
type Class int

const (
	// ClassOwnership is file-ownership changes: chown(2) and friends.
	// 7 syscalls across the supported ABIs.
	ClassOwnership Class = iota
	// ClassIdentity is user/group/capability manipulation: setresuid(2),
	// capset(2), etc. 19 syscalls.
	ClassIdentity
	// ClassMknod is mknod(2)/mknodat(2), privileged only when creating
	// device files; the filter inspects the file-type argument.
	ClassMknod
	// ClassSelfTest is kexec_load(2), never needed by HPC applications and
	// therefore used to validate the filter after installation.
	ClassSelfTest
)

func (c Class) String() string {
	switch c {
	case ClassOwnership:
		return "file-ownership"
	case ClassIdentity:
		return "identity/capability"
	case ClassMknod:
		return "mknod"
	case ClassSelfTest:
		return "self-test"
	}
	return "unknown"
}

// FilteredSyscall names one intercepted syscall and its class.
type FilteredSyscall struct {
	Name  string
	Class Class
}

// ownershipSyscalls: the 7 file-ownership syscalls (§5 class 1). The *32
// variants exist only on legacy 32-bit ABIs; the generator emits a rule per
// architecture only when that architecture implements the call.
var ownershipSyscalls = []string{
	"chown", "lchown", "fchown",
	"chown32", "lchown32", "fchown32",
	"fchownat",
}

// identitySyscalls: the 19 identity and capability syscalls (§5 class 2).
var identitySyscalls = []string{
	"setuid", "setgid", "setreuid", "setregid",
	"setgroups", "setresuid", "setresgid", "setfsuid", "setfsgid",
	"setuid32", "setgid32", "setreuid32", "setregid32",
	"setgroups32", "setresuid32", "setresgid32", "setfsuid32", "setfsgid32",
	"capset",
}

// mknodSyscalls: class 3, argument-inspected.
var mknodSyscalls = []string{"mknod", "mknodat"}

// selfTestSyscall: class 4.
const selfTestSyscall = "kexec_load"

// xattrSyscalls is the future-work extension set (§6: "an optional wider
// set of emulated syscalls, such as setxattr(2), which may allow systemd to
// be installed").
var xattrSyscalls = []string{"setxattr", "lsetxattr", "fsetxattr"}

// Inventory returns the filtered-syscall inventory for a variant, sorted by
// class then name. For VariantCharliecloud it contains exactly the paper's
// 29 entries.
func Inventory(v Variant) []FilteredSyscall {
	var out []FilteredSyscall
	add := func(names []string, c Class) {
		for _, n := range names {
			out = append(out, FilteredSyscall{Name: n, Class: c})
		}
	}
	switch v {
	case VariantEnroot:
		// "[w]e use a seccomp filter to trap all setuid-related syscalls,
		// to make them succeed" — identity class only, no ownership, no
		// mknod inspection, no self-test. The paper calls this filter
		// "less complete than Charliecloud's".
		add(identitySyscalls, ClassIdentity)
	case VariantExtended:
		add(ownershipSyscalls, ClassOwnership)
		add(identitySyscalls, ClassIdentity)
		add(xattrSyscalls, ClassIdentity)
		add(mknodSyscalls, ClassMknod)
		add([]string{selfTestSyscall}, ClassSelfTest)
	default: // VariantCharliecloud
		add(ownershipSyscalls, ClassOwnership)
		add(identitySyscalls, ClassIdentity)
		add(mknodSyscalls, ClassMknod)
		add([]string{selfTestSyscall}, ClassSelfTest)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Class != out[j].Class {
			return out[i].Class < out[j].Class
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// InventoryByClass groups the inventory, for the §5 table test and the
// simplicity comparison (E9).
func InventoryByClass(v Variant) map[Class][]string {
	m := make(map[Class][]string)
	for _, fs := range Inventory(v) {
		m[fs.Class] = append(m[fs.Class], fs.Name)
	}
	return m
}
