package core

import "strings"

// apt(8) workaround (§5). Debian's apt by default setresuid()s to the _apt
// user before downloading packages and then *verifies* via getresuid() that
// the drop took effect. Under zero-consistency emulation the setresuid is
// faked, the verification sees the original IDs, and apt aborts. The paper
// works around this "awkwardly by detecting apt(8) and apt-get(8) in RUN
// instructions and injecting -o APT::Sandbox::User=root into their command
// lines, which disables privilege dropping for download."

// AptSandboxOption is the exact option injected after the command word.
const AptSandboxOption = "-o APT::Sandbox::User=root"

// aptCommands are the command words that trigger injection.
var aptCommands = map[string]bool{"apt": true, "apt-get": true}

// RewriteAptCommand scans a shell command line and injects AptSandboxOption
// after every apt/apt-get command word. It returns the (possibly rewritten)
// line and the number of injections, which the builder sums into the
// "--force=seccomp: modified N RUN instructions" report (Fig. 2 prints 0
// because yum needs no rewriting).
//
// Detection is deliberately word-based, like Charliecloud's: a command word
// is the first token of the line or any token following one of the shell
// separators && || ; | ( or an env-var prefix. Paths are honoured
// (/usr/bin/apt-get counts); quoted strings are not parsed (a command line
// inside quotes is a string, not a command).
func RewriteAptCommand(line string) (string, int) {
	tokens := tokenizeShellish(line)
	injections := 0
	var out []token
	expectCommand := true
	for _, tok := range tokens {
		out = append(out, tok)
		if tok.kind == tokSeparator {
			expectCommand = true
			continue
		}
		if tok.kind != tokWord {
			continue
		}
		if expectCommand {
			word := tok.text
			// Skip env-var assignments (FOO=bar cmd ...) and sudo-ish
			// prefixes that keep the next word a command.
			if strings.Contains(word, "=") && !strings.HasPrefix(word, "=") {
				continue // still expecting the command word
			}
			if word == "sudo" || word == "env" || word == "nice" {
				continue
			}
			base := word
			if i := strings.LastIndexByte(base, '/'); i >= 0 {
				base = base[i+1:]
			}
			if aptCommands[base] && !strings.Contains(line, "APT::Sandbox::User") {
				out = append(out, token{kind: tokWord, text: AptSandboxOption})
				injections++
			}
			expectCommand = false
		}
	}
	if injections == 0 {
		return line, 0
	}
	var b strings.Builder
	for i, tok := range out {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(tok.text)
	}
	return b.String(), injections
}

// IsAptInvocation reports whether the command line invokes apt or apt-get
// anywhere, for diagnostics and tests.
func IsAptInvocation(line string) bool {
	_, n := RewriteAptCommand(line)
	if n > 0 {
		return true
	}
	// Already-rewritten lines still count as apt invocations.
	for _, tok := range tokenizeShellish(line) {
		if tok.kind == tokWord {
			base := tok.text
			if i := strings.LastIndexByte(base, '/'); i >= 0 {
				base = base[i+1:]
			}
			if aptCommands[base] {
				return true
			}
		}
	}
	return false
}

type tokenKind int

const (
	tokWord tokenKind = iota
	tokSeparator
	tokQuoted
)

type token struct {
	kind tokenKind
	text string
}

// tokenizeShellish splits a command line into words, separators and quoted
// strings — just enough shell awareness for safe injection, per the paper's
// own "awkwardly" caveat. It never errors; unterminated quotes swallow the
// rest of the line as a quoted token.
func tokenizeShellish(line string) []token {
	var out []token
	i := 0
	n := len(line)
	for i < n {
		c := line[i]
		switch {
		case c == ' ' || c == '\t':
			i++
		case c == '&' && i+1 < n && line[i+1] == '&':
			out = append(out, token{tokSeparator, "&&"})
			i += 2
		case c == '|' && i+1 < n && line[i+1] == '|':
			out = append(out, token{tokSeparator, "||"})
			i += 2
		case c == ';':
			out = append(out, token{tokSeparator, ";"})
			i++
		case c == '|':
			out = append(out, token{tokSeparator, "|"})
			i++
		case c == '(' || c == ')':
			out = append(out, token{tokSeparator, string(c)})
			i++
		case c == '\'' || c == '"':
			quote := c
			j := i + 1
			for j < n && line[j] != quote {
				if quote == '"' && line[j] == '\\' && j+1 < n {
					j++
				}
				j++
			}
			if j < n {
				j++
			}
			out = append(out, token{tokQuoted, line[i:j]})
			i = j
		default:
			j := i
			for j < n && !strings.ContainsRune(" \t;|()'\"&", rune(line[j])) {
				j++
			}
			out = append(out, token{tokWord, line[i:j]})
			i = j
		}
	}
	return out
}
