package core

import (
	"testing"

	"repro/internal/bpf"
	"repro/internal/seccomp"
	"repro/internal/sysarch"
)

// evalFiltered runs a generated filter against one synthetic syscall.
func evalFiltered(t *testing.T, cfg Config, arch *sysarch.Arch, name string, args ...uint64) uint32 {
	t.Helper()
	f, err := NewFilter(cfg)
	if err != nil {
		t.Fatalf("NewFilter: %v", err)
	}
	nr, ok := arch.Number(name)
	if !ok {
		t.Fatalf("%s has no syscall %s", arch, name)
	}
	d := seccomp.Data{NR: int32(nr), Arch: arch.AuditArch}
	copy(d.Args[:], args)
	return f.EvaluateData(&d)
}

func TestFilterSyscallInventory(t *testing.T) {
	// §5: "The 29 privileged syscalls we filter fall into four classes."
	byClass := InventoryByClass(VariantCharliecloud)
	if n := len(byClass[ClassOwnership]); n != 7 {
		t.Errorf("ownership class has %d syscalls, want 7: %v", n, byClass[ClassOwnership])
	}
	if n := len(byClass[ClassIdentity]); n != 19 {
		t.Errorf("identity class has %d syscalls, want 19: %v", n, byClass[ClassIdentity])
	}
	if n := len(byClass[ClassMknod]); n != 2 {
		t.Errorf("mknod class has %d syscalls, want 2: %v", n, byClass[ClassMknod])
	}
	if n := len(byClass[ClassSelfTest]); n != 1 {
		t.Errorf("self-test class has %d syscalls, want 1: %v", n, byClass[ClassSelfTest])
	}
	if n := len(Inventory(VariantCharliecloud)); n != 29 {
		t.Errorf("total filtered syscalls %d, want 29", n)
	}
}

func TestEnrootVariantSmaller(t *testing.T) {
	// §3: Enroot's filter "is less complete than Charliecloud's".
	if e, c := len(Inventory(VariantEnroot)), len(Inventory(VariantCharliecloud)); e >= c {
		t.Fatalf("enroot inventory (%d) must be smaller than charliecloud's (%d)", e, c)
	}
	for _, fs := range Inventory(VariantEnroot) {
		if fs.Class != ClassIdentity {
			t.Errorf("enroot variant must only trap identity syscalls, has %s (%s)", fs.Name, fs.Class)
		}
	}
}

func TestExtendedVariantAddsXattr(t *testing.T) {
	names := map[string]bool{}
	for _, fs := range Inventory(VariantExtended) {
		names[fs.Name] = true
	}
	for _, want := range []string{"setxattr", "lsetxattr", "fsetxattr"} {
		if !names[want] {
			t.Errorf("extended variant missing %s", want)
		}
	}
}

func TestFilterAllArches(t *testing.T) {
	// Every architecture section must fake its ownership and identity
	// syscalls and allow unfiltered ones — with the *same multi-arch
	// program*, because the arch can vary within a process (§4).
	f := MustNewFilter(Config{})
	for _, arch := range sysarch.All() {
		for _, name := range []string{"fchown", "fchownat", "setuid", "setgroups", "capset", "setresuid"} {
			nr := arch.MustNumber(name)
			d := seccomp.Data{NR: int32(nr), Arch: arch.AuditArch}
			got := f.EvaluateData(&d)
			if seccomp.Action(got) != seccomp.RetErrnoBase || seccomp.ActionData(got) != 0 {
				t.Errorf("%s/%s: got %s, want ERRNO(0)", arch, name, seccomp.ActionName(got))
			}
		}
		for _, name := range []string{"read", "write", "close", "execve", "prctl"} {
			nr := arch.MustNumber(name)
			d := seccomp.Data{NR: int32(nr), Arch: arch.AuditArch}
			if got := f.EvaluateData(&d); got != seccomp.RetAllow {
				t.Errorf("%s/%s: got %s, want ALLOW", arch, name, seccomp.ActionName(got))
			}
		}
	}
}

func TestFilterPerArchNumbersDiffer(t *testing.T) {
	// The same syscall *name* maps to different numbers per arch; feeding
	// x86_64's chown number with an arm audit arch must NOT be faked
	// (arm's 92 is truncate(2) territory, not chown).
	f := MustNewFilter(Config{})
	x86nr := sysarch.X8664.MustNumber("chown") // 92
	d := seccomp.Data{NR: int32(x86nr), Arch: sysarch.ARM.AuditArch}
	if got := f.EvaluateData(&d); got != seccomp.RetAllow {
		t.Fatalf("nr 92 on arm must be allowed, got %s", seccomp.ActionName(got))
	}
}

func TestFilterUnknownArchDefaultAllow(t *testing.T) {
	f := MustNewFilter(Config{})
	d := seccomp.Data{NR: 92, Arch: 0xdeadbeef}
	if got := f.EvaluateData(&d); got != seccomp.RetAllow {
		t.Fatalf("unknown arch: got %s, want ALLOW", seccomp.ActionName(got))
	}
}

func TestFilterUnknownArchKillOption(t *testing.T) {
	f := MustNewFilter(Config{KillUnknownArch: true})
	d := seccomp.Data{NR: 92, Arch: 0xdeadbeef}
	if got := f.EvaluateData(&d); got != seccomp.RetKillProcess {
		t.Fatalf("unknown arch with kill: got %s", seccomp.ActionName(got))
	}
}

func TestMknodDispositionByType(t *testing.T) {
	// §5 class 3: fake device files, execute other types. mknod's mode is
	// args[1], mknodat's args[2].
	const (
		ifreg  = 0x8000
		ififo  = 0x1000
		ifsock = 0xc000
		ifchr  = 0x2000
		ifblk  = 0x6000
	)
	cases := []struct {
		mode     uint64
		wantFake bool
	}{
		{ifchr | 0644, true},
		{ifblk | 0600, true},
		{ifreg | 0644, false},
		{ififo | 0644, false},
		{ifsock | 0644, false},
		{0644, false}, // type 0 = regular file
	}
	for _, arch := range sysarch.All() {
		for _, c := range cases {
			if arch.Has("mknod") {
				got := evalFiltered(t, Config{}, arch, "mknod", 0, c.mode, 0)
				assertFakeOrAllow(t, arch.Name+"/mknod", c.mode, got, c.wantFake)
			}
			got := evalFiltered(t, Config{}, arch, "mknodat", 0, 0, c.mode, 0)
			assertFakeOrAllow(t, arch.Name+"/mknodat", c.mode, got, c.wantFake)
		}
	}
}

func assertFakeOrAllow(t *testing.T, label string, mode uint64, got uint32, wantFake bool) {
	t.Helper()
	if wantFake {
		if seccomp.Action(got) != seccomp.RetErrnoBase || seccomp.ActionData(got) != 0 {
			t.Errorf("%s mode %#x: got %s, want ERRNO(0)", label, mode, seccomp.ActionName(got))
		}
	} else if got != seccomp.RetAllow {
		t.Errorf("%s mode %#x: got %s, want ALLOW", label, mode, seccomp.ActionName(got))
	}
}

func TestKexecSelfTestDisposition(t *testing.T) {
	// §5 class 4: kexec_load is filtered purely so installation can be
	// validated: under the filter it returns success.
	for _, arch := range sysarch.All() {
		got := evalFiltered(t, Config{}, arch, "kexec_load")
		if seccomp.Action(got) != seccomp.RetErrnoBase || seccomp.ActionData(got) != 0 {
			t.Errorf("%s: kexec_load got %s, want ERRNO(0)", arch, seccomp.ActionName(got))
		}
	}
	// The Enroot variant does NOT fake kexec_load — no self-test protocol.
	got := evalFiltered(t, Config{Variant: VariantEnroot}, sysarch.X8664, "kexec_load")
	if got != seccomp.RetAllow {
		t.Errorf("enroot: kexec_load got %s, want ALLOW", seccomp.ActionName(got))
	}
}

func TestEnrootVariantMissesChown(t *testing.T) {
	// The E2 failure mode survives under Enroot's filter: rpm's chown is
	// not trapped.
	got := evalFiltered(t, Config{Variant: VariantEnroot}, sysarch.X8664, "chown")
	if got != seccomp.RetAllow {
		t.Fatalf("enroot filter must not trap chown, got %s", seccomp.ActionName(got))
	}
	// But identity calls are faked.
	got = evalFiltered(t, Config{Variant: VariantEnroot}, sysarch.X8664, "setuid")
	if seccomp.Action(got) != seccomp.RetErrnoBase {
		t.Fatalf("enroot filter must fake setuid, got %s", seccomp.ActionName(got))
	}
}

func TestExtendedVariantFakesXattr(t *testing.T) {
	for _, name := range []string{"setxattr", "lsetxattr", "fsetxattr"} {
		got := evalFiltered(t, Config{Variant: VariantExtended}, sysarch.X8664, name)
		if seccomp.Action(got) != seccomp.RetErrnoBase {
			t.Errorf("extended: %s got %s, want ERRNO(0)", name, seccomp.ActionName(got))
		}
		// Standard filter allows them through (and they fail EPERM for
		// privileged namespaces in a real userns).
		got = evalFiltered(t, Config{}, sysarch.X8664, name)
		if got != seccomp.RetAllow {
			t.Errorf("standard: %s got %s, want ALLOW", name, seccomp.ActionName(got))
		}
	}
}

func TestIDConsistencyRoutesIdentityToUserNotif(t *testing.T) {
	cfg := Config{IDConsistency: true}
	for _, name := range []string{"setuid", "setresuid", "setgroups", "capset"} {
		got := evalFiltered(t, cfg, sysarch.X8664, name)
		if seccomp.Action(got) != seccomp.RetUserNotif {
			t.Errorf("%s: got %s, want USER_NOTIF", name, seccomp.ActionName(got))
		}
	}
	// Ownership stays zero-consistency.
	got := evalFiltered(t, cfg, sysarch.X8664, "chown")
	if seccomp.Action(got) != seccomp.RetErrnoBase {
		t.Fatalf("chown under IDConsistency: got %s, want ERRNO(0)", seccomp.ActionName(got))
	}
}

func TestFakeErrnoOption(t *testing.T) {
	got := evalFiltered(t, Config{FakeErrno: 1}, sysarch.X8664, "chown")
	if seccomp.Action(got) != seccomp.RetErrnoBase || seccomp.ActionData(got) != 1 {
		t.Fatalf("got %s, want ERRNO(1)", seccomp.ActionName(got))
	}
}

func TestLinearAndTreeDispatchAgree(t *testing.T) {
	// Ablation safety: both strategies must produce identical dispositions
	// for every syscall number in a broad range, on every arch.
	lin := MustNewFilter(Config{Strategy: DispatchLinear})
	tree := MustNewFilter(Config{Strategy: DispatchTree})
	for _, arch := range sysarch.All() {
		for nr := int32(0); nr < 512; nr++ {
			d := seccomp.Data{NR: nr, Arch: arch.AuditArch}
			d.Args[1] = 0x2000 // device mode, in case nr is mknod
			d.Args[2] = 0x2000
			l := lin.EvaluateData(&d)
			r := tree.EvaluateData(&d)
			if l != r {
				t.Fatalf("%s nr %d: linear %s, tree %s", arch, nr,
					seccomp.ActionName(l), seccomp.ActionName(r))
			}
		}
	}
}

func TestGeneratedProgramIsSeccompValid(t *testing.T) {
	for _, v := range []Variant{VariantCharliecloud, VariantEnroot, VariantExtended} {
		for _, s := range []Strategy{DispatchLinear, DispatchTree} {
			prog, err := Generate(Config{Variant: v, Strategy: s})
			if err != nil {
				t.Fatalf("%s/%s: %v", v, s, err)
			}
			if err := prog.ValidateSeccomp(); err != nil {
				t.Fatalf("%s/%s: %v", v, s, err)
			}
		}
	}
}

func TestSingleArchFilterSmaller(t *testing.T) {
	multi, _ := Generate(Config{})
	single, _ := Generate(Config{Arches: []*sysarch.Arch{sysarch.X8664}})
	if len(single) >= len(multi) {
		t.Fatalf("single-arch program (%d insns) must be smaller than multi-arch (%d)",
			len(single), len(multi))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(Config{})
	b, _ := Generate(Config{})
	if !bpf.Equal(a, b) {
		t.Fatal("generation must be deterministic")
	}
}

func TestInterceptSurfaceComparison(t *testing.T) {
	// E9 (§6 simplicity): the zero-consistency filter intercepts fewer
	// syscalls than a consistent emulator must. A consistent fakeroot must
	// additionally hook the *read-back* surface (stat family, getuid
	// family, getxattr...) to keep its lies coherent; the paper's filter
	// hooks none of those.
	zero := len(Inventory(VariantCharliecloud))
	// Read-back surface a consistent emulator hooks on top (see
	// internal/baseline): stat, lstat, fstat, newfstatat, getuid, geteuid,
	// getgid, getegid, getresuid, getresgid, getgroups, capget, ...
	consistentExtra := 12
	if zero >= zero+consistentExtra {
		t.Fatal("arithmetic broke")
	}
	if zero != 29 {
		t.Fatalf("zero-consistency surface is %d, want 29", zero)
	}
}

func TestTreeDispatchShortensWorstCase(t *testing.T) {
	// The ablation's static justification: the tree program's worst-case
	// execution path is strictly shorter than the linear ladder's, at the
	// cost of more total instructions.
	lin, _ := Generate(Config{Strategy: DispatchLinear})
	tree, _ := Generate(Config{Strategy: DispatchTree})
	ls, err := bpf.Analyze(lin)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := bpf.Analyze(tree)
	if err != nil {
		t.Fatal(err)
	}
	if ts.Longest >= ls.Longest {
		t.Fatalf("tree worst case %d must beat linear %d", ts.Longest, ls.Longest)
	}
	if len(tree) <= len(lin) {
		t.Fatalf("tree size %d should exceed linear %d (the trade-off)", len(tree), len(lin))
	}
	t.Logf("linear: %d insns, worst path %d; tree: %d insns, worst path %d",
		len(lin), ls.Longest, len(tree), ts.Longest)
}
