package core

import (
	"strings"
	"testing"
)

func TestRewriteAptCommandBasic(t *testing.T) {
	got, n := RewriteAptCommand("apt-get install -y curl")
	if n != 1 {
		t.Fatalf("injections = %d, want 1", n)
	}
	want := "apt-get " + AptSandboxOption + " install -y curl"
	if got != want {
		t.Fatalf("got %q, want %q", got, want)
	}
}

func TestRewriteAptCommandApt(t *testing.T) {
	got, n := RewriteAptCommand("apt install -y vim")
	if n != 1 || !strings.Contains(got, AptSandboxOption) {
		t.Fatalf("got %q (%d injections)", got, n)
	}
}

func TestRewriteAptCommandAbsolutePath(t *testing.T) {
	_, n := RewriteAptCommand("/usr/bin/apt-get update")
	if n != 1 {
		t.Fatalf("absolute path apt-get not detected, injections = %d", n)
	}
}

func TestRewriteAptCommandMultiple(t *testing.T) {
	line := "apt-get update && apt-get install -y gcc"
	got, n := RewriteAptCommand(line)
	if n != 2 {
		t.Fatalf("injections = %d, want 2: %q", n, got)
	}
	if c := strings.Count(got, AptSandboxOption); c != 2 {
		t.Fatalf("option appears %d times: %q", c, got)
	}
}

func TestRewriteAptCommandAfterSemicolonAndEnvPrefix(t *testing.T) {
	got, n := RewriteAptCommand("DEBIAN_FRONTEND=noninteractive apt-get install -y tzdata; echo done")
	if n != 1 {
		t.Fatalf("env-prefixed apt-get not detected: %q (%d)", got, n)
	}
	if !strings.HasPrefix(got, "DEBIAN_FRONTEND=noninteractive apt-get "+AptSandboxOption) {
		t.Fatalf("option not after the command word: %q", got)
	}
}

func TestRewriteAptCommandNoApt(t *testing.T) {
	for _, line := range []string{
		"yum install -y openssh",
		"apk add sl",
		"echo apt-get is great",     // apt-get is not in command position
		"ls | grep apt",             // ditto
		"aptitude install x",        // different tool, not rewritten
		"cat /etc/apt/sources.list", // path mention, not an invocation
	} {
		got, n := RewriteAptCommand(line)
		if n != 0 {
			t.Errorf("%q: unexpected injection -> %q", line, got)
		}
		if got != line {
			t.Errorf("%q: line changed without injection: %q", line, got)
		}
	}
}

func TestRewriteAptCommandIdempotent(t *testing.T) {
	once, n1 := RewriteAptCommand("apt-get install -y curl")
	if n1 != 1 {
		t.Fatal("first rewrite failed")
	}
	twice, n2 := RewriteAptCommand(once)
	if n2 != 0 || twice != once {
		t.Fatalf("rewrite not idempotent: %q -> %q (%d)", once, twice, n2)
	}
}

func TestRewriteAptCommandQuotedStringsUntouched(t *testing.T) {
	line := `sh -c "apt-get moo"`
	got, n := RewriteAptCommand(line)
	if n != 0 || got != line {
		t.Fatalf("quoted apt-get must not be rewritten: %q (%d)", got, n)
	}
}

func TestIsAptInvocation(t *testing.T) {
	if !IsAptInvocation("apt-get update") {
		t.Error("apt-get update should be detected")
	}
	if !IsAptInvocation("apt-get " + AptSandboxOption + " update") {
		t.Error("already-rewritten line should still be detected")
	}
	if IsAptInvocation("yum install -y openssh") {
		t.Error("yum is not apt")
	}
}

func TestRewritePipelinesAndSubshells(t *testing.T) {
	got, n := RewriteAptCommand("(apt-get update) | tee log")
	if n != 1 || !strings.Contains(got, AptSandboxOption) {
		t.Fatalf("subshell apt-get not detected: %q (%d)", got, n)
	}
}
