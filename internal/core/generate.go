package core

import (
	"fmt"
	"sort"

	"repro/internal/bpf"
	"repro/internal/seccomp"
	"repro/internal/sysarch"
)

// Variant selects the filtered-syscall set.
type Variant int

const (
	// VariantCharliecloud is the paper's filter: 29 syscalls in 4 classes.
	VariantCharliecloud Variant = iota
	// VariantEnroot is the reduced setuid-only filter the paper credits to
	// Enroot (§3), for the completeness comparison.
	VariantEnroot
	// VariantExtended adds the setxattr family (§6 future work 1).
	VariantExtended
)

func (v Variant) String() string {
	switch v {
	case VariantEnroot:
		return "enroot"
	case VariantExtended:
		return "extended"
	}
	return "charliecloud"
}

// Strategy selects how the generated program dispatches on the syscall
// number — the DESIGN.md ablation. Linear matches Charliecloud's generated
// jeq ladder; Tree emits a balanced binary search over the sorted numbers,
// trading instructions for comparisons on the worst-case path.
type Strategy int

const (
	DispatchLinear Strategy = iota
	DispatchTree
)

func (s Strategy) String() string {
	if s == DispatchTree {
		return "tree"
	}
	return "linear"
}

// Config parameterises filter generation. The zero value generates the
// paper's filter for all six architectures.
type Config struct {
	Variant  Variant
	Strategy Strategy

	// Arches lists target architectures; nil means all six supported ones.
	// The generated program checks seccomp_data.arch and contains one
	// dispatch section per architecture, because "the current architecture
	// ... can vary even within a process" (§4).
	Arches []*sysarch.Arch

	// KillUnknownArch makes the filter kill processes running an
	// architecture outside Arches instead of allowing them unfiltered.
	// Charliecloud allows (an unknown arch means an ABI we cannot
	// emulate root for, and breaking the build outright helps nobody).
	KillUnknownArch bool

	// FakeErrno is the errno carried by the fake-success return. The paper
	// uses 0 ("return success"); experiments set e.g. EPERM to measure how
	// far a build gets when lies are refused rather than believed.
	FakeErrno uint16

	// IDConsistency routes the identity class to SECCOMP_RET_USER_NOTIF
	// instead of ERRNO(0), letting a user-space supervisor record uid/gid
	// changes (§6 future work 2). Ownership and mknod stay zero-consistency.
	IDConsistency bool
}

func (c Config) arches() []*sysarch.Arch {
	if len(c.Arches) > 0 {
		return c.Arches
	}
	return sysarch.All()
}

// File-type constants for the mknod argument inspection (§5 class 3): the
// filter may fake only device-file creation; other node types are
// unprivileged and must execute normally.
const (
	sIFMT  = 0xf000
	sIFCHR = 0x2000
	sIFBLK = 0x6000
)

// Generate builds the root-emulation BPF program for cfg. The result is
// seccomp-valid by construction; NewFilter wraps it with verification all
// the same, mirroring the kernel's refusal to trust any loader.
func Generate(cfg Config) (bpf.Program, error) {
	arches := cfg.arches()
	if len(arches) == 0 {
		return nil, fmt.Errorf("core: no target architectures")
	}
	fake := seccomp.RetErrno(cfg.FakeErrno)
	unknown := seccomp.RetAllow
	if cfg.KillUnknownArch {
		unknown = seccomp.RetKillProcess
	}

	a := bpf.NewAssembler()
	// Architecture dispatch. Conditional branches are 8-bit, so each jeq
	// lands on an adjacent trampoline that long-jumps to the section.
	a.LoadAbsW(seccomp.OffArch)
	for _, arch := range arches {
		a.JeqImm(arch.AuditArch, "tramp_"+arch.Name, "")
	}
	a.Ret(unknown)
	for _, arch := range arches {
		a.Label("tramp_" + arch.Name)
		a.Ja("sec_" + arch.Name)
	}

	for _, arch := range arches {
		if err := emitArchSection(a, arch, cfg, fake); err != nil {
			return nil, err
		}
	}
	prog, err := a.Assemble()
	if err != nil {
		return nil, fmt.Errorf("core: assembling %s/%s filter: %w", cfg.Variant, cfg.Strategy, err)
	}
	if err := prog.ValidateSeccomp(); err != nil {
		return nil, fmt.Errorf("core: generated filter invalid: %w", err)
	}
	return prog, nil
}

// dispatchEntry is one syscall-number→label pair in an arch section.
type dispatchEntry struct {
	nr     uint32
	target string
}

func emitArchSection(a *bpf.Assembler, arch *sysarch.Arch, cfg Config, fake uint32) error {
	suffix := "_" + arch.Name
	entries := make([]dispatchEntry, 0, 32)
	sawMknod := map[string]bool{}
	for _, fs := range Inventory(cfg.Variant) {
		nr, ok := arch.Number(fs.Name)
		if !ok {
			continue // e.g. chown on arm64 (§5 fn. 7)
		}
		target := "fake" + suffix
		switch {
		case fs.Class == ClassMknod:
			target = fs.Name + suffix // per-syscall check: mode argument position differs
			sawMknod[fs.Name] = true
		case fs.Class == ClassIdentity && cfg.IDConsistency:
			target = "notif" + suffix
		}
		entries = append(entries, dispatchEntry{nr: uint32(nr), target: target})
	}
	if len(entries) == 0 {
		return fmt.Errorf("core: variant %s has no syscalls on %s", cfg.Variant, arch.Name)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].nr < entries[j].nr })

	a.Label("sec" + suffix)
	a.LoadAbsW(seccomp.OffNR)
	allow := "allow" + suffix
	switch cfg.Strategy {
	case DispatchTree:
		emitTree(a, entries, allow, suffix, new(int))
	default:
		for _, e := range entries {
			a.JeqImm(e.nr, e.target, "")
		}
		a.Ja(allow)
	}

	// mknod(path, mode, dev): mode is args[1]; mknodat(dirfd, path, mode,
	// dev): args[2]. Fake device-file creation, execute everything else —
	// "[w]e must examine the file type argument before faking success
	// (device file) or allowing the syscall (other types)" (§5).
	if sawMknod["mknod"] {
		a.Label("mknod" + suffix)
		a.LoadAbsW(seccomp.OffArgLo(arch, 1))
		emitModeCheck(a, suffix)
	}
	if sawMknod["mknodat"] {
		a.Label("mknodat" + suffix)
		a.LoadAbsW(seccomp.OffArgLo(arch, 2))
		emitModeCheck(a, suffix)
	}

	if cfg.IDConsistency {
		a.Label("notif" + suffix)
		a.Ret(seccomp.RetUserNotif)
	}
	a.Label(allow)
	a.Ret(seccomp.RetAllow)
	a.Label("fake" + suffix)
	a.Ret(fake)
	return nil
}

// emitModeCheck emits: A &= S_IFMT; device type → fake, else allow.
func emitModeCheck(a *bpf.Assembler, suffix string) {
	a.ALUAndImm(sIFMT)
	a.JeqImm(sIFCHR, "fake"+suffix, "")
	a.JeqImm(sIFBLK, "fake"+suffix, "")
	a.Ja("allow" + suffix)
}

// emitTree emits a balanced binary search over entries (sorted by nr). The
// accumulator already holds the syscall number. Leaves of ≤4 entries fall
// back to a short jeq ladder.
func emitTree(a *bpf.Assembler, entries []dispatchEntry, allow, suffix string, seq *int) {
	if len(entries) <= 4 {
		for _, e := range entries {
			a.JeqImm(e.nr, e.target, "")
		}
		a.Ja(allow)
		return
	}
	mid := len(entries) / 2
	*seq++
	right := fmt.Sprintf("tree%d%s", *seq, suffix)
	a.JgeImm(entries[mid].nr, right, "")
	emitTree(a, entries[:mid], allow, suffix, seq)
	a.Label(right)
	emitTree(a, entries[mid:], allow, suffix, seq)
}

// NewFilter generates and verifies a filter for cfg. The filter's
// architecture is nil (multi-arch) unless cfg names exactly one.
func NewFilter(cfg Config) (*seccomp.Filter, error) {
	prog, err := Generate(cfg)
	if err != nil {
		return nil, err
	}
	var arch *sysarch.Arch
	if len(cfg.Arches) == 1 {
		arch = cfg.Arches[0]
	}
	name := fmt.Sprintf("ch-rootemu/%s/%s", cfg.Variant, cfg.Strategy)
	return seccomp.New(name, arch, prog)
}

// MustNewFilter is NewFilter for static configurations; generation can only
// fail on a programming error, which should crash loudly.
func MustNewFilter(cfg Config) *seccomp.Filter {
	f, err := NewFilter(cfg)
	if err != nil {
		panic(err)
	}
	return f
}
