// Package sysarch holds the per-architecture system-call tables that
// Charliecloud's root-emulation filter is generated from. The paper (§5)
// notes that the source has "a table listing the numbers for each syscall on
// each of the six supported architectures"; this package is that table,
// covering x86_64, i386, arm, arm64, ppc64le and s390x.
//
// Two facts from the paper are load-bearing and encoded here:
//
//   - Syscall numbers vary per architecture, and a seccomp filter sees
//     numbers, not names (§4), so the filter generator must consult this
//     table for the target architecture.
//
//   - Some syscalls do not exist everywhere — "arm64 lacks chown(2),
//     relying on user-space code to translate its calls to fchownat(2)
//     instead" (§5 fn. 7). Lookup therefore reports absence rather than
//     inventing numbers, and the generator emits rules only for syscalls the
//     architecture actually has.
package sysarch

import (
	"fmt"
	"sort"
)

// AUDIT_ARCH_* values as the kernel reports them in seccomp_data.arch.
// Composed from the ELF machine number plus the 64-bit and little-endian
// flag bits (include/uapi/linux/audit.h).
const (
	auditArch64Bit = 0x80000000
	auditArchLE    = 0x40000000

	AuditArchX8664   = auditArch64Bit | auditArchLE | 62  // EM_X86_64
	AuditArchI386    = auditArchLE | 3                    // EM_386
	AuditArchARM     = auditArchLE | 40                   // EM_ARM
	AuditArchAARCH64 = auditArch64Bit | auditArchLE | 183 // EM_AARCH64
	AuditArchPPC64LE = auditArch64Bit | auditArchLE | 21  // EM_PPC64
	AuditArchS390X   = auditArch64Bit | 22                // EM_S390, big-endian
)

// Arch describes one CPU architecture's syscall ABI.
type Arch struct {
	Name      string // canonical short name, e.g. "x86_64"
	AuditArch uint32 // value of seccomp_data.arch
	Bits      int    // pointer width: 32 or 64
	BigEndian bool   // byte order of the ABI

	byName map[string]int
	byNr   map[int]string
}

// Number returns the syscall number for name, or ok=false when the
// architecture does not implement that syscall (e.g. chown on arm64).
func (a *Arch) Number(name string) (nr int, ok bool) {
	nr, ok = a.byName[name]
	return
}

// MustNumber is Number for syscalls the caller has already confirmed exist;
// it panics on absence, indicating a bug in a generator table.
func (a *Arch) MustNumber(name string) int {
	nr, ok := a.byName[name]
	if !ok {
		panic(fmt.Sprintf("sysarch: %s has no syscall %q", a.Name, name))
	}
	return nr
}

// SyscallName translates a syscall number back to its name, or a
// "sys_<nr>" placeholder for numbers outside the table (the sim kernel
// prints these in strace output rather than failing).
func (a *Arch) SyscallName(nr int) string {
	if name, ok := a.byNr[nr]; ok {
		return name
	}
	return fmt.Sprintf("sys_%d", nr)
}

// Has reports whether the architecture implements the named syscall.
func (a *Arch) Has(name string) bool {
	_, ok := a.byName[name]
	return ok
}

// Names returns all syscall names in the table, sorted, mainly for
// inventory tests.
func (a *Arch) Names() []string {
	out := make([]string, 0, len(a.byName))
	for n := range a.byName {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func (a *Arch) String() string { return a.Name }

func newArch(name string, audit uint32, bits int, be bool, table map[string]int) *Arch {
	a := &Arch{
		Name: name, AuditArch: audit, Bits: bits, BigEndian: be,
		byName: table, byNr: make(map[int]string, len(table)),
	}
	for n, nr := range table {
		if prev, dup := a.byNr[nr]; dup {
			panic(fmt.Sprintf("sysarch: %s: syscall number %d assigned to both %q and %q", name, nr, prev, n))
		}
		a.byNr[nr] = n
	}
	return a
}

// The six supported architectures. X8664 doubles as the default ABI of the
// simulated kernel.
var (
	X8664   = newArch("x86_64", AuditArchX8664, 64, false, x8664Table)
	I386    = newArch("i386", AuditArchI386, 32, false, i386Table)
	ARM     = newArch("arm", AuditArchARM, 32, false, armTable)
	ARM64   = newArch("arm64", AuditArchAARCH64, 64, false, arm64Table)
	PPC64LE = newArch("ppc64le", AuditArchPPC64LE, 64, false, ppc64leTable)
	S390X   = newArch("s390x", AuditArchS390X, 64, true, s390xTable)
)

// All lists every supported architecture, in the order Charliecloud's table
// documents them.
func All() []*Arch {
	return []*Arch{X8664, I386, ARM, ARM64, PPC64LE, S390X}
}

// ByName resolves an architecture by its canonical name.
func ByName(name string) (*Arch, bool) {
	for _, a := range All() {
		if a.Name == name {
			return a, true
		}
	}
	return nil, false
}

// ByAuditArch resolves an architecture from a seccomp_data.arch value.
func ByAuditArch(audit uint32) (*Arch, bool) {
	for _, a := range All() {
		if a.AuditArch == audit {
			return a, true
		}
	}
	return nil, false
}
