package sysarch

import "testing"

func TestSixArchitectures(t *testing.T) {
	all := All()
	if len(all) != 6 {
		t.Fatalf("paper supports 6 architectures, table has %d", len(all))
	}
	names := map[string]bool{}
	for _, a := range all {
		names[a.Name] = true
	}
	for _, want := range []string{"x86_64", "i386", "arm", "arm64", "ppc64le", "s390x"} {
		if !names[want] {
			t.Errorf("missing architecture %s", want)
		}
	}
}

func TestAuditArchValues(t *testing.T) {
	// Values from include/uapi/linux/audit.h.
	cases := []struct {
		arch *Arch
		want uint32
	}{
		{X8664, 0xc000003e},
		{I386, 0x40000003},
		{ARM, 0x40000028},
		{ARM64, 0xc00000b7},
		{PPC64LE, 0xc0000015},
		{S390X, 0x80000016},
	}
	for _, c := range cases {
		if c.arch.AuditArch != c.want {
			t.Errorf("%s: audit arch %#x, want %#x", c.arch, c.arch.AuditArch, c.want)
		}
	}
}

func TestEndiannessAndBits(t *testing.T) {
	if !S390X.BigEndian {
		t.Error("s390x must be big-endian")
	}
	for _, a := range []*Arch{X8664, I386, ARM, ARM64, PPC64LE} {
		if a.BigEndian {
			t.Errorf("%s must be little-endian", a)
		}
	}
	for _, a := range []*Arch{I386, ARM} {
		if a.Bits != 32 {
			t.Errorf("%s must be 32-bit", a)
		}
	}
	for _, a := range []*Arch{X8664, ARM64, PPC64LE, S390X} {
		if a.Bits != 64 {
			t.Errorf("%s must be 64-bit", a)
		}
	}
}

func TestKnownSyscallNumbers(t *testing.T) {
	// Spot checks against the kernel's unistd tables.
	cases := []struct {
		arch *Arch
		name string
		want int
	}{
		{X8664, "chown", 92},
		{X8664, "fchownat", 260},
		{X8664, "mknod", 133},
		{X8664, "mknodat", 259},
		{X8664, "kexec_load", 246},
		{X8664, "capset", 126},
		{X8664, "setresuid", 117},
		{I386, "chown32", 212},
		{I386, "setuid32", 213},
		{I386, "mknod", 14},
		{I386, "kexec_load", 283},
		{ARM, "fchownat", 325},
		{ARM, "kexec_load", 347},
		{ARM64, "fchownat", 54},
		{ARM64, "mknodat", 33},
		{ARM64, "capset", 91},
		{ARM64, "kexec_load", 104},
		{PPC64LE, "chown", 181},
		{PPC64LE, "kexec_load", 268},
		{S390X, "chown", 212},
		{S390X, "kexec_load", 277},
	}
	for _, c := range cases {
		nr, ok := c.arch.Number(c.name)
		if !ok {
			t.Errorf("%s: missing %s", c.arch, c.name)
			continue
		}
		if nr != c.want {
			t.Errorf("%s: %s = %d, want %d", c.arch, c.name, nr, c.want)
		}
	}
}

func TestArm64LacksLegacySyscalls(t *testing.T) {
	// §5 footnote 7: "arm64 lacks chown(2), relying on user-space code to
	// translate its calls to fchownat(2) instead."
	for _, name := range []string{"chown", "lchown", "mknod", "open", "mkdir", "chown32"} {
		if ARM64.Has(name) {
			t.Errorf("arm64 must not implement %s", name)
		}
	}
	for _, name := range []string{"fchownat", "fchown", "mknodat", "openat", "mkdirat"} {
		if !ARM64.Has(name) {
			t.Errorf("arm64 must implement %s", name)
		}
	}
}

func TestLegacy32BitVariantsOnlyOn32BitABIs(t *testing.T) {
	for _, a := range []*Arch{I386, ARM} {
		for _, name := range []string{"chown32", "setuid32", "setgroups32", "setfsgid32"} {
			if !a.Has(name) {
				t.Errorf("%s must implement %s", a, name)
			}
		}
	}
	for _, a := range []*Arch{X8664, ARM64, PPC64LE, S390X} {
		for _, name := range []string{"chown32", "setuid32"} {
			if a.Has(name) {
				t.Errorf("%s must not implement %s", a, name)
			}
		}
	}
}

func TestNumberNameRoundTrip(t *testing.T) {
	for _, a := range All() {
		for _, name := range a.Names() {
			nr, ok := a.Number(name)
			if !ok {
				t.Fatalf("%s: Names() returned unknown %s", a, name)
			}
			if got := a.SyscallName(nr); got != name {
				t.Errorf("%s: round trip %s -> %d -> %s", a, name, nr, got)
			}
		}
	}
}

func TestSyscallNameUnknown(t *testing.T) {
	if got := X8664.SyscallName(99999); got != "sys_99999" {
		t.Errorf("unknown syscall rendered %q", got)
	}
}

func TestMustNumberPanicsOnAbsent(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNumber on absent syscall must panic")
		}
	}()
	ARM64.MustNumber("chown")
}

func TestByName(t *testing.T) {
	a, ok := ByName("s390x")
	if !ok || a != S390X {
		t.Fatal("ByName(s390x) failed")
	}
	if _, ok := ByName("mips"); ok {
		t.Fatal("ByName(mips) must fail")
	}
}

func TestByAuditArch(t *testing.T) {
	for _, a := range All() {
		got, ok := ByAuditArch(a.AuditArch)
		if !ok || got != a {
			t.Errorf("ByAuditArch(%#x) = %v, want %s", a.AuditArch, got, a)
		}
	}
	if _, ok := ByAuditArch(0xdeadbeef); ok {
		t.Fatal("unknown audit arch must not resolve")
	}
}

func TestEveryArchHasCoreWorkloadSyscalls(t *testing.T) {
	// The simulated package managers need these everywhere (modulo the
	// legacy/at split, both covered).
	for _, a := range All() {
		for _, name := range []string{"read", "write", "close", "execve",
			"fchown", "fchownat", "setuid", "setgid", "setgroups",
			"setresuid", "capset", "mknodat", "kexec_load", "prctl", "seccomp"} {
			if !a.Has(name) {
				t.Errorf("%s: missing workload syscall %s", a, name)
			}
		}
	}
}
