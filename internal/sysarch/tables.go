package sysarch

// Syscall number tables. Each table covers (a) the 29 syscalls the paper's
// filter intercepts (§5: 7 ownership + 19 identity/capability + 2 mknod +
// kexec_load) where the architecture implements them, and (b) the common
// syscalls the simulated workloads issue (file I/O, metadata, process
// management), so that strace-style traces and per-arch filter tests read
// like real ones. Numbers follow the kernel's per-arch unistd tables.
//
// Architectural quirks preserved deliberately:
//   - 32-bit legacy ABIs (i386, arm, s390 heritage) carry *32-suffixed
//     variants of the identity syscalls; 64-bit ABIs do not.
//   - arm64 has no chown/lchown/mknod/open/mkdir etc.: only the *at forms.
//   - s390x keeps the s390 numbering where the 32-bit-uid variants replaced
//     the 16-bit ones at their old slots, so there are no *32 names.

var x8664Table = map[string]int{
	// common
	"read": 0, "write": 1, "open": 2, "close": 3, "stat": 4, "fstat": 5,
	"lstat": 6, "lseek": 8, "mmap": 9, "ioctl": 16, "access": 21, "pipe": 22,
	"dup": 32, "getpid": 39, "socket": 41, "connect": 42, "sendto": 44,
	"recvfrom": 45, "clone": 56, "fork": 57, "execve": 59, "exit": 60,
	"wait4": 61, "kill": 62, "uname": 63, "fcntl": 72, "getcwd": 79,
	"chdir": 80, "rename": 82, "mkdir": 83, "rmdir": 84, "creat": 85,
	"link": 86, "unlink": 87, "symlink": 88, "readlink": 89, "chmod": 90,
	"fchmod": 91, "umask": 95, "getuid": 102, "getgid": 104, "geteuid": 107,
	"getegid": 108, "getppid": 110, "getgroups": 115, "getresuid": 118,
	"getresgid": 120, "capget": 125, "utime": 132, "pivot_root": 155,
	"prctl": 157, "chroot": 161, "mount": 165, "umount2": 166, "gettid": 186,
	"setxattr": 188, "lsetxattr": 189, "fsetxattr": 190, "getxattr": 191,
	"lgetxattr": 192, "fgetxattr": 193, "listxattr": 194, "removexattr": 197,
	"exit_group": 231, "openat": 257, "mkdirat": 258, "futimesat": 261,
	"newfstatat": 262, "unlinkat": 263, "renameat": 264, "linkat": 265,
	"symlinkat": 266, "readlinkat": 267, "fchmodat": 268, "faccessat": 269,
	"unshare": 272, "utimensat": 280, "seccomp": 317,
	// filtered: ownership (x86_64 has 4 of the 7; no 16-bit legacy forms)
	"chown": 92, "fchown": 93, "lchown": 94, "fchownat": 260,
	// filtered: identity & capabilities
	"setuid": 105, "setgid": 106, "setreuid": 113, "setregid": 114,
	"setgroups": 116, "setresuid": 117, "setresgid": 119, "setfsuid": 122,
	"setfsgid": 123, "capset": 126,
	// filtered: mknod family
	"mknod": 133, "mknodat": 259,
	// filtered: self-test
	"kexec_load": 246,
}

var i386Table = map[string]int{
	// common
	"exit": 1, "fork": 2, "read": 3, "write": 4, "open": 5, "close": 6,
	"creat": 8, "link": 9, "unlink": 10, "execve": 11, "chdir": 12,
	"chmod": 15, "lseek": 19, "mount": 21, "access": 33, "kill": 37,
	"rename": 38, "mkdir": 39, "rmdir": 40, "dup": 41, "pipe": 42,
	"ioctl": 54, "fcntl": 55, "umask": 60, "chroot": 61, "getppid": 64,
	"symlink": 83, "readlink": 85, "fchmod": 94, "socketcall": 102,
	"stat": 106, "lstat": 107, "fstat": 108, "uname": 122, "clone": 120,
	"fchdir": 133, "umount2": 52, "getpid": 20, "getcwd": 183,
	"pivot_root": 217, "prctl": 172, "getuid": 199, "getgid": 200,
	"geteuid": 201, "getegid": 202, "getgroups": 205, "getresuid": 209,
	"getresgid": 211, "capget": 184, "exit_group": 252, "utimensat": 320,
	"setxattr": 226, "lsetxattr": 227, "fsetxattr": 228, "getxattr": 229,
	"lgetxattr": 230, "fgetxattr": 231, "listxattr": 232, "removexattr": 235,
	"openat": 295, "mkdirat": 296, "futimesat": 299, "newfstatat": 300,
	"unlinkat": 301, "renameat": 302, "linkat": 303, "symlinkat": 304,
	"readlinkat": 305, "fchmodat": 306, "faccessat": 307, "unshare": 310,
	"wait4": 114, "seccomp": 354,
	// filtered: ownership — 16-bit legacy forms plus 32-bit variants (7)
	"lchown": 16, "fchown": 95, "chown": 182,
	"lchown32": 198, "fchown32": 207, "chown32": 212, "fchownat": 298,
	// filtered: identity & capabilities — legacy + *32 (19 with capset)
	"setuid": 23, "setgid": 46, "setreuid": 70, "setregid": 71,
	"setgroups": 81, "setfsuid": 138, "setfsgid": 139, "setresuid": 164,
	"setresgid":  170,
	"setreuid32": 203, "setregid32": 204, "setgroups32": 206,
	"setresuid32": 208, "setresgid32": 210, "setuid32": 213, "setgid32": 214,
	"setfsuid32": 215, "setfsgid32": 216,
	"capset": 185,
	// filtered: mknod family
	"mknod": 14, "mknodat": 297,
	// filtered: self-test
	"kexec_load": 283,
}

var armTable = map[string]int{
	// common (EABI)
	"exit": 1, "fork": 2, "read": 3, "write": 4, "open": 5, "close": 6,
	"creat": 8, "link": 9, "unlink": 10, "execve": 11, "chdir": 12,
	"chmod": 15, "lseek": 19, "getpid": 20, "mount": 21, "access": 33,
	"kill": 37, "rename": 38, "mkdir": 39, "rmdir": 40, "dup": 41,
	"pipe": 42, "ioctl": 54, "fcntl": 55, "umask": 60, "chroot": 61,
	"getppid": 64, "symlink": 83, "readlink": 85, "fchmod": 94,
	"stat": 106, "lstat": 107, "fstat": 108, "clone": 120, "uname": 122,
	"fchdir": 133, "getcwd": 183, "umount2": 52, "pivot_root": 218,
	"prctl": 172, "getuid": 199, "getgid": 200, "geteuid": 201,
	"getegid": 202, "getgroups": 205, "getresuid": 209, "getresgid": 211,
	"capget": 184, "exit_group": 248, "wait4": 114, "utimensat": 348,
	"setxattr": 226, "lsetxattr": 227, "fsetxattr": 228, "getxattr": 229,
	"lgetxattr": 230, "fgetxattr": 231, "listxattr": 232, "removexattr": 235,
	"openat": 322, "mkdirat": 323, "futimesat": 326, "newfstatat": 327,
	"unlinkat": 328, "renameat": 329, "linkat": 330, "symlinkat": 331,
	"readlinkat": 332, "fchmodat": 333, "faccessat": 334, "unshare": 337,
	"seccomp": 383,
	// filtered: ownership (7)
	"lchown": 16, "fchown": 95, "chown": 182,
	"lchown32": 198, "fchown32": 207, "chown32": 212, "fchownat": 325,
	// filtered: identity & capabilities (19)
	"setuid": 23, "setgid": 46, "setreuid": 70, "setregid": 71,
	"setgroups": 81, "setfsuid": 138, "setfsgid": 139, "setresuid": 164,
	"setresgid":  170,
	"setreuid32": 203, "setregid32": 204, "setgroups32": 206,
	"setresuid32": 208, "setresgid32": 210, "setuid32": 213, "setgid32": 214,
	"setfsuid32": 215, "setfsgid32": 216,
	"capset": 185,
	// filtered: mknod family
	"mknod": 14, "mknodat": 324,
	// filtered: self-test
	"kexec_load": 347,
}

// arm64 uses the generic unistd table: the legacy non-at syscalls simply do
// not exist. This is the architecture the paper's footnote 7 calls out.
var arm64Table = map[string]int{
	// common
	"setxattr": 5, "lsetxattr": 6, "fsetxattr": 7, "getxattr": 8,
	"lgetxattr": 9, "fgetxattr": 10, "listxattr": 11, "removexattr": 14,
	"getcwd": 17, "dup": 23, "fcntl": 25, "ioctl": 29, "mkdirat": 34,
	"unlinkat": 35, "symlinkat": 36, "linkat": 37, "renameat": 38,
	"umount2": 39, "mount": 40, "pivot_root": 41, "faccessat": 48,
	"chdir": 49, "fchdir": 50, "chroot": 51, "fchmod": 52, "fchmodat": 53,
	"openat": 56, "close": 57, "pipe2": 59, "read": 63, "write": 64,
	"newfstatat": 79, "fstat": 80, "utimensat": 88, "exit": 93,
	"exit_group": 94, "kill": 129, "uname": 160, "umask": 166, "prctl": 167,
	"getpid": 172, "getppid": 173, "getuid": 174, "geteuid": 175,
	"getgid": 176, "getegid": 177, "gettid": 178, "socket": 198,
	"connect": 203, "sendto": 206, "recvfrom": 207, "clone": 220,
	"execve": 221, "wait4": 260, "seccomp": 277, "unshare": 97,
	"getgroups": 158, "getresuid": 148, "getresgid": 150, "capget": 90,
	// filtered: ownership (only the modern forms exist: 2 of 7)
	"fchownat": 54, "fchown": 55,
	// filtered: identity & capabilities (no *32 variants: 10)
	"capset": 91, "setregid": 143, "setgid": 144, "setreuid": 145,
	"setuid": 146, "setresuid": 147, "setresgid": 149, "setfsuid": 151,
	"setfsgid": 152, "setgroups": 159,
	// filtered: mknod family (mknodat only)
	"mknodat": 33,
	// filtered: self-test
	"kexec_load": 104,
}

var ppc64leTable = map[string]int{
	// common
	"exit": 1, "fork": 2, "read": 3, "write": 4, "open": 5, "close": 6,
	"creat": 8, "link": 9, "unlink": 10, "execve": 11, "chdir": 12,
	"chmod": 15, "lseek": 19, "getpid": 20, "mount": 21, "access": 33,
	"kill": 37, "rename": 38, "mkdir": 39, "rmdir": 40, "dup": 41,
	"pipe": 42, "ioctl": 54, "fcntl": 55, "umask": 60, "chroot": 61,
	"getppid": 64, "symlink": 83, "readlink": 85, "fchmod": 94,
	"stat": 106, "lstat": 107, "fstat": 108, "wait4": 114, "clone": 120,
	"uname": 122, "fchdir": 133, "getcwd": 182, "umount2": 52,
	"pivot_root": 203, "prctl": 171, "getuid": 24, "getgid": 47,
	"geteuid": 49, "getegid": 50, "getgroups": 80, "getresuid": 165,
	"getresgid": 170, "capget": 183, "exit_group": 234, "utimensat": 304,
	"setxattr": 209, "lsetxattr": 210, "fsetxattr": 211, "getxattr": 212,
	"lgetxattr": 213, "fgetxattr": 214, "listxattr": 215, "removexattr": 218,
	"openat": 286, "mkdirat": 287, "futimesat": 290, "newfstatat": 291,
	"unlinkat": 292, "renameat": 293, "linkat": 294, "symlinkat": 295,
	"readlinkat": 296, "fchmodat": 297, "faccessat": 298, "unshare": 282,
	"seccomp": 358,
	// filtered: ownership (no *32 variants on ppc: 4 of 7)
	"lchown": 16, "fchown": 95, "chown": 181, "fchownat": 289,
	// filtered: identity & capabilities (10)
	"setuid": 23, "setgid": 46, "setreuid": 70, "setregid": 71,
	"setgroups": 81, "setfsuid": 138, "setfsgid": 139, "setresuid": 164,
	"setresgid": 169, "capset": 184,
	// filtered: mknod family
	"mknod": 14, "mknodat": 288,
	// filtered: self-test
	"kexec_load": 268,
}

var s390xTable = map[string]int{
	// common
	"exit": 1, "fork": 2, "read": 3, "write": 4, "open": 5, "close": 6,
	"creat": 8, "link": 9, "unlink": 10, "execve": 11, "chdir": 12,
	"chmod": 15, "lseek": 19, "getpid": 20, "mount": 21, "access": 33,
	"kill": 37, "rename": 38, "mkdir": 39, "rmdir": 40, "dup": 41,
	"pipe": 42, "ioctl": 54, "fcntl": 55, "umask": 60, "chroot": 61,
	"getppid": 64, "symlink": 83, "readlink": 85, "fchmod": 94,
	"stat": 106, "lstat": 107, "fstat": 108, "wait4": 114, "clone": 120,
	"uname": 122, "fchdir": 133, "getcwd": 183, "umount2": 52,
	"pivot_root": 217, "prctl": 172, "getuid": 199, "getgid": 200,
	"geteuid": 201, "getegid": 202, "getgroups": 205, "getresuid": 209,
	"getresgid": 211, "capget": 184, "exit_group": 248, "utimensat": 315,
	"setxattr": 224, "lsetxattr": 225, "fsetxattr": 226, "getxattr": 227,
	"lgetxattr": 228, "fgetxattr": 229, "listxattr": 230, "removexattr": 233,
	"openat": 288, "mkdirat": 289, "futimesat": 292, "newfstatat": 293,
	"unlinkat": 294, "renameat": 295, "linkat": 296, "symlinkat": 297,
	"readlinkat": 298, "fchmodat": 299, "faccessat": 300, "unshare": 303,
	"seccomp": 348,
	// filtered: ownership — s390x kept the 32-bit-uid slots under the plain
	// names (4 of 7)
	"lchown": 198, "fchown": 207, "chown": 212, "fchownat": 291,
	// filtered: identity & capabilities (10)
	"setreuid": 203, "setregid": 204, "setgroups": 206, "setresuid": 208,
	"setresgid": 210, "setuid": 213, "setgid": 214, "setfsuid": 215,
	"setfsgid": 216, "capset": 185,
	// filtered: mknod family
	"mknod": 14, "mknodat": 290,
	// filtered: self-test
	"kexec_load": 277,
}
