// Package image implements layered container images: a content-addressed
// layer store, image metadata, flattening layers onto a simulated
// filesystem, committing filesystem changes as new layers, and an
// in-process HTTP registry speaking a subset of the OCI distribution
// protocol for FROM pulls.
package image

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/tarutil"
	"repro/internal/vfs"
)

// Layer is one content-addressed filesystem diff.
type Layer struct {
	Digest string // "sha256:<hex>"
	Data   []byte // tar bytes
}

// Digest computes the layer digest of data.
func Digest(data []byte) string {
	sum := sha256.Sum256(data)
	return "sha256:" + hex.EncodeToString(sum[:])
}

// Config is the image runtime configuration (a subset of the OCI image
// config).
type Config struct {
	Env        []string          `json:"env,omitempty"`
	Cmd        []string          `json:"cmd,omitempty"`
	Entrypoint []string          `json:"entrypoint,omitempty"`
	WorkingDir string            `json:"working_dir,omitempty"`
	User       string            `json:"user,omitempty"`
	Labels     map[string]string `json:"labels,omitempty"`
	Arch       string            `json:"arch,omitempty"`
}

// Distro returns the distribution label ("alpine", "centos7", "debian"),
// which decides the toolchain (binaries) the builder attaches.
func (c Config) Distro() string { return c.Labels["org.repro.distro"] }

// Image is a named, layered image.
type Image struct {
	Name   string // "alpine:3.19"
	Layers []Layer
	Config Config
}

// Clone returns a deep-enough copy for derivation (layers are immutable).
func (img *Image) Clone(name string) *Image {
	out := &Image{Name: name, Config: img.Config}
	out.Layers = append([]Layer{}, img.Layers...)
	if img.Config.Labels != nil {
		out.Config.Labels = map[string]string{}
		for k, v := range img.Config.Labels {
			out.Config.Labels[k] = v
		}
	}
	out.Config.Env = append([]string{}, img.Config.Env...)
	return out
}

// Flatten unpacks all layers, in order, onto a fresh filesystem — the
// privileged (image-store) path, so recorded ownership is preserved
// exactly.
func (img *Image) Flatten() (*vfs.FS, error) {
	fs := vfs.New()
	for i, l := range img.Layers {
		if err := tarutil.Unpack(fs, l.Data); err != nil {
			return nil, fmt.Errorf("image %s: layer %d: %w", img.Name, i, err)
		}
	}
	return fs, nil
}

// CommitLayer diffs fs against the image's current flattened state and, if
// anything changed, appends the diff as a new layer on a derived image
// named newName. The returned bool reports whether a layer was added.
// Store.CommitLayer does the same with the base snapshot cached.
func (img *Image) CommitLayer(newName string, fs *vfs.FS) (*Image, bool, error) {
	baseFS, err := img.Flatten()
	if err != nil {
		return nil, false, err
	}
	lower, err := tarutil.Snapshot(baseFS)
	if err != nil {
		return nil, false, err
	}
	return img.commitAgainst(newName, lower, fs)
}

// commitAgainst diffs fs against a known lower snapshot of img.
func (img *Image) commitAgainst(newName string, lower []tarutil.Entry, fs *vfs.FS) (*Image, bool, error) {
	upper, err := tarutil.Snapshot(fs)
	if err != nil {
		return nil, false, err
	}
	diff := tarutil.Diff(lower, upper)
	out := img.Clone(newName)
	if len(diff) == 0 {
		return out, false, nil
	}
	data, err := tarutil.Pack(diff)
	if err != nil {
		return nil, false, err
	}
	out.Layers = append(out.Layers, Layer{Digest: Digest(data), Data: data})
	return out, true, nil
}

// ChainDigest identifies a layer chain: the digest of the ordered layer
// digests. Two images with equal chain digests flatten identically.
func ChainDigest(layers []Layer) string {
	var b strings.Builder
	for _, l := range layers {
		b.WriteString(l.Digest)
		b.WriteByte('\n')
	}
	return Digest([]byte(b.String()))
}

// Store is a tag→image map plus a content-addressed blob store, the
// ch-image storage-directory analog. It also memoises flattened layer
// chains: layers are immutable and content-addressed, so a chain unpacks
// to the same tree forever and the unpacking work is paid once per chain,
// not once per build.
type Store struct {
	mu     sync.RWMutex
	images map[string]*Image
	blobs  map[string][]byte

	flattens map[string]*vfs.FS        // chain digest → pristine flattened tree
	lowers   map[string][]tarutil.Entry // chain digest → snapshot of that tree
}

// NewStore creates an empty store.
func NewStore() *Store {
	return &Store{
		images:   map[string]*Image{},
		blobs:    map[string][]byte{},
		flattens: map[string]*vfs.FS{},
		lowers:   map[string][]tarutil.Entry{},
	}
}

// Flatten returns a filesystem holding img's flattened layers, like
// Image.Flatten, but the unpacked tree for each distinct layer chain is
// built once and cached; callers receive an independent deep clone they
// may mutate freely. The cached tree is snapshotted once at fill time,
// which both serves Store.CommitLayer and warms the per-file content
// digests every clone inherits.
func (s *Store) Flatten(img *Image) (*vfs.FS, error) {
	fs, _, err := s.flattened(img)
	if err != nil {
		return nil, err
	}
	return fs.Clone(), nil
}

// flattened returns the cached pristine tree and lower snapshot for img's
// chain, filling the cache on miss.
func (s *Store) flattened(img *Image) (*vfs.FS, []tarutil.Entry, error) {
	key := ChainDigest(img.Layers)
	s.mu.RLock()
	fs, ok := s.flattens[key]
	lower := s.lowers[key]
	s.mu.RUnlock()
	if ok {
		return fs, lower, nil
	}
	fs, err := img.Flatten()
	if err != nil {
		return nil, nil, err
	}
	lower, err = tarutil.Snapshot(fs)
	if err != nil {
		return nil, nil, err
	}
	s.mu.Lock()
	s.flattens[key] = fs
	s.lowers[key] = lower
	s.mu.Unlock()
	return fs, lower, nil
}

// CommitLayer is Image.CommitLayer using the store's flatten cache: the
// base image's lower snapshot is computed once per layer chain, so each
// commit costs one walk of fs instead of an unpack plus two full
// snapshots.
func (s *Store) CommitLayer(newName string, img *Image, fs *vfs.FS) (*Image, bool, error) {
	_, lower, err := s.flattened(img)
	if err != nil {
		return nil, false, err
	}
	return img.commitAgainst(newName, lower, fs)
}

// Put tags an image, registering its layer blobs.
func (s *Store) Put(img *Image) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, l := range img.Layers {
		s.blobs[l.Digest] = l.Data
	}
	s.images[img.Name] = img
}

// Get resolves a tag.
func (s *Store) Get(name string) (*Image, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	img, ok := s.images[name]
	return img, ok
}

// Delete removes a tag (blobs are kept; the store is append-mostly like
// real CAS stores, and nothing in the workloads needs GC).
func (s *Store) Delete(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.images, name)
}

// Blob fetches a blob by digest.
func (s *Store) Blob(digest string) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b, ok := s.blobs[digest]
	return b, ok
}

// Tags lists image names, sorted.
func (s *Store) Tags() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.images))
	for n := range s.images {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// FromFS builds a single-layer image from a filesystem.
func FromFS(name string, fs *vfs.FS, cfg Config) (*Image, error) {
	data, err := tarutil.PackFS(fs)
	if err != nil {
		return nil, err
	}
	return &Image{
		Name:   name,
		Layers: []Layer{{Digest: Digest(data), Data: data}},
		Config: cfg,
	}, nil
}

// SplitRef splits "name:tag" with a default "latest" tag.
func SplitRef(ref string) (name, tag string) {
	if i := strings.LastIndexByte(ref, ':'); i >= 0 && !strings.Contains(ref[i+1:], "/") {
		return ref[:i], ref[i+1:]
	}
	return ref, "latest"
}
