// Package image implements layered container images: a content-addressed
// layer store, image metadata, flattening layers onto a simulated
// filesystem, committing filesystem changes as new layers, and an
// in-process HTTP registry speaking a subset of the OCI distribution
// protocol for FROM pulls.
package image

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/cas"
	"repro/internal/tarutil"
	"repro/internal/vfs"
)

// Layer is one content-addressed filesystem diff.
type Layer struct {
	Digest string // "sha256:<hex>"
	Data   []byte // tar bytes
}

// Digest computes the layer digest of data.
//
//chlint:keyroot
func Digest(data []byte) string {
	sum := sha256.Sum256(data)
	return "sha256:" + hex.EncodeToString(sum[:])
}

// Config is the image runtime configuration (a subset of the OCI image
// config).
type Config struct {
	Env        []string          `json:"env,omitempty"`
	Cmd        []string          `json:"cmd,omitempty"`
	Entrypoint []string          `json:"entrypoint,omitempty"`
	WorkingDir string            `json:"working_dir,omitempty"`
	User       string            `json:"user,omitempty"`
	Labels     map[string]string `json:"labels,omitempty"`
	Arch       string            `json:"arch,omitempty"`
}

// Distro returns the distribution label ("alpine", "centos7", "debian"),
// which decides the toolchain (binaries) the builder attaches.
func (c Config) Distro() string { return c.Labels["org.repro.distro"] }

// Image is a named, layered image.
type Image struct {
	Name   string // "alpine:3.19"
	Layers []Layer
	Config Config
}

// Clone returns a deep-enough copy for derivation (layers are immutable).
func (img *Image) Clone(name string) *Image {
	out := &Image{Name: name, Config: img.Config}
	out.Layers = append([]Layer{}, img.Layers...)
	if img.Config.Labels != nil {
		out.Config.Labels = map[string]string{}
		for k, v := range img.Config.Labels {
			out.Config.Labels[k] = v
		}
	}
	out.Config.Env = append([]string{}, img.Config.Env...)
	return out
}

// Flatten unpacks all layers, in order, onto a fresh filesystem — the
// privileged (image-store) path, so recorded ownership is preserved
// exactly.
func (img *Image) Flatten() (*vfs.FS, error) {
	fs := vfs.New()
	for i, l := range img.Layers {
		if err := tarutil.Unpack(fs, l.Data); err != nil {
			return nil, fmt.Errorf("image %s: layer %d: %w", img.Name, i, err)
		}
	}
	return fs, nil
}

// CommitLayer diffs fs against the image's current flattened state and, if
// anything changed, appends the diff as a new layer on a derived image
// named newName. The returned bool reports whether a layer was added.
// Store.CommitLayer does the same with the base snapshot cached.
func (img *Image) CommitLayer(newName string, fs *vfs.FS) (*Image, bool, error) {
	baseFS, err := img.Flatten()
	if err != nil {
		return nil, false, err
	}
	lower, err := tarutil.Snapshot(baseFS)
	if err != nil {
		return nil, false, err
	}
	return img.commitAgainst(newName, lower, fs)
}

// commitAgainst diffs fs against a known lower snapshot of img.
func (img *Image) commitAgainst(newName string, lower []tarutil.Entry, fs *vfs.FS) (*Image, bool, error) {
	upper, err := tarutil.Snapshot(fs)
	if err != nil {
		return nil, false, err
	}
	diff := tarutil.Diff(lower, upper)
	out := img.Clone(newName)
	if len(diff) == 0 {
		return out, false, nil
	}
	data, err := tarutil.Pack(diff)
	if err != nil {
		return nil, false, err
	}
	out.Layers = append(out.Layers, Layer{Digest: Digest(data), Data: data})
	return out, true, nil
}

// ChainDigest identifies a layer chain: the digest of the ordered layer
// digests. Two images with equal chain digests flatten identically.
//
//chlint:keyroot
func ChainDigest(layers []Layer) string {
	var b strings.Builder
	for _, l := range layers {
		b.WriteString(l.Digest)
		b.WriteByte('\n')
	}
	return Digest([]byte(b.String()))
}

// Store is a tag→image map plus a content-addressed blob store, the
// ch-image storage-directory analog. It also memoises flattened layer
// chains: layers are immutable and content-addressed, so a chain unpacks
// to the same tree forever and the unpacking work is paid once per chain,
// not once per build.
type Store struct {
	mu     sync.RWMutex
	images map[string]*Image
	blobs  map[string][]byte

	flattens map[string]*vfs.FS         // chain digest → pristine flattened tree
	lowers   map[string][]tarutil.Entry // chain digest → snapshot of that tree

	// backing, when set, is the persistent content-addressed store the
	// in-memory maps are a cache over: Put writes through (blobs, tag
	// records, flatten-chain snapshots), Get and flattened fall back to it
	// on miss and rehydrate lazily. A backing failure never fails the
	// store — persistence degrades and the errors aggregate in
	// backingErrs (capped; overflow counted in backingDropped).
	backing        *cas.Dir
	backingErrs    []error
	backingDropped int

	// Single-flight state for flatten-cache fills: concurrent misses on
	// one chain must unpack+snapshot once, not clobber each other.
	flightMu   sync.Mutex
	flights    map[string]*flattenFlight
	fills      int // completed fills (unpack+snapshot paid), for tests and stats
	rehydrates int // chains loaded from the backing store instead of filled
}

// flattenFlight is one in-progress flatten-cache fill. Waiters block on
// done and then read the result fields, which the filler writes before
// closing the channel.
type flattenFlight struct {
	done  chan struct{}
	fs    *vfs.FS
	lower []tarutil.Entry
	err   error
}

// NewStore creates an empty store.
func NewStore() *Store {
	return &Store{
		images:   map[string]*Image{},
		blobs:    map[string][]byte{},
		flattens: map[string]*vfs.FS{},
		lowers:   map[string][]tarutil.Entry{},
		flights:  map[string]*flattenFlight{},
	}
}

// Flatten returns a filesystem holding img's flattened layers, like
// Image.Flatten, but the unpacked tree for each distinct layer chain is
// built once and cached; callers receive an independent deep clone they
// may mutate freely. The cached tree is snapshotted once at fill time,
// which both serves Store.CommitLayer and warms the per-file content
// digests every clone inherits.
func (s *Store) Flatten(img *Image) (*vfs.FS, error) {
	//chlint:allow ctxfirst -- context-free compat wrapper; FlattenContext is the real entry point
	return s.FlattenContext(context.Background(), img)
}

// FlattenContext is Flatten under a context: cancellation aborts a
// backing-store rehydration (the fill itself is in-memory work that runs
// to completion).
func (s *Store) FlattenContext(ctx context.Context, img *Image) (*vfs.FS, error) {
	fs, _, err := s.flattened(ctx, img)
	if err != nil {
		return nil, err
	}
	return fs.Clone(), nil
}

// flattened returns the cached pristine tree and lower snapshot for img's
// chain, filling the cache on miss. Fills are single-flight: of N
// concurrent misses on one chain, exactly one goroutine pays the
// unpack+snapshot (O(tree)); the rest block until it publishes and then
// share the result. A failed fill is not cached — the next caller retries.
//
// With a backing store attached, a miss first tries the persisted
// flatten-chain index: the whole-tree snapshot recorded by an earlier
// invocation unpacks in one pass (counted in Rehydrates, not
// FlattenFills), and a genuine fill persists its snapshot for the next
// invocation.
func (s *Store) flattened(ctx context.Context, img *Image) (*vfs.FS, []tarutil.Entry, error) {
	key := ChainDigest(img.Layers)
	s.mu.RLock()
	fs, ok := s.flattens[key]
	lower := s.lowers[key]
	s.mu.RUnlock()
	if ok {
		return fs, lower, nil
	}

	s.flightMu.Lock()
	// Re-check under the flight lock: a fill may have completed between
	// the miss above and here.
	s.mu.RLock()
	fs, ok = s.flattens[key]
	lower = s.lowers[key]
	s.mu.RUnlock()
	if ok {
		s.flightMu.Unlock()
		return fs, lower, nil
	}
	if f, inflight := s.flights[key]; inflight {
		s.flightMu.Unlock()
		<-f.done
		return f.fs, f.lower, f.err
	}
	f := &flattenFlight{done: make(chan struct{})}
	s.flights[key] = f
	s.flightMu.Unlock()

	rehydrated := s.rehydrateChain(ctx, key, f)
	if !rehydrated {
		f.fs, f.err = s.flattenPristine(img)
		if f.err == nil {
			f.lower, f.err = tarutil.Snapshot(f.fs)
		}
	}
	if f.err != nil {
		f.fs, f.lower = nil, nil
	} else {
		s.mu.Lock()
		s.flattens[key] = f.fs
		s.lowers[key] = f.lower
		s.mu.Unlock()
		if !rehydrated {
			s.persistChain(ctx, key, img, f.lower)
		}
	}
	s.flightMu.Lock()
	delete(s.flights, key)
	if f.err == nil {
		if rehydrated {
			s.rehydrates++
			mFlattenRehydrates.Inc()
		} else {
			s.fills++
			mFlattenFills.Inc()
		}
	}
	s.flightMu.Unlock()
	close(f.done)
	return f.fs, f.lower, f.err
}

// rehydrateChain tries to satisfy a flatten-cache miss from the backing
// store's persisted chain snapshot. On success it populates f and returns
// true; any failure (no backing, no record, corrupt snapshot) returns
// false and the caller pays the ordinary fill.
func (s *Store) rehydrateChain(ctx context.Context, key string, f *flattenFlight) bool {
	backing := s.Backing()
	if backing == nil {
		return false
	}
	ch, ok := backing.Chain(key)
	if !ok {
		return false
	}
	var snap []byte
	err := cas.DefaultRetry.Do(ctx, func() error {
		var rerr error
		snap, rerr = backing.Blob(ctx, ch.Snap)
		return rerr
	})
	if err != nil {
		return false
	}
	fs := vfs.New()
	if err := tarutil.Unpack(fs, snap); err != nil {
		return false
	}
	lower, err := tarutil.Snapshot(fs)
	if err != nil {
		return false
	}
	f.fs, f.lower = fs, lower
	return true
}

// persistChain writes a freshly filled flatten chain through to the
// backing store: the member layer blobs (so fsck and GC can account for
// them) and the packed whole-tree snapshot under the chain digest.
func (s *Store) persistChain(ctx context.Context, key string, img *Image, lower []tarutil.Entry) {
	backing := s.Backing()
	if backing == nil {
		return
	}
	// The whole sequence is idempotent (write-once blobs, same-record
	// skip), so a transient mid-sequence failure retries from the top.
	err := cas.DefaultRetry.Do(ctx, func() error {
		digests := make([]string, len(img.Layers))
		for i, l := range img.Layers {
			data, ok := s.blobView(l.Digest)
			if !ok {
				data = l.Data
			}
			if _, err := backing.PutBlob(ctx, data); err != nil {
				return err
			}
			digests[i] = l.Digest
		}
		packed, err := tarutil.Pack(lower)
		if err != nil {
			return err
		}
		return backing.PutChain(ctx, key, digests, packed)
	})
	s.mu.Lock()
	s.noteBackingErrLocked(err)
	s.mu.Unlock()
}

// flattenPristine is Image.Flatten reading each layer from the store's
// write-once blobs when registered there (falling back to the Image's own
// bytes for unregistered layers). The cache under a ChainDigest must hold
// the tree those digests name; an Image whose Data a caller scribbled on
// after Put cannot poison it.
func (s *Store) flattenPristine(img *Image) (*vfs.FS, error) {
	fs := vfs.New()
	for i, l := range img.Layers {
		data, ok := s.blobView(l.Digest)
		if !ok {
			data = l.Data
		}
		if err := tarutil.Unpack(fs, data); err != nil {
			return nil, fmt.Errorf("image %s: layer %d: %w", img.Name, i, err)
		}
	}
	return fs, nil
}

// FlattenedEntries returns the canonical serialised snapshot (sorted
// tarutil entries, parents before children) of img's flattened tree, from
// the same per-chain memoisation Flatten uses — so reading a built stage's
// tree for COPY --from costs no re-walk once any consumer has flattened
// the chain. The returned slice and everything it references are shared
// across callers and must be treated as read-only; copy Entry.Data before
// retaining or mutating it.
func (s *Store) FlattenedEntries(img *Image) ([]tarutil.Entry, error) {
	//chlint:allow ctxfirst -- context-free compat wrapper; FlattenedEntriesContext is the real entry point
	return s.FlattenedEntriesContext(context.Background(), img)
}

// FlattenedEntriesContext is FlattenedEntries under a context.
func (s *Store) FlattenedEntriesContext(ctx context.Context, img *Image) ([]tarutil.Entry, error) {
	_, lower, err := s.flattened(ctx, img)
	if err != nil {
		return nil, err
	}
	return lower, nil
}

// FlattenFills reports how many flatten-cache fills have completed — under
// correct single-flight behaviour, one per distinct layer chain however
// many builders raced on it.
func (s *Store) FlattenFills() int {
	s.flightMu.Lock()
	defer s.flightMu.Unlock()
	return s.fills
}

// Rehydrates reports how many flatten chains were loaded from the backing
// store's persisted snapshots instead of being filled from layers — the
// warm-from-disk counterpart of FlattenFills.
func (s *Store) Rehydrates() int {
	s.flightMu.Lock()
	defer s.flightMu.Unlock()
	return s.rehydrates
}

// CommitLayer is Image.CommitLayer using the store's flatten cache: the
// base image's lower snapshot is computed once per layer chain, so each
// commit costs one walk of fs instead of an unpack plus two full
// snapshots.
func (s *Store) CommitLayer(newName string, img *Image, fs *vfs.FS) (*Image, bool, error) {
	//chlint:allow ctxfirst -- context-free compat wrapper; CommitLayerContext is the real entry point
	return s.CommitLayerContext(context.Background(), newName, img, fs)
}

// CommitLayerContext is CommitLayer under a context.
func (s *Store) CommitLayerContext(ctx context.Context, newName string, img *Image, fs *vfs.FS) (*Image, bool, error) {
	_, lower, err := s.flattened(ctx, img)
	if err != nil {
		return nil, false, err
	}
	return img.commitAgainst(newName, lower, fs)
}

// SetBacking attaches a persistent content-addressed store: subsequent
// Puts write through (layer blobs, tag records) and Gets and flatten
// fills fall back to it, so tags, layers and flatten chains survive the
// process and the next invocation starts warm. Attach the backing before
// seeding the store — images Put earlier are not retroactively persisted.
// Persistence errors never fail store operations; they are recorded and
// readable via BackingErr.
func (s *Store) SetBacking(d *cas.Dir) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.backing = d
}

// Backing returns the attached persistent store, nil when in-memory only.
func (s *Store) Backing() *cas.Dir {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.backing
}

// backingErrCap bounds the aggregated persistence-failure list: past it,
// further failures are counted, not stored, so a long degraded build
// cannot grow the error list without bound.
const backingErrCap = 32

// BackingErr reports the persistence failures since the backing was
// attached as one joined error, nil when every write-through landed. A
// failure means the on-disk cache is colder than memory, never that it
// is wrong.
func (s *Store) BackingErr() error {
	return errors.Join(s.BackingErrs()...)
}

// BackingErrs returns every recorded persistence failure (a copy), plus
// a trailing summary entry when failures past the cap were dropped.
func (s *Store) BackingErrs() []error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.backingErrs) == 0 {
		return nil
	}
	out := append([]error(nil), s.backingErrs...)
	if s.backingDropped > 0 {
		out = append(out, fmt.Errorf("image: %d further persistence failure(s) dropped", s.backingDropped))
	}
	return out
}

// noteBackingErrLocked records one persistence failure. Callers hold s.mu.
func (s *Store) noteBackingErrLocked(err error) {
	if err == nil {
		return
	}
	if len(s.backingErrs) >= backingErrCap {
		s.backingDropped++
		return
	}
	s.backingErrs = append(s.backingErrs, err)
}

// GCBacking runs a garbage collection on the attached persistent store,
// a no-op when the store is in-memory only. Failures (cas.ErrBusy from
// another process holding the store, sweep I/O errors) are recorded the
// same way write-through failures are: the cache ends up colder than
// asked for, never wrong.
func (s *Store) GCBacking(ctx context.Context, b cas.Budget) (cas.GCStats, error) {
	backing := s.Backing()
	if backing == nil {
		return cas.GCStats{}, nil
	}
	stats, err := backing.GC(ctx, b)
	s.mu.Lock()
	s.noteBackingErrLocked(err)
	s.mu.Unlock()
	return stats, err
}

// Put tags an image, registering its layer blobs. Blob bytes are copied
// on the way in and write-once thereafter: the store is content-addressed,
// so the first bytes recorded under a digest are the bytes that digest
// names, however callers later treat the Image they handed over. With a
// backing store attached, the blobs and the tag record write through to
// disk.
func (s *Store) Put(img *Image) {
	//chlint:allow ctxfirst -- context-free compat wrapper; PutContext is the real entry point
	s.PutContext(context.Background(), img)
}

// PutContext is Put under a context: cancellation aborts the
// write-through (recorded as a persistence failure), never the in-memory
// tag, which is already visible when the disk write starts.
func (s *Store) PutContext(ctx context.Context, img *Image) {
	s.mu.Lock()
	pristine := make([][]byte, len(img.Layers))
	digests := make([]string, len(img.Layers))
	for i, l := range img.Layers {
		if _, ok := s.blobs[l.Digest]; !ok {
			s.blobs[l.Digest] = append([]byte(nil), l.Data...)
		}
		// Persist the store's pristine copy, not the caller's mutable
		// slice. Blobs are write-once, so reading the map entry here and
		// using it after unlock is safe.
		pristine[i] = s.blobs[l.Digest]
		digests[i] = l.Digest
	}
	s.images[img.Name] = img
	backing := s.backing
	s.mu.Unlock()
	if backing == nil {
		return
	}
	// Write-through runs outside s.mu: disk writes must not stall the
	// store's readers. (Two concurrent Puts of the same tag may journal
	// in either order; both orders are internally consistent.) The whole
	// sequence is idempotent — write-once blobs, same-tag skip — so
	// transient failures retry it from the top.
	err := cas.DefaultRetry.Do(ctx, func() error {
		for _, data := range pristine {
			if _, err := backing.PutBlob(ctx, data); err != nil {
				return err
			}
		}
		cfg, err := json.Marshal(img.Config)
		if err != nil {
			return err
		}
		return backing.PutTag(ctx, img.Name, digests, cfg)
	})
	s.mu.Lock()
	s.noteBackingErrLocked(err)
	s.mu.Unlock()
}

// Get resolves a tag, falling back to the backing store: a tag persisted
// by an earlier invocation is rehydrated (layers loaded and digest-
// verified) on first access and cached in memory from then on.
func (s *Store) Get(name string) (*Image, bool) {
	//chlint:allow ctxfirst -- context-free compat wrapper; GetContext is the real entry point
	return s.GetContext(context.Background(), name)
}

// GetContext is Get under a context: cancellation aborts a backing-store
// rehydration and reports a miss (callers on a cancelled context are
// about to fail at their own boundary check anyway).
func (s *Store) GetContext(ctx context.Context, name string) (*Image, bool) {
	s.mu.RLock()
	img, ok := s.images[name]
	backing := s.backing
	s.mu.RUnlock()
	if ok || backing == nil {
		return img, ok
	}
	tg, found := backing.Tag(name)
	if !found {
		return nil, false
	}
	loaded := &Image{Name: name, Layers: make([]Layer, 0, len(tg.Layers))}
	if len(tg.Config) > 0 {
		if err := json.Unmarshal(tg.Config, &loaded.Config); err != nil {
			return nil, false
		}
	}
	for _, digest := range tg.Layers {
		// Blob digest-verifies on the way out and quarantines mismatches,
		// so an error here means the tag is cold, never that bad bytes
		// got through.
		var data []byte
		err := cas.DefaultRetry.Do(ctx, func() error {
			var rerr error
			data, rerr = backing.Blob(ctx, digest)
			return rerr
		})
		if err != nil {
			return nil, false
		}
		loaded.Layers = append(loaded.Layers, Layer{Digest: digest, Data: data})
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if cur, ok := s.images[name]; ok {
		return cur, true // raced with a concurrent Put/Get; keep the winner
	}
	for _, l := range loaded.Layers {
		if _, ok := s.blobs[l.Digest]; !ok {
			// Copied, like Put: the caller owns the Image and may scribble
			// on its slices; the pristine-blob invariant must hold anyway.
			s.blobs[l.Digest] = append([]byte(nil), l.Data...)
		}
	}
	s.images[name] = loaded
	return loaded, true
}

// Delete removes a tag, writing the untag through to the backing store —
// otherwise Get's backing fallback would resurrect it on the next miss.
// Blobs are kept; reclaiming them is the backing store's GC's job
// (`ch-image cache gc`).
func (s *Store) Delete(name string) {
	//chlint:allow ctxfirst -- context-free compat wrapper; DeleteContext is the real entry point
	s.DeleteContext(context.Background(), name)
}

// DeleteContext is Delete under a context; like PutContext, cancellation
// only degrades the write-through.
func (s *Store) DeleteContext(ctx context.Context, name string) {
	s.mu.Lock()
	backing := s.backing
	delete(s.images, name)
	s.mu.Unlock()
	if backing == nil {
		return
	}
	err := cas.DefaultRetry.Do(ctx, func() error {
		return backing.DeleteTag(ctx, name)
	})
	s.mu.Lock()
	s.noteBackingErrLocked(err)
	s.mu.Unlock()
}

// Blob fetches a blob by digest. The returned slice is the caller's to
// keep: it is a copy, so mutating it cannot corrupt the store.
func (s *Store) Blob(digest string) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b, ok := s.blobs[digest]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), b...), true
}

// putBlob stores one content-addressed blob (the registry's PUT side).
// The bytes are copied in, like Put.
func (s *Store) putBlob(digest string, data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.blobs[digest]; ok {
		return
	}
	s.blobs[digest] = append([]byte(nil), data...)
}

// blobView returns the store's own slice without copying — the registry's
// hot serve path, where the bytes are only streamed to a ResponseWriter.
// Blobs are write-once, so sharing the slice internally is safe; anything
// that might outlive or mutate goes through Blob.
func (s *Store) blobView(digest string) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b, ok := s.blobs[digest]
	return b, ok
}

// hasBlob reports blob presence without copying.
func (s *Store) hasBlob(digest string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.blobs[digest]
	return ok
}

// Tags lists image names, sorted.
func (s *Store) Tags() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.images))
	for n := range s.images {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// FromFS builds a single-layer image from a filesystem.
func FromFS(name string, fs *vfs.FS, cfg Config) (*Image, error) {
	data, err := tarutil.PackFS(fs)
	if err != nil {
		return nil, err
	}
	return &Image{
		Name:   name,
		Layers: []Layer{{Digest: Digest(data), Data: data}},
		Config: cfg,
	}, nil
}

// SplitRef splits "name:tag" with a default "latest" tag.
func SplitRef(ref string) (name, tag string) {
	if i := strings.LastIndexByte(ref, ':'); i >= 0 && !strings.Contains(ref[i+1:], "/") {
		return ref[:i], ref[i+1:]
	}
	return ref, "latest"
}
