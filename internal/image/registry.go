package image

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
)

// Registry serves a Store over HTTP using the OCI distribution API subset
// FROM pulls need:
//
//	GET /v2/                              — ping
//	GET /v2/<name>/manifests/<tag>       — image manifest (JSON)
//	GET /v2/<name>/blobs/<digest>        — layer or config blob
//
// It listens on a loopback port, so the simulated "fetch https://…" lines
// of Figure 1a correspond to real HTTP requests inside the process.
type Registry struct {
	store *Store
	srv   *http.Server
	ln    net.Listener
}

// manifest is the wire format.
type manifest struct {
	SchemaVersion int       `json:"schemaVersion"`
	Config        descRef   `json:"config"`
	Layers        []descRef `json:"layers"`
}

type descRef struct {
	Digest string `json:"digest"`
	Size   int    `json:"size"`
}

// NewRegistry wraps a store; call Start to serve.
func NewRegistry(store *Store) *Registry {
	return &Registry{store: store}
}

// Start begins serving on 127.0.0.1:0 and returns the base URL.
func (r *Registry) Start() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	r.ln = ln
	mux := http.NewServeMux()
	mux.HandleFunc("/v2/", r.handle)
	r.srv = &http.Server{Handler: mux}
	go r.srv.Serve(ln)
	return "http://" + ln.Addr().String(), nil
}

// Close stops the server.
func (r *Registry) Close() error {
	if r.srv != nil {
		return r.srv.Close()
	}
	return nil
}

func (r *Registry) handle(w http.ResponseWriter, req *http.Request) {
	path := strings.TrimPrefix(req.URL.Path, "/v2/")
	if path == "" {
		w.WriteHeader(http.StatusOK)
		return
	}
	// <name>/manifests/<tag> or <name>/blobs/<digest>
	if i := strings.Index(path, "/manifests/"); i >= 0 {
		name, tag := path[:i], path[i+len("/manifests/"):]
		switch req.Method {
		case http.MethodGet:
			r.serveManifest(w, name, tag)
		case http.MethodPut:
			r.acceptManifest(w, req, name, tag)
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
		return
	}
	if i := strings.Index(path, "/blobs/"); i >= 0 {
		digest := path[i+len("/blobs/"):]
		switch req.Method {
		case http.MethodGet:
			// blobView, not Blob: the bytes go straight to the wire, so
			// the hot serve path skips the defensive copy.
			blob, ok := r.store.blobView(digest)
			if !ok {
				http.Error(w, "blob unknown", http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Write(blob)
		case http.MethodHead:
			if !r.store.hasBlob(digest) {
				http.Error(w, "blob unknown", http.StatusNotFound)
				return
			}
			w.WriteHeader(http.StatusOK)
		case http.MethodPut:
			data, err := io.ReadAll(req.Body)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			if Digest(data) != digest {
				http.Error(w, "digest mismatch", http.StatusBadRequest)
				return
			}
			r.store.putBlob(digest, data)
			w.WriteHeader(http.StatusCreated)
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
		return
	}
	http.Error(w, "unsupported", http.StatusNotFound)
}

// acceptManifest implements the push side: the manifest's blobs must
// already be present (pushed first, as the distribution protocol requires).
func (r *Registry) acceptManifest(w http.ResponseWriter, req *http.Request, name, tag string) {
	var m manifest
	if err := json.NewDecoder(req.Body).Decode(&m); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	cfgBlob, ok := r.store.Blob(m.Config.Digest)
	if !ok {
		http.Error(w, "config blob missing", http.StatusBadRequest)
		return
	}
	img := &Image{Name: name + ":" + tag}
	if err := json.Unmarshal(cfgBlob, &img.Config); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	for _, l := range m.Layers {
		data, ok := r.store.Blob(l.Digest)
		if !ok {
			http.Error(w, "layer blob missing: "+l.Digest, http.StatusBadRequest)
			return
		}
		img.Layers = append(img.Layers, Layer{Digest: l.Digest, Data: data})
	}
	r.store.Put(img)
	w.WriteHeader(http.StatusCreated)
}

func (r *Registry) serveManifest(w http.ResponseWriter, name, tag string) {
	img, ok := r.store.Get(name + ":" + tag)
	if !ok {
		http.Error(w, "manifest unknown", http.StatusNotFound)
		return
	}
	cfgBytes, err := json.Marshal(img.Config)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	cfgDigest := Digest(cfgBytes)
	r.store.putBlob(cfgDigest, cfgBytes)
	m := manifest{SchemaVersion: 2, Config: descRef{Digest: cfgDigest, Size: len(cfgBytes)}}
	for _, l := range img.Layers {
		m.Layers = append(m.Layers, descRef{Digest: l.Digest, Size: len(l.Data)})
	}
	w.Header().Set("Content-Type", "application/vnd.oci.image.manifest.v1+json")
	json.NewEncoder(w).Encode(m)
}

// Push uploads an image to a registry: blobs first, then the manifest, as
// the distribution protocol requires. Ownership in pushed layers is
// whatever the builder committed (normalized to container-root view).
func Push(baseURL string, img *Image) error {
	name, tag := SplitRef(img.Name)
	put := func(url string, body []byte, contentType string) error {
		req, err := http.NewRequest(http.MethodPut, url, strings.NewReader(string(body)))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", contentType)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			msg, _ := io.ReadAll(resp.Body)
			return fmt.Errorf("HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(msg)))
		}
		return nil
	}
	cfgBytes, err := json.Marshal(img.Config)
	if err != nil {
		return err
	}
	cfgDigest := Digest(cfgBytes)
	if err := put(fmt.Sprintf("%s/v2/%s/blobs/%s", baseURL, name, cfgDigest),
		cfgBytes, "application/octet-stream"); err != nil {
		return fmt.Errorf("image: push %s: config: %w", img.Name, err)
	}
	m := manifest{SchemaVersion: 2, Config: descRef{Digest: cfgDigest, Size: len(cfgBytes)}}
	for _, l := range img.Layers {
		if err := put(fmt.Sprintf("%s/v2/%s/blobs/%s", baseURL, name, l.Digest),
			l.Data, "application/octet-stream"); err != nil {
			return fmt.Errorf("image: push %s: layer: %w", img.Name, err)
		}
		m.Layers = append(m.Layers, descRef{Digest: l.Digest, Size: len(l.Data)})
	}
	mBytes, err := json.Marshal(m)
	if err != nil {
		return err
	}
	if err := put(fmt.Sprintf("%s/v2/%s/manifests/%s", baseURL, name, tag),
		mBytes, "application/vnd.oci.image.manifest.v1+json"); err != nil {
		return fmt.Errorf("image: push %s: manifest: %w", img.Name, err)
	}
	return nil
}

// Pull fetches name:tag from a registry base URL into an Image, verifying
// every blob digest — the client side of FROM.
func Pull(baseURL, ref string) (*Image, error) {
	name, tag := SplitRef(ref)
	resp, err := http.Get(fmt.Sprintf("%s/v2/%s/manifests/%s", baseURL, name, tag))
	if err != nil {
		return nil, fmt.Errorf("image: pull %s: %w", ref, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("image: pull %s: manifest HTTP %d", ref, resp.StatusCode)
	}
	var m manifest
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return nil, fmt.Errorf("image: pull %s: manifest: %w", ref, err)
	}
	fetch := func(digest string) ([]byte, error) {
		br, err := http.Get(fmt.Sprintf("%s/v2/%s/blobs/%s", baseURL, name, digest))
		if err != nil {
			return nil, err
		}
		defer br.Body.Close()
		if br.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("blob %s: HTTP %d", digest, br.StatusCode)
		}
		data, err := io.ReadAll(br.Body)
		if err != nil {
			return nil, err
		}
		if Digest(data) != digest {
			return nil, fmt.Errorf("blob %s: digest mismatch", digest)
		}
		return data, nil
	}
	img := &Image{Name: ref}
	cfgBytes, err := fetch(m.Config.Digest)
	if err != nil {
		return nil, fmt.Errorf("image: pull %s: config: %w", ref, err)
	}
	if err := json.Unmarshal(cfgBytes, &img.Config); err != nil {
		return nil, fmt.Errorf("image: pull %s: config: %w", ref, err)
	}
	for _, l := range m.Layers {
		data, err := fetch(l.Digest)
		if err != nil {
			return nil, fmt.Errorf("image: pull %s: %w", ref, err)
		}
		img.Layers = append(img.Layers, Layer{Digest: l.Digest, Data: data})
	}
	return img, nil
}
