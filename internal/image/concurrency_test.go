package image

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/vfs"
)

// Concurrency coverage for the shared image layers: the flatten cache's
// single-flight fill, the store under parallel mixed use, and the
// registry under concurrent push/pull of overlapping blob sets.

// TestStoreFlattenSingleFlight: N goroutines miss on the same chain at
// once; exactly one unpack+snapshot runs and everyone shares its result.
func TestStoreFlattenSingleFlight(t *testing.T) {
	img, err := FromFS("base:1", baseFS(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	s := NewStore()
	s.Put(img)

	const n = 16
	var (
		start sync.WaitGroup
		done  sync.WaitGroup
		gate  = make(chan struct{})
		trees [n]*vfs.FS
		errs  [n]error
	)
	start.Add(n)
	done.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer done.Done()
			start.Done()
			<-gate // all goroutines reach the miss together
			trees[i], errs[i] = s.Flatten(img)
		}(i)
	}
	start.Wait()
	close(gate)
	done.Wait()

	if fills := s.FlattenFills(); fills != 1 {
		t.Errorf("flatten fills = %d, want 1", fills)
	}
	rc := vfs.RootContext()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		if !trees[i].Exists(rc, "/etc/os-release") {
			t.Errorf("goroutine %d: flattened tree incomplete", i)
		}
	}
	// Clones are independent: scribbling on one is invisible to the rest
	// and to later cache hits.
	trees[0].WriteFile(rc, "/etc/os-release", []byte("SCRIBBLED\n"), 0o644, 0, 0)
	if b, e := trees[1].ReadFile(rc, "/etc/os-release"); !e.Ok() || string(b) != "ID=test\n" {
		t.Errorf("clone 1 saw clone 0's write: %q %v", b, e)
	}
	later, err := s.Flatten(img)
	if err != nil {
		t.Fatal(err)
	}
	if b, _ := later.ReadFile(rc, "/etc/os-release"); string(b) != "ID=test\n" {
		t.Errorf("cached pristine tree corrupted: %q", b)
	}
	if fills := s.FlattenFills(); fills != 1 {
		t.Errorf("later hit refilled: fills = %d", fills)
	}
}

// TestStoreConcurrentHammer exercises every Store entry point from many
// goroutines at once. The assertions are loose — the store is shared
// mutable state and interleavings vary — but under -race this is the
// test that proves the locking holds together.
func TestStoreConcurrentHammer(t *testing.T) {
	s := NewStore()
	base, err := FromFS("base:0", baseFS(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	s.Put(base)

	const workers = 8
	const rounds = 20
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			rc := vfs.RootContext()
			for r := 0; r < rounds; r++ {
				name := fmt.Sprintf("img:%d-%d", w, r)
				fs, err := s.Flatten(base)
				if err != nil {
					t.Errorf("worker %d: flatten: %v", w, err)
					return
				}
				fs.WriteFile(rc, fmt.Sprintf("/w%d-r%d", w, r), []byte(name), 0o644, 0, 0)
				derived, added, err := s.CommitLayer(name, base, fs)
				if err != nil || !added {
					t.Errorf("worker %d: commit: added=%v err=%v", w, added, err)
					return
				}
				s.Put(derived)
				if got, ok := s.Get(name); !ok || len(got.Layers) != 2 {
					t.Errorf("worker %d: get %s: ok=%v", w, name, ok)
					return
				}
				for _, l := range derived.Layers {
					if b, ok := s.Blob(l.Digest); !ok || Digest(b) != l.Digest {
						t.Errorf("worker %d: blob %s broken", w, l.Digest)
						return
					}
				}
				s.Tags()
				if r%5 == 4 {
					s.Delete(name)
				}
			}
		}(w)
	}
	wg.Wait()

	// One fill for the shared base chain, however many workers hammered it.
	if fills := s.FlattenFills(); fills != 1 {
		t.Errorf("flatten fills = %d, want 1", fills)
	}
	// Deleted tags are gone, survivors resolve.
	for _, tag := range s.Tags() {
		if _, ok := s.Get(tag); !ok {
			t.Errorf("listed tag %s does not resolve", tag)
		}
	}
}

// TestStorePutCopiesBlobBytes: the store's content-addressed blobs must
// stay immutable when the caller mutates the Image it handed to Put.
func TestStorePutCopiesBlobBytes(t *testing.T) {
	img, err := FromFS("mut:1", baseFS(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	s := NewStore()
	s.Put(img)
	digest := img.Layers[0].Digest
	for i := range img.Layers[0].Data {
		img.Layers[0].Data[i] = 0
	}
	blob, ok := s.Blob(digest)
	if !ok {
		t.Fatal("blob missing")
	}
	if Digest(blob) != digest {
		t.Fatal("store blob corrupted by caller mutation after Put")
	}
	// And the slice Blob hands out is itself a copy.
	blob[0] ^= 0xff
	again, _ := s.Blob(digest)
	if Digest(again) != digest {
		t.Fatal("mutating a Blob() result corrupted the store")
	}
}

// TestStoreFlattenImmuneToScribbledImage: the flatten cache must hold the
// tree an image's layer *digests* name, even when a caller corrupts the
// Image's Data slices in place after Put — fills read the store's
// write-once blobs, not the caller-visible bytes.
func TestStoreFlattenImmuneToScribbledImage(t *testing.T) {
	img, err := FromFS("scribbled:1", baseFS(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	s := NewStore()
	s.Put(img)
	for _, l := range img.Layers {
		for i := range l.Data {
			l.Data[i] ^= 0xff
		}
	}
	fs, err := s.Flatten(img) // cold fill happens after the scribbling
	if err != nil {
		t.Fatalf("flatten of scribbled image: %v", err)
	}
	if b, e := fs.ReadFile(vfs.RootContext(), "/etc/os-release"); !e.Ok() || string(b) != "ID=test\n" {
		t.Errorf("flatten served scribbled bytes: %q %v", b, e)
	}
	// Re-Putting the corrupted image must not replace the pristine blob.
	s.Put(img)
	blob, ok := s.Blob(img.Layers[0].Digest)
	if !ok || Digest(blob) != img.Layers[0].Digest {
		t.Error("re-Put overwrote the write-once blob with corrupt bytes")
	}
}

// TestRegistryConcurrentPushPull: many clients pushing and pulling images
// with overlapping blob sets (a shared base layer) against one server.
func TestRegistryConcurrentPushPull(t *testing.T) {
	srvStore := NewStore()
	reg := NewRegistry(srvStore)
	url, err := reg.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	base, err := FromFS("app", baseFS(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Derived images share base's layer blob and add a private one.
	const n = 8
	images := make([]*Image, n)
	for i := range images {
		fs, err := base.Flatten()
		if err != nil {
			t.Fatal(err)
		}
		fs.WriteFile(vfs.RootContext(), "/unique", []byte(fmt.Sprintf("v%d", i)), 0o644, 0, 0)
		img, added, err := base.CommitLayer(fmt.Sprintf("app:%d", i), fs)
		if err != nil || !added {
			t.Fatalf("derive %d: added=%v err=%v", i, added, err)
		}
		images[i] = img
	}

	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			if err := Push(url, images[i]); err != nil {
				t.Errorf("push %d: %v", i, err)
				return
			}
			// Pull back our own tag and a neighbour's (when it is up yet;
			// overlapping blobs are the interesting part either way).
			got, err := Pull(url, fmt.Sprintf("app:%d", i))
			if err != nil {
				t.Errorf("pull %d: %v", i, err)
				return
			}
			if len(got.Layers) != 2 {
				t.Errorf("pull %d: %d layers", i, len(got.Layers))
				return
			}
			fs, err := got.Flatten()
			if err != nil {
				t.Errorf("pull %d: flatten: %v", i, err)
				return
			}
			if b, e := fs.ReadFile(vfs.RootContext(), "/unique"); !e.Ok() || string(b) != fmt.Sprintf("v%d", i) {
				t.Errorf("pull %d: /unique = %q %v", i, b, e)
			}
		}(i)
	}
	wg.Wait()

	// Every tag and every blob is served intact after the stampede.
	for i := 0; i < n; i++ {
		img, err := Pull(url, fmt.Sprintf("app:%d", i))
		if err != nil {
			t.Fatalf("final pull %d: %v", i, err)
		}
		if img.Layers[0].Digest != base.Layers[0].Digest {
			t.Errorf("image %d lost the shared base layer", i)
		}
	}
}
