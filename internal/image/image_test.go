package image

import (
	"net/http"
	"strings"
	"testing"

	"repro/internal/errno"
	"repro/internal/vfs"
)

func baseFS(t *testing.T) *vfs.FS {
	t.Helper()
	fs := vfs.New()
	rc := vfs.RootContext()
	fs.MkdirAll(rc, "/etc", 0o755, 0, 0)
	fs.WriteFile(rc, "/etc/os-release", []byte("ID=test\n"), 0o644, 0, 0)
	fs.MkdirAll(rc, "/bin", 0o755, 0, 0)
	fs.WriteFile(rc, "/bin/sh", []byte("ELF"), 0o755, 0, 0)
	return fs
}

func TestFromFSAndFlatten(t *testing.T) {
	img, err := FromFS("test:1", baseFS(t), Config{Labels: map[string]string{"org.repro.distro": "alpine"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(img.Layers) != 1 {
		t.Fatalf("layers: %d", len(img.Layers))
	}
	if !strings.HasPrefix(img.Layers[0].Digest, "sha256:") {
		t.Fatalf("digest: %s", img.Layers[0].Digest)
	}
	fs, err := img.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	data, e := fs.ReadFile(vfs.RootContext(), "/etc/os-release")
	if e != errno.OK || string(data) != "ID=test\n" {
		t.Fatalf("flatten: %q %v", data, e)
	}
	if img.Config.Distro() != "alpine" {
		t.Fatalf("distro: %q", img.Config.Distro())
	}
}

func TestCommitLayerAddsDiff(t *testing.T) {
	img, _ := FromFS("test:1", baseFS(t), Config{})
	fs, _ := img.Flatten()
	rc := vfs.RootContext()
	fs.WriteFile(rc, "/etc/new", []byte("new"), 0o644, 0, 0)
	derived, added, err := img.CommitLayer("test:2", fs)
	if err != nil || !added {
		t.Fatalf("commit: added=%v err=%v", added, err)
	}
	if len(derived.Layers) != 2 {
		t.Fatalf("layers: %d", len(derived.Layers))
	}
	// Flattening the derived image includes the change.
	fs2, _ := derived.Flatten()
	if !fs2.Exists(rc, "/etc/new") {
		t.Fatal("committed file missing")
	}
	// No change → no layer.
	same, added, err := derived.CommitLayer("test:3", fs2)
	if err != nil || added {
		t.Fatalf("no-op commit: added=%v err=%v", added, err)
	}
	if len(same.Layers) != 2 {
		t.Fatalf("no-op layers: %d", len(same.Layers))
	}
}

// TestStoreFlattenCache: repeated flattens of the same chain reuse the
// cached tree, and every caller gets an independent copy.
func TestStoreFlattenCache(t *testing.T) {
	s := NewStore()
	img, _ := FromFS("test:1", baseFS(t), Config{})
	rc := vfs.RootContext()

	a, err := s.Flatten(img)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Flatten(img)
	if err != nil {
		t.Fatal(err)
	}
	// Mutating one flatten must not leak into the other or into a third.
	a.WriteFile(rc, "/etc/dirty", []byte("x"), 0o644, 0, 0)
	a.ChownAll(1000, 1000)
	if b.Exists(rc, "/etc/dirty") {
		t.Fatal("flatten cache leaked a mutation between callers")
	}
	c, err := s.Flatten(img)
	if err != nil {
		t.Fatal(err)
	}
	if c.Exists(rc, "/etc/dirty") {
		t.Fatal("flatten cache poisoned by a caller's mutation")
	}
	if st, e := c.Stat(rc, "/bin/sh", true); e != errno.OK || st.UID != 0 {
		t.Fatalf("cached flatten ownership: %+v %v", st, e)
	}
}

// TestStoreCommitLayer: the cached-lower commit path produces the same
// image a plain CommitLayer does.
func TestStoreCommitLayer(t *testing.T) {
	s := NewStore()
	img, _ := FromFS("test:1", baseFS(t), Config{})
	rc := vfs.RootContext()

	mutate := func() *vfs.FS {
		fs, err := s.Flatten(img)
		if err != nil {
			t.Fatal(err)
		}
		fs.WriteFile(rc, "/etc/new", []byte("new"), 0o644, 0, 0)
		fs.Unlink(rc, "/etc/os-release")
		return fs
	}
	viaStore, addedS, err := s.CommitLayer("test:2", img, mutate())
	if err != nil || !addedS {
		t.Fatalf("store commit: added=%v err=%v", addedS, err)
	}
	plain, addedP, err := img.CommitLayer("test:2", mutate())
	if err != nil || !addedP {
		t.Fatalf("plain commit: added=%v err=%v", addedP, err)
	}
	if len(viaStore.Layers) != len(plain.Layers) {
		t.Fatalf("layer counts differ: %d vs %d", len(viaStore.Layers), len(plain.Layers))
	}
	// Same diff content (digests include mtimes, so compare entry paths).
	fsS, _ := viaStore.Flatten()
	fsP, _ := plain.Flatten()
	if fsS.Exists(rc, "/etc/os-release") || fsP.Exists(rc, "/etc/os-release") {
		t.Fatal("deletion lost in a commit path")
	}
	if !fsS.Exists(rc, "/etc/new") || !fsP.Exists(rc, "/etc/new") {
		t.Fatal("addition lost in a commit path")
	}
	// No-op commit through the cache adds nothing.
	fs, _ := s.Flatten(img)
	if _, added, err := s.CommitLayer("test:3", img, fs); err != nil || added {
		t.Fatalf("no-op store commit: added=%v err=%v", added, err)
	}
}

func TestChainDigestDistinguishesChains(t *testing.T) {
	img, _ := FromFS("test:1", baseFS(t), Config{})
	fs, _ := img.Flatten()
	vfsRC := vfs.RootContext()
	fs.WriteFile(vfsRC, "/etc/new", []byte("x"), 0o644, 0, 0)
	derived, _, err := img.CommitLayer("test:2", fs)
	if err != nil {
		t.Fatal(err)
	}
	if ChainDigest(img.Layers) == ChainDigest(derived.Layers) {
		t.Fatal("different chains share a chain digest")
	}
	if ChainDigest(img.Layers) != ChainDigest(img.Clone("other").Layers) {
		t.Fatal("identical chains got different chain digests")
	}
}

func TestLayerDeletionPropagates(t *testing.T) {
	img, _ := FromFS("test:1", baseFS(t), Config{})
	fs, _ := img.Flatten()
	rc := vfs.RootContext()
	fs.Unlink(rc, "/etc/os-release")
	derived, added, err := img.CommitLayer("test:2", fs)
	if err != nil || !added {
		t.Fatal("deletion commit failed")
	}
	fs2, _ := derived.Flatten()
	if fs2.Exists(rc, "/etc/os-release") {
		t.Fatal("whiteout did not propagate through flatten")
	}
}

func TestStoreTagsAndBlobs(t *testing.T) {
	s := NewStore()
	img, _ := FromFS("a:1", baseFS(t), Config{})
	s.Put(img)
	img2, _ := FromFS("b:2", baseFS(t), Config{})
	s.Put(img2)
	tags := s.Tags()
	if len(tags) != 2 || tags[0] != "a:1" || tags[1] != "b:2" {
		t.Fatalf("tags: %v", tags)
	}
	got, ok := s.Get("a:1")
	if !ok || got.Name != "a:1" {
		t.Fatal("get failed")
	}
	blob, ok := s.Blob(img.Layers[0].Digest)
	if !ok || len(blob) == 0 {
		t.Fatal("blob missing")
	}
	s.Delete("a:1")
	if _, ok := s.Get("a:1"); ok {
		t.Fatal("delete failed")
	}
}

func TestClone(t *testing.T) {
	img, _ := FromFS("orig:1", baseFS(t), Config{
		Env:    []string{"PATH=/bin"},
		Labels: map[string]string{"k": "v"},
	})
	c := img.Clone("copy:1")
	c.Config.Labels["k"] = "changed"
	c.Config.Env = append(c.Config.Env, "X=1")
	if img.Config.Labels["k"] != "v" {
		t.Fatal("clone shares label map")
	}
	if len(img.Config.Env) != 1 {
		t.Fatal("clone shares env slice")
	}
}

func TestSplitRef(t *testing.T) {
	cases := []struct{ ref, name, tag string }{
		{"alpine:3.19", "alpine", "3.19"},
		{"alpine", "alpine", "latest"},
		{"repo/name:v1", "repo/name", "v1"},
	}
	for _, c := range cases {
		n, tg := SplitRef(c.ref)
		if n != c.name || tg != c.tag {
			t.Errorf("SplitRef(%q) = %q,%q", c.ref, n, tg)
		}
	}
}

func TestRegistryPullRoundTrip(t *testing.T) {
	s := NewStore()
	img, _ := FromFS("alpine:3.19", baseFS(t), Config{
		Env:    []string{"PATH=/bin"},
		Labels: map[string]string{"org.repro.distro": "alpine"},
	})
	s.Put(img)
	reg := NewRegistry(s)
	url, err := reg.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	pulled, err := Pull(url, "alpine:3.19")
	if err != nil {
		t.Fatal(err)
	}
	if pulled.Config.Distro() != "alpine" || len(pulled.Layers) != 1 {
		t.Fatalf("pulled: %+v", pulled)
	}
	if pulled.Layers[0].Digest != img.Layers[0].Digest {
		t.Fatal("digest mismatch")
	}
	fs, err := pulled.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	if !fs.Exists(vfs.RootContext(), "/bin/sh") {
		t.Fatal("pulled content missing")
	}
}

func TestRegistryPullUnknown(t *testing.T) {
	s := NewStore()
	reg := NewRegistry(s)
	url, _ := reg.Start()
	defer reg.Close()
	if _, err := Pull(url, "ghost:1"); err == nil {
		t.Fatal("unknown image must fail")
	}
}

func TestDigestStability(t *testing.T) {
	if Digest([]byte("x")) != Digest([]byte("x")) {
		t.Fatal("digest not deterministic")
	}
	if Digest([]byte("x")) == Digest([]byte("y")) {
		t.Fatal("digest collision")
	}
}

func TestPushPullRoundTrip(t *testing.T) {
	// Push a derived image to a fresh registry and pull it back — the
	// ch-image push path.
	src := NewStore()
	img, _ := FromFS("myapp:1.0", baseFS(t), Config{
		Labels: map[string]string{"org.repro.distro": "alpine"},
	})
	fs, _ := img.Flatten()
	fs.WriteFile(vfs.RootContext(), "/app", []byte("binary"), 0o755, 0, 0)
	derived, _, err := img.CommitLayer("myapp:1.0", fs)
	if err != nil {
		t.Fatal(err)
	}
	_ = src

	dstStore := NewStore()
	reg := NewRegistry(dstStore)
	url, err := reg.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	if err := Push(url, derived); err != nil {
		t.Fatalf("push: %v", err)
	}
	pulled, err := Pull(url, "myapp:1.0")
	if err != nil {
		t.Fatalf("pull after push: %v", err)
	}
	if len(pulled.Layers) != 2 {
		t.Fatalf("layers: %d", len(pulled.Layers))
	}
	pfs, _ := pulled.Flatten()
	data, e := pfs.ReadFile(vfs.RootContext(), "/app")
	if !e.Ok() || string(data) != "binary" {
		t.Fatalf("content: %q %v", data, e)
	}
	if pulled.Config.Distro() != "alpine" {
		t.Fatalf("config lost: %+v", pulled.Config)
	}
}

func TestPushRejectsCorruptBlob(t *testing.T) {
	s := NewStore()
	reg := NewRegistry(s)
	url, _ := reg.Start()
	defer reg.Close()
	// A PUT whose body does not match the digest must be refused.
	req, _ := http.NewRequest(http.MethodPut,
		url+"/v2/evil/blobs/sha256:0000000000000000000000000000000000000000000000000000000000000000",
		strings.NewReader("not the content"))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt blob accepted: HTTP %d", resp.StatusCode)
	}
}

func TestManifestPushRequiresBlobs(t *testing.T) {
	s := NewStore()
	reg := NewRegistry(s)
	url, _ := reg.Start()
	defer reg.Close()
	body := `{"schemaVersion":2,"config":{"digest":"sha256:missing"},"layers":[]}`
	req, _ := http.NewRequest(http.MethodPut, url+"/v2/x/manifests/1", strings.NewReader(body))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("manifest with missing blobs accepted: HTTP %d", resp.StatusCode)
	}
}
