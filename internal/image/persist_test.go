package image

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cas"
	"repro/internal/tarutil"
	"repro/internal/vfs"
)

func openDir(t *testing.T, root string) *cas.Dir {
	t.Helper()
	d, _, err := cas.Open(root)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

func testImage(t *testing.T, name string) *Image {
	t.Helper()
	fs := vfs.New()
	rc := vfs.RootContext()
	fs.MkdirAll(rc, "/etc", 0o755, 0, 0)
	fs.WriteFile(rc, "/etc/banner", []byte("persisted"), 0o644, 0, 0)
	img, err := FromFS(name, fs, Config{
		Env:    []string{"A=1"},
		Labels: map[string]string{"org.repro.distro": "alpine"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return img
}

// A tag Put through a backed store is resolvable by a completely fresh
// Store in a later "process", config and layer bytes intact.
func TestStoreTagSurvivesProcess(t *testing.T) {
	root := t.TempDir()
	img := testImage(t, "app:1")

	s1 := NewStore()
	s1.SetBacking(openDir(t, root))
	s1.Put(img)
	if err := s1.BackingErr(); err != nil {
		t.Fatal(err)
	}

	s2 := NewStore()
	s2.SetBacking(openDir(t, root))
	got, ok := s2.Get("app:1")
	if !ok {
		t.Fatal("persisted tag not found by fresh store")
	}
	if got.Config.Distro() != "alpine" || len(got.Config.Env) != 1 {
		t.Fatalf("config lost: %+v", got.Config)
	}
	if len(got.Layers) != 1 || got.Layers[0].Digest != img.Layers[0].Digest {
		t.Fatalf("layers: %+v", got.Layers)
	}
	fs, err := got.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	data, _ := fs.ReadFile(vfs.RootContext(), "/etc/banner")
	if string(data) != "persisted" {
		t.Fatalf("content: %q", data)
	}
	// Second Get serves from memory (same pointer).
	again, _ := s2.Get("app:1")
	if again != got {
		t.Fatal("rehydrated image not cached in memory")
	}
	if _, ok := s2.Get("never:1"); ok {
		t.Fatal("unknown tag resolved")
	}
}

// A flatten chain filled by one store rehydrates in the next process from
// the persisted snapshot: zero fills, identical tree and lower snapshot.
func TestFlattenChainRehydrates(t *testing.T) {
	root := t.TempDir()
	img := testImage(t, "app:1")

	s1 := NewStore()
	s1.SetBacking(openDir(t, root))
	s1.Put(img)
	fs1, err := s1.Flatten(img)
	if err != nil {
		t.Fatal(err)
	}
	if s1.FlattenFills() != 1 || s1.Rehydrates() != 0 {
		t.Fatalf("process 1: fills=%d rehydrates=%d", s1.FlattenFills(), s1.Rehydrates())
	}
	if err := s1.BackingErr(); err != nil {
		t.Fatal(err)
	}

	s2 := NewStore()
	s2.SetBacking(openDir(t, root))
	img2, ok := s2.Get("app:1")
	if !ok {
		t.Fatal("tag lost")
	}
	fs2, err := s2.Flatten(img2)
	if err != nil {
		t.Fatal(err)
	}
	if s2.FlattenFills() != 0 || s2.Rehydrates() != 1 {
		t.Fatalf("process 2: fills=%d rehydrates=%d, want 0/1", s2.FlattenFills(), s2.Rehydrates())
	}
	// The rehydrated tree matches the filled one (Diff ignores mtime,
	// exactly as layer commits do).
	sn1, err := tarutil.Snapshot(fs1)
	if err != nil {
		t.Fatal(err)
	}
	sn2, err := tarutil.Snapshot(fs2)
	if err != nil {
		t.Fatal(err)
	}
	if d := tarutil.Diff(sn1, sn2); len(d) != 0 {
		t.Fatalf("rehydrated tree differs from filled tree: %d entries", len(d))
	}
	// CommitLayer against the rehydrated chain sees no phantom changes.
	if _, added, err := s2.CommitLayer("noop:1", img2, fs2); err != nil || added {
		t.Fatalf("phantom diff against rehydrated chain: added=%v err=%v", added, err)
	}
}

// A corrupted chain snapshot blob is quarantined at open; the store falls
// back to an ordinary fill instead of failing.
func TestCorruptChainSnapshotFallsBackToFill(t *testing.T) {
	root := t.TempDir()
	// Two layers, so the packed whole-tree snapshot is a blob distinct
	// from every layer blob (a single-layer image's snapshot deduplicates
	// onto the layer itself).
	base := testImage(t, "base:1")
	fs, err := base.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	fs.WriteFile(vfs.RootContext(), "/etc/extra", []byte("layer two"), 0o644, 0, 0)
	img, added, err := base.CommitLayer("app:1", fs)
	if err != nil || !added {
		t.Fatalf("commit: added=%v err=%v", added, err)
	}
	s1 := NewStore()
	s1.SetBacking(openDir(t, root))
	s1.Put(img)
	if _, err := s1.Flatten(img); err != nil {
		t.Fatal(err)
	}
	if err := s1.BackingErr(); err != nil {
		t.Fatal(err)
	}

	// Corrupt the chain's snapshot blob, located through the persisted
	// chain index itself.
	d1 := s1.Backing()
	ch, ok := d1.Chain(ChainDigest(img.Layers))
	if !ok {
		t.Fatal("chain not persisted")
	}
	for _, l := range img.Layers {
		if ch.Snap == l.Digest {
			t.Fatal("snapshot blob unexpectedly dedups onto a layer")
		}
	}
	hexpart := ch.Snap[len("sha256:"):]
	p := filepath.Join(root, "blobs", "sha256", hexpart[:2], hexpart[2:])
	if err := os.WriteFile(p, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	d2, rep, err := cas.Open(root)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if rep.BlobsQuarantined == 0 {
		t.Fatalf("corruption not detected: %+v", rep)
	}
	s2 := NewStore()
	s2.SetBacking(d2)
	img2, ok := s2.Get("app:1")
	if !ok {
		t.Fatal("tag with intact layers lost")
	}
	if _, err := s2.Flatten(img2); err != nil {
		t.Fatal(err)
	}
	if s2.FlattenFills() != 1 || s2.Rehydrates() != 0 {
		t.Fatalf("fills=%d rehydrates=%d, want fill fallback", s2.FlattenFills(), s2.Rehydrates())
	}
}

// Images Put before SetBacking are not persisted; attach-then-seed is the
// documented order and must round-trip.
func TestBackingAttachOrder(t *testing.T) {
	root := t.TempDir()
	s1 := NewStore()
	s1.Put(testImage(t, "early:1")) // before attach: memory only
	s1.SetBacking(openDir(t, root))
	s1.Put(testImage(t, "late:1"))

	s2 := NewStore()
	s2.SetBacking(openDir(t, root))
	if _, ok := s2.Get("early:1"); ok {
		t.Fatal("pre-attach Put leaked to disk")
	}
	if _, ok := s2.Get("late:1"); !ok {
		t.Fatal("post-attach Put not persisted")
	}
}

// Delete writes the untag through: without it, Get's backing fallback
// would resurrect the tag from disk in the same process.
func TestDeleteWritesThroughUntag(t *testing.T) {
	root := t.TempDir()
	s := NewStore()
	s.SetBacking(openDir(t, root))
	s.Put(testImage(t, "gone:1"))
	s.Delete("gone:1")
	if _, ok := s.Get("gone:1"); ok {
		t.Fatal("deleted tag resurrected from backing in-process")
	}
	if err := s.BackingErr(); err != nil {
		t.Fatal(err)
	}
	s2 := NewStore()
	s2.SetBacking(openDir(t, root))
	if _, ok := s2.Get("gone:1"); ok {
		t.Fatal("deleted tag resurrected in the next process")
	}
}

// GCBacking delegates to the attached cas directory; without one it is a
// quiet no-op, and a failure is recorded as a backing error (colder
// cache) rather than returned as a build-stopping condition upstream.
func TestGCBackingDelegatesAndRecordsErrors(t *testing.T) {
	// No backing: zero stats, no error, nothing recorded.
	s := NewStore()
	if stats, err := s.GCBacking(context.Background(), cas.Budget{MaxBytes: 1}); err != nil || stats != (cas.GCStats{}) {
		t.Fatalf("GCBacking without backing: %+v %v", stats, err)
	}

	// With a backing: the untagged blob goes, the tagged image survives.
	root := t.TempDir()
	d := openDir(t, root)
	s.SetBacking(d)
	s.Put(testImage(t, "keep:1"))
	if _, err := d.PutBlob(context.Background(), []byte("untagged garbage")); err != nil {
		t.Fatal(err)
	}
	stats, err := s.GCBacking(context.Background(), cas.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.BlobsSwept != 1 || stats.TagsKept != 1 {
		t.Fatalf("stats: %+v", stats)
	}
	if err := s.BackingErr(); err != nil {
		t.Fatalf("successful GC recorded an error: %v", err)
	}

	// A failing GC (closed backing) is recorded, not swallowed.
	d.Close()
	if _, err := s.GCBacking(context.Background(), cas.Budget{}); err == nil {
		t.Fatal("GC on closed backing succeeded")
	}
	if err := s.BackingErr(); err == nil {
		t.Fatal("GC failure not recorded as backing error")
	}
}
