package image

import "repro/internal/obs"

// Flatten-cache instruments on the obs default registry (see
// docs/observability.md): a fill pays the full tree materialisation, a
// rehydrate replays a persisted chain snapshot from cas.
var (
	mFlattenFills = obs.NewCounter("ch_image_flatten_fills_total",
		"Flatten-cache misses materialised from scratch.")
	mFlattenRehydrates = obs.NewCounter("ch_image_flatten_rehydrates_total",
		"Flatten-cache misses served by rehydrating a persisted chain snapshot.")
)
