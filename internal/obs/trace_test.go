package obs

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestTraceTree builds a small tree through the context API and checks
// the snapshot mirrors it: names, nesting, attrs, non-negative
// monotone offsets.
func TestTraceTree(t *testing.T) {
	ctx, root := NewTrace(context.Background(), "build demo:1")
	sctx, stage := StartSpan(ctx, "stage 0 (alpine)")
	_, ins := StartSpan(sctx, "RUN apk add sl")
	ins.Annotate("cache", "miss")
	ins.AnnotateInt("bytes", 1234)
	ins.End()
	stage.End()
	root.End()

	d := root.Snapshot()
	if d.Name != "build demo:1" || len(d.Children) != 1 {
		t.Fatalf("bad root: %+v", d)
	}
	st := d.Children[0]
	if st.Name != "stage 0 (alpine)" || len(st.Children) != 1 {
		t.Fatalf("bad stage: %+v", st)
	}
	in := st.Children[0]
	if in.Name != "RUN apk add sl" {
		t.Fatalf("bad instruction: %+v", in)
	}
	if len(in.Attrs) != 2 || in.Attrs[0] != (Attr{"cache", "miss"}) || in.Attrs[1] != (Attr{"bytes", "1234"}) {
		t.Fatalf("bad attrs: %+v", in.Attrs)
	}
	for _, s := range []SpanData{d, st, in} {
		if s.Running {
			t.Errorf("%s still running after End", s.Name)
		}
		if s.StartMs < 0 || s.DurationMs < 0 {
			t.Errorf("%s negative timing: %+v", s.Name, s)
		}
	}
	if st.StartMs < d.StartMs || in.StartMs < st.StartMs {
		t.Errorf("child starts before parent: root=%v stage=%v ins=%v", d.StartMs, st.StartMs, in.StartMs)
	}
}

// TestUntracedNoop: without NewTrace, StartSpan hands back the same
// context and a nil span whose methods all no-op — the zero-cost path
// every plain build takes.
func TestUntracedNoop(t *testing.T) {
	ctx := context.Background()
	ctx2, s := StartSpan(ctx, "ignored")
	if ctx2 != ctx {
		t.Error("untraced StartSpan returned a new context")
	}
	if s != nil {
		t.Fatalf("untraced StartSpan returned a span: %+v", s)
	}
	// All nil-safe:
	s.Annotate("k", "v")
	s.AnnotateInt("n", 1)
	s.End()
	if d := s.Snapshot(); d.Name != "" || len(d.Children) != 0 {
		t.Errorf("nil snapshot not zero: %+v", d)
	}
	if SpanOf(ctx) != nil {
		t.Error("SpanOf on untraced context not nil")
	}
}

// TestConcurrentChildren: parallel stages attach children to one
// parent concurrently (the wave scheduler does exactly this); under
// -race this is the tracer's data-race gate.
func TestConcurrentChildren(t *testing.T) {
	ctx, root := NewTrace(context.Background(), "build par")
	const n = 32
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sctx, s := StartSpan(ctx, "stage")
			_, c := StartSpan(sctx, "RUN x")
			c.Annotate("cache", "hit")
			c.End()
			s.End()
		}()
	}
	wg.Wait()
	root.End()
	d := root.Snapshot()
	if len(d.Children) != n {
		t.Fatalf("got %d children, want %d", len(d.Children), n)
	}
	for _, c := range d.Children {
		if len(c.Children) != 1 {
			t.Fatalf("stage with %d children, want 1", len(c.Children))
		}
	}
}

// TestSnapshotWire: SpanData marshals to the wire shape the daemon
// embeds (camelCase keys, attrs/children omitted when empty) and
// WriteTree renders every span on its own indented line.
func TestSnapshotWire(t *testing.T) {
	ctx, root := NewTrace(context.Background(), "build w:1")
	_, s := StartSpan(ctx, "FROM alpine:3.19")
	s.End()
	root.End()
	raw, err := json.Marshal(root.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"name":"build w:1"`, `"durationMs":`, `"children":[{"name":"FROM alpine:3.19"`} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("wire JSON missing %s: %s", want, raw)
		}
	}
	if strings.Contains(string(raw), `"attrs"`) {
		t.Errorf("empty attrs not omitted: %s", raw)
	}

	var b strings.Builder
	root.Snapshot().WriteTree(&b)
	lines := strings.Split(strings.TrimSuffix(b.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("tree: got %d lines, want 2:\n%s", len(lines), b.String())
	}
	if !strings.HasPrefix(lines[0], "build w:1") || !strings.HasPrefix(lines[1], "  FROM alpine:3.19") {
		t.Errorf("bad tree:\n%s", b.String())
	}
	if !strings.Contains(lines[1], "ms") {
		t.Errorf("no duration on tree line: %q", lines[1])
	}
}

// TestRunningSnapshot: a snapshot taken mid-build marks unfinished
// spans Running with their elapsed-so-far duration — GET on a live
// operation sees a truthful partial timeline.
func TestRunningSnapshot(t *testing.T) {
	ctx, root := NewTrace(context.Background(), "build live")
	_, s := StartSpan(ctx, "RUN sleep")
	d := root.Snapshot()
	if !d.Running || !d.Children[0].Running {
		t.Errorf("live spans not marked running: %+v", d)
	}
	s.End()
	root.End()
	if d := root.Snapshot(); d.Running || d.Children[0].Running {
		t.Errorf("ended spans still running: %+v", d)
	}
}
