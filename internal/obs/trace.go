package obs

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Tracing: a per-build span tree carried on the context. The daemon
// starts a trace per operation and ch-image starts one under --trace;
// the engine then opens a child span per stage and per instruction
// wherever the context already flows. When no trace is attached,
// StartSpan returns a nil *Span and every Span method is a nil-safe
// no-op, so untraced builds pay one context lookup per span site and
// nothing else.

// Attr is one key/value annotation on a span (cache hit/miss, bytes
// committed, retries, degraded events, ...).
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one timed node of a trace tree. Create the root with
// NewTrace and children with StartSpan; both are safe for concurrent
// children (parallel stages hang off one parent).
type Span struct {
	name  string
	start time.Time

	mu       sync.Mutex
	ended    bool
	end      time.Time
	attrs    []Attr
	children []*Span
}

type traceKey struct{}

// NewTrace starts a new trace rooted at a span named name and returns
// a context carrying it. The caller ends the root span itself.
func NewTrace(ctx context.Context, name string) (context.Context, *Span) {
	s := &Span{name: name, start: time.Now()}
	return context.WithValue(ctx, traceKey{}, s), s
}

// SpanOf returns the span carried by ctx, or nil if ctx is untraced.
func SpanOf(ctx context.Context) *Span {
	s, _ := ctx.Value(traceKey{}).(*Span)
	return s
}

// StartSpan opens a child span under the span carried by ctx and
// returns a context carrying the child. On an untraced context it
// returns (ctx, nil); the nil span's methods are all no-ops.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanOf(ctx)
	if parent == nil {
		return ctx, nil
	}
	c := &Span{name: name, start: time.Now()}
	parent.mu.Lock()
	parent.children = append(parent.children, c)
	parent.mu.Unlock()
	return context.WithValue(ctx, traceKey{}, c), c
}

// End marks the span finished. The first call wins; later calls and
// calls on a nil span are no-ops.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.ended = true
		s.end = time.Now()
	}
	s.mu.Unlock()
}

// Annotate attaches a key/value attribute. No-op on a nil span.
func (s *Span) Annotate(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{key, value})
	s.mu.Unlock()
}

// AnnotateInt attaches an integer attribute. No-op on a nil span.
func (s *Span) AnnotateInt(key string, v int64) {
	s.Annotate(key, fmt.Sprintf("%d", v))
}

// SpanData is an immutable snapshot of a span subtree: the wire shape
// the daemon embeds in GET /v1/operations/{id} and the input to the
// --trace text renderer. Offsets are milliseconds from the snapshot
// root's start.
type SpanData struct {
	Name       string     `json:"name"`
	StartMs    float64    `json:"startMs"`
	DurationMs float64    `json:"durationMs"`
	Running    bool       `json:"running,omitempty"`
	Attrs      []Attr     `json:"attrs,omitempty"`
	Children   []SpanData `json:"children,omitempty"`
}

// Snapshot captures the subtree rooted at s. A still-running span
// reports its elapsed time so far and Running=true. Returns the zero
// SpanData on a nil span.
func (s *Span) Snapshot() SpanData {
	if s == nil {
		return SpanData{}
	}
	return s.snapshot(s.start)
}

func (s *Span) snapshot(root time.Time) SpanData {
	s.mu.Lock()
	end, ended := s.end, s.ended
	attrs := append([]Attr(nil), s.attrs...)
	kids := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	if !ended {
		end = time.Now()
	}
	d := SpanData{
		Name:       s.name,
		StartMs:    float64(s.start.Sub(root)) / float64(time.Millisecond),
		DurationMs: float64(end.Sub(s.start)) / float64(time.Millisecond),
		Running:    !ended,
		Attrs:      attrs,
	}
	for _, c := range kids {
		d.Children = append(d.Children, c.snapshot(root))
	}
	// Concurrent children (parallel stages) land in creation order;
	// present them by start time so the timeline reads top to bottom.
	sort.SliceStable(d.Children, func(i, j int) bool {
		return d.Children[i].StartMs < d.Children[j].StartMs
	})
	return d
}

// WriteTree renders the snapshot as an indented tree with durations
// and attributes, one span per line — the ch-image build --trace
// output.
func (d SpanData) WriteTree(w io.Writer) {
	d.writeTree(w, 0)
}

func (d SpanData) writeTree(w io.Writer, depth int) {
	var attrs strings.Builder
	for _, a := range d.Attrs {
		fmt.Fprintf(&attrs, "  %s=%s", a.Key, a.Value)
	}
	running := ""
	if d.Running {
		running = " (running)"
	}
	fmt.Fprintf(w, "%s%-*s %9.2fms%s%s\n",
		strings.Repeat("  ", depth), 48-2*depth, d.Name, d.DurationMs, running, attrs.String())
	for _, c := range d.Children {
		c.writeTree(w, depth+1)
	}
}
