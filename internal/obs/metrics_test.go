package obs

import (
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// TestCounterExactUnderConcurrency hammers one counter, one labeled
// counter and one histogram from N goroutines and asserts the totals
// are exact: the atomic fast path may not drop increments. Run under
// -race this is also the registry's data-race gate.
func TestCounterExactUnderConcurrency(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("t_hammer_total", "hammered counter")
	vec := r.NewCounterVec("t_hammer_labeled_total", "hammered labeled counter", "mode")
	g := r.NewGauge("t_hammer_gauge", "hammered gauge")
	h := r.NewHistogram("t_hammer_seconds", "hammered histogram", []float64{0.5, 1, 2})

	const goroutines, per = 16, 10000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			mode := "even"
			if i%2 == 1 {
				mode = "odd"
			}
			child := vec.With(mode)
			for j := 0; j < per; j++ {
				c.Inc()
				child.Add(2)
				g.Add(1)
				g.Dec()
				h.Observe(float64(j%4) * 0.75) // 0, 0.75, 1.5, 2.25
			}
		}()
	}
	wg.Wait()

	if got, want := c.Value(), uint64(goroutines*per); got != want {
		t.Errorf("counter: got %d, want %d", got, want)
	}
	for _, mode := range []string{"even", "odd"} {
		if got, want := vec.With(mode).Value(), uint64(goroutines/2*per*2); got != want {
			t.Errorf("counter{mode=%s}: got %d, want %d", mode, got, want)
		}
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge: got %d, want 0", got)
	}
	if got, want := h.Count(), uint64(goroutines*per); got != want {
		t.Errorf("histogram count: got %d, want %d", got, want)
	}
	wantSum := float64(goroutines) * float64(per/4) * (0 + 0.75 + 1.5 + 2.25)
	if got := h.Sum(); math.Abs(got-wantSum) > 1e-6*wantSum {
		t.Errorf("histogram sum: got %g, want %g", got, wantSum)
	}
}

// TestHistogramBuckets pins the bucket assignment (le semantics: a
// value lands in the first bucket whose bound is >= it) and that the
// rendered cumulative counts are monotone and end at the total.
func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("t_bucket_seconds", "bucket test", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 4, 100} {
		h.Observe(v)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := map[string]uint64{"1": 2, "2": 4, "4": 6, "+Inf": 7}
	prev := uint64(0)
	seen := 0
	for _, line := range strings.Split(b.String(), "\n") {
		if !strings.HasPrefix(line, "t_bucket_seconds_bucket{le=") {
			continue
		}
		seen++
		le := line[strings.Index(line, `"`)+1 : strings.LastIndex(line, `"`)]
		n, err := strconv.ParseUint(line[strings.LastIndex(line, " ")+1:], 10, 64)
		if err != nil {
			t.Fatalf("bad bucket line %q: %v", line, err)
		}
		if n < prev {
			t.Errorf("bucket le=%s not monotone: %d < %d", le, n, prev)
		}
		prev = n
		if w, ok := want[le]; !ok || n != w {
			t.Errorf("bucket le=%s: got %d, want %d", le, n, want[le])
		}
	}
	if seen != 4 {
		t.Errorf("got %d bucket lines, want 4", seen)
	}
	if prev != h.Count() {
		t.Errorf("+Inf bucket %d != count %d", prev, h.Count())
	}
}

// Prometheus text-format grammar (version 0.0.4), line by line.
var (
	helpLineRE   = regexp.MustCompile(`^# HELP [a-z][a-z0-9_]* \S.*$`)
	typeLineRE   = regexp.MustCompile(`^# TYPE [a-z][a-z0-9_]* (counter|gauge|histogram)$`)
	sampleLineRE = regexp.MustCompile(
		`^[a-z][a-z0-9_]*(\{[a-z][a-z0-9_]*="(\\.|[^"\\])*"(,[a-z][a-z0-9_]*="(\\.|[^"\\])*")*\})? (NaN|[+-]?Inf|[-+]?[0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?)$`)
)

// TestExpositionGrammar renders a registry with every instrument kind
// (labeled and not, with escaping-hostile label values) and checks
// each output line against the text-format grammar, plus the ordering
// and pairing invariants scrapers rely on.
func TestExpositionGrammar(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("t_a_total", "plain counter").Add(3)
	r.NewCounterVec("t_b_total", "labeled counter", "route", "code").With(`/v1/"x"\y`, "200").Inc()
	r.NewGauge("t_c_depth", "plain gauge").Set(-7)
	r.NewHistogram("t_d_seconds", "plain histogram", []float64{0.25, 0.5}).Observe(0.3)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasSuffix(out, "\n") {
		t.Fatal("exposition does not end in newline")
	}
	var names []string
	for i, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			if !helpLineRE.MatchString(line) {
				t.Errorf("line %d: bad HELP line %q", i+1, line)
			}
			names = append(names, strings.Fields(line)[2])
		case strings.HasPrefix(line, "# TYPE "):
			if !typeLineRE.MatchString(line) {
				t.Errorf("line %d: bad TYPE line %q", i+1, line)
			}
		default:
			if !sampleLineRE.MatchString(line) {
				t.Errorf("line %d: bad sample line %q", i+1, line)
			}
		}
	}
	if !sort.StringsAreSorted(names) {
		t.Errorf("families not sorted: %v", names)
	}
	for _, want := range []string{
		"t_a_total 3\n",
		`t_b_total{route="/v1/\"x\"\\y",code="200"} 1` + "\n",
		"t_c_depth -7\n",
		"t_d_seconds_bucket{le=\"0.5\"} 1\n",
		"t_d_seconds_sum 0.3\n",
		"t_d_seconds_count 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

// TestDisabled: with collection off, every instrument is a no-op; on
// again, it resumes. The global toggle is what BenchmarkObsOverhead
// flips to measure instrumentation cost.
func TestDisabled(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("t_off_total", "disabled counter")
	h := r.NewHistogram("t_off_seconds", "disabled histogram", []float64{1})
	g := r.NewGauge("t_off_depth", "disabled gauge")
	SetDisabled(true)
	c.Inc()
	h.Observe(0.5)
	g.Set(9)
	SetDisabled(false)
	if c.Value() != 0 || h.Count() != 0 || g.Value() != 0 {
		t.Errorf("disabled instruments moved: c=%d h=%d g=%d", c.Value(), h.Count(), g.Value())
	}
	c.Inc()
	if c.Value() != 1 {
		t.Errorf("re-enabled counter: got %d, want 1", c.Value())
	}
}

// TestRegistryPanics: malformed and duplicate registrations are
// programming errors caught at init time.
func TestRegistryPanics(t *testing.T) {
	for name, f := range map[string]func(r *Registry){
		"bad name":       func(r *Registry) { r.NewCounter("Bad-Name", "x") },
		"bad label":      func(r *Registry) { r.NewCounterVec("t_x_total", "x", "BadLabel") },
		"dup":            func(r *Registry) { r.NewCounter("t_dup_total", "x"); r.NewGauge("t_dup_total", "x") },
		"no buckets":     func(r *Registry) { r.NewHistogram("t_h_seconds", "x", nil) },
		"unsorted":       func(r *Registry) { r.NewHistogram("t_h_seconds", "x", []float64{2, 1}) },
		"label arity":    func(r *Registry) { r.NewCounterVec("t_x_total", "x", "mode").With("a", "b") },
		"double us name": func(r *Registry) { r.NewCounter("t__x_total", "x") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f(NewRegistry())
		}()
	}
}

// TestVecIdentity: With returns the same child for the same values, a
// distinct child otherwise.
func TestVecIdentity(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("t_id_total", "identity", "mode")
	a, b, c := v.With("x"), v.With("x"), v.With("y")
	if a != b {
		t.Error("same label values gave distinct children")
	}
	if a == c {
		t.Error("distinct label values gave the same child")
	}
}
