// Package obs is the engine's observability layer: a stdlib-only
// metrics registry rendered in the Prometheus text exposition format,
// and a lightweight per-build tracing facility carried on the
// context.Context the engine already threads everywhere (PR 7).
//
// The instruments are lock-cheap: every Inc/Add/Observe is a handful
// of atomic operations with no mutex on the hot path. Family and
// child lookup (With) does take the registry/family mutex, so
// instrumented code holds child handles in package-level vars (or
// resolves them once per request) rather than calling With per event
// in a tight loop.
//
// The whole layer can be switched off with SetDisabled(true): every
// instrument method then returns after one atomic load, which is the
// baseline BenchmarkObsOverhead compares the instrumented build path
// against (see docs/observability.md for the acceptance ceiling).
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// disabled short-circuits every instrument when set. Default off:
// metrics are collected unless a caller opts out.
var disabled atomic.Bool

// SetDisabled switches metric collection off (true) or on (false).
func SetDisabled(v bool) { disabled.Store(v) }

// Disabled reports whether metric collection is switched off.
func Disabled() bool { return disabled.Load() }

// DefBuckets are the default latency buckets in seconds. The engine's
// per-instruction costs sit in the microsecond-to-millisecond range,
// so the ladder starts well under a millisecond.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Counter is a monotonically increasing uint64.
type Counter struct{ v atomic.Uint64 }

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. Counters only go up; negative deltas are a Gauge's job.
func (c *Counter) Add(n uint64) {
	if disabled.Load() {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) {
	if disabled.Load() {
		return
	}
	g.v.Store(n)
}

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) {
	if disabled.Load() {
		return
	}
	g.v.Add(n)
}

// Inc adds 1.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into fixed cumulative buckets.
type Histogram struct {
	bounds []float64 // immutable sorted upper bounds; +Inf implied
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if disabled.Load() {
		return
	}
	// First bucket whose upper bound is >= v; past the end = +Inf.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since t0.
func (h *Histogram) ObserveSince(t0 time.Time) { h.Observe(time.Since(t0).Seconds()) }

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// child is one labeled series of a family.
type child struct {
	labelVals []string
	counter   *Counter
	gauge     *Gauge
	hist      *Histogram
}

// family is one named metric with zero or more labeled children.
type family struct {
	name    string
	help    string
	kind    kind
	labels  []string
	buckets []float64

	mu       sync.Mutex
	children map[string]*child
}

// childLocked returns (creating on demand) the series for vals.
// Caller holds f.mu.
func (f *family) childLocked(vals []string) *child {
	key := strings.Join(vals, "\x1f")
	if c, ok := f.children[key]; ok {
		return c
	}
	c := &child{labelVals: append([]string(nil), vals...)}
	switch f.kind {
	case kindCounter:
		c.counter = &Counter{}
	case kindGauge:
		c.gauge = &Gauge{}
	case kindHistogram:
		c.hist = &Histogram{
			bounds: f.buckets,
			counts: make([]atomic.Uint64, len(f.buckets)+1),
		}
	}
	f.children[key] = c
	return c
}

func (f *family) with(vals []string) *child {
	if len(vals) != len(f.labels) {
		panic(fmt.Sprintf("obs: %s wants %d label values, got %d", f.name, len(f.labels), len(vals)))
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.childLocked(vals)
}

// Registry holds metric families and renders them as Prometheus text.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry. Most code uses the package
// Default registry via the package-level constructors.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// Default is the process-wide registry behind the package-level
// constructors and the daemon's /metrics endpoint.
var Default = NewRegistry()

var (
	nameRE  = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)*$`)
	labelRE = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)*$`)
)

// register creates one family, panicking on malformed or duplicate
// registration: instruments are package-level vars, so both are
// programming errors that should fail at init, not at scrape.
func (r *Registry) register(name, help string, k kind, buckets []float64, labels []string) *family {
	if !nameRE.MatchString(name) {
		panic("obs: metric name not snake_case: " + name)
	}
	for _, l := range labels {
		if !labelRE.MatchString(l) {
			panic("obs: label name not snake_case: " + l)
		}
	}
	if k == kindHistogram {
		if len(buckets) == 0 {
			panic("obs: histogram without buckets: " + name)
		}
		if !sort.Float64sAreSorted(buckets) {
			panic("obs: histogram buckets not sorted: " + name)
		}
	}
	f := &family{
		name: name, help: help, kind: k,
		labels:   append([]string(nil), labels...),
		buckets:  append([]float64(nil), buckets...),
		children: map[string]*child{},
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[name]; dup {
		panic("obs: duplicate metric registration: " + name)
	}
	r.families[name] = f
	return f
}

// NewCounter registers a label-free counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	return r.register(name, help, kindCounter, nil, nil).with(nil).counter
}

// NewGauge registers a label-free gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	return r.register(name, help, kindGauge, nil, nil).with(nil).gauge
}

// NewHistogram registers a label-free histogram over buckets.
func (r *Registry) NewHistogram(name, help string, buckets []float64) *Histogram {
	return r.register(name, help, kindHistogram, buckets, nil).with(nil).hist
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// With returns the counter for the given label values (created on
// first use). Hold the result rather than calling With per event.
func (v *CounterVec) With(values ...string) *Counter { return v.f.with(values).counter }

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.with(values).gauge }

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.with(values).hist }

// NewCounterVec registers a counter family with the given label names.
func (r *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.register(name, help, kindCounter, nil, labels)}
}

// NewGaugeVec registers a gauge family with the given label names.
func (r *Registry) NewGaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.register(name, help, kindGauge, nil, labels)}
}

// NewHistogramVec registers a histogram family with the given label names.
func (r *Registry) NewHistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{r.register(name, help, kindHistogram, buckets, labels)}
}

// Package-level constructors on the Default registry.

// NewCounter registers a label-free counter on Default.
func NewCounter(name, help string) *Counter { return Default.NewCounter(name, help) }

// NewGauge registers a label-free gauge on Default.
func NewGauge(name, help string) *Gauge { return Default.NewGauge(name, help) }

// NewHistogram registers a label-free histogram on Default.
func NewHistogram(name, help string, buckets []float64) *Histogram {
	return Default.NewHistogram(name, help, buckets)
}

// NewCounterVec registers a labeled counter family on Default.
func NewCounterVec(name, help string, labels ...string) *CounterVec {
	return Default.NewCounterVec(name, help, labels...)
}

// NewGaugeVec registers a labeled gauge family on Default.
func NewGaugeVec(name, help string, labels ...string) *GaugeVec {
	return Default.NewGaugeVec(name, help, labels...)
}

// NewHistogramVec registers a labeled histogram family on Default.
func NewHistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return Default.NewHistogramVec(name, help, buckets, labels...)
}

// WritePrometheus renders every family in the Prometheus text
// exposition format (version 0.0.4), deterministically ordered:
// families by name, children by label values.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	var b strings.Builder
	for _, f := range fams {
		f.write(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func (f *family) write(b *strings.Builder) {
	f.mu.Lock()
	kids := make([]*child, 0, len(f.children))
	for _, c := range f.children {
		kids = append(kids, c)
	}
	f.mu.Unlock()
	sort.Slice(kids, func(i, j int) bool {
		return strings.Join(kids[i].labelVals, "\x1f") < strings.Join(kids[j].labelVals, "\x1f")
	})
	fmt.Fprintf(b, "# HELP %s %s\n", f.name, f.help)
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.kind)
	for _, c := range kids {
		switch f.kind {
		case kindCounter:
			fmt.Fprintf(b, "%s%s %s\n", f.name, labelString(f.labels, c.labelVals, "", ""),
				strconv.FormatUint(c.counter.Value(), 10))
		case kindGauge:
			fmt.Fprintf(b, "%s%s %s\n", f.name, labelString(f.labels, c.labelVals, "", ""),
				strconv.FormatInt(c.gauge.Value(), 10))
		case kindHistogram:
			// Cumulative le buckets, then the implicit +Inf, _sum, _count.
			cum := uint64(0)
			for i, bound := range f.buckets {
				cum += c.hist.counts[i].Load()
				fmt.Fprintf(b, "%s_bucket%s %d\n", f.name,
					labelString(f.labels, c.labelVals, "le", formatFloat(bound)), cum)
			}
			cum += c.hist.counts[len(f.buckets)].Load()
			fmt.Fprintf(b, "%s_bucket%s %d\n", f.name,
				labelString(f.labels, c.labelVals, "le", "+Inf"), cum)
			fmt.Fprintf(b, "%s_sum%s %s\n", f.name,
				labelString(f.labels, c.labelVals, "", ""), formatFloat(c.hist.Sum()))
			fmt.Fprintf(b, "%s_count%s %d\n", f.name,
				labelString(f.labels, c.labelVals, "", ""), c.hist.Count())
		}
	}
}

// labelString renders {k1="v1",...}, optionally with one extra pair
// (the histogram "le" bound), or "" when there are no labels at all.
func labelString(names, vals []string, extraK, extraV string) string {
	if len(names) == 0 && extraK == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(vals[i]))
		b.WriteByte('"')
	}
	if extraK != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraK)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extraV))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func formatFloat(f float64) string {
	if math.IsInf(f, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// Handler returns an http.Handler serving the registry in the text
// exposition format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
