//go:build linux

package seccomp

import (
	"errors"
	"fmt"
	"runtime"
	"syscall"
	"unsafe"

	"repro/internal/bpf"
	"repro/internal/sysarch"
)

// Native install path. This is the "runc precedent": loading a cBPF program
// into the real kernel from Go. Two complications the paper's C
// implementation does not have:
//
//   - The Go runtime is multi-threaded before main() runs, and a plain
//     seccomp(2) call applies to the calling thread only. We pass
//     SECCOMP_FILTER_FLAG_TSYNC so the kernel atomically applies the filter
//     to every thread of the process, failing if any thread has a
//     conflicting filter.
//
//   - Installing an unprivileged filter requires no_new_privs (otherwise
//     the kernel demands CAP_SYS_ADMIN), so we set
//     prctl(PR_SET_NO_NEW_PRIVS) first, exactly as Charliecloud does.
//
// Installation is process-wide and irrevocable, so tests exercise it in a
// re-exec'd child (cmd/seccomp-probe), never in the test process itself.

const (
	prSetNoNewPrivs = 38 // PR_SET_NO_NEW_PRIVS

	seccompSetModeFilter = 1 // SECCOMP_SET_MODE_FILTER
	seccompFlagTSync     = 1 // SECCOMP_FILTER_FLAG_TSYNC
)

// sockFilter and sockFprog mirror the kernel ABI structs passed to
// seccomp(2).
type sockFilter struct {
	code uint16
	jt   uint8
	jf   uint8
	k    uint32
}

type sockFprog struct {
	len    uint16
	_      [6]byte // padding to pointer alignment on 64-bit
	filter *sockFilter
}

// ErrNotSupported is returned when the host cannot install native filters
// (non-Linux, or an architecture outside the supported table).
var ErrNotSupported = errors.New("seccomp: native install not supported on this host")

// HostArch maps the running Go architecture onto the paper's table.
func HostArch() (*sysarch.Arch, bool) {
	switch runtime.GOARCH {
	case "amd64":
		return sysarch.X8664, true
	case "386":
		return sysarch.I386, true
	case "arm":
		return sysarch.ARM, true
	case "arm64":
		return sysarch.ARM64, true
	case "ppc64le":
		return sysarch.PPC64LE, true
	case "s390x":
		return sysarch.S390X, true
	}
	return nil, false
}

// InstallNative loads the program into the running kernel for the calling
// process (all threads, via TSYNC), after setting no_new_privs. The filter
// must have been generated for the host architecture; loading an arm64
// filter on x86_64 would kill every syscall, so the mismatch is rejected
// here rather than discovered fatally.
func InstallNative(f *Filter) error {
	host, ok := HostArch()
	if !ok {
		return ErrNotSupported
	}
	// A nil filter arch means a multi-architecture program, which always
	// contains the host's section; a single-arch program must match.
	if a := f.Arch(); a != nil && a != host {
		return fmt.Errorf("seccomp: filter built for %s but host is %s", a, host)
	}
	prog := f.Program()
	if len(prog) == 0 || len(prog) > bpf.MaxInstructions {
		return fmt.Errorf("seccomp: program length %d out of range", len(prog))
	}

	prctlNR := host.MustNumber("prctl")
	if _, _, errno := syscall.Syscall6(uintptr(prctlNR), prSetNoNewPrivs, 1, 0, 0, 0, 0); errno != 0 {
		return fmt.Errorf("seccomp: prctl(PR_SET_NO_NEW_PRIVS): %w", errno)
	}

	raw := make([]sockFilter, len(prog))
	for i, ins := range prog {
		raw[i] = sockFilter{code: ins.Op, jt: ins.JT, jf: ins.JF, k: ins.K}
	}
	fprog := sockFprog{len: uint16(len(raw)), filter: &raw[0]}

	seccompNR, ok := host.Number("seccomp")
	if !ok {
		return ErrNotSupported
	}
	_, _, errno := syscall.Syscall(uintptr(seccompNR), seccompSetModeFilter,
		seccompFlagTSync, uintptr(unsafe.Pointer(&fprog)))
	runtime.KeepAlive(raw)
	if errno != 0 {
		return fmt.Errorf("seccomp: seccomp(SET_MODE_FILTER, TSYNC): %w", errno)
	}
	return nil
}

// NativeAvailable probes, without side effects, whether the kernel supports
// installing an unprivileged seccomp filter (seccomp(2) present and
// permitted). It calls seccomp(SECCOMP_GET_ACTION_AVAIL) which changes no
// process state.
func NativeAvailable() bool {
	host, ok := HostArch()
	if !ok {
		return false
	}
	nr, ok := host.Number("seccomp")
	if !ok {
		return false
	}
	const seccompGetActionAvail = 2
	action := RetAllow
	_, _, errno := syscall.Syscall(uintptr(nr), seccompGetActionAvail, 0,
		uintptr(unsafe.Pointer(&action)))
	return errno == 0
}
