// Package seccomp implements Linux seccomp filter mode (§4 of the paper) as
// a library: the seccomp_data ABI presented to BPF filters, the SECCOMP_RET_*
// disposition space with the kernel's multi-filter precedence rules, filter
// objects that pair a verified cBPF program with runtime statistics, and (on
// Linux) a native install path using prctl(2)/seccomp(2) with thread
// synchronisation.
//
// The package is substrate-neutral: the same Filter can be attached to the
// simulated kernel (internal/simos), where every simulated syscall is run
// through the cBPF interpreter, or loaded into the real kernel via
// InstallNative. Tests assert the two paths consume byte-identical programs.
package seccomp

import (
	"fmt"

	"repro/internal/bpf"
	"repro/internal/sysarch"
)

// Data mirrors struct seccomp_data, the only state a filter can see (§4):
// syscall number, architecture, instruction pointer, and the six raw
// argument words. BPF cannot dereference pointers, so pointer arguments are
// visible only as addresses — the root cause of the paper's "zero
// consistency" design point.
type Data struct {
	NR                 int32     // system call number (architecture-specific)
	Arch               uint32    // AUDIT_ARCH_* value
	InstructionPointer uint64    // caller's IP at syscall entry
	Args               [6]uint64 // raw syscall arguments
}

// Marshal serialises Data into the byte image the cBPF VM loads from.
//
// In the kernel, BPF_LD|BPF_W|BPF_ABS against seccomp_data is a
// native-endian 32-bit load at the given offset. Our VM performs big-endian
// loads (classic BPF packet semantics), so Marshal stores every 32-bit cell
// big-endian while placing the cells at the offsets the target ABI defines:
// on little-endian ABIs args[i] occupies {lo,hi} at 16+8i, on big-endian
// ABIs {hi,lo}. The result: a filter reading offset k observes exactly the
// value a kernel on that architecture would deliver.
// MarshalAuto resolves the layout architecture from d.Arch. Data carrying
// an unknown audit-arch value marshals with little-endian argument layout,
// which only matters to filters that inspect arguments — and a correct
// filter refuses unknown architectures before looking at arguments.
func (d *Data) MarshalAuto() []byte {
	arch, ok := sysarch.ByAuditArch(d.Arch)
	if !ok {
		arch = sysarch.X8664
	}
	return d.Marshal(arch)
}

func (d *Data) Marshal(arch *sysarch.Arch) []byte {
	buf := make([]byte, bpf.SeccompDataSize)
	put32 := func(off int, v uint32) {
		buf[off] = byte(v >> 24)
		buf[off+1] = byte(v >> 16)
		buf[off+2] = byte(v >> 8)
		buf[off+3] = byte(v)
	}
	put64 := func(off int, v uint64) {
		lo, hi := uint32(v), uint32(v>>32)
		if arch.BigEndian {
			put32(off, hi)
			put32(off+4, lo)
		} else {
			put32(off, lo)
			put32(off+4, hi)
		}
	}
	put32(0, uint32(d.NR))
	put32(4, d.Arch)
	put64(8, d.InstructionPointer)
	for i, a := range d.Args {
		put64(16+8*i, a)
	}
	return buf
}

// Offsets of seccomp_data fields, for filter generators.
const (
	OffNR   = 0
	OffArch = 4
	OffIP   = 8
)

// OffArgLo returns the offset of the low 32 bits of args[i] on the given
// architecture (endianness decides which half sits first).
func OffArgLo(arch *sysarch.Arch, i int) uint32 {
	off := uint32(16 + 8*i)
	if arch.BigEndian {
		return off + 4
	}
	return off
}

// OffArgHi returns the offset of the high 32 bits of args[i].
func OffArgHi(arch *sysarch.Arch, i int) uint32 {
	off := uint32(16 + 8*i)
	if arch.BigEndian {
		return off
	}
	return off + 4
}

// Filter return actions (include/uapi/linux/seccomp.h). The low 16 bits are
// action-specific data (the errno for RetErrno); the high bits select the
// action.
const (
	RetKillProcess uint32 = 0x80000000
	RetKillThread  uint32 = 0x00000000
	RetTrap        uint32 = 0x00030000
	RetErrnoBase   uint32 = 0x00050000
	RetUserNotif   uint32 = 0x7fc00000
	RetTrace       uint32 = 0x7ff00000
	RetLog         uint32 = 0x7ffc0000
	RetAllow       uint32 = 0x7fff0000

	RetActionFull uint32 = 0xffff0000 // SECCOMP_RET_ACTION_FULL mask
	RetDataMask   uint32 = 0x0000ffff
)

// RetErrno builds an ERRNO action carrying errno e. The paper's filter is
// almost entirely RetErrno(0): "do nothing and return success" — errno zero
// makes the faked syscall appear to have succeeded.
func RetErrno(e uint16) uint32 { return RetErrnoBase | uint32(e) }

// Action extracts the action bits of a filter return value.
func Action(ret uint32) uint32 { return ret & RetActionFull }

// ActionData extracts the 16 data bits (the errno, for ERRNO actions).
func ActionData(ret uint32) uint16 { return uint16(ret & RetDataMask) }

// precedence orders actions from strongest to weakest, per seccomp(2):
// KILL_PROCESS > KILL_THREAD > TRAP > ERRNO > USER_NOTIF > TRACE > LOG >
// ALLOW. When several filters are installed, every filter runs and the
// strongest result wins.
func precedence(action uint32) int {
	switch action {
	case RetKillProcess:
		return 0
	case RetKillThread:
		return 1
	case RetTrap:
		return 2
	case RetErrnoBase:
		return 3
	case RetUserNotif:
		return 4
	case RetTrace:
		return 5
	case RetLog:
		return 6
	case RetAllow:
		return 7
	default:
		// Unknown actions behave like KILL_PROCESS on modern kernels.
		return 0
	}
}

// Stronger reports whether return value a takes precedence over b.
func Stronger(a, b uint32) bool {
	return precedence(Action(a)) < precedence(Action(b))
}

// ActionName renders an action for traces and test failures.
func ActionName(ret uint32) string {
	switch Action(ret) {
	case RetKillProcess:
		return "KILL_PROCESS"
	case RetKillThread:
		return "KILL_THREAD"
	case RetTrap:
		return "TRAP"
	case RetErrnoBase:
		return fmt.Sprintf("ERRNO(%d)", ActionData(ret))
	case RetUserNotif:
		return "USER_NOTIF"
	case RetTrace:
		return fmt.Sprintf("TRACE(%d)", ActionData(ret))
	case RetLog:
		return "LOG"
	case RetAllow:
		return "ALLOW"
	}
	return fmt.Sprintf("UNKNOWN(%#x)", ret)
}
