//go:build linux

package seccomp_test

import (
	"fmt"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"unsafe"

	"repro/internal/core"
	"repro/internal/seccomp"
)

// Native-kernel tests (E6 on real hardware). Installing a seccomp filter
// is irrevocable for the process, so the test re-execs its own binary with
// SECCOMP_NATIVE_CHILD set; the child installs the paper's filter, probes
// the filtered syscalls, prints results, and exits. The parent asserts on
// the output. This is the same isolation trick cmd/seccomp-probe offers
// interactively.

const childEnv = "SECCOMP_NATIVE_CHILD"

func TestMain(m *testing.M) {
	if os.Getenv(childEnv) == "1" {
		os.Exit(nativeChild())
	}
	os.Exit(m.Run())
}

// nativeChild runs with the filter installed and reports probe results as
// "name=errno" lines.
func nativeChild() int {
	filter, err := core.NewFilter(core.Config{})
	if err != nil {
		fmt.Println("generate=error")
		return 1
	}
	if err := seccomp.InstallNative(filter); err != nil {
		fmt.Printf("install=failed %v\n", err)
		return 1
	}
	fmt.Println("install=ok")
	host, _ := seccomp.HostArch()

	probe := func(label, name string, args ...uintptr) {
		nr, ok := host.Number(name)
		if !ok {
			fmt.Printf("%s=absent\n", label)
			return
		}
		var a [6]uintptr
		copy(a[:], args)
		_, _, errno := syscall.Syscall6(uintptr(nr), a[0], a[1], a[2], a[3], a[4], a[5])
		fmt.Printf("%s=%d\n", label, int(errno))
	}
	path := append([]byte("/"), 0)
	pathPtr := uintptr(unsafe.Pointer(&path[0]))

	uidBefore := os.Getuid()
	probe("chown", "chown", pathPtr, 12345, 12345)
	probe("setuid", "setuid", 54321)
	probe("kexec", "kexec_load", 0, 0, 0, 0)
	// mknod for a char device in a non-writable location: the filter fakes
	// it *before* any filesystem work, so even /proc/x "succeeds".
	devPath := append([]byte("/proc/nonexistent-device"), 0)
	probe("mknod-chr", "mknod", uintptr(unsafe.Pointer(&devPath[0])), 0o20666, 0x0103)
	// Zero consistency: identity unchanged despite the "successful" setuid.
	fmt.Printf("uid-unchanged=%v\n", os.Getuid() == uidBefore)
	return 0
}

func reexec(t *testing.T) map[string]string {
	t.Helper()
	if !seccomp.NativeAvailable() {
		t.Skip("native seccomp unavailable on this host")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, "-test.run=XXX-none")
	cmd.Env = append(os.Environ(), childEnv+"=1")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("child failed: %v\n%s", err, out)
	}
	results := map[string]string{}
	for _, line := range strings.Split(string(out), "\n") {
		if k, v, ok := strings.Cut(strings.TrimSpace(line), "="); ok {
			results[k] = v
		}
	}
	return results
}

func TestNativeFilterFakesPrivilegedSyscalls(t *testing.T) {
	res := reexec(t)
	if res["install"] != "ok" {
		t.Fatalf("install: %v", res)
	}
	// Every filtered probe must report errno 0 — faked success on the
	// real kernel. arm64 lacks chown/mknod; "absent" is acceptable there.
	for _, probe := range []string{"chown", "setuid", "kexec", "mknod-chr"} {
		got := res[probe]
		if got != "0" && got != "absent" {
			t.Errorf("probe %s: errno %s, want 0", probe, got)
		}
	}
	if res["uid-unchanged"] != "true" {
		t.Errorf("setuid must not actually change the uid: %v", res)
	}
}

func TestNativeSameBytesAsSimulated(t *testing.T) {
	// The same-bytes principle: the program evaluated by the simulated
	// kernel is the one InstallNative loads. Both come from the same
	// generator, so equality of the two construction paths is the claim.
	a := core.MustNewFilter(core.Config{})
	bProg, err := core.Generate(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	aProg := a.Program()
	if len(aProg) != len(bProg) {
		t.Fatal("programs differ")
	}
	for i := range aProg {
		if aProg[i] != bProg[i] {
			t.Fatalf("instruction %d differs", i)
		}
	}
}
