//go:build !linux

package seccomp

import (
	"errors"

	"repro/internal/sysarch"
)

// ErrNotSupported is returned when the host cannot install native filters.
var ErrNotSupported = errors.New("seccomp: native install not supported on this host")

// HostArch reports no supported architecture off Linux; callers fall back
// to the simulated kernel, which runs everywhere.
func HostArch() (*sysarch.Arch, bool) { return nil, false }

// InstallNative always fails off Linux.
func InstallNative(*Filter) error { return ErrNotSupported }

// NativeAvailable reports false off Linux.
func NativeAvailable() bool { return false }
