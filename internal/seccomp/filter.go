package seccomp

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/bpf"
	"repro/internal/sysarch"
)

// Filter pairs a seccomp-verified cBPF program with the metadata and
// counters the rest of the system needs. Filters are immutable after New;
// the counters are internally synchronised so one Filter may serve many
// simulated processes, as one kernel filter serves many threads.
type Filter struct {
	name string
	arch *sysarch.Arch
	prog bpf.Program

	evals   atomic.Uint64 // total syscalls evaluated
	faked   atomic.Uint64 // evaluations returning ERRNO(0) — the fake-success path
	errnoed atomic.Uint64 // evaluations returning ERRNO(e>0)
	killed  atomic.Uint64 // evaluations returning a KILL_* action
}

// New verifies prog under the seccomp rules (the kernel refuses to load a
// program failing seccomp_check_filter) and wraps it. arch records the
// architecture the filter was generated for and may be nil for a
// multi-architecture program — the program itself re-checks
// seccomp_data.arch at runtime, as any competent filter must (§4: the arch
// "can vary even within a process"). Data marshalling follows the calling
// process's architecture, not the filter's.
func New(name string, arch *sysarch.Arch, prog bpf.Program) (*Filter, error) {
	if err := prog.ValidateSeccomp(); err != nil {
		return nil, fmt.Errorf("seccomp: filter %q rejected: %w", name, err)
	}
	cp := make(bpf.Program, len(prog))
	copy(cp, prog)
	return &Filter{name: name, arch: arch, prog: cp}, nil
}

// Name returns the diagnostic name given at construction.
func (f *Filter) Name() string { return f.name }

// Arch returns the architecture the filter was generated for.
func (f *Filter) Arch() *sysarch.Arch { return f.arch }

// Program returns a copy of the underlying program, for dumping and for the
// same-bytes tests.
func (f *Filter) Program() bpf.Program {
	cp := make(bpf.Program, len(f.prog))
	copy(cp, f.prog)
	return cp
}

// Len returns the instruction count, the paper's simplicity metric for
// comparing filter variants.
func (f *Filter) Len() int { return len(f.prog) }

// Evaluate runs the filter over one syscall and returns the raw
// disposition. It allocates no memory on the hot path beyond the marshalled
// data buffer supplied by the caller; use EvaluateData for a convenience
// wrapper.
func (f *Filter) Evaluate(vm *bpf.VM, data []byte) uint32 {
	ret, _ := vm.Run(f.prog, data) // validated programs cannot fail
	f.evals.Add(1)
	switch Action(ret) {
	case RetErrnoBase:
		if ActionData(ret) == 0 {
			f.faked.Add(1)
		} else {
			f.errnoed.Add(1)
		}
	case RetKillProcess, RetKillThread:
		f.killed.Add(1)
	}
	return ret
}

// EvaluateData marshals d per its own architecture and evaluates it.
func (f *Filter) EvaluateData(d *Data) uint32 {
	var vm bpf.VM
	return f.Evaluate(&vm, d.MarshalAuto())
}

// Stats is a snapshot of a filter's counters.
type Stats struct {
	Evaluations uint64 // syscalls run through the filter
	Faked       uint64 // ERRNO(0) fake-success dispositions
	Errnoed     uint64 // ERRNO(e>0) dispositions
	Killed      uint64 // KILL_* dispositions
}

// Stats returns a snapshot of the filter's counters.
func (f *Filter) Stats() Stats {
	return Stats{
		Evaluations: f.evals.Load(),
		Faked:       f.faked.Load(),
		Errnoed:     f.errnoed.Load(),
		Killed:      f.killed.Load(),
	}
}

// Chain is an ordered stack of filters on a process, newest last, with the
// kernel's semantics: a filter can never be removed, children inherit the
// whole chain, and every filter is evaluated on every syscall with the
// strongest action winning (seccomp(2) "if the filters permit prctl calls,
// then additional filters can be added; they are run in reverse order").
type Chain struct {
	mu      sync.RWMutex
	filters []*Filter
}

// Install appends a filter to the chain. Mirroring the kernel, there is no
// remove operation.
func (c *Chain) Install(f *Filter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.filters = append(c.filters, f)
}

// Len returns the number of installed filters.
func (c *Chain) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.filters)
}

// Empty reports whether no filter is installed (the fast path the paper's
// overhead discussion contrasts against).
func (c *Chain) Empty() bool { return c.Len() == 0 }

// Clone returns a child chain sharing the same immutable filters, the
// fork(2) inheritance rule that makes seccomp emulation bind "program
// children whether they like it or not" (§4).
func (c *Chain) Clone() *Chain {
	c.mu.RLock()
	defer c.mu.RUnlock()
	child := &Chain{filters: make([]*Filter, len(c.filters))}
	copy(child.filters, c.filters)
	return child
}

// Evaluate runs every installed filter over d and combines the results with
// kernel precedence. An empty chain allows everything.
func (c *Chain) Evaluate(d *Data) uint32 {
	ret, _ := c.EvaluateSteps(d)
	return ret
}

// EvaluateSteps is Evaluate plus the total BPF instruction count executed
// across the chain — the quantity the simulated kernel's cost model
// charges per syscall.
func (c *Chain) EvaluateSteps(d *Data) (uint32, int) {
	c.mu.RLock()
	filters := c.filters
	c.mu.RUnlock()
	if len(filters) == 0 {
		return RetAllow, 0
	}
	var vm bpf.VM
	data := d.MarshalAuto()
	result := RetAllow
	steps := 0
	// Newest-first, as the kernel walks the filter list; precedence makes
	// the order observable only through TRACE/USER_NOTIF data bits, which
	// take the first (newest) filter's value.
	for i := len(filters) - 1; i >= 0; i-- {
		ret := filters[i].Evaluate(&vm, data)
		steps += vm.Steps
		if Stronger(ret, result) {
			result = ret
		}
	}
	return result, steps
}

// Filters returns a snapshot of the installed filters, newest last.
func (c *Chain) Filters() []*Filter {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Filter, len(c.filters))
	copy(out, c.filters)
	return out
}
