package seccomp

import (
	"testing"
	"testing/quick"

	"repro/internal/bpf"
	"repro/internal/sysarch"
)

func TestDataMarshalLittleEndianLayout(t *testing.T) {
	d := Data{
		NR:                 0x01020304,
		Arch:               sysarch.AuditArchX8664,
		InstructionPointer: 0x1122334455667788,
	}
	d.Args[0] = 0xaabbccdd00112233
	buf := d.Marshal(sysarch.X8664)
	if len(buf) != bpf.SeccompDataSize {
		t.Fatalf("marshal size %d", len(buf))
	}
	// The VM loads big-endian words; field values must round-trip.
	load := func(off uint32) uint32 {
		p := bpf.Program{
			bpf.Stmt(bpf.ClassLD|bpf.SizeW|bpf.ModeABS, off),
			bpf.Stmt(bpf.ClassRET|bpf.RetA, 0),
		}
		v, err := p.Run(buf)
		if err != nil {
			t.Fatalf("vm: %v", err)
		}
		return v
	}
	if got := load(OffNR); got != 0x01020304 {
		t.Errorf("nr = %#x", got)
	}
	if got := load(OffArch); got != sysarch.AuditArchX8664 {
		t.Errorf("arch = %#x", got)
	}
	// Little-endian ABI: args[0] low half first.
	if got := load(OffArgLo(sysarch.X8664, 0)); got != 0x00112233 {
		t.Errorf("arg0 lo = %#x", got)
	}
	if got := load(OffArgHi(sysarch.X8664, 0)); got != 0xaabbccdd {
		t.Errorf("arg0 hi = %#x", got)
	}
}

func TestDataMarshalBigEndianLayout(t *testing.T) {
	var d Data
	d.Arch = sysarch.AuditArchS390X
	d.Args[2] = 0xaabbccdd00112233
	buf := d.MarshalAuto()
	load := func(off uint32) uint32 {
		p := bpf.Program{
			bpf.Stmt(bpf.ClassLD|bpf.SizeW|bpf.ModeABS, off),
			bpf.Stmt(bpf.ClassRET|bpf.RetA, 0),
		}
		v, _ := p.Run(buf)
		return v
	}
	// Big-endian ABI: high half sits at the lower offset.
	if got := load(16 + 8*2); got != 0xaabbccdd {
		t.Errorf("arg2 first word = %#x, want high half", got)
	}
	if got := load(OffArgLo(sysarch.S390X, 2)); got != 0x00112233 {
		t.Errorf("arg2 lo = %#x", got)
	}
	if got := load(OffArgHi(sysarch.S390X, 2)); got != 0xaabbccdd {
		t.Errorf("arg2 hi = %#x", got)
	}
}

func TestQuickMarshalArgsRecoverable(t *testing.T) {
	// Property: for every arch and argument index, the lo/hi words loaded
	// at OffArgLo/OffArgHi reassemble the original 64-bit argument.
	f := func(v uint64, idx uint8) bool {
		i := int(idx) % 6
		for _, arch := range sysarch.All() {
			var d Data
			d.Arch = arch.AuditArch
			d.Args[i] = v
			buf := d.MarshalAuto()
			loadw := func(off uint32) uint32 {
				p := bpf.Program{
					bpf.Stmt(bpf.ClassLD|bpf.SizeW|bpf.ModeABS, off),
					bpf.Stmt(bpf.ClassRET|bpf.RetA, 0),
				}
				w, _ := p.Run(buf)
				return w
			}
			lo := loadw(OffArgLo(arch, i))
			hi := loadw(OffArgHi(arch, i))
			if uint64(hi)<<32|uint64(lo) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRetErrno(t *testing.T) {
	r := RetErrno(13)
	if Action(r) != RetErrnoBase {
		t.Fatalf("action %#x", Action(r))
	}
	if ActionData(r) != 13 {
		t.Fatalf("data %d", ActionData(r))
	}
	if ActionName(r) != "ERRNO(13)" {
		t.Fatalf("name %s", ActionName(r))
	}
}

func TestPrecedenceOrdering(t *testing.T) {
	// seccomp(2): KILL_PROCESS > KILL_THREAD > TRAP > ERRNO > USER_NOTIF >
	// TRACE > LOG > ALLOW.
	order := []uint32{RetKillProcess, RetKillThread, RetTrap, RetErrno(1),
		RetUserNotif, RetTrace, RetLog, RetAllow}
	for i := 0; i < len(order); i++ {
		for j := i + 1; j < len(order); j++ {
			if !Stronger(order[i], order[j]) {
				t.Errorf("%s must be stronger than %s",
					ActionName(order[i]), ActionName(order[j]))
			}
			if Stronger(order[j], order[i]) {
				t.Errorf("%s must not be stronger than %s",
					ActionName(order[j]), ActionName(order[i]))
			}
		}
	}
}

func mustFilter(t *testing.T, name string, ret uint32) *Filter {
	t.Helper()
	p := bpf.Program{bpf.Stmt(bpf.ClassRET|bpf.RetK, ret)}
	f, err := New(name, nil, p)
	if err != nil {
		t.Fatalf("filter %s: %v", name, err)
	}
	return f
}

func TestNewRejectsInvalidProgram(t *testing.T) {
	if _, err := New("bad", nil, bpf.Program{bpf.Stmt(bpf.ClassRET|bpf.RetX, 0)}); err == nil {
		t.Fatal("RET|X program must be rejected")
	}
	if _, err := New("empty", nil, nil); err == nil {
		t.Fatal("empty program must be rejected")
	}
}

func TestChainEmptyAllows(t *testing.T) {
	var c Chain
	d := Data{NR: 1, Arch: sysarch.AuditArchX8664}
	if got := c.Evaluate(&d); got != RetAllow {
		t.Fatalf("empty chain returned %s", ActionName(got))
	}
	if !c.Empty() {
		t.Fatal("chain should report empty")
	}
}

func TestChainPrecedenceAcrossFilters(t *testing.T) {
	var c Chain
	c.Install(mustFilter(t, "allow", RetAllow))
	c.Install(mustFilter(t, "errno", RetErrno(1)))
	c.Install(mustFilter(t, "log", RetLog))
	d := Data{NR: 42, Arch: sysarch.AuditArchX8664}
	if got := c.Evaluate(&d); Action(got) != RetErrnoBase {
		t.Fatalf("chain returned %s, want ERRNO", ActionName(got))
	}
	c.Install(mustFilter(t, "kill", RetKillProcess))
	if got := c.Evaluate(&d); got != RetKillProcess {
		t.Fatalf("chain returned %s, want KILL_PROCESS", ActionName(got))
	}
}

func TestChainCloneInheritsAndIsIndependent(t *testing.T) {
	var parent Chain
	parent.Install(mustFilter(t, "errno", RetErrno(5)))
	child := parent.Clone()
	if child.Len() != 1 {
		t.Fatalf("child chain has %d filters", child.Len())
	}
	// New filters on the child must not appear on the parent — but a
	// child can never shed the inherited ones (§4: the filter "binds
	// program children whether they like it or not").
	child.Install(mustFilter(t, "kill", RetKillProcess))
	if parent.Len() != 1 {
		t.Fatal("parent chain mutated by child install")
	}
	d := Data{NR: 7, Arch: sysarch.AuditArchX8664}
	if got := child.Evaluate(&d); got != RetKillProcess {
		t.Fatalf("child = %s", ActionName(got))
	}
	if got := parent.Evaluate(&d); Action(got) != RetErrnoBase {
		t.Fatalf("parent = %s", ActionName(got))
	}
}

func TestFilterStats(t *testing.T) {
	f := mustFilter(t, "fake", RetErrno(0))
	d := Data{NR: 92, Arch: sysarch.AuditArchX8664}
	for i := 0; i < 5; i++ {
		f.EvaluateData(&d)
	}
	s := f.Stats()
	if s.Evaluations != 5 || s.Faked != 5 || s.Errnoed != 0 || s.Killed != 0 {
		t.Fatalf("stats %+v", s)
	}
	g := mustFilter(t, "eperm", RetErrno(1))
	g.EvaluateData(&d)
	if s := g.Stats(); s.Errnoed != 1 || s.Faked != 0 {
		t.Fatalf("stats %+v", s)
	}
	k := mustFilter(t, "kill", RetKillThread)
	k.EvaluateData(&d)
	if s := k.Stats(); s.Killed != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestFilterProgramIsCopied(t *testing.T) {
	p := bpf.Program{bpf.Stmt(bpf.ClassRET|bpf.RetK, RetAllow)}
	f, err := New("copy", nil, p)
	if err != nil {
		t.Fatal(err)
	}
	p[0].K = 0 // mutate caller's slice
	if got := f.Program()[0].K; got != RetAllow {
		t.Fatal("filter must copy the program at construction")
	}
	q := f.Program()
	q[0].K = 0 // mutate returned copy
	if got := f.Program()[0].K; got != RetAllow {
		t.Fatal("Program() must return a copy")
	}
}

func TestActionNames(t *testing.T) {
	cases := map[uint32]string{
		RetAllow:       "ALLOW",
		RetKillProcess: "KILL_PROCESS",
		RetKillThread:  "KILL_THREAD",
		RetTrap:        "TRAP",
		RetLog:         "LOG",
		RetUserNotif:   "USER_NOTIF",
	}
	for v, want := range cases {
		if got := ActionName(v); got != want {
			t.Errorf("ActionName(%#x) = %s, want %s", v, got, want)
		}
	}
}
