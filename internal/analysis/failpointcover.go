package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// FailpointCover checks the fault-injection seam (PR 7). The soak's
// headline invariant — a store faulted at every failpoint reopens with
// zero damage — is only as strong as failpoint coverage, so:
//
//  1. inside methods of a type that has failpoints (a `failpoint`
//     method — cas.Dir), the real mutating I/O calls (os.WriteFile,
//     os.Rename, os.ReadFile, (*os.File).WriteString) must share a
//     function body with a failpoint consultation, so a new I/O path
//     cannot silently bypass injection. Open-time validation and
//     damage-quarantine paths are annotated exceptions: they run
//     before/outside the build path the soak drives.
//  2. every Op constant declared in the package appears in the AllOps
//     list (harnesses that "fault everything" must really fault
//     everything), and every Op fires at at least one failpoint call
//     site — a declared-but-never-consulted failpoint is dead
//     coverage the soak silently loses.
//  3. failpoint arguments are named Op constants, never ad-hoc
//     strings, so coverage is enumerable.
var FailpointCover = &Analyzer{
	Name:    "failpointcover",
	Doc:     "real I/O in failpointed types stays behind d.failpoint(op); every Op is listed in AllOps and fired somewhere",
	Targets: []string{"repro/internal/cas"},
}

func init() { FailpointCover.Run = runFailpointCover }

// failpointIO lists the raw I/O operations that must not appear in a
// failpointed type's methods without a failpoint consultation in the
// same function.
var failpointIO = map[string]string{
	"os.WriteFile": "blob/journal bytes hitting disk",
	"os.Rename":    "publishing a blob or journal rewrite",
	"os.ReadFile":  "reading blob/journal bytes back",
	"WriteString":  "appending to the journal", // method on *os.File
}

func runFailpointCover(prog *Program) []Finding {
	var out []Finding
	for _, pkg := range FailpointCover.scoped(prog) {
		// Which named types have a failpoint method?
		failpointed := map[string]bool{}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Name.Name != "failpoint" {
					continue
				}
				if named, _ := recvStruct(pkg, fd); named != nil {
					failpointed[named.Obj().Name()] = true
				}
			}
		}

		// Op constants, AllOps membership, and failpoint call arguments.
		opConsts := map[string]ast.Expr{} // name → declaring value expr (for position)
		var opType types.Type
		if obj := pkg.Types.Scope().Lookup("Op"); obj != nil {
			opType = obj.Type()
		}
		inAllOps := map[string]bool{}
		fired := map[string]bool{}

		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						vs, ok := spec.(*ast.ValueSpec)
						if !ok {
							continue
						}
						for _, name := range vs.Names {
							obj := pkg.Info.Defs[name]
							if obj == nil || opType == nil || !types.Identical(obj.Type(), opType) {
								continue
							}
							if _, isConst := obj.(*types.Const); isConst {
								opConsts[name.Name] = name
							}
						}
						// AllOps is []Op, not Op, so it misses the loop above.
						for i, name := range vs.Names {
							if name.Name != "AllOps" || i >= len(vs.Values) {
								continue
							}
							if cl, ok := vs.Values[i].(*ast.CompositeLit); ok {
								for _, elt := range cl.Elts {
									if id, ok := elt.(*ast.Ident); ok {
										inAllOps[id.Name] = true
									}
								}
							}
						}
					}
				case *ast.FuncDecl:
					if d.Body == nil {
						continue
					}
					out = append(out, checkIOBehindFailpoints(prog, pkg, d, failpointed)...)
					collectFired(prog, pkg, d, opType, fired, &out)
				}
			}
		}

		for name, at := range opConsts {
			pos := prog.Fset.Position(at.Pos())
			if !inAllOps[name] {
				out = append(out, Finding{FailpointCover.Name, pos,
					fmt.Sprintf("failpoint %s is not listed in AllOps; fault-everything harnesses will never fire it", name)})
			}
			if !fired[name] {
				out = append(out, Finding{FailpointCover.Name, pos,
					fmt.Sprintf("failpoint %s is declared but no failpoint(%s) call site fires it", name, name)})
			}
		}
	}
	return out
}

// checkIOBehindFailpoints enforces rule 1 on one method.
func checkIOBehindFailpoints(prog *Program, pkg *Package, fd *ast.FuncDecl, failpointed map[string]bool) []Finding {
	named, _ := recvStruct(pkg, fd)
	if named == nil || !failpointed[named.Obj().Name()] {
		return nil
	}
	recv := recvName(fd)
	hasFailpoint := recv != "" && funcBodyCalls(fd.Body, recv+".failpoint")
	if hasFailpoint {
		return nil
	}
	var out []Finding
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		var key string
		if id, ok := sel.X.(*ast.Ident); ok && id.Name == "os" {
			if obj, ok := pkg.Info.Uses[sel.Sel].(*types.Func); ok && obj.Pkg() != nil && obj.Pkg().Path() == "os" {
				key = "os." + sel.Sel.Name
			}
		}
		if key == "" && sel.Sel.Name == "WriteString" && isOSFile(pkg.Info.Types[sel.X].Type) {
			key = "WriteString"
		}
		what, tracked := failpointIO[key]
		if !tracked {
			return true
		}
		out = append(out, Finding{FailpointCover.Name, prog.Fset.Position(call.Pos()),
			fmt.Sprintf("(%s).%s performs %s (%s) with no %s.failpoint(op) in the function; faults cannot be injected on this path",
				named.Obj().Name(), fd.Name.Name, key, what, recv)})
		return true
	})
	return out
}

// collectFired records which Op constants appear as failpoint call
// arguments (rule 2's "fires somewhere") and flags non-constant
// arguments (rule 3).
func collectFired(prog *Program, pkg *Package, fd *ast.FuncDecl, opType types.Type, fired map[string]bool, out *[]Finding) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name, ok := renderChain(call.Fun)
		if !ok || !strings.HasSuffix(name, ".failpoint") || len(call.Args) != 1 {
			return true
		}
		if id, ok := call.Args[0].(*ast.Ident); ok {
			if obj := pkg.Info.Uses[id]; obj != nil {
				if _, isConst := obj.(*types.Const); isConst && opType != nil && types.Identical(obj.Type(), opType) {
					fired[id.Name] = true
					return true
				}
			}
		}
		*out = append(*out, Finding{FailpointCover.Name, prog.Fset.Position(call.Args[0].Pos()),
			"failpoint argument must be a named Op constant so coverage stays enumerable"})
		return true
	})
}

// isOSFile reports whether t is *os.File.
func isOSFile(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "File" && obj.Pkg() != nil && obj.Pkg().Path() == "os"
}
