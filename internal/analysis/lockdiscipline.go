package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// LockDiscipline checks the mutex conventions the concurrent engine
// state relies on (PRs 3-6):
//
//  1. Struct fields declared AFTER a sync.Mutex/RWMutex field (up to
//     the next mutex field) are guarded by it — the standard "mu
//     protects the fields below" layout cas.Dir, image.Store and
//     build.Cache all follow. A method that touches a guarded field
//     must lock that mutex somewhere in its body, or declare itself a
//     helper whose CALLER holds the lock by carrying the "Locked" name
//     suffix (applyLocked, gcFullLocked, ...).
//  2. A function that attempts the nonblocking flock exclusive
//     conversion (flockExclusiveNB) must also re-acquire the shared
//     lock on its failure paths: the kernel converts by
//     unlock-then-lock, so after a failed conversion the handle may
//     hold NOTHING, and returning without re-sharing would let a
//     concurrent GC rewrite the journal under a live handle — the
//     exact corruption PR 6's store lock exists to prevent.
var LockDiscipline = &Analyzer{
	Name: "lockdiscipline",
	Doc:  "methods touching mutex-guarded fields hold the guard (or are *Locked helpers); failed flock conversions re-share",
	Targets: []string{
		"repro/internal/cas",
		"repro/internal/build",
		"repro/internal/image",
		"repro/internal/daemon",
		"repro/internal/obs",
	},
}

func init() { LockDiscipline.Run = runLockDiscipline }

func runLockDiscipline(prog *Program) []Finding {
	var out []Finding
	for _, pkg := range LockDiscipline.scoped(prog) {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				out = append(out, checkGuardedAccess(prog, pkg, fd)...)
				out = append(out, checkReshare(prog, fd)...)
			}
		}
	}
	return out
}

// mutexRegions maps each guarded field name of st to the name of the
// mutex field that guards it: every field after a sync.Mutex/RWMutex
// belongs to that mutex until the next one starts a new region.
func mutexRegions(st *types.Struct) map[string]string {
	regions := map[string]string{}
	guard := ""
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if isMutexType(f.Type()) {
			guard = f.Name()
			continue
		}
		if guard != "" {
			regions[f.Name()] = guard
		}
	}
	return regions
}

func isMutexType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// checkGuardedAccess enforces rule 1 on one method.
func checkGuardedAccess(prog *Program, pkg *Package, fd *ast.FuncDecl) []Finding {
	named, st := recvStruct(pkg, fd)
	if named == nil {
		return nil
	}
	regions := mutexRegions(st)
	if len(regions) == 0 {
		return nil
	}
	recv := recvName(fd)
	if recv == "" || recv == "_" {
		return nil
	}
	if len(fd.Name.Name) > len("Locked") && fd.Name.Name[len(fd.Name.Name)-len("Locked"):] == "Locked" {
		return nil // caller-holds-the-lock helper, by naming convention
	}
	recvObj := pkg.Info.Defs[fd.Recv.List[0].Names[0]]

	// One finding per (method, guard): the first offending access.
	var out []Finding
	flagged := map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || pkg.Info.Uses[id] != recvObj {
			return true
		}
		guard, guarded := regions[sel.Sel.Name]
		if !guarded || flagged[guard] {
			return true
		}
		// Is the selector actually the struct field (not a method)?
		if s, ok := pkg.Info.Selections[sel]; !ok || s.Kind() != types.FieldVal {
			return true
		}
		lock := recv + "." + guard + ".Lock"
		rlock := recv + "." + guard + ".RLock"
		if funcBodyCalls(fd.Body, lock, rlock) {
			flagged[guard] = true // holds the guard; nothing more to check for it
			return true
		}
		flagged[guard] = true
		out = append(out, Finding{LockDiscipline.Name, prog.Fset.Position(sel.Pos()),
			fmt.Sprintf("(%s).%s touches %s.%s, guarded by %s.%s, without locking it; lock, or rename the helper with a Locked suffix",
				named.Obj().Name(), fd.Name.Name, recv, sel.Sel.Name, recv, guard)})
		return true
	})
	return out
}

// checkReshare enforces rule 2 on one function.
func checkReshare(prog *Program, fd *ast.FuncDecl) []Finding {
	if fd.Body == nil {
		return nil
	}
	callsConvert := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, ok := renderChain(call.Fun); ok && name == "flockExclusiveNB" {
			callsConvert = true
		}
		return true
	})
	if !callsConvert {
		return nil
	}
	// Any re-sharing call in the body satisfies the rule: the flow-
	// sensitive "on every failure path" property is the tests' job;
	// the lint catches the forgot-it-entirely regression.
	reshares := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name, ok := renderChain(call.Fun)
		if !ok {
			return true
		}
		base := name
		if i := lastDot(name); i >= 0 {
			base = name[i+1:]
		}
		if base == "reshare" || base == "shared" || base == "flockShared" {
			reshares = true
		}
		return true
	})
	if reshares {
		return nil
	}
	return []Finding{{LockDiscipline.Name, prog.Fset.Position(fd.Pos()),
		fmt.Sprintf("%s converts the flock to exclusive but never re-acquires shared; a failed conversion drops the lock entirely (kernel converts by unlock-then-lock)",
			fd.Name.Name)}}
}

func lastDot(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '.' {
			return i
		}
	}
	return -1
}
