package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DetClock checks cache-key determinism (PR 5's contract): a content
// key computed twice for the same inputs must be byte-identical across
// processes and days, so nothing reachable from key/digest computation
// may read the wall clock or a random source.
//
// Roots are marked in source with a `//chlint:keyroot` line in the
// function's doc comment (cas.Sum, image digests, build chain keys).
// The analyzer walks the static call graph from every root through the
// module's own functions and flags any reference — call or value use,
// so `clock: time.Now` is caught too — to time.Now / time.Since /
// time.Until or anything in math/rand (and math/rand/v2).
//
// The graph is a static over-approximation: calls through interfaces
// or function values stop the walk at the boundary. That is the right
// bias for this invariant — key computation is deliberately concrete,
// and a conservative miss is recoverable in review while a
// nondeterministic key silently poisons every cache hit after it.
var DetClock = &Analyzer{
	Name:    "detclock",
	Doc:     "no time.Now/math/rand reachable from //chlint:keyroot cache-key computations",
	Targets: []string{"repro"},
}

func init() { DetClock.Run = runDetClock }

// KeyrootMarker marks a function as a determinism root.
const KeyrootMarker = "//chlint:keyroot"

// bannedUse is one reference to a nondeterminism source.
type bannedUse struct {
	pos  token.Position
	what string // "time.Now", "math/rand.Intn", ...
}

// dcNode is one function in detclock's call graph.
type dcNode struct {
	fn     *types.Func
	name   string // rendered, for messages
	edges  []*types.Func
	banned []bannedUse
	root   bool
}

func runDetClock(prog *Program) []Finding {
	nodes := map[*types.Func]*dcNode{}

	for _, pkg := range DetClock.scoped(prog) {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				nd := &dcNode{fn: fn, name: qualifiedFunc(fn)}
				if fd.Doc != nil {
					for _, c := range fd.Doc.List {
						if strings.HasPrefix(c.Text, KeyrootMarker) {
							nd.root = true
						}
					}
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					id, ok := n.(*ast.Ident)
					if !ok {
						return true
					}
					obj := pkg.Info.Uses[id]
					if obj == nil || obj.Pkg() == nil {
						return true
					}
					path := obj.Pkg().Path()
					switch {
					case path == "time" && (id.Name == "Now" || id.Name == "Since" || id.Name == "Until"):
						nd.banned = append(nd.banned, bannedUse{prog.Fset.Position(id.Pos()), "time." + id.Name})
					case path == "math/rand" || path == "math/rand/v2":
						nd.banned = append(nd.banned, bannedUse{prog.Fset.Position(id.Pos()), path + "." + id.Name})
					}
					if callee, ok := obj.(*types.Func); ok {
						nd.edges = append(nd.edges, callee)
					}
					return true
				})
				nodes[fn] = nd
			}
		}
	}

	// BFS from each root; first root to reach a banned use claims it so
	// one nondeterministic call is one finding, not one per root.
	var out []Finding
	claimed := map[token.Position]bool{}
	for _, start := range nodes {
		if !start.root {
			continue
		}
		seen := map[*types.Func]bool{start.fn: true}
		// parent links let the finding show how the root reaches the sink.
		parent := map[*types.Func]*types.Func{}
		queue := []*dcNode{start}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, b := range cur.banned {
				if claimed[b.pos] {
					continue
				}
				claimed[b.pos] = true
				out = append(out, Finding{DetClock.Name, b.pos,
					fmt.Sprintf("%s is reachable from cache-key root %s (via %s); keys must be deterministic",
						b.what, start.name, renderPath(nodes, parent, start.fn, cur.fn))})
			}
			for _, callee := range cur.edges {
				next, ok := nodes[callee]
				if !ok || seen[callee] {
					continue
				}
				seen[callee] = true
				parent[callee] = cur.fn
				queue = append(queue, next)
			}
		}
	}
	return out
}

// renderPath renders root → ... → sink through the BFS parent links.
func renderPath(nodes map[*types.Func]*dcNode, parent map[*types.Func]*types.Func, root, sink *types.Func) string {
	var rev []string
	for cur := sink; cur != root; cur = parent[cur] {
		rev = append(rev, nodes[cur].name)
		if _, ok := parent[cur]; !ok {
			break
		}
	}
	rev = append(rev, nodes[root].name)
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return strings.Join(rev, " -> ")
}
