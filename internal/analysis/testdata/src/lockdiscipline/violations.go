// Package lockdiscipline is the golden corpus for the lockdiscipline
// analyzer.
package lockdiscipline

import "sync"

// Store follows the "mu protects the fields below" layout the analyzer
// recognises.
type Store struct {
	name string // before mu: unguarded

	mu      sync.Mutex
	entries map[string]int
	dirty   bool
}

// Bad touches a guarded field without holding mu: flagged.
func (s *Store) Bad(k string) int {
	return s.entries[k] // want "without locking"
}

// flock stubs so the reshare rule has something to look at.
func flockExclusiveNB() error { return nil }
func flockShared() error      { return nil }

// convertNoReshare upgrades the flock but never re-shares: flagged.
func convertNoReshare() error { // want "never re-acquires shared"
	return flockExclusiveNB()
}
