package lockdiscipline

// Good locks mu before touching guarded state: clean.
func (s *Store) Good(k string, v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entries[k] = v
	s.dirty = true
}

// Name reads an unguarded (above-mu) field: clean.
func (s *Store) Name() string { return s.name }

// resetLocked is a caller-holds-the-lock helper by naming convention:
// clean.
func (s *Store) resetLocked() {
	s.entries = map[string]int{}
	s.dirty = false
}

// convertWithReshare re-acquires the shared lock after a failed
// conversion: clean.
func convertWithReshare() error {
	if err := flockExclusiveNB(); err != nil {
		return flockShared()
	}
	return nil
}
