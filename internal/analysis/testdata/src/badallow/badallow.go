// Package badallow exercises the driver's directive diagnostics: a
// suppression that cannot work must be a finding, never silence.
package badallow

//chlint:allow

//chlint:allow nosuchanalyzer -- reason present but analyzer unknown

//chlint:allow ctxfirst

var X = 1
