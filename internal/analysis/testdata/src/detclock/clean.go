package detclock

import (
	"crypto/sha256"
	"encoding/hex"
	"time"
)

// CleanKey hashes only its inputs: clean.
//
//chlint:keyroot
func CleanKey(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// Elapsed reads the clock OUTSIDE any key computation, which is fine —
// only reachability from a keyroot is banned.
func Elapsed(start time.Time) time.Duration {
	return time.Since(start)
}
