// Package detclock is the golden corpus for the detclock analyzer.
package detclock

import (
	"crypto/sha256"
	"encoding/hex"
	"time"
)

// Key is a cache-key root whose helper reaches the wall clock — the
// nondeterminism is two hops away, which is exactly what the call-graph
// walk exists to catch.
//
//chlint:keyroot
func Key(data []byte) string {
	return hex.EncodeToString(stamp(data))
}

func stamp(data []byte) []byte {
	h := sha256.New()
	h.Write(data)
	h.Write([]byte(time.Now().String())) // want "time.Now is reachable"
	return h.Sum(nil)
}
