package failpointcover

import "os"

// Good consults the failpoint in the same function as the real write:
// clean, and fires OpWrite so the wired-coverage rule is satisfied.
func (d *Dir) Good(p string, b []byte) error {
	if err := d.failpoint(OpWrite); err != nil {
		return err
	}
	return os.WriteFile(p, b, 0o644)
}

// Helper does no tracked I/O at all: clean without a failpoint.
func (d *Dir) Helper() string { return d.root }
