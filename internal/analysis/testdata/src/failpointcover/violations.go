// Package failpointcover is the golden corpus for the failpointcover
// analyzer.
package failpointcover

import "os"

// Op names one injectable failure site, like cas.Op.
type Op string

const (
	// OpWrite is fully wired: listed in AllOps, fired in Good.
	OpWrite Op = "write"

	// OpOrphan is declared but neither listed nor fired: flagged twice.
	OpOrphan Op = "orphan" // want "not listed in AllOps" "declared but no failpoint"
)

// AllOps deliberately omits OpOrphan.
var AllOps = []Op{OpWrite}

// Dir is a failpointed type: it has a failpoint method.
type Dir struct{ root string }

func (d *Dir) failpoint(op Op) error { return nil }

// Bad performs real I/O with no failpoint consultation: flagged.
func (d *Dir) Bad(p string, b []byte) error {
	return os.WriteFile(p, b, 0o644) // want "no d.failpoint"
}

// BadArg fires a failpoint with an ad-hoc literal: flagged.
func (d *Dir) BadArg() error {
	return d.failpoint("ad-hoc") // want "named Op constant"
}
