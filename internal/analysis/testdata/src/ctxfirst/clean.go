package ctxfirst

import "context"

// StoreBlob is context-first: clean.
func StoreBlob(ctx context.Context, digest string, data []byte) error {
	<-ctx.Done()
	return nil
}

// Store is StoreBlob's context-free compat wrapper; the annotation
// names it the exception, so it is clean.
func Store(digest string, data []byte) error {
	//chlint:allow ctxfirst -- context-free compat wrapper retained for callers predating the context plumbing
	return StoreBlob(context.Background(), digest, data)
}
