// Package ctxfirst is the golden corpus for the ctxfirst analyzer:
// every tagged line must produce a finding matching the quoted
// pattern, and no other findings may appear (see golden_test.go).
package ctxfirst

import "context"

// FetchBlob takes its context second: flagged.
func FetchBlob(digest string, ctx context.Context) error { // want "parameter 2"
	<-ctx.Done()
	return nil
}

// Detached manufactures a context mid-stack: flagged.
func Detached() error {
	ctx := context.Background() // want "context.Background"
	return FetchBlob("d", ctx)
}

// Todo is the same violation via TODO.
func Todo() error {
	return FetchBlob("d", context.TODO()) // want "context.TODO"
}
