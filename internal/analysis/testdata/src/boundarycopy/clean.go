package boundarycopy

// PutAppend stores the canonical append-copy: clean.
func (c *Cache) PutAppend(k string, v []byte) {
	c.blobs[k] = append([]byte(nil), v...)
}

// PutMakeCopy uses the two-statement make+copy idiom: clean.
func (c *Cache) PutMakeCopy(k string, v []byte) {
	buf := make([]byte, len(v))
	copy(buf, v)
	c.blobs[k] = buf
}

// GetCopy returns a fresh copy: clean.
func (c *Cache) GetCopy(k string) []byte {
	return append([]byte(nil), c.blobs[k]...)
}

// view is unexported; intentional in-package aliasing (like
// image.blobView) stays inside the boundary: clean.
func (c *Cache) view(k string) []byte {
	return c.blobs[k]
}
