// Package boundarycopy is the golden corpus for the boundarycopy
// analyzer.
package boundarycopy

// Cache shares byte slices through a receiver map — the boundary the
// analyzer guards.
type Cache struct {
	blobs map[string][]byte
}

// Put stores the caller's slice without copying: flagged.
func (c *Cache) Put(k string, v []byte) {
	c.blobs[k] = v // want "aliases the caller's buffer"
}

// Get hands the cached slice out aliased from an exported method:
// flagged.
func (c *Cache) Get(k string) []byte {
	return c.blobs[k] // want "mutate the cached bytes"
}
