package errcompare

import (
	"errors"
	"fmt"
	"io"
)

// ClassifyWrapped matches through wrapping with errors.Is: clean.
func ClassifyWrapped(err error) string {
	if err == nil { // nil comparison is fine
		return "ok"
	}
	if errors.Is(err, ErrBusy) {
		return "busy"
	}
	if !errors.Is(err, io.EOF) {
		return "other"
	}
	return "eof"
}

// DeadlineWrapped wraps its cause with %w: clean.
func DeadlineWrapped(step string, cause error) error {
	return fmt.Errorf("step %s: deadline exceeded: %w", step, cause)
}
