// Package errcompare is the golden corpus for the errcompare analyzer.
package errcompare

import (
	"errors"
	"fmt"
	"io"
)

// ErrBusy is a local sentinel, like cas.ErrBusy.
var ErrBusy = errors.New("busy")

// Classify compares sentinels with == and !=: flagged at both sites.
func Classify(err error) string {
	if err == ErrBusy { // want "sentinel ErrBusy"
		return "busy"
	}
	if err != io.EOF { // want "sentinel io.EOF"
		return "other"
	}
	return "eof"
}

// Deadline reports a deadline without wrapping a cause: flagged.
func Deadline(step string) error {
	return fmt.Errorf("step %s: deadline exceeded", step) // want "does not wrap its cause"
}
