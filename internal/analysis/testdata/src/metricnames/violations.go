// Package metricnames seeds every rule the analyzer enforces: name
// constancy, snake_case, unit suffixes, the label-name allowlist, and
// request data flowing into label values.
package metricnames

import (
	"strconv"

	"repro/internal/obs"
)

// request stands in for wire data: anything read off it is unbounded.
type request struct {
	Tag   string
	Codes map[string]string
}

func dynamicName(n int) string { return "metric_" + strconv.Itoa(n) }

var (
	vComputed = obs.NewCounter(dynamicName(1), "computed name")                // want "must be a compile-time string constant"
	vCamel    = obs.NewCounter("chBadName_total", "camelCase segment")        // want "not snake_case"
	vNoTotal  = obs.NewCounter("ch_requests", "counter without suffix")       // want `counter "ch_requests" must end in _total`
	vNoUnit   = obs.NewHistogram("ch_latency", "unitless histogram", nil)     // want `histogram "ch_latency" must end in a unit suffix`
	vGaugeTot = obs.NewGauge("ch_workers_total", "gauge posing as counter")   // want `gauge "ch_workers_total" must not end in _total`
	vBadLabel = obs.NewCounterVec("ch_x_total", "off-list label", "tenant")   // want `label "tenant" is not in the fixed allowlist`
	vDynLabel = obs.NewGaugeVec("ch_y", "computed label", dynamicName(2))     // want "label names must be compile-time string constants"
	vVecHist  = obs.NewHistogramVec("ch_z_seconds", "ok name", nil, "shard")  // want `label "shard" is not in the fixed allowlist`
	okVec     = obs.NewCounterVec("ch_ok_total", "for With checks", "status") // fixed-set label, fine
)

func recordRequest(req *request) {
	okVec.With(req.Tag).Inc()            // want "struct field may carry request data"
	okVec.With(req.Codes["status"]).Inc() // want "map or slice may carry request data"
}
