package metricnames

import "repro/internal/obs"

// The blessed idioms: constant snake_case names with unit suffixes,
// allowlisted label names, and label values that are literals, named
// constants, plain locals or call results — the spellings of fixed
// value sets.

const outcomeOK = "succeeded"

var (
	cBuilds = obs.NewCounterVec("ch_ok_builds_total",
		"Builds finished, by outcome.", "outcome")
	cDone    = cBuilds.With("failed")
	cLatency = obs.NewHistogramVec("ch_ok_request_seconds",
		"Request latency.", obs.DefBuckets, "route", "code")
	cBytes = obs.NewHistogram("ch_ok_blob_bytes",
		"Blob sizes.", nil)
	cDepth = obs.NewGauge("ch_ok_queue_depth",
		"Queued work right now.")
	cStates = obs.NewGaugeVec("ch_ok_operations",
		"Operations by state.", "state")
)

func classify(failed bool) string {
	if failed {
		return "failed"
	}
	return outcomeOK
}

func recordClean(failed bool, route string) {
	cBuilds.With(outcomeOK).Inc()        // named constant
	cBuilds.With(classify(failed)).Inc() // call result: a normaliser owns the value set
	outcome := outcomeOK
	cBuilds.With(outcome).Inc() // plain local bound from a fixed set
	cLatency.With(route, "200").Observe(0.1)
	cDone.Inc()
	cDepth.Set(3)
	for _, s := range []string{"queued", "running"} {
		cStates.With(s).Set(0)
	}
	_ = cBytes
}
