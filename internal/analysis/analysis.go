// Package analysis is chlint's engine: a small static-analysis driver
// (go/parser + go/types, no dependencies outside the standard library)
// plus the project-specific analyzers that machine-check the engine's
// safety contracts — the invariants the paper's correctness argument
// rests on, previously enforced only by code review:
//
//   - ctxfirst: I/O APIs are context-first and library code never
//     manufactures its own context.Background (PR 7's cancellation
//     contract);
//   - lockdiscipline: methods touching mutex-guarded state hold the
//     guard, and a failed flock exclusive conversion re-acquires the
//     shared store lock (PR 6's cross-process protocol);
//   - failpointcover: the cas store's real I/O stays behind its
//     deterministic failpoints, and every declared failpoint is wired
//     (PR 7's fault-injection soak is only as strong as its coverage);
//   - errcompare: sentinel errors are matched with errors.Is, never ==,
//     and deadline errors wrap their context cause;
//   - boundarycopy: byte slices crossing shared-map boundaries are
//     copied (PR 3's write-once blob invariant);
//   - detclock: nothing reachable from cache-key/digest computation
//     reads the wall clock or math/rand (PR 5's deterministic keys);
//   - metricnames: obs metrics keep constant snake_case names with
//     unit suffixes, and labels stay on the fixed allowlist with no
//     request data in their values (bounded scrape cardinality).
//
// Findings are suppressed, one by one and with a visible audit trail,
// by //chlint:allow annotations (see the directive grammar below and
// docs/analysis.md).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path  string // import path
	Dir   string // directory the files were read from
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Program is the full set of packages one chlint run analyzes.
// Analyzers that need whole-program views (detclock's call graph)
// see every loaded package; per-package analyzers filter by Targets.
type Program struct {
	Fset     *token.FileSet
	Packages []*Package
}

// Finding is one reported violation.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
}

// Analyzer is one invariant checker.
type Analyzer struct {
	// Name is the identifier //chlint:allow directives reference.
	Name string

	// Doc is the one-line description `chlint -help` prints.
	Doc string

	// Targets are the import-path prefixes the analyzer constrains. A
	// package is in scope when its path equals or is under a target, or
	// — so golden corpora under testdata/ can exercise the analyzer
	// without masquerading as a real package — when the final path
	// element equals the analyzer's name.
	Targets []string

	// Run reports the analyzer's findings over the program. It must not
	// filter by allow directives; the driver does, so suppressions are
	// audited in one place.
	Run func(prog *Program) []Finding
}

// All returns the full analyzer suite in reporting order — the set
// cmd/chlint runs by default and CI gates on.
func All() []*Analyzer {
	return []*Analyzer{CtxFirst, LockDiscipline, FailpointCover, ErrCompare, BoundaryCopy, DetClock, Metricnames}
}

// inScope reports whether the analyzer constrains pkg.
func (a *Analyzer) inScope(pkg *Package) bool {
	if path.Base(pkg.Path) == a.Name {
		return true
	}
	for _, t := range a.Targets {
		if pkg.Path == t || strings.HasPrefix(pkg.Path, t+"/") {
			return true
		}
	}
	return false
}

// scoped returns the program's packages the analyzer constrains.
func (a *Analyzer) scoped(prog *Program) []*Package {
	var out []*Package
	for _, pkg := range prog.Packages {
		if a.inScope(pkg) {
			out = append(out, pkg)
		}
	}
	return out
}

// Run executes the analyzers over the program, applies //chlint:allow
// suppressions, and returns the surviving findings sorted by position.
// Malformed or unknown-analyzer directives are themselves findings
// (analyzer "chlint"): a typoed suppression must fail loudly, not
// silently stop suppressing.
func Run(prog *Program, analyzers []*Analyzer) []Finding {
	known := map[string]bool{"chlint": true}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	dirs, findings := collectDirectives(prog, known)
	for _, a := range analyzers {
		for _, f := range a.Run(prog) {
			if !dirs.suppressed(a.Name, f.Pos) {
				findings = append(findings, f)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return findings
}

// AllowPrefix is the directive comment prefix. The grammar is
//
//	//chlint:allow <analyzer> -- <reason>
//
// placed on (or directly above) the offending line, or in the doc
// comment of a function to cover the whole function. The reason is
// mandatory: a suppression without a recorded why is itself a finding.
const AllowPrefix = "//chlint:allow"

// directive is one parsed //chlint:allow comment.
type directive struct {
	analyzer string
	file     string
	line     int
	// funcFrom/funcTo, when non-zero, widen the scope to a whole
	// function body (the directive sat in its doc comment).
	funcFrom, funcTo int
}

type directiveSet []directive

// suppressed reports whether a finding of analyzer at pos is covered
// by a directive: same line, the line directly below the directive, or
// anywhere in a function whose doc carried it.
func (ds directiveSet) suppressed(analyzer string, pos token.Position) bool {
	for _, d := range ds {
		if d.analyzer != analyzer || d.file != pos.Filename {
			continue
		}
		if pos.Line == d.line || pos.Line == d.line+1 {
			return true
		}
		if d.funcFrom != 0 && pos.Line >= d.funcFrom && pos.Line <= d.funcTo {
			return true
		}
	}
	return false
}

// collectDirectives parses every //chlint:allow comment in the program
// and reports the malformed ones as findings.
func collectDirectives(prog *Program, known map[string]bool) (directiveSet, []Finding) {
	var dirs directiveSet
	var bad []Finding
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			// Map doc-comment lines to function extents so a directive in
			// a func's doc covers the whole body.
			type span struct{ from, to int }
			docSpan := map[int]span{}
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				from := prog.Fset.Position(fd.Pos()).Line
				to := prog.Fset.Position(fd.End()).Line
				if fd.Doc != nil {
					for l := prog.Fset.Position(fd.Doc.Pos()).Line; l <= prog.Fset.Position(fd.Doc.End()).Line; l++ {
						docSpan[l] = span{from, to}
					}
				}
			}
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, AllowPrefix)
					if !ok {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					name, reason, hasReason := strings.Cut(strings.TrimSpace(rest), "--")
					name = strings.TrimSpace(name)
					switch {
					case name == "" || strings.ContainsAny(name, " \t"):
						bad = append(bad, Finding{"chlint", pos,
							fmt.Sprintf("malformed directive %q: want %s <analyzer> -- <reason>", c.Text, AllowPrefix)})
						continue
					case !known[name]:
						bad = append(bad, Finding{"chlint", pos,
							fmt.Sprintf("directive allows unknown analyzer %q", name)})
						continue
					case !hasReason || strings.TrimSpace(reason) == "":
						bad = append(bad, Finding{"chlint", pos,
							fmt.Sprintf("directive %q has no reason: add ` -- <why this is safe>`", AllowPrefix+" "+name)})
						continue
					}
					d := directive{analyzer: name, file: pos.Filename, line: pos.Line}
					if s, ok := docSpan[pos.Line]; ok {
						d.funcFrom, d.funcTo = s.from, s.to
					}
					dirs = append(dirs, d)
				}
			}
		}
	}
	return dirs, bad
}

// --- shared AST helpers the analyzers build on ---

// funcBodyCalls reports whether body contains a call whose callee
// matches fn (an *ast.Ident name or a dotted selector rendering like
// "recv.mu.Lock"). Matching is textual on the selector chain rooted at
// an identifier — exactly the shapes the analyzers assert about.
func funcBodyCalls(body *ast.BlockStmt, want ...string) bool {
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name, ok := renderChain(call.Fun)
		if !ok {
			return true
		}
		for _, w := range want {
			if name == w {
				found = true
			}
		}
		return true
	})
	return found
}

// renderChain renders an identifier-rooted selector chain ("a.b.c").
func renderChain(e ast.Expr) (string, bool) {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name, true
	case *ast.SelectorExpr:
		prefix, ok := renderChain(e.X)
		if !ok {
			return "", false
		}
		return prefix + "." + e.Sel.Name, true
	}
	return "", false
}

// recvName returns the receiver identifier of a method declaration
// ("" for functions and anonymous receivers).
func recvName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return ""
	}
	return fd.Recv.List[0].Names[0].Name
}

// recvStruct resolves a method's receiver to its named struct type,
// nil when the receiver is not a struct.
func recvStruct(pkg *Package, fd *ast.FuncDecl) (*types.Named, *types.Struct) {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return nil, nil
	}
	tv, ok := pkg.Info.Types[fd.Recv.List[0].Type]
	if !ok {
		return nil, nil
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil, nil
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil, nil
	}
	return named, st
}

// isErrorType reports whether t is the error interface itself.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// qualifiedFunc renders a *types.Func as "pkgpath.Name" or
// "pkgpath.(Type).Name" for methods.
func qualifiedFunc(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name()
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return fn.Pkg().Path() + ".(" + named.Obj().Name() + ")." + fn.Name()
		}
	}
	return fn.Pkg().Path() + "." + fn.Name()
}
