package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// CtxFirst checks the engine's context plumbing contract (PR 7):
//
//  1. any function or method taking a context.Context takes it as the
//     FIRST parameter — mixed orders make the cancellation path easy to
//     drop on refactors;
//  2. library code never calls context.Background() or context.TODO():
//     a context manufactured mid-stack silently detaches the work from
//     the caller's cancellation and deadlines. The legacy context-free
//     compat wrappers (Store.Flatten → FlattenContext and friends) each
//     carry a //chlint:allow ctxfirst annotation naming themselves the
//     exception.
var CtxFirst = &Analyzer{
	Name: "ctxfirst",
	Doc:  "context.Context parameters come first; context.Background() only in annotated compat wrappers",
	Targets: []string{
		"repro/internal/cas",
		"repro/internal/build",
		"repro/internal/image",
		"repro/internal/daemon",
		"repro/internal/obs",
	},
}

func init() { CtxFirst.Run = runCtxFirst }

func runCtxFirst(prog *Program) []Finding {
	var out []Finding
	for _, pkg := range CtxFirst.scoped(prog) {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Type.Params == nil {
					continue
				}
				// Flatten the parameter list (grouped params share a type).
				var ptypes []types.Type
				var pnames []string
				for _, field := range fd.Type.Params.List {
					tv, ok := pkg.Info.Types[field.Type]
					if !ok {
						continue
					}
					n := len(field.Names)
					if n == 0 {
						n = 1 // unnamed parameter
					}
					for i := 0; i < n; i++ {
						ptypes = append(ptypes, tv.Type)
						if i < len(field.Names) {
							pnames = append(pnames, field.Names[i].Name)
						} else {
							pnames = append(pnames, "_")
						}
					}
				}
				for i, t := range ptypes {
					if i > 0 && isContextType(t) {
						out = append(out, Finding{CtxFirst.Name, prog.Fset.Position(fd.Pos()),
							fmt.Sprintf("%s takes context.Context as parameter %d (%s); context must come first",
								fd.Name.Name, i+1, pnames[i])})
					}
				}
			}
			// Ban manufactured contexts anywhere in the file, including
			// function literals and package-level variable initializers.
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || (sel.Sel.Name != "Background" && sel.Sel.Name != "TODO") {
					return true
				}
				fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
				if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
					return true
				}
				out = append(out, Finding{CtxFirst.Name, prog.Fset.Position(call.Pos()),
					fmt.Sprintf("context.%s() in library code detaches work from the caller's cancellation; thread a ctx parameter through (or annotate a compat wrapper)",
						sel.Sel.Name)})
				return true
			})
		}
	}
	return out
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
