package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// ErrCompare checks sentinel-error hygiene across the whole module:
//
//  1. an error value is never compared to a sentinel (a package-level
//     variable of type error: io.EOF, cas.ErrBusy, context.Canceled,
//     ...) with == or !=. The engine wraps errors aggressively —
//     %w chains through build steps, retry classification, journal
//     replay — so an == that works today breaks the moment a layer
//     adds context. errors.Is is the only comparison that survives
//     wrapping. (Comparisons with nil, and with non-sentinel values
//     like syscall.Errno returns, are fine and not flagged.)
//  2. a fmt.Errorf whose format string mentions a deadline/cancel
//     condition must wrap a cause with %w: deadline errors that don't
//     wrap context.DeadlineExceeded strand callers who select retry
//     behavior with errors.Is(err, context.DeadlineExceeded).
var ErrCompare = &Analyzer{
	Name:    "errcompare",
	Doc:     "sentinel errors are matched with errors.Is, never ==; deadline errors wrap their context cause with %w",
	Targets: []string{"repro"},
}

func init() { ErrCompare.Run = runErrCompare }

func runErrCompare(prog *Program) []Finding {
	var out []Finding
	for _, pkg := range ErrCompare.scoped(prog) {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.BinaryExpr:
					if f, ok := checkErrEq(prog, pkg, n); ok {
						out = append(out, f)
					}
				case *ast.CallExpr:
					if f, ok := checkDeadlineWrap(prog, pkg, n); ok {
						out = append(out, f)
					}
				}
				return true
			})
		}
	}
	return out
}

// checkErrEq flags `err == Sentinel` / `err != Sentinel`.
func checkErrEq(prog *Program, pkg *Package, be *ast.BinaryExpr) (Finding, bool) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return Finding{}, false
	}
	sentinel := sentinelError(pkg, be.X)
	other := be.Y
	if sentinel == "" {
		sentinel = sentinelError(pkg, be.Y)
		other = be.X
	}
	if sentinel == "" {
		return Finding{}, false
	}
	// The other side must itself be error-typed (rules out Op == OpX
	// style comparisons where a sentinel-lookalike isn't an error).
	if tv, ok := pkg.Info.Types[other]; !ok || !isErrorType(tv.Type) {
		return Finding{}, false
	}
	verb := "errors.Is(err, " + sentinel + ")"
	if be.Op == token.NEQ {
		verb = "!" + verb
	}
	return Finding{ErrCompare.Name, prog.Fset.Position(be.Pos()),
		fmt.Sprintf("comparison with sentinel %s breaks once the error is wrapped; use %s", sentinel, verb)}, true
}

// sentinelError returns the rendered name of e when it refers to a
// package-level variable of type error ("io.EOF", "ErrBusy"), else "".
func sentinelError(pkg *Package, e ast.Expr) string {
	var id *ast.Ident
	switch e := e.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return ""
	}
	v, ok := pkg.Info.Uses[id].(*types.Var)
	if !ok || v.IsField() || !isErrorType(v.Type()) {
		return ""
	}
	// Package-level: parent scope is the package scope.
	if v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return ""
	}
	if name, ok := renderChain(e); ok {
		return name
	}
	return id.Name
}

// checkDeadlineWrap flags fmt.Errorf("...deadline..."/"...canceled...",
// args) with no %w verb in the format string.
func checkDeadlineWrap(prog *Program, pkg *Package, call *ast.CallExpr) (Finding, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Errorf" {
		return Finding{}, false
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
		return Finding{}, false
	}
	if len(call.Args) == 0 {
		return Finding{}, false
	}
	lit, ok := call.Args[0].(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return Finding{}, false
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil {
		return Finding{}, false
	}
	lower := strings.ToLower(format)
	if !strings.Contains(lower, "deadline") && !strings.Contains(lower, "canceled") {
		return Finding{}, false
	}
	if strings.Contains(format, "%w") {
		return Finding{}, false
	}
	return Finding{ErrCompare.Name, prog.Fset.Position(call.Pos()),
		fmt.Sprintf("deadline/cancellation error %q does not wrap its cause; use %%w so errors.Is(err, context.DeadlineExceeded) works", format)}, true
}
