package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader type-checks packages of one module with nothing but the
// standard library: files are selected per build constraints by
// go/build, parsed by go/parser and checked by go/types, with imports
// inside the module resolved recursively by the Loader itself and
// everything else (the standard library) resolved by the compiler's
// source importer. No GOPATH, no module proxy, no x/tools — the whole
// pipeline runs from a clean checkout, which is what lets chlint gate
// CI without adding a dependency the container doesn't bake in.
//
// Test files (_test.go) are excluded: the invariants chlint enforces
// are library contracts; tests deliberately poke at internals.
type Loader struct {
	// Fset positions every file the Loader ever parses, shared across
	// packages so a Finding renders with one consistent view.
	Fset *token.FileSet

	modRoot string
	modPath string
	std     types.ImporterFrom
	pkgs    map[string]*Package // import path → loaded package
	tpkgs   map[string]*types.Package
}

// NewLoader creates a Loader for the module rooted at modRoot (the
// directory holding go.mod). The module path is read from go.mod.
func NewLoader(modRoot string) (*Loader, error) {
	data, err := os.ReadFile(filepath.Join(modRoot, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("analysis: no module directive in %s/go.mod", modRoot)
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("analysis: source importer unavailable")
	}
	return &Loader{
		Fset:    fset,
		modRoot: modRoot,
		modPath: modPath,
		std:     std,
		pkgs:    map[string]*Package{},
		tpkgs:   map[string]*types.Package{},
	}, nil
}

// ModulePath returns the module path from go.mod.
func (l *Loader) ModulePath() string { return l.modPath }

// Import implements types.Importer for the type checker's use.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom resolves one import: module-internal paths load (and
// type-check) the package from the module tree, everything else
// delegates to the standard library's source importer.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if p, ok := l.tpkgs[path]; ok {
		return p, nil
	}
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	p, err := l.std.ImportFrom(path, dir, mode)
	if err == nil {
		l.tpkgs[path] = p
	}
	return p, err
}

// Load type-checks the module package named by importPath (memoised).
func (l *Loader) Load(importPath string) (*Package, error) {
	if p, ok := l.pkgs[importPath]; ok {
		return p, nil
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(importPath, l.modPath), "/")
	dir := filepath.Join(l.modRoot, filepath.FromSlash(rel))
	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", importPath, err)
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	pkg := &Package{Path: importPath, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[importPath] = pkg
	l.tpkgs[importPath] = tpkg
	return pkg, nil
}

// LoadPatterns expands and loads package patterns: an import path, a
// directory path (absolute or ./-relative), or either suffixed with
// "/..." for a recursive walk. Walks skip testdata, vendor and hidden
// directories — exactly the set the go tool itself would build — and
// silently drop directories without buildable non-test Go files.
// Explicitly named directories (no "/...") are loaded even inside
// testdata, which is how the corpus smoke test points chlint at a
// deliberately violating package.
func (l *Loader) LoadPatterns(patterns ...string) ([]*Package, error) {
	var paths []string
	seen := map[string]bool{}
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			paths = append(paths, p)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
		}
		if pat == "." || pat == "" {
			pat = l.modPath
		}
		ip, err := l.importPathFor(pat)
		if err != nil {
			return nil, err
		}
		if !recursive {
			add(ip)
			continue
		}
		root := filepath.Join(l.modRoot, filepath.FromSlash(strings.TrimPrefix(strings.TrimPrefix(ip, l.modPath), "/")))
		err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if !hasBuildableGo(path) {
				return nil
			}
			rel, err := filepath.Rel(l.modRoot, path)
			if err != nil {
				return err
			}
			if rel == "." {
				add(l.modPath)
			} else {
				add(l.modPath + "/" + filepath.ToSlash(rel))
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
	}
	sort.Strings(paths)
	pkgs := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := l.Load(p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// importPathFor maps a pattern (import path or directory) onto a
// module import path.
func (l *Loader) importPathFor(pat string) (string, error) {
	if pat == l.modPath || strings.HasPrefix(pat, l.modPath+"/") {
		return pat, nil
	}
	// Treat it as a directory: relative to the module root, or absolute.
	dir := pat
	if !filepath.IsAbs(dir) {
		dir = filepath.Join(l.modRoot, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
	}
	rel, err := filepath.Rel(l.modRoot, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("analysis: %q is outside module %s", pat, l.modPath)
	}
	if rel == "." {
		return l.modPath, nil
	}
	return l.modPath + "/" + filepath.ToSlash(rel), nil
}

// hasBuildableGo reports whether dir holds at least one non-test Go
// file that survives build-constraint selection on this platform.
func hasBuildableGo(dir string) bool {
	bp, err := build.ImportDir(dir, 0)
	return err == nil && len(bp.GoFiles) > 0
}
