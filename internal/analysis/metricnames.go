package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Metricnames checks the observability registry's naming and
// cardinality contract at every obs constructor and labeled-child
// lookup:
//
//  1. metric names are compile-time string constants in
//     snake_case, with the Prometheus unit-suffix conventions the
//     docs promise: counters end in _total, histograms in _seconds
//     or _bytes, and gauges never end in _total (a gauge is not a
//     monotone count);
//  2. label NAMES are compile-time constants drawn from the fixed
//     allowlist below — a new label dimension is an interface
//     change and must be added here (and to docs/observability.md)
//     deliberately;
//  3. label VALUES passed to With(...) never come from struct
//     fields or map/index reads — the shapes request data arrives
//     in. An unbounded label value (a tag, a path, an operation ID)
//     would grow a child per distinct value and melt the scrape.
//     Literals, named constants, plain locals and call results stay
//     allowed: those are how the fixed value sets are spelled.
var Metricnames = &Analyzer{
	Name:    "metricnames",
	Doc:     "obs metric names are constant snake_case with unit suffixes; labels come from the fixed allowlist and never carry request data",
	Targets: []string{"repro"},
}

func init() { Metricnames.Run = runMetricnames }

// obsPath is the import path of the instrumented registry package.
const obsPath = "repro/internal/obs"

// metricNameRE mirrors the registry's own runtime validation: the
// analyzer catches at lint time what NewCounter would panic on at
// process start, plus the unit-suffix conventions the registry cannot
// know.
var metricNameRE = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)*$`)

// labelAllowlist is the closed set of label names. Growing it is a
// deliberate act: add the name here and document the new dimension in
// docs/observability.md.
var labelAllowlist = map[string]bool{
	"mode":    true,
	"outcome": true,
	"status":  true,
	"state":   true,
	"route":   true,
	"code":    true,
	"reason":  true,
	"op":      true,
}

// obsCtor describes one registry constructor: which argument holds the
// metric name, where the label names start (0 = no labels), and the
// suffix rule its kind carries.
type obsCtor struct {
	kind      string // "counter", "gauge", "histogram"
	labelsAt  int    // index of the first label-name argument; 0 = none
	wantTotal bool   // counters: must end _total
	wantUnit  bool   // histograms: must end _seconds or _bytes
}

var obsCtors = map[string]obsCtor{
	"NewCounter":      {kind: "counter", wantTotal: true},
	"NewCounterVec":   {kind: "counter", labelsAt: 2, wantTotal: true},
	"NewGauge":        {kind: "gauge"},
	"NewGaugeVec":     {kind: "gauge", labelsAt: 2},
	"NewHistogram":    {kind: "histogram", wantUnit: true},
	"NewHistogramVec": {kind: "histogram", labelsAt: 3, wantUnit: true},
}

func runMetricnames(prog *Program) []Finding {
	var out []Finding
	for _, pkg := range Metricnames.scoped(prog) {
		// The registry implementation itself is out of scope: it passes
		// caller-supplied names through its own helpers, which is
		// exactly the shape the analyzer flags at real call sites.
		if pkg.Path == obsPath {
			continue
		}
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(pkg, call)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != obsPath {
					return true
				}
				if ctor, ok := obsCtors[fn.Name()]; ok {
					out = append(out, checkCtor(prog, pkg, call, fn.Name(), ctor)...)
				}
				if fn.Name() == "With" {
					out = append(out, checkWith(prog, pkg, call)...)
				}
				return true
			})
		}
	}
	return out
}

// calleeFunc resolves the called function or method, nil when the
// callee is not an identifier-rooted name (indirect calls are out of
// scope: the registry API is never invoked through function values).
func calleeFunc(pkg *Package, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := pkg.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pkg.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// constString returns the compile-time string value of e, if it has one.
func constString(pkg *Package, e ast.Expr) (string, bool) {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// checkCtor validates one registry-constructor call: constant
// snake_case name, the kind's unit suffix, and allowlisted constant
// label names.
func checkCtor(prog *Program, pkg *Package, call *ast.CallExpr, fname string, ctor obsCtor) []Finding {
	var out []Finding
	if len(call.Args) == 0 {
		return nil
	}
	pos := prog.Fset.Position(call.Pos())
	name, ok := constString(pkg, call.Args[0])
	switch {
	case !ok:
		out = append(out, Finding{Metricnames.Name, pos,
			fmt.Sprintf("%s: metric name must be a compile-time string constant", fname)})
	case !metricNameRE.MatchString(name):
		out = append(out, Finding{Metricnames.Name, pos,
			fmt.Sprintf("metric name %q is not snake_case (want %s)", name, metricNameRE)})
	case ctor.wantTotal && !strings.HasSuffix(name, "_total"):
		out = append(out, Finding{Metricnames.Name, pos,
			fmt.Sprintf("counter %q must end in _total", name)})
	case ctor.wantUnit && !strings.HasSuffix(name, "_seconds") && !strings.HasSuffix(name, "_bytes"):
		out = append(out, Finding{Metricnames.Name, pos,
			fmt.Sprintf("histogram %q must end in a unit suffix (_seconds or _bytes)", name)})
	case ctor.kind == "gauge" && strings.HasSuffix(name, "_total"):
		out = append(out, Finding{Metricnames.Name, pos,
			fmt.Sprintf("gauge %q must not end in _total (that suffix promises a monotone counter)", name)})
	}
	if ctor.labelsAt > 0 && len(call.Args) > ctor.labelsAt {
		for _, arg := range call.Args[ctor.labelsAt:] {
			lpos := prog.Fset.Position(arg.Pos())
			label, ok := constString(pkg, arg)
			if !ok {
				out = append(out, Finding{Metricnames.Name, lpos,
					fmt.Sprintf("%s: label names must be compile-time string constants", fname)})
				continue
			}
			if !labelAllowlist[label] {
				out = append(out, Finding{Metricnames.Name, lpos,
					fmt.Sprintf("label %q is not in the fixed allowlist %v; new label dimensions are added there deliberately", label, sortedAllowlist())})
			}
		}
	}
	return out
}

// checkWith flags With(...) label values read from struct fields or
// indexed collections — the shapes unbounded request data arrives in.
func checkWith(prog *Program, pkg *Package, call *ast.CallExpr) []Finding {
	var out []Finding
	for _, arg := range call.Args {
		switch arg.(type) {
		case *ast.SelectorExpr:
			// A qualified constant (pkg.Const) is fine; a field read is
			// the violation.
			if _, isConst := constString(pkg, arg); isConst {
				continue
			}
			out = append(out, Finding{Metricnames.Name, prog.Fset.Position(arg.Pos()),
				"label value read from a struct field may carry request data; bind a fixed-set local first"})
		case *ast.IndexExpr:
			out = append(out, Finding{Metricnames.Name, prog.Fset.Position(arg.Pos()),
				"label value read from a map or slice may carry request data; bind a fixed-set local first"})
		}
	}
	return out
}

// sortedAllowlist renders the allowlist deterministically for messages.
func sortedAllowlist() []string {
	out := make([]string, 0, len(labelAllowlist))
	for k := range labelAllowlist {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
