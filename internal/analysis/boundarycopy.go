package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// BoundaryCopy checks the write-once aliasing contract around the
// engine's shared byte-slice maps (image.Store blobs, build caches):
//
//  1. storing a []byte into a receiver's map[...][]byte field must
//     store a fresh copy (an append([]byte(nil), src...) /
//     append(src[:0:0], ...) shape or a locally made+copied slice),
//     never the caller's slice — a caller mutating its buffer after
//     Put would silently corrupt the cache for every later reader;
//  2. an exported method must not return an element of a receiver's
//     map[...][]byte field directly — handing out an aliased slice
//     lets callers mutate cached bytes in place. Internal accessors
//     that intentionally share (image.blobView) stay unexported,
//     which is the boundary the analyzer draws.
var BoundaryCopy = &Analyzer{
	Name: "boundarycopy",
	Doc:  "byte slices crossing exported cache boundaries are copied, not aliased",
	Targets: []string{
		"repro/internal/cas",
		"repro/internal/build",
		"repro/internal/image",
		"repro/internal/daemon",
	},
}

func init() { BoundaryCopy.Run = runBoundaryCopy }

func runBoundaryCopy(prog *Program) []Finding {
	var out []Finding
	for _, pkg := range BoundaryCopy.scoped(prog) {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				recv := recvName(fd)
				if recv == "" {
					continue
				}
				_, st := recvStruct(pkg, fd)
				if st == nil {
					continue
				}
				byteMapFields := byteSliceMapFields(st)
				if len(byteMapFields) == 0 {
					continue
				}
				out = append(out, checkMapStores(prog, pkg, fd, recv, byteMapFields)...)
				if fd.Name.IsExported() {
					out = append(out, checkAliasedReturns(prog, pkg, fd, recv, byteMapFields)...)
				}
			}
		}
	}
	return out
}

// byteSliceMapFields returns the names of st's fields whose type is
// map[...][]byte.
func byteSliceMapFields(st *types.Struct) map[string]bool {
	fields := map[string]bool{}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		m, ok := f.Type().Underlying().(*types.Map)
		if !ok {
			continue
		}
		s, ok := m.Elem().Underlying().(*types.Slice)
		if !ok {
			continue
		}
		if b, ok := s.Elem().Underlying().(*types.Basic); ok && b.Kind() == types.Byte {
			fields[f.Name()] = true
		}
	}
	return fields
}

// checkMapStores enforces rule 1: assignments recv.field[k] = v where v
// is not a visibly fresh copy.
func checkMapStores(prog *Program, pkg *Package, fd *ast.FuncDecl, recv string, fields map[string]bool) []Finding {
	var out []Finding
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			idx, ok := lhs.(*ast.IndexExpr)
			if !ok {
				continue
			}
			field, ok := receiverField(pkg, idx.X, recv, fields)
			if !ok || i >= len(as.Rhs) {
				continue
			}
			rhs := as.Rhs[i]
			if freshCopy(pkg, rhs, fd) {
				continue
			}
			out = append(out, Finding{BoundaryCopy.Name, prog.Fset.Position(as.Pos()),
				fmt.Sprintf("storing a caller-visible []byte into %s.%s aliases the caller's buffer; store append([]byte(nil), src...) instead", recv, field)})
		}
		return true
	})
	return out
}

// checkAliasedReturns enforces rule 2: `return recv.field[k]` (or the
// two-value comma-ok read assigned then returned is out of scope —
// the direct index return is the regression this guards).
func checkAliasedReturns(prog *Program, pkg *Package, fd *ast.FuncDecl, recv string, fields map[string]bool) []Finding {
	var out []Finding
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			idx, ok := res.(*ast.IndexExpr)
			if !ok {
				continue
			}
			field, ok := receiverField(pkg, idx.X, recv, fields)
			if !ok {
				continue
			}
			out = append(out, Finding{BoundaryCopy.Name, prog.Fset.Position(res.Pos()),
				fmt.Sprintf("exported %s returns %s.%s[...] without copying; callers can mutate the cached bytes in place", fd.Name.Name, recv, field)})
		}
		return true
	})
	return out
}

// receiverField matches e against recv.<field> for a tracked field.
func receiverField(pkg *Package, e ast.Expr, recv string, fields map[string]bool) (string, bool) {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || id.Name != recv || !fields[sel.Sel.Name] {
		return "", false
	}
	if s, ok := pkg.Info.Selections[sel]; !ok || s.Kind() != types.FieldVal {
		return "", false
	}
	return sel.Sel.Name, true
}

// freshCopy reports whether rhs is a visibly fresh slice:
//
//   - append(<nil-or-empty-capacity slice>, src...) — the canonical
//     copy idiom;
//   - a composite literal or make/[]byte conversion of a string —
//     freshly allocated by construction;
//   - an identifier that was itself produced by one of the above or
//     filled via copy() inside this function.
func freshCopy(pkg *Package, rhs ast.Expr, fd *ast.FuncDecl) bool {
	switch e := rhs.(type) {
	case *ast.CallExpr:
		switch fun := e.Fun.(type) {
		case *ast.Ident:
			if fun.Name == "append" && len(e.Args) >= 1 && isEmptyBase(e.Args[0]) {
				return true
			}
			if fun.Name == "make" {
				return true
			}
		case *ast.ArrayType:
			// []byte(stringExpr) conversion copies.
			if len(e.Args) != 1 {
				return false
			}
			if tv, ok := pkg.Info.Types[e.Args[0]]; ok {
				if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
					return true
				}
			}
		}
	case *ast.CompositeLit:
		return true
	case *ast.Ident:
		return localFresh(pkg, e, fd)
	}
	return false
}

// isEmptyBase recognises append bases that force reallocation:
// []byte(nil), []byte{}, nil, or src[:0:0].
func isEmptyBase(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name == "nil"
	case *ast.CallExpr: // []byte(nil)
		if _, ok := e.Fun.(*ast.ArrayType); ok && len(e.Args) == 1 {
			if id, ok := e.Args[0].(*ast.Ident); ok && id.Name == "nil" {
				return true
			}
		}
	case *ast.CompositeLit:
		return len(e.Elts) == 0
	case *ast.SliceExpr: // src[:0:0] — full-slice-expression with zero cap
		if e.Slice3 && e.Max != nil {
			if lit, ok := e.Max.(*ast.BasicLit); ok && lit.Value == "0" {
				return true
			}
		}
	}
	return false
}

// localFresh reports whether ident was assigned a fresh slice (per
// freshCopy) or filled via copy(ident, ...) somewhere in the function —
// the two-statement copy idiom:
//
//	buf := make([]byte, len(src))
//	copy(buf, src)
//	s.m[k] = buf
func localFresh(pkg *Package, id *ast.Ident, fd *ast.FuncDecl) bool {
	obj := pkg.Info.Uses[id]
	if obj == nil {
		return false
	}
	fresh := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				lid, ok := lhs.(*ast.Ident)
				if !ok || i >= len(n.Rhs) {
					continue
				}
				if pkg.Info.Defs[lid] != obj && pkg.Info.Uses[lid] != obj {
					continue
				}
				// Recurse one level: fresh-producing RHS shapes only, to
				// keep the check finite.
				switch rhs := n.Rhs[i].(type) {
				case *ast.CallExpr, *ast.CompositeLit:
					if freshCopy(pkg, rhs, fd) {
						fresh = true
					}
				}
			}
		case *ast.CallExpr:
			if fun, ok := n.Fun.(*ast.Ident); ok && fun.Name == "copy" && len(n.Args) == 2 {
				if dst, ok := n.Args[0].(*ast.Ident); ok && (pkg.Info.Uses[dst] == obj || pkg.Info.Defs[dst] == obj) {
					fresh = true
				}
			}
		}
		return true
	})
	return fresh
}
