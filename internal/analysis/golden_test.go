package analysis_test

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"

	"repro/internal/analysis"
)

// The corpus convention: every line in testdata/src/<analyzer>/ that
// must produce a finding carries a trailing
//
//	// want "regexp" ["regexp" ...]
//
// comment, one regexp per expected finding on that line. Lines without
// a want comment must stay silent. Each corpus pairs a violations.go
// (every seeded bug fires) with a clean.go (the blessed idioms stay
// quiet), so the tests pin both directions: the analyzer catches the
// regression AND does not cry wolf on the pattern the codebase
// actually uses.

// One Loader for the whole test binary: stdlib type-checking dominates
// the cost and is memoised per import path, so the corpus packages and
// the whole-repo self-check share the work.
var (
	loaderOnce sync.Once
	loaderVal  *analysis.Loader
	loaderErr  error
)

func sharedLoader(t *testing.T) *analysis.Loader {
	t.Helper()
	loaderOnce.Do(func() {
		root, err := filepath.Abs(filepath.Join("..", ".."))
		if err != nil {
			loaderErr = err
			return
		}
		loaderVal, loaderErr = analysis.NewLoader(root)
	})
	if loaderErr != nil {
		t.Fatalf("loader: %v", loaderErr)
	}
	return loaderVal
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)
var wantArgRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// wantsIn scans a corpus directory for want comments, keyed by
// "<filename-base>:<line>".
func wantsIn(t *testing.T, dir string) map[string][]string {
	t.Helper()
	wants := map[string][]string{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			key := fmt.Sprintf("%s:%d", e.Name(), i+1)
			for _, q := range wantArgRe.FindAllStringSubmatch(m[1], -1) {
				pat := strings.ReplaceAll(q[1], `\"`, `"`)
				wants[key] = append(wants[key], pat)
			}
		}
	}
	return wants
}

// TestGoldenCorpus runs each analyzer over its own corpus package and
// matches findings against the want comments, both directions.
func TestGoldenCorpus(t *testing.T) {
	byName := map[string]*analysis.Analyzer{}
	for _, a := range analysis.All() {
		byName[a.Name] = a
	}
	for name, a := range byName {
		a := a
		t.Run(name, func(t *testing.T) {
			l := sharedLoader(t)
			ip := l.ModulePath() + "/internal/analysis/testdata/src/" + name
			pkg, err := l.Load(ip)
			if err != nil {
				t.Fatalf("load corpus: %v", err)
			}
			prog := &analysis.Program{Fset: l.Fset, Packages: []*analysis.Package{pkg}}
			findings := analysis.Run(prog, []*analysis.Analyzer{a})

			wants := wantsIn(t, pkg.Dir)
			if len(wants) == 0 {
				t.Fatalf("corpus %s has no want comments; the violations file must seed at least one", name)
			}
			matched := map[string][]bool{}
			for key, pats := range wants {
				matched[key] = make([]bool, len(pats))
			}
			for _, f := range findings {
				key := fmt.Sprintf("%s:%d", filepath.Base(f.Pos.Filename), f.Pos.Line)
				pats, ok := wants[key]
				if !ok {
					t.Errorf("unexpected finding at %s: %s", key, f.Message)
					continue
				}
				covered := false
				for i, pat := range pats {
					if regexp.MustCompile(pat).MatchString(f.Message) && !matched[key][i] {
						matched[key][i] = true
						covered = true
						break
					}
				}
				if !covered {
					t.Errorf("finding at %s matches no unmatched want %q: %s", key, pats, f.Message)
				}
			}
			for key, pats := range wants {
				for i, pat := range pats {
					if !matched[key][i] {
						t.Errorf("want %q at %s produced no finding", pat, key)
					}
				}
			}
		})
	}
}

// TestDirectiveDiagnostics pins the driver's own findings: a
// suppression that cannot work (malformed, unknown analyzer, missing
// reason) must fail loudly.
func TestDirectiveDiagnostics(t *testing.T) {
	l := sharedLoader(t)
	pkg, err := l.Load(l.ModulePath() + "/internal/analysis/testdata/src/badallow")
	if err != nil {
		t.Fatalf("load corpus: %v", err)
	}
	prog := &analysis.Program{Fset: l.Fset, Packages: []*analysis.Package{pkg}}
	findings := analysis.Run(prog, analysis.All())
	want := []string{"malformed directive", "unknown analyzer", "has no reason"}
	if len(findings) != len(want) {
		t.Fatalf("got %d findings, want %d:\n%v", len(findings), len(want), findings)
	}
	for i, w := range want {
		if f := findings[i]; f.Analyzer != "chlint" || !strings.Contains(f.Message, w) {
			t.Errorf("finding %d = [%s] %q, want chlint finding containing %q", i, f.Analyzer, f.Message, w)
		}
	}
}

// TestRepoClean is the self-check: the repository's own library and
// command code passes every analyzer. This is the same gate `make
// lint` and CI apply; a regression that trips an analyzer fails here
// first, with the finding text in the failure message.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-repo type-check is slow; run without -short")
	}
	l := sharedLoader(t)
	pkgs, err := l.LoadPatterns("./...")
	if err != nil {
		t.Fatalf("load ./...: %v", err)
	}
	prog := &analysis.Program{Fset: l.Fset, Packages: pkgs}
	findings := analysis.Run(prog, analysis.All())
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) > 0 {
		t.Logf("fix the finding or annotate the line with a reasoned %s directive", analysis.AllowPrefix)
	}
}
