package cpio

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
)

func TestRoundTripSingleFile(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteMember(&Header{Name: "etc/motd", Mode: 0o100644, UID: 0, GID: 0}, []byte("hello\n")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	r := NewReader(buf.Bytes())
	h, err := r.Next()
	if err != nil {
		t.Fatalf("next: %v", err)
	}
	if h.Name != "etc/motd" || h.Mode != 0o100644 || h.Size != 6 {
		t.Fatalf("header %+v", h)
	}
	if string(r.Body()) != "hello\n" {
		t.Fatalf("body %q", r.Body())
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestRoundTripManyMembers(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	type member struct {
		h    Header
		body []byte
	}
	var members []member
	for i := 0; i < 50; i++ {
		body := make([]byte, rng.Intn(1000))
		rng.Read(body)
		members = append(members, member{
			h: Header{
				Name: "dir/file" + string(rune('a'+i%26)) + itoa(i),
				Mode: 0o100644, UID: uint32(i), GID: uint32(i * 2),
			},
			body: body,
		})
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := range members {
		if err := w.WriteMember(&members[i].h, members[i].body); err != nil {
			t.Fatalf("member %d: %v", i, err)
		}
	}
	w.Close()
	r := NewReader(buf.Bytes())
	for i := range members {
		h, err := r.Next()
		if err != nil {
			t.Fatalf("next %d: %v", i, err)
		}
		if h.Name != members[i].h.Name || h.UID != members[i].h.UID {
			t.Fatalf("member %d header %+v", i, h)
		}
		if !bytes.Equal(r.Body(), members[i].body) {
			t.Fatalf("member %d body mismatch", i)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("trailer: %v", err)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	return string(b)
}

func TestDeviceNode(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.WriteMember(&Header{Name: "dev/null", Mode: 0o20666, RMajor: 1, RMinor: 3}, nil)
	w.Close()
	r := NewReader(buf.Bytes())
	h, err := r.Next()
	if err != nil {
		t.Fatalf("next: %v", err)
	}
	if h.RMajor != 1 || h.RMinor != 3 || h.Mode&0o170000 != 0o20000 {
		t.Fatalf("device header %+v", h)
	}
}

func TestDirectoryAndSymlink(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.WriteMember(&Header{Name: "usr/bin", Mode: 0o40755, Nlink: 2}, nil)
	w.WriteMember(&Header{Name: "usr/bin/sh", Mode: 0o120777}, []byte("busybox"))
	w.Close()
	r := NewReader(buf.Bytes())
	d, _ := r.Next()
	if d.Mode&0o170000 != 0o40000 {
		t.Fatalf("dir mode %o", d.Mode)
	}
	l, err := r.Next()
	if err != nil {
		t.Fatalf("symlink: %v", err)
	}
	if l.Mode&0o170000 != 0o120000 || string(r.Body()) != "busybox" {
		t.Fatalf("symlink %+v body %q", l, r.Body())
	}
}

func TestBadMagic(t *testing.T) {
	r := NewReader([]byte("070702XXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXX"))
	if _, err := r.Next(); err == nil {
		t.Fatal("bad magic must fail")
	}
}

func TestTruncatedArchive(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.WriteMember(&Header{Name: "f", Mode: 0o100644}, []byte("0123456789"))
	w.Close()
	full := buf.Bytes()
	for _, cut := range []int{10, 50, len(full) - 3} {
		if cut >= len(full) {
			continue
		}
		r := NewReader(full[:cut])
		_, err := r.Next()
		if err == nil {
			// First member may parse if the cut hits the trailer; then
			// the next call must fail or EOF cleanly.
			if _, err2 := r.Next(); err2 == nil {
				t.Fatalf("cut %d: no error", cut)
			}
		}
	}
}

func TestWriterBodyOverrun(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteHeader(&Header{Name: "f", Mode: 0o100644, Size: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("toolong")); err == nil {
		t.Fatal("overrun must fail")
	}
}

func TestWriterPendingClose(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.WriteHeader(&Header{Name: "f", Mode: 0o100644, Size: 5})
	if err := w.Close(); err == nil {
		t.Fatal("close with pending body must fail")
	}
}

func TestHardlinkInodesPreserved(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.WriteMember(&Header{Name: "a", Ino: 77, Mode: 0o100644, Nlink: 2}, []byte("x"))
	w.WriteMember(&Header{Name: "b", Ino: 77, Mode: 0o100644, Nlink: 2}, nil)
	w.Close()
	r := NewReader(buf.Bytes())
	a, _ := r.Next()
	b, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if a.Ino != 77 || b.Ino != 77 {
		t.Fatalf("inos %d %d", a.Ino, b.Ino)
	}
}
