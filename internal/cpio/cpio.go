// Package cpio implements the "newc" (SVR4) cpio archive format, the
// payload format inside RPM packages. rpm(8) extracts its file payload with
// a cpio engine, chowning each entry as it goes — the operation that fails
// in Figure 1b with "cpio: chown". The simulated rpm (internal/pkgmgr)
// therefore carries real cpio archives, built and parsed here.
package cpio

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"strings"
)

// Magic is the newc format magic.
const Magic = "070701"

// Trailer is the conventional end-of-archive entry name.
const Trailer = "TRAILER!!!"

// Header describes one archive member. Mode carries S_IF* type bits plus
// permissions, as in the on-disk format.
type Header struct {
	Name     string
	Ino      uint32
	Mode     uint32
	UID      uint32
	GID      uint32
	Nlink    uint32
	Mtime    uint32
	Size     uint32
	DevMajor uint32
	DevMinor uint32
	RMajor   uint32 // device number for device nodes
	RMinor   uint32
}

// ErrHeader reports a malformed archive.
var ErrHeader = errors.New("cpio: invalid header")

// Writer emits a newc archive.
type Writer struct {
	w       io.Writer
	ino     uint32
	pending uint32 // bytes of current member body still expected
	size    uint32 // declared size of the current member
	closed  bool
}

// NewWriter writes to w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w, ino: 1}
}

// WriteHeader starts a member; the previous member's body must be
// complete. If h.Ino is zero an inode number is assigned.
func (w *Writer) WriteHeader(h *Header) error {
	if w.closed {
		return errors.New("cpio: write after Close")
	}
	if w.pending != 0 {
		return fmt.Errorf("cpio: previous member has %d unwritten bytes", w.pending)
	}
	ino := h.Ino
	if ino == 0 {
		ino = w.ino
		w.ino++
	}
	name := strings.TrimPrefix(h.Name, "/")
	if name == "" {
		return errors.New("cpio: empty member name")
	}
	if err := w.emitHeader(ino, h, name); err != nil {
		return err
	}
	w.pending = h.Size
	w.size = h.Size
	return nil
}

func (w *Writer) emitHeader(ino uint32, h *Header, name string) error {
	var b bytes.Buffer
	b.WriteString(Magic)
	for _, v := range []uint32{
		ino, h.Mode, h.UID, h.GID, max32(h.Nlink, 1), h.Mtime, h.Size,
		h.DevMajor, h.DevMinor, h.RMajor, h.RMinor,
		uint32(len(name) + 1), 0, // namesize incl NUL, check (unused)
	} {
		fmt.Fprintf(&b, "%08X", v)
	}
	b.WriteString(name)
	b.WriteByte(0)
	// Header+name padded to 4 bytes.
	for b.Len()%4 != 0 {
		b.WriteByte(0)
	}
	_, err := w.w.Write(b.Bytes())
	return err
}

// Write appends body bytes for the current member.
func (w *Writer) Write(p []byte) (int, error) {
	if uint32(len(p)) > w.pending {
		return 0, fmt.Errorf("cpio: body overrun: %d > %d pending", len(p), w.pending)
	}
	n, err := w.w.Write(p)
	w.pending -= uint32(n)
	if err != nil {
		return n, err
	}
	if w.pending == 0 {
		// Body padded to 4 bytes, based on the member's declared size.
		if rem := int(w.size) % 4; rem != 0 {
			if _, err := w.w.Write(make([]byte, 4-rem)); err != nil {
				return n, err
			}
		}
	}
	return n, nil
}

// WriteMember writes a complete member in one call.
func (w *Writer) WriteMember(h *Header, body []byte) error {
	h.Size = uint32(len(body))
	if err := w.WriteHeader(h); err != nil {
		return err
	}
	if len(body) > 0 {
		if _, err := w.Write(body); err != nil {
			return err
		}
	}
	return nil
}

// Close writes the trailer.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	if w.pending != 0 {
		return fmt.Errorf("cpio: close with %d pending bytes", w.pending)
	}
	if err := w.emitHeader(0, &Header{Nlink: 1}, Trailer); err != nil {
		return err
	}
	w.closed = true
	return nil
}

// Reader parses a newc archive.
type Reader struct {
	r       *bytes.Reader
	body    []byte // current member body
	bodyPos int
}

// NewReader parses data (cpio archives in RPMs are small enough to hold).
func NewReader(data []byte) *Reader {
	return &Reader{r: bytes.NewReader(data)}
}

// Next advances to the next member, returning io.EOF after the trailer.
func (r *Reader) Next() (*Header, error) {
	// Skip any remaining body + padding of the previous member.
	r.body = nil
	r.bodyPos = 0

	var hdr [110]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		// A well-formed archive always ends with the TRAILER!!! member;
		// running out of bytes before it is corruption, as cpio(1)'s
		// "premature end of archive" diagnoses.
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, fmt.Errorf("%w: premature end of archive (missing trailer)", ErrHeader)
		}
		return nil, err
	}
	if string(hdr[:6]) != Magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrHeader, hdr[:6])
	}
	field := func(i int) (uint32, error) {
		var v uint32
		for _, c := range hdr[6+8*i : 6+8*i+8] {
			d := hexDigit(c)
			if d < 0 {
				return 0, fmt.Errorf("%w: bad hex field %d", ErrHeader, i)
			}
			v = v<<4 | uint32(d)
		}
		return v, nil
	}
	var vals [13]uint32
	for i := range vals {
		v, err := field(i)
		if err != nil {
			return nil, err
		}
		vals[i] = v
	}
	h := &Header{
		Ino: vals[0], Mode: vals[1], UID: vals[2], GID: vals[3],
		Nlink: vals[4], Mtime: vals[5], Size: vals[6],
		DevMajor: vals[7], DevMinor: vals[8], RMajor: vals[9], RMinor: vals[10],
	}
	nameSize := vals[11]
	if nameSize == 0 || nameSize > 4096 {
		return nil, fmt.Errorf("%w: name size %d", ErrHeader, nameSize)
	}
	nameBuf := make([]byte, nameSize)
	if _, err := io.ReadFull(r.r, nameBuf); err != nil {
		return nil, fmt.Errorf("%w: short name", ErrHeader)
	}
	h.Name = string(nameBuf[:nameSize-1])
	// Header (110) + name padded to 4.
	if pad := (110 + int(nameSize)) % 4; pad != 0 {
		if _, err := r.r.Seek(int64(4-pad), io.SeekCurrent); err != nil {
			return nil, err
		}
	}
	if h.Name == Trailer {
		return nil, io.EOF
	}
	body := make([]byte, h.Size)
	if _, err := io.ReadFull(r.r, body); err != nil {
		return nil, fmt.Errorf("%w: short body for %s", ErrHeader, h.Name)
	}
	if pad := int(h.Size) % 4; pad != 0 {
		if _, err := r.r.Seek(int64(4-pad), io.SeekCurrent); err != nil {
			return nil, err
		}
	}
	r.body = body
	return h, nil
}

// Read reads from the current member body.
func (r *Reader) Read(p []byte) (int, error) {
	if r.bodyPos >= len(r.body) {
		return 0, io.EOF
	}
	n := copy(p, r.body[r.bodyPos:])
	r.bodyPos += n
	return n, nil
}

// Body returns the current member's full body.
func (r *Reader) Body() []byte { return r.body }

func hexDigit(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'A' && c <= 'F':
		return int(c-'A') + 10
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	}
	return -1
}

func max32(a, b uint32) uint32 {
	if a > b {
		return a
	}
	return b
}
