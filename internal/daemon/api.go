package daemon

// The JSON wire types of the ch-imaged REST API (see docs/daemon.md).
// Builds are asynchronous in the LXD shape: POST /v1/builds returns an
// operation immediately, and the client polls GET /v1/operations/{id}
// until it reaches a terminal status.

import "repro/internal/obs"

// BuildRequest is the body of POST /v1/builds.
type BuildRequest struct {
	// Tag names the result image ("name:tag"). Required.
	Tag string `json:"tag"`

	// Dockerfile is the build text. Required.
	Dockerfile string `json:"dockerfile"`

	// Context holds the build-context files COPY/ADD resolve against;
	// values are base64-encoded in JSON (encoding/json's []byte rule).
	Context map[string][]byte `json:"context,omitempty"`

	// Force selects the root-emulation mechanism: none, seccomp,
	// fakeroot or proot. Empty uses the daemon's default.
	Force string `json:"force,omitempty"`

	// Target stops a multi-stage build at the named stage (name or
	// decimal index) and tags that instead.
	Target string `json:"target,omitempty"`

	// BuildArgs overrides ARG defaults.
	BuildArgs map[string]string `json:"buildArgs,omitempty"`

	// StageJobs bounds how many independent stages of a multi-stage
	// build run concurrently; <= 0 runs every ready stage at once.
	StageJobs int `json:"stageJobs,omitempty"`

	// TimeoutMS, when > 0, bounds the whole build in milliseconds; an
	// overrunning build fails at its next instruction boundary.
	TimeoutMS int64 `json:"timeoutMs,omitempty"`

	// InstrTimeoutMS, when > 0, bounds each instruction in milliseconds.
	InstrTimeoutMS int64 `json:"instrTimeoutMs,omitempty"`
}

// Progress is an operation's most recent instruction boundary.
type Progress struct {
	// Step is the 1-based index of the instruction last reported.
	Step int `json:"step"`

	// Total is the stage's instruction count.
	Total int `json:"total"`

	// Cmd is the instruction name at that boundary.
	Cmd string `json:"cmd,omitempty"`
}

// BuildResult summarises a finished build (build.Result on the wire).
type BuildResult struct {
	Executed      int   `json:"executed"`
	CacheHits     int   `json:"cacheHits"`
	StagesBuilt   int   `json:"stagesBuilt,omitempty"`
	StagesSkipped int   `json:"stagesSkipped,omitempty"`
	ModifiedRuns  int   `json:"modifiedRuns,omitempty"`
	VirtualNanos  int64 `json:"virtualNanos,omitempty"`

	// Degraded reports a build that succeeded in memory while some of
	// its persistence failed — the image is correct and tagged, the
	// on-disk cache is merely colder (docs/cas.md). DegradedErrs holds
	// the failure messages.
	Degraded     bool     `json:"degraded,omitempty"`
	DegradedErrs []string `json:"degradedErrs,omitempty"`
}

// Operation is one asynchronous build as the API renders it.
type Operation struct {
	ID     string `json:"id"`
	Tag    string `json:"tag"`
	Status string `json:"status"`

	// RFC 3339 timestamps; StartedAt/FinishedAt are empty until the
	// operation reaches those states.
	CreatedAt  string `json:"createdAt"`
	StartedAt  string `json:"startedAt,omitempty"`
	FinishedAt string `json:"finishedAt,omitempty"`

	// Progress is the most recent instruction boundary of a running
	// build; absent before the first boundary.
	Progress *Progress `json:"progress,omitempty"`

	// Transcript is the tail of the build transcript (bounded by the
	// daemon's transcript-tail setting); TranscriptTruncated reports
	// that earlier output was dropped from this rendering.
	Transcript          string `json:"transcript,omitempty"`
	TranscriptTruncated bool   `json:"transcriptTruncated,omitempty"`

	// Result is present once the build finished (including the partial
	// counters of a failed or cancelled build).
	Result *BuildResult `json:"result,omitempty"`

	// Spans is the build's span timeline: the root build span with one
	// child per stage and, under each, one per instruction. Spans of a
	// live operation report elapsed time with running=true.
	Spans *obs.SpanData `json:"spans,omitempty"`

	// Error is the failure message of a failed or cancelled operation.
	Error string `json:"error,omitempty"`
}

// OperationsResponse is the body of GET /v1/operations.
type OperationsResponse struct {
	Operations []Operation `json:"operations"`
}

// ImagesResponse is the body of GET /v1/images: the tags visible in the
// daemon's shared image store.
type ImagesResponse struct {
	Tags []string `json:"tags"`
}

// Stats is the body of GET /v1/stats.
type Stats struct {
	// Jobs is the pool's worker count; QueueCap the admission bound
	// (running + queued operations the daemon accepts before 429).
	Jobs     int `json:"jobs"`
	QueueCap int `json:"queueCap"`

	// Active counts admitted, unsettled operations; InFlight the builds
	// executing on pool workers right now.
	Active   int  `json:"active"`
	InFlight int  `json:"inFlight"`
	Draining bool `json:"draining"`

	// Cache totals across every build the daemon has run.
	CacheHits   int `json:"cacheHits"`
	CacheMisses int `json:"cacheMisses"`

	// Operations counts operations by status.
	Operations map[string]int `json:"operations"`

	// Persistent reports whether the daemon holds a cas-backed store.
	Persistent bool `json:"persistent"`
}

// ErrorResponse is the body of every non-2xx API response.
type ErrorResponse struct {
	Error string `json:"error"`
}
