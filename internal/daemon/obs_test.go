package daemon

// Observability surface tests: the /metrics scrape, the per-operation
// span timeline, and the terminal-operation retention cap. The obs
// default registry is process-global, so every counter assertion here
// is a before/after delta, never an absolute value.

import (
	"bufio"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// scrapeMetrics GETs /metrics and parses the exposition text into a
// series → value map keyed exactly as the deterministic renderer writes
// it (`name{l="v",...}` or bare `name`).
func scrapeMetrics(t *testing.T, base string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("GET /metrics: content-type %q", ct)
	}
	out := map[string]float64{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("unparseable metrics line %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("metrics line %q: %v", line, err)
		}
		out[line[:sp]] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// delta is after[k] - before[k], treating absent series as 0.
func delta(before, after map[string]float64, k string) float64 {
	return after[k] - before[k]
}

// TestDaemonMetricsEndpoint runs one cold and one warm build and checks
// the scrape reflects them: settled-by-status and executed/replayed
// instruction deltas match the operations' own results, the warm build
// is all hits, and the request histogram saw the polling traffic.
func TestDaemonMetricsEndpoint(t *testing.T) {
	_, srv := startDaemon(t, Config{Jobs: 2})
	before := scrapeMetrics(t, srv.URL)

	req := BuildRequest{Tag: "obs:latest", Dockerfile: multiStageDockerfile, StageJobs: 2}
	var op Operation
	if code := doJSON(t, http.MethodPost, srv.URL+"/v1/builds", req, &op); code != http.StatusAccepted {
		t.Fatalf("POST /v1/builds: status %d", code)
	}
	cold := pollOp(t, srv.URL, op.ID)
	if cold.Status != StatusSucceeded {
		t.Fatalf("cold build: status %s, error %q", cold.Status, cold.Error)
	}
	if code := doJSON(t, http.MethodPost, srv.URL+"/v1/builds", req, &op); code != http.StatusAccepted {
		t.Fatalf("second POST: status %d", code)
	}
	warm := pollOp(t, srv.URL, op.ID)
	if warm.Status != StatusSucceeded {
		t.Fatalf("warm build: status %s, error %q", warm.Status, warm.Error)
	}
	after := scrapeMetrics(t, srv.URL)

	if d := delta(before, after, `ch_daemon_operations_settled_total{status="succeeded"}`); d != 2 {
		t.Errorf("settled{succeeded} delta = %v, want 2", d)
	}
	wantExec := float64(cold.Result.Executed + warm.Result.Executed)
	if d := delta(before, after, `ch_build_instructions_total{mode="executed"}`); d != wantExec {
		t.Errorf("instructions{executed} delta = %v, want %v", d, wantExec)
	}
	wantHits := float64(cold.Result.CacheHits + warm.Result.CacheHits)
	if d := delta(before, after, `ch_build_cache_hits_total`); d != wantHits {
		t.Errorf("cache_hits delta = %v, want %v", d, wantHits)
	}
	if warm.Result.Executed != 0 || warm.Result.CacheHits == 0 {
		t.Errorf("warm build not fully cached: %+v", warm.Result)
	}
	if d := delta(before, after, `ch_build_builds_total{outcome="succeeded"}`); d != 2 {
		t.Errorf("builds{succeeded} delta = %v, want 2", d)
	}
	if d := delta(before, after, `ch_build_instruction_seconds_count`); d == 0 {
		t.Error("instruction duration histogram recorded nothing")
	}
	if after[`ch_daemon_operations{state="succeeded"}`] < 2 {
		t.Errorf("operations gauge{succeeded} = %v, want >= 2",
			after[`ch_daemon_operations{state="succeeded"}`])
	}
	if d := delta(before, after, `ch_daemon_http_request_seconds_count{route="/v1/operations/{id}",code="200"}`); d == 0 {
		t.Error("request histogram saw no operation polls")
	}
}

// TestOperationSpans checks the span timeline on a finished multi-stage
// operation: a root build span, one child per stage, and under each
// stage one span per instruction, all ended.
func TestOperationSpans(t *testing.T) {
	_, srv := startDaemon(t, Config{Jobs: 2})
	req := BuildRequest{Tag: "spans:latest", Dockerfile: multiStageDockerfile, StageJobs: 2}
	var op Operation
	if code := doJSON(t, http.MethodPost, srv.URL+"/v1/builds", req, &op); code != http.StatusAccepted {
		t.Fatalf("POST /v1/builds: status %d", code)
	}
	fin := pollOp(t, srv.URL, op.ID)
	if fin.Status != StatusSucceeded {
		t.Fatalf("status %s, error %q", fin.Status, fin.Error)
	}
	if fin.Spans == nil {
		t.Fatal("terminal operation carries no span timeline")
	}
	if fin.Spans.Name != "build spans:latest" {
		t.Errorf("root span name %q", fin.Spans.Name)
	}
	var assertEnded func(d *obs.SpanData, path string)
	assertEnded = func(d *obs.SpanData, path string) {
		if d.Running {
			t.Errorf("span %s/%s still running in a terminal rendering", path, d.Name)
		}
		for i := range d.Children {
			assertEnded(&d.Children[i], path+"/"+d.Name)
		}
	}
	assertEnded(fin.Spans, "")
	if got := len(fin.Spans.Children); got != 2 {
		t.Fatalf("root has %d stage spans, want 2: %+v", got, fin.Spans)
	}
	wantInstr := []int{3, 3} // per-stage instructions in multiStageDockerfile, FROM included
	for i, stage := range fin.Spans.Children {
		if !strings.HasPrefix(stage.Name, fmt.Sprintf("stage %d ", i+1)) {
			t.Errorf("stage span %d named %q", i, stage.Name)
		}
		if len(stage.Children) != wantInstr[i] {
			t.Errorf("stage %d has %d instruction spans, want %d: %+v",
				i+1, len(stage.Children), wantInstr[i], stage.Children)
		}
	}
}

// TestOperationEviction runs more builds than the retention cap allows
// and checks the oldest settled operations vanish: evicted IDs answer
// 404, the list holds at most the cap, and the by-status counts stay
// consistent with the live table.
func TestOperationEviction(t *testing.T) {
	d, srv := startDaemon(t, Config{Jobs: 1, MaxOperations: 2})
	dockerfile := "FROM alpine:3.19\nRUN echo hello\n"
	var ids []string
	for i := 0; i < 4; i++ {
		req := BuildRequest{Tag: fmt.Sprintf("evict%d:latest", i), Dockerfile: dockerfile}
		var op Operation
		if code := doJSON(t, http.MethodPost, srv.URL+"/v1/builds", req, &op); code != http.StatusAccepted {
			t.Fatalf("POST %d: status %d", i, code)
		}
		fin := pollOp(t, srv.URL, op.ID)
		if fin.Status != StatusSucceeded {
			t.Fatalf("build %d: status %s, error %q", i, fin.Status, fin.Error)
		}
		ids = append(ids, op.ID)
	}

	// noteTerminal runs just after the settle pollOp observed; give the
	// evictions a moment rather than asserting on the exact interleaving.
	deadline := time.Now().Add(5 * time.Second)
	for _, id := range ids[:2] {
		for {
			if code := doJSON(t, http.MethodGet, srv.URL+"/v1/operations/"+id, nil, nil); code == http.StatusNotFound {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("operation %s not evicted", id)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	for _, id := range ids[2:] {
		if code := doJSON(t, http.MethodGet, srv.URL+"/v1/operations/"+id, nil, nil); code != http.StatusOK {
			t.Errorf("GET retained %s: status %d, want 200", id, code)
		}
	}
	var list OperationsResponse
	if code := doJSON(t, http.MethodGet, srv.URL+"/v1/operations", nil, &list); code != http.StatusOK {
		t.Fatalf("GET /v1/operations: status %d", code)
	}
	if len(list.Operations) != 2 {
		t.Errorf("list holds %d operations, want 2", len(list.Operations))
	}
	counts := d.reg.statusCounts()
	if counts[StatusSucceeded] != 2 {
		t.Errorf("statusCounts[succeeded] = %d, want 2 after eviction", counts[StatusSucceeded])
	}
	m := scrapeMetrics(t, srv.URL)
	if m[`ch_daemon_operations{state="succeeded"}`] != 2 {
		t.Errorf("operations gauge{succeeded} = %v, want 2", m[`ch_daemon_operations{state="succeeded"}`])
	}
}
