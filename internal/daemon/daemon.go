// Package daemon is the ch-imaged build service: a long-running HTTP
// server accepting Dockerfile builds and executing them asynchronously
// on one shared build.Pool over one shared image.Store + build.Cache —
// optionally persistent via one cas.Dir held (with its shared flock)
// for the daemon's whole lifetime. The shape is LXD's daemon + async
// operation objects: POST returns an operation ID immediately, clients
// poll or cancel it, and a bounded admission counter rejects overload
// with 429 instead of queueing unboundedly. See docs/daemon.md.
package daemon

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"os"
	"sync"
	"time"

	"repro/internal/build"
	"repro/internal/cas"
	"repro/internal/image"
	"repro/internal/obs"
	"repro/internal/pkgmgr"
)

// Sentinel errors of the admission path; the HTTP layer maps them to
// status codes with errors.Is.
var (
	// ErrQueueFull reports an admission counter at capacity (HTTP 429).
	ErrQueueFull = errors.New("daemon: admission queue full")

	// ErrDraining reports a daemon shutting down (HTTP 503).
	ErrDraining = errors.New("daemon: draining, not accepting builds")

	// ErrNotStarted reports a Submit before Start.
	ErrNotStarted = errors.New("daemon: not started")
)

// Config parameterises a Daemon.
type Config struct {
	// Jobs is the shared pool's worker count; <= 0 means 4.
	Jobs int

	// Queue bounds how many admitted operations may wait beyond the
	// Jobs running ones before POSTs are rejected with 429; <= 0 means
	// 2*Jobs. The total admission capacity is Jobs+Queue.
	Queue int

	// Force is the default root-emulation mechanism for requests that
	// don't name one.
	Force build.ForceMode

	// CacheDir, when non-empty, backs the daemon's store and cache with
	// a persistent cas store opened once at New and held (with its
	// shared flock) until Shutdown.
	CacheDir string

	// CacheVerify selects the CacheDir open validation (cas.VerifyFull
	// or cas.VerifyLazy). Ignored when CacheDir is empty.
	CacheVerify cas.VerifyMode

	// Faults, when non-nil, is installed as the cas store's failpoint
	// injector (the CH_IMAGE_CAS_FAULTS path). Ignored when CacheDir is
	// empty.
	Faults cas.Injector

	// TranscriptTail bounds the transcript bytes an operation rendering
	// carries; <= 0 means 4096.
	TranscriptTail int

	// MaxOperations bounds how many terminal (settled) operations the
	// registry retains for polling; past it the oldest-settled are
	// evicted and later GETs for them answer 404. Live operations are
	// never evicted. <= 0 means 512.
	MaxOperations int

	// stepGate, when set by tests, is called from the build's Progress
	// hook at every instruction boundary — the same rendezvous the
	// engine's own cancel tests use.
	stepGate func(ctx context.Context, ev build.ProgressEvent)
}

// Daemon is one ch-imaged instance.
type Daemon struct {
	cfg        Config
	world      *pkgmgr.World
	store      *image.Store
	cache      *build.Cache
	report     cas.Report
	pool       *build.Pool
	reg        *registry
	handler    http.Handler
	persistent bool

	// mu guards the lifecycle state below it.
	mu             sync.Mutex
	started        bool
	draining       bool
	active         int
	baseCtx        context.Context
	queue          chan *operation
	dispatcherDone chan struct{}
	idle           chan struct{}
	idleClosed     bool
	dir            *cas.Dir
}

// New builds a Daemon: opens the cas store (if configured), seeds the
// base images, and wires the shared pool, cache and HTTP handler. The
// daemon serves nothing until Start.
func New(cfg Config) (*Daemon, error) {
	if cfg.Jobs <= 0 {
		cfg.Jobs = 4
	}
	if cfg.Queue <= 0 {
		cfg.Queue = 2 * cfg.Jobs
	}
	if cfg.TranscriptTail <= 0 {
		cfg.TranscriptTail = 4096
	}
	d := &Daemon{
		cfg:   cfg,
		world: pkgmgr.NewWorld(),
		reg:   newRegistry(cfg.MaxOperations),
		pool:  &build.Pool{Workers: cfg.Jobs},
	}
	if cfg.CacheDir != "" {
		dir, rep, err := cas.Open(cfg.CacheDir, cas.WithVerify(cfg.CacheVerify))
		if err != nil {
			return nil, fmt.Errorf("daemon: open cache-dir: %w", err)
		}
		d.dir = dir
		d.report = rep
		if rep.Quarantined() {
			fmt.Fprintf(os.Stderr,
				"ch-imaged: cache-dir %s: quarantined %d corrupt blob(s) and %d journal line(s), dropped %d record(s); affected steps will re-execute\n",
				cfg.CacheDir, rep.BlobsQuarantined, rep.JournalQuarantined, rep.RecordsDropped)
		}
		if cfg.Faults != nil {
			dir.SetFailpoints(cfg.Faults)
		}
	}
	// Backing attaches before seeding so base blobs and tags persist
	// (the seededStore rule from cmd/ch-image).
	store := image.NewStore()
	if d.dir != nil {
		store.SetBacking(d.dir)
	}
	for _, db := range []struct{ distro, name string }{
		{pkgmgr.DistroAlpine, "alpine:3.19"},
		{pkgmgr.DistroCentOS7, "centos:7"},
		{pkgmgr.DistroDebian, "debian:12"},
	} {
		img, err := d.world.BaseImage(db.distro, db.name)
		if err != nil {
			closeErr := d.closeDir()
			return nil, errors.Join(fmt.Errorf("daemon: seed %s: %w", db.name, err), closeErr)
		}
		store.Put(img)
	}
	d.store = store
	if d.dir != nil {
		d.cache = build.NewPersistentCache(d.dir)
		d.persistent = true
	} else {
		d.cache = build.NewCache()
	}
	d.handler = d.routes()
	return d, nil
}

// closeDir closes the cas handle once (releasing the shared flock the
// daemon held for its lifetime); safe with no handle.
func (d *Daemon) closeDir() error {
	d.mu.Lock()
	dir := d.dir
	d.dir = nil
	d.mu.Unlock()
	if dir == nil {
		return nil
	}
	return dir.Close()
}

// Start brings the daemon into service: the pool's resident workers come
// up and the dispatcher begins feeding them. ctx is the daemon's base
// context — every operation's context derives from it, detached from its
// cancellation (operations stop via their own cancel or Shutdown's drain
// deadline, not because the base context ended).
func (d *Daemon) Start(ctx context.Context) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.started {
		return errors.New("daemon: already started")
	}
	if err := d.pool.Start(); err != nil {
		return err
	}
	d.started = true
	d.baseCtx = ctx
	d.queue = make(chan *operation, d.cfg.Jobs+d.cfg.Queue)
	d.dispatcherDone = make(chan struct{})
	d.idle = make(chan struct{})
	go d.dispatch(d.queue, d.dispatcherDone)
	return nil
}

// Handler returns the daemon's HTTP handler.
func (d *Daemon) Handler() http.Handler { return d.handler }

// Store exposes the shared image store (tests and /v1/images).
func (d *Daemon) Store() *image.Store { return d.store }

// Pool exposes the shared pool (the tests' no-leak accounting check).
func (d *Daemon) Pool() *build.Pool { return d.pool }

// Report returns the cas open report (zero without a CacheDir).
func (d *Daemon) Report() cas.Report { return d.report }

// Submit admits one build request: it allocates an operation, charges
// the admission counter, and hands the operation to the dispatcher. At
// capacity it fails fast with ErrQueueFull — the bounded queue the API
// surfaces as 429 — and during drain with ErrDraining (503).
func (d *Daemon) Submit(ctx context.Context, req BuildRequest) (*operation, error) {
	if err := validate(req); err != nil {
		return nil, err
	}
	force := d.cfg.Force
	if req.Force != "" {
		m, err := parseForce(req.Force)
		if err != nil {
			return nil, err
		}
		force = m
	}
	id, err := newID()
	if err != nil {
		return nil, fmt.Errorf("daemon: operation id: %w", err)
	}

	d.mu.Lock()
	if !d.started {
		d.mu.Unlock()
		mAdmissionRejected.With("not_started").Inc()
		return nil, ErrNotStarted
	}
	if d.draining {
		d.mu.Unlock()
		mAdmissionRejected.With("draining").Inc()
		return nil, ErrDraining
	}
	if d.active >= cap(d.queue) {
		d.mu.Unlock()
		mAdmissionRejected.With("queue_full").Inc()
		return nil, ErrQueueFull
	}
	d.active++
	// The operation's context derives from the daemon's base context
	// but survives its cancellation: the async build outlives the POST,
	// and drain — not base-context teardown — decides when running
	// builds die. The trace rides the same context into the engine; its
	// root span ends when the operation settles.
	opCtx, cancel := context.WithCancel(context.WithoutCancel(d.baseCtx))
	opCtx, root := obs.NewTrace(opCtx, "build "+req.Tag)
	op := &operation{
		id:      id,
		req:     req,
		force:   force,
		ctx:     opCtx,
		cancel:  cancel,
		trace:   root,
		done:    make(chan struct{}),
		created: time.Now(),
		status:  StatusQueued,
	}
	// The admission counter bounds live operations at cap(queue), so
	// this send always finds buffer space and never blocks under mu.
	d.queue <- op
	d.mu.Unlock()

	d.reg.add(op)
	return op, nil
}

// dispatch feeds admitted operations to the pool. The channels arrive as
// parameters so the loop never reads the mutex-guarded fields they came
// from. It exits when Shutdown closes the queue.
func (d *Daemon) dispatch(queue <-chan *operation, done chan<- struct{}) {
	defer close(done)
	for op := range queue {
		ch, err := d.pool.Submit(op.ctx, d.jobFor(op))
		if err != nil {
			// Pool drained under us (shutdown race): settle the
			// operation as failed-clean.
			op.settle(build.JobResult{
				Name: op.id,
				Err:  fmt.Errorf("daemon: operation %s not started: %w", op.id, err),
			}, time.Now())
			op.cancel()
			d.noteSettled(op)
			continue
		}
		op.markRunning(time.Now())
		go d.await(op, ch)
	}
}

// await settles op with the pool's result and credits the admission
// counter back.
func (d *Daemon) await(op *operation, ch <-chan build.JobResult) {
	op.settle(<-ch, time.Now())
	op.cancel()
	d.noteSettled(op)
}

// noteSettled returns one admission slot, records the operation as
// terminal for retention accounting (which may evict the oldest settled
// operations past the cap) and, during drain, closes idle when the last
// live operation settles.
func (d *Daemon) noteSettled(op *operation) {
	d.reg.noteTerminal(op.id)
	d.mu.Lock()
	defer d.mu.Unlock()
	d.active--
	if d.draining && d.active == 0 && !d.idleClosed {
		d.idleClosed = true
		close(d.idle)
	}
}

// jobFor turns an operation into the pool job that executes it. Store,
// World and Cache are the daemon's shared ones — that sharing is the
// warm-cache story; Output is the operation itself (transcript capture)
// and Progress feeds its step counter.
func (d *Daemon) jobFor(op *operation) build.Job {
	opt := build.Options{
		Tag:         op.req.Tag,
		Force:       op.force,
		Store:       d.store,
		World:       d.world,
		Cache:       d.cache,
		Context:     op.req.Context,
		BuildArgs:   op.req.BuildArgs,
		TargetStage: op.req.Target,
		StageJobs:   op.req.StageJobs,
		Output:      op,
		Progress: func(ctx context.Context, ev build.ProgressEvent) {
			op.noteProgress(ev)
			if gate := d.cfg.stepGate; gate != nil {
				gate(ctx, ev)
			}
		},
	}
	if op.req.TimeoutMS > 0 {
		opt.BuildTimeout = time.Duration(op.req.TimeoutMS) * time.Millisecond
	}
	if op.req.InstrTimeoutMS > 0 {
		opt.InstrTimeout = time.Duration(op.req.InstrTimeoutMS) * time.Millisecond
	}
	return build.Job{Name: op.id, Dockerfile: op.req.Dockerfile, Options: opt}
}

// Shutdown drains the daemon: admission flips to 503, in-flight and
// queued operations get until ctx's deadline to finish, anything still
// live past it is cancelled (stopping at the next instruction boundary),
// and the pool, dispatcher and cas handle are torn down. Idempotent-ish:
// a second call returns nil immediately.
func (d *Daemon) Shutdown(ctx context.Context) error {
	d.mu.Lock()
	if !d.started {
		d.mu.Unlock()
		return d.closeDir()
	}
	if d.draining {
		d.mu.Unlock()
		return nil
	}
	d.draining = true
	if d.active == 0 && !d.idleClosed {
		d.idleClosed = true
		close(d.idle)
	}
	queue, idle, dispatcherDone := d.queue, d.idle, d.dispatcherDone
	d.mu.Unlock()

	// No more admissions: the dispatcher drains what is queued and
	// exits.
	close(queue)

	select {
	case <-idle:
	case <-ctx.Done():
		// Grace expired: cancel everything live and wait for the
		// settles — each build stops at its next instruction boundary.
		d.reg.cancelLive()
		<-idle
	}
	<-dispatcherDone
	d.pool.Drain()
	return d.closeDir()
}

// Operation looks up an operation by ID.
func (d *Daemon) Operation(id string) (*operation, bool) { return d.reg.get(id) }

// validate checks the request fields every build needs.
func validate(req BuildRequest) error {
	if req.Tag == "" {
		return errors.New("daemon: tag is required")
	}
	if req.Dockerfile == "" {
		return errors.New("daemon: dockerfile is required")
	}
	return nil
}

// parseForce maps the wire force names to build.ForceMode.
func parseForce(s string) (build.ForceMode, error) {
	switch s {
	case "none":
		return build.ForceNone, nil
	case "seccomp":
		return build.ForceSeccomp, nil
	case "fakeroot":
		return build.ForceFakeroot, nil
	case "proot":
		return build.ForceProot, nil
	}
	return 0, fmt.Errorf("daemon: unknown force mode %q", s)
}

// stats snapshots the daemon's counters for GET /v1/stats.
func (d *Daemon) stats() Stats {
	d.mu.Lock()
	active, draining := d.active, d.draining
	queueCap := 0
	if d.queue != nil {
		queueCap = cap(d.queue)
	}
	d.mu.Unlock()
	hits, misses := d.cache.Stats()
	return Stats{
		Jobs:        d.cfg.Jobs,
		QueueCap:    queueCap,
		Active:      active,
		InFlight:    d.pool.InFlight(),
		Draining:    draining,
		CacheHits:   hits,
		CacheMisses: misses,
		Operations:  d.reg.statusCounts(),
		Persistent:  d.persistent,
	}
}
