package daemon

import "repro/internal/obs"

// Daemon-level instruments on the obs default registry (see
// docs/observability.md). Event-driven counters and histograms update at
// their chokepoints; the by-state gauges are set by the /metrics handler
// right before rendering, so they are exact at every scrape without a
// per-transition bookkeeping path.
var (
	mHTTPSeconds = obs.NewHistogramVec("ch_daemon_http_request_seconds",
		"HTTP request latency by normalised route and status code.",
		obs.DefBuckets, "route", "code")
	mAdmissionRejected = obs.NewCounterVec("ch_daemon_admission_rejected_total",
		"Submits rejected at admission, by reason (queue_full, draining, not_started).",
		"reason")
	mOpsSettled = obs.NewCounterVec("ch_daemon_operations_settled_total",
		"Operations settled, by terminal status.", "status")
	mOpsEvicted = obs.NewCounter("ch_daemon_operations_evicted_total",
		"Terminal operations evicted from the registry by the retention cap.")
	mOpsByState = obs.NewGaugeVec("ch_daemon_operations",
		"Operations currently in the registry, by state (refreshed at scrape).",
		"state")
	mQueueDepth = obs.NewGauge("ch_daemon_queue_depth",
		"Admitted operations waiting for a pool worker (refreshed at scrape).")
)
