package daemon

// Async operation objects in the LXD shape: every accepted build becomes
// an operation with an ID, a status machine, and a cancel handle. The
// HTTP layer renders operations; the dispatcher drives them.

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"sort"
	"sync"
	"time"

	"repro/internal/build"
	"repro/internal/obs"
)

// Operation statuses. queued → running → {succeeded, failed, cancelled};
// cancelling is running with a cancel already requested.
const (
	StatusQueued     = "queued"
	StatusRunning    = "running"
	StatusCancelling = "cancelling"
	StatusSucceeded  = "succeeded"
	StatusFailed     = "failed"
	StatusCancelled  = "cancelled"
)

// terminalStatus reports whether s is an end state.
func terminalStatus(s string) bool {
	return s == StatusSucceeded || s == StatusFailed || s == StatusCancelled
}

// operation is one admitted build. Its ctx is derived from the daemon's
// base context, not the POST request's — the build outlives the request
// that created it.
type operation struct {
	id    string
	req   BuildRequest
	force build.ForceMode

	// ctx governs the build; cancel stops it at its next instruction
	// boundary (DELETE /v1/operations/{id}, or daemon drain expiry).
	ctx    context.Context
	cancel context.CancelFunc

	// trace is the build's root span, carried on ctx into the engine.
	// Set once at admission and immutable after; the Span synchronises
	// itself, so render snapshots it without o.mu ordering concerns.
	trace *obs.Span

	// done closes when the operation settles — the tests' and drain
	// path's wait handle.
	done chan struct{}

	// created is set once at admission and immutable after.
	created time.Time

	// mu guards the mutable state below it.
	mu         sync.Mutex
	status     string
	started    time.Time
	finished   time.Time
	step       int
	totalSteps int
	lastCmd    string
	transcript bytes.Buffer
	result     *build.Result
	errMsg     string
}

// newID returns a 16-hex-digit random operation ID.
func newID() (string, error) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", err
	}
	return hex.EncodeToString(b[:]), nil
}

// Write appends build output to the transcript; the operation is the
// build job's Options.Output.
func (o *operation) Write(p []byte) (int, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.transcript.Write(p)
}

// noteProgress records an instruction boundary (the build's
// Options.Progress hook).
func (o *operation) noteProgress(ev build.ProgressEvent) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.step = ev.Step
	o.totalSteps = ev.Total
	o.lastCmd = ev.Cmd
}

// markRunning moves queued → running; a no-op once cancel was requested
// or the operation settled.
func (o *operation) markRunning(now time.Time) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.status == StatusQueued {
		o.status = StatusRunning
		o.started = now
	}
}

// requestCancel asks the operation to stop. It reports false when the
// operation is already terminal (the HTTP 409 case); otherwise it marks
// the operation cancelling and cancels its context — a queued operation
// settles without running, a running build stops at its next instruction
// boundary.
func (o *operation) requestCancel() bool {
	o.mu.Lock()
	if terminalStatus(o.status) {
		o.mu.Unlock()
		return false
	}
	o.status = StatusCancelling
	o.mu.Unlock()
	o.cancel()
	return true
}

// settle records the build's outcome and closes done. Exactly one settle
// wins; later calls are no-ops.
func (o *operation) settle(r build.JobResult, now time.Time) {
	o.mu.Lock()
	if terminalStatus(o.status) {
		o.mu.Unlock()
		return
	}
	o.result = r.Result
	o.finished = now
	switch {
	case r.Cancelled:
		o.status = StatusCancelled
		o.errMsg = r.Err.Error()
	case r.Err != nil:
		o.status = StatusFailed
		o.errMsg = r.Err.Error()
	default:
		o.status = StatusSucceeded
	}
	status := o.status
	// The root span ends and the settled counter bumps before the
	// terminal status is visible: a client that saw the operation settle
	// and then scrapes /metrics must find it counted, and its timeline
	// finished. (Lock order o.mu → span.mu / family mu is safe — neither
	// ever takes an operation's mu.)
	o.trace.End()
	mOpsSettled.With(status).Inc()
	o.mu.Unlock()
	close(o.done)
}

// Terminal reports whether the operation has settled.
func (o *operation) Terminal() bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	return terminalStatus(o.status)
}

// render snapshots the operation as its wire type, truncating the
// transcript to its last tail bytes (tail <= 0 keeps it all).
func (o *operation) render(tail int) Operation {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := Operation{
		ID:        o.id,
		Tag:       o.req.Tag,
		Status:    o.status,
		CreatedAt: o.created.UTC().Format(time.RFC3339Nano),
	}
	if !o.started.IsZero() {
		out.StartedAt = o.started.UTC().Format(time.RFC3339Nano)
	}
	if !o.finished.IsZero() {
		out.FinishedAt = o.finished.UTC().Format(time.RFC3339Nano)
	}
	if o.step > 0 {
		out.Progress = &Progress{Step: o.step, Total: o.totalSteps, Cmd: o.lastCmd}
	}
	t := o.transcript.Bytes()
	if tail > 0 && len(t) > tail {
		out.Transcript = string(t[len(t)-tail:])
		out.TranscriptTruncated = true
	} else {
		out.Transcript = string(t)
	}
	if o.trace != nil {
		sd := o.trace.Snapshot()
		out.Spans = &sd
	}
	if o.result != nil {
		br := &BuildResult{
			Executed:      o.result.Executed,
			CacheHits:     o.result.CacheHits,
			StagesBuilt:   o.result.StagesBuilt,
			StagesSkipped: o.result.StagesSkipped,
			ModifiedRuns:  o.result.ModifiedRuns,
			VirtualNanos:  o.result.VirtualNanos,
			Degraded:      o.result.Degraded,
		}
		for _, e := range o.result.DegradedErrs {
			br.DegradedErrs = append(br.DegradedErrs, e.Error())
		}
		out.Result = br
	}
	out.Error = o.errMsg
	return out
}

// statusNow returns the operation's current status.
func (o *operation) statusNow() string {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.status
}

// defaultMaxOperations is the terminal-operation retention cap when the
// configuration does not name one.
const defaultMaxOperations = 512

// registry is the daemon's operation table. Live operations stay
// forever (they hold an admission slot, so they are bounded by it);
// terminal ones are retained for polling up to max, oldest-settled
// evicted first.
type registry struct {
	// max is the terminal-operation retention cap; immutable.
	max int

	// mu guards the table state below it.
	mu       sync.Mutex
	ops      map[string]*operation
	terminal []string // settled operation IDs, oldest first
}

func newRegistry(max int) *registry {
	if max <= 0 {
		max = defaultMaxOperations
	}
	return &registry{max: max, ops: map[string]*operation{}}
}

func (r *registry) add(op *operation) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ops[op.id] = op
}

// noteTerminal records that the operation settled and evicts the
// oldest-settled operations past the retention cap. An evicted
// operation disappears from GET /v1/operations and its ID answers 404
// from then on (docs/daemon.md).
func (r *registry) noteTerminal(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.ops[id]; !ok {
		return
	}
	r.terminal = append(r.terminal, id)
	for len(r.terminal) > r.max {
		victim := r.terminal[0]
		r.terminal = r.terminal[1:]
		if _, live := r.ops[victim]; live {
			delete(r.ops, victim)
			mOpsEvicted.Inc()
		}
	}
}

func (r *registry) get(id string) (*operation, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	op, ok := r.ops[id]
	return op, ok
}

// list returns every operation ordered by creation time (ties broken by
// ID so the order is stable).
func (r *registry) list() []*operation {
	r.mu.Lock()
	ops := make([]*operation, 0, len(r.ops))
	for _, op := range r.ops {
		ops = append(ops, op)
	}
	r.mu.Unlock()
	sort.Slice(ops, func(i, j int) bool {
		if !ops[i].created.Equal(ops[j].created) {
			return ops[i].created.Before(ops[j].created)
		}
		return ops[i].id < ops[j].id
	})
	return ops
}

// statusCounts tallies operations by status.
func (r *registry) statusCounts() map[string]int {
	counts := map[string]int{}
	for _, op := range r.list() {
		counts[op.statusNow()]++
	}
	return counts
}

// cancelLive cancels every non-terminal operation — the drain deadline's
// hammer.
func (r *registry) cancelLive() {
	for _, op := range r.list() {
		op.requestCancel()
	}
}
