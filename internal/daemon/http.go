package daemon

// The REST surface. Routing is manual (method switch + path trim): the
// module targets go 1.21, before ServeMux method patterns existed.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
)

// maxRequestBytes bounds a POST /v1/builds body (Dockerfile plus
// base64-encoded context files).
const maxRequestBytes = 32 << 20

// routes builds the daemon's handler: the REST surface plus the
// Prometheus scrape endpoint, wrapped in the request-latency middleware.
func (d *Daemon) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", d.handleHealth)
	mux.HandleFunc("/v1/builds", d.handleBuilds)
	mux.HandleFunc("/v1/operations", d.handleOperations)
	mux.HandleFunc("/v1/operations/", d.handleOperation)
	mux.HandleFunc("/v1/images", d.handleImages)
	mux.HandleFunc("/v1/stats", d.handleStats)
	mux.Handle("/metrics", d.metricsHandler())
	return instrument(mux)
}

// metricsHandler refreshes the scrape-time gauges (operations by state,
// queue depth) and serves the default registry in Prometheus text
// exposition format. Setting the gauges here — instead of on every
// state transition — keeps them exact at each scrape with no extra
// bookkeeping on the build path.
func (d *Daemon) metricsHandler() http.Handler {
	prom := obs.Default.Handler()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		for _, s := range []string{
			StatusQueued, StatusRunning, StatusCancelling,
			StatusSucceeded, StatusFailed, StatusCancelled,
		} {
			mOpsByState.With(s).Set(0)
		}
		for s, n := range d.reg.statusCounts() {
			mOpsByState.With(s).Set(int64(n))
		}
		d.mu.Lock()
		active := d.active
		d.mu.Unlock()
		mQueueDepth.Set(int64(max(0, active-d.pool.InFlight())))
		prom.ServeHTTP(w, r)
	})
}

// statusRecorder captures the response code for the request histogram.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (s *statusRecorder) WriteHeader(code int) {
	s.code = code
	s.ResponseWriter.WriteHeader(code)
}

// instrument wraps the handler with the request-latency histogram.
// Routes are normalised onto the fixed route set — never raw paths —
// so label cardinality stays bounded whatever clients request.
func instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(rec, r)
		mHTTPSeconds.With(routeOf(r.URL.Path), strconv.Itoa(rec.code)).ObserveSince(t0)
	})
}

// routeOf maps a request path onto the bounded route label set.
func routeOf(path string) string {
	switch {
	case path == "/healthz", path == "/v1/builds", path == "/v1/operations",
		path == "/v1/images", path == "/v1/stats", path == "/metrics":
		return path
	case strings.HasPrefix(path, "/v1/operations/"):
		return "/v1/operations/{id}"
	}
	return "other"
}

// writeJSON renders v with status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // response already committed; nothing to do on error
}

// writeError renders an ErrorResponse.
func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// handleHealth is the liveness probe.
func (d *Daemon) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleBuilds accepts POST /v1/builds: decode the request, admit it,
// and answer 202 with the queued operation. The admission sentinels map
// to 429 (queue full) and 503 (draining).
func (d *Daemon) handleBuilds(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	var req BuildRequest
	body := http.MaxBytesReader(w, r.Body, maxRequestBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decode request: %v", err)
		return
	}
	op, err := d.Submit(r.Context(), req)
	switch {
	case err == nil:
	case errors.Is(err, ErrQueueFull):
		writeError(w, http.StatusTooManyRequests, "%v", err)
		return
	case errors.Is(err, ErrDraining), errors.Is(err, ErrNotStarted):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	default:
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	w.Header().Set("Location", "/v1/operations/"+op.id)
	writeJSON(w, http.StatusAccepted, op.render(d.cfg.TranscriptTail))
}

// handleOperations lists every operation, oldest first.
func (d *Daemon) handleOperations(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	ops := d.reg.list()
	resp := OperationsResponse{Operations: make([]Operation, 0, len(ops))}
	for _, op := range ops {
		resp.Operations = append(resp.Operations, op.render(d.cfg.TranscriptTail))
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleOperation serves one operation: GET polls it, DELETE cancels it
// (202 accepted; 409 once it is already terminal).
func (d *Daemon) handleOperation(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/v1/operations/")
	if id == "" || strings.Contains(id, "/") {
		writeError(w, http.StatusNotFound, "no such operation")
		return
	}
	op, ok := d.reg.get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no such operation %q", id)
		return
	}
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, op.render(d.cfg.TranscriptTail))
	case http.MethodDelete:
		if !op.requestCancel() {
			writeError(w, http.StatusConflict,
				"operation %s already %s", id, op.statusNow())
			return
		}
		writeJSON(w, http.StatusAccepted, op.render(d.cfg.TranscriptTail))
	default:
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
	}
}

// handleImages lists the tags visible in the shared store.
func (d *Daemon) handleImages(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	writeJSON(w, http.StatusOK, ImagesResponse{Tags: d.store.Tags()})
}

// handleStats serves the daemon's counters.
func (d *Daemon) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	writeJSON(w, http.StatusOK, d.stats())
}
