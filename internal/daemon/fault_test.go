package daemon

// Fault injection through the daemon path: builds served over HTTP
// against a cas store with faults at every failpoint must finish
// succeeded (possibly degraded, surfaced in the operation JSON) or
// failed-clean, and the store must reopen undamaged after the daemon
// releases it — the TestFaultSoak invariants (internal/build) driven
// end to end. `make fault-smoke` raises FAULT_SOAK_DAEMON_BUILDS.

import (
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"repro/internal/cas"
)

// TestDaemonFaultSoak cycles daemons over one cas store, each serving a
// few faulty builds. FAULT_SOAK_DAEMON_BUILDS sets the total build count
// (default 12); FAULT_SOAK_SEED pins the randomness.
func TestDaemonFaultSoak(t *testing.T) {
	builds := 12
	if v := os.Getenv("FAULT_SOAK_DAEMON_BUILDS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("FAULT_SOAK_DAEMON_BUILDS=%q: %v", v, err)
		}
		builds = n
	}
	var seed int64 = 1
	if v := os.Getenv("FAULT_SOAK_SEED"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("FAULT_SOAK_SEED=%q: %v", v, err)
		}
		seed = n
	}
	root := filepath.Join(t.TempDir(), "cas")
	rng := rand.New(rand.NewSource(seed))

	rates := map[cas.Op]float64{}
	for _, op := range cas.AllOps {
		rates[op] = 0.15
	}

	// The soak dockerfiles repeat across daemons so later rounds hit the
	// persistent cache warm — faults land on both the record and replay
	// paths.
	dockerfile := func(i int) string {
		return fmt.Sprintf("FROM alpine:3.19\nRUN echo soak-%d > /s\nRUN echo done > /done\n", i%3)
	}

	const perDaemon = 4
	succeeded, degraded, failed := 0, 0, 0
	for done := 0; done < builds; {
		d, err := New(Config{
			Jobs:        2,
			CacheDir:    root,
			CacheVerify: cas.VerifyLazy,
			Faults:      cas.NewPlan(rng.Int63(), rates),
		})
		if err != nil {
			t.Fatalf("build %d: daemon failed to open the store: %v", done, err)
		}
		if d.Report().Quarantined() {
			t.Errorf("build %d: store reopened with damage: %+v", done, d.Report())
		}
		srv := serveDaemon(t, d)

		n := perDaemon
		if builds-done < n {
			n = builds - done
		}
		ids := make([]string, 0, n)
		for i := 0; i < n; i++ {
			var op Operation
			req := BuildRequest{Tag: fmt.Sprintf("soak:%d", (done+i)%3), Dockerfile: dockerfile(done + i)}
			if code := doJSON(t, http.MethodPost, srv.URL+"/v1/builds", req, &op); code != http.StatusAccepted {
				t.Fatalf("build %d: POST status %d", done+i, code)
			}
			ids = append(ids, op.ID)
		}
		for i, id := range ids {
			fin := pollOp(t, srv.URL, id)
			switch fin.Status {
			case StatusSucceeded:
				if fin.Result == nil {
					t.Errorf("build %d: succeeded without a result", done+i)
				} else if fin.Result.Degraded {
					// The degraded contract on the wire: succeeded, with
					// the persistence failures enumerated.
					if len(fin.Result.DegradedErrs) == 0 {
						t.Errorf("build %d: degraded with no DegradedErrs", done+i)
					}
					degraded++
				} else {
					succeeded++
				}
			case StatusFailed:
				// Failed-clean is allowed; a hang or a damaged store is
				// not (asserted by pollOp's deadline and the reopen).
				if fin.Error == "" {
					t.Errorf("build %d: failed with no error message", done+i)
				}
				failed++
			default:
				t.Errorf("build %d: unexpected terminal status %s", done+i, fin.Status)
			}
		}
		done += n

		// Tear the daemon down (releasing the flock) and reopen with
		// full verification: no damage, no matter what the faults did.
		srv.Close()
		shutdownDaemon(t, d)
		d2, rep, err := cas.Open(root, cas.WithVerify(cas.VerifyFull))
		if err != nil {
			t.Fatalf("post-daemon reopen failed: %v", err)
		}
		if rep.Quarantined() {
			t.Errorf("post-daemon reopen found damage: %+v", rep)
		}
		d2.Close()
	}

	// A final fault-free daemon over the surviving store: the warm path
	// must build cleanly.
	d, err := New(Config{Jobs: 1, CacheDir: root, CacheVerify: cas.VerifyFull})
	if err != nil {
		t.Fatalf("final daemon: %v", err)
	}
	if d.Report().Quarantined() {
		t.Fatalf("final open found damage: %+v", d.Report())
	}
	srv := serveDaemon(t, d)
	var op Operation
	if code := doJSON(t, http.MethodPost, srv.URL+"/v1/builds",
		BuildRequest{Tag: "soak:final", Dockerfile: dockerfile(0)}, &op); code != http.StatusAccepted {
		t.Fatalf("final POST: status %d", code)
	}
	fin := pollOp(t, srv.URL, op.ID)
	if fin.Status != StatusSucceeded {
		t.Fatalf("final fault-free build: status %s, error %q", fin.Status, fin.Error)
	}
	if fin.Result.Degraded {
		t.Fatalf("final fault-free build degraded: %v", fin.Result.DegradedErrs)
	}
	srv.Close()
	shutdownDaemon(t, d)
	t.Logf("daemon soak: %d builds (seed %d): %d clean, %d degraded, %d failed cleanly",
		builds, seed, succeeded, degraded, failed)
}
