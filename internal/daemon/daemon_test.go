package daemon

// End-to-end daemon tests over httptest: the full POST → poll → cancel
// lifecycle against a real Daemon with a real pool — the in-process half
// of the harness (make daemon-smoke is the subprocess half).

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/build"
)

// startDaemon brings up a started Daemon and an httptest server on its
// handler; both are torn down at test end.
func startDaemon(t *testing.T, cfg Config) (*Daemon, *httptest.Server) {
	t.Helper()
	if cfg.Force == 0 {
		cfg.Force = build.ForceSeccomp
	}
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(d.Handler())
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := d.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return d, srv
}

// serveDaemon starts an already-constructed daemon and puts an httptest
// server on it; teardown is the caller's (the fault soak cycles daemons
// inside one test).
func serveDaemon(t *testing.T, d *Daemon) *httptest.Server {
	t.Helper()
	if err := d.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	return httptest.NewServer(d.Handler())
}

// shutdownDaemon drains d with a generous grace period.
func shutdownDaemon(t *testing.T, d *Daemon) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := d.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// doJSON sends a request and decodes the response body into out (when
// non-nil), returning the status code.
func doJSON(t *testing.T, method, url string, body any, out any) int {
	t.Helper()
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("%s %s: decode %q: %v", method, url, data, err)
		}
	}
	return resp.StatusCode
}

// pollOp polls an operation until it is terminal.
func pollOp(t *testing.T, base, id string) Operation {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		var op Operation
		if code := doJSON(t, http.MethodGet, base+"/v1/operations/"+id, nil, &op); code != http.StatusOK {
			t.Fatalf("GET operation %s: status %d", id, code)
		}
		if terminalStatus(op.Status) {
			return op
		}
		if time.Now().After(deadline) {
			t.Fatalf("operation %s stuck in %s", id, op.Status)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

const multiStageDockerfile = `FROM centos:7 AS build
RUN yum install -y openssh
RUN mkdir -p /opt && echo solver > /opt/solver

FROM alpine:3.19
COPY --from=build /opt/solver /app/solver
RUN echo ready > /ready
`

// TestDaemonLifecycle is the tentpole's e2e pass: POST a multi-stage
// build, poll it to success, see the tag in /v1/images — then POST the
// identical build again and get a fully-cached replay (executed=0).
func TestDaemonLifecycle(t *testing.T) {
	d, srv := startDaemon(t, Config{Jobs: 2})
	req := BuildRequest{
		Tag:        "e2e:latest",
		Dockerfile: multiStageDockerfile,
		StageJobs:  2,
	}

	var op Operation
	if code := doJSON(t, http.MethodPost, srv.URL+"/v1/builds", req, &op); code != http.StatusAccepted {
		t.Fatalf("POST /v1/builds: status %d", code)
	}
	if op.ID == "" || !(op.Status == StatusQueued || op.Status == StatusRunning) {
		t.Fatalf("unexpected initial operation: %+v", op)
	}
	fin := pollOp(t, srv.URL, op.ID)
	if fin.Status != StatusSucceeded {
		t.Fatalf("operation %s: status %s, error %q", op.ID, fin.Status, fin.Error)
	}
	if fin.Result == nil || fin.Result.Executed == 0 {
		t.Fatalf("cold build should execute instructions: %+v", fin.Result)
	}
	if fin.Result.StagesBuilt == 0 {
		t.Fatalf("multi-stage build reported no stages: %+v", fin.Result)
	}
	if fin.Transcript == "" {
		t.Fatal("operation should carry a transcript")
	}
	if fin.StartedAt == "" || fin.FinishedAt == "" {
		t.Fatalf("terminal operation missing timestamps: %+v", fin)
	}

	var imgs ImagesResponse
	if code := doJSON(t, http.MethodGet, srv.URL+"/v1/images", nil, &imgs); code != http.StatusOK {
		t.Fatalf("GET /v1/images: status %d", code)
	}
	found := false
	for _, tag := range imgs.Tags {
		if tag == "e2e:latest" {
			found = true
		}
	}
	if !found {
		t.Fatalf("tag e2e:latest not in %v", imgs.Tags)
	}

	// Identical POST: everything replays from the shared cache.
	var op2 Operation
	if code := doJSON(t, http.MethodPost, srv.URL+"/v1/builds", req, &op2); code != http.StatusAccepted {
		t.Fatalf("second POST: status %d", code)
	}
	fin2 := pollOp(t, srv.URL, op2.ID)
	if fin2.Status != StatusSucceeded {
		t.Fatalf("second operation: status %s, error %q", fin2.Status, fin2.Error)
	}
	if fin2.Result.Executed != 0 {
		t.Fatalf("warm rebuild executed %d instructions, want 0", fin2.Result.Executed)
	}
	if fin2.Result.CacheHits == 0 {
		t.Fatal("warm rebuild should report cache hits")
	}
	if n := d.Pool().InFlight(); n != 0 {
		t.Fatalf("pool InFlight after builds settled = %d, want 0", n)
	}
}

// TestDaemonValidation covers the 4xx surface.
func TestDaemonValidation(t *testing.T) {
	_, srv := startDaemon(t, Config{Jobs: 1})
	cases := []struct {
		req  BuildRequest
		want int
	}{
		{BuildRequest{Dockerfile: "FROM alpine:3.19\n"}, http.StatusBadRequest},
		{BuildRequest{Tag: "x:1"}, http.StatusBadRequest},
		{BuildRequest{Tag: "x:1", Dockerfile: "FROM alpine:3.19\n", Force: "bogus"}, http.StatusBadRequest},
	}
	for i, c := range cases {
		if code := doJSON(t, http.MethodPost, srv.URL+"/v1/builds", c.req, nil); code != c.want {
			t.Errorf("case %d: status %d, want %d", i, code, c.want)
		}
	}
	if code := doJSON(t, http.MethodGet, srv.URL+"/v1/operations/nope", nil, nil); code != http.StatusNotFound {
		t.Errorf("GET unknown operation: status %d, want 404", code)
	}
	if code := doJSON(t, http.MethodPut, srv.URL+"/v1/builds", nil, nil); code != http.StatusMethodNotAllowed {
		t.Errorf("PUT /v1/builds: status %d, want 405", code)
	}
}

// TestDaemonSaturation fills the admission queue and asserts the
// deterministic 429, then releases the gate and asserts everything
// admitted completes and the pool accounting returns to idle — the
// no-goroutine-leak check.
func TestDaemonSaturation(t *testing.T) {
	release := make(chan struct{})
	var releaseOnce sync.Once
	defer releaseOnce.Do(func() { close(release) })
	cfg := Config{
		Jobs:  1,
		Queue: 1, // admission capacity: 2
		stepGate: func(ctx context.Context, ev build.ProgressEvent) {
			select {
			case <-release:
			case <-ctx.Done():
			}
		},
	}
	d, srv := startDaemon(t, cfg)

	req := func(i int) BuildRequest {
		return BuildRequest{
			Tag:        fmt.Sprintf("sat-%d:latest", i),
			Dockerfile: fmt.Sprintf("FROM alpine:3.19\nRUN echo %d > /i\n", i),
		}
	}
	var admitted []string
	for i := 0; i < 2; i++ {
		var op Operation
		if code := doJSON(t, http.MethodPost, srv.URL+"/v1/builds", req(i), &op); code != http.StatusAccepted {
			t.Fatalf("POST %d: status %d, want 202", i, code)
		}
		admitted = append(admitted, op.ID)
	}

	// Capacity is an admission counter, not a started-builds count, so
	// the third POST is rejected no matter how far the first two got.
	var er ErrorResponse
	if code := doJSON(t, http.MethodPost, srv.URL+"/v1/builds", req(2), &er); code != http.StatusTooManyRequests {
		t.Fatalf("overflow POST: status %d, want 429", code)
	}
	if er.Error == "" {
		t.Fatal("429 should carry an error body")
	}

	var st Stats
	if code := doJSON(t, http.MethodGet, srv.URL+"/v1/stats", nil, &st); code != http.StatusOK {
		t.Fatalf("GET /v1/stats: status %d", code)
	}
	if st.Active != 2 || st.QueueCap != 2 {
		t.Fatalf("stats active=%d queueCap=%d, want 2/2", st.Active, st.QueueCap)
	}

	releaseOnce.Do(func() { close(release) })
	for _, id := range admitted {
		if fin := pollOp(t, srv.URL, id); fin.Status != StatusSucceeded {
			t.Fatalf("operation %s: status %s, error %q", id, fin.Status, fin.Error)
		}
	}

	// Settled operations return their admission slots: the next POST is
	// accepted and the pool is idle.
	var op Operation
	if code := doJSON(t, http.MethodPost, srv.URL+"/v1/builds", req(3), &op); code != http.StatusAccepted {
		t.Fatalf("post-release POST: status %d, want 202", code)
	}
	if fin := pollOp(t, srv.URL, op.ID); fin.Status != StatusSucceeded {
		t.Fatalf("post-release operation: %s (%s)", fin.Status, fin.Error)
	}
	waitIdle(t, d)
}

// waitIdle asserts the pool's in-flight accounting returns to zero.
func waitIdle(t *testing.T, d *Daemon) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for d.Pool().InFlight() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("pool still reports %d in-flight jobs", d.Pool().InFlight())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestDaemonCancelRunning DELETEs a running operation and asserts the
// build stops within one instruction boundary — the cancel_test contract
// driven over HTTP.
func TestDaemonCancelRunning(t *testing.T) {
	started := make(chan struct{})
	var startOnce sync.Once
	var boundaries atomic.Int64
	cfg := Config{
		Jobs: 1,
		stepGate: func(ctx context.Context, ev build.ProgressEvent) {
			boundaries.Add(1)
			startOnce.Do(func() { close(started) })
			<-ctx.Done()
		},
	}
	d, srv := startDaemon(t, cfg)

	var op Operation
	req := BuildRequest{Tag: "victim:latest", Dockerfile: "FROM alpine:3.19\nRUN echo a > /a\nRUN echo b > /b\n"}
	if code := doJSON(t, http.MethodPost, srv.URL+"/v1/builds", req, &op); code != http.StatusAccepted {
		t.Fatalf("POST: status %d", code)
	}
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("build never reached an instruction boundary")
	}

	if code := doJSON(t, http.MethodDelete, srv.URL+"/v1/operations/"+op.ID, nil, nil); code != http.StatusAccepted {
		t.Fatalf("DELETE: status %d, want 202", code)
	}
	fin := pollOp(t, srv.URL, op.ID)
	if fin.Status != StatusCancelled {
		t.Fatalf("cancelled operation: status %s, error %q", fin.Status, fin.Error)
	}
	// Gated at the first boundary and cancelled there: exactly one
	// boundary crossed, nothing executed.
	if n := boundaries.Load(); n != 1 {
		t.Fatalf("build crossed %d boundaries after cancel, want 1", n)
	}
	if fin.Result == nil {
		t.Fatal("cancelled in-flight operation should carry its partial result")
	}
	if fin.Result.Executed != 0 {
		t.Fatalf("cancelled build executed %d instructions, want 0", fin.Result.Executed)
	}

	// A second DELETE races a terminal operation: 409.
	if code := doJSON(t, http.MethodDelete, srv.URL+"/v1/operations/"+op.ID, nil, nil); code != http.StatusConflict {
		t.Fatalf("DELETE terminal operation: status %d, want 409", code)
	}
	waitIdle(t, d)
}

// TestDaemonCancelQueued cancels an operation still waiting behind the
// single worker: it settles cancelled without ever running.
func TestDaemonCancelQueued(t *testing.T) {
	release := make(chan struct{})
	var releaseOnce sync.Once
	defer releaseOnce.Do(func() { close(release) })
	cfg := Config{
		Jobs:  1,
		Queue: 2,
		stepGate: func(ctx context.Context, ev build.ProgressEvent) {
			select {
			case <-release:
			case <-ctx.Done():
			}
		},
	}
	d, srv := startDaemon(t, cfg)

	var blocker, queued Operation
	if code := doJSON(t, http.MethodPost, srv.URL+"/v1/builds",
		BuildRequest{Tag: "blocker:1", Dockerfile: "FROM alpine:3.19\nRUN echo a > /a\n"}, &blocker); code != http.StatusAccepted {
		t.Fatalf("POST blocker: status %d", code)
	}
	if code := doJSON(t, http.MethodPost, srv.URL+"/v1/builds",
		BuildRequest{Tag: "queued:1", Dockerfile: "FROM alpine:3.19\nRUN echo q > /q\n"}, &queued); code != http.StatusAccepted {
		t.Fatalf("POST queued: status %d", code)
	}

	if code := doJSON(t, http.MethodDelete, srv.URL+"/v1/operations/"+queued.ID, nil, nil); code != http.StatusAccepted {
		t.Fatalf("DELETE queued: status %d, want 202", code)
	}
	fin := pollOp(t, srv.URL, queued.ID)
	if fin.Status != StatusCancelled {
		t.Fatalf("queued operation: status %s, want cancelled", fin.Status)
	}
	if fin.Result != nil {
		t.Fatalf("never-started operation should have no result: %+v", fin.Result)
	}

	releaseOnce.Do(func() { close(release) })
	if fin := pollOp(t, srv.URL, blocker.ID); fin.Status != StatusSucceeded {
		t.Fatalf("blocker: status %s, error %q", fin.Status, fin.Error)
	}
	waitIdle(t, d)
}

// TestDaemonDrainRejects503 asserts the drain contract: once Shutdown
// begins, new POSTs get 503 while in-flight builds run to completion.
func TestDaemonDrainRejects503(t *testing.T) {
	release := make(chan struct{})
	var releaseOnce sync.Once
	defer releaseOnce.Do(func() { close(release) })
	cfg := Config{
		Jobs: 1,
		stepGate: func(ctx context.Context, ev build.ProgressEvent) {
			select {
			case <-release:
			case <-ctx.Done():
			}
		},
	}
	d, srv := startDaemon(t, cfg)

	var op Operation
	if code := doJSON(t, http.MethodPost, srv.URL+"/v1/builds",
		BuildRequest{Tag: "drain:1", Dockerfile: "FROM alpine:3.19\nRUN echo a > /a\n"}, &op); code != http.StatusAccepted {
		t.Fatalf("POST: status %d", code)
	}

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		done <- d.Shutdown(ctx)
	}()

	// Draining flips synchronously under the daemon lock; poll stats
	// until the handler observes it, then the POST rejection is
	// deterministic.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var st Stats
		doJSON(t, http.MethodGet, srv.URL+"/v1/stats", nil, &st)
		if st.Draining {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon never reported draining")
		}
		time.Sleep(time.Millisecond)
	}
	if code := doJSON(t, http.MethodPost, srv.URL+"/v1/builds",
		BuildRequest{Tag: "late:1", Dockerfile: "FROM alpine:3.19\n"}, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("POST during drain: status %d, want 503", code)
	}

	releaseOnce.Do(func() { close(release) })
	if err := <-done; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// The in-flight build was drained, not cancelled.
	fin := pollOp(t, srv.URL, op.ID)
	if fin.Status != StatusSucceeded {
		t.Fatalf("drained operation: status %s, error %q", fin.Status, fin.Error)
	}
}
