package build

import (
	"strings"
	"testing"

	"repro/internal/image"
	"repro/internal/pkgmgr"
	"repro/internal/vfs"
)

// Cache correctness: identical rebuilds replay every cacheable step,
// mid-Dockerfile edits invalidate the suffix, and the options that change
// build behaviour participate in the key.

const cachedDockerfile = `FROM centos:7
RUN yum install -y openssh
COPY conf.txt /etc/app.conf
RUN echo tuned > /etc/tuned
`

func cacheOpts(t *testing.T) Options {
	t.Helper()
	w, s := fixtures(t)
	return Options{
		World: w, Store: s, Force: ForceSeccomp, Cache: NewCache(),
		Context: map[string][]byte{"conf.txt": []byte("threads=8\n")},
		Tag:     "cached:1",
	}
}

func TestCacheSecondBuildAllHits(t *testing.T) {
	opt := cacheOpts(t)
	first, _ := mustBuild(t, cachedDockerfile, opt)
	if first.CacheHits != 0 {
		t.Fatalf("cold build reported %d hits", first.CacheHits)
	}
	second, _ := mustBuild(t, cachedDockerfile, opt)
	// Two RUNs + one COPY are the cacheable steps.
	if second.CacheHits != 3 {
		t.Fatalf("warm build CacheHits = %d, want 3", second.CacheHits)
	}
	// Replaying skips the emulated installs entirely: the only faked
	// syscall left is the filter's kexec_load self-test, and the modeled
	// time collapses.
	if second.Counters.Faked > 1 {
		t.Errorf("warm build faked %d syscalls; cached RUNs must not execute", second.Counters.Faked)
	}
	if second.VirtualNanos >= first.VirtualNanos {
		t.Errorf("warm build modeled time %d >= cold %d", second.VirtualNanos, first.VirtualNanos)
	}
	if len(second.Image.Layers) != len(first.Image.Layers) {
		t.Errorf("layer counts differ: %d != %d", len(second.Image.Layers), len(first.Image.Layers))
	}
	// Replayed layers are the recorded bytes: digests match exactly.
	for i := range first.Image.Layers {
		if second.Image.Layers[i].Digest != first.Image.Layers[i].Digest {
			t.Errorf("layer %d digest drifted on replay: %s != %s",
				i, second.Image.Layers[i].Digest, first.Image.Layers[i].Digest)
		}
	}
	// The replayed image carries identical content.
	fs, _ := second.Image.Flatten()
	rc := vfs.RootContext()
	if b, e := fs.ReadFile(rc, "/etc/app.conf"); !e.Ok() || string(b) != "threads=8\n" {
		t.Errorf("/etc/app.conf = %q %v", b, e)
	}
	if !fs.Exists(rc, "/usr/libexec/openssh/ssh-keysign") {
		t.Error("cached RUN layer lost the installed payload")
	}
}

func TestCacheMidEditInvalidatesSuffix(t *testing.T) {
	opt := cacheOpts(t)
	mustBuild(t, cachedDockerfile, opt)

	// Change the COPY'd content: the first RUN stays warm, the COPY and
	// the following RUN must re-execute.
	opt.Context = map[string][]byte{"conf.txt": []byte("threads=64\n")}
	res, _ := mustBuild(t, cachedDockerfile, opt)
	if res.CacheHits != 1 {
		t.Fatalf("CacheHits = %d, want 1 (only the leading RUN)", res.CacheHits)
	}
	fs, _ := res.Image.Flatten()
	if b, _ := fs.ReadFile(vfs.RootContext(), "/etc/app.conf"); string(b) != "threads=64\n" {
		t.Errorf("stale COPY content: %q", b)
	}

	// Editing the text of the second RUN has the same suffix effect.
	edited := strings.Replace(cachedDockerfile, "echo tuned", "echo retuned", 1)
	res2, _ := mustBuild(t, edited, opt)
	if res2.CacheHits != 2 {
		t.Fatalf("CacheHits = %d, want 2 (RUN+COPY warm, edited RUN cold)", res2.CacheHits)
	}
}

func TestCacheKeyIncludesAptWorkaround(t *testing.T) {
	w, s := fixtures(t)
	cache := NewCache()
	text := "FROM debian:12\nRUN apt-get install -y curl\n"
	opt := Options{World: w, Store: s, Force: ForceSeccomp, Cache: cache, Tag: "apt:1"}
	mustBuild(t, text, opt)

	// Disabling the workaround must not replay the rewritten RUN: the
	// build re-executes (and correctly fails at apt's verification).
	opt.DisableAptWorkaround = true
	res, _, _ := mustFail(t, text, opt)
	if res.CacheHits != 0 {
		t.Fatalf("DisableAptWorkaround must change the cache key, got %d hits", res.CacheHits)
	}
}

func TestCacheKeyIncludesForceMode(t *testing.T) {
	w, s := fixtures(t)
	cache := NewCache()
	text := "FROM centos:7\nRUN yum install -y openssh\n"
	mustBuild(t, text, Options{World: w, Store: s, Force: ForceSeccomp, Cache: cache, Tag: "a"})
	// A different emulation mode must not reuse seccomp's layers — under
	// ForceNone this build must still fail.
	res, _, _ := mustFail(t, text, Options{World: w, Store: s, Force: ForceNone, Cache: cache, Tag: "b"})
	if res.CacheHits != 0 {
		t.Fatalf("force mode must participate in the key, got %d hits", res.CacheHits)
	}
}

func TestCacheStats(t *testing.T) {
	opt := cacheOpts(t)
	mustBuild(t, cachedDockerfile, opt)
	hits, misses := opt.Cache.Stats()
	if hits != 0 || misses != 3 {
		t.Fatalf("cold stats = %d/%d, want 0/3", hits, misses)
	}
	mustBuild(t, cachedDockerfile, opt)
	hits, misses = opt.Cache.Stats()
	if hits != 3 || misses != 3 {
		t.Fatalf("warm stats = %d/%d, want 3/3", hits, misses)
	}
	if opt.Cache.Len() != 3 {
		t.Fatalf("Len = %d, want 3", opt.Cache.Len())
	}
}

func TestCacheSharedAcrossStores(t *testing.T) {
	// The same Dockerfile against a fresh world/store still hits: keys
	// are content-addressed, not store-identity-addressed.
	cache := NewCache()
	w1, s1 := fixtures(t)
	mustBuild(t, cachedDockerfile, Options{
		World: w1, Store: s1, Force: ForceSeccomp, Cache: cache,
		Context: map[string][]byte{"conf.txt": []byte("threads=8\n")}, Tag: "x"})
	w2, s2 := fixtures(t)
	res, _ := mustBuild(t, cachedDockerfile, Options{
		World: w2, Store: s2, Force: ForceSeccomp, Cache: cache,
		Context: map[string][]byte{"conf.txt": []byte("threads=8\n")}, Tag: "y"})
	if res.CacheHits != 3 {
		t.Fatalf("CacheHits = %d, want 3", res.CacheHits)
	}
}

func TestCacheKeyIncludesBaseImageContent(t *testing.T) {
	// Retagging different bytes under the same name must not replay
	// stale layers: the seed folds in the base's layer digests.
	opt := cacheOpts(t)
	mustBuild(t, cachedDockerfile, opt)

	w2, s2 := fixtures(t)
	img, _ := w2.BaseImage(pkgmgr.DistroCentOS7, "centos:7")
	fs, _ := img.Flatten()
	fs.WriteFile(vfs.RootContext(), "/etc/os-release", []byte("CentOS 7.9.2010\n"), 0o644, 0, 0)
	changed, err := image.FromFS("centos:7", fs, img.Config)
	if err != nil {
		t.Fatal(err)
	}
	s2.Put(changed)

	opt.World, opt.Store = w2, s2
	res, _ := mustBuild(t, cachedDockerfile, opt)
	if res.CacheHits != 0 {
		t.Fatalf("changed base image must invalidate the cache, got %d hits", res.CacheHits)
	}
}

func TestCacheKeyIncludesShell(t *testing.T) {
	// Changing SHELL must invalidate later shell-form RUNs even when
	// their text is identical.
	w, s := fixtures(t)
	cache := NewCache()
	mustBuild(t, "FROM alpine:3.19\nRUN echo made > /p\n",
		Options{World: w, Store: s, Cache: cache, Tag: "a"})
	res, _ := mustBuild(t, "FROM alpine:3.19\nSHELL [\"/bin/sh\", \"-c\"]\nRUN echo made > /p\n",
		Options{World: w, Store: s, Cache: cache, Tag: "b"})
	if res.CacheHits != 0 {
		t.Fatalf("SHELL must participate in the key, got %d hits", res.CacheHits)
	}
}
