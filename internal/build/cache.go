package build

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/image"
)

// Cache is the per-instruction build cache. Keys are content-addressed
// chains: each instruction's key folds in the full prefix of the build —
// base image, force mode, filter configuration, the apt-workaround flag,
// every earlier instruction and the digests of COPY sources — so editing
// a mid-Dockerfile step invalidates that step and everything after it,
// while leaving earlier steps warm.
//
// A hit replays the recorded filesystem layer instead of executing the
// instruction; the expensive RUNs (package installs under emulation) are
// skipped entirely on warm rebuilds.
type Cache struct {
	mu      sync.Mutex
	entries map[string]cacheEntry
	hits    int
	misses  int
}

// cacheEntry is one completed instruction: the packed layer it produced
// (nil if it changed nothing) and the apt-workaround rewrites it counted.
type cacheEntry struct {
	layer    []byte
	modified int
}

// NewCache creates an empty instruction cache.
func NewCache() *Cache {
	return &Cache{entries: map[string]cacheEntry{}}
}

// Stats reports lifetime hit/miss totals across all builds sharing the
// cache.
func (c *Cache) Stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len reports the number of cached instructions.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

func (c *Cache) get(key string) (cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ent, ok := c.entries[key]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return ent, ok
}

func (c *Cache) put(key string, ent cacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries[key] = ent
}

// chain folds a step descriptor into a running content-addressed key.
func chain(prev, desc string) string {
	h := sha256.Sum256([]byte(prev + "\x1f" + desc))
	return hex.EncodeToString(h[:])
}

// chainStart seeds the key chain with everything that shapes a build
// before its first instruction runs: the base image's identity *and
// content* (its layer digests — retagging different bytes under the same
// name must not replay stale layers), plus every option that changes
// execution.
func chainStart(base *image.Image, distro string, opt Options) string {
	parts := []string{
		"base=" + base.Name,
		"distro=" + distro,
		"force=" + opt.Force.String(),
		fmt.Sprintf("apt-workaround-disabled=%v", opt.DisableAptWorkaround),
		"filter=" + filterKey(opt.FilterConfig),
	}
	for _, l := range base.Layers {
		parts = append(parts, "layer="+l.Digest)
	}
	return chain("", strings.Join(parts, "\x1f"))
}

// filterKey renders a filter configuration deterministically (the struct
// holds arch pointers, so %v would not be stable).
func filterKey(cfg core.Config) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s/%s/errno=%d/idnotif=%v/killarch=%v",
		cfg.Variant, cfg.Strategy, cfg.FakeErrno, cfg.IDConsistency, cfg.KillUnknownArch)
	for _, a := range cfg.Arches {
		b.WriteString("/" + a.Name)
	}
	return b.String()
}
