package build

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"strings"
	"sync"

	"repro/internal/cas"
	"repro/internal/core"
	"repro/internal/image"
)

// Cache is the per-instruction build cache. Keys are content-addressed
// chains: each instruction's key folds in the full prefix of the build —
// base image, force mode, filter configuration, the apt-workaround flag,
// every earlier instruction, the digests of COPY sources and the chain
// digest of a COPY --from source image — so editing a mid-Dockerfile step
// invalidates that step and everything after it (editing an earlier stage
// invalidates its dependents' COPY --from steps), while leaving earlier
// steps warm.
//
// A hit replays the recorded filesystem layer instead of executing the
// instruction; the expensive RUNs (package installs under emulation) are
// skipped entirely on warm rebuilds.
//
// The cache is safe for concurrent builders (build.Pool) and deduplicates
// in-flight work: when two builders miss on the same key at the same
// time, exactly one executes the instruction; the other blocks until the
// result is recorded and then replays it as an ordinary hit, so the
// expensive step runs once however many builders race on it.
// A persistent cache (NewPersistentCache) is additionally backed by a
// cas.Dir: completed steps write through to the journal and blob store,
// and the journal's records rehydrate lazily — a key recorded by an
// earlier process costs one digest-verified blob read on first hit, and
// nothing at all if the build never reaches it.
type Cache struct {
	// dir is set once at construction (nil for a purely in-memory
	// cache) and never reassigned, so it lives above mu: loadStep reads
	// it without the lock while holding the key's flight.
	dir *cas.Dir

	mu      sync.Mutex
	entries map[string]cacheEntry
	flights map[string]*stepFlight
	hits    int
	misses  int

	lazy map[string]cas.Step // persisted entries not yet loaded

	// Write-through failures aggregate here (capped like the image
	// store's backing errors; overflow counted in persistDropped).
	persistErrs    []error
	persistDropped int
}

// persistErrCap bounds the aggregated write-through failure list.
const persistErrCap = 32

// stepFlight is one instruction being executed by some builder right now.
// Waiters block on done; the outcome field is written before the channel
// closes. An abandoned fill (the builder's step failed) wakes waiters with
// filled=false and they retry — one of them becomes the new filler.
type stepFlight struct {
	done   chan struct{}
	ent    cacheEntry
	filled bool
}

// cacheEntry is one completed instruction: the packed layer it produced
// (nil if it changed nothing) and the apt-workaround rewrites it counted.
type cacheEntry struct {
	layer    []byte
	modified int
}

// NewCache creates an empty instruction cache.
func NewCache() *Cache {
	return &Cache{entries: map[string]cacheEntry{}, flights: map[string]*stepFlight{}}
}

// NewPersistentCache creates an instruction cache backed by an open
// cas.Dir: every entry the Dir's journal holds is available (rehydrated
// lazily on first hit), and every step completed through this cache is
// persisted for the next invocation. Share one persistent cache across
// the builds of a process exactly like an in-memory one; it is equally
// safe under build.Pool.
func NewPersistentCache(d *cas.Dir) *Cache {
	c := NewCache()
	c.dir = d
	c.lazy = map[string]cas.Step{}
	for _, st := range d.Steps() {
		c.lazy[st.Key] = st
	}
	return c
}

// PersistErr reports the write-through failures as one joined error, nil
// when every completed step reached the backing store. A failure leaves
// the on-disk cache colder, never wrong.
func (c *Cache) PersistErr() error {
	return errors.Join(c.PersistErrs()...)
}

// PersistErrs returns every recorded write-through failure (a copy),
// plus a trailing summary entry when failures past the cap were dropped.
func (c *Cache) PersistErrs() []error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.persistErrs) == 0 {
		return nil
	}
	out := append([]error(nil), c.persistErrs...)
	if c.persistDropped > 0 {
		out = append(out, fmt.Errorf("build: %d further persistence failure(s) dropped", c.persistDropped))
	}
	return out
}

// notePersistErrLocked records one write-through failure. Callers hold c.mu.
func (c *Cache) notePersistErrLocked(err error) {
	if err == nil {
		return
	}
	if len(c.persistErrs) >= persistErrCap {
		c.persistDropped++
		return
	}
	c.persistErrs = append(c.persistErrs, err)
}

// loadStep reads a persisted entry's layer blob (digest-verified by the
// Dir on the way out). Called WITHOUT c.mu held — this is disk I/O, and
// the loading goroutine holds the key's flight instead, so other builders
// only wait on it for this key, never for the whole cache. A blob that
// fails verification was quarantined by the Dir; the entry is dropped and
// the step re-executes as an ordinary miss.
func (c *Cache) loadStep(ctx context.Context, st cas.Step) (cacheEntry, bool) {
	ent := cacheEntry{modified: st.Modified}
	if st.Layer != "" {
		var data []byte
		err := cas.DefaultRetry.Do(ctx, func() error {
			var rerr error
			data, rerr = c.dir.Blob(ctx, st.Layer)
			return rerr
		})
		if err != nil {
			return cacheEntry{}, false
		}
		ent.layer = data
	}
	return ent, true
}

// Stats reports lifetime hit/miss totals across all builds sharing the
// cache. Every replay — direct or after waiting out another builder's
// in-flight execution — counts one hit; every fill counts one miss, so
// hits+misses equals the cacheable steps attempted and hits equals the
// sum of Result.CacheHits across the sharing builds.
func (c *Cache) Stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len reports the number of cached instructions, including persisted
// entries not yet rehydrated.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries) + len(c.lazy)
}

// getOrBegin is the single entry point for a builder reaching a cacheable
// step. Outcomes:
//
//	hit  == true:  ent is the recorded step; replay it.
//	fill == true:  the caller owns the execution and MUST finish with
//	               either complete (success) or abandon (failure).
//
// A caller that finds the key in flight blocks until the filler finishes;
// a completed fill returns as a hit, an abandoned one loops and contends
// to become the next filler.
func (c *Cache) getOrBegin(ctx context.Context, key string) (ent cacheEntry, hit, fill bool) {
	for {
		c.mu.Lock()
		if ent, ok := c.entries[key]; ok {
			c.hits++
			mCacheHits.Inc()
			c.mu.Unlock()
			return ent, true, false
		}
		if st, ok := c.lazy[key]; ok {
			// Rehydrate a persisted entry. The blob read happens outside
			// the lock under a flight for this key: concurrent builders on
			// the same key wait and replay, everyone else proceeds.
			delete(c.lazy, key)
			f := &stepFlight{done: make(chan struct{})}
			c.flights[key] = f
			c.mu.Unlock()
			ent, loaded := c.loadStep(ctx, st)
			c.mu.Lock()
			delete(c.flights, key)
			if loaded {
				c.entries[key] = ent
				c.hits++
				mCacheHits.Inc()
				c.mu.Unlock()
				f.ent, f.filled = ent, true
				close(f.done)
				return ent, true, false
			}
			// Corrupt on disk: wake any waiters unfilled and contend with
			// them for an ordinary fill.
			c.mu.Unlock()
			close(f.done)
			continue
		}
		if f, inflight := c.flights[key]; inflight {
			c.mu.Unlock()
			<-f.done
			if f.filled {
				c.mu.Lock()
				c.hits++
				mCacheHits.Inc()
				c.mu.Unlock()
				return f.ent, true, false
			}
			continue // abandoned: contend for the fill
		}
		c.flights[key] = &stepFlight{done: make(chan struct{})}
		c.misses++
		mCacheMisses.Inc()
		c.mu.Unlock()
		return cacheEntry{}, false, true
	}
}

// complete records a finished step and releases any builders waiting on
// it. The layer bytes are copied in: entries are shared across builds and
// must stay immutable however callers treat the slices they recorded. A
// persistent cache also writes the step through to its backing store; a
// write-through failure is parked in PersistErr, never surfaced to the
// build.
func (c *Cache) complete(ctx context.Context, key string, ent cacheEntry) {
	if ent.layer != nil {
		ent.layer = append([]byte(nil), ent.layer...)
	}
	c.mu.Lock()
	c.entries[key] = ent
	f := c.flights[key]
	delete(c.flights, key)
	c.mu.Unlock()
	if f != nil {
		f.ent, f.filled = ent, true
		close(f.done)
	}
	if c.dir != nil {
		err := cas.DefaultRetry.Do(ctx, func() error {
			return c.dir.PutStep(ctx, key, ent.layer, ent.modified)
		})
		if err != nil {
			c.mu.Lock()
			c.notePersistErrLocked(err)
			c.mu.Unlock()
		}
	}
}

// abandon gives up a fill obtained from getOrBegin — the step failed, so
// there is nothing to record. Waiters wake and retry.
func (c *Cache) abandon(key string) {
	c.mu.Lock()
	f := c.flights[key]
	delete(c.flights, key)
	c.mu.Unlock()
	if f != nil {
		close(f.done)
	}
}

// chain folds a step descriptor into a running content-addressed key.
//
//chlint:keyroot
func chain(prev, desc string) string {
	h := sha256.Sum256([]byte(prev + "\x1f" + desc))
	return hex.EncodeToString(h[:])
}

// chainStart seeds the key chain with everything that shapes a build
// before its first instruction runs: the base image's identity *and
// content* (its layer digests — retagging different bytes under the same
// name must not replay stale layers), plus every option that changes
// execution.
//
//chlint:keyroot
func chainStart(base *image.Image, distro string, opt Options) string {
	parts := []string{
		"base=" + base.Name,
		"distro=" + distro,
		"force=" + opt.Force.String(),
		fmt.Sprintf("apt-workaround-disabled=%v", opt.DisableAptWorkaround),
		"filter=" + filterKey(opt.FilterConfig),
	}
	for _, l := range base.Layers {
		parts = append(parts, "layer="+l.Digest)
	}
	return chain("", strings.Join(parts, "\x1f"))
}

// filterKey renders a filter configuration deterministically (the struct
// holds arch pointers, so %v would not be stable).
//
//chlint:keyroot
func filterKey(cfg core.Config) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s/%s/errno=%d/idnotif=%v/killarch=%v",
		cfg.Variant, cfg.Strategy, cfg.FakeErrno, cfg.IDConsistency, cfg.KillUnknownArch)
	for _, a := range cfg.Arches {
		b.WriteString("/" + a.Name)
	}
	return b.String()
}
