// Package build is the Dockerfile build executor — the ch-image analog
// that connects every other layer of the reproduction: it parses with
// internal/dockerfile, boots one simos.Kernel per build, enters a fully
// unprivileged Type III container (internal/container) on a rootfs
// flattened from the image store, installs the selected root-emulation
// mechanism (internal/rootemu: the paper's seccomp filter, or the
// fakeroot/proot baselines), runs RUN instructions through internal/shell
// and the distribution package managers (internal/pkgmgr), and commits
// each instruction's filesystem delta as a content-addressed layer
// (internal/tarutil → internal/image).
//
// The layering mirrors the paper's §4 architecture:
//
//	dockerfile → stage DAG → pool → build → rootemu → simos/vfs → image
//
// Multi-stage Dockerfiles route through the BuildStages driver (see
// stages.go): reachable stages are scheduled in dependency order on
// build.Pool, COPY --from materialises files from earlier stages'
// flattened trees, and only the final stage is tagged.
//
// Because the builder is unprivileged, the rootfs is re-owned to the
// invoking user before entry (Charliecloud's unpack behaviour); inside
// the container that user is root in a single-ID Type III mapping, and
// whether privileged package installs succeed depends entirely on the
// Force mode — the paper's Figures 1 and 2 in executable form.
package build

import (
	"context"
	"fmt"
	"io"
	"path"
	"sort"
	"strings"
	"time"

	"repro/internal/baseline"
	"repro/internal/cas"
	"repro/internal/container"
	"repro/internal/core"
	"repro/internal/dockerfile"
	"repro/internal/errno"
	"repro/internal/image"
	"repro/internal/obs"
	"repro/internal/pkgmgr"
	"repro/internal/rootemu"
	"repro/internal/simos"
	"repro/internal/tarutil"
	"repro/internal/vfs"
)

// ForceMode selects the root-emulation mechanism installed on the build
// container, ch-image's --force flag.
type ForceMode int

const (
	// ForceNone runs with no emulation: privileged syscalls fail as the
	// kernel dictates (Fig. 1).
	ForceNone ForceMode = iota
	// ForceSeccomp installs the paper's zero-consistency seccomp filter
	// (Fig. 2).
	ForceSeccomp
	// ForceFakeroot attaches the LD_PRELOAD fakeroot baseline (§3.1).
	ForceFakeroot
	// ForceProot attaches the ptrace PRoot baseline (§3.2).
	ForceProot
)

// String renders the mode as its ch-image --force flag value.
func (m ForceMode) String() string {
	switch m {
	case ForceSeccomp:
		return "seccomp"
	case ForceFakeroot:
		return "fakeroot"
	case ForceProot:
		return "proot"
	}
	return "none"
}

// Options configures one build.
type Options struct {
	// Tag names the result image in the store ("name:tag").
	Tag string

	// Force selects the root-emulation mechanism.
	Force ForceMode

	// Store resolves FROM references and receives the result image.
	Store *image.Store

	// World supplies the distribution toolchains and repositories.
	World *pkgmgr.World

	// Cache, when non-nil, enables the per-instruction build cache;
	// share one across builds for warm rebuilds.
	Cache *Cache

	// CacheDir, when non-empty, names a persistent content-addressed
	// store (internal/cas) opened for this build: Store is backed by it
	// and, when Cache is nil, a persistent instruction cache is created
	// from it — so a second invocation of the same build in a *different
	// process* replays warm from disk. The handle is scoped to the call:
	// Build swaps it in as the Store's backing and restores the previous
	// backing (closing its own handle) before returning — which is why
	// CacheDir must NOT be used by concurrent Builds sharing one Store:
	// the swap/restore pairs interleave and a stale or closed backing can
	// win. Concurrent callers, and callers running many builds (an open
	// is a full fsck pass over the store), should wire persistence once
	// themselves: cas.Open + NewPersistentCache + Store.SetBacking.
	CacheDir string

	// CacheVerify selects how much validation the CacheDir open performs:
	// cas.VerifyFull (the zero value) reads and re-hashes every blob up
	// front; cas.VerifyLazy defers blob validation to first read, making
	// the open O(journal) instead of O(store bytes). Ignored when
	// CacheDir is empty.
	CacheVerify cas.VerifyMode

	// CacheMaxBytes, when > 0, runs a size-budgeted GC on the CacheDir
	// store after the build: least-recently-recorded unpinned entries are
	// evicted until the blob store fits the budget. A GC failure (for
	// example cas.ErrBusy while another process holds the store) does not
	// fail the build; it is recorded as a Store backing error. Ignored
	// when CacheDir is empty.
	CacheMaxBytes int64

	// TargetStage, when non-empty, stops a multi-stage build at the named
	// stage (`ch-image build --target`): that stage — referenced by its AS
	// name or decimal index — becomes the build product, it is tagged, and
	// stages only later stages depend on are never built.
	TargetStage string

	// Context holds the build-context files COPY/ADD resolve against.
	Context map[string][]byte

	// BuildArgs overrides ARG defaults.
	BuildArgs map[string]string

	// Output receives the build transcript (instruction lines plus the
	// stdout/stderr of every RUN). Nil discards.
	Output io.Writer

	// DisableAptWorkaround turns off the §5 RUN rewriting that injects
	// -o APT::Sandbox::User=root into apt command lines under seccomp.
	DisableAptWorkaround bool

	// StageJobs bounds how many independent stages of a multi-stage build
	// run concurrently on the stage pool; <= 0 runs every ready stage at
	// once. Ignored for single-stage builds.
	StageJobs int

	// FilterConfig parameterises the seccomp filter (variant, dispatch
	// strategy, architectures). Zero value is the paper's filter.
	// Ignored unless Force is ForceSeccomp.
	FilterConfig core.Config

	// Tracer, when set, receives one event per simulated syscall.
	Tracer func(simos.TraceEvent)

	// Progress, when set, is called synchronously at every instruction
	// boundary, immediately before the instruction runs, with the build's
	// context — the daemon's per-operation progress feed. The callback
	// must be safe for concurrent use (the stages of a multi-stage build
	// share it), and it must not block without selecting on ctx.Done: the
	// build is parked for as long as the callback runs.
	Progress func(ctx context.Context, ev ProgressEvent)

	// BuildTimeout, when > 0, bounds the whole build: the build's context
	// gains this deadline, and a build that overruns it fails at the next
	// instruction boundary with an error wrapping
	// context.DeadlineExceeded (`ch-image build --timeout`).
	BuildTimeout time.Duration

	// InstrTimeout, when > 0, bounds each cacheable instruction: an
	// instruction that overruns it fails the build with a deadline error
	// naming the instruction. The whole-build deadline, when also set,
	// still applies on top.
	InstrTimeout time.Duration

	// testStepGate, when set, is called before every instruction with the
	// build's context and the instruction name. Tests use it as a
	// rendezvous point to hold builds at a known boundary; the gate must
	// select on ctx.Done so a cancelled build can leave.
	testStepGate func(ctx context.Context, cmd string)
}

// ProgressEvent is one instruction boundary of a running build, reported
// through Options.Progress. Step counts within one stage's instruction
// sequence; concurrent stages of a multi-stage build interleave their
// events.
type ProgressEvent struct {
	// Step is the 1-based index of the instruction about to run.
	Step int

	// Total is the length of the stage's instruction sequence.
	Total int

	// Cmd is the instruction name (FROM, RUN, COPY, ...).
	Cmd string

	// Raw is the instruction's argument text.
	Raw string
}

// Result reports what a build did.
type Result struct {
	// Image is the built image (also tagged into Options.Store on
	// success).
	Image *image.Image

	// CacheHits counts instructions replayed from the cache.
	CacheHits int

	// Executed counts cacheable instructions (RUN, COPY, ADD) that
	// actually executed rather than replaying from the cache. A fully
	// warm rebuild reports Executed == 0 — the `make cache-smoke`
	// assertion.
	Executed int

	// ModifiedRuns counts RUN instructions rewritten by the apt
	// workaround (the Fig. 2 "modified N RUN instructions" report).
	ModifiedRuns int

	// FakerootRecords is the consistent-emulation state size after the
	// build: ownership records kept by the fakeroot or proot baseline.
	// Always zero for the seccomp method (E9).
	FakerootRecords int

	// Counters snapshots the kernel's syscall accounting.
	Counters simos.CounterSnapshot

	// VirtualNanos is the modeled time the build charged (the E8/E15
	// metric; see simos.CostModel).
	VirtualNanos int64

	// StagesBuilt counts the stages a multi-stage build executed
	// (including cache-replayed ones). Zero for single-stage builds.
	StagesBuilt int

	// StagesSkipped counts the unreferenced stages a multi-stage build
	// pruned without executing. Zero for single-stage builds.
	StagesSkipped int

	// Degraded reports that the build succeeded in memory but some of its
	// persistence — cache write-through or store backing writes — failed.
	// The image is correct and tagged; the on-disk cache is merely colder
	// than it should be. DegradedErrs holds the failures.
	Degraded bool

	// DegradedErrs are the persistence failures behind Degraded: the
	// Cache's write-through errors followed by the Store's backing errors.
	// Nil when Degraded is false.
	DegradedErrs []error
}

// buildUID is the invoking (unprivileged) user every build runs as.
const buildUID = 1000

// Build executes Dockerfile text under opts. Multi-stage Dockerfiles are
// routed through the BuildStages driver, which schedules independent
// stages concurrently on a stage pool and prunes unreferenced ones. The
// returned Result is never nil: on failure it still carries the counters
// and modeled time accrued up to the failing instruction.
func Build(text string, opt Options) (*Result, error) {
	//chlint:allow ctxfirst -- context-free compat wrapper; BuildContext is the real entry point
	return BuildContext(context.Background(), text, opt)
}

// BuildContext is Build under a context: cancelling ctx stops the build
// at its next instruction boundary with an error wrapping ctx's cause,
// and Options.BuildTimeout layers a whole-build deadline on top. A build
// that succeeds but fails to persist — cache write-through or store
// backing errors — still returns nil error, with Result.Degraded set
// (the degraded-operation contract; see docs/cas.md).
func BuildContext(ctx context.Context, text string, opt Options) (res *Result, err error) {
	if opt.BuildTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opt.BuildTimeout)
		defer cancel()
	}
	// Outcome accounting runs after the degraded annotation below (LIFO):
	// classification must observe Result.Degraded.
	defer func() { mBuilds.With(buildOutcome(res, err)).Inc() }()
	// Registered before every cleanup below so it runs after them (LIFO):
	// the degraded annotation must observe persistence failures recorded
	// by the deferred budget GC and the backing restore. The closure reads
	// opt, so the persistent cache installed in the CacheDir block is
	// visible to it.
	defer func() {
		if err == nil && res != nil {
			noteDegraded(res, opt)
		}
	}()
	f, err := dockerfile.Parse(text)
	if err != nil {
		return &Result{}, err
	}
	if len(f.Stages) == 0 {
		// Parseable but FROM-less: an ARG-only Dockerfile.
		return &Result{}, fmt.Errorf("build: no FROM instruction")
	}
	if opt.CacheDir != "" {
		d, _, err := cas.Open(opt.CacheDir, cas.WithVerify(opt.CacheVerify))
		if err != nil {
			return &Result{}, fmt.Errorf("build: cache dir: %w", err)
		}
		// The handle lives for this call only: restore whatever backing
		// the caller had and close ours on the way out, or every Build
		// would leak a journal fd and the store would keep writing through
		// a handle the caller never sees.
		defer d.Close() // LIFO: runs after the backing is restored below
		if opt.Cache == nil {
			opt.Cache = NewPersistentCache(d)
		}
		if opt.Store != nil {
			prev := opt.Store.Backing()
			opt.Store.SetBacking(d)
			defer opt.Store.SetBacking(prev)
		}
		if opt.CacheMaxBytes > 0 {
			// Registered after the backing swap so it runs before the
			// restore (LIFO): the budget applies to the store this build
			// just warmed. GCBacking records failures as backing errors
			// rather than failing the finished build. The GC runs even
			// when the build was cancelled — it is cleanup of a store the
			// build already wrote, not more build work — so it detaches
			// from ctx's cancellation while keeping its values.
			defer func() {
				gcCtx := context.WithoutCancel(ctx)
				if opt.Store != nil && opt.Store.Backing() == d {
					opt.Store.GCBacking(gcCtx, cas.Budget{MaxBytes: opt.CacheMaxBytes})
				} else {
					d.GC(gcCtx, cas.Budget{MaxBytes: opt.CacheMaxBytes})
				}
			}()
		}
	}
	if len(f.Stages) > 1 || opt.TargetStage != "" {
		return buildStages(ctx, f, opt)
	}
	res, _, err = buildOneStage(ctx, f, 0, nil, opt)
	return res, err
}

// noteDegraded annotates a successful build with the persistence
// failures its cache and store accrued: the build is correct in memory,
// the disk is merely colder.
func noteDegraded(res *Result, opt Options) {
	var errs []error
	if opt.Cache != nil {
		errs = append(errs, opt.Cache.PersistErrs()...)
	}
	if opt.Store != nil {
		errs = append(errs, opt.Store.BackingErrs()...)
	}
	if len(errs) > 0 {
		res.Degraded = true
		res.DegradedErrs = errs
	}
}

// buildOneStage executes one stage of f (for a single-stage file, the
// whole build): the global ARGs, the stage's FROM and its body. imgs holds
// the completed earlier stage images, indexed by stage; it may be nil when
// f has a single stage. It returns the stage's Result and image.
// Cancelling ctx stops the stage at its next instruction boundary.
func buildOneStage(ctx context.Context, f *dockerfile.File, stage int, imgs []*image.Image, opt Options) (*Result, *image.Image, error) {
	if ctx == nil {
		//chlint:allow ctxfirst -- defensive nil-ctx guard for direct internal callers
		ctx = context.Background()
	}
	ctx, span := obs.StartSpan(ctx, fmt.Sprintf("stage %d (%s)", stage+1, stageLabel(f.Stages[stage])))
	defer span.End()
	b := &builder{
		ctx: ctx, opt: opt, out: opt.Output, res: &Result{},
		file: f, stageIdx: stage, stageImgs: imgs,
	}
	if b.out == nil {
		b.out = io.Discard
	}
	st := f.Stages[stage]
	ins := make([]dockerfile.Instruction, 0, len(f.GlobalArgs)+1+len(st.Body))
	ins = append(ins, f.GlobalArgs...)
	ins = append(ins, st.From)
	ins = append(ins, st.Body...)
	err := b.run(ctx, ins)
	if b.k != nil {
		b.res.Counters = b.k.Snapshot()
		b.res.VirtualNanos = b.k.VirtualNanos()
	}
	if b.fr != nil {
		b.res.FakerootRecords = b.fr.Records()
	}
	if b.pr != nil {
		b.res.FakerootRecords = b.pr.Records()
	}
	return b.res, b.cur, err
}

// builder is the per-stage build state machine (per-build for single-stage
// files).
type builder struct {
	// ctx is the context the current instruction runs under: the build
	// context, narrowed to a per-instruction deadline while a step with
	// Options.InstrTimeout executes. Step handlers pass it to every
	// cache and store operation.
	ctx context.Context

	opt Options
	out io.Writer
	res *Result

	file      *dockerfile.File // the whole parsed Dockerfile
	stageIdx  int              // which of file.Stages this builder executes
	stageImgs []*image.Image   // completed earlier stage images, nil for plain builds

	k  *simos.Kernel
	p  *simos.Proc
	fs *vfs.FS

	cur   *image.Image         // accumulating result image
	snap  *tarutil.Snapshotter // rootfs state as of the last committed step
	vars  map[string]string
	env   map[string]string
	shell []string

	fr *baseline.Fakeroot
	pr *baseline.PRoot

	chainKey string // content-addressed key of everything built so far
}

// run executes the stage's instruction sequence. ctx is checked at every
// instruction boundary: a cancelled or expired build stops before its
// next instruction with an error saying where it stopped, and the layers
// committed so far stay recorded in the cache — a later build resumes
// warm from the boundary.
func (b *builder) run(ctx context.Context, instructions []dockerfile.Instruction) error {
	b.vars = map[string]string{}
	b.env = map[string]string{}
	b.shell = []string{"/bin/sh", "-c"}

	for i, ins := range instructions {
		if gate := b.opt.testStepGate; gate != nil {
			gate(ctx, ins.Cmd)
		}
		// Like the test gate, Progress fires before the boundary's ctx
		// check: a cancelled build's final event names the boundary it
		// stopped at, and a blocking callback doubles as a rendezvous.
		if pr := b.opt.Progress; pr != nil {
			pr(ctx, ProgressEvent{Step: i + 1, Total: len(instructions), Cmd: ins.Cmd, Raw: ins.Raw})
		}
		if cerr := ctx.Err(); cerr != nil {
			return fmt.Errorf("build: interrupted before instruction %d (%s): %w",
				i+1, ins.Cmd, cerr)
		}
		// Narrow the instruction to its own deadline when configured; the
		// step handlers run cache and store operations under b.ctx.
		stepCtx, cancelStep := ctx, context.CancelFunc(func() {})
		if b.opt.InstrTimeout > 0 {
			stepCtx, cancelStep = context.WithTimeout(ctx, b.opt.InstrTimeout)
		}
		stepCtx, span := obs.StartSpan(stepCtx, instrSpanName(ins))
		b.ctx = stepCtx
		fmt.Fprintf(b.out, "%3d %s %s\n", i+1, ins.Cmd, ins.Raw)
		hits0, exec0 := b.res.CacheHits, b.res.Executed
		layers0 := 0
		if b.cur != nil {
			layers0 = len(b.cur.Layers)
		}
		t0 := time.Now()
		var err error
		switch {
		case b.p == nil && ins.Cmd != "FROM" && ins.Cmd != "ARG":
			err = fmt.Errorf("build: line %d: %s before FROM", ins.Line, ins.Cmd)
		default:
			err = b.step(ins)
		}
		mInstructionSeconds.ObserveSince(t0)
		if dh := b.res.CacheHits - hits0; dh > 0 {
			mInstrReplayed.Add(uint64(dh))
			span.Annotate("cache", "hit")
		}
		if dx := b.res.Executed - exec0; dx > 0 {
			mInstrExecuted.Add(uint64(dx))
			span.Annotate("cache", "miss")
		}
		if span != nil && b.cur != nil {
			var committed int64
			for _, l := range b.cur.Layers[min(layers0, len(b.cur.Layers)):] {
				committed += int64(len(l.Data))
			}
			if committed > 0 {
				span.AnnotateInt("bytes", committed)
			}
		}
		// An instruction that ran to completion but overran its own
		// deadline fails the build: the per-instruction budget is a
		// contract, not advice. (The simulated execution cannot block
		// mid-syscall, so the boundary is where the overrun surfaces.)
		if err == nil && stepCtx.Err() != nil && ctx.Err() == nil {
			err = fmt.Errorf("build: line %d: %s exceeded the per-instruction deadline: %w",
				ins.Line, ins.Cmd, stepCtx.Err())
		}
		if err != nil {
			span.Annotate("error", err.Error())
		}
		span.End()
		cancelStep()
		if err != nil {
			return err
		}
	}
	// Out of the loop, operations run under the build context again (the
	// last instruction's deadline no longer applies).
	b.ctx = ctx
	if b.p == nil {
		return fmt.Errorf("build: no FROM instruction")
	}
	b.cur.Config.Env = envList(b.env)
	b.res.Image = b.cur
	if b.opt.Tag != "" && b.opt.Store != nil {
		b.opt.Store.PutContext(ctx, b.cur)
	}
	fmt.Fprintf(b.out, "grown in %d instructions: %s\n", len(instructions), b.cur.Name)
	if b.opt.Force == ForceSeccomp {
		fmt.Fprintf(b.out, "--force=seccomp: modified %d RUN instructions\n", b.res.ModifiedRuns)
	}
	return nil
}

// step dispatches one instruction to its handler. The handler runs under
// b.ctx — the build context, narrowed to the per-instruction deadline
// when Options.InstrTimeout is set.
func (b *builder) step(ins dockerfile.Instruction) error {
	switch ins.Cmd {
	case "FROM":
		return b.stepFrom(ins)
	case "RUN":
		return b.stepRun(ins)
	case "COPY", "ADD":
		return b.stepCopy(ins)
	case "ENV":
		return b.stepEnv(ins)
	case "ARG":
		return b.stepArg(ins)
	case "WORKDIR":
		return b.stepWorkdir(ins)
	case "USER":
		b.cur.Config.User = b.expand(ins.Raw)
	case "LABEL":
		return b.stepLabel(ins)
	case "CMD":
		b.cur.Config.Cmd = b.commandWords(ins)
	case "ENTRYPOINT":
		b.cur.Config.Entrypoint = b.commandWords(ins)
	case "SHELL":
		if len(ins.ExecForm) == 0 {
			return fmt.Errorf("build: line %d: SHELL requires exec form", ins.Line)
		}
		b.shell = ins.ExecForm
		b.chainKey = chain(b.chainKey, "SHELL\x00"+strings.Join(b.shell, "\x00"))
	case "EXPOSE", "VOLUME", "STOPSIGNAL", "HEALTHCHECK", "ONBUILD", "MAINTAINER":
		// Accepted for compatibility; no effect on the simulated image.
	default:
		return fmt.Errorf("build: line %d: unsupported instruction %s", ins.Line, ins.Cmd)
	}
	return nil
}

// stepFrom resolves the base image — an earlier stage's built image or a
// store reference — boots the kernel, enters the Type III container and
// installs the requested root emulation.
func (b *builder) stepFrom(ins dockerfile.Instruction) error {
	if b.p != nil {
		// Cannot happen through Build/BuildStages: the parser splits on
		// every FROM, so each stage body holds none.
		return fmt.Errorf("build: line %d: second FROM in one stage", ins.Line)
	}
	st := b.file.Stages[b.stageIdx]
	ref := b.expand(st.Base)
	var base *image.Image
	if st.BaseStage >= 0 {
		base = b.stageImage(st.BaseStage)
		if base == nil {
			return fmt.Errorf("build: line %d: stage %q not built yet (internal scheduling error)",
				ins.Line, st.Base)
		}
	} else {
		if b.opt.Store == nil {
			return fmt.Errorf("build: no image store configured")
		}
		var ok bool
		base, ok = b.opt.Store.GetContext(b.ctx, ref)
		if !ok {
			// Disambiguate: a cancelled context aborts the backing read,
			// which looks like a miss from here.
			if cerr := b.ctx.Err(); cerr != nil {
				return fmt.Errorf("build: %w", cerr)
			}
			return fmt.Errorf("build: base image %q not in storage", ref)
		}
	}
	if b.opt.World == nil {
		return fmt.Errorf("build: no package world configured")
	}
	distro := base.Config.Distro()
	reg, err := b.opt.World.Toolchain(distro)
	if err != nil {
		return fmt.Errorf("build: line %d: %w", ins.Line, err)
	}

	// Unprivileged unpack: flatten the layers, then re-own everything to
	// the invoking user — exactly what ch-image's storage directory
	// holds, and why the container needs emulation to chown at all. The
	// store memoises the unpacked chain; we get a private clone.
	fs, err := b.opt.Store.FlattenContext(b.ctx, base)
	if err != nil {
		return fmt.Errorf("build: flatten %s: %w", ref, err)
	}
	fs.ChownAll(buildUID, buildUID)

	k := simos.NewKernel()
	k.Tracer = b.opt.Tracer
	p := k.NewInitProc(simos.Mount{FS: vfs.New(), Owner: k.InitNS()}, buildUID, buildUID)
	if err := container.Enter(p, container.Options{Type: container.TypeIII, RootFS: fs}); err != nil {
		return fmt.Errorf("build: container setup: %w", err)
	}
	p.SetRegistry(reg)

	switch b.opt.Force {
	case ForceNone:
	case ForceSeccomp:
		if _, err := rootemu.Install(p, b.opt.FilterConfig); err != nil {
			return fmt.Errorf("build: %w", err)
		}
	case ForceFakeroot:
		b.fr = rootemu.AttachFakeroot(p)
	case ForceProot:
		b.pr = rootemu.AttachPRoot(p)
	default:
		return fmt.Errorf("build: unknown force mode %d", int(b.opt.Force))
	}

	b.k, b.p, b.fs = k, p, fs
	name := b.opt.Tag
	if name == "" {
		if b.stageImgs != nil {
			// Intermediate stage of a multi-stage build: a deterministic
			// internal name (never tagged into the store).
			name = "stage-" + stageLabel(st)
		} else {
			name = ref + "+build"
		}
	}
	b.cur = base.Clone(name)
	for _, kv := range b.cur.Config.Env {
		if key, v, ok := strings.Cut(kv, "="); ok {
			b.env[key] = v
		}
	}
	snap, err := tarutil.NewSnapshotter(fs)
	if err != nil {
		return fmt.Errorf("build: snapshot: %w", err)
	}
	b.snap = snap
	b.chainKey = chainStart(base, distro, b.opt)
	return nil
}

// stepRun executes one RUN instruction inside the container, applying the
// §5 apt workaround when the zero-consistency filter is active.
func (b *builder) stepRun(ins dockerfile.Instruction) error {
	var argv []string
	modified := 0
	rewrite := b.opt.Force == ForceSeccomp && !b.opt.DisableAptWorkaround
	desc := "RUN\x00"
	if len(ins.ExecForm) > 0 {
		argv = append([]string{}, ins.ExecForm...)
		// The §5 workaround applies to exec form too: apt invoked
		// directly still verifies its privilege drop.
		if rewrite && len(argv) > 0 && aptCommand(argv[0]) && !hasSandboxOption(argv) {
			argv = append(argv[:1:1], append([]string{"-o", "APT::Sandbox::User=root"}, argv[1:]...)...)
			modified = 1
		}
		desc += strings.Join(argv, "\x00")
	} else {
		line := ins.Raw
		if rewrite {
			line, modified = core.RewriteAptCommand(line)
		}
		argv = append(append([]string{}, b.shell...), line)
		desc += line
	}
	key := b.advance(desc)
	hit, err := b.replay(key, "RUN")
	if err != nil {
		return fmt.Errorf("build: line %d: %w", ins.Line, err)
	}
	if hit {
		return nil
	}
	b.res.Executed++
	// This builder owns the in-flight fill for key from here on: builders
	// sharing the cache block on it, so every failure path must abandon.
	recorded := false
	defer func() {
		if !recorded {
			b.abandon(key)
		}
	}()

	status, e := b.p.Exec(argv, b.runEnv(), nil, b.out, b.out)
	if e != errno.OK {
		return fmt.Errorf("build: line %d: RUN: exec: %s", ins.Line, e.Message())
	}
	if status != 0 {
		return fmt.Errorf("build: line %d: RUN exited with status %d", ins.Line, status)
	}
	b.res.ModifiedRuns += modified
	layer, err := b.commit()
	if err != nil {
		return err
	}
	b.record(key, layer, modified)
	recorded = true
	return nil
}

// stepCopy materialises COPY/ADD sources from the build context, or — for
// COPY --from — from an earlier stage's (or external image's) flattened
// tree.
func (b *builder) stepCopy(ins dockerfile.Instruction) error {
	if ins.From != "" {
		return b.stepCopyFrom(ins)
	}
	words := splitFlagless(b.expand(ins.Raw))
	if len(words) < 2 {
		return fmt.Errorf("build: line %d: %s needs source and destination", ins.Line, ins.Cmd)
	}
	srcs, dst := words[:len(words)-1], words[len(words)-1]

	desc := ins.Cmd + "\x00" + dst
	for _, s := range srcs {
		data, ok := b.opt.Context[s]
		if !ok {
			return fmt.Errorf("build: line %d: %s: %q not in build context", ins.Line, ins.Cmd, s)
		}
		desc += "\x00" + s + "\x00" + image.Digest(data)
	}
	key := b.advance(desc)
	hit, err := b.replay(key, ins.Cmd)
	if err != nil {
		return fmt.Errorf("build: line %d: %w", ins.Line, err)
	}
	if hit {
		return nil
	}
	b.res.Executed++
	// Fill owned (see stepRun): abandon on any failure path.
	recorded := false
	defer func() {
		if !recorded {
			b.abandon(key)
		}
	}()

	dstIsDir := dst == "." || strings.HasSuffix(dst, "/") || len(srcs) > 1 || b.isDir(dst)
	for _, s := range srcs {
		target := dst
		if dstIsDir {
			target = strings.TrimSuffix(dst, "/") + "/" + baseName(s)
		}
		target = b.abs(target)
		b.mkParents(target)
		if e := b.p.WriteFileAll(target, b.opt.Context[s], 0o644); e != errno.OK {
			return fmt.Errorf("build: line %d: %s %s: %s", ins.Line, ins.Cmd, target, e.Message())
		}
	}
	layer, err := b.commit()
	if err != nil {
		return err
	}
	b.record(key, layer, 0)
	recorded = true
	return nil
}

// stageImage returns the built image of stage idx, nil when unavailable.
func (b *builder) stageImage(idx int) *image.Image {
	if b.stageImgs == nil || idx < 0 || idx >= len(b.stageImgs) {
		return nil
	}
	return b.stageImgs[idx]
}

// copySource resolves a COPY --from reference to its source image: an
// earlier stage's built image, or an external image from the store.
func (b *builder) copySource(ins dockerfile.Instruction) (*image.Image, error) {
	if ins.FromStage >= 0 {
		img := b.stageImage(ins.FromStage)
		if img == nil {
			return nil, fmt.Errorf("stage %q not built yet (internal scheduling error)", ins.From)
		}
		return img, nil
	}
	if b.opt.Store == nil {
		return nil, fmt.Errorf("no image store configured")
	}
	ref := b.expand(ins.From)
	img, ok := b.opt.Store.GetContext(b.ctx, ref)
	if !ok {
		if cerr := b.ctx.Err(); cerr != nil {
			return nil, cerr
		}
		return nil, fmt.Errorf("--from image %q not in storage", ref)
	}
	return img, nil
}

// stepCopyFrom materialises COPY --from=<stage|image> sources from the
// source's flattened tree, read through the store's per-chain snapshot
// memoisation: read-only shared entries, no re-walk of the source VFS. The
// cache key folds in the source image's chain digest, so editing an
// earlier stage invalidates every dependent COPY --from replay even when
// this stage's own text is unchanged.
func (b *builder) stepCopyFrom(ins dockerfile.Instruction) error {
	words := splitFlagless(b.expand(ins.Raw))
	if len(words) < 2 {
		return fmt.Errorf("build: line %d: COPY needs source and destination", ins.Line)
	}
	srcs, dst := words[:len(words)-1], words[len(words)-1]
	src, err := b.copySource(ins)
	if err != nil {
		return fmt.Errorf("build: line %d: COPY: %w", ins.Line, err)
	}

	// The key needs only the source's chain digest; a warm replay must
	// not pay (or memoise) the source tree's flatten at all.
	desc := "COPY\x00from=" + image.ChainDigest(src.Layers) + "\x00" + dst
	for _, s := range srcs {
		desc += "\x00" + s
	}
	key := b.advance(desc)
	hit, err := b.replay(key, "COPY")
	if err != nil {
		return fmt.Errorf("build: line %d: %w", ins.Line, err)
	}
	if hit {
		return nil
	}
	b.res.Executed++
	// Fill owned (see stepRun): abandon on any failure path.
	recorded := false
	defer func() {
		if !recorded {
			b.abandon(key)
		}
	}()

	entries, err := b.opt.Store.FlattenedEntriesContext(b.ctx, src)
	if err != nil {
		return fmt.Errorf("build: line %d: COPY --from=%s: %w", ins.Line, ins.From, err)
	}
	for _, s := range srcs {
		if err := b.copyTree(entries, s, dst, len(srcs) > 1, ins); err != nil {
			return err
		}
	}
	layer, err := b.commit()
	if err != nil {
		return err
	}
	b.record(key, layer, 0)
	recorded = true
	return nil
}

// copyTree copies one --from source path — a file, symlink or directory —
// into the rootfs. A directory source copies its contents under dst, as
// Docker does; the directory itself is not copied.
func (b *builder) copyTree(entries []tarutil.Entry, src, dst string, multi bool, ins dockerfile.Instruction) error {
	sp := path.Clean("/" + src)
	root := findEntry(entries, sp)
	if root == nil {
		return fmt.Errorf("build: line %d: COPY --from=%s: %q not found in source image",
			ins.Line, ins.From, src)
	}
	if root.Stat.Type == vfs.TypeDir {
		base := b.abs(strings.TrimSuffix(dst, "/"))
		b.mkParents(base) // ancestors only: a fresh base must get the source mode
		if !b.isDir(base) {
			if errn := b.p.Mkdir(base, root.Stat.Mode); errn != errno.OK {
				return fmt.Errorf("build: line %d: COPY mkdir %s: %s", ins.Line, base, errn.Message())
			}
		}
		prefix := sp + "/"
		if sp == "/" {
			prefix = "/"
		}
		for i := range entries {
			e := &entries[i]
			if e.Path == sp || !strings.HasPrefix(e.Path, prefix) {
				continue
			}
			target := base + "/" + strings.TrimPrefix(e.Path, prefix)
			if err := b.copyEntry(e, target, ins); err != nil {
				return err
			}
		}
		return nil
	}
	target := dst
	if dst == "." || strings.HasSuffix(dst, "/") || multi || b.isDir(dst) {
		target = strings.TrimSuffix(dst, "/") + "/" + baseName(sp)
	}
	target = b.abs(target)
	b.mkParents(target)
	return b.copyEntry(root, target, ins)
}

// copyEntry writes one source entry at target through the container
// process, so — exactly like a COPY from the build context — the copied
// tree belongs to the unprivileged build user while bytes and permission
// bits are preserved.
func (b *builder) copyEntry(e *tarutil.Entry, target string, ins dockerfile.Instruction) error {
	switch e.Stat.Type {
	case vfs.TypeDir:
		if !b.isDir(target) {
			if errn := b.p.Mkdir(target, e.Stat.Mode); errn != errno.OK {
				return fmt.Errorf("build: line %d: COPY mkdir %s: %s", ins.Line, target, errn.Message())
			}
		}
	case vfs.TypeSymlink:
		b.p.Unlink(target) // replace any existing link target
		if errn := b.p.Symlink(e.Target, target); errn != errno.OK {
			return fmt.Errorf("build: line %d: COPY symlink %s: %s", ins.Line, target, errn.Message())
		}
	case vfs.TypeRegular:
		// Entries are shared read-only across every consumer of the
		// flatten memoisation; the write must not retain them.
		data := append([]byte(nil), e.Data...)
		if errn := b.p.WriteFileAll(target, data, e.Stat.Mode); errn != errno.OK {
			return fmt.Errorf("build: line %d: COPY write %s: %s", ins.Line, target, errn.Message())
		}
		b.p.Chmod(target, e.Stat.Mode) // an existing file keeps its old mode on write
	default:
		// Device nodes and FIFOs are skipped: the copy runs as the
		// unprivileged build user, which cannot mknod them.
	}
	return nil
}

// findEntry locates path in a canonical snapshot (entries sorted parents
// before children). The scan is linear: source trees are small and the
// snapshot itself was already paid for by the flatten memoisation.
func findEntry(entries []tarutil.Entry, p string) *tarutil.Entry {
	for i := range entries {
		if entries[i].Path == p {
			return &entries[i]
		}
	}
	return nil
}

func (b *builder) stepEnv(ins dockerfile.Instruction) error {
	kvs, err := dockerfile.KeyValues(ins.Raw)
	if err != nil {
		return fmt.Errorf("build: line %d: %w", ins.Line, err)
	}
	for _, k := range sortedKeys(kvs) {
		v := b.expand(kvs[k])
		b.env[k] = v
		b.vars[k] = v
	}
	b.chainKey = chain(b.chainKey, "ENV\x00"+ins.Raw)
	return nil
}

func (b *builder) stepArg(ins dockerfile.Instruction) error {
	kvs, err := dockerfile.KeyValues(ins.Raw)
	if err != nil {
		return fmt.Errorf("build: line %d: %w", ins.Line, err)
	}
	for _, k := range sortedKeys(kvs) {
		v := kvs[k]
		if o, ok := b.opt.BuildArgs[k]; ok {
			v = o
		}
		b.vars[k] = b.expand(v)
	}
	b.chainKey = chain(b.chainKey, "ARG\x00"+ins.Raw+"\x00"+fmt.Sprint(b.opt.BuildArgs))
	return nil
}

func (b *builder) stepWorkdir(ins dockerfile.Instruction) error {
	dir := b.abs(b.expand(ins.Raw))
	b.mkParents(dir + "/.")
	if e := b.p.Chdir(dir); e != errno.OK {
		return fmt.Errorf("build: line %d: WORKDIR %s: %s", ins.Line, dir, e.Message())
	}
	b.cur.Config.WorkingDir = dir
	b.chainKey = chain(b.chainKey, "WORKDIR\x00"+dir)
	_, err := b.commit() // the created directories belong to a layer
	return err
}

func (b *builder) stepLabel(ins dockerfile.Instruction) error {
	kvs, err := dockerfile.KeyValues(ins.Raw)
	if err != nil {
		return fmt.Errorf("build: line %d: %w", ins.Line, err)
	}
	if b.cur.Config.Labels == nil {
		b.cur.Config.Labels = map[string]string{}
	}
	for k, v := range kvs {
		b.cur.Config.Labels[k] = b.expand(v)
	}
	b.chainKey = chain(b.chainKey, "LABEL\x00"+ins.Raw)
	return nil
}

// commandWords renders CMD/ENTRYPOINT into argv form.
func (b *builder) commandWords(ins dockerfile.Instruction) []string {
	if len(ins.ExecForm) > 0 {
		return ins.ExecForm
	}
	return append(append([]string{}, b.shell...), ins.Raw)
}

// commit collects the rootfs changes since the last committed step and
// appends any delta as a new layer. The snapshotter walks only dirty
// subtrees (vfs generation tracking), so an instruction that touched three
// files pays for three files, not the whole tree. It returns the packed
// layer bytes (nil when the step changed nothing).
func (b *builder) commit() ([]byte, error) {
	diff, err := b.snap.Advance(b.fs)
	if err != nil {
		return nil, fmt.Errorf("build: snapshot: %w", err)
	}
	if len(diff) == 0 {
		return nil, nil
	}
	data, err := tarutil.Pack(diff)
	if err != nil {
		return nil, fmt.Errorf("build: pack layer: %w", err)
	}
	b.cur.Layers = append(b.cur.Layers, image.Layer{Digest: image.Digest(data), Data: data})
	return data, nil
}

// replay applies a cached step if present: the stored layer is unpacked
// onto the rootfs and appended to the image without executing anything.
// A layer that fails to unpack is an error, not a miss — by then the
// rootfs may hold a partial apply, and re-executing on it would bake the
// damage into a fresh layer.
//
// Under a shared cache (build.Pool) a miss may find the same step already
// executing in another builder; replay then blocks until that builder
// records its result and replays it like any other hit. On a true miss
// the builder owns the fill: it must end the step with record (success)
// or abandon (failure) so waiting builders are released.
func (b *builder) replay(key, cmd string) (bool, error) {
	if b.opt.Cache == nil {
		return false, nil
	}
	ent, hit, _ := b.opt.Cache.getOrBegin(b.ctx, key)
	if !hit {
		return false, nil
	}
	fmt.Fprintf(b.out, "    (cached)\n")
	if len(ent.layer) > 0 {
		// The handed-out layer is private: the image under construction
		// escapes to the caller as Result.Image, and mutations there must
		// not reach the shared cache entry.
		layer := append([]byte(nil), ent.layer...)
		// ApplyLayer unpacks and reconciles the tracked snapshot in one
		// O(layer) pass — no full re-walk of the tree it just changed.
		if err := b.snap.ApplyLayer(b.fs, layer); err != nil {
			return false, fmt.Errorf("%s: corrupt cache layer: %w", cmd, err)
		}
		b.cur.Layers = append(b.cur.Layers, image.Layer{Digest: image.Digest(layer), Data: layer})
	}
	b.res.ModifiedRuns += ent.modified
	b.res.CacheHits++
	return true, nil
}

// record stores a finished step in the cache, releasing any builders
// blocked on the in-flight fill.
func (b *builder) record(key string, layer []byte, modified int) {
	if b.opt.Cache != nil {
		b.opt.Cache.complete(b.ctx, key, cacheEntry{layer: layer, modified: modified})
	}
}

// abandon gives up a fill after the step failed, waking blocked builders
// so one of them can execute the step instead.
func (b *builder) abandon(key string) {
	if b.opt.Cache != nil {
		b.opt.Cache.abandon(key)
	}
}

// advance folds a step descriptor into the running chain key and returns
// the step's cache key.
func (b *builder) advance(desc string) string {
	b.chainKey = chain(b.chainKey, desc)
	return b.chainKey
}

// runEnv builds the environment RUN children see: image ENV plus ARGs.
func (b *builder) runEnv() map[string]string {
	env := map[string]string{}
	for k, v := range b.vars {
		env[k] = v
	}
	for k, v := range b.env {
		env[k] = v
	}
	if env["PATH"] == "" {
		env["PATH"] = "/usr/local/sbin:/usr/local/bin:/usr/sbin:/usr/bin:/sbin:/bin"
	}
	return env
}

func (b *builder) expand(s string) string { return dockerfile.Expand(s, b.vars) }

// abs resolves a destination against the current working directory.
func (b *builder) abs(p string) string {
	if strings.HasPrefix(p, "/") {
		return p
	}
	cwd, _ := b.p.Getcwd()
	if cwd == "/" || cwd == "" {
		return "/" + strings.TrimPrefix(p, "./")
	}
	return cwd + "/" + strings.TrimPrefix(p, "./")
}

func (b *builder) isDir(p string) bool {
	st, e := b.p.Stat(b.abs(p))
	return e == errno.OK && st.Type == vfs.TypeDir
}

// mkParents creates missing ancestors of path (the final component is not
// created).
func (b *builder) mkParents(path string) {
	comps := strings.Split(strings.Trim(path, "/"), "/")
	cur := ""
	for _, c := range comps[:len(comps)-1] {
		if c == "" {
			continue
		}
		cur += "/" + c
		b.p.Mkdir(cur, 0o755)
	}
}

// aptCommand reports whether an exec-form argv[0] invokes apt/apt-get.
func aptCommand(word string) bool {
	base := baseName(word)
	return base == "apt" || base == "apt-get"
}

// hasSandboxOption reports whether an apt argv already configures the
// sandbox user (never inject twice).
func hasSandboxOption(argv []string) bool {
	for _, a := range argv {
		if strings.Contains(a, "APT::Sandbox::User") {
			return true
		}
	}
	return false
}

func baseName(p string) string {
	if i := strings.LastIndexByte(p, '/'); i >= 0 {
		return p[i+1:]
	}
	return p
}

// splitFlagless splits on whitespace, dropping --flags (e.g. --chown=,
// which the simulation has no use for: the builder is unprivileged).
func splitFlagless(s string) []string {
	var out []string
	for _, w := range strings.Fields(s) {
		if strings.HasPrefix(w, "--") {
			continue
		}
		out = append(out, w)
	}
	return out
}

func sortedKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func envList(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for _, k := range sortedKeys(m) {
		out = append(out, k+"="+m[k])
	}
	return out
}
