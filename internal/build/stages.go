// Multi-stage build driver. A multi-stage Dockerfile is a DAG of stages:
// each FROM opens a stage, a stage may base itself on an earlier stage
// (FROM builder) or read from one (COPY --from=builder), and only the
// final stage is the build product. The driver topologically orders the
// reachable stages and schedules them wave by wave on the existing
// build.Pool: each wave holds every stage whose dependencies completed in
// earlier waves, and all stages of a wave run concurrently, each on its
// own simos kernel and VFS, all sharing the one image.Store and
// instruction Cache exactly like pooled whole builds. (A wave is a
// barrier: a stage ready mid-wave starts with the next wave — see the
// scheduler-depth item in ROADMAP.md.)
// Stages the final stage never references are pruned: parsed, validated,
// reported, but not built.
package build

import (
	"context"
	"fmt"
	"io"

	"repro/internal/dockerfile"
	"repro/internal/image"
	"repro/internal/simos"
)

// BuildStages executes a multi-stage Dockerfile end to end and returns the
// final stage's image (tagged into Options.Store under Options.Tag, like
// Build). Independent stages run concurrently, bounded by
// Options.StageJobs; intermediate stage images are never tagged. Build
// routes multi-stage text here automatically, so calling BuildStages
// directly is only useful to force the stage pipeline on single-stage
// files too. The returned Result is never nil.
func BuildStages(text string, opt Options) (*Result, error) {
	//chlint:allow ctxfirst -- context-free compat wrapper; BuildStagesContext is the real entry point
	return BuildStagesContext(context.Background(), text, opt)
}

// BuildStagesContext is BuildStages under a context: cancellation stops
// every in-flight stage at its next instruction boundary and the waves
// that never started never run.
func BuildStagesContext(ctx context.Context, text string, opt Options) (*Result, error) {
	f, err := dockerfile.Parse(text)
	if err != nil {
		return &Result{}, err
	}
	return buildStages(ctx, f, opt)
}

// stageJob carries one stage through the Pool (Job.stage). The imgs slice
// is shared with the driver, which publishes every completed wave's images
// before submitting the next wave — Pool.Run's completion is the
// happens-before edge, so stage builders never race on it.
type stageJob struct {
	file  *dockerfile.File
	idx   int
	imgs  []*image.Image
	final bool
}

// buildStages schedules the reachable stages of f in dependency order.
func buildStages(ctx context.Context, f *dockerfile.File, opt Options) (*Result, error) {
	if len(f.Stages) == 0 {
		return &Result{}, fmt.Errorf("build: no FROM instruction")
	}
	out := opt.Output
	if out == nil {
		out = io.Discard
	}
	agg := &Result{}
	final := len(f.Stages) - 1
	if opt.TargetStage != "" {
		idx, ok := f.StageIndex(opt.TargetStage)
		if !ok {
			return agg, fmt.Errorf("build: target stage %q not found", opt.TargetStage)
		}
		final = idx
	}
	reach := f.ReachableFrom(final)
	for i, ok := range reach {
		if !ok {
			agg.StagesSkipped++
			fmt.Fprintf(out, "=== stage %d/%d (%s): skipped, not referenced by the target stage\n",
				i+1, len(f.Stages), stageLabel(f.Stages[i]))
		}
	}

	imgs := make([]*image.Image, len(f.Stages))
	stageRes := make([]*Result, len(f.Stages))
	built := make([]bool, len(f.Stages))
	for !built[final] {
		// Collect the ready wave: reachable, unbuilt, all deps built.
		var ready []int
		for i := range f.Stages {
			if !reach[i] || built[i] {
				continue
			}
			ok := true
			for _, d := range f.Stages[i].Deps {
				if !built[d] {
					ok = false
					break
				}
			}
			if ok {
				ready = append(ready, i)
			}
		}
		if len(ready) == 0 {
			// Unreachable through the parser (references only point
			// backward), kept as a guard against future DAG changes.
			return agg, fmt.Errorf("build: stage dependency cycle")
		}

		jobs := make([]Job, len(ready))
		for j, i := range ready {
			o := opt
			o.Output = nil // captured per stage, replayed in wave order
			o.Tag = ""
			if i == final {
				o.Tag = opt.Tag
			}
			jobs[j] = Job{
				Name:    fmt.Sprintf("stage %d (%s)", i+1, stageLabel(f.Stages[i])),
				Options: o,
				stage:   &stageJob{file: f, idx: i, imgs: imgs, final: i == final},
			}
		}
		results, err := (&Pool{Workers: opt.StageJobs, FailFast: true}).RunContext(ctx, jobs)
		for j, r := range results {
			i := ready[j]
			fmt.Fprintf(out, "=== stage %d/%d (%s)\n", i+1, len(f.Stages), stageLabel(f.Stages[i]))
			io.WriteString(out, r.Transcript)
			if r.Result != nil {
				stageRes[i] = r.Result
				if r.Err == nil {
					built[i] = true
					imgs[i] = r.Result.Image
				}
			}
		}
		if err != nil {
			aggregate(agg, stageRes, built)
			return agg, err
		}
	}

	aggregate(agg, stageRes, built)
	agg.Image = imgs[final]
	fmt.Fprintf(out, "multi-stage build: %d stage(s) built, %d skipped: %s\n",
		agg.StagesBuilt, agg.StagesSkipped, agg.Image.Name)
	return agg, nil
}

// aggregate folds the per-stage results into the whole-build Result:
// counts and modeled time sum across every stage that ran (a failed stage
// still contributes the counters it accrued), counters add field-wise;
// StagesBuilt counts only the stages that completed.
func aggregate(agg *Result, stageRes []*Result, built []bool) {
	for i, r := range stageRes {
		if r == nil {
			continue
		}
		if built[i] {
			agg.StagesBuilt++
		}
		agg.CacheHits += r.CacheHits
		agg.Executed += r.Executed
		agg.ModifiedRuns += r.ModifiedRuns
		agg.FakerootRecords += r.FakerootRecords
		agg.VirtualNanos += r.VirtualNanos
		agg.Counters = addCounters(agg.Counters, r.Counters)
	}
}

// addCounters sums two kernel counter snapshots field-wise.
func addCounters(a, b simos.CounterSnapshot) simos.CounterSnapshot {
	a.Syscalls += b.Syscalls
	a.Filtered += b.Filtered
	a.Faked += b.Faked
	a.PtraceStops += b.PtraceStops
	a.PreloadHits += b.PreloadHits
	a.NotifEvents += b.NotifEvents
	return a
}

// stageLabel names a stage for transcripts and job identities: its AS name
// when present, else its index.
func stageLabel(st dockerfile.Stage) string {
	if st.Name != "" {
		return st.Name
	}
	return fmt.Sprintf("%d", st.Index)
}
