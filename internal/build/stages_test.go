package build

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/errno"
	"repro/internal/image"
	"repro/internal/simos"
	"repro/internal/vfs"
)

// Multi-stage builds: the stage DAG scheduled on the pool, COPY --from
// materialisation, pruning, and cache correctness across stage edits.

const builderPattern = `FROM centos:7 AS build
RUN yum install -y openssh
RUN mkdir -p /opt/out && echo artifact-v1 > /opt/out/bin && chmod 755 /opt/out/bin
RUN echo conf > /opt/out/app.conf

FROM alpine:3.19 AS debug
RUN apk add sl

FROM alpine:3.19
COPY --from=build /opt/out /app
CMD ["/app/bin"]
`

func readImageFile(t *testing.T, img *image.Image, path string) ([]byte, vfs.Stat) {
	t.Helper()
	fs, err := img.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	rc := vfs.RootContext()
	data, e := fs.ReadFile(rc, path)
	if e != errno.OK {
		t.Fatalf("read %s from %s: %s", path, img.Name, e.Message())
	}
	st, _ := fs.Stat(rc, path, true)
	return data, st
}

func TestMultiStageBuilderPattern(t *testing.T) {
	w, s := fixtures(t)
	res, tr := mustBuild(t, builderPattern, Options{
		Tag: "slim:1", Force: ForceSeccomp, Store: s, World: w,
	})
	if res.StagesBuilt != 2 || res.StagesSkipped != 1 {
		t.Fatalf("stages built=%d skipped=%d, want 2/1", res.StagesBuilt, res.StagesSkipped)
	}
	if !strings.Contains(tr, "skipped, not referenced") {
		t.Fatalf("transcript missing prune report:\n%s", tr)
	}
	got, ok := s.Get("slim:1")
	if !ok {
		t.Fatal("final image not tagged")
	}
	data, st := readImageFile(t, got, "/app/bin")
	if string(data) != "artifact-v1\n" {
		t.Fatalf("/app/bin = %q", data)
	}
	if st.Mode != 0o755 {
		t.Fatalf("/app/bin mode = %o, want 755", st.Mode)
	}
	// Slim: the runtime image is alpine's layers plus exactly one COPY
	// layer — none of the build stage's yum payload rides along.
	base, _ := s.Get("alpine:3.19")
	if len(got.Layers) != len(base.Layers)+1 {
		t.Fatalf("layers: %d, want base+1 = %d", len(got.Layers), len(base.Layers)+1)
	}
	fs, err := got.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	if fs.Exists(vfs.RootContext(), "/etc/centos-release") {
		t.Fatal("build stage rootfs leaked into the runtime stage")
	}
	// Intermediate stages are never tagged.
	for _, tag := range s.Tags() {
		if strings.HasPrefix(tag, "stage-") {
			t.Fatalf("intermediate stage tagged into the store: %s", tag)
		}
	}
}

// The acceptance bar: COPY --from contents are byte-identical to the
// source stage's flattened tree.
func TestMultiStageCopyFromBytesIdentical(t *testing.T) {
	w, s := fixtures(t)
	// Build the source stage alone to obtain its flattened tree.
	stageOnly := "FROM centos:7\n" + strings.Join(strings.Split(builderPattern, "\n")[1:4], "\n") + "\n"
	srcRes, _ := mustBuild(t, stageOnly, Options{Tag: "src:1", Force: ForceSeccomp, Store: s, World: w})
	res, _ := mustBuild(t, builderPattern, Options{Tag: "slim:2", Force: ForceSeccomp, Store: s, World: w})

	srcFS, err := srcRes.Image.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	dstFS, err := res.Image.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	rc := vfs.RootContext()
	for _, f := range []string{"bin", "app.conf"} {
		want, e := srcFS.ReadFile(rc, "/opt/out/"+f)
		if e != errno.OK {
			t.Fatalf("source %s: %s", f, e.Message())
		}
		got, e := dstFS.ReadFile(rc, "/app/"+f)
		if e != errno.OK {
			t.Fatalf("dest %s: %s", f, e.Message())
		}
		if string(got) != string(want) {
			t.Fatalf("%s: got %q want %q", f, got, want)
		}
		ws, _ := srcFS.Stat(rc, "/opt/out/"+f, true)
		gs, _ := dstFS.Stat(rc, "/app/"+f, true)
		if ws.Mode != gs.Mode {
			t.Fatalf("%s: mode %o want %o", f, gs.Mode, ws.Mode)
		}
	}
}

// A freshly created destination directory takes the source directory's
// mode (an existing destination keeps its own).
func TestMultiStageCopyFromDirModePreserved(t *testing.T) {
	w, s := fixtures(t)
	text := `FROM alpine:3.19 AS a
RUN mkdir -p /secret && echo k > /secret/key && chmod 700 /secret
FROM alpine:3.19
COPY --from=a /secret /copied
`
	res, _ := mustBuild(t, text, Options{Tag: "mode:1", Store: s, World: w})
	fs, err := res.Image.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	st, e := fs.Stat(vfs.RootContext(), "/copied", true)
	if e != errno.OK {
		t.Fatalf("/copied: %s", e.Message())
	}
	if st.Mode != 0o700 {
		t.Fatalf("/copied mode = %o, want 700", st.Mode)
	}
}

func TestMultiStageCopyFromByIndexAndExternal(t *testing.T) {
	w, s := fixtures(t)
	text := `FROM alpine:3.19 AS a
RUN echo one > /one
FROM alpine:3.19
COPY --from=0 /one /got-one
COPY --from=centos:7 /etc/centos-release /rel
`
	res, _ := mustBuild(t, text, Options{Tag: "mix:1", Store: s, World: w})
	if data, _ := readImageFile(t, res.Image, "/got-one"); string(data) != "one\n" {
		t.Fatalf("/got-one = %q", data)
	}
	data, _ := readImageFile(t, res.Image, "/rel")
	if !strings.Contains(string(data), "CentOS Linux release") {
		t.Fatalf("/rel = %q", data)
	}
}

func TestMultiStageFromStageChain(t *testing.T) {
	w, s := fixtures(t)
	text := `FROM alpine:3.19 AS base
RUN echo 1 > /one
FROM base AS mid
RUN echo 2 > /two
FROM mid
RUN echo 3 > /three
`
	res, _ := mustBuild(t, text, Options{Tag: "chain:1", Store: s, World: w})
	if res.StagesBuilt != 3 {
		t.Fatalf("stages built: %d", res.StagesBuilt)
	}
	for _, p := range []string{"/one", "/two", "/three"} {
		if data, _ := readImageFile(t, res.Image, p); len(data) == 0 {
			t.Fatalf("%s missing", p)
		}
	}
}

// A pruned stage is not built at all: its instructions would fail under
// this Force mode, so the build only succeeds if the stage never runs.
func TestMultiStagePrunedStageNeverExecutes(t *testing.T) {
	w, s := fixtures(t)
	text := `FROM alpine:3.19 AS good
RUN echo ok > /ok
FROM centos:7 AS bad
RUN yum install -y openssh
FROM alpine:3.19
COPY --from=good /ok /ok
`
	// yum under ForceNone fails (Fig. 1b); apk and COPY do not.
	res, _ := mustBuild(t, text, Options{Tag: "pruned:1", Force: ForceNone, Store: s, World: w})
	if res.StagesBuilt != 2 || res.StagesSkipped != 1 {
		t.Fatalf("built=%d skipped=%d", res.StagesBuilt, res.StagesSkipped)
	}
}

func TestMultiStageStageFailurePropagates(t *testing.T) {
	w, s := fixtures(t)
	text := `FROM centos:7 AS build
RUN yum install -y openssh
FROM alpine:3.19
COPY --from=build /etc/centos-release /rel
`
	res, _, err := mustFail(t, text, Options{Force: ForceNone, Store: s, World: w})
	if !strings.Contains(err.Error(), "stage 1 (build)") {
		t.Fatalf("error does not name the failing stage: %v", err)
	}
	// The dependent final stage never ran.
	if res.StagesBuilt != 0 {
		t.Fatalf("stages recorded as built after dependency failure: %d", res.StagesBuilt)
	}
}

func TestMultiStageCopyFromMissingPath(t *testing.T) {
	w, s := fixtures(t)
	text := "FROM alpine:3.19 AS a\nRUN true\nFROM alpine:3.19\nCOPY --from=a /nope /x\n"
	_, _, err := mustFail(t, text, Options{Store: s, World: w})
	if !strings.Contains(err.Error(), "not found in source image") {
		t.Fatalf("err = %v", err)
	}
}

func TestMultiStageWarmRebuildFullyCached(t *testing.T) {
	w, s := fixtures(t)
	cache := NewCache()
	opt := Options{Tag: "warm:1", Force: ForceSeccomp, Store: s, World: w, Cache: cache}
	first, _ := mustBuild(t, builderPattern, opt)
	if first.CacheHits != 0 {
		t.Fatalf("cold build reported %d hits", first.CacheHits)
	}
	second, _ := mustBuild(t, builderPattern, opt)
	// Every cacheable step of both built stages replays: 3 RUNs in the
	// build stage, 1 COPY --from in the final stage.
	if second.CacheHits != 4 {
		t.Fatalf("warm hits = %d, want 4", second.CacheHits)
	}
	if image.ChainDigest(second.Image.Layers) != image.ChainDigest(first.Image.Layers) {
		t.Fatal("warm rebuild produced a different layer chain")
	}
}

// Editing an earlier stage must invalidate the dependent stage's COPY
// --from replay even though the final stage's own text is unchanged — the
// instruction key folds in the source stage's chain digest.
func TestMultiStageEditEarlierStageInvalidatesCopyFrom(t *testing.T) {
	w, s := fixtures(t)
	cache := NewCache()
	opt := Options{Tag: "edit:1", Force: ForceSeccomp, Store: s, World: w, Cache: cache}
	mustBuild(t, builderPattern, opt)
	edited := strings.ReplaceAll(builderPattern, "artifact-v1", "artifact-v2")
	res, _ := mustBuild(t, edited, opt)
	if data, _ := readImageFile(t, res.Image, "/app/bin"); string(data) != "artifact-v2\n" {
		t.Fatalf("stale COPY --from replay: /app/bin = %q", data)
	}
}

// Independent stages must actually overlap in time: each stage's marker
// write blocks (in the shared tracer) until the other stage has reached
// its own marker, so a serialised schedule times out instead of passing.
func TestMultiStageIndependentStagesRunConcurrently(t *testing.T) {
	w, s := fixtures(t)
	text := `FROM alpine:3.19 AS a
RUN echo a > /marker-a
FROM alpine:3.19 AS b
RUN echo b > /marker-b
FROM alpine:3.19
COPY --from=a /marker-a /ma
COPY --from=b /marker-b /mb
`
	seenA := make(chan struct{})
	seenB := make(chan struct{})
	var onceA, onceB sync.Once
	var failed sync.Once
	await := func(other <-chan struct{}) {
		select {
		case <-other:
		case <-time.After(10 * time.Second):
			failed.Do(func() { t.Error("independent stages did not overlap") })
		}
	}
	tracer := func(ev simos.TraceEvent) {
		switch {
		case strings.Contains(ev.Detail, "marker-a"):
			onceA.Do(func() { close(seenA) })
			await(seenB)
		case strings.Contains(ev.Detail, "marker-b"):
			onceB.Do(func() { close(seenB) })
			await(seenA)
		}
	}
	res, _ := mustBuild(t, text, Options{
		Tag: "conc:1", Store: s, World: w, Tracer: tracer, StageJobs: 2,
	})
	if res.StagesBuilt != 3 {
		t.Fatalf("stages built: %d", res.StagesBuilt)
	}
}

// StageJobs=1 serialises the waves without deadlocking or changing the
// result.
func TestMultiStageSerialStageJobs(t *testing.T) {
	w, s := fixtures(t)
	res, _ := mustBuild(t, builderPattern, Options{
		Tag: "serial:1", Force: ForceSeccomp, Store: s, World: w, StageJobs: 1,
	})
	if data, _ := readImageFile(t, res.Image, "/app/bin"); string(data) != "artifact-v1\n" {
		t.Fatalf("/app/bin = %q", data)
	}
}

// Multi-stage builds riding the outer Pool (ch-image -t a,b --jobs N):
// nested pools over one shared store and cache stay correct and count one
// execution per distinct step.
func TestMultiStagePooledMultiTag(t *testing.T) {
	w, s := fixtures(t)
	cache := NewCache()
	jobs := make([]Job, 3)
	for i, tag := range []string{"p:1", "p:2", "p:3"} {
		jobs[i] = Job{
			Dockerfile: builderPattern,
			Options: Options{
				Tag: tag, Force: ForceSeccomp, Store: s, World: w, Cache: cache,
			},
		}
	}
	results, err := (&Pool{Workers: 3}).Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	totalHits := 0
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Name, r.Err)
		}
		if data, _ := readImageFile(t, r.Result.Image, "/app/bin"); string(data) != "artifact-v1\n" {
			t.Fatalf("%s: /app/bin = %q", r.Name, data)
		}
		totalHits += r.Result.CacheHits
	}
	hits, misses := cache.Stats()
	if misses != 4 {
		t.Fatalf("distinct steps executed: %d, want 4", misses)
	}
	if hits != totalHits {
		t.Fatalf("cache accounting: stats hits=%d, sum of results=%d", hits, totalHits)
	}
}

func TestBuildStagesOnSingleStageFile(t *testing.T) {
	w, s := fixtures(t)
	res, err := BuildStages("FROM alpine:3.19\nRUN apk add sl\n",
		Options{Tag: "single:1", Store: s, World: w})
	if err != nil {
		t.Fatal(err)
	}
	if res.StagesBuilt != 1 || res.Image == nil {
		t.Fatalf("result: %+v", res)
	}
}

// A parseable but FROM-less Dockerfile (ARG only) is a clean error, not a
// panic, through both entry points.
func TestBuildArgOnlyDockerfile(t *testing.T) {
	for name, build := range map[string]func(string, Options) (*Result, error){
		"Build": Build, "BuildStages": BuildStages,
	} {
		res, err := build("ARG A=1\n", Options{})
		if err == nil || !strings.Contains(err.Error(), "no FROM") {
			t.Errorf("%s: err = %v", name, err)
		}
		if res == nil {
			t.Errorf("%s: nil Result", name)
		}
	}
}

// A warm COPY --from replay must not flatten (and memoise) the source
// stage's tree: on a fresh store with a warm shared cache, every step
// replays and the only flatten fills are the two FROM bases.
func TestMultiStageWarmReplaySkipsSourceFlatten(t *testing.T) {
	w, s1 := fixtures(t)
	cache := NewCache()
	opt := Options{Tag: "f:1", Force: ForceSeccomp, World: w, Cache: cache}
	opt.Store = s1
	mustBuild(t, builderPattern, opt)

	_, s2 := fixtures(t)
	opt.Store = s2
	res, _ := mustBuild(t, builderPattern, opt)
	if res.CacheHits != 4 {
		t.Fatalf("warm hits = %d, want 4", res.CacheHits)
	}
	// centos:7 and alpine:3.19 chains only; the build stage's chain was
	// never flattened because its COPY --from replayed.
	if fills := s2.FlattenFills(); fills != 2 {
		t.Fatalf("flatten fills on warm store = %d, want 2", fills)
	}
}

func TestMultiStageParseErrorNonNilResult(t *testing.T) {
	res, err := BuildStages("FROM a\nCOPY --from=later /x /y\nFROM b AS later\n", Options{})
	if err == nil {
		t.Fatal("forward reference must fail")
	}
	if res == nil {
		t.Fatal("Result must be non-nil on parse errors")
	}
}

// --target stops the build at the named stage: it becomes the product, is
// tagged, and later stages (plus anything only they reference) never run.
func TestTargetStageStopsEarly(t *testing.T) {
	w, s := fixtures(t)
	res, tr := mustBuild(t, builderPattern, Options{
		Tag: "builder:1", Force: ForceSeccomp, Store: s, World: w,
		TargetStage: "build",
	})
	// Only the target stage runs: the alpine stages (debug AND final) are
	// skipped, and the result is the centos build stage's image.
	if res.StagesBuilt != 1 || res.StagesSkipped != 2 {
		t.Fatalf("built=%d skipped=%d\n%s", res.StagesBuilt, res.StagesSkipped, tr)
	}
	if res.Image.Name != "builder:1" {
		t.Fatalf("target stage not tagged: %s", res.Image.Name)
	}
	if data, _ := readImageFile(t, res.Image, "/opt/out/bin"); string(data) != "artifact-v1\n" {
		t.Fatalf("artifact: %q", data)
	}
	if _, ok := s.Get("builder:1"); !ok {
		t.Fatal("target image not in store")
	}
}

// --target accepts a decimal index too (StageIndex semantics).
func TestTargetStageByIndex(t *testing.T) {
	w, s := fixtures(t)
	res, _ := mustBuild(t, builderPattern, Options{
		Tag: "dbg:1", Force: ForceSeccomp, Store: s, World: w,
		TargetStage: "1", // the debug stage
	})
	if res.StagesBuilt != 1 || res.StagesSkipped != 2 {
		t.Fatalf("built=%d skipped=%d", res.StagesBuilt, res.StagesSkipped)
	}
	fs, err := res.Image.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	if !fs.Exists(vfs.RootContext(), "/usr/bin/sl") {
		t.Fatal("debug stage's package missing from target image")
	}
}

// A --target naming a mid-DAG stage builds its dependencies but nothing
// downstream.
func TestTargetStageBuildsDependencies(t *testing.T) {
	w, s := fixtures(t)
	text := `FROM centos:7 AS base
RUN mkdir -p /opt && echo lib > /opt/lib

FROM base AS mid
RUN echo mid > /opt/mid

FROM alpine:3.19
COPY --from=mid /opt/mid /mid
`
	res, _ := mustBuild(t, text, Options{
		Tag: "mid:1", Force: ForceSeccomp, Store: s, World: w, TargetStage: "mid",
	})
	if res.StagesBuilt != 2 || res.StagesSkipped != 1 {
		t.Fatalf("built=%d skipped=%d", res.StagesBuilt, res.StagesSkipped)
	}
	if data, _ := readImageFile(t, res.Image, "/opt/lib"); string(data) != "lib\n" {
		t.Fatalf("dependency stage content missing: %q", data)
	}
}

// An unknown --target is an error before anything builds.
func TestTargetStageUnknownFails(t *testing.T) {
	w, s := fixtures(t)
	res, _, err := mustFail(t, builderPattern, Options{
		Tag: "x", Force: ForceSeccomp, Store: s, World: w, TargetStage: "nope",
	})
	if !strings.Contains(err.Error(), `target stage "nope" not found`) {
		t.Fatalf("err=%v", err)
	}
	if res.StagesBuilt != 0 {
		t.Fatalf("stages built despite bad target: %d", res.StagesBuilt)
	}
}

// --target on a single-stage Dockerfile routes through the stage driver
// and validates the name.
func TestTargetStageSingleStageFile(t *testing.T) {
	w, s := fixtures(t)
	res, _ := mustBuild(t, "FROM alpine:3.19 AS only\nRUN apk add sl\n", Options{
		Tag: "only:1", Force: ForceSeccomp, Store: s, World: w, TargetStage: "only",
	})
	if res.StagesBuilt != 1 {
		t.Fatalf("built=%d", res.StagesBuilt)
	}
	if _, _, err := mustFail(t, "FROM alpine:3.19 AS only\nRUN apk add sl\n", Options{
		Tag: "x", Store: s, World: w, TargetStage: "typo",
	}); err == nil {
		t.Fatal("bad target on single-stage file accepted")
	}
}
