package build

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cas"
	"repro/internal/image"
	"repro/internal/pkgmgr"
)

// persistFixtures simulates one process's view of a shared --cache-dir:
// a fresh world, a fresh store backed by the cas directory (attached
// before seeding, so base-image blobs persist), and a fresh persistent
// instruction cache rehydrated from the directory's journal.
func persistFixtures(t *testing.T, root string) (*pkgmgr.World, *image.Store, *Cache, *cas.Dir) {
	t.Helper()
	d, _, err := cas.Open(root)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	w := pkgmgr.NewWorld()
	s := image.NewStore()
	s.SetBacking(d)
	for _, db := range []struct{ distro, name string }{
		{pkgmgr.DistroAlpine, "alpine:3.19"},
		{pkgmgr.DistroCentOS7, "centos:7"},
		{pkgmgr.DistroDebian, "debian:12"},
	} {
		img, err := w.BaseImage(db.distro, db.name)
		if err != nil {
			t.Fatal(err)
		}
		s.Put(img)
	}
	return w, s, NewPersistentCache(d), d
}

// Base images must serialise to identical bytes in every process — the
// root of every cross-invocation cache key.
func TestBaseImageDeterministic(t *testing.T) {
	for _, db := range []struct{ distro, name string }{
		{pkgmgr.DistroAlpine, "alpine:3.19"},
		{pkgmgr.DistroCentOS7, "centos:7"},
		{pkgmgr.DistroDebian, "debian:12"},
	} {
		a, err := pkgmgr.NewWorld().BaseImage(db.distro, db.name)
		if err != nil {
			t.Fatal(err)
		}
		b, err := pkgmgr.NewWorld().BaseImage(db.distro, db.name)
		if err != nil {
			t.Fatal(err)
		}
		if image.ChainDigest(a.Layers) != image.ChainDigest(b.Layers) {
			t.Errorf("%s: base image bytes differ between worlds", db.name)
		}
	}
}

// The acceptance path: two separate invocations (completely fresh worlds,
// stores and caches) against one cache dir. The second runs fully warm —
// every instruction a cache hit, nothing executed, zero flatten fills.
func TestWarmAcrossProcesses(t *testing.T) {
	root := t.TempDir()
	const text = "FROM centos:7\nRUN yum install -y openssh\nRUN mkdir -p /opt && echo art > /opt/bin\n"

	w1, s1, c1, _ := persistFixtures(t, root)
	res1, err := Build(text, Options{Tag: "app:1", Force: ForceSeccomp, Store: s1, World: w1, Cache: c1})
	if err != nil {
		t.Fatal(err)
	}
	if res1.Executed != 2 || res1.CacheHits != 0 {
		t.Fatalf("cold: executed=%d hits=%d", res1.Executed, res1.CacheHits)
	}
	if err := c1.PersistErr(); err != nil {
		t.Fatal(err)
	}
	if err := s1.BackingErr(); err != nil {
		t.Fatal(err)
	}

	w2, s2, c2, _ := persistFixtures(t, root)
	res2, err := Build(text, Options{Tag: "app:1", Force: ForceSeccomp, Store: s2, World: w2, Cache: c2})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Executed != 0 || res2.CacheHits != 2 {
		t.Fatalf("warm: executed=%d hits=%d, want 0/2", res2.Executed, res2.CacheHits)
	}
	if fills := s2.FlattenFills(); fills != 0 {
		t.Fatalf("warm process paid %d flatten fills, want 0", fills)
	}
	if s2.Rehydrates() != 1 {
		t.Fatalf("rehydrates=%d, want 1", s2.Rehydrates())
	}
	// Same result bytes both ways.
	if image.ChainDigest(res1.Image.Layers) != image.ChainDigest(res2.Image.Layers) {
		t.Fatal("warm rebuild produced different layers")
	}
}

// Editing the Dockerfile between invocations invalidates from the edit
// point: the prefix stays warm, the suffix re-executes.
func TestEditInvalidatesSuffixAcrossProcesses(t *testing.T) {
	root := t.TempDir()
	w1, s1, c1, _ := persistFixtures(t, root)
	if _, err := Build("FROM centos:7\nRUN yum install -y openssh\nRUN echo one > /v1\n",
		Options{Tag: "app:1", Force: ForceSeccomp, Store: s1, World: w1, Cache: c1}); err != nil {
		t.Fatal(err)
	}

	w2, s2, c2, _ := persistFixtures(t, root)
	res, err := Build("FROM centos:7\nRUN yum install -y openssh\nRUN echo two > /v2\n",
		Options{Tag: "app:2", Force: ForceSeccomp, Store: s2, World: w2, Cache: c2})
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHits != 1 || res.Executed != 1 {
		t.Fatalf("hits=%d executed=%d, want 1/1 (warm prefix, re-run suffix)", res.CacheHits, res.Executed)
	}
}

// A multi-stage build — stage scheduling, COPY --from, chain-digest keys —
// replays fully warm in a second process.
func TestMultiStageWarmAcrossProcesses(t *testing.T) {
	root := t.TempDir()
	const text = `FROM centos:7 AS build
RUN yum install -y openssh
RUN mkdir -p /opt && echo solver > /opt/solver

FROM alpine:3.19
COPY --from=build /opt/solver /app/solver
`
	w1, s1, c1, _ := persistFixtures(t, root)
	res1, err := Build(text, Options{Tag: "slim:1", Force: ForceSeccomp, Store: s1, World: w1, Cache: c1, StageJobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res1.Executed == 0 {
		t.Fatal("cold multi-stage executed nothing")
	}

	w2, s2, c2, _ := persistFixtures(t, root)
	res2, err := Build(text, Options{Tag: "slim:1", Force: ForceSeccomp, Store: s2, World: w2, Cache: c2, StageJobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Executed != 0 || res2.CacheHits != res1.Executed {
		t.Fatalf("warm: executed=%d hits=%d (cold executed %d)", res2.Executed, res2.CacheHits, res1.Executed)
	}
	if res2.StagesBuilt != 2 {
		t.Fatalf("stages=%d", res2.StagesBuilt)
	}
	if image.ChainDigest(res1.Image.Layers) != image.ChainDigest(res2.Image.Layers) {
		t.Fatal("warm rebuild produced different layers")
	}
}

// The corruption acceptance criterion: a blob truncated between
// invocations is quarantined at open, and the next build succeeds by
// re-executing only the steps that lost their layers.
func TestCorruptBlobReExecutesOnlyAffectedSteps(t *testing.T) {
	root := t.TempDir()
	const text = "FROM centos:7\nRUN yum install -y openssh\nRUN mkdir -p /opt && echo art > /opt/bin\n"
	w1, s1, c1, d1 := persistFixtures(t, root)
	if _, err := Build(text, Options{Tag: "app:1", Force: ForceSeccomp, Store: s1, World: w1, Cache: c1}); err != nil {
		t.Fatal(err)
	}

	// Truncate the layer blob of the second RUN (the echo step), located
	// through the journal: it is the step layer containing "/opt/bin".
	var victim string
	for _, st := range d1.Steps() {
		if st.Layer == "" {
			continue
		}
		data, err := d1.Blob(context.Background(), st.Layer)
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(string(data), "opt/bin") {
			victim = st.Layer
		}
	}
	if victim == "" {
		t.Fatal("echo step's layer not found in journal")
	}
	hexpart := strings.TrimPrefix(victim, "sha256:")
	p := filepath.Join(root, "blobs", "sha256", hexpart[:2], hexpart[2:])
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	w2, s2, c2, d2 := persistFixtures(t, root)
	if rep := d2.Report(); rep.BlobsQuarantined != 1 {
		t.Fatalf("corruption not quarantined at open: %+v", rep)
	}
	res, err := Build(text, Options{Tag: "app:1", Force: ForceSeccomp, Store: s2, World: w2, Cache: c2})
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHits != 1 || res.Executed != 1 {
		t.Fatalf("hits=%d executed=%d, want 1 warm + 1 re-executed", res.CacheHits, res.Executed)
	}
	// The store healed: a third process runs fully warm again.
	w3, s3, c3, _ := persistFixtures(t, root)
	res3, err := Build(text, Options{Tag: "app:1", Force: ForceSeccomp, Store: s3, World: w3, Cache: c3})
	if err != nil {
		t.Fatal(err)
	}
	if res3.Executed != 0 || res3.CacheHits != 2 {
		t.Fatalf("healed store: executed=%d hits=%d", res3.Executed, res3.CacheHits)
	}
}

// A torn journal tail (crash mid-append) costs at most the torn record:
// the next invocation quarantines the fragment and replays the rest.
func TestTornJournalWarmRecovery(t *testing.T) {
	root := t.TempDir()
	const text = "FROM alpine:3.19\nRUN apk add sl\n"
	w1, s1, c1, _ := persistFixtures(t, root)
	if _, err := Build(text, Options{Tag: "app:1", Force: ForceSeccomp, Store: s1, World: w1, Cache: c1}); err != nil {
		t.Fatal(err)
	}
	j := filepath.Join(root, "journal")
	f, err := os.OpenFile(j, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprint(f, `0000 {"t":"step","key":"torn`)
	f.Close()

	w2, s2, c2, d2 := persistFixtures(t, root)
	if rep := d2.Report(); rep.JournalQuarantined != 1 {
		t.Fatalf("torn tail not quarantined: %+v", rep)
	}
	res, err := Build(text, Options{Tag: "app:1", Force: ForceSeccomp, Store: s2, World: w2, Cache: c2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Executed != 0 || res.CacheHits != 1 {
		t.Fatalf("executed=%d hits=%d after torn-tail recovery", res.Executed, res.CacheHits)
	}
}

// Options.CacheDir is the one-call wiring: Build opens the store, backs
// the image store and creates the persistent cache itself.
func TestOptionsCacheDir(t *testing.T) {
	root := filepath.Join(t.TempDir(), "cas")
	const text = "FROM alpine:3.19\nRUN apk add sl\n"
	run := func() *Result {
		w, s := fixturesBacked(t, root)
		res, err := Build(text, Options{Tag: "app:1", Force: ForceSeccomp, Store: s, World: w, CacheDir: root})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if res := run(); res.Executed != 1 {
		t.Fatalf("cold: executed=%d", res.Executed)
	}
	if res := run(); res.Executed != 0 || res.CacheHits != 1 {
		t.Fatalf("warm: executed=%d hits=%d", res.Executed, res.CacheHits)
	}
}

// fixturesBacked seeds a store whose backing Build will attach via
// Options.CacheDir — seeding must come after the backing attach to
// persist base blobs, so it opens the same dir itself first.
func fixturesBacked(t *testing.T, root string) (*pkgmgr.World, *image.Store) {
	t.Helper()
	d, _, err := cas.Open(root)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	w := pkgmgr.NewWorld()
	s := image.NewStore()
	s.SetBacking(d)
	img, err := w.BaseImage(pkgmgr.DistroAlpine, "alpine:3.19")
	if err != nil {
		t.Fatal(err)
	}
	s.Put(img)
	return w, s
}

// Options.CacheDir pointing at a regular file is a build error, not a
// panic or a silent in-memory fallback.
func TestOptionsCacheDirOnFileFails(t *testing.T) {
	f := filepath.Join(t.TempDir(), "afile")
	if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	w, s := fixtures(t)
	_, err := Build("FROM alpine:3.19\nRUN apk add sl\n",
		Options{Tag: "x", Store: s, World: w, CacheDir: f})
	if err == nil || !strings.Contains(err.Error(), "not a directory") {
		t.Fatalf("err=%v", err)
	}
}

// A pool of builders sharing one persistent cache must be race-clean and
// leave a store the next process can fully warm from. Run with -race.
func TestPoolWithPersistentCache(t *testing.T) {
	root := t.TempDir()
	const text = "FROM centos:7\nRUN yum install -y openssh\n"
	w1, s1, c1, _ := persistFixtures(t, root)
	jobs := make([]Job, 8)
	for i := range jobs {
		jobs[i] = Job{
			Name:       fmt.Sprintf("job%d", i),
			Dockerfile: text,
			Options: Options{
				Tag: fmt.Sprintf("pool:%d", i), Force: ForceSeccomp,
				Store: s1, World: w1, Cache: c1,
			},
		}
	}
	if _, err := (&Pool{Workers: 4}).Run(jobs); err != nil {
		t.Fatal(err)
	}
	if err := c1.PersistErr(); err != nil {
		t.Fatal(err)
	}

	w2, s2, c2, _ := persistFixtures(t, root)
	res, err := Build(text, Options{Tag: "pool:9", Force: ForceSeccomp, Store: s2, World: w2, Cache: c2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Executed != 0 || res.CacheHits != 1 {
		t.Fatalf("after pooled process: executed=%d hits=%d", res.Executed, res.CacheHits)
	}
}

// Build with Options.CacheDir must restore the caller's own backing when
// it returns, not detach it: later Puts keep persisting.
func TestOptionsCacheDirRestoresCallerBacking(t *testing.T) {
	root := filepath.Join(t.TempDir(), "cas")
	w, s := fixturesBacked(t, root) // attaches the caller's backing
	prev := s.Backing()
	if _, err := Build("FROM alpine:3.19\nRUN apk add sl\n",
		Options{Tag: "app:1", Force: ForceSeccomp, Store: s, World: w, CacheDir: root}); err != nil {
		t.Fatal(err)
	}
	if s.Backing() != prev {
		t.Fatal("caller's backing not restored after Build")
	}
	// The restored backing still works: a post-Build Put persists.
	img, _ := s.Get("app:1")
	late := img.Clone("late:1")
	s.Put(late)
	if err := s.BackingErr(); err != nil {
		t.Fatal(err)
	}
	w2, s2 := fixturesBacked(t, root)
	_ = w2
	if _, ok := s2.Get("late:1"); !ok {
		t.Fatal("post-Build Put through restored backing lost")
	}
}

// Options.CacheVerify=lazy must warm exactly like the default full-verify
// open — the mode changes when corruption is discovered, never what a
// healthy store replays.
func TestOptionsCacheVerifyLazyWarms(t *testing.T) {
	root := filepath.Join(t.TempDir(), "cas")
	const text = "FROM alpine:3.19\nRUN apk add sl\n"
	run := func() *Result {
		w, s := fixturesBacked(t, root)
		res, err := Build(text, Options{
			Tag: "app:1", Force: ForceSeccomp, Store: s, World: w,
			CacheDir: root, CacheVerify: cas.VerifyLazy,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if res := run(); res.Executed != 1 {
		t.Fatalf("cold: executed=%d", res.Executed)
	}
	if res := run(); res.Executed != 0 || res.CacheHits != 1 {
		t.Fatalf("warm: executed=%d hits=%d", res.Executed, res.CacheHits)
	}
}

// Options.CacheMaxBytes runs the budgeted GC after the build, on the
// handle Build itself opened: tag pins survive an impossible budget, the
// GC failure mode is a colder cache rather than a failed build, and the
// next build still loads the tagged image.
func TestOptionsCacheMaxBytesBudgetsAfterBuild(t *testing.T) {
	root := filepath.Join(t.TempDir(), "cas")
	const text = "FROM alpine:3.19\nRUN apk add sl\n"
	// Seed through our own handle, then close it: Build's handle must be
	// the sole opener or the deferred GC would wait on our shared lock.
	seed := func() (*pkgmgr.World, *image.Store) {
		d, _, err := cas.Open(root)
		if err != nil {
			t.Fatal(err)
		}
		w := pkgmgr.NewWorld()
		s := image.NewStore()
		s.SetBacking(d)
		img, err := w.BaseImage(pkgmgr.DistroAlpine, "alpine:3.19")
		if err != nil {
			t.Fatal(err)
		}
		s.Put(img)
		s.SetBacking(nil)
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}
		return w, s
	}
	w, s := seed()
	if _, err := Build(text, Options{
		Tag: "app:1", Force: ForceSeccomp, Store: s, World: w,
		CacheDir: root, CacheMaxBytes: 1,
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.BackingErr(); err != nil {
		t.Fatalf("budgeted GC recorded an error: %v", err)
	}

	// The impossible budget evicted every unpinned entry but not the
	// tag's layers: a fresh process still loads app:1 whole.
	d, _, err := cas.Open(root)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	tg, ok := d.Tag("app:1")
	if !ok {
		t.Fatal("tag evicted by budgeted GC")
	}
	for _, l := range tg.Layers {
		if !d.HasBlob(l) {
			t.Fatalf("pinned layer %s evicted", l)
		}
	}
	// Steps may survive only when evicting them would free nothing: their
	// layer is one of the tag's pinned layers (the RUN step's layer IS the
	// image's top layer here) or they recorded no layer at all.
	pinned := map[string]bool{}
	for _, l := range tg.Layers {
		pinned[l] = true
	}
	for _, st := range d.Steps() {
		if st.Layer != "" && !pinned[st.Layer] {
			t.Fatalf("step %q with unpinned layer survived an impossible budget", st.Key)
		}
	}
}
