package build

import (
	"strings"
	"testing"

	"repro/internal/pkgmgr"
)

// TestBuildMatrix is the table-driven E8/E15 build matrix — the same
// {workload} × {emulation mode} grid BenchmarkBuildMatrix measures,
// asserted as pass/fail shapes so `go test` catches regressions without
// running benches:
//
//   - alpine/apk succeeds everywhere (Fig. 1a: no privileged syscalls for
//     root-owned packages);
//   - centos7/rpm fails only unemulated (Fig. 1b vs Fig. 2: the cpio
//     chown);
//   - debian/apt fails unemulated, succeeds under seccomp only via the §5
//     workaround, and succeeds under the consistent emulators with no
//     workaround at all.
func TestBuildMatrix(t *testing.T) {
	workloads := []struct {
		key, distro, image, text string
		// failure, when non-empty, is the transcript line expected from
		// the modes in failModes.
		failure   string
		failModes map[ForceMode]bool
	}{
		{
			key: "debian-apt", distro: pkgmgr.DistroDebian, image: "debian:12",
			text:      "FROM debian:12\nRUN apt-get install -y curl\n",
			failure:   "setresuid 100 failed",
			failModes: map[ForceMode]bool{ForceNone: true},
		},
		{
			key: "centos7-rpm", distro: pkgmgr.DistroCentOS7, image: "centos:7",
			text:      "FROM centos:7\nRUN yum install -y openssh\n",
			failure:   "cpio: chown failed - Invalid argument",
			failModes: map[ForceMode]bool{ForceNone: true},
		},
		{
			key: "alpine-apk", distro: pkgmgr.DistroAlpine, image: "alpine:3.19",
			text: "FROM alpine:3.19\nRUN apk add sl\n",
		},
	}
	modes := []ForceMode{ForceNone, ForceSeccomp, ForceFakeroot, ForceProot}

	for _, wl := range workloads {
		for _, mode := range modes {
			t.Run(wl.key+"/"+mode.String(), func(t *testing.T) {
				w, s := fixtures(t)
				var out strings.Builder
				res, err := Build(wl.text, Options{
					Tag: "matrix", Force: mode, Store: s, World: w, Output: &out,
				})
				wantErr := wl.failModes[mode]
				if (err != nil) != wantErr {
					t.Fatalf("err = %v, wantErr = %v\ntranscript:\n%s", err, wantErr, out.String())
				}
				if wantErr {
					if !strings.Contains(out.String(), wl.failure) {
						t.Fatalf("transcript missing %q:\n%s", wl.failure, out.String())
					}
					return
				}
				if res.Image == nil || len(res.Image.Layers) < 2 {
					t.Fatalf("successful build produced no layers")
				}
				// §6 state comparison: only the consistent emulators
				// accumulate records.
				consistent := mode == ForceFakeroot || mode == ForceProot
				if consistent && wl.key != "alpine-apk" && res.FakerootRecords == 0 {
					t.Error("consistent emulator kept no records")
				}
				if !consistent && res.FakerootRecords != 0 {
					t.Errorf("mode %s reported %d state records", mode, res.FakerootRecords)
				}
			})
		}
	}
}

// TestBuildMatrixOverheadOrdering locks the E8/E15 headline down at the
// build level: modeled time per identical successful build must order
// none < seccomp < fakeroot < proot.
func TestBuildMatrixOverheadOrdering(t *testing.T) {
	text := "FROM alpine:3.19\nRUN apk add sl\n"
	vns := map[ForceMode]int64{}
	for _, mode := range []ForceMode{ForceNone, ForceSeccomp, ForceFakeroot, ForceProot} {
		w, s := fixtures(t)
		res, err := Build(text, Options{Tag: "ord", Force: mode, Store: s, World: w})
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		vns[mode] = res.VirtualNanos
	}
	if !(vns[ForceNone] < vns[ForceSeccomp] &&
		vns[ForceSeccomp] < vns[ForceFakeroot] &&
		vns[ForceFakeroot] < vns[ForceProot]) {
		t.Fatalf("overhead ordering violated: none=%d seccomp=%d fakeroot=%d proot=%d",
			vns[ForceNone], vns[ForceSeccomp], vns[ForceFakeroot], vns[ForceProot])
	}
}
