package build

import (
	"context"
	"errors"

	"repro/internal/dockerfile"
	"repro/internal/obs"
)

// Engine-level instruments on the obs default registry (see
// docs/observability.md). Labeled children are resolved once here, not
// per event: With takes the family mutex.
var (
	mBuilds = obs.NewCounterVec("ch_build_builds_total",
		"Builds finished through BuildContext, by outcome.", "outcome")
	mInstructions = obs.NewCounterVec("ch_build_instructions_total",
		"Instructions completed, by mode (executed vs replayed from cache).", "mode")
	mInstrExecuted      = mInstructions.With("executed")
	mInstrReplayed      = mInstructions.With("replayed")
	mInstructionSeconds = obs.NewHistogram("ch_build_instruction_seconds",
		"Wall time per instruction (executed, replayed and metadata-only alike).", obs.DefBuckets)
	mCacheHits = obs.NewCounter("ch_build_cache_hits_total",
		"Instruction-cache hits, single-flight waits included (Cache.Stats semantics).")
	mCacheMisses = obs.NewCounter("ch_build_cache_misses_total",
		"Instruction-cache misses that began a fill.")
	mPoolInFlight = obs.NewGauge("ch_build_pool_in_flight",
		"Service-mode pool jobs executing right now.")
	mPoolWaiting = obs.NewGauge("ch_build_pool_waiting",
		"Submit calls waiting for a resident worker to accept the job.")
)

// buildOutcome classifies one finished BuildContext call for the
// builds_total counter. Degraded is a distinct outcome, not a success
// flavor: it is the signal the paper's persistence contract surfaces.
// instrSpanName names a per-instruction span: the command plus its
// (truncated) argument text, matching the transcript line.
func instrSpanName(ins dockerfile.Instruction) string {
	raw := ins.Raw
	if len(raw) > 60 {
		raw = raw[:57] + "..."
	}
	if raw == "" {
		return ins.Cmd
	}
	return ins.Cmd + " " + raw
}

func buildOutcome(res *Result, err error) string {
	switch {
	case err == nil && res != nil && res.Degraded:
		return "degraded"
	case err == nil:
		return "succeeded"
	case errors.Is(err, context.Canceled):
		return "canceled"
	default:
		return "failed"
	}
}
