package build

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/image"
	"repro/internal/vfs"
)

// The pool contract: N builds sharing one Cache and one Store, bounded
// workers, submission-order results, fail-fast vs collect-all, and the
// single-flight accounting invariants (every shared step executes once
// across the pool; everything else replays).

// echoDockerfile has exactly two cacheable steps (the RUNs).
const echoDockerfile = "FROM alpine:3.19\nRUN echo a > /a\nRUN echo b > /b\n"

const echoSteps = 2

// sameJobs builds n identical jobs with distinct tags sharing w/s/cache.
func sameJobs(t *testing.T, n int) ([]Job, *Cache) {
	t.Helper()
	w, s := fixtures(t)
	cache := NewCache()
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{
			Dockerfile: echoDockerfile,
			Options: Options{
				Tag: fmt.Sprintf("pooled:%d", i), Force: ForceSeccomp,
				Store: s, World: w, Cache: cache,
			},
		}
	}
	return jobs, cache
}

func TestPoolResultsInSubmissionOrder(t *testing.T) {
	jobs, _ := sameJobs(t, 4)
	results, err := (&Pool{Workers: 2}).Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(jobs) {
		t.Fatalf("results: %d, want %d", len(results), len(jobs))
	}
	for i, r := range results {
		if want := fmt.Sprintf("pooled:%d", i); r.Name != want {
			t.Errorf("result %d name = %q, want %q", i, r.Name, want)
		}
		if r.Err != nil || r.Result == nil {
			t.Errorf("result %d: err=%v result=%v", i, r.Err, r.Result)
		}
		if r.Transcript == "" || !strings.Contains(r.Transcript, "grown in") {
			t.Errorf("result %d transcript not captured: %q", i, r.Transcript)
		}
	}
}

// Satellite: N pooled builds of one Dockerfile report exactly N−1
// fully-cached runs, and the shared cache's counters agree with the
// per-build ones. Workers=1 serialises the jobs, so the partition of work
// is deterministic: job 0 executes every step, the rest replay.
func TestPoolSameDockerfileFullyCachedRuns(t *testing.T) {
	const n = 5
	jobs, cache := sameJobs(t, n)
	results, err := (&Pool{Workers: 1}).Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	fullyCached := 0
	sumHits := 0
	for i, r := range results {
		sumHits += r.Result.CacheHits
		switch r.Result.CacheHits {
		case 0:
			if i != 0 {
				t.Errorf("job %d ran cold; only job 0 should", i)
			}
		case echoSteps:
			fullyCached++
		default:
			t.Errorf("job %d: CacheHits = %d, want 0 or %d", i, r.Result.CacheHits, echoSteps)
		}
	}
	if fullyCached != n-1 {
		t.Errorf("fully-cached runs = %d, want %d", fullyCached, n-1)
	}
	hits, misses := cache.Stats()
	if hits != sumHits {
		t.Errorf("cache hits %d != sum of Result.CacheHits %d", hits, sumHits)
	}
	if misses != echoSteps {
		t.Errorf("cache misses = %d, want %d (each step fills once)", misses, echoSteps)
	}
}

// The same invariants must hold with real concurrency: whoever wins each
// step's fill, each step executes exactly once pool-wide and every other
// builder replays it (directly or after waiting out the in-flight fill).
func TestPoolConcurrentAccountingInvariants(t *testing.T) {
	const n = 8
	jobs, cache := sameJobs(t, n)
	store := jobs[0].Options.Store
	results, err := (&Pool{Workers: 4}).Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	sumHits := 0
	for _, r := range results {
		sumHits += r.Result.CacheHits
	}
	if want := (n - 1) * echoSteps; sumHits != want {
		t.Errorf("sum of CacheHits = %d, want %d", sumHits, want)
	}
	hits, misses := cache.Stats()
	if hits != sumHits {
		t.Errorf("cache hits %d != sum of Result.CacheHits %d", hits, sumHits)
	}
	if misses != echoSteps {
		t.Errorf("cache misses = %d, want %d", misses, echoSteps)
	}
	// All builders flattened the same base chain: one fill, N−1 shares.
	if fills := store.FlattenFills(); fills != 1 {
		t.Errorf("flatten fills = %d, want 1 (single-flight)", fills)
	}
	// Identical inputs ⇒ identical images, layer for layer.
	first := results[0].Result.Image
	for i, r := range results[1:] {
		img := r.Result.Image
		if len(img.Layers) != len(first.Layers) {
			t.Fatalf("job %d: %d layers, want %d", i+1, len(img.Layers), len(first.Layers))
		}
		for j := range img.Layers {
			if img.Layers[j].Digest != first.Layers[j].Digest {
				t.Errorf("job %d layer %d digest drifted: %s != %s",
					i+1, j, img.Layers[j].Digest, first.Layers[j].Digest)
			}
		}
	}
	// Every tag landed in the shared store.
	for i := range jobs {
		if _, ok := store.Get(fmt.Sprintf("pooled:%d", i)); !ok {
			t.Errorf("pooled:%d missing from store", i)
		}
	}
}

// Heterogeneous jobs: different distros and force modes in one pool, all
// sharing the store. Results must match what serial builds produce.
func TestPoolHeterogeneousJobs(t *testing.T) {
	w, s := fixtures(t)
	cache := NewCache()
	jobs := []Job{
		{Dockerfile: "FROM alpine:3.19\nRUN apk add sl\n",
			Options: Options{Tag: "apk:1", Force: ForceNone, Store: s, World: w, Cache: cache}},
		{Dockerfile: "FROM centos:7\nRUN yum install -y openssh\n",
			Options: Options{Tag: "yum:1", Force: ForceSeccomp, Store: s, World: w, Cache: cache}},
		{Dockerfile: "FROM debian:12\nRUN apt-get install -y curl\n",
			Options: Options{Tag: "apt:1", Force: ForceSeccomp, Store: s, World: w, Cache: cache}},
	}
	results, err := (&Pool{Workers: 3}).Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	rc := vfs.RootContext()
	for i, path := range []string{"/usr/bin/sl", "/usr/libexec/openssh/ssh-keysign", "/usr/bin/curl"} {
		fs, ferr := results[i].Result.Image.Flatten()
		if ferr != nil {
			t.Fatal(ferr)
		}
		if !fs.Exists(rc, path) {
			t.Errorf("job %d (%s): %s missing from built image", i, results[i].Name, path)
		}
	}
}

// Collect-all mode: failures are per-job; the rest of the batch completes.
func TestPoolCollectAllErrors(t *testing.T) {
	w, s := fixtures(t)
	jobs := []Job{
		{Dockerfile: "FROM centos:7\nRUN yum install -y openssh\n",
			Options: Options{Tag: "fails:1", Force: ForceNone, Store: s, World: w}},
		{Dockerfile: "FROM alpine:3.19\nRUN apk add sl\n",
			Options: Options{Tag: "ok:1", Force: ForceNone, Store: s, World: w}},
	}
	results, err := (&Pool{Workers: 1}).Run(jobs)
	if err == nil {
		t.Fatal("pool error is nil; the yum/none job must fail")
	}
	if results[0].Err == nil || results[0].Result == nil {
		t.Errorf("failing job: err=%v result=%v (result must carry counters)", results[0].Err, results[0].Result)
	}
	if results[1].Err != nil {
		t.Errorf("collect-all must still run the healthy job: %v", results[1].Err)
	}
	if _, ok := s.Get("ok:1"); !ok {
		t.Error("healthy job's image missing from store")
	}
}

// Fail-fast mode: queued jobs behind the failure are skipped, not run.
func TestPoolFailFastSkips(t *testing.T) {
	w, s := fixtures(t)
	jobs := []Job{
		{Dockerfile: "FROM centos:7\nRUN yum install -y openssh\n",
			Options: Options{Tag: "fails:1", Force: ForceNone, Store: s, World: w}},
		{Dockerfile: "FROM alpine:3.19\nRUN apk add sl\n",
			Options: Options{Tag: "skipped:1", Force: ForceNone, Store: s, World: w}},
		{Dockerfile: "FROM alpine:3.19\nRUN apk add sl\n",
			Options: Options{Tag: "skipped:2", Force: ForceNone, Store: s, World: w}},
	}
	results, err := (&Pool{Workers: 1, FailFast: true}).Run(jobs)
	if err == nil {
		t.Fatal("pool error is nil")
	}
	if results[0].Err == nil {
		t.Error("first job should have failed")
	}
	for _, r := range results[1:] {
		if !errors.Is(r.Err, ErrSkipped) {
			t.Errorf("job %s: err = %v, want ErrSkipped", r.Name, r.Err)
		}
		if r.Result != nil {
			t.Errorf("job %s: skipped job has a result", r.Name)
		}
	}
	if _, ok := s.Get("skipped:1"); ok {
		t.Error("skipped job's image appeared in store")
	}
}

// Failing builds sharing a cache must not deadlock waiters: an abandoned
// in-flight fill wakes the blocked builders, one of which retries the
// step (and fails the same way). All N jobs fail; nothing hangs.
func TestPoolSharedCacheFailureReleasesWaiters(t *testing.T) {
	const n = 6
	w, s := fixtures(t)
	cache := NewCache()
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{
			Dockerfile: "FROM centos:7\nRUN yum install -y openssh\n",
			Options: Options{
				Tag: fmt.Sprintf("doomed:%d", i), Force: ForceNone,
				Store: s, World: w, Cache: cache,
			},
		}
	}
	results, err := (&Pool{Workers: 4}).Run(jobs)
	if err == nil {
		t.Fatal("every job should have failed")
	}
	for _, r := range results {
		if r.Err == nil {
			t.Errorf("job %s unexpectedly succeeded", r.Name)
		}
	}
	// The failing step never completes, so it caches nothing and every
	// builder pays its own miss.
	hits, misses := cache.Stats()
	if hits != 0 {
		t.Errorf("cache hits = %d, want 0 (the step never succeeds)", hits)
	}
	if misses != n {
		t.Errorf("cache misses = %d, want %d (one abandoned fill per builder)", misses, n)
	}
}

// Satellite: cached layers are immune to callers scribbling on the
// result. Mutating the step layers of a Result.Image between builds must
// not change what later replays produce, and the store's blobs must keep
// the bytes their digests name. (Layer 0 is the base image's layer,
// shared by the Image.Clone immutability convention, so the corruption
// here targets the layers the instruction cache recorded.)
func TestPoolCacheLayerAliasingDefended(t *testing.T) {
	jobs, _ := sameJobs(t, 1)
	opt := jobs[0].Options
	first, _ := mustBuild(t, echoDockerfile, opt)
	if len(first.Image.Layers) != 1+echoSteps {
		t.Fatalf("layers = %d, want base + %d steps", len(first.Image.Layers), echoSteps)
	}
	wantDigests := make([]string, len(first.Image.Layers))
	for i, l := range first.Image.Layers {
		wantDigests[i] = l.Digest
	}
	// Corrupt every byte of the step layers the caller can reach.
	for _, l := range first.Image.Layers[1:] {
		for i := range l.Data {
			l.Data[i] ^= 0xff
		}
	}
	second, _ := mustBuild(t, echoDockerfile, opt)
	if second.CacheHits != echoSteps {
		t.Fatalf("replay CacheHits = %d, want %d", second.CacheHits, echoSteps)
	}
	for i, l := range second.Image.Layers {
		if l.Digest != wantDigests[i] {
			t.Errorf("layer %d replayed corrupted bytes: %s != %s", i, l.Digest, wantDigests[i])
		}
		if image.Digest(l.Data) != l.Digest {
			t.Errorf("layer %d data does not match its digest", i)
		}
	}
	// The store's content-addressed blobs were copied in by Put and are
	// unaffected by the scribbling.
	for _, d := range wantDigests[1:] {
		blob, ok := opt.Store.Blob(d)
		if !ok {
			t.Fatalf("blob %s missing", d)
		}
		if image.Digest(blob) != d {
			t.Errorf("store blob %s corrupted by caller mutation", d)
		}
	}
	// And the replayed image's content is intact.
	fs, err := second.Image.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	rc := vfs.RootContext()
	if b, e := fs.ReadFile(rc, "/a"); !e.Ok() || string(b) != "a\n" {
		t.Errorf("/a = %q %v", b, e)
	}
	// A FROM of the scribbled tag flattens from the store's write-once
	// blobs, so even the in-place corruption above cannot reach builds
	// that derive from the tag.
	derived, _ := mustBuild(t, "FROM pooled:0\nRUN echo c > /c\n", opt)
	dfs, err := opt.Store.Flatten(derived.Image)
	if err != nil {
		t.Fatal(err)
	}
	if b, e := dfs.ReadFile(rc, "/a"); !e.Ok() || string(b) != "a\n" {
		t.Errorf("derived build saw scribbled base: /a = %q %v", b, e)
	}
}

func TestPoolZeroJobsAndDefaults(t *testing.T) {
	results, err := (&Pool{}).Run(nil)
	if err != nil || len(results) != 0 {
		t.Fatalf("empty pool: %v %v", results, err)
	}
	// Workers <= 0 defaults to one per job.
	jobs, _ := sameJobs(t, 2)
	if _, err := (&Pool{Workers: -3}).Run(jobs); err != nil {
		t.Fatal(err)
	}
}
