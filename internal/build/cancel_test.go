package build

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Cancellation, deadlines and fail-fast: builds stop at instruction
// boundaries, pools actively cancel their in-flight siblings, and
// JobResult distinguishes cancelled work from failed work.

// Acceptance: cancelling a cold 16-job pool returns every worker within
// one instruction boundary. Each job is parked at its first boundary by
// the test gate; after the cancel, no job may cross another boundary —
// the gate counter stays at exactly one crossing per job.
func TestPoolCancelReturnsWithinOneBoundary(t *testing.T) {
	const n = 16
	w, s := fixtures(t)
	cache := NewCache()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var boundaries atomic.Int64
	var parked sync.WaitGroup
	parked.Add(n)
	gate := func(gctx context.Context, cmd string) {
		boundaries.Add(1)
		parked.Done()
		<-gctx.Done()
	}

	jobs := make([]Job, n)
	for i := range jobs {
		opt := Options{
			Tag: "cancelled", Force: ForceSeccomp,
			Store: s, World: w, Cache: cache,
			testStepGate: gate,
		}
		jobs[i] = Job{Name: "job", Dockerfile: echoDockerfile, Options: opt}
	}

	go func() {
		parked.Wait() // every worker is at its first boundary
		cancel()
	}()
	results, err := (&Pool{Workers: n}).RunContext(ctx, jobs)
	if err == nil {
		t.Fatal("cancelled pool must report an error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("aggregate error should wrap context.Canceled: %v", err)
	}
	for i, r := range results {
		if !r.Cancelled {
			t.Errorf("job %d: Cancelled = false, err = %v", i, r.Err)
		}
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("job %d: err does not wrap context.Canceled: %v", i, r.Err)
		}
		if r.Result == nil || r.Result.Executed != 0 {
			t.Errorf("job %d: executed past the cancel: %+v", i, r.Result)
		}
	}
	if got := boundaries.Load(); got != n {
		t.Fatalf("boundary crossings = %d, want exactly %d (one per worker)", got, n)
	}
}

// Satellite: a fail-fast pool actively cancels its in-flight siblings —
// the victim stops at its next instruction boundary, reports Cancelled
// (not failed, not skipped), and keeps the partial transcript it accrued.
func TestPoolFailFastCancelsInFlightSiblings(t *testing.T) {
	w, s := fixtures(t)
	cache := NewCache()

	// Rendezvous: the failer may only fail once the victim is parked
	// in-flight, so the victim can never be merely "not started".
	victimParked := make(chan struct{})
	var once sync.Once

	failerOpt := Options{
		Tag: "failer", Force: ForceSeccomp, Store: s, World: w, Cache: cache,
		testStepGate: func(gctx context.Context, cmd string) {
			if cmd == "RUN" {
				<-victimParked
			}
		},
	}
	victimOpt := Options{
		Tag: "victim", Force: ForceSeccomp, Store: s, World: w, Cache: cache,
		testStepGate: func(gctx context.Context, cmd string) {
			if cmd == "RUN" {
				once.Do(func() { close(victimParked) })
				<-gctx.Done()
			}
		},
	}
	jobs := []Job{
		{Name: "failer", Dockerfile: "FROM alpine:3.19\nRUN no-such-command-anywhere\n", Options: failerOpt},
		{Name: "victim", Dockerfile: echoDockerfile, Options: victimOpt},
	}
	results, err := (&Pool{Workers: 2, FailFast: true}).RunContext(context.Background(), jobs)
	if err == nil {
		t.Fatal("want aggregate error from the failing job")
	}
	failer, victim := results[0], results[1]
	if failer.Cancelled || failer.Err == nil {
		t.Fatalf("failer should be a genuine failure: cancelled=%v err=%v", failer.Cancelled, failer.Err)
	}
	if !victim.Cancelled {
		t.Fatalf("victim should be cancelled by fail-fast, got err=%v", victim.Err)
	}
	if errors.Is(victim.Err, ErrSkipped) {
		t.Fatal("victim was in flight; it must not report ErrSkipped")
	}
	if !errors.Is(victim.Err, context.Canceled) {
		t.Fatalf("victim err should wrap context.Canceled: %v", victim.Err)
	}
	// S2: the cancelled job's partial transcript is flushed — the FROM
	// line it executed before parking is the evidence of where it stopped.
	if !strings.Contains(victim.Transcript, "FROM") {
		t.Fatalf("victim partial transcript not flushed: %q", victim.Transcript)
	}
	if victim.Result == nil {
		t.Fatal("cancelled in-flight job must keep its partial Result")
	}
}

// Acceptance: a build with Options.BuildTimeout fails with a deadline
// error at the next instruction boundary — it does not hang.
func TestBuildTimeoutFailsWithDeadlineError(t *testing.T) {
	w, s := fixtures(t)
	opt := Options{
		Tag: "t:1", Force: ForceSeccomp, Store: s, World: w,
		BuildTimeout: 20 * time.Millisecond,
		testStepGate: func(gctx context.Context, cmd string) {
			if cmd == "RUN" {
				<-gctx.Done() // hold the build past its deadline
			}
		},
	}
	res, err := Build(echoDockerfile, opt)
	if err == nil {
		t.Fatal("build should fail its deadline")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err should wrap context.DeadlineExceeded: %v", err)
	}
	if res == nil {
		t.Fatal("failed build must still return a Result")
	}
}

// Options.InstrTimeout bounds each instruction: an instruction that
// overruns its own deadline fails the build with an error naming it,
// while the whole-build context stays alive.
func TestInstrTimeoutFailsOverrunningInstruction(t *testing.T) {
	w, s := fixtures(t)
	opt := Options{
		Tag: "t:1", Force: ForceSeccomp, Store: s, World: w,
		// Already expired when the first instruction runs: the ARG step
		// itself succeeds, and the boundary check converts the overrun
		// into a per-instruction deadline failure.
		InstrTimeout: time.Nanosecond,
	}
	res, err := Build("ARG V=1\nFROM alpine:3.19\n", opt)
	if err == nil {
		t.Fatal("instruction should overrun its deadline")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err should wrap context.DeadlineExceeded: %v", err)
	}
	if !strings.Contains(err.Error(), "per-instruction deadline") {
		t.Fatalf("err should name the per-instruction deadline: %v", err)
	}
	if res == nil {
		t.Fatal("failed build must still return a Result")
	}
}

// A pre-cancelled context stops the build before its first instruction.
func TestBuildContextPreCancelled(t *testing.T) {
	w, s := fixtures(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := BuildContext(ctx, echoDockerfile,
		Options{Tag: "c:1", Force: ForceSeccomp, Store: s, World: w})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if res == nil || res.Executed != 0 {
		t.Fatalf("nothing may execute under a dead context: %+v", res)
	}
}
