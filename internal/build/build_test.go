package build

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/image"
	"repro/internal/pkgmgr"
	"repro/internal/vfs"
)

// fixtures returns a world and a store seeded with the three distro base
// images, the builder-level analog of ch-image's storage directory.
func fixtures(t *testing.T) (*pkgmgr.World, *image.Store) {
	t.Helper()
	w := pkgmgr.NewWorld()
	s := image.NewStore()
	for _, d := range []struct{ distro, name string }{
		{pkgmgr.DistroAlpine, "alpine:3.19"},
		{pkgmgr.DistroCentOS7, "centos:7"},
		{pkgmgr.DistroDebian, "debian:12"},
	} {
		img, err := w.BaseImage(d.distro, d.name)
		if err != nil {
			t.Fatal(err)
		}
		s.Put(img)
	}
	return w, s
}

func mustBuild(t *testing.T, text string, opt Options) (*Result, string) {
	t.Helper()
	var out strings.Builder
	opt.Output = &out
	if opt.Tag == "" {
		opt.Tag = "test"
	}
	res, err := Build(text, opt)
	if err != nil {
		t.Fatalf("build failed: %v\ntranscript:\n%s", err, out.String())
	}
	return res, out.String()
}

func mustFail(t *testing.T, text string, opt Options) (*Result, string, error) {
	t.Helper()
	var out strings.Builder
	opt.Output = &out
	if opt.Tag == "" {
		opt.Tag = "test"
	}
	res, err := Build(text, opt)
	if err == nil {
		t.Fatalf("build unexpectedly succeeded\ntranscript:\n%s", out.String())
	}
	if res == nil {
		t.Fatal("failed build must still return a non-nil Result")
	}
	return res, out.String(), err
}

// --- parsing → execution ---------------------------------------------------

func TestBuildParseErrorSurfaces(t *testing.T) {
	w, s := fixtures(t)
	if _, err := Build("FROM alpine:3.19\nBOGUS thing\n", Options{World: w, Store: s}); err == nil {
		t.Fatal("unknown instruction must fail the build")
	}
	if _, err := Build("RUN true\n", Options{World: w, Store: s}); err == nil {
		t.Fatal("RUN before FROM must fail")
	}
}

func TestBuildUnknownBaseImage(t *testing.T) {
	w, s := fixtures(t)
	_, err := Build("FROM nosuch:1\nRUN true\n", Options{World: w, Store: s})
	if err == nil || !strings.Contains(err.Error(), "not in storage") {
		t.Fatalf("err = %v", err)
	}
}

func TestBuildMetadataInstructions(t *testing.T) {
	w, s := fixtures(t)
	res, _ := mustBuild(t, `FROM alpine:3.19
ARG RELEASE=v9
ENV APP_HOME=/srv/app RELEASE_TAG=$RELEASE
LABEL maintainer="hpc@example.org"
WORKDIR $APP_HOME
RUN echo ready > status
USER 405
CMD ["/bin/sh", "-lc", "serve"]
ENTRYPOINT launcher
`, Options{World: w, Store: s, Tag: "meta:1"})

	cfg := res.Image.Config
	if cfg.WorkingDir != "/srv/app" {
		t.Errorf("WorkingDir = %q", cfg.WorkingDir)
	}
	if cfg.User != "405" {
		t.Errorf("User = %q", cfg.User)
	}
	if cfg.Labels["maintainer"] != "hpc@example.org" {
		t.Errorf("Labels = %v", cfg.Labels)
	}
	if len(cfg.Cmd) != 3 || cfg.Cmd[0] != "/bin/sh" {
		t.Errorf("Cmd = %v", cfg.Cmd)
	}
	if len(cfg.Entrypoint) != 3 || cfg.Entrypoint[2] != "launcher" {
		t.Errorf("Entrypoint = %v (shell form should wrap)", cfg.Entrypoint)
	}
	found := false
	for _, kv := range cfg.Env {
		if kv == "RELEASE_TAG=v9" {
			found = true
		}
	}
	if !found {
		t.Errorf("ARG did not expand into ENV: %v", cfg.Env)
	}

	// WORKDIR steered the relative RUN redirect.
	fs, err := res.Image.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	data, e := fs.ReadFile(vfs.RootContext(), "/srv/app/status")
	if !e.Ok() || strings.TrimSpace(string(data)) != "ready" {
		t.Errorf("/srv/app/status = %q, %v", data, e)
	}
}

func TestBuildArgsOverrideDefaults(t *testing.T) {
	w, s := fixtures(t)
	res, _ := mustBuild(t, "FROM alpine:3.19\nARG V=0.0\nRUN echo $V > /version\n",
		Options{World: w, Store: s, BuildArgs: map[string]string{"V": "2.7"}})
	fs, _ := res.Image.Flatten()
	data, _ := fs.ReadFile(vfs.RootContext(), "/version")
	if strings.TrimSpace(string(data)) != "2.7" {
		t.Fatalf("/version = %q", data)
	}
}

func TestBuildExecFormRun(t *testing.T) {
	w, s := fixtures(t)
	res, _ := mustBuild(t, `FROM alpine:3.19
RUN ["touch", "/made-by-exec-form"]
`, Options{World: w, Store: s})
	fs, _ := res.Image.Flatten()
	if !fs.Exists(vfs.RootContext(), "/made-by-exec-form") {
		t.Fatal("exec-form RUN did not execute")
	}
}

func TestBuildFailingRunStopsBuild(t *testing.T) {
	w, s := fixtures(t)
	_, _, err := mustFail(t, "FROM alpine:3.19\nRUN false\nRUN touch /later\n",
		Options{World: w, Store: s, Tag: "broken"})
	if !strings.Contains(err.Error(), "status 1") {
		t.Fatalf("err = %v", err)
	}
	if _, ok := s.Get("broken"); ok {
		t.Fatal("failed build must not tag an image")
	}
}

func TestBuildCopyFromContext(t *testing.T) {
	w, s := fixtures(t)
	ctx := map[string][]byte{"solver.c": []byte("int main(){}"), "data.txt": []byte("42")}
	res, _ := mustBuild(t, `FROM alpine:3.19
WORKDIR /opt/app
COPY solver.c .
COPY data.txt /etc/answer
`, Options{World: w, Store: s, Context: ctx})
	fs, _ := res.Image.Flatten()
	rc := vfs.RootContext()
	if b, e := fs.ReadFile(rc, "/opt/app/solver.c"); !e.Ok() || string(b) != "int main(){}" {
		t.Errorf("solver.c: %q %v", b, e)
	}
	if b, e := fs.ReadFile(rc, "/etc/answer"); !e.Ok() || string(b) != "42" {
		t.Errorf("/etc/answer: %q %v", b, e)
	}
}

func TestBuildCopyMissingSourceFails(t *testing.T) {
	w, s := fixtures(t)
	_, _, err := mustFail(t, "FROM alpine:3.19\nCOPY ghost.txt /g\n", Options{World: w, Store: s})
	if !strings.Contains(err.Error(), "not in build context") {
		t.Fatalf("err = %v", err)
	}
}

// --- force modes -----------------------------------------------------------

const yumDockerfile = "FROM centos:7\nRUN yum install -y openssh\n"

// TestBuildForceNoneCentOSFails is the Fig. 1b shape bench_test.go:181
// asserts: an unemulated missing-privilege install must fail, at rpm's
// unconditional cpio chown.
func TestBuildForceNoneCentOSFails(t *testing.T) {
	w, s := fixtures(t)
	res, tr, _ := mustFail(t, yumDockerfile, Options{World: w, Store: s, Force: ForceNone})
	if !strings.Contains(tr, "cpio: chown failed - Invalid argument") {
		t.Fatalf("transcript missing the cpio chown failure:\n%s", tr)
	}
	if res.VirtualNanos == 0 {
		t.Error("failed builds must still report modeled time (bench contract)")
	}
}

func TestBuildForceSeccompCentOSSucceeds(t *testing.T) {
	w, s := fixtures(t)
	res, tr := mustBuild(t, yumDockerfile, Options{World: w, Store: s, Force: ForceSeccomp})
	if !strings.Contains(tr, "Complete!") {
		t.Fatalf("transcript:\n%s", tr)
	}
	if res.Counters.Faked == 0 {
		t.Error("seccomp build must fake privileged syscalls")
	}
	if res.ModifiedRuns != 0 {
		t.Errorf("yum needs no RUN rewriting, got %d", res.ModifiedRuns)
	}
	if res.FakerootRecords != 0 {
		t.Errorf("zero-consistency emulation must keep zero state, got %d", res.FakerootRecords)
	}
	// The installed payload is really there.
	fs, _ := res.Image.Flatten()
	if !fs.Exists(vfs.RootContext(), "/usr/libexec/openssh/ssh-keysign") {
		t.Error("openssh payload missing from built image")
	}
}

func TestBuildForceFakerootCentOSSucceeds(t *testing.T) {
	w, s := fixtures(t)
	res, _ := mustBuild(t, yumDockerfile, Options{World: w, Store: s, Force: ForceFakeroot})
	if res.FakerootRecords == 0 {
		t.Error("consistent preload emulation must keep per-file records")
	}
	if res.Counters.PreloadHits == 0 {
		t.Error("no preload interceptions recorded")
	}
}

func TestBuildForceProotCentOSSucceeds(t *testing.T) {
	w, s := fixtures(t)
	res, _ := mustBuild(t, yumDockerfile, Options{World: w, Store: s, Force: ForceProot})
	if res.FakerootRecords == 0 {
		t.Error("proot keeps an ownership database")
	}
	if res.Counters.PtraceStops == 0 {
		t.Error("ptrace must charge stop events")
	}
}

// TestBuildEnrootVariantCannotBuild: the reduced setuid-only filter the
// paper credits to Enroot lacks the ownership class, so rpm's chown still
// fails — the completeness comparison, asserted here as promised by the
// BenchmarkBuildFilterVariants comment.
func TestBuildEnrootVariantCannotBuild(t *testing.T) {
	w, s := fixtures(t)
	_, tr, _ := mustFail(t, yumDockerfile, Options{
		World: w, Store: s, Force: ForceSeccomp,
		FilterConfig: core.Config{Variant: core.VariantEnroot},
	})
	if !strings.Contains(tr, "cpio: chown failed") {
		t.Fatalf("transcript:\n%s", tr)
	}
}

// --- the §5 apt exception --------------------------------------------------

const aptDockerfile = "FROM debian:12\nRUN apt-get install -y curl\n"

func TestBuildAptWorkaroundInjected(t *testing.T) {
	w, s := fixtures(t)
	res, tr := mustBuild(t, aptDockerfile, Options{World: w, Store: s, Force: ForceSeccomp})
	if res.ModifiedRuns != 1 {
		t.Errorf("ModifiedRuns = %d, want 1", res.ModifiedRuns)
	}
	if !strings.Contains(tr, "Download is performed unsandboxed as root") {
		t.Fatalf("transcript:\n%s", tr)
	}
}

func TestBuildAptWorkaroundDisabledFails(t *testing.T) {
	w, s := fixtures(t)
	_, tr, _ := mustFail(t, aptDockerfile, Options{
		World: w, Store: s, Force: ForceSeccomp, DisableAptWorkaround: true,
	})
	if !strings.Contains(tr, "reported success but uids are still") {
		t.Fatalf("transcript missing the verification failure:\n%s", tr)
	}
}

// --- result plumbing -------------------------------------------------------

func TestBuildTagsStoreAndPushes(t *testing.T) {
	w, s := fixtures(t)
	res, _ := mustBuild(t, "FROM alpine:3.19\nRUN apk add sl\n",
		Options{World: w, Store: s, Force: ForceSeccomp, Tag: "app:1"})
	got, ok := s.Get("app:1")
	if !ok || got != res.Image {
		t.Fatal("result image not tagged into the store")
	}
	if len(res.Image.Layers) < 2 {
		t.Fatalf("expected base + RUN layers, got %d", len(res.Image.Layers))
	}

	reg := image.NewRegistry(image.NewStore())
	url, err := reg.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	if err := image.Push(url, res.Image); err != nil {
		t.Fatalf("built image must be pushable: %v", err)
	}
	pulled, err := image.Pull(url, "app:1")
	if err != nil {
		t.Fatal(err)
	}
	if len(pulled.Layers) != len(res.Image.Layers) {
		t.Fatalf("pull round trip lost layers: %d != %d", len(pulled.Layers), len(res.Image.Layers))
	}
}

func TestBuildStepsWithoutChangesAddNoLayers(t *testing.T) {
	w, s := fixtures(t)
	res, _ := mustBuild(t, "FROM alpine:3.19\nRUN true\nENV X=1\n",
		Options{World: w, Store: s})
	if len(res.Image.Layers) != 1 {
		t.Fatalf("no-op steps must not add layers, got %d", len(res.Image.Layers))
	}
}

func TestForceModeStrings(t *testing.T) {
	want := map[ForceMode]string{
		ForceNone: "none", ForceSeccomp: "seccomp",
		ForceFakeroot: "fakeroot", ForceProot: "proot",
	}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(m), m.String(), s)
		}
	}
	if ForceNone != 0 {
		t.Error("ForceNone must be the zero value (Options{} defaults to no emulation)")
	}
}

func TestBuildAptWorkaroundExecForm(t *testing.T) {
	// Exec-form RUN invokes apt without a shell; the §5 injection must
	// reach it too.
	w, s := fixtures(t)
	res, tr := mustBuild(t, `FROM debian:12
RUN ["apt-get", "install", "-y", "curl"]
`, Options{World: w, Store: s, Force: ForceSeccomp})
	if res.ModifiedRuns != 1 {
		t.Errorf("ModifiedRuns = %d, want 1", res.ModifiedRuns)
	}
	if !strings.Contains(tr, "Download is performed unsandboxed as root") {
		t.Fatalf("transcript:\n%s", tr)
	}
}
