package build

// Service-mode pool tests: Start/Submit/Drain — the resident-worker mode
// the ch-imaged daemon runs on.

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestServiceStartValidation(t *testing.T) {
	p := &Pool{}
	if err := p.Start(); err == nil {
		t.Fatal("Start with Workers=0 should fail")
	}
	p = &Pool{Workers: 2}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	defer p.Drain()
	if err := p.Start(); err == nil {
		t.Fatal("second Start should fail")
	}
}

func TestServiceSubmitSharesCache(t *testing.T) {
	w, s := fixtures(t)
	cache := NewCache()
	p := &Pool{Workers: 2}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	defer p.Drain()

	opt := Options{Force: ForceSeccomp, Store: s, World: w, Cache: cache}
	submitWait := func(tag string) JobResult {
		o := opt
		o.Tag = tag
		ch, err := p.Submit(context.Background(), Job{Dockerfile: echoDockerfile, Options: o})
		if err != nil {
			t.Fatal(err)
		}
		return <-ch
	}

	first := submitWait("svc-a:latest")
	if first.Err != nil {
		t.Fatalf("first submit: %v", first.Err)
	}
	if first.Result.Executed == 0 {
		t.Fatal("cold build should execute instructions")
	}
	second := submitWait("svc-b:latest")
	if second.Err != nil {
		t.Fatalf("second submit: %v", second.Err)
	}
	if second.Result.Executed != 0 {
		t.Fatalf("warm build executed %d instructions, want 0", second.Result.Executed)
	}
	if second.Name != "svc-b:latest" {
		t.Fatalf("job name %q, want the tag", second.Name)
	}
	if first.Transcript == "" {
		t.Fatal("nil Output should capture a transcript")
	}
	for _, tag := range []string{"svc-a:latest", "svc-b:latest"} {
		if _, ok := s.Get(tag); !ok {
			t.Fatalf("tag %s not in store", tag)
		}
	}
}

func TestServiceSubmitPreCancelled(t *testing.T) {
	w, s := fixtures(t)
	p := &Pool{Workers: 1}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	defer p.Drain()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ch, err := p.Submit(ctx, Job{
		Name:       "dead",
		Dockerfile: echoDockerfile,
		Options:    Options{Force: ForceSeccomp, Store: s, World: w},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if !r.Cancelled {
		t.Fatal("pre-cancelled submit should report Cancelled")
	}
	if !errors.Is(r.Err, context.Canceled) {
		t.Fatalf("err %v should wrap context.Canceled", r.Err)
	}
	if r.Result != nil {
		t.Fatal("never-started job should have nil Result")
	}
}

func TestServiceParallelSubmitsAndIdleAccounting(t *testing.T) {
	w, s := fixtures(t)
	cache := NewCache()
	p := &Pool{Workers: 4}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}

	const jobs = 12
	var wg sync.WaitGroup
	errs := make([]error, jobs)
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			opt := Options{Force: ForceSeccomp, Store: s, World: w, Cache: cache}
			ch, err := p.Submit(context.Background(), Job{Dockerfile: echoDockerfile, Options: opt})
			if err != nil {
				errs[i] = err
				return
			}
			errs[i] = (<-ch).Err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
	}
	if n := p.InFlight(); n != 0 {
		t.Fatalf("InFlight after all results delivered = %d, want 0", n)
	}

	p.Drain()
	if _, err := p.Submit(context.Background(), Job{Dockerfile: echoDockerfile}); !errors.Is(err, ErrNotServing) {
		t.Fatalf("Submit after Drain: err %v, want ErrNotServing", err)
	}
	if n := p.InFlight(); n != 0 {
		t.Fatalf("InFlight after Drain = %d, want 0", n)
	}
}

func TestServiceDrainNotServingNoop(t *testing.T) {
	p := &Pool{Workers: 2}
	p.Drain() // never started: must not panic or hang
	if _, err := p.Submit(context.Background(), Job{}); !errors.Is(err, ErrNotServing) {
		t.Fatalf("Submit on unstarted pool: err %v, want ErrNotServing", err)
	}
}

func TestServiceSubmitCancelWhileRunning(t *testing.T) {
	w, s := fixtures(t)
	p := &Pool{Workers: 1}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	defer p.Drain()

	// Gate the build at its first instruction boundary, cancel, then
	// assert the job stopped at that boundary (the cancel_test contract).
	started := make(chan struct{})
	var once sync.Once
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opt := Options{
		Force: ForceSeccomp, Store: s, World: w,
		Progress: func(pctx context.Context, ev ProgressEvent) {
			once.Do(func() { close(started) })
			<-pctx.Done()
		},
	}
	ch, err := p.Submit(ctx, Job{Name: "victim", Dockerfile: echoDockerfile, Options: opt})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("build never reached an instruction boundary")
	}
	cancel()
	var r JobResult
	select {
	case r = <-ch:
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled job never returned")
	}
	if !r.Cancelled {
		t.Fatalf("cancelled running job: Cancelled=false, err=%v", r.Err)
	}
	if r.Result == nil {
		t.Fatal("cancelled in-flight job should carry its partial Result")
	}
	if r.Result.Executed != 0 {
		t.Fatalf("build gated before its first instruction executed %d, want 0", r.Result.Executed)
	}
}
