package build

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"

	"repro/internal/cas"
	"repro/internal/pkgmgr"
)

// The fault-injection harness: seeded randomized builds against a cas
// store with faults at every failpoint, asserting the robustness
// invariants — every build either succeeds (possibly degraded) or fails
// with a clean error, and the store always reopens reporting no damage.

// soakViolation records one broken invariant: in the test log, and — when
// FAULT_SOAK_LOG names a file (the `make fault-smoke` artifact) —
// appended there for CI to upload.
func soakViolation(t *testing.T, logPath, format string, args ...any) {
	t.Helper()
	msg := fmt.Sprintf(format, args...)
	t.Error("invariant violation: " + msg)
	if logPath == "" {
		return
	}
	f, err := os.OpenFile(logPath, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Logf("soak log unavailable: %v", err)
		return
	}
	defer f.Close()
	fmt.Fprintf(f, "%s: %s\n", t.Name(), msg)
}

// soakDockerfile assembles a random but always-buildable Dockerfile:
// 1–4 cacheable steps drawn from a safe set, in random order, so runs
// warm each other's caches in unpredictable overlaps.
func soakDockerfile(rng *rand.Rand) string {
	steps := []string{
		"RUN echo a > /a",
		"RUN echo b > /b",
		"RUN echo c > /srv-c",
		"COPY f.txt /f.txt",
		"ENV SOAK=1",
		"WORKDIR /work",
	}
	var b strings.Builder
	b.WriteString("FROM alpine:3.19\n")
	n := 1 + rng.Intn(4)
	for i := 0; i < n; i++ {
		b.WriteString(steps[rng.Intn(len(steps))] + "\n")
	}
	return b.String()
}

// TestFaultSoak is the `make fault-smoke` soak. Defaults are sized for
// the ordinary test run; the Makefile target raises FAULT_SOAK_BUILDS to
// 200. FAULT_SOAK_SEED pins the randomness (deterministic per seed);
// FAULT_SOAK_LOG collects invariant violations for the CI artifact.
func TestFaultSoak(t *testing.T) {
	builds := 16
	if v := os.Getenv("FAULT_SOAK_BUILDS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("FAULT_SOAK_BUILDS=%q: %v", v, err)
		}
		builds = n
	}
	var seed int64 = 1
	if v := os.Getenv("FAULT_SOAK_SEED"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("FAULT_SOAK_SEED=%q: %v", v, err)
		}
		seed = n
	}
	logPath := os.Getenv("FAULT_SOAK_LOG")
	root := filepath.Join(t.TempDir(), "cas")
	rng := rand.New(rand.NewSource(seed))
	w := pkgmgr.NewWorld()

	// Faults at every cas failpoint. The per-op rate is high enough that
	// most builds hit several faults, low enough that retries and
	// degraded mode still let most builds complete.
	rates := map[cas.Op]float64{}
	for _, op := range cas.AllOps {
		rates[op] = 0.15
	}

	succeeded, degraded, failed := 0, 0, 0
	for i := 0; i < builds; i++ {
		d, rep, err := cas.Open(root, cas.WithVerify(cas.VerifyLazy))
		if err != nil {
			soakViolation(t, logPath, "build %d: store failed to reopen: %v", i, err)
			return
		}
		if rep.Quarantined() {
			soakViolation(t, logPath, "build %d: store reopened with damage: %+v", i, rep)
		}
		// Seed before attaching the faulty backing: the soak targets the
		// build's own persistence, and Build's failure modes should not
		// be conflated with a half-seeded base store.
		_, s := fixtures(t)
		s.SetBacking(d)
		d.SetFailpoints(cas.NewPlan(rng.Int63(), rates))
		opt := Options{
			Tag: fmt.Sprintf("soak:%d", i%3), Force: ForceSeccomp,
			Store: s, World: w, Cache: NewPersistentCache(d),
			Context: map[string][]byte{"f.txt": []byte("payload")},
		}
		res, err := BuildContext(context.Background(), soakDockerfile(rng), opt)
		switch {
		case err != nil:
			// A failed build is allowed — the invariant is that it fails
			// cleanly (returned here, no panic, no hang) and leaves the
			// store undamaged, asserted by the reopen below.
			failed++
		case res == nil:
			soakViolation(t, logPath, "build %d: nil Result without error", i)
		case res.Degraded:
			degraded++
		default:
			succeeded++
		}

		// Reopen with full verification and no injector: the store must
		// report zero damage no matter what the faults did.
		d.SetFailpoints(nil)
		d.Close()
		d2, rep2, err := cas.Open(root, cas.WithVerify(cas.VerifyFull))
		if err != nil {
			soakViolation(t, logPath, "build %d: post-build reopen failed: %v", i, err)
			return
		}
		if rep2.Quarantined() {
			soakViolation(t, logPath, "build %d: post-build reopen found damage: %+v", i, rep2)
		}
		d2.Close()
	}

	// A final fault-free build against the surviving store must succeed.
	d, rep, err := cas.Open(root, cas.WithVerify(cas.VerifyFull))
	if err != nil || rep.Quarantined() {
		soakViolation(t, logPath, "final reopen: err=%v rep=%+v", err, rep)
		return
	}
	defer d.Close()
	_, s := fixtures(t)
	s.SetBacking(d)
	res, err := Build("FROM alpine:3.19\nRUN echo a > /a\n", Options{
		Tag: "soak:final", Force: ForceSeccomp, Store: s, World: w,
		Cache: NewPersistentCache(d),
	})
	if err != nil {
		soakViolation(t, logPath, "final fault-free build failed: %v", err)
	} else if res.Degraded {
		soakViolation(t, logPath, "final fault-free build degraded: %v", res.DegradedErrs)
	}
	t.Logf("soak: %d builds (seed %d): %d clean, %d degraded, %d failed cleanly",
		builds, seed, succeeded, degraded, failed)
}

// Satellite: ENOSPC during blob write-through degrades the build instead
// of failing it — the image is correct and tagged, Result.Degraded is
// set, and the store reopens clean.
func TestENOSPCWriteThroughDegradesBuild(t *testing.T) {
	root := t.TempDir()
	d, _, err := cas.Open(root)
	if err != nil {
		t.Fatal(err)
	}
	w, s := fixtures(t) // seeded before the backing attaches
	s.SetBacking(d)
	d.SetFailpoints(cas.FailOps(fmt.Errorf("injected: %w", syscall.ENOSPC), cas.OpBlobWrite))

	res, err := Build(echoDockerfile, Options{
		Tag: "e:1", Force: ForceSeccomp, Store: s, World: w,
		Cache: NewPersistentCache(d),
	})
	if err != nil {
		t.Fatalf("ENOSPC persistence must degrade, not fail: %v", err)
	}
	if !res.Degraded || len(res.DegradedErrs) == 0 {
		t.Fatalf("build not marked degraded: %+v", res)
	}
	if !errors.Is(errors.Join(res.DegradedErrs...), syscall.ENOSPC) {
		t.Fatalf("DegradedErrs should carry the ENOSPC: %v", res.DegradedErrs)
	}
	if _, ok := s.Get("e:1"); !ok {
		t.Fatal("degraded build must still tag its image in memory")
	}

	d.SetFailpoints(nil)
	d.Close()
	_, rep, err := cas.Open(root)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Quarantined() {
		t.Fatalf("ENOSPC faults damaged the store: %+v", rep)
	}
}

// Satellite: a quarantined blob hit mid-replay re-executes the
// instruction once and heals the store — the warm build succeeds with
// exactly one re-execution, and the store reopens clean afterwards.
func TestQuarantinedBlobMidReplayHeals(t *testing.T) {
	root := t.TempDir()
	const text = "FROM alpine:3.19\nRUN echo a > /a\nRUN echo b > /b\n"

	// Cold build to populate the store.
	d1, _, err := cas.Open(root)
	if err != nil {
		t.Fatal(err)
	}
	w, s1 := fixtures(t)
	s1.SetBacking(d1)
	res, err := Build(text, Options{
		Tag: "h:1", Force: ForceSeccomp, Store: s1, World: w,
		Cache: NewPersistentCache(d1),
	})
	if err != nil || res.Executed != 2 {
		t.Fatalf("cold build: executed=%d err=%v", res.Executed, err)
	}
	steps := d1.Steps()
	d1.Close()

	// Corrupt one recorded step's layer blob on disk.
	var victim string
	for _, st := range steps {
		if st.Layer != "" {
			victim = st.Layer
			break
		}
	}
	if victim == "" {
		t.Fatal("no persisted step layer to corrupt")
	}
	hexpart := strings.TrimPrefix(victim, "sha256:")
	blobPath := filepath.Join(root, "blobs", "sha256", hexpart[:2], hexpart[2:])
	if err := os.WriteFile(blobPath, []byte("rotted bytes"), 0o644); err != nil {
		t.Fatal(err)
	}

	// Warm build under lazy verification: the corrupt blob surfaces on
	// first read, is quarantined, and the instruction re-executes — one
	// Executed, not a failed build.
	d2, _, err := cas.Open(root, cas.WithVerify(cas.VerifyLazy))
	if err != nil {
		t.Fatal(err)
	}
	_, s2 := fixtures(t)
	s2.SetBacking(d2)
	res, err = Build(text, Options{
		Tag: "h:1", Force: ForceSeccomp, Store: s2, World: w,
		Cache: NewPersistentCache(d2),
	})
	if err != nil {
		t.Fatalf("warm build over quarantined blob must heal, got: %v", err)
	}
	if res.Executed != 1 {
		t.Fatalf("want exactly the corrupted step re-executed (1), got %d", res.Executed)
	}
	d2.Close()

	// Healed: a full-verification reopen finds no damage and a second
	// warm build replays everything.
	d3, rep, err := cas.Open(root, cas.WithVerify(cas.VerifyFull))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Quarantined() {
		t.Fatalf("store still damaged after heal: %+v", rep)
	}
	_, s3 := fixtures(t)
	s3.SetBacking(d3)
	res, err = Build(text, Options{
		Tag: "h:1", Force: ForceSeccomp, Store: s3, World: w,
		Cache: NewPersistentCache(d3),
	})
	if err != nil || res.Executed != 0 {
		t.Fatalf("post-heal warm build: executed=%d err=%v", res.Executed, err)
	}
	d3.Close()
}

// A corrupt layer already in memory is fatal, not silently re-executed:
// by the time the apply fails, the rootfs may hold a partial unpack, and
// re-executing on it would bake the damage into a fresh layer.
func TestCorruptInMemoryCacheLayerIsFatal(t *testing.T) {
	w, s := fixtures(t)
	cache := NewCache()
	opt := Options{Tag: "c:1", Force: ForceSeccomp, Store: s, World: w, Cache: cache}
	if _, err := Build(echoDockerfile, opt); err != nil {
		t.Fatal(err)
	}
	cache.mu.Lock()
	poisoned := 0
	for k, e := range cache.entries {
		if len(e.layer) > 0 {
			e.layer = []byte("not a packed layer")
			cache.entries[k] = e
			poisoned++
		}
	}
	cache.mu.Unlock()
	if poisoned == 0 {
		t.Fatal("no layered entries to poison")
	}
	_, err := Build(echoDockerfile, opt)
	if err == nil || !strings.Contains(err.Error(), "corrupt cache layer") {
		t.Fatalf("want fatal corrupt-cache-layer error, got %v", err)
	}
}
