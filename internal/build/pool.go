// The parallel build farm. The paper's argument is that seccomp root
// emulation makes unprivileged builds cheap enough to run everywhere at
// once; Pool is the "at once": N independent Dockerfile builds, each with
// its own simos kernel and VFS, all sharing one instruction Cache and one
// image.Store. The shared layers are single-flight (Cache.getOrBegin,
// Store.flattened), so identical work submitted N times executes once and
// replays N−1 times — the pool's wall time approaches the cost of the
// distinct work, not the submitted work.
package build

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
)

// Job is one build submitted to a Pool.
type Job struct {
	// Name identifies the job in its JobResult; defaults to Options.Tag,
	// then to "job-<index>".
	Name string

	// Dockerfile is the build text.
	Dockerfile string

	// Options configures the build. Store, World and Cache are typically
	// shared across the pool's jobs — that sharing is the point — but any
	// job may override them. A nil Output is replaced with a private
	// buffer whose contents land in JobResult.Transcript.
	Options Options

	// stage, when set by the multi-stage driver, makes this job execute
	// one stage of an already-parsed Dockerfile instead of Dockerfile.
	stage *stageJob
}

// JobResult is the outcome of one pooled build, in submission order.
type JobResult struct {
	// Name echoes the job identity.
	Name string

	// Result is the build's result; non-nil even on failure or
	// cancellation (it carries the counters accrued up to the point the
	// build stopped). Nil only when the job never started — skipped by
	// fail-fast or pre-empted by a cancelled context.
	Result *Result

	// Err is the build error, nil on success. Skipped jobs report
	// ErrSkipped; cancelled jobs report an error wrapping
	// context.Canceled.
	Err error

	// Cancelled distinguishes a job stopped by context cancellation —
	// the caller's, or the pool's own fail-fast cancel — from a job that
	// genuinely failed. A cancelled in-flight job still carries the
	// partial Transcript and Result it accrued before stopping.
	Cancelled bool

	// Transcript is the captured build output when the job's Options.
	// Output was nil; empty otherwise (the caller's writer received it).
	// Cancelled and failed jobs keep the partial transcript they
	// produced — it is the evidence of where they stopped.
	Transcript string
}

// ErrSkipped marks jobs a fail-fast pool never started.
var ErrSkipped = errors.New("build: job skipped: pool failing fast")

// ErrNotServing reports a Submit against a pool that is not in service
// mode — never Started, or already Drained.
var ErrNotServing = errors.New("build: pool not serving")

// Pool runs batches of builds with bounded concurrency. It has two modes:
// RunContext executes one batch and returns when it is done, while
// Start/Submit/Drain turn the pool into a resident build service — Workers
// goroutines stay up between jobs and callers hand in work one job at a
// time (the ch-imaged daemon's mode). One Pool value uses one mode at a
// time; the zero value is a batch pool.
type Pool struct {
	// Workers bounds concurrent builds; <= 0 means one worker per job
	// in batch mode. Service mode requires Workers >= 1. Immutable once
	// the pool is in use.
	Workers int

	// FailFast cancels the pool after the first failure: queued unstarted
	// jobs report ErrSkipped, and in-flight sibling builds are actively
	// cancelled — each stops at its next instruction boundary and reports
	// Cancelled with its partial transcript. When false (collect-all),
	// every job runs and the aggregate error joins every failure.
	// Batch mode only; a service pool's jobs are independent.
	FailFast bool

	// wg tracks the resident service-mode workers; it synchronises
	// itself and so lives above mu.
	wg sync.WaitGroup

	// mu guards the service-mode state below it.
	mu       sync.Mutex
	serving  bool
	submit   chan *serviceJob
	stop     chan struct{}
	inFlight int
}

// serviceJob is one Submit-ted build travelling to a resident worker.
type serviceJob struct {
	ctx  context.Context
	job  Job
	done chan JobResult // buffered: the worker's send never blocks
}

// Start switches the pool into service mode: Workers resident goroutines
// consume Submit-ted jobs until Drain. Workers must be at least 1 — a
// service has no batch length to default to.
func (p *Pool) Start() error {
	if p.Workers < 1 {
		return fmt.Errorf("build: pool service mode needs Workers >= 1 (got %d)", p.Workers)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.serving {
		return fmt.Errorf("build: pool already serving")
	}
	p.serving = true
	p.submit = make(chan *serviceJob)
	p.stop = make(chan struct{})
	p.wg.Add(p.Workers)
	for w := 0; w < p.Workers; w++ {
		go p.serveLoop(p.submit, p.stop)
	}
	return nil
}

// serveLoop is one resident worker. The channels arrive as parameters so
// the loop never reads the mutex-guarded fields they came from.
func (p *Pool) serveLoop(submit <-chan *serviceJob, stop <-chan struct{}) {
	defer p.wg.Done()
	for {
		select {
		case <-stop:
			return
		case sj := <-submit:
			p.noteJob(1)
			sj.done <- runJob(sj.ctx, sj.job, "job")
			p.noteJob(-1)
		}
	}
}

// noteJob adjusts the service-mode in-flight count.
func (p *Pool) noteJob(delta int) {
	mPoolInFlight.Add(int64(delta))
	p.mu.Lock()
	defer p.mu.Unlock()
	p.inFlight += delta
}

// Submit hands one job to a started pool and returns a channel that will
// carry its JobResult. Submit blocks until a resident worker accepts the
// job; cancelling ctx while waiting returns immediately with a channel
// already carrying the cancelled not-started result, exactly as a batch
// pool reports a job pre-empted by a dead context. The same ctx governs
// the build itself — cancel it to stop the job at its next instruction
// boundary.
func (p *Pool) Submit(ctx context.Context, job Job) (<-chan JobResult, error) {
	p.mu.Lock()
	serving, submit, stop := p.serving, p.submit, p.stop
	p.mu.Unlock()
	if !serving {
		return nil, ErrNotServing
	}
	sj := &serviceJob{ctx: ctx, job: job, done: make(chan JobResult, 1)}
	mPoolWaiting.Inc()
	defer mPoolWaiting.Dec()
	select {
	case submit <- sj:
		return sj.done, nil
	case <-stop:
		return nil, ErrNotServing
	case <-ctx.Done():
		sj.done <- runJob(ctx, job, "job")
		return sj.done, nil
	}
}

// InFlight reports how many service-mode jobs are executing right now; a
// drained or idle pool reports 0 — the daemon's no-leak check.
func (p *Pool) InFlight() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.inFlight
}

// Drain leaves service mode: new Submits fail with ErrNotServing, the
// resident workers finish the job they hold and exit, and Drain returns
// once all of them have. Draining a pool that is not serving is a no-op.
func (p *Pool) Drain() {
	p.mu.Lock()
	if !p.serving {
		p.mu.Unlock()
		return
	}
	p.serving = false
	stop := p.stop
	p.mu.Unlock()
	close(stop)
	p.wg.Wait()
}

// jobName picks the reported identity of a job: Name, then Options.Tag,
// then the caller's positional fallback.
func jobName(job Job, fallback string) string {
	if job.Name != "" {
		return job.Name
	}
	if job.Options.Tag != "" {
		return job.Options.Tag
	}
	return fallback
}

// runJob executes one job under ctx — the shared heart of the batch
// worker loop and the service-mode workers. A ctx already dead on entry
// reports the cancelled not-started shape without running anything; a
// job whose Options.Output is nil gets a private buffer whose contents
// land in JobResult.Transcript.
func runJob(ctx context.Context, job Job, fallback string) JobResult {
	name := jobName(job, fallback)
	if ctx.Err() != nil {
		return JobResult{
			Name:      name,
			Err:       fmt.Errorf("build: job %s not started: %w", name, ctx.Err()),
			Cancelled: true,
		}
	}
	var buf *bytes.Buffer
	opt := job.Options
	if opt.Output == nil {
		buf = &bytes.Buffer{}
		opt.Output = buf
	}
	var res *Result
	var err error
	if job.stage != nil {
		res, _, err = buildOneStage(ctx, job.stage.file, job.stage.idx, job.stage.imgs, opt)
	} else {
		res, err = BuildContext(ctx, job.Dockerfile, opt)
	}
	r := JobResult{Name: name, Result: res, Err: err}
	r.Cancelled = err != nil && errors.Is(err, context.Canceled)
	if buf != nil {
		r.Transcript = buf.String()
	}
	return r
}

// Run is RunContext under context.Background().
func (p *Pool) Run(jobs []Job) ([]JobResult, error) {
	//chlint:allow ctxfirst -- context-free compat wrapper; RunContext is the real entry point
	return p.RunContext(context.Background(), jobs)
}

// RunContext executes jobs and returns one JobResult per job, in
// submission order, plus the aggregate error (errors.Join of the per-job
// failures). Results are complete even when the error is non-nil — the
// caller decides what a partial batch is worth. Cancelling ctx stops
// every in-flight build at its next instruction boundary; jobs not yet
// started report Cancelled without running.
func (p *Pool) RunContext(ctx context.Context, jobs []Job) ([]JobResult, error) {
	results := make([]JobResult, len(jobs))
	if len(jobs) == 0 {
		return results, nil
	}
	workers := p.Workers
	if workers <= 0 || workers > len(jobs) {
		workers = len(jobs)
	}

	// runCtx is the pool's own cancellation scope: the caller's ctx plus
	// fail-fast. The first failure cancels it, which both stops dispatch
	// and actively interrupts the sibling builds already running.
	runCtx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()

	var (
		wg      sync.WaitGroup
		indices = make(chan int)
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range indices {
				job := jobs[i]
				fallback := fmt.Sprintf("job-%d", i)
				if runCtx.Err() != nil && ctx.Err() == nil {
					// Fail-fast tripped by a sibling's failure. (A dead
					// caller ctx instead falls through to runJob, which
					// reports the cancelled not-started shape.)
					results[i] = JobResult{Name: jobName(job, fallback), Err: ErrSkipped}
					continue
				}
				results[i] = runJob(runCtx, job, fallback)
				if results[i].Err != nil && p.FailFast {
					cancelRun()
				}
			}
		}()
	}
	for i := range jobs {
		indices <- i
	}
	close(indices)
	wg.Wait()

	var errs []error
	for _, r := range results {
		if r.Err != nil {
			name := r.Name
			errs = append(errs, fmt.Errorf("%s: %w", name, r.Err))
		}
	}
	return results, errors.Join(errs...)
}
