// The parallel build farm. The paper's argument is that seccomp root
// emulation makes unprivileged builds cheap enough to run everywhere at
// once; Pool is the "at once": N independent Dockerfile builds, each with
// its own simos kernel and VFS, all sharing one instruction Cache and one
// image.Store. The shared layers are single-flight (Cache.getOrBegin,
// Store.flattened), so identical work submitted N times executes once and
// replays N−1 times — the pool's wall time approaches the cost of the
// distinct work, not the submitted work.
package build

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
)

// Job is one build submitted to a Pool.
type Job struct {
	// Name identifies the job in its JobResult; defaults to Options.Tag,
	// then to "job-<index>".
	Name string

	// Dockerfile is the build text.
	Dockerfile string

	// Options configures the build. Store, World and Cache are typically
	// shared across the pool's jobs — that sharing is the point — but any
	// job may override them. A nil Output is replaced with a private
	// buffer whose contents land in JobResult.Transcript.
	Options Options

	// stage, when set by the multi-stage driver, makes this job execute
	// one stage of an already-parsed Dockerfile instead of Dockerfile.
	stage *stageJob
}

// JobResult is the outcome of one pooled build, in submission order.
type JobResult struct {
	// Name echoes the job identity.
	Name string

	// Result is the build's result; non-nil even on failure or
	// cancellation (it carries the counters accrued up to the point the
	// build stopped). Nil only when the job never started — skipped by
	// fail-fast or pre-empted by a cancelled context.
	Result *Result

	// Err is the build error, nil on success. Skipped jobs report
	// ErrSkipped; cancelled jobs report an error wrapping
	// context.Canceled.
	Err error

	// Cancelled distinguishes a job stopped by context cancellation —
	// the caller's, or the pool's own fail-fast cancel — from a job that
	// genuinely failed. A cancelled in-flight job still carries the
	// partial Transcript and Result it accrued before stopping.
	Cancelled bool

	// Transcript is the captured build output when the job's Options.
	// Output was nil; empty otherwise (the caller's writer received it).
	// Cancelled and failed jobs keep the partial transcript they
	// produced — it is the evidence of where they stopped.
	Transcript string
}

// ErrSkipped marks jobs a fail-fast pool never started.
var ErrSkipped = errors.New("build: job skipped: pool failing fast")

// Pool runs batches of builds with bounded concurrency.
type Pool struct {
	// Workers bounds concurrent builds; <= 0 means one worker per job.
	Workers int

	// FailFast cancels the pool after the first failure: queued unstarted
	// jobs report ErrSkipped, and in-flight sibling builds are actively
	// cancelled — each stops at its next instruction boundary and reports
	// Cancelled with its partial transcript. When false (collect-all),
	// every job runs and the aggregate error joins every failure.
	FailFast bool
}

// Run is RunContext under context.Background().
func (p *Pool) Run(jobs []Job) ([]JobResult, error) {
	//chlint:allow ctxfirst -- context-free compat wrapper; RunContext is the real entry point
	return p.RunContext(context.Background(), jobs)
}

// RunContext executes jobs and returns one JobResult per job, in
// submission order, plus the aggregate error (errors.Join of the per-job
// failures). Results are complete even when the error is non-nil — the
// caller decides what a partial batch is worth. Cancelling ctx stops
// every in-flight build at its next instruction boundary; jobs not yet
// started report Cancelled without running.
func (p *Pool) RunContext(ctx context.Context, jobs []Job) ([]JobResult, error) {
	results := make([]JobResult, len(jobs))
	if len(jobs) == 0 {
		return results, nil
	}
	workers := p.Workers
	if workers <= 0 || workers > len(jobs) {
		workers = len(jobs)
	}

	// runCtx is the pool's own cancellation scope: the caller's ctx plus
	// fail-fast. The first failure cancels it, which both stops dispatch
	// and actively interrupts the sibling builds already running.
	runCtx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()

	var (
		wg      sync.WaitGroup
		indices = make(chan int)
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range indices {
				job := jobs[i]
				name := job.Name
				if name == "" {
					name = job.Options.Tag
				}
				if name == "" {
					name = fmt.Sprintf("job-%d", i)
				}
				if runCtx.Err() != nil {
					if ctx.Err() != nil {
						// The caller cancelled the whole pool.
						results[i] = JobResult{
							Name:      name,
							Err:       fmt.Errorf("build: job %s not started: %w", name, ctx.Err()),
							Cancelled: true,
						}
					} else {
						// Fail-fast tripped by a sibling's failure.
						results[i] = JobResult{Name: name, Err: ErrSkipped}
					}
					continue
				}
				var buf *bytes.Buffer
				opt := job.Options
				if opt.Output == nil {
					buf = &bytes.Buffer{}
					opt.Output = buf
				}
				var res *Result
				var err error
				if job.stage != nil {
					res, _, err = buildOneStage(runCtx, job.stage.file, job.stage.idx, job.stage.imgs, opt)
				} else {
					res, err = BuildContext(runCtx, job.Dockerfile, opt)
				}
				r := JobResult{Name: name, Result: res, Err: err}
				r.Cancelled = err != nil && errors.Is(err, context.Canceled)
				if buf != nil {
					r.Transcript = buf.String()
				}
				results[i] = r
				if err != nil && p.FailFast {
					cancelRun()
				}
			}
		}()
	}
	for i := range jobs {
		indices <- i
	}
	close(indices)
	wg.Wait()

	var errs []error
	for _, r := range results {
		if r.Err != nil {
			name := r.Name
			errs = append(errs, fmt.Errorf("%s: %w", name, r.Err))
		}
	}
	return results, errors.Join(errs...)
}
