package container

import (
	"strings"
	"testing"

	"repro/internal/errno"
	"repro/internal/simos"
	"repro/internal/vfs"
)

func world(uid int) (*simos.Kernel, *simos.Proc, *vfs.FS) {
	k := simos.NewKernel()
	host := vfs.New()
	p := k.NewInitProc(simos.Mount{FS: host, Owner: k.InitNS()}, uid, uid)
	img := vfs.New()
	rc := vfs.RootContext()
	img.MkdirAll(rc, "/tmp", 0o1777, uid, uid)
	img.ChownAll(uid, uid)
	return k, p, img
}

// E12: §2 classification — setup privilege requirements.

func TestTypeIRequiresPrivilege(t *testing.T) {
	_, p, img := world(1000)
	err := Enter(p, Options{Type: TypeI, RootFS: img})
	if err == nil || !strings.Contains(err.Error(), "CAP_SYS_ADMIN") {
		t.Fatalf("unprivileged Type I: %v", err)
	}
	// Root can.
	_, rp, rimg := world(0)
	if err := Enter(rp, Options{Type: TypeI, RootFS: rimg}); err != nil {
		t.Fatalf("root Type I: %v", err)
	}
	// No user namespace: still the init one.
	if rp.Cred().NS.Level() != 0 {
		t.Fatal("Type I must not create a user namespace")
	}
}

func TestTypeIIRequiresHelper(t *testing.T) {
	_, p, img := world(1000)
	err := Enter(p, Options{Type: TypeII, RootFS: img})
	if err == nil || !strings.Contains(err.Error(), "newuidmap") {
		t.Fatalf("Type II without helper: %v", err)
	}
	_, p2, img2 := world(1000)
	if err := Enter(p2, Options{Type: TypeII, RootFS: img2, Helper: true}); err != nil {
		t.Fatalf("Type II with helper: %v", err)
	}
	// Type II's benefit (§2): multiple IDs are mapped.
	if _, ok := p2.Cred().NS.UIDToGlobal(37); !ok {
		t.Fatal("Type II must map a UID range beyond 0")
	}
}

func TestTypeIIIFullyUnprivileged(t *testing.T) {
	_, p, img := world(1000)
	if err := Enter(p, Options{Type: TypeIII, RootFS: img}); err != nil {
		t.Fatalf("Type III: %v", err)
	}
	if p.Geteuid() != 0 {
		t.Fatalf("container euid view = %d", p.Geteuid())
	}
	if !p.Cred().Capable(simos.CapChown) {
		t.Fatal("container root must hold caps in its namespace")
	}
	// Single mapping only.
	if _, ok := p.Cred().NS.UIDToGlobal(1); ok {
		t.Fatal("Type III must map exactly one UID")
	}
	// Groups are locked (setgroups denied).
	if e := p.Setgroups([]int{0}); e != errno.OK {
		// EPERM expected
	} else {
		t.Fatal("setgroups must be denied in a Type III container")
	}
}

func TestTypeIIChownToSubordinateUIDStillFailsOnHostFS(t *testing.T) {
	// Even Type II (multi-mapping) cannot chown on an init-ns-owned
	// filesystem: the capability check is against the superblock's
	// namespace. This isolates the difference between ID *mapping*
	// (EINVAL) and capability (EPERM).
	_, p, img := world(1000)
	if err := Enter(p, Options{Type: TypeII, RootFS: img, Helper: true}); err != nil {
		t.Fatal(err)
	}
	p.WriteFileAll("/tmp/f", []byte("x"), 0o644)
	e := p.Chown("/tmp/f", 37, 37) // mapped in Type II
	if e != errno.EPERM {
		t.Fatalf("chown to mapped-but-foreign uid: %v, want EPERM", e)
	}
}

func TestTypeIIIChownUnmappedEINVAL(t *testing.T) {
	_, p, img := world(1000)
	Enter(p, Options{Type: TypeIII, RootFS: img})
	p.WriteFileAll("/tmp/f", []byte("x"), 0o644)
	if e := p.Chown("/tmp/f", 37, 37); e != errno.EINVAL {
		t.Fatalf("chown unmapped: %v, want EINVAL", e)
	}
}

func TestEnterRequiresRootFS(t *testing.T) {
	_, p, _ := world(1000)
	if err := Enter(p, Options{Type: TypeIII}); err == nil {
		t.Fatal("nil rootfs must fail")
	}
}

func TestCapsSummary(t *testing.T) {
	_, p, img := world(1000)
	Enter(p, Options{Type: TypeIII, RootFS: img})
	s := Caps(p)
	if !strings.Contains(s, "euid=0") {
		t.Fatalf("caps summary: %s", s)
	}
}

func TestTypeStrings(t *testing.T) {
	if TypeI.String() != "Type I" || TypeII.String() != "Type II" || TypeIII.String() != "Type III" {
		t.Fatal("type strings")
	}
}
