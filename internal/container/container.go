// Package container implements the paper's tripartite container
// classification (§2) over the simulated kernel:
//
//	Type I   — mount namespace only; setup requires root or CAP_SYS_ADMIN.
//	Type II  — mount + privileged user namespaces; setup needs the setuid
//	           helpers newuidmap(1)/newgidmap(1) (CAP_SETUID/CAP_SETGID),
//	           so it is "rootless" in name only.
//	Type III — mount + unprivileged user namespaces; setup is fully
//	           unprivileged, the only kind acceptable for HPC centres that
//	           forbid elevated access of any sort.
//
// Enter() performs the setup appropriate to the requested type and
// re-roots the process onto the image filesystem, leaving the process as
// "container root" — EUID 0 in its namespace view with full capabilities
// there and, for Type III, a single-ID mapping to the invoking user.
package container

import (
	"fmt"

	"repro/internal/errno"
	"repro/internal/simos"
	"repro/internal/vfs"
)

// Type is the container classification.
type Type int

const (
	// TypeI uses the mount namespace but not the user namespace.
	TypeI Type = iota + 1
	// TypeII uses mount plus privileged user namespaces.
	TypeII
	// TypeIII uses mount plus unprivileged user namespaces.
	TypeIII
)

func (t Type) String() string {
	switch t {
	case TypeI:
		return "Type I"
	case TypeII:
		return "Type II"
	case TypeIII:
		return "Type III"
	}
	return "Type ?"
}

// Options configures container entry.
type Options struct {
	Type Type

	// RootFS is the image filesystem to pivot onto.
	RootFS *vfs.FS

	// UIDMaps/GIDMaps for Type II (multi-range, via the privileged
	// helpers). Ignored for Type III, which always gets the single
	// mapping {0 -> invoking IDs}.
	UIDMaps []simos.MapRange
	GIDMaps []simos.MapRange

	// Helper simulates the presence of setuid-root newuidmap/newgidmap
	// binaries for Type II. Without it, Type II setup fails — the paper's
	// point that "rootless" Type II still depends on privileged helpers.
	Helper bool
}

// Enter performs container setup on p. On success the process is rooted
// on RootFS with the privilege structure of the requested type.
func Enter(p *simos.Proc, opt Options) error {
	if opt.RootFS == nil {
		return fmt.Errorf("container: no root filesystem")
	}
	cred := p.Cred()
	initNS := p.Kernel().InitNS()
	switch opt.Type {
	case TypeI:
		// Mount-namespace-only: requires privilege in the init namespace.
		if !cred.CapableIn(simos.CapSysAdmin, initNS) {
			return fmt.Errorf("container: Type I setup requires root or CAP_SYS_ADMIN: %s", errno.EPERM.Message())
		}
		// No user namespace: IDs pass through. Pivot only.
		p.SetMount(simos.Mount{FS: opt.RootFS, Owner: initNS})
		return nil

	case TypeII:
		// Privileged user namespace: multi-range maps installed by the
		// setuid helpers.
		if !opt.Helper && !cred.CapableIn(simos.CapSetuid, initNS) {
			return fmt.Errorf("container: Type II setup requires newuidmap/newgidmap (setuid helpers)")
		}
		if e := p.UnshareUser(); e != errno.OK {
			return fmt.Errorf("container: unshare: %v", e)
		}
		uidMaps := opt.UIDMaps
		if len(uidMaps) == 0 {
			uidMaps = []simos.MapRange{
				{Inside: 0, Global: cred.EUID, Count: 1},
				{Inside: 1, Global: 100000, Count: 65536},
			}
		}
		gidMaps := opt.GIDMaps
		if len(gidMaps) == 0 {
			gidMaps = []simos.MapRange{
				{Inside: 0, Global: cred.EGID, Count: 1},
				{Inside: 1, Global: 100000, Count: 65536},
			}
		}
		// The helper writes the maps with CAP_SETUID/CAP_SETGID in the
		// parent namespace; simulate by using the privileged map writer.
		if err := writeMapsPrivileged(p, uidMaps, gidMaps); err != nil {
			return err
		}
		p.SetMount(simos.Mount{FS: opt.RootFS, Owner: initNS})
		return nil

	case TypeIII:
		// Fully unprivileged: single-ID maps written by the process
		// itself, setgroups denied — the paper's target environment.
		if e := p.UnshareUser(); e != errno.OK {
			return fmt.Errorf("container: unshare: %v", e)
		}
		if e := p.WriteUIDMap([]simos.MapRange{{Inside: 0, Global: cred.EUID, Count: 1}}); e != errno.OK {
			return fmt.Errorf("container: uid_map: %v", e)
		}
		if e := p.DenySetgroups(); e != errno.OK {
			return fmt.Errorf("container: setgroups deny: %v", e)
		}
		if e := p.WriteGIDMap([]simos.MapRange{{Inside: 0, Global: cred.EGID, Count: 1}}); e != errno.OK {
			return fmt.Errorf("container: gid_map: %v", e)
		}
		p.SetMount(simos.Mount{FS: opt.RootFS, Owner: initNS})
		return nil
	}
	return fmt.Errorf("container: unknown type %d", int(opt.Type))
}

// writeMapsPrivileged installs multi-range maps as the setuid helpers
// would: newuidmap/newgidmap are setuid root, so the write happens with
// CAP_SETUID/CAP_SETGID in the parent namespace regardless of the caller's
// own (lack of) privilege.
func writeMapsPrivileged(p *simos.Proc, uidMaps, gidMaps []simos.MapRange) error {
	if err := simos.HelperWriteMaps(p, uidMaps, gidMaps); err != nil {
		return fmt.Errorf("container: newuidmap/newgidmap: %w", err)
	}
	return nil
}

// Caps reports a summary string for transcripts and tests.
func Caps(p *simos.Proc) string {
	cred := p.Cred()
	return fmt.Sprintf("euid=%d ns=%s caps_in_ns=%v",
		p.Geteuid(), cred.NS.Name(), cred.Capable(simos.CapChown))
}
