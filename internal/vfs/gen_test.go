package vfs

import (
	"strings"
	"testing"

	"repro/internal/errno"
)

// visited runs WalkSince and returns the visited paths.
func visited(t *testing.T, fs *FS, since uint64) []string {
	t.Helper()
	var out []string
	if _, err := fs.WalkSince(since, func(n *Node) error {
		out = append(out, n.Path)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestGenerationAdvancesOnMutation(t *testing.T) {
	fs := New()
	rc := RootContext()
	g0 := fs.Generation()
	fs.MkdirAll(rc, "/etc", 0o755, 0, 0)
	if fs.Generation() <= g0 {
		t.Fatal("mkdir did not advance the generation")
	}
	g1 := fs.Generation()
	fs.Stat(rc, "/etc", true)
	fs.ReadDir(rc, "/")
	fs.Exists(rc, "/etc")
	if fs.Generation() != g1 {
		t.Fatal("read-only operations advanced the generation")
	}
}

func TestWalkSincePrunesCleanSubtrees(t *testing.T) {
	fs := New()
	rc := RootContext()
	fs.MkdirAll(rc, "/clean/deep", 0o755, 0, 0)
	fs.WriteFile(rc, "/clean/deep/f", []byte("x"), 0o644, 0, 0)
	fs.MkdirAll(rc, "/dirty", 0o755, 0, 0)
	since := fs.Generation()

	fs.WriteFile(rc, "/dirty/new", []byte("y"), 0o644, 0, 0)
	got := visited(t, fs, since)
	want := []string{"/", "/dirty", "/dirty/new"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("dirty walk visited %v, want %v", got, want)
	}

	// Nothing changed since the walk: the next incremental walk is empty.
	since = fs.Generation()
	if got := visited(t, fs, since); len(got) != 0 {
		t.Fatalf("clean walk visited %v", got)
	}
}

func TestWalkSinceFullWalkOrder(t *testing.T) {
	fs := New()
	rc := RootContext()
	fs.MkdirAll(rc, "/b/sub", 0o755, 0, 0)
	fs.WriteFile(rc, "/b/sub/f", []byte("x"), 0o644, 0, 0)
	fs.WriteFile(rc, "/a", []byte("x"), 0o644, 0, 0)
	got := visited(t, fs, 0)
	want := []string{"/", "/a", "/b", "/b/sub", "/b/sub/f"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("full walk visited %v, want %v", got, want)
	}
}

func TestHardLinkDirtiesEveryPath(t *testing.T) {
	fs := New()
	rc := RootContext()
	fs.MkdirAll(rc, "/a", 0o755, 0, 0)
	fs.MkdirAll(rc, "/b", 0o755, 0, 0)
	fs.WriteFile(rc, "/a/f", []byte("v1"), 0o644, 0, 0)
	fs.Link(rc, "/a/f", "/b/g")
	since := fs.Generation()

	fs.WriteFile(rc, "/a/f", []byte("v2"), 0o644, 0, 0)
	got := strings.Join(visited(t, fs, since), " ")
	if !strings.Contains(got, "/a/f") || !strings.Contains(got, "/b/g") {
		t.Fatalf("hard-link write visited only %q", got)
	}
}

func TestUnlinkDirtiesParent(t *testing.T) {
	fs := New()
	rc := RootContext()
	fs.MkdirAll(rc, "/d", 0o755, 0, 0)
	fs.WriteFile(rc, "/d/f", []byte("x"), 0o644, 0, 0)
	since := fs.Generation()
	fs.Unlink(rc, "/d/f")
	got := visited(t, fs, since)
	want := []string{"/", "/d"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("unlink visited %v, want %v", got, want)
	}
}

func TestRenameStampsMovedSubtree(t *testing.T) {
	fs := New()
	rc := RootContext()
	fs.MkdirAll(rc, "/src/tree", 0o755, 0, 0)
	fs.WriteFile(rc, "/src/tree/f", []byte("x"), 0o644, 0, 0)
	fs.MkdirAll(rc, "/dst", 0o755, 0, 0)
	since := fs.Generation()
	if e := fs.Rename(rc, "/src/tree", "/dst/tree"); e != errno.OK {
		t.Fatal(e)
	}
	got := strings.Join(visited(t, fs, since), " ")
	for _, p := range []string{"/src", "/dst", "/dst/tree", "/dst/tree/f"} {
		if !strings.Contains(got, p) {
			t.Fatalf("rename walk %q misses %s", got, p)
		}
	}
}

func TestDigestCachedAndInvalidated(t *testing.T) {
	fs := New()
	rc := RootContext()
	fs.WriteFile(rc, "/f", []byte("v1"), 0o644, 0, 0)
	digestOf := func() string {
		var d string
		fs.WalkSince(0, func(n *Node) error {
			if n.Path == "/f" {
				d = n.Digest
			}
			return nil
		})
		return d
	}
	d1 := digestOf()
	if d1 == "" {
		t.Fatal("no digest for regular file")
	}
	if d2 := digestOf(); d2 != d1 {
		t.Fatalf("digest unstable: %s vs %s", d1, d2)
	}
	// Metadata-only change keeps the digest; a data write changes it.
	fs.Chmod(rc, "/f", 0o600, false)
	if d3 := digestOf(); d3 != d1 {
		t.Fatal("chmod changed the content digest")
	}
	fs.WriteFile(rc, "/f", []byte("v2"), 0o644, 0, 0)
	if d4 := digestOf(); d4 == d1 {
		t.Fatal("write did not change the content digest")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	fs := New()
	rc := RootContext()
	fs.MkdirAll(rc, "/d", 0o755, 0, 0)
	fs.WriteFile(rc, "/d/f", []byte("orig"), 0o644, 7, 7)
	fs.Link(rc, "/d/f", "/d/g")
	fs.SetXattr(rc, "/d/f", "security.capability", []byte{1}, false)

	cl := fs.Clone()
	if cl.Generation() != fs.Generation() {
		t.Fatal("clone lost the generation counter")
	}

	// Hard links survive cloning: writing through one clone path shows up
	// at the other clone path, but never in the original.
	if e := cl.WriteFile(rc, "/d/f", []byte("edit"), 0o644, 7, 7); e != errno.OK {
		t.Fatal(e)
	}
	if got, _ := cl.ReadFile(rc, "/d/g"); string(got) != "edit" {
		t.Fatalf("clone broke hard links: %q", got)
	}
	if got, _ := fs.ReadFile(rc, "/d/f"); string(got) != "orig" {
		t.Fatalf("clone write leaked into original: %q", got)
	}
	// And the reverse direction.
	fs.SetXattr(rc, "/d/f", "security.capability", []byte{9}, false)
	v, _ := cl.GetXattr(rc, "/d/f", "security.capability", false)
	if len(v) != 1 || v[0] != 1 {
		t.Fatalf("original xattr write leaked into clone: %v", v)
	}

	// The clone's change tracking works: only its own edits are dirty.
	since := fs.Generation()
	cl.WriteFile(rc, "/d/new", []byte("x"), 0o644, 0, 0)
	var cnt int
	cl.WalkSince(since, func(*Node) error { cnt++; return nil })
	if cnt == 0 {
		t.Fatal("clone mutations invisible to WalkSince")
	}
}
