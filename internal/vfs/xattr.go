package vfs

import (
	"sort"
	"strings"

	"repro/internal/errno"
)

// Extended attributes. The namespace rules matter to the paper's future
// work (§6): setcap(8) writes security.capability, which in an unprivileged
// user namespace fails EPERM — the reason systemd-adjacent packages break
// and the extended filter variant exists.

// xattrPermission checks whether ac may set or remove attribute name on n.
func xattrPermission(ac *AccessContext, n *inode, name string) errno.Errno {
	switch {
	case strings.HasPrefix(name, "user."):
		// user.* follows file permissions, on regular files and dirs only.
		if n.typ != TypeRegular && n.typ != TypeDir {
			return errno.EPERM
		}
		return checkWrite(ac, n)
	case strings.HasPrefix(name, "security."):
		// security.capability and friends require CAP_SETFCAP /
		// CAP_SYS_ADMIN in the *superblock's* namespace; ac carries that
		// pre-resolved.
		if !ac.CapSetfcap {
			return errno.EPERM
		}
		return errno.OK
	case strings.HasPrefix(name, "trusted."):
		if !ac.CapSetfcap {
			return errno.EPERM
		}
		return errno.OK
	case strings.HasPrefix(name, "system."):
		return errno.EOPNOTSUPP
	}
	return errno.EOPNOTSUPP
}

// SetXattr sets an extended attribute.
func (fs *FS) SetXattr(ac *AccessContext, path, name string, value []byte, follow bool) errno.Errno {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.readonly {
		return errno.EROFS
	}
	n, e := fs.lookup(ac, path, follow)
	if e != errno.OK {
		return e
	}
	if e := xattrPermission(ac, n, name); e != errno.OK {
		return e
	}
	if n.xattrs == nil {
		n.xattrs = map[string][]byte{}
	}
	v := make([]byte, len(value))
	copy(v, value)
	n.xattrs[name] = v
	n.mtime = fs.clock()
	fs.touch(n)
	return errno.OK
}

// GetXattr reads an extended attribute.
func (fs *FS) GetXattr(ac *AccessContext, path, name string, follow bool) ([]byte, errno.Errno) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	n, e := fs.lookup(ac, path, follow)
	if e != errno.OK {
		return nil, e
	}
	if strings.HasPrefix(name, "user.") {
		if e := checkRead(ac, n); e != errno.OK {
			return nil, e
		}
	}
	v, ok := n.xattrs[name]
	if !ok {
		return nil, errno.ENODATA
	}
	out := make([]byte, len(v))
	copy(out, v)
	return out, errno.OK
}

// ListXattr lists attribute names, sorted.
func (fs *FS) ListXattr(ac *AccessContext, path string, follow bool) ([]string, errno.Errno) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	n, e := fs.lookup(ac, path, follow)
	if e != errno.OK {
		return nil, e
	}
	out := make([]string, 0, len(n.xattrs))
	for name := range n.xattrs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out, errno.OK
}

// RemoveXattr deletes an attribute.
func (fs *FS) RemoveXattr(ac *AccessContext, path, name string, follow bool) errno.Errno {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.readonly {
		return errno.EROFS
	}
	n, e := fs.lookup(ac, path, follow)
	if e != errno.OK {
		return e
	}
	if e := xattrPermission(ac, n, name); e != errno.OK {
		return e
	}
	if _, ok := n.xattrs[name]; !ok {
		return errno.ENODATA
	}
	delete(n.xattrs, name)
	n.mtime = fs.clock()
	fs.touch(n)
	return errno.OK
}
