package vfs

import (
	"strings"

	"repro/internal/errno"
)

// maxSymlinkDepth mirrors the kernel's MAXSYMLINKS (40 since Linux 2.6).
const maxSymlinkDepth = 40

// maxNameLen mirrors NAME_MAX.
const maxNameLen = 255

// splitPath normalises an absolute path into components. "." components
// vanish; ".." is resolved lexically against the stack the walker builds,
// matching how the walker treats it (we resolve ".." during the walk, not
// lexically, to honour symlinked parents — see walk).
func splitPath(path string) []string {
	var out []string
	for _, c := range strings.Split(path, "/") {
		if c != "" && c != "." {
			out = append(out, c)
		}
	}
	return out
}

// walkResult carries the terminal state of a path walk.
type walkResult struct {
	node   *inode // resolved inode, nil if the final component is missing
	parent *inode // directory containing (or that would contain) the final component
	base   string // final component name
}

// walk resolves path from the root, enforcing search permission on every
// traversed directory and following symlinks up to maxSymlinkDepth. When
// followFinal is false a trailing symlink is returned itself (lstat,
// unlink, lchown semantics). The final component may be absent, in which
// case node is nil and parent/base describe where it would be created; a
// missing *intermediate* component is ENOENT.
func (fs *FS) walk(ac *AccessContext, path string, followFinal bool) (walkResult, errno.Errno) {
	if !strings.HasPrefix(path, "/") {
		return walkResult{}, errno.EINVAL // simos always passes absolute paths
	}
	depth := 0
	return fs.walkFrom(ac, fs.root, splitPath(path), followFinal, &depth)
}

func (fs *FS) walkFrom(ac *AccessContext, dir *inode, comps []string, followFinal bool, depth *int) (walkResult, errno.Errno) {
	cur := dir
	// Track the parent chain for "..".
	parents := []*inode{}
	for i := 0; i < len(comps); i++ {
		name := comps[i]
		if len(name) > maxNameLen {
			return walkResult{}, errno.ENAMETOOLONG
		}
		if !cur.isDir() {
			return walkResult{}, errno.ENOTDIR
		}
		if e := checkExec(ac, cur); e != errno.OK {
			return walkResult{}, e
		}
		if name == ".." {
			if len(parents) > 0 {
				cur = parents[len(parents)-1]
				parents = parents[:len(parents)-1]
			}
			// ".." at root stays at root, as in a chroot.
			continue
		}
		child, ok := cur.children[name]
		last := i == len(comps)-1
		if !ok {
			if last {
				return walkResult{parent: cur, base: name}, errno.OK
			}
			return walkResult{}, errno.ENOENT
		}
		if child.typ == TypeSymlink && (!last || followFinal) {
			*depth++
			if *depth > maxSymlinkDepth {
				return walkResult{}, errno.ELOOP
			}
			target := child.target
			rest := comps[i+1:]
			var tcomps []string
			var tdir *inode
			if strings.HasPrefix(target, "/") {
				tdir = fs.root
				tcomps = splitPath(target)
			} else {
				tdir = cur
				tcomps = splitPath(target)
			}
			tcomps = append(append([]string{}, tcomps...), rest...)
			if len(tcomps) == 0 {
				// Symlink to "/" as the final component.
				return walkResult{node: fs.root, parent: fs.root, base: "/"}, errno.OK
			}
			if tdir == cur {
				// Relative target: resume the walk in place with the
				// current parent chain preserved.
				comps = append(tcomps, comps[len(comps):]...)
				i = -1
				// Re-rooting at cur: keep parents as-is.
				continue
			}
			return fs.walkFrom(ac, tdir, tcomps, followFinal, depth)
		}
		if last {
			return walkResult{node: child, parent: cur, base: name}, errno.OK
		}
		parents = append(parents, cur)
		cur = child
	}
	// Empty path after splitting: the root itself.
	return walkResult{node: cur, parent: cur, base: "/"}, errno.OK
}

// lookup resolves path to an existing inode.
func (fs *FS) lookup(ac *AccessContext, path string, followFinal bool) (*inode, errno.Errno) {
	r, e := fs.walk(ac, path, followFinal)
	if e != errno.OK {
		return nil, e
	}
	if r.node == nil {
		return nil, errno.ENOENT
	}
	return r.node, errno.OK
}

// lookupParent resolves the directory that does/would contain path's final
// component, for create-type operations.
func (fs *FS) lookupParent(ac *AccessContext, path string) (*inode, string, errno.Errno) {
	r, e := fs.walk(ac, path, false)
	if e != errno.OK {
		return nil, "", e
	}
	if r.base == "/" {
		return nil, "", errno.EEXIST // operating on the root itself
	}
	return r.parent, r.base, errno.OK
}

// joinComponents reassembles split path components.
func joinComponents(comps []string) string {
	out := ""
	for i, c := range comps {
		if i > 0 {
			out += "/"
		}
		out += c
	}
	return out
}
