package vfs

import (
	"testing"

	"repro/internal/errno"
)

// ctxFor builds an unprivileged access context for uid/gid.
func ctxFor(uid, gid int, groups ...int) *AccessContext {
	return &AccessContext{UID: uid, GID: gid, Groups: groups}
}

// newPopulated builds a small tree as root:
//
//	/etc (0755)              root:root
//	/etc/passwd (0644)       root:root
//	/home/alice (0700)       1000:1000
//	/tmp (1777 sticky)       root:root
//	/bin/sh -> busybox       root:root
//	/bin/busybox (0755)      root:root
func newPopulated(t *testing.T) *FS {
	t.Helper()
	fs := New()
	rc := RootContext()
	must := func(e errno.Errno) {
		t.Helper()
		if e != errno.OK {
			t.Fatalf("setup: %v", e)
		}
	}
	must(fs.Mkdir(rc, "/etc", 0o755, 0, 0))
	must(fs.WriteFile(rc, "/etc/passwd", []byte("root:x:0:0::/root:/bin/sh\n"), 0o644, 0, 0))
	must(fs.Mkdir(rc, "/home", 0o755, 0, 0))
	must(fs.Mkdir(rc, "/home/alice", 0o700, 1000, 1000))
	must(fs.Mkdir(rc, "/tmp", 0o777|SISVTX, 0, 0))
	must(fs.Mkdir(rc, "/bin", 0o755, 0, 0))
	must(fs.WriteFile(rc, "/bin/busybox", []byte("#!bin"), 0o755, 0, 0))
	must(fs.Symlink(rc, "busybox", "/bin/sh", 0, 0))
	return fs
}

func TestStatBasics(t *testing.T) {
	fs := newPopulated(t)
	st, e := fs.Stat(RootContext(), "/etc/passwd", true)
	if e != errno.OK {
		t.Fatalf("stat: %v", e)
	}
	if st.Type != TypeRegular || st.Mode != 0o644 || st.UID != 0 || st.Size == 0 {
		t.Fatalf("stat %+v", st)
	}
	if _, e := fs.Stat(RootContext(), "/nope", true); e != errno.ENOENT {
		t.Fatalf("missing file: %v", e)
	}
	if _, e := fs.Stat(RootContext(), "/etc/passwd/x", true); e != errno.ENOTDIR {
		t.Fatalf("file as dir: %v", e)
	}
}

func TestLstatVsStatOnSymlink(t *testing.T) {
	fs := newPopulated(t)
	rc := RootContext()
	l, e := fs.Stat(rc, "/bin/sh", false)
	if e != errno.OK || l.Type != TypeSymlink {
		t.Fatalf("lstat: %+v %v", l, e)
	}
	s, e := fs.Stat(rc, "/bin/sh", true)
	if e != errno.OK || s.Type != TypeRegular {
		t.Fatalf("stat follows: %+v %v", s, e)
	}
}

func TestSymlinkChains(t *testing.T) {
	fs := newPopulated(t)
	rc := RootContext()
	fs.Symlink(rc, "/bin/sh", "/bin/sh2", 0, 0)
	fs.Symlink(rc, "sh2", "/bin/sh3", 0, 0)
	st, e := fs.Stat(rc, "/bin/sh3", true)
	if e != errno.OK || st.Type != TypeRegular {
		t.Fatalf("chained symlink: %+v %v", st, e)
	}
}

func TestSymlinkLoopELOOP(t *testing.T) {
	fs := New()
	rc := RootContext()
	fs.Symlink(rc, "/b", "/a", 0, 0)
	fs.Symlink(rc, "/a", "/b", 0, 0)
	if _, e := fs.Stat(rc, "/a", true); e != errno.ELOOP {
		t.Fatalf("loop: %v", e)
	}
}

func TestSymlinkIntoDirectory(t *testing.T) {
	fs := newPopulated(t)
	rc := RootContext()
	fs.Symlink(rc, "/etc", "/link-etc", 0, 0)
	st, e := fs.Stat(rc, "/link-etc/passwd", true)
	if e != errno.OK || st.Type != TypeRegular {
		t.Fatalf("symlinked dir traversal: %v", e)
	}
}

func TestDotDotStaysInRoot(t *testing.T) {
	fs := newPopulated(t)
	st, e := fs.Stat(RootContext(), "/../../../etc/passwd", true)
	if e != errno.OK || st.Type != TypeRegular {
		t.Fatalf("dotdot at root: %v", e)
	}
}

func TestPermissionDeniedTraversal(t *testing.T) {
	fs := newPopulated(t)
	bob := ctxFor(1001, 1001)
	// /home/alice is 0700 alice.
	if _, e := fs.Stat(bob, "/home/alice/file", true); e != errno.EACCES {
		t.Fatalf("bob crossing alice's 0700 dir: %v", e)
	}
	// alice herself passes (to ENOENT, which proves traversal succeeded).
	alice := ctxFor(1000, 1000)
	if _, e := fs.Stat(alice, "/home/alice/file", true); e != errno.ENOENT {
		t.Fatalf("alice in own dir: %v", e)
	}
}

func TestGroupPermission(t *testing.T) {
	fs := New()
	rc := RootContext()
	fs.Mkdir(rc, "/shared", 0o070, 0, 42)
	member := ctxFor(1000, 1000, 42)
	outsider := ctxFor(1001, 1001)
	if _, e := fs.ReadDir(member, "/shared"); e != errno.OK {
		t.Fatalf("group member read: %v", e)
	}
	if _, e := fs.ReadDir(outsider, "/shared"); e != errno.EACCES {
		t.Fatalf("outsider read: %v", e)
	}
}

func TestOtherBitsApplyWhenNotOwnerOrGroup(t *testing.T) {
	fs := New()
	rc := RootContext()
	// 0604: owner rw, group none, other r. A group member gets the group
	// bits (none), not the other bits — the POSIX first-match rule.
	fs.WriteFile(rc, "/f", []byte("x"), 0o604, 0, 42)
	member := ctxFor(1000, 42)
	if _, e := fs.ReadFile(member, "/f"); e != errno.EACCES {
		t.Fatalf("group member must be denied by group bits: %v", e)
	}
	outsider := ctxFor(1001, 7)
	if _, e := fs.ReadFile(outsider, "/f"); e != errno.OK {
		t.Fatalf("other must read via other bits: %v", e)
	}
}

func TestWriteFileAndReadBack(t *testing.T) {
	fs := newPopulated(t)
	alice := ctxFor(1000, 1000)
	if e := fs.WriteFile(alice, "/home/alice/note", []byte("hi"), 0o644, 1000, 1000); e != errno.OK {
		t.Fatalf("write: %v", e)
	}
	data, e := fs.ReadFile(alice, "/home/alice/note")
	if e != errno.OK || string(data) != "hi" {
		t.Fatalf("read back: %q %v", data, e)
	}
}

func TestWriteDeniedWithoutPermission(t *testing.T) {
	fs := newPopulated(t)
	bob := ctxFor(1001, 1001)
	if e := fs.WriteFile(bob, "/etc/evil", []byte("x"), 0o644, 1001, 1001); e != errno.EACCES {
		t.Fatalf("write into 0755 root dir by bob: %v", e)
	}
	if e := fs.WriteFile(bob, "/etc/passwd", []byte("x"), 0o644, 1001, 1001); e != errno.EACCES {
		t.Fatalf("overwrite 0644 root file by bob: %v", e)
	}
}

func TestChownRequiresCapability(t *testing.T) {
	fs := newPopulated(t)
	alice := ctxFor(1000, 1000)
	fs.WriteFile(RootContext(), "/home/alice/own", []byte("x"), 0o644, 1000, 1000)
	// Owner without CAP_CHOWN cannot give the file away.
	if e := fs.Chown(alice, "/home/alice/own", 0, -1, true); e != errno.EPERM {
		t.Fatalf("chown away without cap: %v", e)
	}
	// Non-owner without cap cannot chown at all, even as a no-op.
	bob := ctxFor(1001, 1001)
	if e := fs.Chown(bob, "/etc/passwd", 0, 0, true); e != errno.EPERM {
		t.Fatalf("no-op chown by non-owner: %v", e)
	}
	// CAP_CHOWN changes anything.
	capd := &AccessContext{UID: 1000, GID: 1000, CapChown: true, CapDACOverride: true}
	if e := fs.Chown(capd, "/home/alice/own", 2000, 2000, true); e != errno.OK {
		t.Fatalf("capable chown: %v", e)
	}
	st, _ := fs.Stat(RootContext(), "/home/alice/own", true)
	if st.UID != 2000 || st.GID != 2000 {
		t.Fatalf("chown did not apply: %+v", st)
	}
}

func TestChownGroupToOwnGroup(t *testing.T) {
	fs := New()
	rc := RootContext()
	fs.WriteFile(rc, "/f", []byte("x"), 0o644, 1000, 1000)
	alice := ctxFor(1000, 1000, 42)
	// Owner may chgrp to a group they belong to.
	if e := fs.Chown(alice, "/f", -1, 42, true); e != errno.OK {
		t.Fatalf("chgrp to own group: %v", e)
	}
	// But not to an arbitrary one.
	if e := fs.Chown(alice, "/f", -1, 999, true); e != errno.EPERM {
		t.Fatalf("chgrp to foreign group: %v", e)
	}
}

func TestChownClearsSetuidBits(t *testing.T) {
	fs := New()
	rc := RootContext()
	fs.WriteFile(rc, "/sbin-su", []byte("x"), 0o644, 0, 0)
	fs.Chmod(rc, "/sbin-su", 0o4755, true)
	capd := &AccessContext{UID: 0, GID: 0, CapChown: true, CapDACOverride: true}
	if e := fs.Chown(capd, "/sbin-su", 10, 10, true); e != errno.OK {
		t.Fatalf("chown: %v", e)
	}
	st, _ := fs.Stat(rc, "/sbin-su", true)
	if st.Mode&SISUID != 0 {
		t.Fatalf("setuid bit must be cleared by chown: %o", st.Mode)
	}
}

func TestChmodOwnerOrFowner(t *testing.T) {
	fs := newPopulated(t)
	alice := ctxFor(1000, 1000)
	bob := ctxFor(1001, 1001)
	fs.WriteFile(RootContext(), "/home/alice/f", []byte("x"), 0o600, 1000, 1000)
	if e := fs.Chmod(alice, "/home/alice/f", 0o640, true); e != errno.OK {
		t.Fatalf("owner chmod: %v", e)
	}
	// bob can't even reach it (alice's dir is 0700) — test via a file he
	// can reach but doesn't own.
	if e := fs.Chmod(bob, "/etc/passwd", 0o666, true); e != errno.EPERM {
		t.Fatalf("non-owner chmod: %v", e)
	}
	fowner := &AccessContext{UID: 1001, GID: 1001, CapFowner: true, CapDACOverride: true}
	if e := fs.Chmod(fowner, "/etc/passwd", 0o600, true); e != errno.OK {
		t.Fatalf("CAP_FOWNER chmod: %v", e)
	}
}

func TestMknodDeviceRequiresCapability(t *testing.T) {
	fs := New()
	plain := ctxFor(1000, 1000)
	fs.Mkdir(RootContext(), "/dev", 0o777, 0, 0)
	if e := fs.Mknod(plain, "/dev/null0", TypeCharDev, 0o666, Makedev(1, 3), 1000, 1000); e != errno.EPERM {
		t.Fatalf("unprivileged device mknod: %v", e)
	}
	// FIFOs and sockets are unprivileged.
	if e := fs.Mknod(plain, "/dev/fifo", TypeFIFO, 0o644, 0, 1000, 1000); e != errno.OK {
		t.Fatalf("fifo mknod: %v", e)
	}
	if e := fs.Mknod(plain, "/dev/sock", TypeSocket, 0o644, 0, 1000, 1000); e != errno.OK {
		t.Fatalf("socket mknod: %v", e)
	}
	capd := &AccessContext{UID: 0, GID: 0, CapMknod: true, CapDACOverride: true}
	if e := fs.Mknod(capd, "/dev/null", TypeCharDev, 0o666, Makedev(1, 3), 0, 0); e != errno.OK {
		t.Fatalf("capable device mknod: %v", e)
	}
	st, _ := fs.Stat(RootContext(), "/dev/null", true)
	if st.Type != TypeCharDev || st.Rdev.Major() != 1 || st.Rdev.Minor() != 3 {
		t.Fatalf("device node %+v", st)
	}
}

func TestStickyBitDeletion(t *testing.T) {
	fs := newPopulated(t)
	alice := ctxFor(1000, 1000)
	bob := ctxFor(1001, 1001)
	fs.WriteFile(alice, "/tmp/alice.txt", []byte("x"), 0o644, 1000, 1000)
	// /tmp is 1777: bob may create but not delete alice's file.
	if e := fs.Unlink(bob, "/tmp/alice.txt"); e != errno.EPERM {
		t.Fatalf("sticky deletion by bob: %v", e)
	}
	if e := fs.Unlink(alice, "/tmp/alice.txt"); e != errno.OK {
		t.Fatalf("sticky deletion by owner: %v", e)
	}
}

func TestUnlinkRmdirErrors(t *testing.T) {
	fs := newPopulated(t)
	rc := RootContext()
	if e := fs.Unlink(rc, "/etc"); e != errno.EISDIR {
		t.Fatalf("unlink dir: %v", e)
	}
	if e := fs.Rmdir(rc, "/etc/passwd"); e != errno.ENOTDIR {
		t.Fatalf("rmdir file: %v", e)
	}
	if e := fs.Rmdir(rc, "/etc"); e != errno.ENOTEMPTY {
		t.Fatalf("rmdir non-empty: %v", e)
	}
	fs.Unlink(rc, "/etc/passwd")
	if e := fs.Rmdir(rc, "/etc"); e != errno.OK {
		t.Fatalf("rmdir empty: %v", e)
	}
}

func TestHardLinks(t *testing.T) {
	fs := newPopulated(t)
	rc := RootContext()
	if e := fs.Link(rc, "/etc/passwd", "/etc/passwd2"); e != errno.OK {
		t.Fatalf("link: %v", e)
	}
	st1, _ := fs.Stat(rc, "/etc/passwd", true)
	st2, _ := fs.Stat(rc, "/etc/passwd2", true)
	if st1.Ino != st2.Ino || st1.Nlink != 2 {
		t.Fatalf("hard link identity: %+v %+v", st1, st2)
	}
	if e := fs.Link(rc, "/etc", "/etc2"); e != errno.EPERM {
		t.Fatalf("hard link to dir: %v", e)
	}
	fs.Unlink(rc, "/etc/passwd")
	st2, _ = fs.Stat(rc, "/etc/passwd2", true)
	if st2.Nlink != 1 {
		t.Fatalf("nlink after unlink: %d", st2.Nlink)
	}
}

func TestRename(t *testing.T) {
	fs := newPopulated(t)
	rc := RootContext()
	if e := fs.Rename(rc, "/etc/passwd", "/etc/passwd.bak"); e != errno.OK {
		t.Fatalf("rename: %v", e)
	}
	if fs.Exists(rc, "/etc/passwd") {
		t.Fatal("old name still present")
	}
	// Replacing an existing file.
	fs.WriteFile(rc, "/etc/new", []byte("n"), 0o644, 0, 0)
	if e := fs.Rename(rc, "/etc/new", "/etc/passwd.bak"); e != errno.OK {
		t.Fatalf("rename replace: %v", e)
	}
	data, _ := fs.ReadFile(rc, "/etc/passwd.bak")
	if string(data) != "n" {
		t.Fatalf("replacement content %q", data)
	}
	// Directory onto non-empty directory fails.
	fs.Mkdir(rc, "/d1", 0o755, 0, 0)
	fs.Mkdir(rc, "/d2", 0o755, 0, 0)
	fs.WriteFile(rc, "/d2/x", []byte("x"), 0o644, 0, 0)
	if e := fs.Rename(rc, "/d1", "/d2"); e != errno.ENOTEMPTY {
		t.Fatalf("rename dir onto non-empty: %v", e)
	}
}

func TestSetgidDirectoryInheritance(t *testing.T) {
	fs := New()
	rc := RootContext()
	fs.Mkdir(rc, "/proj", 0o2775, 0, 0)
	fs.Chown(rc, "/proj", 0, 42, true)
	// chown cleared nothing on the dir; re-apply sgid for the test.
	fs.Chmod(rc, "/proj", 0o2775, true)
	member := ctxFor(1000, 1000, 42)
	if e := fs.WriteFile(member, "/proj/f", []byte("x"), 0o644, 1000, 1000); e != errno.OK {
		t.Fatalf("write: %v", e)
	}
	st, _ := fs.Stat(rc, "/proj/f", true)
	if st.GID != 42 {
		t.Fatalf("sgid dir must assign group 42, got %d", st.GID)
	}
	if e := fs.Mkdir(member, "/proj/sub", 0o755, 1000, 1000); e != errno.OK {
		t.Fatalf("mkdir: %v", e)
	}
	sub, _ := fs.Stat(rc, "/proj/sub", true)
	if sub.GID != 42 || sub.Mode&SISGID == 0 {
		t.Fatalf("sgid subdir: %+v", sub)
	}
}

func TestXattrUserNamespace(t *testing.T) {
	fs := New()
	rc := RootContext()
	fs.WriteFile(rc, "/f", []byte("x"), 0o644, 1000, 1000)
	alice := ctxFor(1000, 1000)
	if e := fs.SetXattr(alice, "/f", "user.note", []byte("v"), true); e != errno.OK {
		t.Fatalf("user xattr: %v", e)
	}
	v, e := fs.GetXattr(alice, "/f", "user.note", true)
	if e != errno.OK || string(v) != "v" {
		t.Fatalf("get xattr: %q %v", v, e)
	}
	names, _ := fs.ListXattr(alice, "/f", true)
	if len(names) != 1 || names[0] != "user.note" {
		t.Fatalf("list xattr: %v", names)
	}
	if e := fs.RemoveXattr(alice, "/f", "user.note", true); e != errno.OK {
		t.Fatalf("remove xattr: %v", e)
	}
	if _, e := fs.GetXattr(alice, "/f", "user.note", true); e != errno.ENODATA {
		t.Fatalf("xattr after remove: %v", e)
	}
}

func TestXattrSecurityRequiresCapability(t *testing.T) {
	// The future-work case (§6): setcap writes security.capability, EPERM
	// for an unprivileged user namespace.
	fs := New()
	rc := RootContext()
	fs.WriteFile(rc, "/bin-ping", []byte("x"), 0o755, 1000, 1000)
	alice := ctxFor(1000, 1000)
	if e := fs.SetXattr(alice, "/bin-ping", "security.capability", []byte{1}, true); e != errno.EPERM {
		t.Fatalf("security xattr without cap: %v", e)
	}
	capd := &AccessContext{UID: 0, CapSetfcap: true, CapDACOverride: true}
	if e := fs.SetXattr(capd, "/bin-ping", "security.capability", []byte{1}, true); e != errno.OK {
		t.Fatalf("security xattr with cap: %v", e)
	}
}

func TestReadonlyFS(t *testing.T) {
	fs := newPopulated(t)
	fs.SetReadonly(true)
	rc := RootContext()
	if e := fs.WriteFile(rc, "/x", []byte("x"), 0o644, 0, 0); e != errno.EROFS {
		t.Fatalf("write on ro fs: %v", e)
	}
	if e := fs.Unlink(rc, "/etc/passwd"); e != errno.EROFS {
		t.Fatalf("unlink on ro fs: %v", e)
	}
	if e := fs.Chown(rc, "/etc/passwd", 1, 1, true); e != errno.EROFS {
		t.Fatalf("chown on ro fs: %v", e)
	}
	if _, e := fs.ReadFile(rc, "/etc/passwd"); e != errno.OK {
		t.Fatalf("read on ro fs: %v", e)
	}
	fs.SetReadonly(false)
	if e := fs.WriteFile(rc, "/x", []byte("x"), 0o644, 0, 0); e != errno.OK {
		t.Fatalf("write after rw remount: %v", e)
	}
}

func TestHandleIO(t *testing.T) {
	fs := New()
	rc := RootContext()
	h, e := fs.Open(rc, "/f", OpenFlags{Write: true, Create: true, Mode: 0o644})
	if e != errno.OK {
		t.Fatalf("open create: %v", e)
	}
	if _, e := h.WriteAt([]byte("hello world"), 0); e != errno.OK {
		t.Fatalf("write: %v", e)
	}
	if _, e := h.WriteAt([]byte("WORLD"), 6); e != errno.OK {
		t.Fatalf("overwrite: %v", e)
	}
	buf := make([]byte, 32)
	n, e := h.ReadAt(buf, 0)
	if e != errno.OK || string(buf[:n]) != "hello WORLD" {
		t.Fatalf("read: %q %v", buf[:n], e)
	}
	// Sparse write grows with zeros.
	h.WriteAt([]byte("z"), 20)
	if h.Size() != 21 {
		t.Fatalf("size %d", h.Size())
	}
	h.Truncate(5)
	n, _ = h.ReadAt(buf, 0)
	if string(buf[:n]) != "hello" {
		t.Fatalf("after truncate: %q", buf[:n])
	}
}

func TestHandleSurvivesUnlink(t *testing.T) {
	fs := New()
	rc := RootContext()
	fs.WriteFile(rc, "/f", []byte("data"), 0o644, 0, 0)
	h, e := fs.Open(rc, "/f", OpenFlags{})
	if e != errno.OK {
		t.Fatalf("open: %v", e)
	}
	fs.Unlink(rc, "/f")
	buf := make([]byte, 4)
	n, e := h.ReadAt(buf, 0)
	if e != errno.OK || string(buf[:n]) != "data" {
		t.Fatalf("read after unlink: %q %v", buf[:n], e)
	}
}

func TestOpenExclusive(t *testing.T) {
	fs := New()
	rc := RootContext()
	fs.WriteFile(rc, "/f", []byte("x"), 0o644, 0, 0)
	if _, e := fs.Open(rc, "/f", OpenFlags{Write: true, Create: true, Excl: true}); e != errno.EEXIST {
		t.Fatalf("O_EXCL on existing: %v", e)
	}
}

func TestOpenTruncate(t *testing.T) {
	fs := New()
	rc := RootContext()
	fs.WriteFile(rc, "/f", []byte("old content"), 0o644, 0, 0)
	h, e := fs.Open(rc, "/f", OpenFlags{Write: true, Truncate: true})
	if e != errno.OK {
		t.Fatalf("open trunc: %v", e)
	}
	if h.Size() != 0 {
		t.Fatalf("size after O_TRUNC: %d", h.Size())
	}
}

func TestReadDirSorted(t *testing.T) {
	fs := New()
	rc := RootContext()
	for _, n := range []string{"/c", "/a", "/b"} {
		fs.WriteFile(rc, n, []byte("x"), 0o644, 0, 0)
	}
	ents, e := fs.ReadDir(rc, "/")
	if e != errno.OK || len(ents) != 3 {
		t.Fatalf("readdir: %v %v", ents, e)
	}
	if ents[0].Name != "a" || ents[1].Name != "b" || ents[2].Name != "c" {
		t.Fatalf("order: %v", ents)
	}
}

func TestAccessMask(t *testing.T) {
	fs := New()
	rc := RootContext()
	fs.WriteFile(rc, "/f", []byte("x"), 0o640, 1000, 42)
	alice := ctxFor(1000, 1000)
	if e := fs.Access(alice, "/f", 6); e != errno.OK {
		t.Fatalf("owner rw: %v", e)
	}
	if e := fs.Access(alice, "/f", 1); e != errno.EACCES {
		t.Fatalf("owner x on non-exec: %v", e)
	}
	member := ctxFor(2000, 42)
	if e := fs.Access(member, "/f", 4); e != errno.OK {
		t.Fatalf("group r: %v", e)
	}
	if e := fs.Access(member, "/f", 2); e != errno.EACCES {
		t.Fatalf("group w: %v", e)
	}
}

func TestTypeFromModeRoundTrip(t *testing.T) {
	for _, typ := range []FileType{TypeRegular, TypeDir, TypeSymlink,
		TypeCharDev, TypeBlockDev, TypeFIFO, TypeSocket} {
		got, ok := TypeFromMode(typ.ModeBits() | 0o644)
		if !ok || got != typ {
			t.Errorf("%v: round trip got %v ok=%v", typ, got, ok)
		}
	}
	if typ, ok := TypeFromMode(0o644); !ok || typ != TypeRegular {
		t.Error("bare mode must decode as regular")
	}
}

func TestMakedevRoundTrip(t *testing.T) {
	d := Makedev(259, 65535)
	if d.Major() != 259 || d.Minor() != 65535 {
		t.Fatalf("dev %v %v", d.Major(), d.Minor())
	}
}

func TestMkdirAll(t *testing.T) {
	fs := New()
	rc := RootContext()
	if e := fs.MkdirAll(rc, "/a/b/c/d", 0o755, 0, 0); e != errno.OK {
		t.Fatalf("mkdirall: %v", e)
	}
	if !fs.Exists(rc, "/a/b/c/d") {
		t.Fatal("path missing")
	}
	// Idempotent.
	if e := fs.MkdirAll(rc, "/a/b/c/d", 0o755, 0, 0); e != errno.OK {
		t.Fatalf("mkdirall twice: %v", e)
	}
}

func TestNameTooLong(t *testing.T) {
	fs := New()
	long := make([]byte, 300)
	for i := range long {
		long[i] = 'a'
	}
	if _, e := fs.Stat(RootContext(), "/"+string(long), true); e != errno.ENAMETOOLONG {
		t.Fatalf("long name: %v", e)
	}
}

func TestRenameIntoOwnSubtreeEINVAL(t *testing.T) {
	fs := New()
	rc := RootContext()
	fs.MkdirAll(rc, "/a/b/c", 0o755, 0, 0)
	if e := fs.Rename(rc, "/a", "/a/b/c/a2"); e != errno.EINVAL {
		t.Fatalf("rename dir into own subtree: %v, want EINVAL", e)
	}
	// Lexical-prefix false positive guard: /ab is NOT inside /a.
	fs.MkdirAll(rc, "/ab", 0o755, 0, 0)
	fs.WriteFile(rc, "/a/f", []byte("x"), 0o644, 0, 0)
	if e := fs.Rename(rc, "/a/f", "/ab/f"); e != errno.OK {
		t.Fatalf("rename into sibling with shared prefix: %v", e)
	}
	// Renaming a path onto itself is a no-op success.
	if e := fs.Rename(rc, "/ab", "/ab"); e != errno.OK {
		t.Fatalf("self-rename: %v", e)
	}
}
