// Package vfs is an in-memory POSIX filesystem with full metadata: owners,
// permission bits, device numbers, extended attributes, hard links and
// symlinks. It is the filesystem the simulated kernel (internal/simos)
// mounts for container image roots, and the object tar/cpio layers are
// unpacked into.
//
// Ownership is stored as *global* (kernel) IDs; user-namespace translation
// happens in the caller. Permission decisions take an explicit
// AccessContext so the namespace-aware capability logic stays in simos and
// this package remains independently testable.
package vfs

import (
	"sort"
	"sync"
	"time"

	"repro/internal/errno"
)

// FileType enumerates the POSIX file types.
type FileType int

const (
	TypeRegular FileType = iota
	TypeDir
	TypeSymlink
	TypeCharDev
	TypeBlockDev
	TypeFIFO
	TypeSocket
)

func (t FileType) String() string {
	switch t {
	case TypeRegular:
		return "regular"
	case TypeDir:
		return "directory"
	case TypeSymlink:
		return "symlink"
	case TypeCharDev:
		return "character device"
	case TypeBlockDev:
		return "block device"
	case TypeFIFO:
		return "fifo"
	case TypeSocket:
		return "socket"
	}
	return "unknown"
}

// S_IF* constants in their Linux on-disk encodings; tar/cpio and the mknod
// mode argument use these.
const (
	SIFMT   = 0xf000
	SIFIFO  = 0x1000
	SIFCHR  = 0x2000
	SIFDIR  = 0x4000
	SIFBLK  = 0x6000
	SIFREG  = 0x8000
	SIFLNK  = 0xa000
	SIFSOCK = 0xc000

	SISUID = 0o4000
	SISGID = 0o2000
	SISVTX = 0o1000
)

// TypeFromMode decodes the S_IFMT bits of a mode word; a zero type field
// means regular, matching mknod(2).
func TypeFromMode(mode uint32) (FileType, bool) {
	switch mode & SIFMT {
	case 0, SIFREG:
		return TypeRegular, true
	case SIFDIR:
		return TypeDir, true
	case SIFLNK:
		return TypeSymlink, true
	case SIFCHR:
		return TypeCharDev, true
	case SIFBLK:
		return TypeBlockDev, true
	case SIFIFO:
		return TypeFIFO, true
	case SIFSOCK:
		return TypeSocket, true
	}
	return TypeRegular, false
}

// ModeBits encodes a FileType back into S_IFMT bits.
func (t FileType) ModeBits() uint32 {
	switch t {
	case TypeRegular:
		return SIFREG
	case TypeDir:
		return SIFDIR
	case TypeSymlink:
		return SIFLNK
	case TypeCharDev:
		return SIFCHR
	case TypeBlockDev:
		return SIFBLK
	case TypeFIFO:
		return SIFIFO
	case TypeSocket:
		return SIFSOCK
	}
	return 0
}

// Dev packs a device number; Makedev/Major/Minor follow the modern Linux
// 64-bit encoding.
type Dev uint64

// Makedev builds a Dev from major/minor.
func Makedev(major, minor uint32) Dev {
	return Dev(uint64(major)<<32 | uint64(minor))
}

// Major extracts the major number.
func (d Dev) Major() uint32 { return uint32(d >> 32) }

// Minor extracts the minor number.
func (d Dev) Minor() uint32 { return uint32(d) }

// Ino is an inode number, unique within one FS.
type Ino uint64

// inode is the internal representation. All access goes through FS methods
// under the FS lock.
type inode struct {
	ino   Ino
	typ   FileType
	mode  uint32 // permission bits incl. suid/sgid/sticky; no type bits
	uid   int    // global (kernel) owner
	gid   int
	nlink int
	size  int64
	mtime time.Time

	data     []byte            // regular file contents
	target   string            // symlink target
	dev      Dev               // device number for Char/Block
	xattrs   map[string][]byte // extended attributes
	children map[string]*inode // directory entries

	// Change tracking (see gen.go): the newest generation in this inode's
	// subtree, the directories currently holding a dirent for it, and the
	// cached content digest for regular files.
	gen      uint64
	parents  []*inode
	digest   string
	digestOK bool
}

func (n *inode) isDir() bool { return n.typ == TypeDir }

// Stat is the caller-visible metadata snapshot, the struct stat analog.
type Stat struct {
	Ino   Ino
	Type  FileType
	Mode  uint32 // permission bits
	UID   int    // global; simos maps to the caller's namespace view
	GID   int
	Nlink int
	Size  int64
	Rdev  Dev
	Mtime time.Time
}

// FullMode returns type bits | permission bits, the tar/cpio encoding.
func (s Stat) FullMode() uint32 { return s.Type.ModeBits() | s.Mode }

// AccessContext carries the identity facts a permission check needs,
// pre-resolved by the caller: effective filesystem IDs (global), the
// supplementary groups, and whether the caller holds each relevant
// capability *with respect to this filesystem* (i.e. in the user namespace
// owning the superblock). simos computes these from Cred + UserNS.
type AccessContext struct {
	UID    int
	GID    int
	Groups []int

	CapDACOverride   bool // bypass rwx checks (read/write/search)
	CapDACReadSearch bool // bypass read/search checks
	CapFowner        bool // bypass owner checks (chmod, utimes, sticky)
	CapChown         bool // change file owners/groups freely
	CapMknod         bool // create device nodes
	CapFsetid        bool // keep setgid bit on chown/chmod by non-member
	CapSetfcap       bool // write security.* xattrs
}

func (ac *AccessContext) inGroup(gid int) bool {
	if ac.GID == gid {
		return true
	}
	for _, g := range ac.Groups {
		if g == gid {
			return true
		}
	}
	return false
}

// Root access context: everything allowed. Used by image unpackers that
// act as "the kernel" rather than as a process.
func RootContext() *AccessContext {
	return &AccessContext{
		CapDACOverride: true, CapDACReadSearch: true, CapFowner: true,
		CapChown: true, CapMknod: true, CapFsetid: true, CapSetfcap: true,
	}
}

// FS is one mounted filesystem instance.
type FS struct {
	mu      sync.RWMutex
	root    *inode
	nextIno Ino
	clock   func() time.Time
	gen     uint64 // monotonic change generation (see gen.go)

	// readonly models MS_RDONLY remounts (bind-mounting the image root
	// read-only is Charliecloud's default at *run* time; build mounts rw).
	readonly bool
}

// New creates an empty filesystem whose root directory is owned by uid/gid
// with mode 0755.
func New() *FS {
	fs := &FS{nextIno: 1, clock: time.Now, gen: 1}
	fs.root = &inode{
		ino: fs.takeIno(), typ: TypeDir, mode: 0o755, nlink: 2,
		children: map[string]*inode{}, mtime: fs.clock(), gen: 1,
	}
	return fs
}

// SetClock replaces the timestamp source, letting the simulated kernel
// supply its deterministic logical clock.
func (fs *FS) SetClock(clock func() time.Time) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.clock = clock
}

// SetReadonly toggles EROFS behaviour for all mutating operations.
func (fs *FS) SetReadonly(ro bool) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.readonly = ro
}

func (fs *FS) takeIno() Ino {
	ino := fs.nextIno
	fs.nextIno++
	return ino
}

// DirEntry is one readdir result.
type DirEntry struct {
	Name string
	Type FileType
	Ino  Ino
}

func sortedEntries(n *inode) []DirEntry {
	out := make([]DirEntry, 0, len(n.children))
	for name, child := range n.children {
		out = append(out, DirEntry{Name: name, Type: child.typ, Ino: child.ino})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// check* helpers implement the POSIX rwx decision with capability
// overrides, as fs/namei.c's generic_permission does.

func checkRead(ac *AccessContext, n *inode) errno.Errno {
	if ac.CapDACOverride || ac.CapDACReadSearch {
		return errno.OK
	}
	return checkModeBit(ac, n, 4)
}

func checkWrite(ac *AccessContext, n *inode) errno.Errno {
	if ac.CapDACOverride {
		return errno.OK
	}
	return checkModeBit(ac, n, 2)
}

func checkExec(ac *AccessContext, n *inode) errno.Errno {
	// CAP_DAC_OVERRIDE grants execute only if some x bit is set (or it's
	// a directory); search on directories is granted by either cap.
	if n.isDir() && (ac.CapDACOverride || ac.CapDACReadSearch) {
		return errno.OK
	}
	if !n.isDir() && ac.CapDACOverride && n.mode&0o111 != 0 {
		return errno.OK
	}
	return checkModeBit(ac, n, 1)
}

func checkModeBit(ac *AccessContext, n *inode, bit uint32) errno.Errno {
	var shift uint
	switch {
	case ac.UID == n.uid:
		shift = 6
	case ac.inGroup(n.gid):
		shift = 3
	default:
		shift = 0
	}
	if n.mode>>shift&bit != 0 {
		return errno.OK
	}
	return errno.EACCES
}
