package vfs

import (
	"fmt"
	"math/rand"
	"path"
	"testing"
	"testing/quick"

	"repro/internal/errno"
)

// Property tests on the filesystem invariants the higher layers lean on.

// TestQuickWriteReadIdentity: any content written is read back verbatim.
func TestQuickWriteReadIdentity(t *testing.T) {
	fs := New()
	rc := RootContext()
	i := 0
	f := func(data []byte) bool {
		i++
		p := fmt.Sprintf("/f%d", i)
		if e := fs.WriteFile(rc, p, data, 0o644, 0, 0); e != errno.OK {
			return false
		}
		got, e := fs.ReadFile(rc, p)
		if e != errno.OK || len(got) != len(data) {
			return false
		}
		for j := range got {
			if got[j] != data[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickPermissionMonotone: if an unprivileged context can read a file,
// a capability-holding context can too (permissions only ever widen with
// capabilities).
func TestQuickPermissionMonotone(t *testing.T) {
	f := func(mode uint16, ownerUID, callerUID uint8) bool {
		fs := New()
		rc := RootContext()
		m := uint32(mode) & 0o777
		fs.WriteFile(rc, "/f", []byte("x"), m, int(ownerUID), 0)
		plain := &AccessContext{UID: int(callerUID)}
		capd := &AccessContext{UID: int(callerUID), CapDACOverride: true, CapDACReadSearch: true}
		_, ePlain := fs.ReadFile(plain, "/f")
		_, eCapd := fs.ReadFile(capd, "/f")
		if ePlain == errno.OK && eCapd != errno.OK {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickNlinkInvariant: after an arbitrary interleaving of link/unlink
// operations, every reachable file's nlink equals the number of paths that
// reach it.
func TestQuickNlinkInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		fs := New()
		rc := RootContext()
		fs.WriteFile(rc, "/base", []byte("x"), 0o644, 0, 0)
		names := map[string]bool{"/base": true}
		for op := 0; op < 60; op++ {
			switch rng.Intn(2) {
			case 0: // link from a random live name
				var from string
				for n := range names {
					from = n
					break
				}
				to := fmt.Sprintf("/l%d", op)
				if fs.Link(rc, from, to) == errno.OK {
					names[to] = true
				}
			case 1: // unlink a random live name (keep at least one)
				if len(names) <= 1 {
					continue
				}
				var victim string
				for n := range names {
					victim = n
					break
				}
				if fs.Unlink(rc, victim) == errno.OK {
					delete(names, victim)
				}
			}
		}
		for n := range names {
			st, e := fs.Stat(rc, n, false)
			if e != errno.OK {
				t.Fatalf("trial %d: stat %s: %v", trial, n, e)
			}
			if st.Nlink != len(names) {
				t.Fatalf("trial %d: nlink %d, want %d", trial, st.Nlink, len(names))
			}
		}
	}
}

// TestQuickRenameConservation: renaming never loses content.
func TestQuickRenameConservation(t *testing.T) {
	fs := New()
	rc := RootContext()
	fs.MkdirAll(rc, "/a/b", 0o755, 0, 0)
	fs.MkdirAll(rc, "/c", 0o755, 0, 0)
	content := []byte("conserved")
	fs.WriteFile(rc, "/a/b/f", content, 0o644, 0, 0)
	cur := "/a/b/f"
	targets := []string{"/c/f", "/a/f", "/top", "/a/b/f"}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		next := targets[rng.Intn(len(targets))]
		if next == cur {
			continue
		}
		if e := fs.Rename(rc, cur, next); e != errno.OK {
			t.Fatalf("rename %s -> %s: %v", cur, next, e)
		}
		cur = next
		got, e := fs.ReadFile(rc, cur)
		if e != errno.OK || string(got) != string(content) {
			t.Fatalf("content lost at %s: %q %v", cur, got, e)
		}
	}
}

// TestDeepTree: a 100-deep directory chain resolves and deletes cleanly
// (path resolution is iterative, not stack-bound).
func TestDeepTree(t *testing.T) {
	fs := New()
	rc := RootContext()
	p := ""
	for i := 0; i < 100; i++ {
		p = path.Join(p, fmt.Sprintf("d%d", i))
		if e := fs.Mkdir(rc, "/"+p, 0o755, 0, 0); e != errno.OK {
			t.Fatalf("mkdir depth %d: %v", i, e)
		}
	}
	leaf := "/" + path.Join(p, "leaf")
	if e := fs.WriteFile(rc, leaf, []byte("deep"), 0o644, 0, 0); e != errno.OK {
		t.Fatalf("write: %v", e)
	}
	if _, e := fs.ReadFile(rc, leaf); e != errno.OK {
		t.Fatalf("read: %v", e)
	}
	// And ".." climbs back out.
	up := leaf
	for i := 0; i < 101; i++ {
		up = path.Dir(up)
	}
	if up != "/" {
		t.Fatalf("dir climb ended at %q", up)
	}
}

// TestSymlinkAtDepthLimit: 39 chained symlinks resolve; 41 ELOOP.
func TestSymlinkAtDepthLimit(t *testing.T) {
	fs := New()
	rc := RootContext()
	fs.WriteFile(rc, "/target", []byte("x"), 0o644, 0, 0)
	prev := "/target"
	for i := 0; i < 45; i++ {
		name := fmt.Sprintf("/s%d", i)
		fs.Symlink(rc, prev, name, 0, 0)
		prev = name
	}
	if _, e := fs.Stat(rc, "/s38", true); e != errno.OK {
		t.Fatalf("39 links deep: %v", e)
	}
	if _, e := fs.Stat(rc, "/s44", true); e != errno.ELOOP {
		t.Fatalf("45 links deep: %v, want ELOOP", e)
	}
}
