package vfs

import (
	"repro/internal/errno"
)

// Handle is an open-file reference, the analog of a struct file: permission
// is checked at open time, not per I/O, and the handle keeps working after
// the path is unlinked.
type Handle struct {
	fs       *FS
	n        *inode
	writable bool
}

// OpenFlags for Open.
type OpenFlags struct {
	Write    bool // request write access
	Create   bool // create if absent (regular file)
	Excl     bool // with Create: fail if present
	Truncate bool // truncate to zero at open
	Mode     uint32
	UID, GID int // ownership if created
}

// Open opens path.
func (fs *FS) Open(ac *AccessContext, path string, flags OpenFlags) (*Handle, errno.Errno) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	r, e := fs.walk(ac, path, true)
	if e != errno.OK {
		return nil, e
	}
	var n *inode
	if r.node == nil {
		if !flags.Create {
			return nil, errno.ENOENT
		}
		if fs.readonly {
			return nil, errno.EROFS
		}
		if e := checkWrite(ac, r.parent); e != errno.OK {
			return nil, e
		}
		n = &inode{
			ino: fs.takeIno(), typ: TypeRegular, mode: flags.Mode & 0o7777,
			uid: flags.UID, nlink: 1, mtime: fs.clock(),
		}
		fs.attach(r.parent, r.base, n, flags.GID)
	} else {
		n = r.node
		if flags.Create && flags.Excl {
			return nil, errno.EEXIST
		}
		if n.isDir() && flags.Write {
			return nil, errno.EISDIR
		}
		if flags.Write {
			if fs.readonly {
				return nil, errno.EROFS
			}
			if e := checkWrite(ac, n); e != errno.OK {
				return nil, e
			}
		} else {
			if e := checkRead(ac, n); e != errno.OK {
				return nil, e
			}
		}
		if flags.Truncate && n.typ == TypeRegular && flags.Write {
			n.data = nil
			n.size = 0
			n.mtime = fs.clock()
			fs.touchData(n)
		}
	}
	return &Handle{fs: fs, n: n, writable: flags.Write}, errno.OK
}

// ReadAt copies file bytes at off into p, returning the count; 0 at EOF.
func (h *Handle) ReadAt(p []byte, off int64) (int, errno.Errno) {
	h.fs.mu.RLock()
	defer h.fs.mu.RUnlock()
	if h.n.isDir() {
		return 0, errno.EISDIR
	}
	if off >= h.n.size {
		return 0, errno.OK
	}
	return copy(p, h.n.data[off:]), errno.OK
}

// WriteAt writes p at off, growing the file as needed.
func (h *Handle) WriteAt(p []byte, off int64) (int, errno.Errno) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if !h.writable {
		return 0, errno.EBADF
	}
	end := off + int64(len(p))
	if end > int64(len(h.n.data)) {
		grown := make([]byte, end)
		copy(grown, h.n.data)
		h.n.data = grown
	}
	copy(h.n.data[off:], p)
	if end > h.n.size {
		h.n.size = end
	}
	h.n.mtime = h.fs.clock()
	h.fs.touchData(h.n)
	return len(p), errno.OK
}

// Truncate resizes the file.
func (h *Handle) Truncate(size int64) errno.Errno {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if !h.writable {
		return errno.EBADF
	}
	if size <= int64(len(h.n.data)) {
		h.n.data = h.n.data[:size]
	} else {
		grown := make([]byte, size)
		copy(grown, h.n.data)
		h.n.data = grown
	}
	h.n.size = size
	h.n.mtime = h.fs.clock()
	h.fs.touchData(h.n)
	return errno.OK
}

// Stat snapshots the open file's metadata (fstat).
func (h *Handle) Stat() Stat {
	h.fs.mu.RLock()
	defer h.fs.mu.RUnlock()
	return statOf(h.n)
}

// Size returns the current size.
func (h *Handle) Size() int64 {
	h.fs.mu.RLock()
	defer h.fs.mu.RUnlock()
	return h.n.size
}

// Chown is fchown(2) against the open file.
func (h *Handle) Chown(ac *AccessContext, uid, gid int) errno.Errno {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.fs.readonly {
		return errno.EROFS
	}
	return h.fs.chownInode(ac, h.n, uid, gid)
}

// Chmod is fchmod(2) against the open file.
func (h *Handle) Chmod(ac *AccessContext, mode uint32) errno.Errno {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.fs.readonly {
		return errno.EROFS
	}
	return h.fs.chmodInode(ac, h.n, mode)
}

// SetXattr is fsetxattr(2) against the open file.
func (h *Handle) SetXattr(ac *AccessContext, name string, value []byte) errno.Errno {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.fs.readonly {
		return errno.EROFS
	}
	if e := xattrPermission(ac, h.n, name); e != errno.OK {
		return e
	}
	if h.n.xattrs == nil {
		h.n.xattrs = map[string][]byte{}
	}
	v := make([]byte, len(value))
	copy(v, value)
	h.n.xattrs[name] = v
	h.fs.touch(h.n)
	return errno.OK
}
