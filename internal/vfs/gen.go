package vfs

import (
	"crypto/sha256"
	"encoding/hex"
	"sort"
)

// Change tracking. Every mutating operation bumps a filesystem-wide
// generation counter and stamps the affected inode with it; the stamp
// propagates up every parent chain (an inode can have several parents via
// hard links), so a directory's generation is the newest generation in its
// subtree. A subtree whose root carries an old generation is provably
// untouched, which is what lets WalkSince prune whole clean subtrees and
// the tarutil commit pipeline cost O(changes) instead of O(tree).
//
// Regular files additionally cache a content digest, invalidated by data
// writes, so diffing two snapshots never re-reads unchanged file bytes.

// bumpGen takes the next generation. Callers hold fs.mu.
func (fs *FS) bumpGen() uint64 {
	fs.gen++
	return fs.gen
}

// touch records a metadata or namespace change on n. Callers hold fs.mu.
func (fs *FS) touch(n *inode) {
	markDirty(n, fs.bumpGen())
}

// touchData records a content change on n, invalidating the cached digest.
// Callers hold fs.mu.
func (fs *FS) touchData(n *inode) {
	n.digestOK = false
	fs.touch(n)
}

// markDirty stamps n and its ancestors with generation g. Generations are
// monotonic, so the propagation stops as soon as it meets a chain already
// stamped this generation.
func markDirty(n *inode, g uint64) {
	if n.gen >= g {
		return
	}
	n.gen = g
	for _, p := range n.parents {
		markDirty(p, g)
	}
}

// stampSubtree force-stamps every inode under n with generation g — the
// rename/ChownAll path, where a whole subtree's serialised form changes at
// once even though most inodes were not individually mutated.
func stampSubtree(n *inode, g uint64) {
	if n.gen < g {
		n.gen = g
	}
	for _, c := range n.children {
		stampSubtree(c, g)
	}
}

// dropParent removes one occurrence of p from n's parent list.
func (n *inode) dropParent(p *inode) {
	for i, q := range n.parents {
		if q == p {
			n.parents[i] = n.parents[len(n.parents)-1]
			n.parents = n.parents[:len(n.parents)-1]
			return
		}
	}
}

// Generation returns the current change generation. It advances on every
// mutating operation; two equal readings bracket a provably unchanged
// filesystem.
func (fs *FS) Generation() uint64 {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return fs.gen
}

// Node is one filesystem object as presented to a WalkSince visitor: the
// full serialisable state plus the directory listing an incremental
// consumer needs for deletion detection. Data is the inode's own slice —
// valid only during the visit; copy it to retain.
type Node struct {
	Path     string
	Stat     Stat
	Data     []byte            // regular files; shared, do not retain or modify
	Target   string            // symlinks
	Xattrs   map[string][]byte // copy; nil when none
	Digest   string            // hex sha256 of Data (regular files only)
	Children []string          // sorted child names (directories only)
}

// WalkSince visits every node whose generation is newer than since, parents
// before children and siblings in name order, pruning any directory whose
// whole subtree is clean. since == 0 visits everything, including the root
// directory itself (path "/"). It returns the generation the walk observed:
// a later WalkSince from that value sees exactly the changes made between
// the two calls.
//
// The walk holds the filesystem lock throughout (it may fill digest
// caches), so visitors must not call back into the FS.
func (fs *FS) WalkSince(since uint64, visit func(*Node) error) (uint64, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.walkDirty(fs.root, "/", since, visit); err != nil {
		return 0, err
	}
	return fs.gen, nil
}

func (fs *FS) walkDirty(n *inode, path string, since uint64, visit func(*Node) error) error {
	if n.gen <= since {
		return nil
	}
	node := exportNode(n, path)
	if err := visit(node); err != nil {
		return err
	}
	for _, name := range node.Children {
		child := n.children[name]
		cp := path + "/" + name
		if path == "/" {
			cp = "/" + name
		}
		if err := fs.walkDirty(child, cp, since, visit); err != nil {
			return err
		}
	}
	return nil
}

// exportNode renders an inode for a visitor, filling the digest cache on
// demand. Callers hold fs.mu.
func exportNode(n *inode, path string) *Node {
	node := &Node{Path: path, Stat: statOf(n)}
	switch n.typ {
	case TypeRegular:
		if !n.digestOK {
			sum := sha256.Sum256(n.data)
			n.digest = hex.EncodeToString(sum[:])
			n.digestOK = true
		}
		node.Data = n.data
		node.Digest = n.digest
	case TypeSymlink:
		node.Target = n.target
	case TypeDir:
		node.Children = make([]string, 0, len(n.children))
		for name := range n.children {
			node.Children = append(node.Children, name)
		}
		sort.Strings(node.Children)
	}
	if len(n.xattrs) > 0 {
		node.Xattrs = make(map[string][]byte, len(n.xattrs))
		for k, v := range n.xattrs {
			node.Xattrs[k] = append([]byte(nil), v...)
		}
	}
	return node
}

// Clone returns a deep copy: an independent tree with identical metadata,
// contents, inode numbers, hard-link structure and generation state. Cached
// content digests carry over, so snapshotting a clone of an already
// snapshotted filesystem re-hashes nothing. It is the image store's
// flatten-cache primitive — unpacking a layer chain once and cloning is
// much cheaper than re-parsing the tar stream per build.
func (fs *FS) Clone() *FS {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	seen := map[*inode]*inode{}
	var cp func(n *inode) *inode
	cp = func(n *inode) *inode {
		if d, ok := seen[n]; ok {
			return d
		}
		d := &inode{
			ino: n.ino, typ: n.typ, mode: n.mode, uid: n.uid, gid: n.gid,
			nlink: n.nlink, size: n.size, mtime: n.mtime, target: n.target,
			dev: n.dev, gen: n.gen, digest: n.digest, digestOK: n.digestOK,
		}
		seen[n] = d
		if n.data != nil {
			d.data = append([]byte(nil), n.data...)
		}
		if n.xattrs != nil {
			d.xattrs = make(map[string][]byte, len(n.xattrs))
			for k, v := range n.xattrs {
				d.xattrs[k] = append([]byte(nil), v...)
			}
		}
		if n.children != nil {
			d.children = make(map[string]*inode, len(n.children))
			for name, c := range n.children {
				cc := cp(c)
				d.children[name] = cc
				cc.parents = append(cc.parents, d)
			}
		}
		return d
	}
	out := &FS{nextIno: fs.nextIno, gen: fs.gen, clock: fs.clock, readonly: fs.readonly}
	out.root = cp(fs.root)
	return out
}
