package vfs

import (
	"repro/internal/errno"
)

// ChownAll force-sets the ownership of every inode in the filesystem
// (kernel-level, no permission checks). It models what an *unprivileged*
// image unpack produces: archive ownership cannot be applied, so every
// file belongs to the unpacking user — the reason a Type III container
// sees its whole image as root:root under the single-ID mapping, and the
// reason previously-recorded owners like sshd:sshd cannot survive an
// unprivileged rebuild.
func (fs *FS) ChownAll(uid, gid int) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var walk func(n *inode)
	walk = func(n *inode) {
		n.uid = uid
		n.gid = gid
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(fs.root)
	stampSubtree(fs.root, fs.bumpGen())
}

// Stat returns metadata for path. follow selects stat vs lstat semantics.
func (fs *FS) Stat(ac *AccessContext, path string, follow bool) (Stat, errno.Errno) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	n, e := fs.lookup(ac, path, follow)
	if e != errno.OK {
		return Stat{}, e
	}
	return statOf(n), errno.OK
}

func statOf(n *inode) Stat {
	return Stat{
		Ino: n.ino, Type: n.typ, Mode: n.mode, UID: n.uid, GID: n.gid,
		Nlink: n.nlink, Size: n.size, Rdev: n.dev, Mtime: n.mtime,
	}
}

// Exists reports whether path resolves, with no permission side effects
// beyond the walk itself.
func (fs *FS) Exists(ac *AccessContext, path string) bool {
	_, e := fs.Stat(ac, path, true)
	return e == errno.OK
}

// Access implements access(2)-style rwx probing (mask bits 4/2/1).
func (fs *FS) Access(ac *AccessContext, path string, mask uint32) errno.Errno {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	n, e := fs.lookup(ac, path, true)
	if e != errno.OK {
		return e
	}
	if mask&4 != 0 {
		if e := checkRead(ac, n); e != errno.OK {
			return e
		}
	}
	if mask&2 != 0 {
		if e := checkWrite(ac, n); e != errno.OK {
			return e
		}
	}
	if mask&1 != 0 {
		if e := checkExec(ac, n); e != errno.OK {
			return e
		}
	}
	return errno.OK
}

// prepareCreate validates and returns the parent for creating base under
// path; write+search on the parent is required.
func (fs *FS) prepareCreate(ac *AccessContext, path string) (*inode, string, errno.Errno) {
	if fs.readonly {
		return nil, "", errno.EROFS
	}
	parent, base, e := fs.lookupParent(ac, path)
	if e != errno.OK {
		return nil, "", e
	}
	if _, exists := parent.children[base]; exists {
		return nil, "", errno.EEXIST
	}
	if e := checkWrite(ac, parent); e != errno.OK {
		return nil, "", e
	}
	return parent, base, errno.OK
}

// attach inserts a fresh inode, applying setgid-directory group
// inheritance.
func (fs *FS) attach(parent *inode, base string, n *inode, gid int) {
	if parent.mode&SISGID != 0 {
		n.gid = parent.gid
		if n.isDir() {
			n.mode |= SISGID
		}
	} else {
		n.gid = gid
	}
	parent.children[base] = n
	n.parents = append(n.parents, parent)
	if n.isDir() {
		parent.nlink++
	}
	parent.mtime = fs.clock()
	fs.touch(n)
}

// Mkdir creates a directory owned by uid/gid.
func (fs *FS) Mkdir(ac *AccessContext, path string, mode uint32, uid, gid int) errno.Errno {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	parent, base, e := fs.prepareCreate(ac, path)
	if e != errno.OK {
		return e
	}
	n := &inode{
		ino: fs.takeIno(), typ: TypeDir, mode: mode & 0o7777, uid: uid,
		nlink: 2, children: map[string]*inode{}, mtime: fs.clock(),
	}
	fs.attach(parent, base, n, gid)
	return errno.OK
}

// MkdirAll creates path and any missing ancestors, ignoring EEXIST, the
// unpacker's convenience.
func (fs *FS) MkdirAll(ac *AccessContext, path string, mode uint32, uid, gid int) errno.Errno {
	comps := splitPath(path)
	cur := ""
	for _, c := range comps {
		cur += "/" + c
		if e := fs.Mkdir(ac, cur, mode, uid, gid); e != errno.OK && e != errno.EEXIST {
			return e
		}
	}
	return errno.OK
}

// Mknod creates a filesystem node. Device nodes additionally require
// CapMknod — the §5 class-3 rule the filter's argument inspection exists
// for. FIFOs, sockets and regular files are unprivileged.
func (fs *FS) Mknod(ac *AccessContext, path string, typ FileType, mode uint32, dev Dev, uid, gid int) errno.Errno {
	if typ == TypeCharDev || typ == TypeBlockDev {
		if !ac.CapMknod {
			return errno.EPERM
		}
	}
	if typ == TypeDir || typ == TypeSymlink {
		return errno.EINVAL
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	parent, base, e := fs.prepareCreate(ac, path)
	if e != errno.OK {
		return e
	}
	n := &inode{
		ino: fs.takeIno(), typ: typ, mode: mode & 0o7777, uid: uid,
		nlink: 1, dev: dev, mtime: fs.clock(),
	}
	fs.attach(parent, base, n, gid)
	return errno.OK
}

// Symlink creates a symbolic link. Mode is always 0777; ownership matters
// for sticky-directory deletion rules.
func (fs *FS) Symlink(ac *AccessContext, target, path string, uid, gid int) errno.Errno {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	parent, base, e := fs.prepareCreate(ac, path)
	if e != errno.OK {
		return e
	}
	n := &inode{
		ino: fs.takeIno(), typ: TypeSymlink, mode: 0o777, uid: uid,
		nlink: 1, target: target, size: int64(len(target)), mtime: fs.clock(),
	}
	fs.attach(parent, base, n, gid)
	return errno.OK
}

// Readlink returns a symlink's target.
func (fs *FS) Readlink(ac *AccessContext, path string) (string, errno.Errno) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	n, e := fs.lookup(ac, path, false)
	if e != errno.OK {
		return "", e
	}
	if n.typ != TypeSymlink {
		return "", errno.EINVAL
	}
	return n.target, errno.OK
}

// Link creates a hard link to an existing non-directory.
func (fs *FS) Link(ac *AccessContext, oldpath, newpath string) errno.Errno {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	old, e := fs.lookup(ac, oldpath, false)
	if e != errno.OK {
		return e
	}
	if old.isDir() {
		return errno.EPERM
	}
	parent, base, e := fs.prepareCreate(ac, newpath)
	if e != errno.OK {
		return e
	}
	old.nlink++
	parent.children[base] = old
	old.parents = append(old.parents, parent)
	parent.mtime = fs.clock()
	fs.touch(old)
	return errno.OK
}

// stickyDelete enforces the sticky-bit deletion rule.
func stickyDelete(ac *AccessContext, dir, victim *inode) errno.Errno {
	if dir.mode&SISVTX == 0 {
		return errno.OK
	}
	if ac.UID == victim.uid || ac.UID == dir.uid || ac.CapFowner {
		return errno.OK
	}
	return errno.EPERM
}

// Unlink removes a non-directory entry.
func (fs *FS) Unlink(ac *AccessContext, path string) errno.Errno {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.readonly {
		return errno.EROFS
	}
	r, e := fs.walk(ac, path, false)
	if e != errno.OK {
		return e
	}
	if r.node == nil {
		return errno.ENOENT
	}
	if r.node.isDir() {
		return errno.EISDIR
	}
	if e := checkWrite(ac, r.parent); e != errno.OK {
		return e
	}
	if e := stickyDelete(ac, r.parent, r.node); e != errno.OK {
		return e
	}
	r.node.nlink--
	delete(r.parent.children, r.base)
	r.node.dropParent(r.parent)
	r.parent.mtime = fs.clock()
	fs.touch(r.parent)
	return errno.OK
}

// Rmdir removes an empty directory.
func (fs *FS) Rmdir(ac *AccessContext, path string) errno.Errno {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.readonly {
		return errno.EROFS
	}
	r, e := fs.walk(ac, path, false)
	if e != errno.OK {
		return e
	}
	if r.node == nil {
		return errno.ENOENT
	}
	if !r.node.isDir() {
		return errno.ENOTDIR
	}
	if len(r.node.children) > 0 {
		return errno.ENOTEMPTY
	}
	if r.node == fs.root {
		return errno.EBUSY
	}
	if e := checkWrite(ac, r.parent); e != errno.OK {
		return e
	}
	if e := stickyDelete(ac, r.parent, r.node); e != errno.OK {
		return e
	}
	delete(r.parent.children, r.base)
	r.node.dropParent(r.parent)
	r.parent.nlink--
	r.parent.mtime = fs.clock()
	fs.touch(r.parent)
	return errno.OK
}

// Rename moves oldpath to newpath, replacing a compatible existing target.
// Moving a directory into its own subtree is EINVAL, as rename(2) specifies
// ("an attempt was made to make a directory a subdirectory of itself").
func (fs *FS) Rename(ac *AccessContext, oldpath, newpath string) errno.Errno {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.readonly {
		return errno.EROFS
	}
	oldClean := "/" + joinComponents(splitPath(oldpath))
	newClean := "/" + joinComponents(splitPath(newpath))
	if newClean == oldClean {
		return errno.OK
	}
	if len(newClean) > len(oldClean) && newClean[:len(oldClean)] == oldClean &&
		(oldClean == "/" || newClean[len(oldClean)] == '/') {
		return errno.EINVAL
	}
	or, e := fs.walk(ac, oldpath, false)
	if e != errno.OK {
		return e
	}
	if or.node == nil {
		return errno.ENOENT
	}
	nr, e := fs.walk(ac, newpath, false)
	if e != errno.OK {
		return e
	}
	if e := checkWrite(ac, or.parent); e != errno.OK {
		return e
	}
	if e := checkWrite(ac, nr.parent); e != errno.OK {
		return e
	}
	if e := stickyDelete(ac, or.parent, or.node); e != errno.OK {
		return e
	}
	if nr.node != nil {
		if nr.node == or.node {
			return errno.OK
		}
		if nr.node.isDir() {
			if !or.node.isDir() {
				return errno.EISDIR
			}
			if len(nr.node.children) > 0 {
				return errno.ENOTEMPTY
			}
		} else if or.node.isDir() {
			return errno.ENOTDIR
		}
		if e := stickyDelete(ac, nr.parent, nr.node); e != errno.OK {
			return e
		}
		delete(nr.parent.children, nr.base)
		nr.node.dropParent(nr.parent)
	}
	delete(or.parent.children, or.base)
	or.node.dropParent(or.parent)
	nr.parent.children[nr.base] = or.node
	or.node.parents = append(or.node.parents, nr.parent)
	if or.node.isDir() && or.parent != nr.parent {
		or.parent.nlink--
		nr.parent.nlink++
	}
	or.parent.mtime = fs.clock()
	nr.parent.mtime = fs.clock()
	// Every path under the moved node changed: stamp the whole subtree,
	// then propagate from both affected directories.
	g := fs.bumpGen()
	stampSubtree(or.node, g)
	markDirty(or.parent, g)
	markDirty(nr.parent, g)
	return errno.OK
}

// Chmod changes permission bits: owner or CAP_FOWNER. A non-member without
// CAP_FSETID setting group-exec keeps losing setgid, per inode_init_owner.
func (fs *FS) Chmod(ac *AccessContext, path string, mode uint32, follow bool) errno.Errno {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.readonly {
		return errno.EROFS
	}
	n, e := fs.lookup(ac, path, follow)
	if e != errno.OK {
		return e
	}
	return fs.chmodInode(ac, n, mode)
}

func (fs *FS) chmodInode(ac *AccessContext, n *inode, mode uint32) errno.Errno {
	if ac.UID != n.uid && !ac.CapFowner {
		return errno.EPERM
	}
	mode &= 0o7777
	if !n.isDir() && mode&SISGID != 0 && !ac.inGroup(n.gid) && !ac.CapFsetid {
		mode &^= SISGID
	}
	n.mode = mode
	n.mtime = fs.clock()
	fs.touch(n)
	return errno.OK
}

// Chown changes ownership, with the Linux rules: changing the owner needs
// CAP_CHOWN; the owner may change the group to one they belong to, anyone
// else needs CAP_CHOWN; -1 leaves a dimension unchanged; on success the
// setuid/setgid bits are stripped from non-directories unless the caller
// has CAP_FSETID.
//
// uid/gid here are *global* — the caller (simos) has already translated
// namespace-local IDs and turned unmapped ones into EINVAL, which is the
// precise failure Figure 1b shows.
func (fs *FS) Chown(ac *AccessContext, path string, uid, gid int, follow bool) errno.Errno {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.readonly {
		return errno.EROFS
	}
	n, e := fs.lookup(ac, path, follow)
	if e != errno.OK {
		return e
	}
	return fs.chownInode(ac, n, uid, gid)
}

func (fs *FS) chownInode(ac *AccessContext, n *inode, uid, gid int) errno.Errno {
	changingUID := uid != -1 && uid != n.uid
	changingGID := gid != -1 && gid != n.gid
	if changingUID && !ac.CapChown {
		return errno.EPERM
	}
	if changingGID && !ac.CapChown {
		if ac.UID != n.uid || !ac.inGroup(gid) {
			return errno.EPERM
		}
	}
	// Even a no-op chown requires ownership or the capability.
	if !ac.CapChown && ac.UID != n.uid {
		return errno.EPERM
	}
	if uid != -1 {
		n.uid = uid
	}
	if gid != -1 {
		n.gid = gid
	}
	if (changingUID || changingGID) && !n.isDir() && !ac.CapFsetid {
		n.mode &^= SISUID | SISGID
	}
	n.mtime = fs.clock()
	fs.touch(n)
	return errno.OK
}

// Utimens sets the modification time: owner, CAP_FOWNER, or write access.
func (fs *FS) Utimens(ac *AccessContext, path string, mtime int64, follow bool) errno.Errno {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.readonly {
		return errno.EROFS
	}
	n, e := fs.lookup(ac, path, follow)
	if e != errno.OK {
		return e
	}
	if ac.UID != n.uid && !ac.CapFowner {
		if e := checkWrite(ac, n); e != errno.OK {
			return errno.EPERM
		}
	}
	n.mtime = fs.clock()
	fs.touch(n)
	_ = mtime // logical clock governs; argument kept for ABI fidelity
	return errno.OK
}

// ReadDir lists a directory.
func (fs *FS) ReadDir(ac *AccessContext, path string) ([]DirEntry, errno.Errno) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	n, e := fs.lookup(ac, path, true)
	if e != errno.OK {
		return nil, e
	}
	if !n.isDir() {
		return nil, errno.ENOTDIR
	}
	if e := checkRead(ac, n); e != errno.OK {
		return nil, e
	}
	return sortedEntries(n), errno.OK
}

// ReadFile returns a regular file's full contents.
func (fs *FS) ReadFile(ac *AccessContext, path string) ([]byte, errno.Errno) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	n, e := fs.lookup(ac, path, true)
	if e != errno.OK {
		return nil, e
	}
	if n.isDir() {
		return nil, errno.EISDIR
	}
	if n.typ != TypeRegular {
		return nil, errno.EINVAL
	}
	if e := checkRead(ac, n); e != errno.OK {
		return nil, e
	}
	out := make([]byte, len(n.data))
	copy(out, n.data)
	return out, errno.OK
}

// WriteFile creates (mode, uid, gid) or truncates-and-writes a regular
// file.
func (fs *FS) WriteFile(ac *AccessContext, path string, data []byte, mode uint32, uid, gid int) errno.Errno {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.readonly {
		return errno.EROFS
	}
	r, e := fs.walk(ac, path, true)
	if e != errno.OK {
		return e
	}
	var n *inode
	if r.node == nil {
		if e := checkWrite(ac, r.parent); e != errno.OK {
			return e
		}
		n = &inode{
			ino: fs.takeIno(), typ: TypeRegular, mode: mode & 0o7777,
			uid: uid, nlink: 1, mtime: fs.clock(),
		}
		fs.attach(r.parent, r.base, n, gid)
	} else {
		n = r.node
		if n.isDir() {
			return errno.EISDIR
		}
		if n.typ != TypeRegular {
			return errno.EINVAL
		}
		if e := checkWrite(ac, n); e != errno.OK {
			return e
		}
	}
	n.data = make([]byte, len(data))
	copy(n.data, data)
	n.size = int64(len(data))
	n.mtime = fs.clock()
	fs.touchData(n)
	return errno.OK
}

// AppendFile appends to an existing regular file (creating it if needed).
func (fs *FS) AppendFile(ac *AccessContext, path string, data []byte, mode uint32, uid, gid int) errno.Errno {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.readonly {
		return errno.EROFS
	}
	r, e := fs.walk(ac, path, true)
	if e != errno.OK {
		return e
	}
	if r.node == nil {
		fs.mu.Unlock()
		e := fs.WriteFile(ac, path, data, mode, uid, gid)
		fs.mu.Lock()
		return e
	}
	n := r.node
	if n.typ != TypeRegular {
		return errno.EINVAL
	}
	if e := checkWrite(ac, n); e != errno.OK {
		return e
	}
	n.data = append(n.data, data...)
	n.size = int64(len(n.data))
	n.mtime = fs.clock()
	fs.touchData(n)
	return errno.OK
}
