package rootemu

import (
	"testing"

	"repro/internal/container"
	"repro/internal/core"
	"repro/internal/errno"
	"repro/internal/simos"
	"repro/internal/vfs"
)

func typeIIIProc(t *testing.T) *simos.Proc {
	t.Helper()
	k := simos.NewKernel()
	p := k.NewInitProc(simos.Mount{FS: vfs.New(), Owner: k.InitNS()}, 1000, 1000)
	img := vfs.New()
	rc := vfs.RootContext()
	img.MkdirAll(rc, "/tmp", 0o1777, 1000, 1000)
	img.ChownAll(1000, 1000)
	if err := container.Enter(p, container.Options{Type: container.TypeIII, RootFS: img}); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestInstallSequence(t *testing.T) {
	p := typeIIIProc(t)
	f, err := Install(p, core.Config{})
	if err != nil {
		t.Fatalf("install: %v", err)
	}
	// The self-test already ran; its fake shows up in the stats.
	if f.Stats().Faked == 0 {
		t.Fatal("self-test did not run through the filter")
	}
	// And the emulation works.
	p.WriteFileAll("/tmp/f", []byte("x"), 0o644)
	if e := p.Chown("/tmp/f", 74, 74); e != errno.OK {
		t.Fatalf("chown: %v", e)
	}
}

func TestInstallEnrootSkipsSelfTest(t *testing.T) {
	p := typeIIIProc(t)
	f, err := Install(p, core.Config{Variant: core.VariantEnroot})
	if err != nil {
		t.Fatalf("enroot install: %v", err)
	}
	if f.Stats().Faked != 0 {
		t.Fatal("enroot variant has no self-test; nothing should be faked yet")
	}
}

func TestInstallDetectsBrokenFilter(t *testing.T) {
	// A filter whose fake errno is ENOENT: kexec_load must return ENOENT,
	// and Install's self-test accepts exactly that — proving it checks
	// the configured value rather than blind success.
	p := typeIIIProc(t)
	if _, err := Install(p, core.Config{FakeErrno: 2 /* ENOENT */}); err != nil {
		t.Fatalf("install with ENOENT fake: %v", err)
	}
	if e := p.KexecLoad(); e != errno.ENOENT {
		t.Fatalf("kexec under ENOENT filter: %v", e)
	}
}

func TestAttachBaselines(t *testing.T) {
	p := typeIIIProc(t)
	fr := AttachFakeroot(p)
	pr := AttachPRoot(p)
	p.WriteFileAll("/tmp/f", []byte("x"), 0o644)
	// ptrace path intercepts the raw syscall.
	if e := p.Chown("/tmp/f", 74, 74); e != errno.OK {
		t.Fatalf("proot chown: %v", e)
	}
	if pr.Records() != 1 {
		t.Fatalf("proot records: %d", pr.Records())
	}
	// preload path intercepts the libc call.
	c := &simos.CLib{P: p, Hooks: p.Preloads()}
	if e := c.Chown("/tmp/f", 75, 75); e != errno.OK {
		t.Fatalf("fakeroot chown: %v", e)
	}
	if fr.Records() != 1 {
		t.Fatalf("fakeroot records: %d", fr.Records())
	}
}
