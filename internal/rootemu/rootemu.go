// Package rootemu glues the paper's filter (internal/core) onto simulated
// processes (internal/simos): the complete installation sequence ch-run
// performs before exec'ing a user command, plus convenience constructors
// for the consistent baselines, so examples and harnesses configure any
// emulation mode with one call.
package rootemu

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/errno"
	"repro/internal/seccomp"
	"repro/internal/simos"
)

// Install performs the root-emulation installation on p:
//
//  1. prctl(PR_SET_NO_NEW_PRIVS, 1) — the unprivileged-install
//     prerequisite;
//  2. generate and load the filter for cfg;
//  3. run the §5 self-test: kexec_load must return the configured fake
//     result, proving the filter is active (skipped for variants without
//     the self-test class, like Enroot's, and for EPERM fakes, which are
//     indistinguishable from no filter).
//
// The returned filter exposes Stats() for experiment harnesses.
func Install(p *simos.Proc, cfg core.Config) (*seccomp.Filter, error) {
	if _, e := p.Prctl(simos.PrSetNoNewPrivs, 1); e != errno.OK {
		return nil, fmt.Errorf("rootemu: prctl(NO_NEW_PRIVS): %v", e)
	}
	f, err := core.NewFilter(cfg)
	if err != nil {
		return nil, err
	}
	if e := p.SeccompInstall(f); e != errno.OK {
		return nil, fmt.Errorf("rootemu: seccomp install: %v", e)
	}
	if len(core.InventoryByClass(cfg.Variant)[core.ClassSelfTest]) > 0 &&
		errno.Errno(cfg.FakeErrno) != errno.EPERM {
		if e := p.KexecLoad(); e != errno.Errno(cfg.FakeErrno) {
			return nil, fmt.Errorf("rootemu: self-test: kexec_load returned %v, want %v",
				e, errno.Errno(cfg.FakeErrno))
		}
	}
	return f, nil
}

// AttachFakeroot attaches a fakeroot daemon's preload hook to p and
// returns the daemon for state inspection.
func AttachFakeroot(p *simos.Proc) *baseline.Fakeroot {
	fr := baseline.NewFakeroot()
	p.AddPreload(fr.Hook())
	return fr
}

// AttachPRoot attaches a PRoot supervisor to p.
func AttachPRoot(p *simos.Proc) *baseline.PRoot {
	pr := baseline.NewPRoot()
	pr.Attach(p)
	return pr
}
