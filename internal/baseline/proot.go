package baseline

import (
	"strings"
	"sync"

	"repro/internal/errno"
	"repro/internal/simos"
	"repro/internal/vfs"
)

// PRoot is the ptrace-based consistent emulator (§3.2): it intercepts
// system calls with ptrace(2), which works for statically linked binaries
// too, at the cost of trace stops on *every* syscall. Like the original it
// keeps an ownership database so stat reflects earlier chowns.
type PRoot struct {
	mu     sync.Mutex
	owners map[string]ownerRecord
	uids   map[int][3]int // per-PID faked r/e/s uid
	gids   map[int][3]int // per-PID faked r/e/s gid
}

// NewPRoot creates an empty supervisor.
func NewPRoot() *PRoot {
	return &PRoot{owners: map[string]ownerRecord{}, uids: map[int][3]int{}, gids: map[int][3]int{}}
}

// Records returns the ownership-database size (E9 metric).
func (pr *PRoot) Records() int {
	pr.mu.Lock()
	defer pr.mu.Unlock()
	return len(pr.owners)
}

// Attach installs the supervisor on a process; children inherit it, as
// ptrace's TRACEFORK following does.
func (pr *PRoot) Attach(p *simos.Proc) {
	p.SetPtrace(pr.Hook())
}

// Hook builds the ptrace hook table.
func (pr *PRoot) Hook() *simos.PtraceHook {
	return &simos.PtraceHook{
		Name: "proot",
		// Observer runs at every syscall entry; PRoot inspects and waves
		// through the ones it doesn't care about. The per-stop cost is
		// charged by the kernel simulation.
		Observer: func(p *simos.Proc, name string, args []uint64) {},
		Chown: func(p *simos.Proc, path string, uid, gid int, follow bool) (errno.Errno, bool) {
			pr.mu.Lock()
			rec := pr.owners[path]
			if uid != -1 {
				rec.UID = uid
			}
			if gid != -1 {
				rec.GID = gid
			}
			pr.owners[path] = rec
			pr.mu.Unlock()
			return errno.OK, true
		},
		Mknod: func(p *simos.Proc, path string, mode uint32, dev vfs.Dev) (errno.Errno, bool) {
			typ, _ := vfs.TypeFromMode(mode)
			if typ != vfs.TypeCharDev && typ != vfs.TypeBlockDev {
				return 0, false
			}
			if e := p.WriteFileAll(path, nil, mode&0o777); e != errno.OK {
				return e, true
			}
			pr.mu.Lock()
			pr.owners[path] = ownerRecord{Mode: mode & 0o7777, Dev: uint64(dev), Type: int(typ)}
			pr.mu.Unlock()
			return errno.OK, true
		},
		StatExit: func(p *simos.Proc, path string, follow bool, st vfs.Stat, e errno.Errno) (vfs.Stat, errno.Errno) {
			if e != errno.OK {
				return st, e
			}
			pr.mu.Lock()
			rec, ok := pr.owners[path]
			pr.mu.Unlock()
			if ok {
				st.UID, st.GID = rec.UID, rec.GID
				if rec.Mode != 0 {
					st.Mode = rec.Mode
				}
				if rec.Type != 0 {
					st.Type = vfs.FileType(rec.Type)
					st.Rdev = vfs.Dev(rec.Dev)
				}
			} else {
				st.UID, st.GID = 0, 0
			}
			return st, errno.OK
		},
		GetID: func(p *simos.Proc, name string) (int, bool) {
			pr.mu.Lock()
			family := pr.uids
			if strings.Contains(name, "gid") {
				family = pr.gids
			}
			ids, ok := family[p.PID()]
			pr.mu.Unlock()
			if ok {
				if name == "getuid" || name == "getgid" {
					return ids[0], true
				}
				return ids[1], true
			}
			return 0, true
		},
		SetID: func(p *simos.Proc, name string, args []int) (errno.Errno, bool) {
			pr.mu.Lock()
			defer pr.mu.Unlock()
			family := pr.uids
			if strings.Contains(name, "gid") {
				family = pr.gids
			}
			cur := family[p.PID()]
			switch len(args) {
			case 1: // setuid/setgid as (fake) root assumes all three
				cur = [3]int{args[0], args[0], args[0]}
			default: // setre*/setres* forms: -1 keeps a field
				for i, v := range args {
					if i < 3 && v != -1 {
						cur[i] = v
					}
				}
			}
			family[p.PID()] = cur
			return errno.OK, true
		},
	}
}

// Fakechroot models fakechroot(1)'s simple root emulation (§3.3): a
// configurable set of executables is replaced by /bin/true. It is enough
// to bootstrap a distribution but, as the paper notes, "this emulation
// surface of executables only isn't broad enough for general image
// building" — syscall-level privilege failures pass straight through.
type Fakechroot struct {
	// Substitute lists absolute paths to replace with /bin/true.
	Substitute []string
}

// Apply rewrites a binary registry, substituting the configured commands.
func (fc *Fakechroot) Apply(reg *simos.BinaryRegistry) *simos.BinaryRegistry {
	out := reg.Clone()
	truth := &simos.Binary{Name: "true", Static: true,
		Main: func(*simos.ExecCtx) int { return 0 }}
	for _, p := range fc.Substitute {
		out.Register(p, truth)
	}
	return out
}
