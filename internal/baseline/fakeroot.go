// Package baseline implements the complex, consistent root emulators the
// paper compares against (§3): fakeroot(1) via LD_PRELOAD interposition
// with a state-keeping daemon, PRoot via ptrace interception, and
// fakechroot(1)'s /bin/true substitution. All three work over the
// simulated kernel's hook points, with the real mechanisms' structural
// costs: per-call state maintenance and daemon round trips for fakeroot,
// two trace stops on every syscall for PRoot, and nothing but compatibility
// holes for fakechroot.
package baseline

import (
	"encoding/json"
	"sync"
	"sync/atomic"

	"repro/internal/errno"
	"repro/internal/simos"
	"repro/internal/vfs"
)

// ownerRecord is the fakeroot daemon's entry for one path: the lie it
// tells back on stat.
type ownerRecord struct {
	UID  int    `json:"uid"`
	GID  int    `json:"gid"`
	Mode uint32 `json:"mode,omitempty"`
	Dev  uint64 `json:"dev,omitempty"` // recorded device number for faked mknod
	Type int    `json:"type,omitempty"`
}

// Fakeroot is the daemon state (faked(1)): a consistent overlay of
// ownership and identity. "All fakeroot(s) maintain state in order to
// provide a consistent emulated environment (e.g., so stat(2) is
// consistent with prior chown(2)), with a daemon and/or disk files" (§3.1).
type Fakeroot struct {
	mu     sync.Mutex
	owners map[string]ownerRecord
	ids    map[int][3]int // per-PID faked r/e/s uid from set*id

	// RoundTrips counts daemon IPC round trips — one per intercepted
	// call, the structural overhead §6(1) attributes to consistent
	// emulation.
	RoundTrips atomic.Uint64
}

// NewFakeroot starts an empty daemon.
func NewFakeroot() *Fakeroot {
	return &Fakeroot{owners: map[string]ownerRecord{}, ids: map[int][3]int{}}
}

// Records returns the number of ownership records (the E9 state-size
// metric; the seccomp method's equivalent is always zero).
func (f *Fakeroot) Records() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.owners)
}

// SaveState serialises the daemon database — fakeroot -s.
func (f *Fakeroot) SaveState() ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return json.Marshal(f.owners)
}

// LoadState restores a saved database — fakeroot -i.
func (f *Fakeroot) LoadState(data []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return json.Unmarshal(data, &f.owners)
}

// Hook returns the LD_PRELOAD interposer. Attach with proc.AddPreload;
// statically linked binaries will bypass it, exactly like the real thing.
func (f *Fakeroot) Hook() *simos.CHook {
	return &simos.CHook{
		Name: "fakeroot",
		Chown: func(c *simos.CLib, path string, uid, gid int, follow bool) (errno.Errno, bool) {
			f.RoundTrips.Add(1)
			// Record the requested ownership; change nothing real.
			f.mu.Lock()
			rec := f.owners[path]
			if uid != -1 {
				rec.UID = uid
			}
			if gid != -1 {
				rec.GID = gid
			}
			f.owners[path] = rec
			f.mu.Unlock()
			return errno.OK, true
		},
		Stat: func(c *simos.CLib, path string, follow bool) (vfs.Stat, errno.Errno, bool) {
			f.RoundTrips.Add(1)
			var st vfs.Stat
			var e errno.Errno
			if follow {
				st, e = c.P.Stat(path)
			} else {
				st, e = c.P.Lstat(path)
			}
			if e != errno.OK {
				return st, e, true
			}
			f.mu.Lock()
			rec, ok := f.owners[path]
			f.mu.Unlock()
			if ok {
				st.UID, st.GID = rec.UID, rec.GID
				if rec.Mode != 0 {
					st.Mode = rec.Mode
				}
				if rec.Type != 0 {
					st.Type = vfs.FileType(rec.Type)
					st.Rdev = vfs.Dev(rec.Dev)
				}
			} else {
				// fakeroot's default lie: everything is root's.
				st.UID, st.GID = 0, 0
			}
			return st, errno.OK, true
		},
		Chmod: func(c *simos.CLib, path string, mode uint32) (errno.Errno, bool) {
			f.RoundTrips.Add(1)
			// Apply for real when possible, record the full mode
			// (including setuid bits the kernel would refuse).
			e := c.P.Chmod(path, mode&0o777)
			f.mu.Lock()
			rec := f.owners[path]
			rec.Mode = mode
			f.owners[path] = rec
			f.mu.Unlock()
			if e != errno.OK && e != errno.EPERM {
				return e, true
			}
			return errno.OK, true
		},
		Mknod: func(c *simos.CLib, path string, mode uint32, dev vfs.Dev) (errno.Errno, bool) {
			f.RoundTrips.Add(1)
			typ, _ := vfs.TypeFromMode(mode)
			if typ != vfs.TypeCharDev && typ != vfs.TypeBlockDev {
				return 0, false // unprivileged types go to the kernel
			}
			// fakeroot creates a plain placeholder file and records the
			// device-ness, so later stat shows a device node.
			if e := c.P.WriteFileAll(path, nil, mode&0o777); e != errno.OK {
				return e, true
			}
			f.mu.Lock()
			f.owners[path] = ownerRecord{
				UID: 0, GID: 0, Mode: mode & 0o7777,
				Dev: uint64(dev), Type: int(typ),
			}
			f.mu.Unlock()
			return errno.OK, true
		},
		GetID: func(c *simos.CLib, name string) (int, bool) {
			f.RoundTrips.Add(1)
			f.mu.Lock()
			ids, ok := f.ids[c.P.PID()]
			f.mu.Unlock()
			if ok {
				if name == "getuid" {
					return ids[0], true
				}
				return ids[1], true
			}
			return 0, true // you are root
		},
		SetID: func(c *simos.CLib, name string, args []int) (errno.Errno, bool) {
			f.RoundTrips.Add(1)
			f.mu.Lock()
			defer f.mu.Unlock()
			switch name {
			case "setuid":
				f.ids[c.P.PID()] = [3]int{args[0], args[0], args[0]}
			case "setresuid":
				cur := f.ids[c.P.PID()]
				for i, v := range args {
					if i < 3 && v != -1 {
						cur[i] = v
					}
				}
				f.ids[c.P.PID()] = cur
			}
			return errno.OK, true
		},
	}
}
