package baseline

import (
	"testing"

	"repro/internal/core"
	"repro/internal/errno"
	"repro/internal/simos"
	"repro/internal/vfs"
)

// E10 — §6(3) compatibility: which emulation mechanism reaches which kind
// of binary. LD_PRELOAD misses statically linked executables; seccomp and
// ptrace are linking-agnostic.
func TestCompatibilityMatrix(t *testing.T) {
	type mechanism struct {
		name   string
		attach func(p *simos.Proc)
	}
	mechanisms := []mechanism{
		{"seccomp", func(p *simos.Proc) {
			p.Prctl(simos.PrSetNoNewPrivs, 1)
			if e := p.SeccompInstall(core.MustNewFilter(core.Config{})); e != errno.OK {
				t.Fatal(e)
			}
		}},
		{"fakeroot-preload", func(p *simos.Proc) {
			p.AddPreload(NewFakeroot().Hook())
		}},
		{"proot-ptrace", func(p *simos.Proc) {
			NewPRoot().Attach(p)
		}},
	}
	// wantEmulated[mechanism][static] — whether the chown inside the
	// binary is expected to be emulated (succeed).
	wantEmulated := map[string]map[bool]bool{
		"seccomp":          {false: true, true: true},
		"fakeroot-preload": {false: true, true: false}, // the §6(3) gap
		"proot-ptrace":     {false: true, true: true},
	}
	for _, mech := range mechanisms {
		for _, static := range []bool{false, true} {
			k := simos.NewKernel()
			fs := vfs.New()
			rc := vfs.RootContext()
			fs.Chmod(rc, "/", 0o777, true)
			p := k.NewInitProc(simos.Mount{FS: fs, Owner: k.InitNS()}, 1000, 1000)
			fs.ChownAll(1000, 1000)
			fs.MkdirAll(rc, "/bin", 0o755, 1000, 1000)
			fs.WriteFile(rc, "/bin/probe", []byte("ELF"), 0o755, 1000, 1000)
			p.WriteFileAll("/f", []byte("x"), 0o644)

			reg := simos.NewBinaryRegistry()
			reg.Register("/bin/probe", &simos.Binary{
				Name: "probe", Static: static,
				Main: func(ctx *simos.ExecCtx) int {
					if e := ctx.C.Chown("/f", 74, 74); e != errno.OK {
						return 1
					}
					return 0
				},
			})
			p.SetRegistry(reg)
			mech.attach(p)

			status, e := p.Exec([]string{"/bin/probe"}, nil, nil, nil, nil)
			if e != errno.OK {
				t.Fatalf("%s/static=%v: exec: %v", mech.name, static, e)
			}
			emulated := status == 0
			if want := wantEmulated[mech.name][static]; emulated != want {
				t.Errorf("%s/static=%v: emulated=%v, want %v",
					mech.name, static, emulated, want)
			}
		}
	}
}

// E11 — §6 consistency: what a chown-then-stat sequence observes under
// each method. Zero-consistency seccomp reports success and shows nothing;
// the consistent emulators show the recorded lie.
func TestConsistencyMatrix(t *testing.T) {
	newProc := func() *simos.Proc {
		k := simos.NewKernel()
		fs := vfs.New()
		rc := vfs.RootContext()
		fs.Chmod(rc, "/", 0o777, true)
		p := k.NewInitProc(simos.Mount{FS: fs, Owner: k.InitNS()}, 1000, 1000)
		fs.ChownAll(1000, 1000)
		p.WriteFileAll("/f", []byte("x"), 0o644)
		return p
	}
	type result struct {
		chownOK bool
		statUID int
	}
	observe := map[string]result{}

	// none
	{
		p := newProc()
		e := p.Chown("/f", 74, 74)
		st, _ := p.Stat("/f")
		observe["none"] = result{e == errno.OK, st.UID}
	}
	// seccomp
	{
		p := newProc()
		p.Prctl(simos.PrSetNoNewPrivs, 1)
		p.SeccompInstall(core.MustNewFilter(core.Config{}))
		e := p.Chown("/f", 74, 74)
		st, _ := p.Stat("/f")
		observe["seccomp"] = result{e == errno.OK, st.UID}
	}
	// fakeroot
	{
		p := newProc()
		p.AddPreload(NewFakeroot().Hook())
		c := &simos.CLib{P: p, Hooks: p.Preloads()}
		e := c.Chown("/f", 74, 74)
		st, _ := c.Stat("/f")
		observe["fakeroot"] = result{e == errno.OK, st.UID}
	}
	// proot
	{
		p := newProc()
		NewPRoot().Attach(p)
		e := p.Chown("/f", 74, 74)
		st, _ := p.Stat("/f")
		observe["proot"] = result{e == errno.OK, st.UID}
	}

	if observe["none"].chownOK {
		t.Error("none: chown must fail")
	}
	if !observe["seccomp"].chownOK || observe["seccomp"].statUID == 74 {
		t.Errorf("seccomp: want success + NO visible change, got %+v", observe["seccomp"])
	}
	if !observe["fakeroot"].chownOK || observe["fakeroot"].statUID != 74 {
		t.Errorf("fakeroot: want success + visible change, got %+v", observe["fakeroot"])
	}
	if !observe["proot"].chownOK || observe["proot"].statUID != 74 {
		t.Errorf("proot: want success + visible change, got %+v", observe["proot"])
	}
}
