package baseline

import (
	"testing"

	"repro/internal/errno"
	"repro/internal/simos"
	"repro/internal/vfs"
)

func hostProc(t *testing.T) (*simos.Kernel, *simos.Proc) {
	t.Helper()
	k := simos.NewKernel()
	fs := vfs.New()
	rc := vfs.RootContext()
	fs.Chmod(rc, "/", 0o777, true)
	p := k.NewInitProc(simos.Mount{FS: fs, Owner: k.InitNS()}, 1000, 1000)
	fs.ChownAll(1000, 1000)
	return k, p
}

// clibFor builds the dynamic-binary view of a process.
func clibFor(p *simos.Proc) *simos.CLib {
	return &simos.CLib{P: p, Hooks: p.Preloads()}
}

// --- E11: consistency matrix -------------------------------------------------

func TestFakerootChownStatConsistent(t *testing.T) {
	_, p := hostProc(t)
	fr := NewFakeroot()
	p.AddPreload(fr.Hook())
	c := clibFor(p)

	p.WriteFileAll("/f", []byte("x"), 0o644)
	if e := c.Chown("/f", 74, 74); e != errno.OK {
		t.Fatalf("fakeroot chown: %v", e)
	}
	st, e := c.Stat("/f")
	if e != errno.OK {
		t.Fatalf("stat: %v", e)
	}
	// THE consistency property: stat reflects the earlier chown.
	if st.UID != 74 || st.GID != 74 {
		t.Fatalf("fakeroot not consistent: %+v", st)
	}
	// But nothing really changed.
	real, _ := p.Stat("/f")
	if real.UID == 74 {
		t.Fatal("fakeroot actually chowned?!")
	}
	if fr.Records() != 1 {
		t.Fatalf("records: %d", fr.Records())
	}
}

func TestFakerootDefaultLieIsRoot(t *testing.T) {
	_, p := hostProc(t)
	fr := NewFakeroot()
	p.AddPreload(fr.Hook())
	c := clibFor(p)
	p.WriteFileAll("/f", []byte("x"), 0o644)
	st, _ := c.Stat("/f")
	if st.UID != 0 || st.GID != 0 {
		t.Fatalf("files must appear root-owned under fakeroot: %+v", st)
	}
	if c.Getuid() != 0 || c.Geteuid() != 0 {
		t.Fatal("identity must appear root under fakeroot")
	}
}

func TestFakerootMknodDevicePlaceholder(t *testing.T) {
	_, p := hostProc(t)
	fr := NewFakeroot()
	p.AddPreload(fr.Hook())
	c := clibFor(p)
	if e := c.Mknod("/null", vfs.SIFCHR|0o666, vfs.Makedev(1, 3)); e != errno.OK {
		t.Fatalf("mknod: %v", e)
	}
	// stat via the hook shows a device; the real file is regular.
	st, _ := c.Stat("/null")
	if st.Type != vfs.TypeCharDev || st.Rdev.Major() != 1 {
		t.Fatalf("hooked stat: %+v", st)
	}
	real, _ := p.Lstat("/null")
	if real.Type != vfs.TypeRegular {
		t.Fatalf("real file: %+v", real)
	}
	// FIFOs pass through to the kernel.
	if e := c.Mknod("/fifo", vfs.SIFIFO|0o644, 0); e != errno.OK {
		t.Fatalf("fifo: %v", e)
	}
	real, _ = p.Lstat("/fifo")
	if real.Type != vfs.TypeFIFO {
		t.Fatalf("fifo real type: %+v", real)
	}
}

func TestFakerootSetuidGetuidConsistent(t *testing.T) {
	_, p := hostProc(t)
	fr := NewFakeroot()
	p.AddPreload(fr.Hook())
	c := clibFor(p)
	if e := c.Setresuid(100, 100, 100); e != errno.OK {
		t.Fatalf("setresuid: %v", e)
	}
	if got := c.Getuid(); got != 100 {
		t.Fatalf("getuid after set: %d", got)
	}
}

func TestFakerootStatePersistence(t *testing.T) {
	_, p := hostProc(t)
	fr := NewFakeroot()
	p.AddPreload(fr.Hook())
	c := clibFor(p)
	p.WriteFileAll("/f", []byte("x"), 0o644)
	c.Chown("/f", 74, 74)
	state, err := fr.SaveState()
	if err != nil {
		t.Fatal(err)
	}
	// A new daemon (fakeroot -i) sees the same lies.
	fr2 := NewFakeroot()
	if err := fr2.LoadState(state); err != nil {
		t.Fatal(err)
	}
	_, p2 := hostProc(t)
	p2.WriteFileAll("/f", []byte("x"), 0o644)
	p2.AddPreload(fr2.Hook())
	c2 := clibFor(p2)
	st, _ := c2.Stat("/f")
	if st.UID != 74 {
		t.Fatalf("persisted state lost: %+v", st)
	}
}

func TestFakerootRoundTripsCounted(t *testing.T) {
	_, p := hostProc(t)
	fr := NewFakeroot()
	p.AddPreload(fr.Hook())
	c := clibFor(p)
	p.WriteFileAll("/f", []byte("x"), 0o644)
	before := fr.RoundTrips.Load()
	c.Chown("/f", 1, 1)
	c.Stat("/f")
	c.Getuid()
	if got := fr.RoundTrips.Load() - before; got != 3 {
		t.Fatalf("round trips: %d, want 3", got)
	}
}

func TestPRootChownStatConsistent(t *testing.T) {
	_, p := hostProc(t)
	pr := NewPRoot()
	pr.Attach(p)
	p.WriteFileAll("/f", []byte("x"), 0o644)
	if e := p.Chown("/f", 74, 74); e != errno.OK {
		t.Fatalf("proot chown: %v", e)
	}
	st, e := p.Stat("/f")
	if e != errno.OK || st.UID != 74 || st.GID != 74 {
		t.Fatalf("proot stat: %+v %v", st, e)
	}
	if pr.Records() != 1 {
		t.Fatalf("records: %d", pr.Records())
	}
}

func TestPRootWorksForStaticBinaries(t *testing.T) {
	// §6(3): ptrace-based emulation wraps static binaries; preload does
	// not. Run the same chown through a static binary under both.
	_, p := hostProc(t)
	fr := NewFakeroot()
	p.AddPreload(fr.Hook())
	pr := NewPRoot()
	pr.Attach(p)

	reg := simos.NewBinaryRegistry()
	reg.Register("/bin/static-chown", &simos.Binary{
		Name: "static-chown", Static: true,
		Main: func(ctx *simos.ExecCtx) int {
			if e := ctx.C.Chown("/f", 74, 74); e != errno.OK {
				return 1
			}
			return 0
		},
	})
	p.SetRegistry(reg)
	p.MountInfo().FS.MkdirAll(vfs.RootContext(), "/bin", 0o755, 1000, 1000)
	p.MountInfo().FS.WriteFile(vfs.RootContext(), "/bin/static-chown", []byte("ELF"), 0o755, 1000, 1000)
	p.WriteFileAll("/f", []byte("x"), 0o644)

	status, e := p.Exec([]string{"/bin/static-chown"}, nil, nil, nil, nil)
	if e != errno.OK || status != 0 {
		t.Fatalf("static chown under proot failed: %d %v", status, e)
	}
	// The preload daemon saw nothing; the ptrace supervisor did.
	if fr.Records() != 0 {
		t.Fatalf("fakeroot saw a static binary's chown: %d", fr.Records())
	}
	if pr.Records() != 1 {
		t.Fatalf("proot records: %d", pr.Records())
	}
}

func TestPRootChargesStopsOnEverySyscall(t *testing.T) {
	k, p := hostProc(t)
	pr := NewPRoot()
	pr.Attach(p)
	k.ResetCounters()
	p.Getpid()
	p.Getppid()
	if got := k.Snapshot().PtraceStops; got != 4 {
		t.Fatalf("stops: %d, want 4 (2 per syscall)", got)
	}
}

func TestFakechrootSubstitution(t *testing.T) {
	_, p := hostProc(t)
	reg := simos.NewBinaryRegistry()
	ran := false
	reg.Register("/usr/bin/ldconfig", &simos.Binary{
		Name: "ldconfig", Main: func(*simos.ExecCtx) int { ran = true; return 9 },
	})
	fc := &Fakechroot{Substitute: []string{"/usr/bin/ldconfig"}}
	sub := fc.Apply(reg)
	p.SetRegistry(sub)
	rc := vfs.RootContext()
	p.MountInfo().FS.MkdirAll(rc, "/usr/bin", 0o755, 1000, 1000)
	p.MountInfo().FS.WriteFile(rc, "/usr/bin/ldconfig", []byte("ELF"), 0o755, 1000, 1000)
	status, e := p.Exec([]string{"/usr/bin/ldconfig"}, nil, nil, nil, nil)
	if e != errno.OK || status != 0 || ran {
		t.Fatalf("substitution failed: status=%d ran=%v e=%v", status, ran, e)
	}
	// The original registry is untouched.
	if b, _ := reg.Lookup("/usr/bin/ldconfig"); b.Name != "ldconfig" {
		t.Fatal("original registry mutated")
	}
}

func TestFakechrootDoesNotHelpSyscalls(t *testing.T) {
	// §3.3: substitution of executables cannot fix syscall-level
	// failures — chown still fails.
	_, p := hostProc(t)
	fc := &Fakechroot{Substitute: []string{"/usr/bin/ldconfig"}}
	_ = fc
	p.WriteFileAll("/f", []byte("x"), 0o644)
	if e := p.Chown("/f", 74, 74); e == errno.OK {
		t.Fatal("chown must still fail under fakechroot")
	}
}

func TestPRootIDFamiliesIndependent(t *testing.T) {
	// The supervisor keeps separate uid and gid triples: faking a gid
	// drop must not disturb the faked uid view (and partial setres*
	// calls keep the -1 fields).
	_, p := hostProc(t)
	NewPRoot().Attach(p)
	if e := p.Setresuid(100, 100, 100); e != errno.OK {
		t.Fatalf("setresuid: %v", e)
	}
	if e := p.Setresgid(65534, 65534, 65534); e != errno.OK {
		t.Fatalf("setresgid: %v", e)
	}
	if r, eu, s, _ := p.Getresuid(); r != 100 || eu != 100 || s != 100 {
		t.Fatalf("uid triple clobbered by setresgid: %d/%d/%d", r, eu, s)
	}
	if r, _, _, _ := p.Getresgid(); r != 65534 {
		t.Fatalf("gid triple not faked: %d", r)
	}
	// setreuid(-1, 42) updates the effective field only (getresuid's
	// single-value hook reports a collapsed triple, so observe through
	// the field-specific getters).
	if e := p.Setreuid(-1, 42); e != errno.OK {
		t.Fatalf("setreuid: %v", e)
	}
	if got := p.Getuid(); got != 100 {
		t.Fatalf("real uid clobbered by partial setreuid: %d", got)
	}
	if got := p.Geteuid(); got != 42 {
		t.Fatalf("effective uid not updated: %d", got)
	}
}
