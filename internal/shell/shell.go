// Package shell is a minimal POSIX-flavoured shell for the simulated
// world: it is the /bin/sh the builder's RUN instructions and the package
// managers' maintainer scripts execute under. Supported: word splitting
// with quoting, $VAR and ${VAR} expansion, variable assignments, the
// operators && || ; and |, a handful of builtins, and external command
// dispatch through the simulated execve.
package shell

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/errno"
	"repro/internal/simos"
)

// Run executes a command line in the context of a process (the RUN entry
// point: sh -c "line"). It returns the exit status of the last command.
func Run(ctx *simos.ExecCtx, line string) int {
	sh := &state{ctx: ctx, env: ctx.Env}
	return sh.runLine(line)
}

// Binary returns the /bin/sh binary for a binary registry. Busybox-style
// shells are statically linked; the fakeroot baseline relies on the
// *children* being dynamic, not the shell itself.
func Binary() *simos.Binary {
	return &simos.Binary{
		Name:   "sh",
		Static: true,
		Main: func(ctx *simos.ExecCtx) int {
			// sh -c "cmd", or sh <script>, or read stdin.
			args := ctx.Argv[1:]
			if len(args) >= 2 && args[0] == "-c" {
				return Run(ctx, strings.Join(args[1:], " "))
			}
			if len(args) == 1 {
				data, e := ctx.Proc.ReadFileAll(args[0])
				if e != errno.OK {
					fmt.Fprintf(ctx.Stderr, "sh: %s: %s\n", args[0], e.Message())
					return 127
				}
				return RunScript(ctx, string(data))
			}
			data, err := io.ReadAll(ctx.Stdin)
			if err != nil || len(data) == 0 {
				return 0
			}
			return RunScript(ctx, string(data))
		},
	}
}

// RunScript executes a multi-line script: each line is a command list;
// blank lines and #-comments are skipped; a failing line does NOT abort
// unless `set -e` was issued.
func RunScript(ctx *simos.ExecCtx, script string) int {
	sh := &state{ctx: ctx, env: ctx.Env}
	status := 0
	for _, raw := range strings.Split(script, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		status = sh.runLine(line)
		if sh.errexit && status != 0 {
			return status
		}
	}
	return status
}

type state struct {
	ctx     *simos.ExecCtx
	env     map[string]string
	errexit bool
}

// runLine handles && || ; sequencing over pipelines.
func (s *state) runLine(line string) int {
	seqs := splitTop(line, ";")
	status := 0
	for _, seq := range seqs {
		status = s.runAndOr(seq)
	}
	return status
}

func (s *state) runAndOr(line string) int {
	// Split into [cmd, op, cmd, op, ...] preserving && / || order.
	parts, ops := splitAndOr(line)
	status := 0
	for i, part := range parts {
		if i > 0 {
			if ops[i-1] == "&&" && status != 0 {
				continue
			}
			if ops[i-1] == "||" && status == 0 {
				continue
			}
		}
		status = s.runPipeline(part)
	}
	return status
}

func (s *state) runPipeline(line string) int {
	stages := splitTop(line, "|")
	if len(stages) == 1 {
		return s.runSimple(stages[0], s.ctx.Stdin, s.ctx.Stdout)
	}
	// Sequential pipeline: run each stage to completion, feeding its
	// stdout to the next (the workloads' pipelines are small).
	var input io.Reader = s.ctx.Stdin
	status := 0
	for i, stage := range stages {
		var out strings.Builder
		dst := io.Writer(&out)
		if i == len(stages)-1 {
			dst = s.ctx.Stdout
		}
		status = s.runSimple(stage, input, dst)
		input = strings.NewReader(out.String())
	}
	return status
}

// runSimple executes one command with optional env-assignment prefix and
// output redirection.
func (s *state) runSimple(line string, stdin io.Reader, stdout io.Writer) int {
	words, err := Split(line, s.env)
	if err != nil {
		fmt.Fprintf(s.ctx.Stderr, "sh: %v\n", err)
		return 2
	}
	if len(words) == 0 {
		return 0
	}
	// Redirections: "> path" and ">> path" (last wins; simple grammar).
	var redirPath string
	var redirAppend bool
	filtered := words[:0]
	for i := 0; i < len(words); i++ {
		switch words[i] {
		case ">", ">>":
			if i+1 >= len(words) {
				fmt.Fprintln(s.ctx.Stderr, "sh: missing redirect target")
				return 2
			}
			redirPath = words[i+1]
			redirAppend = words[i] == ">>"
			i++
		default:
			filtered = append(filtered, words[i])
		}
	}
	words = filtered
	// Env assignments prefix.
	cmdEnv := s.env
	assignments := map[string]string{}
	for len(words) > 0 {
		if k, v, ok := strings.Cut(words[0], "="); ok && isName(k) {
			assignments[k] = v
			words = words[1:]
			continue
		}
		break
	}
	if len(words) == 0 {
		// Pure assignment: mutates the shell environment.
		for k, v := range assignments {
			s.env[k] = v
		}
		return 0
	}
	if len(assignments) > 0 {
		cmdEnv = map[string]string{}
		for k, v := range s.env {
			cmdEnv[k] = v
		}
		for k, v := range assignments {
			cmdEnv[k] = v
		}
	}

	var redirBuf strings.Builder
	if redirPath != "" {
		stdout = &redirBuf
	}
	status := s.dispatch(words, cmdEnv, stdin, stdout)
	if redirPath != "" {
		p := s.ctx.Proc
		var e errno.Errno
		if redirAppend {
			if old, e2 := p.ReadFileAll(redirPath); e2 == errno.OK {
				e = p.WriteFileAll(redirPath, append(old, []byte(redirBuf.String())...), 0o644)
			} else {
				e = p.WriteFileAll(redirPath, []byte(redirBuf.String()), 0o644)
			}
		} else {
			e = p.WriteFileAll(redirPath, []byte(redirBuf.String()), 0o644)
		}
		if e != errno.OK {
			fmt.Fprintf(s.ctx.Stderr, "sh: %s: %s\n", redirPath, e.Message())
			return 1
		}
	}
	return status
}

func (s *state) dispatch(words []string, env map[string]string, stdin io.Reader, stdout io.Writer) int {
	switch words[0] {
	case "true":
		return 0
	case "false":
		return 1
	case "echo":
		fmt.Fprintln(stdout, strings.Join(words[1:], " "))
		return 0
	case "exit":
		code := 0
		if len(words) > 1 {
			fmt.Sscanf(words[1], "%d", &code)
		}
		s.ctx.Proc.Exit(code)
		return code
	case "cd":
		dir := "/"
		if len(words) > 1 {
			dir = words[1]
		}
		if e := s.ctx.Proc.Chdir(dir); e != errno.OK {
			fmt.Fprintf(s.ctx.Stderr, "sh: cd: %s: %s\n", dir, e.Message())
			return 1
		}
		return 0
	case "export":
		for _, w := range words[1:] {
			if k, v, ok := strings.Cut(w, "="); ok {
				s.env[k] = v
			}
		}
		return 0
	case "set":
		for _, w := range words[1:] {
			if w == "-e" {
				s.errexit = true
			}
		}
		return 0
	case "umask":
		if len(words) > 1 {
			var m uint32
			fmt.Sscanf(words[1], "%o", &m)
			s.ctx.Proc.Umask(m)
		}
		return 0
	case ":":
		return 0
	}
	status, e := s.ctx.Proc.Exec(words, env, stdin, stdout, s.ctx.Stderr)
	if e != errno.OK {
		if e == errno.ENOENT {
			fmt.Fprintf(s.ctx.Stderr, "sh: %s: not found\n", words[0])
			return 127
		}
		fmt.Fprintf(s.ctx.Stderr, "sh: %s: %s\n", words[0], e.Message())
		return 126
	}
	return status
}

// Split tokenises a command into words with quoting and $-expansion.
// Exported for the builder's SHELL handling and for tests.
func Split(line string, env map[string]string) ([]string, error) {
	var words []string
	var cur strings.Builder
	started := false
	i := 0
	n := len(line)
	flush := func() {
		if started {
			words = append(words, cur.String())
			cur.Reset()
			started = false
		}
	}
	for i < n {
		c := line[i]
		switch {
		case c == ' ' || c == '\t':
			flush()
			i++
		case c == '\'':
			started = true
			j := i + 1
			for j < n && line[j] != '\'' {
				j++
			}
			if j >= n {
				return nil, fmt.Errorf("unterminated single quote")
			}
			cur.WriteString(line[i+1 : j])
			i = j + 1
		case c == '"':
			started = true
			j := i + 1
			var inner strings.Builder
			for j < n && line[j] != '"' {
				if line[j] == '\\' && j+1 < n && (line[j+1] == '"' || line[j+1] == '\\' || line[j+1] == '$') {
					inner.WriteByte(line[j+1])
					j += 2
					continue
				}
				inner.WriteByte(line[j])
				j++
			}
			if j >= n {
				return nil, fmt.Errorf("unterminated double quote")
			}
			cur.WriteString(expand(inner.String(), env))
			i = j + 1
		case c == '\\' && i+1 < n:
			started = true
			cur.WriteByte(line[i+1])
			i += 2
		case c == '$':
			started = true
			name, consumed := varName(line[i:])
			if consumed == 0 {
				cur.WriteByte(c)
				i++
				break
			}
			cur.WriteString(env[name])
			i += consumed
		default:
			started = true
			cur.WriteByte(c)
			i++
		}
	}
	flush()
	return words, nil
}

// expand performs $VAR/${VAR} expansion inside double quotes.
func expand(s string, env map[string]string) string {
	var b strings.Builder
	i := 0
	for i < len(s) {
		if s[i] == '$' {
			name, consumed := varName(s[i:])
			if consumed > 0 {
				b.WriteString(env[name])
				i += consumed
				continue
			}
		}
		b.WriteByte(s[i])
		i++
	}
	return b.String()
}

// varName parses "$NAME" or "${NAME}" at the start of s, returning the
// name and bytes consumed (0 if not a variable reference).
func varName(s string) (string, int) {
	if len(s) < 2 || s[0] != '$' {
		return "", 0
	}
	if s[1] == '{' {
		end := strings.IndexByte(s, '}')
		if end < 0 {
			return "", 0
		}
		return s[2:end], end + 1
	}
	j := 1
	for j < len(s) && (isAlnum(s[j]) || s[j] == '_') {
		j++
	}
	if j == 1 {
		return "", 0
	}
	return s[1:j], j
}

func isAlnum(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

func isName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || (i > 0 && c >= '0' && c <= '9')) {
			return false
		}
	}
	return true
}

// splitTop splits on a single-char separator at the top level (outside
// quotes), trimming empties.
func splitTop(line, sep string) []string {
	var out []string
	depth := 0
	var cur strings.Builder
	inQuote := byte(0)
	for i := 0; i < len(line); i++ {
		c := line[i]
		switch {
		case inQuote != 0:
			cur.WriteByte(c)
			if c == inQuote {
				inQuote = 0
			}
		case c == '\'' || c == '"':
			inQuote = c
			cur.WriteByte(c)
		case c == '(':
			depth++
			cur.WriteByte(c)
		case c == ')':
			depth--
			cur.WriteByte(c)
		case depth == 0 && c == sep[0] && sep != "|":
			out = append(out, cur.String())
			cur.Reset()
		case depth == 0 && sep == "|" && c == '|' &&
			(i == 0 || line[i-1] != '|') && (i+1 >= len(line) || line[i+1] != '|'):
			out = append(out, cur.String())
			cur.Reset()
		default:
			cur.WriteByte(c)
		}
	}
	out = append(out, cur.String())
	var trimmed []string
	for _, s := range out {
		if t := strings.TrimSpace(s); t != "" {
			trimmed = append(trimmed, t)
		}
	}
	return trimmed
}

// splitAndOr splits a line into pipeline segments joined by && and ||.
func splitAndOr(line string) (parts []string, ops []string) {
	inQuote := byte(0)
	var cur strings.Builder
	for i := 0; i < len(line); i++ {
		c := line[i]
		switch {
		case inQuote != 0:
			cur.WriteByte(c)
			if c == inQuote {
				inQuote = 0
			}
		case c == '\'' || c == '"':
			inQuote = c
			cur.WriteByte(c)
		case c == '&' && i+1 < len(line) && line[i+1] == '&':
			parts = append(parts, strings.TrimSpace(cur.String()))
			ops = append(ops, "&&")
			cur.Reset()
			i++
		case c == '|' && i+1 < len(line) && line[i+1] == '|':
			parts = append(parts, strings.TrimSpace(cur.String()))
			ops = append(ops, "||")
			cur.Reset()
			i++
		default:
			cur.WriteByte(c)
		}
	}
	if t := strings.TrimSpace(cur.String()); t != "" {
		parts = append(parts, t)
	}
	return parts, ops
}
