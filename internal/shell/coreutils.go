package shell

import (
	"fmt"
	"io"
	"path"
	"strings"

	"repro/internal/errno"
	"repro/internal/simos"
	"repro/internal/vfs"
)

// Busybox-style coreutils: one statically linked multi-call binary
// dispatching on argv[0], exactly how Alpine images work. Applets use
// ctx.C (the libc layer) for the calls the consistent emulators hook, so
// "chown" under fakeroot behaves as fakeroot intends — except that busybox
// is static, which is the documented LD_PRELOAD failure mode; the dynamic
// coreutils variant (GNU-flavoured images) registers with Static: false.

// Busybox returns the multi-call binary.
func Busybox(static bool) *simos.Binary {
	return &simos.Binary{
		Name:   "busybox",
		Static: static,
		Main: func(ctx *simos.ExecCtx) int {
			name := path.Base(ctx.Argv[0])
			args := ctx.Argv[1:]
			if name == "busybox" {
				if len(args) == 0 {
					fmt.Fprintln(ctx.Stdout, "BusyBox v1.36-sim multi-call binary.")
					return 0
				}
				name, args = args[0], args[1:]
			}
			if fn, ok := applets[name]; ok {
				return fn(ctx, args)
			}
			fmt.Fprintf(ctx.Stderr, "%s: applet not found\n", name)
			return 127
		},
	}
}

// InstallBusybox registers the multi-call binary and symlinks the standard
// applet names to it in the filesystem and registry.
func InstallBusybox(fs *vfs.FS, reg *simos.BinaryRegistry, static bool) {
	rc := vfs.RootContext()
	fs.MkdirAll(rc, "/bin", 0o755, 0, 0)
	fs.WriteFile(rc, "/bin/busybox", []byte("ELF busybox"), 0o755, 0, 0)
	bb := Busybox(static)
	reg.Register("/bin/busybox", bb)
	reg.Register("/bin/sh", Binary()) // sh is its own entry for clarity
	fs.WriteFile(rc, "/bin/sh.real", []byte("ELF sh"), 0o755, 0, 0)
	fs.Symlink(rc, "sh.real", "/bin/sh", 0, 0)
	reg.Register("/bin/sh.real", Binary())
	for name := range applets {
		p := "/bin/" + name
		if name == "sh" {
			continue
		}
		fs.Symlink(rc, "busybox", p, 0, 0)
	}
}

type applet func(ctx *simos.ExecCtx, args []string) int

var applets = map[string]applet{
	"echo": func(ctx *simos.ExecCtx, args []string) int {
		fmt.Fprintln(ctx.Stdout, strings.Join(args, " "))
		return 0
	},
	"true":  func(*simos.ExecCtx, []string) int { return 0 },
	"false": func(*simos.ExecCtx, []string) int { return 1 },
	"cat": func(ctx *simos.ExecCtx, args []string) int {
		if len(args) == 0 {
			data, err := io.ReadAll(ctx.Stdin)
			if err != nil {
				return 1
			}
			ctx.Stdout.Write(data)
			return 0
		}
		for _, f := range args {
			data, e := ctx.Proc.ReadFileAll(f)
			if e != errno.OK {
				fmt.Fprintf(ctx.Stderr, "cat: %s: %s\n", f, e.Message())
				return 1
			}
			ctx.Stdout.Write(data)
		}
		return 0
	},
	"id": func(ctx *simos.ExecCtx, args []string) int {
		fmt.Fprintf(ctx.Stdout, "uid=%d gid=%d euid=%d egid=%d\n",
			ctx.C.Getuid(), ctx.Proc.Getgid(), ctx.C.Geteuid(), ctx.Proc.Getegid())
		return 0
	},
	"whoami": func(ctx *simos.ExecCtx, args []string) int {
		if ctx.C.Geteuid() == 0 {
			fmt.Fprintln(ctx.Stdout, "root")
		} else {
			fmt.Fprintf(ctx.Stdout, "uid%d\n", ctx.C.Geteuid())
		}
		return 0
	},
	"ls": func(ctx *simos.ExecCtx, args []string) int {
		dir := "."
		long := false
		for _, a := range args {
			if a == "-l" {
				long = true
			} else if !strings.HasPrefix(a, "-") {
				dir = a
			}
		}
		ents, e := ctx.Proc.ReadDir(dir)
		if e != errno.OK {
			fmt.Fprintf(ctx.Stderr, "ls: %s: %s\n", dir, e.Message())
			return 1
		}
		for _, de := range ents {
			if long {
				st, _ := ctx.C.Lstat(path.Join(ctx.AbsPath(dir), de.Name))
				fmt.Fprintf(ctx.Stdout, "%04o %4d %4d %s\n", st.Mode, st.UID, st.GID, de.Name)
			} else {
				fmt.Fprintln(ctx.Stdout, de.Name)
			}
		}
		return 0
	},
	"touch": func(ctx *simos.ExecCtx, args []string) int {
		for _, f := range args {
			if _, e := ctx.C.Stat(f); e == errno.OK {
				ctx.Proc.Utimens(f)
				continue
			}
			if e := ctx.Proc.WriteFileAll(f, nil, 0o644); e != errno.OK {
				fmt.Fprintf(ctx.Stderr, "touch: %s: %s\n", f, e.Message())
				return 1
			}
		}
		return 0
	},
	"mkdir": func(ctx *simos.ExecCtx, args []string) int {
		parents := false
		status := 0
		for _, a := range args {
			if a == "-p" {
				parents = true
				continue
			}
			if strings.HasPrefix(a, "-") {
				continue
			}
			var e errno.Errno
			if parents {
				cur := ""
				for _, c := range strings.Split(strings.Trim(ctx.AbsPath(a), "/"), "/") {
					cur += "/" + c
					if e2 := ctx.Proc.Mkdir(cur, 0o755); e2 != errno.OK && e2 != errno.EEXIST {
						e = e2
						break
					}
				}
			} else {
				e = ctx.Proc.Mkdir(a, 0o755)
			}
			if e != errno.OK {
				fmt.Fprintf(ctx.Stderr, "mkdir: %s: %s\n", a, e.Message())
				status = 1
			}
		}
		return status
	},
	"rm": func(ctx *simos.ExecCtx, args []string) int {
		status := 0
		for _, a := range args {
			if strings.HasPrefix(a, "-") {
				continue
			}
			if e := ctx.Proc.Unlink(a); e != errno.OK {
				fmt.Fprintf(ctx.Stderr, "rm: %s: %s\n", a, e.Message())
				status = 1
			}
		}
		return status
	},
	"chown": func(ctx *simos.ExecCtx, args []string) int {
		var owner string
		var files []string
		for _, a := range args {
			if strings.HasPrefix(a, "-") {
				continue
			}
			if owner == "" {
				owner = a
			} else {
				files = append(files, a)
			}
		}
		uid, gid := parseOwner(owner)
		status := 0
		for _, f := range files {
			if e := ctx.C.Chown(f, uid, gid); e != errno.OK {
				fmt.Fprintf(ctx.Stderr, "chown: %s: %s\n", f, e.Message())
				status = 1
			}
		}
		return status
	},
	"chmod": func(ctx *simos.ExecCtx, args []string) int {
		if len(args) < 2 {
			return 1
		}
		var mode uint32
		fmt.Sscanf(args[0], "%o", &mode)
		status := 0
		for _, f := range args[1:] {
			if e := ctx.C.Chmod(f, mode); e != errno.OK {
				fmt.Fprintf(ctx.Stderr, "chmod: %s: %s\n", f, e.Message())
				status = 1
			}
		}
		return status
	},
	"mknod": func(ctx *simos.ExecCtx, args []string) int {
		// mknod PATH TYPE MAJOR MINOR
		if len(args) < 2 {
			fmt.Fprintln(ctx.Stderr, "mknod: usage: mknod PATH c|b|p [MAJ MIN]")
			return 1
		}
		var mode uint32 = 0o644
		var dev vfs.Dev
		switch args[1] {
		case "c":
			mode |= vfs.SIFCHR
		case "b":
			mode |= vfs.SIFBLK
		case "p":
			mode |= vfs.SIFIFO
		default:
			fmt.Fprintln(ctx.Stderr, "mknod: bad type")
			return 1
		}
		if len(args) >= 4 {
			var maj, min uint32
			fmt.Sscanf(args[2], "%d", &maj)
			fmt.Sscanf(args[3], "%d", &min)
			dev = vfs.Makedev(maj, min)
		}
		if e := ctx.C.Mknod(args[0], mode, dev); e != errno.OK {
			fmt.Fprintf(ctx.Stderr, "mknod: %s: %s\n", args[0], e.Message())
			return 1
		}
		return 0
	},
	"stat": func(ctx *simos.ExecCtx, args []string) int {
		status := 0
		for _, f := range args {
			if strings.HasPrefix(f, "-") {
				continue
			}
			st, e := ctx.C.Stat(f)
			if e != errno.OK {
				fmt.Fprintf(ctx.Stderr, "stat: %s: %s\n", f, e.Message())
				status = 1
				continue
			}
			fmt.Fprintf(ctx.Stdout, "%s uid=%d gid=%d mode=%04o size=%d\n",
				f, st.UID, st.GID, st.Mode, st.Size)
		}
		return status
	},
	"ln": func(ctx *simos.ExecCtx, args []string) int {
		soft := false
		var rest []string
		for _, a := range args {
			if a == "-s" {
				soft = true
			} else {
				rest = append(rest, a)
			}
		}
		if len(rest) != 2 {
			return 1
		}
		var e errno.Errno
		if soft {
			e = ctx.Proc.Symlink(rest[0], rest[1])
		} else {
			e = ctx.Proc.Link(rest[0], rest[1])
		}
		if e != errno.OK {
			fmt.Fprintf(ctx.Stderr, "ln: %s\n", e.Message())
			return 1
		}
		return 0
	},
	"readlink": func(ctx *simos.ExecCtx, args []string) int {
		if len(args) == 0 {
			return 1
		}
		t, e := ctx.Proc.Readlink(args[len(args)-1])
		if e != errno.OK {
			return 1
		}
		fmt.Fprintln(ctx.Stdout, t)
		return 0
	},
	"uname": func(ctx *simos.ExecCtx, args []string) int {
		sys, rel, mach, _ := ctx.Proc.Uname()
		fmt.Fprintf(ctx.Stdout, "%s %s %s\n", sys, rel, mach)
		return 0
	},
	"env": func(ctx *simos.ExecCtx, args []string) int {
		for k, v := range ctx.Env {
			fmt.Fprintf(ctx.Stdout, "%s=%s\n", k, v)
		}
		return 0
	},
	"sleep": func(*simos.ExecCtx, []string) int { return 0 },
	"sl": func(ctx *simos.ExecCtx, args []string) int {
		// The locomotive. Faithfully pointless.
		fmt.Fprintln(ctx.Stdout, "    ====        ________")
		fmt.Fprintln(ctx.Stdout, "_D _|  |_______/        \\__I_I_____===__")
		return 0
	},
}

// parseOwner parses "uid[:gid]" numerically or via the tiny built-in name
// table images carry in /etc/passwd semantics (root=0, sshd=74, _apt=100).
func parseOwner(s string) (int, int) {
	names := map[string]int{"root": 0, "bin": 1, "daemon": 2, "sshd": 74, "_apt": 100, "nobody": 65534}
	parse := func(tok string) int {
		if tok == "" {
			return -1
		}
		if v, ok := names[tok]; ok {
			return v
		}
		n := 0
		if _, err := fmt.Sscanf(tok, "%d", &n); err != nil {
			return -1
		}
		return n
	}
	u, g := s, ""
	if i := strings.IndexAny(s, ":."); i >= 0 {
		u, g = s[:i], s[i+1:]
	}
	return parse(u), parse(g)
}
