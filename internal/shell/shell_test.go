package shell

import (
	"strings"
	"testing"

	"repro/internal/errno"
	"repro/internal/simos"
	"repro/internal/vfs"
)

// shellWorld builds a kernel + proc with busybox installed.
func shellWorld(t *testing.T) (*simos.Proc, *vfs.FS) {
	t.Helper()
	k := simos.NewKernel()
	fs := vfs.New()
	rc := vfs.RootContext()
	fs.Chmod(rc, "/", 0o777, true)
	p := k.NewInitProc(simos.Mount{FS: fs, Owner: k.InitNS()}, 1000, 1000)
	reg := simos.NewBinaryRegistry()
	InstallBusybox(fs, reg, true)
	p.SetRegistry(reg)
	fs.ChownAll(1000, 1000)
	for _, d := range []string{"/tmp", "/etc"} {
		fs.MkdirAll(rc, d, 0o755, 1000, 1000)
	}
	return p, fs
}

// runSh executes a command line under /bin/sh -c and returns status +
// stdout.
func runSh(t *testing.T, p *simos.Proc, line string) (int, string) {
	t.Helper()
	var out strings.Builder
	status, e := p.Exec([]string{"/bin/sh", "-c", line},
		map[string]string{"PATH": "/bin"}, nil, &out, &out)
	if e != errno.OK {
		t.Fatalf("exec sh: %v", e)
	}
	return status, out.String()
}

func TestEcho(t *testing.T) {
	p, _ := shellWorld(t)
	status, out := runSh(t, p, "echo hello world")
	if status != 0 || out != "hello world\n" {
		t.Fatalf("status=%d out=%q", status, out)
	}
}

func TestTrueFalseStatus(t *testing.T) {
	p, _ := shellWorld(t)
	if s, _ := runSh(t, p, "true"); s != 0 {
		t.Fatalf("true: %d", s)
	}
	if s, _ := runSh(t, p, "false"); s != 1 {
		t.Fatalf("false: %d", s)
	}
}

func TestAndOrOperators(t *testing.T) {
	p, _ := shellWorld(t)
	cases := []struct {
		line string
		want string
	}{
		{"true && echo yes", "yes\n"},
		{"false && echo yes", ""},
		{"false || echo fallback", "fallback\n"},
		{"true || echo no", ""},
		{"true && false || echo rescued", "rescued\n"},
	}
	for _, c := range cases {
		_, out := runSh(t, p, c.line)
		if out != c.want {
			t.Errorf("%q -> %q, want %q", c.line, out, c.want)
		}
	}
}

func TestSemicolonSequencing(t *testing.T) {
	p, _ := shellWorld(t)
	_, out := runSh(t, p, "echo a; echo b; echo c")
	if out != "a\nb\nc\n" {
		t.Fatalf("out=%q", out)
	}
}

func TestPipeline(t *testing.T) {
	p, _ := shellWorld(t)
	// cat reads the piped stdin? Our cat only reads files; use a file.
	runSh(t, p, "echo piped > /tmp/f")
	_, out := runSh(t, p, "cat /tmp/f")
	if out != "piped\n" {
		t.Fatalf("out=%q", out)
	}
}

func TestRedirection(t *testing.T) {
	p, fs := shellWorld(t)
	status, _ := runSh(t, p, "echo content > /tmp/out.txt")
	if status != 0 {
		t.Fatalf("status=%d", status)
	}
	data, e := fs.ReadFile(vfs.RootContext(), "/tmp/out.txt")
	if e != errno.OK || string(data) != "content\n" {
		t.Fatalf("file: %q %v", data, e)
	}
	// Append.
	runSh(t, p, "echo more >> /tmp/out.txt")
	data, _ = fs.ReadFile(vfs.RootContext(), "/tmp/out.txt")
	if string(data) != "content\nmore\n" {
		t.Fatalf("append: %q", data)
	}
}

func TestVariableExpansion(t *testing.T) {
	p, _ := shellWorld(t)
	_, out := runSh(t, p, `X=world; echo "hello $X"`)
	if out != "hello world\n" {
		t.Fatalf("out=%q", out)
	}
	// Single quotes suppress expansion.
	_, out = runSh(t, p, `X=world; echo 'hello $X'`)
	if out != "hello $X\n" {
		t.Fatalf("single-quote out=%q", out)
	}
}

func TestEnvAssignmentPrefix(t *testing.T) {
	p, _ := shellWorld(t)
	_, out := runSh(t, p, "GREETING=hi env")
	if !strings.Contains(out, "GREETING=hi") {
		t.Fatalf("env out=%q", out)
	}
}

func TestCommandNotFound(t *testing.T) {
	p, _ := shellWorld(t)
	status, out := runSh(t, p, "nonesuch")
	if status != 127 || !strings.Contains(out, "not found") {
		t.Fatalf("status=%d out=%q", status, out)
	}
}

func TestCdAffectsRelativePaths(t *testing.T) {
	p, fs := shellWorld(t)
	status, _ := runSh(t, p, "cd /tmp && touch rel && stat /tmp/rel")
	if status != 0 {
		t.Fatal("cd+touch failed")
	}
	if !fs.Exists(vfs.RootContext(), "/tmp/rel") {
		t.Fatal("file not created relative to cd")
	}
}

func TestExitStatus(t *testing.T) {
	p, _ := shellWorld(t)
	status, _ := runSh(t, p, "exit 3")
	if status != 3 {
		t.Fatalf("status=%d", status)
	}
}

func TestScriptExecution(t *testing.T) {
	p, fs := shellWorld(t)
	fs.WriteFile(vfs.RootContext(), "/tmp/script.sh",
		[]byte("# demo\necho one\necho two\n"), 0o755, 1000, 1000)
	var out strings.Builder
	status, e := p.Exec([]string{"/bin/sh", "/tmp/script.sh"},
		map[string]string{"PATH": "/bin"}, nil, &out, &out)
	if e != errno.OK || status != 0 || out.String() != "one\ntwo\n" {
		t.Fatalf("status=%d out=%q e=%v", status, out.String(), e)
	}
}

func TestSetErrexit(t *testing.T) {
	p, fs := shellWorld(t)
	fs.WriteFile(vfs.RootContext(), "/tmp/e.sh",
		[]byte("set -e\nfalse\necho unreachable\n"), 0o755, 1000, 1000)
	var out strings.Builder
	status, _ := p.Exec([]string{"/bin/sh", "/tmp/e.sh"},
		map[string]string{"PATH": "/bin"}, nil, &out, &out)
	if status == 0 || strings.Contains(out.String(), "unreachable") {
		t.Fatalf("errexit ignored: status=%d out=%q", status, out.String())
	}
}

func TestSplitWords(t *testing.T) {
	env := map[string]string{"X": "val"}
	cases := []struct {
		in   string
		want []string
	}{
		{`a b c`, []string{"a", "b", "c"}},
		{`a "b c" d`, []string{"a", "b c", "d"}},
		{`'a b'`, []string{"a b"}},
		{`$X`, []string{"val"}},
		{`"$X"`, []string{"val"}},
		{`'$X'`, []string{"$X"}},
		{`a\ b`, []string{"a b"}},
		{`-o APT::Sandbox::User=root`, []string{"-o", "APT::Sandbox::User=root"}},
	}
	for _, c := range cases {
		got, err := Split(c.in, env)
		if err != nil {
			t.Errorf("Split(%q): %v", c.in, err)
			continue
		}
		if len(got) != len(c.want) {
			t.Errorf("Split(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Split(%q)[%d] = %q, want %q", c.in, i, got[i], c.want[i])
			}
		}
	}
}

func TestSplitUnterminatedQuote(t *testing.T) {
	if _, err := Split(`"unterminated`, nil); err == nil {
		t.Fatal("unterminated quote must fail")
	}
}

func TestCoreutilsChownStat(t *testing.T) {
	p, _ := shellWorld(t)
	// As uid 1000 in the init ns, chown to someone else fails.
	runSh(t, p, "touch /tmp/f")
	status, out := runSh(t, p, "chown sshd:sshd /tmp/f")
	if status == 0 {
		t.Fatalf("chown must fail unprivileged: %q", out)
	}
	// stat shows our ownership.
	_, out = runSh(t, p, "stat /tmp/f")
	if !strings.Contains(out, "uid=1000") {
		t.Fatalf("stat out=%q", out)
	}
}

func TestCoreutilsMknodUnprivileged(t *testing.T) {
	p, _ := shellWorld(t)
	status, out := runSh(t, p, "mknod /tmp/null c 1 3")
	if status == 0 {
		t.Fatalf("device mknod must fail: %q", out)
	}
	if status, _ = runSh(t, p, "mknod /tmp/fifo p"); status != 0 {
		t.Fatal("fifo mknod must succeed")
	}
}

func TestMkdirP(t *testing.T) {
	p, fs := shellWorld(t)
	status, _ := runSh(t, p, "mkdir -p /tmp/a/b/c")
	if status != 0 || !fs.Exists(vfs.RootContext(), "/tmp/a/b/c") {
		t.Fatal("mkdir -p failed")
	}
}

func TestIdReportsUID(t *testing.T) {
	p, _ := shellWorld(t)
	_, out := runSh(t, p, "id")
	if !strings.Contains(out, "uid=1000") {
		t.Fatalf("id out=%q", out)
	}
}
