package simos

import (
	"fmt"
)

// Capability is a Linux capability number (include/uapi/linux/capability.h).
type Capability int

// The capabilities the simulation consults.
const (
	CapChown          Capability = 0
	CapDacOverride    Capability = 1
	CapDacReadSearch  Capability = 2
	CapFowner         Capability = 3
	CapFsetid         Capability = 4
	CapKill           Capability = 5
	CapSetgid         Capability = 6
	CapSetuid         Capability = 7
	CapSetpcap        Capability = 8
	CapNetBindService Capability = 10
	CapNetAdmin       Capability = 12
	CapSysChroot      Capability = 18
	CapSysAdmin       Capability = 21
	CapSysBoot        Capability = 22
	CapMknod          Capability = 27
	CapSetfcap        Capability = 31
	capMax            Capability = 40
)

var capNames = map[Capability]string{
	CapChown: "CAP_CHOWN", CapDacOverride: "CAP_DAC_OVERRIDE",
	CapDacReadSearch: "CAP_DAC_READ_SEARCH", CapFowner: "CAP_FOWNER",
	CapFsetid: "CAP_FSETID", CapKill: "CAP_KILL", CapSetgid: "CAP_SETGID",
	CapSetuid: "CAP_SETUID", CapSetpcap: "CAP_SETPCAP",
	CapNetBindService: "CAP_NET_BIND_SERVICE", CapNetAdmin: "CAP_NET_ADMIN",
	CapSysChroot: "CAP_SYS_CHROOT", CapSysAdmin: "CAP_SYS_ADMIN",
	CapSysBoot: "CAP_SYS_BOOT", CapMknod: "CAP_MKNOD",
	CapSetfcap: "CAP_SETFCAP",
}

func (c Capability) String() string {
	if n, ok := capNames[c]; ok {
		return n
	}
	return fmt.Sprintf("CAP_%d", int(c))
}

// CapSet is a capability bitmask.
type CapSet uint64

// CapFull is every capability — what root (or the creator of a new user
// namespace) holds.
const CapFull CapSet = 1<<uint(capMax) - 1

// Has reports membership.
func (s CapSet) Has(c Capability) bool { return s&(1<<uint(c)) != 0 }

// With returns s plus c.
func (s CapSet) With(c Capability) CapSet { return s | 1<<uint(c) }

// Without returns s minus c.
func (s CapSet) Without(c Capability) CapSet { return s &^ (1 << uint(c)) }

// Cred is a process's credential block (struct cred): the full
// real/effective/saved/filesystem ID quartets, supplementary groups, and
// capability sets. All IDs are stored as *global* (init-namespace) values,
// as the kernel stores kuids; syscalls translate at the boundary.
type Cred struct {
	NS *UserNS

	RUID, EUID, SUID, FSUID int
	RGID, EGID, SGID, FSGID int
	Groups                  []int // global GIDs

	CapEffective CapSet
	CapPermitted CapSet
	CapBounding  CapSet

	NoNewPrivs bool
}

// clone deep-copies the cred for fork/exec.
func (c *Cred) clone() *Cred {
	d := *c
	d.Groups = append([]int{}, c.Groups...)
	return &d
}

// CapableIn implements ns_capable(): a process has a capability with
// respect to a target namespace if (a) the target is its own namespace and
// the capability is in its effective set, or (b) the process's namespace is
// an ancestor of the target and the process's global EUID owns the child
// namespace on the path down — the rule that makes the unprivileged user
// "root" over namespaces it creates, and *nothing else*.
func (c *Cred) CapableIn(cap Capability, target *UserNS) bool {
	for ns := target; ns != nil; ns = ns.parent {
		if c.NS == ns {
			return c.CapEffective.Has(cap)
		}
		if ns.parent == c.NS && c.EUID == ns.ownerUID {
			return true
		}
	}
	return false
}

// Capable is CapableIn against the process's own namespace.
func (c *Cred) Capable(cap Capability) bool {
	return c.CapableIn(cap, c.NS)
}

// hasGroup reports supplementary (or effective) membership in a global GID.
func (c *Cred) hasGroup(gid int) bool {
	if c.EGID == gid || c.FSGID == gid {
		return true
	}
	for _, g := range c.Groups {
		if g == gid {
			return true
		}
	}
	return false
}

// String renders the namespace-local view, as id(1) would print inside the
// container.
func (c *Cred) String() string {
	return fmt.Sprintf("uid=%d euid=%d gid=%d egid=%d ns=%s",
		c.NS.ViewUID(c.RUID), c.NS.ViewUID(c.EUID),
		c.NS.ViewGID(c.RGID), c.NS.ViewGID(c.EGID), c.NS.name)
}
