package simos

import (
	"fmt"
	"hash/fnv"

	"repro/internal/errno"
	"repro/internal/seccomp"
	"repro/internal/sysarch"
	"repro/internal/vfs"
)

// defaultArch is the ABI new kernels boot with; tests override per process.
var defaultArch = sysarch.X8664

// fd is one open-file-descriptor slot.
type fd struct {
	h      *vfs.Handle
	off    int64
	path   string
	isDir  bool
	dir    []vfs.DirEntry
	dirPos int
}

// Proc is a simulated process. Methods named after syscalls are the
// syscall surface: every one passes through the seccomp/ptrace gate before
// (maybe) executing. Proc is not safe for concurrent use; a process is a
// single thread of control, as in the build workloads.
type Proc struct {
	k    *Kernel
	pid  int
	ppid int
	comm string

	cred  *Cred
	arch  *sysarch.Arch
	mount Mount
	cwd   string
	umask uint32

	seccomp  *seccomp.Chain
	notifier Notifier
	ptrace   *PtraceHook
	preload  []*CHook

	registry *BinaryRegistry

	fds    map[int]*fd
	nextFD int

	exited   bool
	exitCode int
}

// KilledBySeccomp is the panic payload raised when a filter returns a
// KILL_* or unhandled TRAP disposition; Exec recovers it into an exit
// status of 128+SIGSYS, the shell-visible encoding of a seccomp kill.
type KilledBySeccomp struct {
	PID     int
	Syscall string
}

func (k KilledBySeccomp) String() string {
	return fmt.Sprintf("pid %d killed by SIGSYS on %s", k.PID, k.Syscall)
}

// PID returns the process ID.
func (p *Proc) PID() int { return p.pid }

// Comm returns the process name (argv[0] basename).
func (p *Proc) Comm() string { return p.comm }

// Cred exposes the credential block, for tests and the container layer.
func (p *Proc) Cred() *Cred { return p.cred }

// Arch returns the process architecture.
func (p *Proc) Arch() *sysarch.Arch { return p.arch }

// SetArch switches the process ABI (tests exercising the six tables).
func (p *Proc) SetArch(a *sysarch.Arch) { p.arch = a }

// Kernel returns the owning kernel.
func (p *Proc) Kernel() *Kernel { return p.k }

// MountInfo returns the current root mount.
func (p *Proc) MountInfo() Mount { return p.mount }

// SetMount re-roots the process (the pivot_root analog used by the
// container layer; the real syscall surface is in internal/container).
func (p *Proc) SetMount(m Mount) {
	m.FS.SetClock(p.k.Now)
	p.mount = m
	p.cwd = "/"
}

// SetNotifier attaches the USER_NOTIF supervisor (ID-consistency mode).
func (p *Proc) SetNotifier(n Notifier) { p.notifier = n }

// SetPtrace attaches a ptrace supervisor (PRoot baseline). As with real
// ptrace, the supervisor sees every syscall from then on.
func (p *Proc) SetPtrace(h *PtraceHook) { p.ptrace = h }

// Ptrace returns the attached supervisor, if any.
func (p *Proc) Ptrace() *PtraceHook { return p.ptrace }

// AddPreload appends an LD_PRELOAD-analog hook inherited by children and
// consulted by dynamically-linked binaries' libc layer (see CLib).
func (p *Proc) AddPreload(h *CHook) { p.preload = append(p.preload, h) }

// Preloads returns the preload hook chain.
func (p *Proc) Preloads() []*CHook { return p.preload }

// SeccompChain exposes the process's filter chain (tests, stats).
func (p *Proc) SeccompChain() *seccomp.Chain { return p.seccomp }

// SetRegistry attaches the binary registry execve resolves against.
func (p *Proc) SetRegistry(r *BinaryRegistry) { p.registry = r }

// --- syscall gate ---------------------------------------------------------

// enter runs the syscall through ptrace and seccomp. It returns proceed =
// false when a hook or filter disposed of the call, with the errno to
// deliver (errno.OK means "faked success"). A KILL disposition panics with
// KilledBySeccomp; Exec converts that to an exit status.
func (p *Proc) enter(name string, args ...uint64) (bool, errno.Errno) {
	p.k.counters.Syscalls.Add(1)
	p.k.vclock.charge(p.k.cost.SyscallTrap)
	if p.ptrace != nil {
		// A ptrace tracer costs two stops (entry+exit) on *every*
		// syscall, intercepted or not — the structural overhead §6(1)
		// attributes to ptrace-based emulators.
		p.k.counters.PtraceStops.Add(2)
		p.k.vclock.charge(2 * p.k.cost.PtraceStop)
		if p.ptrace.Observer != nil {
			p.ptrace.Observer(p, name, args)
		}
	}
	nr, ok := p.arch.Number(name)
	if !ok {
		p.trace(name, "", errno.ENOSYS, "")
		return false, errno.ENOSYS
	}
	if !p.seccomp.Empty() {
		p.k.counters.Filtered.Add(1)
		d := seccomp.Data{NR: int32(nr), Arch: p.arch.AuditArch}
		copy(d.Args[:], args)
		ret, steps := p.seccomp.EvaluateSteps(&d)
		p.k.vclock.charge(int64(steps) * p.k.cost.FilterPerInsn)
		switch seccomp.Action(ret) {
		case seccomp.RetAllow, seccomp.RetLog:
			// proceed
		case seccomp.RetErrnoBase:
			e := errno.Errno(seccomp.ActionData(ret))
			if e == errno.OK {
				p.k.counters.Faked.Add(1)
			}
			p.trace(name, "", e, "seccomp")
			return false, e
		case seccomp.RetUserNotif:
			p.k.counters.NotifEvents.Add(1)
			p.k.vclock.charge(p.k.cost.NotifRound)
			if p.notifier == nil {
				p.trace(name, "", errno.ENOSYS, "notif")
				return false, errno.ENOSYS
			}
			e := p.notifier.Notify(p, name, args)
			p.trace(name, "", e, "notif")
			return false, e
		default:
			p.trace(name, "", errno.EPERM, "seccomp-kill")
			panic(KilledBySeccomp{PID: p.pid, Syscall: name})
		}
	}
	return true, errno.OK
}

func (p *Proc) trace(name, detail string, e errno.Errno, handled string) errno.Errno {
	if t := p.k.Tracer; t != nil {
		t(TraceEvent{
			PID: p.pid, Comm: p.comm, Name: name, Detail: detail,
			Errno: int(e), Faked: handled == "seccomp" && e == errno.OK,
			Handled: handled,
		})
	}
	return e
}

// pathArg renders a path as a pseudo-pointer for seccomp_data: filters
// cannot dereference pointers (§4), so any stable value works; a hash keeps
// traces deterministic.
func pathArg(path string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(path))
	return h.Sum64() | 1<<63 // set a high bit so it looks like an address
}

func u64(v int) uint64 { return uint64(int64(v)) }

// abs resolves a (possibly relative) path against the cwd.
func (p *Proc) abs(path string) string {
	if path == "" {
		return p.cwd
	}
	if path[0] == '/' {
		return path
	}
	if p.cwd == "/" {
		return "/" + path
	}
	return p.cwd + "/" + path
}

// accessCtx resolves the credential into a vfs access context against the
// namespace owning the root mount's superblock. This is where "container
// root" quietly loses its powers: capabilities held in the container
// namespace do not apply to an init-namespace-owned filesystem.
func (p *Proc) accessCtx() *vfs.AccessContext {
	owner := p.mount.Owner
	c := p.cred
	return &vfs.AccessContext{
		UID: c.FSUID, GID: c.FSGID, Groups: c.Groups,
		CapDACOverride:   c.CapableIn(CapDacOverride, owner),
		CapDACReadSearch: c.CapableIn(CapDacReadSearch, owner),
		CapFowner:        c.CapableIn(CapFowner, owner),
		CapChown:         c.CapableIn(CapChown, owner),
		CapMknod:         c.CapableIn(CapMknod, owner),
		CapFsetid:        c.CapableIn(CapFsetid, owner),
		CapSetfcap:       c.CapableIn(CapSetfcap, owner),
	}
}

// viewStat translates global IDs in a stat result into the caller's
// namespace view (unmapped IDs render as OverflowUID).
func (p *Proc) viewStat(st vfs.Stat) vfs.Stat {
	st.UID = p.cred.NS.ViewUID(st.UID)
	st.GID = p.cred.NS.ViewGID(st.GID)
	return st
}
