package simos

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/errno"
	"repro/internal/sysarch"
	"repro/internal/vfs"
)

// newHostProc boots a kernel and returns an unprivileged host process
// (uid 1000) on a fresh init-namespace-owned filesystem.
func newHostProc(t *testing.T) (*Kernel, *Proc) {
	t.Helper()
	k := NewKernel()
	fs := vfs.New()
	p := k.NewInitProc(Mount{FS: fs, Owner: k.InitNS()}, 1000, 1000)
	// Give the user a writable world, as an image directory would be.
	rc := vfs.RootContext()
	for _, d := range []string{"/bin", "/etc", "/tmp", "/var"} {
		fs.MkdirAll(rc, d, 0o755, 1000, 1000)
	}
	fs.Chmod(rc, "/", 0o777, true)
	fs.Chown(rc, "/", 1000, 1000, true)
	return k, p
}

// enterTypeIII performs the unprivileged container setup: new userns with
// the single mapping container-0 -> host-1000.
func enterTypeIII(t *testing.T, p *Proc) {
	t.Helper()
	if e := p.UnshareUser(); e != errno.OK {
		t.Fatalf("unshare: %v", e)
	}
	if e := p.WriteUIDMap([]MapRange{{Inside: 0, Global: 1000, Count: 1}}); e != errno.OK {
		t.Fatalf("uid_map: %v", e)
	}
	if e := p.DenySetgroups(); e != errno.OK {
		t.Fatalf("setgroups deny: %v", e)
	}
	if e := p.WriteGIDMap([]MapRange{{Inside: 0, Global: 1000, Count: 1}}); e != errno.OK {
		t.Fatalf("gid_map: %v", e)
	}
}

func TestInitNSIdentityMapping(t *testing.T) {
	k := NewKernel()
	ns := k.InitNS()
	for _, id := range []int{0, 1, 1000, 65534} {
		g, ok := ns.UIDToGlobal(id)
		if !ok || g != id {
			t.Errorf("init ns uid %d -> %d ok=%v", id, g, ok)
		}
	}
}

func TestUnshareUserGrantsFullCapsInNewNS(t *testing.T) {
	_, p := newHostProc(t)
	if p.Cred().Capable(CapChown) {
		t.Fatal("uid 1000 must not have CAP_CHOWN in init ns")
	}
	enterTypeIII(t, p)
	if !p.Cred().Capable(CapChown) {
		t.Fatal("container root must have CAP_CHOWN in its own ns")
	}
	if p.Geteuid() != 0 {
		t.Fatalf("container euid view = %d, want 0", p.Geteuid())
	}
	// But not with respect to the init namespace.
	if p.Cred().CapableIn(CapChown, p.Kernel().InitNS()) {
		t.Fatal("container root must NOT have CAP_CHOWN in init ns")
	}
}

func TestUIDMapWriteOnceAndUnprivilegedRules(t *testing.T) {
	_, p := newHostProc(t)
	if e := p.UnshareUser(); e != errno.OK {
		t.Fatal(e)
	}
	// Mapping to someone else's uid is refused.
	if e := p.WriteUIDMap([]MapRange{{Inside: 0, Global: 0, Count: 1}}); e != errno.EPERM {
		t.Fatalf("mapping to root: %v", e)
	}
	// Multi-range unprivileged is refused.
	if e := p.WriteUIDMap([]MapRange{{0, 1000, 1}, {1, 100000, 65536}}); e != errno.EPERM {
		t.Fatalf("multi-range: %v", e)
	}
	if e := p.WriteUIDMap([]MapRange{{Inside: 0, Global: 1000, Count: 1}}); e != errno.OK {
		t.Fatalf("valid map: %v", e)
	}
	// Write-once.
	if e := p.WriteUIDMap([]MapRange{{Inside: 0, Global: 1000, Count: 1}}); e != errno.EPERM {
		t.Fatalf("second write: %v", e)
	}
}

func TestGIDMapRequiresSetgroupsDeny(t *testing.T) {
	_, p := newHostProc(t)
	if e := p.UnshareUser(); e != errno.OK {
		t.Fatal(e)
	}
	p.WriteUIDMap([]MapRange{{Inside: 0, Global: 1000, Count: 1}})
	if e := p.WriteGIDMap([]MapRange{{Inside: 0, Global: 1000, Count: 1}}); e != errno.EPERM {
		t.Fatalf("gid_map without setgroups deny: %v", e)
	}
	p.DenySetgroups()
	if e := p.WriteGIDMap([]MapRange{{Inside: 0, Global: 1000, Count: 1}}); e != errno.OK {
		t.Fatalf("gid_map after deny: %v", e)
	}
	// And setgroups is now permanently refused (Type III's group limit).
	if e := p.Setgroups([]int{0}); e != errno.EPERM {
		t.Fatalf("setgroups in denied ns: %v", e)
	}
}

func TestChownUnmappedIDFailsEINVAL(t *testing.T) {
	// Fig. 1b: rpm's chown to a package user (sshd=74) in a single-mapping
	// container is EINVAL.
	_, p := newHostProc(t)
	p.WriteFileAll("/tmp/f", []byte("x"), 0o644)
	enterTypeIII(t, p)
	if e := p.Chown("/tmp/f", 74, 74); e != errno.EINVAL {
		t.Fatalf("chown to unmapped uid: %v, want EINVAL", e)
	}
}

func TestChownMappedNoopSucceeds(t *testing.T) {
	// chown 0:0 on a file the container owner already owns is a no-op and
	// succeeds — why Alpine's apk (which skips redundant chowns anyway)
	// and simple packages build fine.
	_, p := newHostProc(t)
	p.WriteFileAll("/tmp/f", []byte("x"), 0o644)
	enterTypeIII(t, p)
	if e := p.Chown("/tmp/f", 0, 0); e != errno.OK {
		t.Fatalf("no-op chown: %v", e)
	}
	st, e := p.Stat("/tmp/f")
	if e != errno.OK || st.UID != 0 || st.GID != 0 {
		t.Fatalf("stat view: %+v %v", st, e)
	}
}

func TestMknodDeviceEPERMInContainer(t *testing.T) {
	_, p := newHostProc(t)
	enterTypeIII(t, p)
	if e := p.Mknod("/tmp/null", vfs.SIFCHR|0o666, vfs.Makedev(1, 3)); e != errno.EPERM {
		t.Fatalf("device mknod in container: %v, want EPERM", e)
	}
	// FIFO is unprivileged and succeeds.
	if e := p.Mknod("/tmp/fifo", vfs.SIFIFO|0o644, 0); e != errno.OK {
		t.Fatalf("fifo mknod: %v", e)
	}
}

func TestSetresuidUnmappedEINVAL(t *testing.T) {
	// apt's drop to _apt (uid 100) in a single-mapping container.
	_, p := newHostProc(t)
	enterTypeIII(t, p)
	if e := p.Setresuid(100, 100, 100); e != errno.EINVAL {
		t.Fatalf("setresuid to unmapped: %v, want EINVAL", e)
	}
}

func TestKexecLoadEPERMWithoutFilter(t *testing.T) {
	_, p := newHostProc(t)
	enterTypeIII(t, p)
	if e := p.KexecLoad(); e != errno.EPERM {
		t.Fatalf("kexec_load: %v, want EPERM", e)
	}
}

// installRootEmu installs the paper's filter on p (after no_new_privs).
func installRootEmu(t *testing.T, p *Proc) {
	t.Helper()
	if _, e := p.Prctl(PrSetNoNewPrivs, 1); e != errno.OK {
		t.Fatalf("prctl: %v", e)
	}
	f := core.MustNewFilter(core.Config{})
	if e := p.SeccompInstall(f); e != errno.OK {
		t.Fatalf("seccomp install: %v", e)
	}
}

func TestSeccompInstallRequiresNoNewPrivs(t *testing.T) {
	_, p := newHostProc(t)
	f := core.MustNewFilter(core.Config{})
	if e := p.SeccompInstall(f); e != errno.EACCES {
		t.Fatalf("install without no_new_privs: %v, want EACCES", e)
	}
}

func TestRootEmulationFakesChown(t *testing.T) {
	_, p := newHostProc(t)
	p.WriteFileAll("/tmp/f", []byte("x"), 0o644)
	enterTypeIII(t, p)
	installRootEmu(t, p)
	// The chown that failed EINVAL now "succeeds"...
	if e := p.Chown("/tmp/f", 74, 74); e != errno.OK {
		t.Fatalf("faked chown: %v", e)
	}
	// ...but nothing happened: stat still shows the original owner.
	// Zero consistency, demonstrated.
	st, _ := p.Stat("/tmp/f")
	if st.UID != 0 || st.GID != 0 {
		t.Fatalf("ownership changed under zero-consistency emulation: %+v", st)
	}
}

func TestRootEmulationKexecSelfTest(t *testing.T) {
	// §5 class 4: after installation, kexec_load returns success.
	_, p := newHostProc(t)
	enterTypeIII(t, p)
	if e := p.KexecLoad(); e != errno.EPERM {
		t.Fatalf("pre-install kexec: %v", e)
	}
	installRootEmu(t, p)
	if e := p.KexecLoad(); e != errno.OK {
		t.Fatalf("self-test: kexec under filter: %v, want OK", e)
	}
}

func TestRootEmulationMknodDeviceFakedFIFOReal(t *testing.T) {
	_, p := newHostProc(t)
	enterTypeIII(t, p)
	installRootEmu(t, p)
	// Device: faked, so no node appears.
	if e := p.Mknod("/tmp/null", vfs.SIFCHR|0o666, vfs.Makedev(1, 3)); e != errno.OK {
		t.Fatalf("faked device mknod: %v", e)
	}
	if _, e := p.Lstat("/tmp/null"); e != errno.ENOENT {
		t.Fatalf("device node must not exist: %v", e)
	}
	// FIFO: executed for real.
	if e := p.Mknod("/tmp/fifo", vfs.SIFIFO|0o644, 0); e != errno.OK {
		t.Fatalf("fifo mknod: %v", e)
	}
	st, e := p.Lstat("/tmp/fifo")
	if e != errno.OK || st.Type != vfs.TypeFIFO {
		t.Fatalf("fifo must exist: %+v %v", st, e)
	}
}

func TestRootEmulationSetresuidFakedButInconsistent(t *testing.T) {
	// §5's apt problem in miniature: the drop "succeeds", the verification
	// sees it didn't happen.
	_, p := newHostProc(t)
	enterTypeIII(t, p)
	installRootEmu(t, p)
	if e := p.Setresuid(100, 100, 100); e != errno.OK {
		t.Fatalf("faked setresuid: %v", e)
	}
	r, eu, s, _ := p.Getresuid()
	if r != 0 || eu != 0 || s != 0 {
		t.Fatalf("identity changed under fake: %d %d %d", r, eu, s)
	}
}

func TestSeccompChainInheritedByExec(t *testing.T) {
	_, p := newHostProc(t)
	enterTypeIII(t, p)
	installRootEmu(t, p)

	reg := NewBinaryRegistry()
	var sawFake bool
	reg.Register("/bin/probe", &Binary{Name: "probe", Main: func(ctx *ExecCtx) int {
		// The child inherits the filter: chown to an unmapped uid fakes OK.
		if e := ctx.Proc.Chown("/tmp/f", 74, 74); e != errno.OK {
			return 1
		}
		sawFake = true
		return 0
	}})
	p.SetRegistry(reg)
	p.WriteFileAll("/tmp/f", []byte("x"), 0o644)
	p.mount.FS.WriteFile(vfs.RootContext(), "/bin/probe", []byte("ELF"), 0o755, 1000, 1000)

	status, e := p.Exec([]string{"/bin/probe"}, nil, nil, nil, nil)
	if e != errno.OK || status != 0 || !sawFake {
		t.Fatalf("exec: status=%d e=%v sawFake=%v", status, e, sawFake)
	}
}

func TestSeccompKillBecomesExitStatus(t *testing.T) {
	_, p := newHostProc(t)
	// A filter that kills on kexec_load.
	f := core.MustNewFilter(core.Config{KillUnknownArch: true})
	_ = f
	// Simpler: build a kill-on-chown filter via core with FakeErrno? No:
	// use KillUnknownArch by running a foreign-arch process.
	p.Prctl(PrSetNoNewPrivs, 1)
	if e := p.SeccompInstall(f); e != errno.OK {
		t.Fatalf("install: %v", e)
	}
	reg := NewBinaryRegistry()
	reg.Register("/bin/alien", &Binary{Name: "alien", Main: func(ctx *ExecCtx) int {
		ctx.Proc.SetArch(nil) // never reached; arch swapped below
		return 0
	}})
	// Instead of arch games, exercise the kill path directly through a
	// process whose arch the filter refuses.
	p.SetRegistry(reg)
	p.mount.FS.WriteFile(vfs.RootContext(), "/bin/alien", []byte("ELF"), 0o755, 1000, 1000)

	child := &Proc{
		k: p.k, pid: p.k.takePID(), ppid: p.pid, comm: "alien",
		cred: p.cred.clone(), arch: sysarch.X8664, mount: p.mount,
		cwd: "/", umask: 0o022, seccomp: p.seccomp.Clone(),
		fds: map[int]*fd{}, nextFD: 3,
	}
	// Unknown arch: hand-craft one by pointing at a table the filter
	// doesn't know. Reuse ARM arch but feed an x86_64-only filter.
	single := core.MustNewFilter(core.Config{
		Arches:          []*sysarch.Arch{sysarch.X8664},
		KillUnknownArch: true,
	})
	child.seccomp.Install(single)
	child.arch = sysarch.ARM

	status := runGuarded(&Binary{Name: "alien", Main: func(ctx *ExecCtx) int {
		ctx.Proc.Getpid() // any syscall on the foreign arch triggers the kill
		return 0
	}}, &ExecCtx{Proc: child, C: &CLib{P: child}, Argv: []string{"alien"}})
	if status != 128+31 {
		t.Fatalf("kill status = %d, want 159", status)
	}
}

func TestPreloadHookDynamicVsStatic(t *testing.T) {
	// §6(3): LD_PRELOAD interposition works only for dynamically linked
	// binaries.
	k, p := newHostProc(t)
	hookHits := 0
	hook := &CHook{
		Name: "fakeroot-preload",
		Chown: func(c *CLib, path string, uid, gid int, follow bool) (errno.Errno, bool) {
			hookHits++
			return errno.OK, true
		},
	}
	p.AddPreload(hook)
	reg := NewBinaryRegistry()
	reg.Register("/bin/dyn", &Binary{Name: "dyn", Main: func(ctx *ExecCtx) int {
		if e := ctx.C.Chown("/tmp/f", 74, 74); e != errno.OK {
			return 1
		}
		return 0
	}})
	reg.Register("/bin/static", &Binary{Name: "static", Static: true, Main: func(ctx *ExecCtx) int {
		if e := ctx.C.Chown("/tmp/f", 74, 74); e != errno.OK {
			return 1
		}
		return 0
	}})
	p.SetRegistry(reg)
	rc := vfs.RootContext()
	p.mount.FS.WriteFile(rc, "/bin/dyn", []byte("ELF"), 0o755, 1000, 1000)
	p.mount.FS.WriteFile(rc, "/bin/static", []byte("ELF"), 0o755, 1000, 1000)
	p.WriteFileAll("/tmp/f", []byte("x"), 0o644)

	status, _ := p.Exec([]string{"/bin/dyn"}, nil, nil, nil, nil)
	if status != 0 || hookHits != 1 {
		t.Fatalf("dynamic: status=%d hits=%d", status, hookHits)
	}
	if k.Snapshot().PreloadHits != 1 {
		t.Fatalf("preload counter %d", k.Snapshot().PreloadHits)
	}
	// Static binary bypasses the hook; the real chown fails (uid 1000 in
	// init ns, no CAP_CHOWN).
	status, _ = p.Exec([]string{"/bin/static"}, nil, nil, nil, nil)
	if status != 1 || hookHits != 1 {
		t.Fatalf("static: status=%d hits=%d (hook must not fire)", status, hookHits)
	}
}

func TestPtraceHookInterceptsAndCharges(t *testing.T) {
	k, p := newHostProc(t)
	recorded := map[string][2]int{}
	p.SetPtrace(&PtraceHook{
		Name: "proot",
		Chown: func(pp *Proc, path string, uid, gid int, follow bool) (errno.Errno, bool) {
			recorded[path] = [2]int{uid, gid}
			return errno.OK, true
		},
	})
	p.WriteFileAll("/tmp/f", []byte("x"), 0o644)
	if e := p.Chown("/tmp/f", 74, 74); e != errno.OK {
		t.Fatalf("ptrace chown: %v", e)
	}
	if recorded["/tmp/f"] != [2]int{74, 74} {
		t.Fatalf("supervisor record: %v", recorded)
	}
	if k.Snapshot().PtraceStops == 0 {
		t.Fatal("ptrace stops not charged")
	}
}

func TestPtraceObserverSeesEverySyscall(t *testing.T) {
	k, p := newHostProc(t)
	var names []string
	p.SetPtrace(&PtraceHook{
		Name:     "observer",
		Observer: func(pp *Proc, name string, args []uint64) { names = append(names, name) },
	})
	p.Getpid()
	p.Getuid()
	p.Stat("/tmp")
	if len(names) != 3 {
		t.Fatalf("observer saw %v", names)
	}
	// Two stops per syscall.
	if got := k.Snapshot().PtraceStops; got != 6 {
		t.Fatalf("stops = %d, want 6", got)
	}
}

func TestArchSyscallRouting(t *testing.T) {
	// The same portable operation issues different syscalls per ABI —
	// observable in the trace, and the reason the filter needs per-arch
	// tables.
	for _, tc := range []struct {
		arch *sysarch.Arch
		want string
	}{
		{sysarch.X8664, "chown"},
		{sysarch.I386, "chown32"},
		{sysarch.ARM, "chown32"},
		{sysarch.ARM64, "fchownat"},
		{sysarch.PPC64LE, "chown"},
		{sysarch.S390X, "chown"},
	} {
		k, p := newHostProc(t)
		p.SetArch(tc.arch)
		var seen []string
		k.Tracer = func(ev TraceEvent) { seen = append(seen, ev.Name) }
		p.WriteFileAll("/tmp/f", []byte("x"), 0o644)
		seen = nil
		p.Chown("/tmp/f", 1000, 1000)
		if len(seen) == 0 || seen[len(seen)-1] != tc.want {
			t.Errorf("%s: chown routed to %v, want %s", tc.arch, seen, tc.want)
		}
	}
}

func TestFileDescriptorLifecycle(t *testing.T) {
	_, p := newHostProc(t)
	fdn, e := p.Open("/tmp/f", OFlags{Write: true, Create: true, Mode: 0o644})
	if e != errno.OK {
		t.Fatalf("open: %v", e)
	}
	if n, e := p.Write(fdn, []byte("hello")); e != errno.OK || n != 5 {
		t.Fatalf("write: %d %v", n, e)
	}
	if e := p.Close(fdn); e != errno.OK {
		t.Fatalf("close: %v", e)
	}
	if _, e := p.Read(fdn, make([]byte, 1)); e != errno.EBADF {
		t.Fatalf("read closed fd: %v", e)
	}
	data, e := p.ReadFileAll("/tmp/f")
	if e != errno.OK || string(data) != "hello" {
		t.Fatalf("readback: %q %v", data, e)
	}
}

func TestUmaskApplied(t *testing.T) {
	_, p := newHostProc(t)
	p.Umask(0o077)
	p.WriteFileAll("/tmp/f", []byte("x"), 0o666)
	st, _ := p.Stat("/tmp/f")
	if st.Mode != 0o600 {
		t.Fatalf("mode %o, want 600", st.Mode)
	}
}

func TestCwdAndRelativePaths(t *testing.T) {
	_, p := newHostProc(t)
	if e := p.Chdir("/tmp"); e != errno.OK {
		t.Fatalf("chdir: %v", e)
	}
	p.WriteFileAll("rel.txt", []byte("x"), 0o644)
	if _, e := p.Stat("/tmp/rel.txt"); e != errno.OK {
		t.Fatalf("relative write landed elsewhere: %v", e)
	}
	cwd, _ := p.Getcwd()
	if cwd != "/tmp" {
		t.Fatalf("cwd %q", cwd)
	}
}

func TestExecPATHResolution(t *testing.T) {
	_, p := newHostProc(t)
	reg := NewBinaryRegistry()
	reg.Register("/bin/busybox", &Binary{Name: "busybox", Static: true, Main: func(ctx *ExecCtx) int {
		ctx.Stdout.Write([]byte("ok\n"))
		return 0
	}})
	p.SetRegistry(reg)
	rc := vfs.RootContext()
	p.mount.FS.WriteFile(rc, "/bin/busybox", []byte("ELF"), 0o755, 1000, 1000)
	p.mount.FS.Symlink(rc, "busybox", "/bin/echo2", 1000, 1000)

	var out strings.Builder
	status, e := p.Exec([]string{"echo2"}, map[string]string{"PATH": "/bin"}, nil, &out, nil)
	if e != errno.OK || status != 0 || out.String() != "ok\n" {
		t.Fatalf("exec via PATH+symlink: status=%d e=%v out=%q", status, e, out.String())
	}
}

func TestExecMissingCommand(t *testing.T) {
	_, p := newHostProc(t)
	p.SetRegistry(NewBinaryRegistry())
	if _, e := p.Exec([]string{"nonesuch"}, nil, nil, nil, nil); e != errno.ENOENT {
		t.Fatalf("missing command: %v", e)
	}
}

func TestCountersTrackFiltering(t *testing.T) {
	k, p := newHostProc(t)
	enterTypeIII(t, p)
	installRootEmu(t, p)
	k.ResetCounters()
	p.WriteFileAll("/tmp/f", []byte("x"), 0o644) // several allowed syscalls
	p.Chown("/tmp/f", 74, 74)                    // one faked
	s := k.Snapshot()
	if s.Syscalls == 0 || s.Filtered == 0 {
		t.Fatalf("counters %+v", s)
	}
	if s.Faked != 1 {
		t.Fatalf("faked = %d, want 1", s.Faked)
	}
}

func TestSetuidRootInInitNS(t *testing.T) {
	k := NewKernel()
	fs := vfs.New()
	root := k.NewInitProc(Mount{FS: fs, Owner: k.InitNS()}, 0, 0)
	if e := root.Setuid(1234); e != errno.OK {
		t.Fatalf("root setuid: %v", e)
	}
	if root.Getuid() != 1234 {
		t.Fatalf("uid %d", root.Getuid())
	}
	// Caps dropped on full transition away from root.
	if root.Cred().Capable(CapChown) {
		t.Fatal("caps must drop when leaving uid 0")
	}
	// And now privilege is gone for good.
	if e := root.Setuid(0); e != errno.EPERM {
		t.Fatalf("regaining root: %v", e)
	}
}

func TestSetresuidSwapUnprivileged(t *testing.T) {
	_, p := newHostProc(t)
	// Unprivileged process may swap among its r/e/s set.
	if e := p.Setresuid(-1, 1000, -1); e != errno.OK {
		t.Fatalf("no-op swap: %v", e)
	}
	if e := p.Setresuid(0, -1, -1); e != errno.EPERM {
		t.Fatalf("stealing uid 0: %v", e)
	}
}

func TestCapsetSubsetRules(t *testing.T) {
	k := NewKernel()
	fs := vfs.New()
	root := k.NewInitProc(Mount{FS: fs, Owner: k.InitNS()}, 0, 0)
	eff, perm, e := root.Capget()
	if e != errno.OK || !eff.Has(CapChown) || !perm.Has(CapChown) {
		t.Fatalf("capget: %v %v %v", eff, perm, e)
	}
	// Dropping is fine.
	if e := root.Capset(0, perm); e != errno.OK {
		t.Fatalf("drop effective: %v", e)
	}
	// Raising effective beyond permitted is not.
	if e := root.Capset(perm, 0); e != errno.EPERM {
		t.Fatalf("effective ⊄ permitted: %v", e)
	}
	// Growing permitted is not.
	root.Capset(0, 0)
	if e := root.Capset(0, CapFull); e != errno.EPERM {
		t.Fatalf("regrow permitted: %v", e)
	}
}

func TestTraceEventsEmitted(t *testing.T) {
	k, p := newHostProc(t)
	var evs []TraceEvent
	k.Tracer = func(ev TraceEvent) { evs = append(evs, ev) }
	enterTypeIII(t, p)
	installRootEmu(t, p)
	evs = nil
	p.Chown("/bin", 74, 74)
	if len(evs) != 1 {
		t.Fatalf("events: %+v", evs)
	}
	if !evs[0].Faked || evs[0].Handled != "seccomp" || evs[0].Name != "chown" {
		t.Fatalf("event: %+v", evs[0])
	}
}

func TestXattrSecurityEPERMInContainer(t *testing.T) {
	// The systemd/future-work case: setcap's setxattr fails in the
	// container without the extended filter…
	_, p := newHostProc(t)
	p.WriteFileAll("/bin/ping", []byte("ELF"), 0o755)
	enterTypeIII(t, p)
	if e := p.Setxattr("/bin/ping", "security.capability", []byte{1}); e != errno.EPERM {
		t.Fatalf("setxattr: %v, want EPERM", e)
	}
	// …and is faked to success with it.
	p.Prctl(PrSetNoNewPrivs, 1)
	f := core.MustNewFilter(core.Config{Variant: core.VariantExtended})
	p.SeccompInstall(f)
	if e := p.Setxattr("/bin/ping", "security.capability", []byte{1}); e != errno.OK {
		t.Fatalf("faked setxattr: %v", e)
	}
	// Zero consistency: the attribute was not actually set.
	if _, e := p.Getxattr("/bin/ping", "security.capability"); e != errno.ENODATA {
		t.Fatalf("xattr must not exist: %v", e)
	}
}

func TestUserNotifIDConsistency(t *testing.T) {
	// Future work 2: identity syscalls routed to a supervisor that records
	// them; getuid reflects recorded state via the supervisor's own logic.
	_, p := newHostProc(t)
	enterTypeIII(t, p)
	p.Prctl(PrSetNoNewPrivs, 1)
	f := core.MustNewFilter(core.Config{IDConsistency: true})
	var lastSyscall string
	p.SetNotifier(NotifierFunc(func(pp *Proc, name string, args []uint64) errno.Errno {
		lastSyscall = name
		return errno.OK
	}))
	p.SeccompInstall(f)
	if e := p.Setresuid(100, 100, 100); e != errno.OK {
		t.Fatalf("notif setresuid: %v", e)
	}
	if lastSyscall != "setresuid" {
		t.Fatalf("notifier saw %q", lastSyscall)
	}
	// chown is still plain zero-consistency fake.
	p.WriteFileAll("/tmp/f", []byte("x"), 0o644)
	if e := p.Chown("/tmp/f", 74, 74); e != errno.OK {
		t.Fatalf("chown: %v", e)
	}
}
