package simos

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/seccomp"
	"repro/internal/vfs"
)

// Kernel is one simulated machine: the init user namespace, the process
// table, a deterministic logical clock, and global syscall counters the
// overhead experiments (E8) read.
type Kernel struct {
	mu     sync.Mutex
	initNS *UserNS
	nextNS int

	nextPID int
	procs   map[int]*Proc

	clockTick atomic.Int64
	baseTime  time.Time

	// Tracer, when set, receives one event per syscall — the strace(1)
	// analog. It must not call back into the kernel.
	Tracer func(TraceEvent)

	counters Counters
	cost     CostModel
	vclock   virtualClock
}

// Counters aggregates syscall accounting across all processes.
type Counters struct {
	Syscalls    atomic.Uint64 // syscalls entered
	Filtered    atomic.Uint64 // syscalls evaluated by a seccomp chain
	Faked       atomic.Uint64 // syscalls answered ERRNO(0) by a filter
	PtraceStops atomic.Uint64 // ptrace stop events (2 per syscall when traced)
	PreloadHits atomic.Uint64 // libc-level interceptions (preload analog)
	NotifEvents atomic.Uint64 // USER_NOTIF round trips
}

// CounterSnapshot is a plain-value copy for reporting.
type CounterSnapshot struct {
	Syscalls, Filtered, Faked, PtraceStops, PreloadHits, NotifEvents uint64
}

// Snapshot copies the counters.
func (k *Kernel) Snapshot() CounterSnapshot {
	return CounterSnapshot{
		Syscalls:    k.counters.Syscalls.Load(),
		Filtered:    k.counters.Filtered.Load(),
		Faked:       k.counters.Faked.Load(),
		PtraceStops: k.counters.PtraceStops.Load(),
		PreloadHits: k.counters.PreloadHits.Load(),
		NotifEvents: k.counters.NotifEvents.Load(),
	}
}

// ResetCounters zeroes the counters between experiment phases.
func (k *Kernel) ResetCounters() {
	k.counters.Syscalls.Store(0)
	k.counters.Filtered.Store(0)
	k.counters.Faked.Store(0)
	k.counters.PtraceStops.Store(0)
	k.counters.PreloadHits.Store(0)
	k.counters.NotifEvents.Store(0)
}

// TraceEvent is one syscall trace record.
type TraceEvent struct {
	PID     int
	Comm    string // binary name
	Name    string // syscall name
	Detail  string // formatted arguments, best effort
	Errno   int    // 0 on success
	Faked   bool   // answered by a seccomp ERRNO disposition
	Handled string // "", "seccomp", "ptrace", "preload", "notif"
}

// NewKernel boots a simulated machine.
func NewKernel() *Kernel {
	return &Kernel{
		initNS:  newInitNS(),
		nextPID: 1,
		procs:   map[int]*Proc{},
		cost:    DefaultCostModel(),
		// An arbitrary fixed epoch keeps runs reproducible.
		baseTime: time.Date(2024, 5, 9, 0, 0, 0, 0, time.UTC),
	}
}

// InitNS returns the init user namespace.
func (k *Kernel) InitNS() *UserNS { return k.initNS }

// Now advances and returns the logical clock: every call is a distinct,
// monotonically later instant, so file mtimes order deterministically.
func (k *Kernel) Now() time.Time {
	t := k.clockTick.Add(1)
	return k.baseTime.Add(time.Duration(t) * time.Microsecond)
}

func (k *Kernel) newNSName() string {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.nextNS++
	return "user_ns_" + itoa(k.nextNS)
}

func (k *Kernel) takePID() int {
	k.mu.Lock()
	defer k.mu.Unlock()
	pid := k.nextPID
	k.nextPID++
	return pid
}

func (k *Kernel) register(p *Proc) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.procs[p.pid] = p
}

func (k *Kernel) unregister(pid int) {
	k.mu.Lock()
	defer k.mu.Unlock()
	delete(k.procs, pid)
}

// Proc looks up a live process by PID.
func (k *Kernel) Proc(pid int) (*Proc, bool) {
	k.mu.Lock()
	defer k.mu.Unlock()
	p, ok := k.procs[pid]
	return p, ok
}

// Mount pairs a filesystem with the user namespace owning its superblock.
// The owner decides capability checks for operations on the mount: a
// host-directory image store is owned by the init namespace (Charliecloud's
// layout, and why chown EPERMs in the container), while a tmpfs mounted
// *inside* a user namespace is owned by that namespace.
type Mount struct {
	FS    *vfs.FS
	Owner *UserNS
}

// NewInitProc creates PID-1-style process in the init namespace with the
// given identity, rooted on m.
func (k *Kernel) NewInitProc(m Mount, uid, gid int) *Proc {
	cred := &Cred{
		NS:   k.initNS,
		RUID: uid, EUID: uid, SUID: uid, FSUID: uid,
		RGID: gid, EGID: gid, SGID: gid, FSGID: gid,
	}
	if uid == 0 {
		cred.CapEffective = CapFull
		cred.CapPermitted = CapFull
	}
	cred.CapBounding = CapFull
	m.FS.SetClock(k.Now)
	p := &Proc{
		k: k, pid: k.takePID(), comm: "init",
		cred: cred, arch: defaultArch,
		mount: m, cwd: "/", umask: 0o022,
		fds: map[int]*fd{}, nextFD: 3,
	}
	p.seccomp = &seccomp.Chain{}
	k.register(p)
	return p
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	neg := v < 0
	if neg {
		v = -v
	}
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}
