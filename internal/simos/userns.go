// Package simos is a simulated Linux kernel subset: processes with full
// POSIX credentials, user namespaces with uid_map semantics, a syscall
// surface large enough to run simulated package managers, and — the point
// of the exercise — a seccomp hook that runs real BPF filter programs
// (internal/bpf) on every simulated system call, plus ptrace- and
// LD_PRELOAD-analog hooks for the consistent-emulation baselines.
//
// The simulation reproduces the specific kernel behaviours the paper's
// argument rests on:
//
//   - In a fully unprivileged (Type III) container the process has EUID 0
//     and full capabilities *in its user namespace*, but syscalls touching
//     resources owned by the init namespace — chown on a host-backed image
//     directory, device-node mknod, setuid to an unmapped ID — fail with
//     EPERM or EINVAL (§1: "this greater privilege is an illusion").
//
//   - A seccomp filter installed with no_new_privs intercepts syscalls
//     before they execute and can fake success (§4, §5).
package simos

import (
	"fmt"
	"sync"

	"repro/internal/errno"
)

// OverflowUID is the view of an unmapped ID (kernel overflowuid), what
// stat(2) reports for files owned by IDs outside the namespace's map.
const OverflowUID = 65534

// MapRange is one uid_map/gid_map line: count IDs starting at Inside map to
// count IDs starting at Global. Global values are init-namespace (kernel)
// IDs — maps are pre-composed through the namespace chain at write time, so
// translation is single-step.
type MapRange struct {
	Inside int
	Global int
	Count  int
}

// UserNS is a user namespace. The zero value is not usable; namespaces are
// created by the Kernel (init) or by unshare.
type UserNS struct {
	mu     sync.RWMutex
	name   string
	parent *UserNS
	level  int

	// ownerUID is the global EUID of the creator; capability checks in
	// child namespaces resolve against it.
	ownerUID int

	uidMap []MapRange
	gidMap []MapRange

	// setgroupsAllowed mirrors /proc/pid/setgroups: an unprivileged
	// process must write "deny" before it may write gid_map, and from then
	// on setgroups(2) fails in the namespace. This is why Type III
	// containers cannot use supplementary groups (§2: Type II's benefit is
	// "greater flexibility of users and groups").
	setgroupsState setgroupsState
}

type setgroupsState int

const (
	setgroupsAllowed setgroupsState = iota
	setgroupsDenied
)

func newInitNS() *UserNS {
	// Identity mapping over the full ID space; setgroups allowed.
	full := []MapRange{{Inside: 0, Global: 0, Count: 1 << 31}}
	return &UserNS{
		name: "init_user_ns", ownerUID: 0,
		uidMap: full, gidMap: full,
	}
}

// Name returns the diagnostic name.
func (ns *UserNS) Name() string { return ns.name }

// Parent returns the parent namespace, nil for the init namespace.
func (ns *UserNS) Parent() *UserNS { return ns.parent }

// Level returns the nesting depth (0 = init).
func (ns *UserNS) Level() int { return ns.level }

// OwnerUID returns the global EUID of the namespace creator.
func (ns *UserNS) OwnerUID() int { return ns.ownerUID }

func translate(m []MapRange, inside int) (int, bool) {
	for _, r := range m {
		if inside >= r.Inside && inside < r.Inside+r.Count {
			return r.Global + (inside - r.Inside), true
		}
	}
	return 0, false
}

func reverse(m []MapRange, global int) (int, bool) {
	for _, r := range m {
		if global >= r.Global && global < r.Global+r.Count {
			return r.Inside + (global - r.Global), true
		}
	}
	return 0, false
}

// UIDToGlobal translates a namespace-local UID to a global one; !ok means
// the ID is unmapped — the make_kuid failure that surfaces as EINVAL from
// chown and setuid, the exact failure in Figure 1b.
func (ns *UserNS) UIDToGlobal(inside int) (int, bool) {
	ns.mu.RLock()
	defer ns.mu.RUnlock()
	return translate(ns.uidMap, inside)
}

// UIDFromGlobal translates a global UID into this namespace's view; !ok
// callers render OverflowUID.
func (ns *UserNS) UIDFromGlobal(global int) (int, bool) {
	ns.mu.RLock()
	defer ns.mu.RUnlock()
	return reverse(ns.uidMap, global)
}

// GIDToGlobal is UIDToGlobal for groups.
func (ns *UserNS) GIDToGlobal(inside int) (int, bool) {
	ns.mu.RLock()
	defer ns.mu.RUnlock()
	return translate(ns.gidMap, inside)
}

// GIDFromGlobal is UIDFromGlobal for groups.
func (ns *UserNS) GIDFromGlobal(global int) (int, bool) {
	ns.mu.RLock()
	defer ns.mu.RUnlock()
	return reverse(ns.gidMap, global)
}

// ViewUID renders a global UID as this namespace sees it, substituting
// OverflowUID for unmapped IDs (what ls -l shows as 65534/nobody).
func (ns *UserNS) ViewUID(global int) int {
	if v, ok := ns.UIDFromGlobal(global); ok {
		return v
	}
	return OverflowUID
}

// ViewGID is ViewUID for groups.
func (ns *UserNS) ViewGID(global int) int {
	if v, ok := ns.GIDFromGlobal(global); ok {
		return v
	}
	return OverflowUID
}

// Mapped reports whether uid_map has been written.
func (ns *UserNS) Mapped() bool {
	ns.mu.RLock()
	defer ns.mu.RUnlock()
	return len(ns.uidMap) > 0
}

// SetgroupsDenied reports whether setgroups(2) has been disabled.
func (ns *UserNS) SetgroupsDenied() bool {
	ns.mu.RLock()
	defer ns.mu.RUnlock()
	return ns.setgroupsState == setgroupsDenied
}

// IsAncestorOf reports whether ns is a strict ancestor of other.
func (ns *UserNS) IsAncestorOf(other *UserNS) bool {
	for p := other.parent; p != nil; p = p.parent {
		if p == ns {
			return true
		}
	}
	return false
}

func (ns *UserNS) String() string {
	return fmt.Sprintf("%s(level=%d,owner=%d)", ns.name, ns.level, ns.ownerUID)
}

// denySetgroups implements writing "deny" to /proc/self/setgroups: only
// valid before gid_map is written.
func (ns *UserNS) denySetgroups() errno.Errno {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	if len(ns.gidMap) > 0 {
		return errno.EBUSY
	}
	ns.setgroupsState = setgroupsDenied
	return errno.OK
}

// writeUIDMap installs the uid_map. Kernel rules enforced: write-once;
// unprivileged writers (no CAP_SETUID in the *parent* namespace) may
// install exactly one single-ID range mapping to their own EUID.
func (ns *UserNS) writeUIDMap(entries []MapRange, writerGlobalEUID int, privileged bool) errno.Errno {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	if len(ns.uidMap) > 0 {
		return errno.EPERM // write-once
	}
	if err := validateMap(entries); err != errno.OK {
		return err
	}
	if !privileged {
		if len(entries) != 1 || entries[0].Count != 1 || entries[0].Global != writerGlobalEUID {
			return errno.EPERM
		}
	}
	ns.uidMap = append([]MapRange{}, entries...)
	return errno.OK
}

// writeGIDMap installs the gid_map, with the additional unprivileged rule
// that setgroups must have been denied first.
func (ns *UserNS) writeGIDMap(entries []MapRange, writerGlobalEGID int, privileged bool) errno.Errno {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	if len(ns.gidMap) > 0 {
		return errno.EPERM
	}
	if err := validateMap(entries); err != errno.OK {
		return err
	}
	if !privileged {
		if ns.setgroupsState != setgroupsDenied {
			return errno.EPERM
		}
		if len(entries) != 1 || entries[0].Count != 1 || entries[0].Global != writerGlobalEGID {
			return errno.EPERM
		}
	}
	ns.gidMap = append([]MapRange{}, entries...)
	return errno.OK
}

func validateMap(entries []MapRange) errno.Errno {
	if len(entries) == 0 || len(entries) > 340 { // kernel UID_GID_MAP_MAX
		return errno.EINVAL
	}
	for i, e := range entries {
		if e.Count <= 0 || e.Inside < 0 || e.Global < 0 {
			return errno.EINVAL
		}
		for _, f := range entries[:i] {
			if rangesOverlap(e.Inside, e.Count, f.Inside, f.Count) ||
				rangesOverlap(e.Global, e.Count, f.Global, f.Count) {
				return errno.EINVAL
			}
		}
	}
	return errno.OK
}

func rangesOverlap(a, an, b, bn int) bool {
	return a < b+bn && b < a+an
}
