package simos

import (
	"strings"
	"testing"

	"repro/internal/bpf"
	"repro/internal/core"
	"repro/internal/errno"
	"repro/internal/seccomp"
	"repro/internal/sysarch"
	"repro/internal/vfs"
)

// Additional kernel-behaviour coverage: filter stacking, exec plumbing,
// fsuid semantics, tracing detail.

func TestMultipleFiltersStack(t *testing.T) {
	// Installing a second filter must not shed the first (§4: filters
	// cannot be removed), and precedence combines them.
	_, p := newHostProc(t)
	enterTypeIII(t, p)
	p.Prctl(PrSetNoNewPrivs, 1)
	// First: the paper's filter (fakes chown).
	if e := p.SeccompInstall(core.MustNewFilter(core.Config{})); e != errno.OK {
		t.Fatal(e)
	}
	// Second: a filter that ERRNO(EACCES)'s mkdir — simulating a policy
	// layer stacked on top.
	nr := sysarch.X8664.MustNumber("mkdir")
	a := bpf.NewAssembler()
	a.LoadAbsW(seccomp.OffNR)
	a.JeqImm(uint32(nr), "deny", "")
	a.Ret(seccomp.RetAllow)
	a.Label("deny")
	a.Ret(seccomp.RetErrno(13))
	denyMkdir, err := seccomp.New("deny-mkdir", nil, a.MustAssemble())
	if err != nil {
		t.Fatal(err)
	}
	if e := p.SeccompInstall(denyMkdir); e != errno.OK {
		t.Fatal(e)
	}
	if p.SeccompChain().Len() != 2 {
		t.Fatalf("chain length %d", p.SeccompChain().Len())
	}
	// chown still faked by filter 1.
	p.WriteFileAll("/tmp/f", []byte("x"), 0o644)
	if e := p.Chown("/tmp/f", 74, 74); e != errno.OK {
		t.Fatalf("chown: %v", e)
	}
	// mkdir now denied by filter 2 (EACCES beats ALLOW).
	if e := p.Mkdir("/tmp/dir", 0o755); e != errno.EACCES {
		t.Fatalf("mkdir: %v, want EACCES", e)
	}
}

func TestExecPlumbsStdio(t *testing.T) {
	_, p := newHostProc(t)
	reg := NewBinaryRegistry()
	reg.Register("/bin/upper", &Binary{Name: "upper", Main: func(ctx *ExecCtx) int {
		buf := make([]byte, 64)
		n, _ := ctx.Stdin.Read(buf)
		ctx.Stdout.Write([]byte(strings.ToUpper(string(buf[:n]))))
		ctx.Stderr.Write([]byte("logged\n"))
		return 0
	}})
	p.SetRegistry(reg)
	p.mount.FS.WriteFile(vfs.RootContext(), "/bin/upper", []byte("ELF"), 0o755, 1000, 1000)
	var out, errOut strings.Builder
	status, e := p.Exec([]string{"/bin/upper"}, nil, strings.NewReader("hello"), &out, &errOut)
	if e != errno.OK || status != 0 {
		t.Fatalf("exec: %d %v", status, e)
	}
	if out.String() != "HELLO" || errOut.String() != "logged\n" {
		t.Fatalf("stdio: out=%q err=%q", out.String(), errOut.String())
	}
}

func TestExecDeniedWithoutExecuteBit(t *testing.T) {
	_, p := newHostProc(t)
	reg := NewBinaryRegistry()
	reg.Register("/bin/noexec", &Binary{Name: "noexec", Main: func(*ExecCtx) int { return 0 }})
	p.SetRegistry(reg)
	p.mount.FS.WriteFile(vfs.RootContext(), "/bin/noexec", []byte("ELF"), 0o644, 1000, 1000)
	if _, e := p.Exec([]string{"/bin/noexec"}, nil, nil, nil, nil); e != errno.EACCES {
		t.Fatalf("exec without x bit: %v", e)
	}
}

func TestSetfsuidSemantics(t *testing.T) {
	k := NewKernel()
	fs := vfs.New()
	root := k.NewInitProc(Mount{FS: fs, Owner: k.InitNS()}, 0, 0)
	old := root.Setfsuid(1234)
	if old != 0 {
		t.Fatalf("setfsuid returned %d, want previous fsuid 0", old)
	}
	if root.Cred().FSUID != 1234 {
		t.Fatalf("fsuid %d", root.Cred().FSUID)
	}
	// Invalid target: no change, returns current.
	old = root.Setfsuid(-999999)
	if old != 1234 || root.Cred().FSUID != 1234 {
		t.Fatalf("bogus setfsuid: old=%d fsuid=%d", old, root.Cred().FSUID)
	}
}

func TestChildExitCodePropagates(t *testing.T) {
	_, p := newHostProc(t)
	reg := NewBinaryRegistry()
	reg.Register("/bin/fail7", &Binary{Name: "fail7", Main: func(ctx *ExecCtx) int {
		ctx.Proc.Exit(7)
		return 0 // overridden by Exit
	}})
	p.SetRegistry(reg)
	p.mount.FS.WriteFile(vfs.RootContext(), "/bin/fail7", []byte("ELF"), 0o755, 1000, 1000)
	status, e := p.Exec([]string{"/bin/fail7"}, nil, nil, nil, nil)
	if e != errno.OK || status != 7 {
		t.Fatalf("status=%d e=%v", status, e)
	}
}

func TestVirtualClockMonotone(t *testing.T) {
	k, p := newHostProc(t)
	v0 := k.VirtualNanos()
	p.Getpid()
	v1 := k.VirtualNanos()
	if v1 <= v0 {
		t.Fatalf("virtual clock did not advance: %d -> %d", v0, v1)
	}
	k.ResetVirtualTime()
	if k.VirtualNanos() != 0 {
		t.Fatal("reset failed")
	}
	// Zero cost model freezes the clock.
	k.SetCostModel(CostModel{})
	p.Getpid()
	if k.VirtualNanos() != 0 {
		t.Fatal("zero cost model still charges")
	}
}

func TestTraceIncludesPathDetail(t *testing.T) {
	k, p := newHostProc(t)
	var last TraceEvent
	k.Tracer = func(ev TraceEvent) { last = ev }
	p.WriteFileAll("/tmp/traced", []byte("x"), 0o644)
	p.Stat("/tmp/traced")
	if !strings.Contains(last.Detail, "/tmp/traced") {
		t.Fatalf("trace detail %q", last.Detail)
	}
}

func TestGetdentsIncremental(t *testing.T) {
	_, p := newHostProc(t)
	for _, f := range []string{"/tmp/a", "/tmp/b", "/tmp/c"} {
		p.WriteFileAll(f, []byte("x"), 0o644)
	}
	fdn, e := p.Open("/tmp", OFlags{})
	if e != errno.OK {
		t.Fatal(e)
	}
	ents, e := p.Getdents(fdn)
	if e != errno.OK || len(ents) != 3 {
		t.Fatalf("first getdents: %v %v", ents, e)
	}
	// Second call: exhausted.
	ents, e = p.Getdents(fdn)
	if e != errno.OK || len(ents) != 0 {
		t.Fatalf("second getdents: %v %v", ents, e)
	}
	p.Close(fdn)
}

func TestUnameReportsArch(t *testing.T) {
	_, p := newHostProc(t)
	p.SetArch(sysarch.S390X)
	_, _, machine, e := p.Uname()
	if e != errno.OK || machine != "s390x" {
		t.Fatalf("uname: %q %v", machine, e)
	}
}

func TestLseek(t *testing.T) {
	_, p := newHostProc(t)
	p.WriteFileAll("/tmp/f", []byte("0123456789"), 0o644)
	fdn, e := p.Open("/tmp/f", OFlags{})
	if e != errno.OK {
		t.Fatal(e)
	}
	defer p.Close(fdn)
	if pos, e := p.Lseek(fdn, 4, SeekSet); e != errno.OK || pos != 4 {
		t.Fatalf("seek set: %d %v", pos, e)
	}
	buf := make([]byte, 2)
	p.Read(fdn, buf)
	if string(buf) != "45" {
		t.Fatalf("read after seek: %q", buf)
	}
	if pos, e := p.Lseek(fdn, -1, SeekEnd); e != errno.OK || pos != 9 {
		t.Fatalf("seek end: %d %v", pos, e)
	}
	if pos, e := p.Lseek(fdn, 2, SeekCur); e != errno.OK || pos != 11 {
		t.Fatalf("seek cur past end: %d %v", pos, e)
	}
	if _, e := p.Lseek(fdn, -100, SeekSet); e != errno.EINVAL {
		t.Fatalf("negative seek: %v", e)
	}
	if _, e := p.Lseek(999, 0, SeekSet); e != errno.EBADF {
		t.Fatalf("bad fd: %v", e)
	}
}

func TestSeccompLogActionProceeds(t *testing.T) {
	// SECCOMP_RET_LOG executes the syscall after logging — the gate must
	// treat it as ALLOW.
	_, p := newHostProc(t)
	p.Prctl(PrSetNoNewPrivs, 1)
	nr := sysarch.X8664.MustNumber("mkdir")
	a := bpf.NewAssembler()
	a.LoadAbsW(seccomp.OffNR)
	a.JeqImm(uint32(nr), "log", "")
	a.Ret(seccomp.RetAllow)
	a.Label("log")
	a.Ret(seccomp.RetLog)
	f, err := seccomp.New("log-mkdir", nil, a.MustAssemble())
	if err != nil {
		t.Fatal(err)
	}
	if e := p.SeccompInstall(f); e != errno.OK {
		t.Fatal(e)
	}
	if e := p.Mkdir("/tmp/logged", 0o755); e != errno.OK {
		t.Fatalf("logged mkdir must proceed: %v", e)
	}
	if _, e := p.Stat("/tmp/logged"); e != errno.OK {
		t.Fatal("directory not actually created")
	}
}
