package simos

import (
	"repro/internal/errno"
	"repro/internal/vfs"
)

// Hook types for the three emulation mechanisms the paper compares (§3, §6):
//
//   - Notifier: the SECCOMP_RET_USER_NOTIF supervisor, used by the
//     ID-consistency extension (future work 2). One round trip per
//     intercepted syscall.
//
//   - PtraceHook: the ptrace(2) analog (PRoot, ptrace-based fakeroot).
//     Attaching a tracer costs two stop events on *every* syscall; hooked
//     calls are emulated entirely in "user space" (the supervisor), which
//     is where consistent emulators keep their ownership database.
//
//   - CHook: the LD_PRELOAD analog (fakeroot, fakechroot). Interception
//     happens in libc wrappers, so it is invisible to statically linked
//     binaries — the compatibility gap §6(3) calls out.

// Notifier answers USER_NOTIF dispositions. The returned errno is
// delivered to the caller (OK = fake success).
type Notifier interface {
	Notify(p *Proc, syscall string, args []uint64) errno.Errno
}

// NotifierFunc adapts a function to Notifier.
type NotifierFunc func(p *Proc, syscall string, args []uint64) errno.Errno

// Notify implements Notifier.
func (f NotifierFunc) Notify(p *Proc, syscall string, args []uint64) errno.Errno {
	return f(p, syscall, args)
}

// PtraceHook is a ptrace supervisor. Nil fields fall through to the
// kernel; non-nil fields may claim the call (handled=true) and supply the
// result. Observer, if set, sees every syscall (the per-call stop cost is
// charged regardless).
type PtraceHook struct {
	Name string

	// Observer is called at each syscall entry (after the stop cost is
	// charged). For PRoot this is where unhooked calls get waved through.
	Observer func(p *Proc, name string, args []uint64)

	// Chown intercepts the chown family (path resolved, follow decoded).
	Chown func(p *Proc, path string, uid, gid int, follow bool) (errno.Errno, bool)

	// Mknod intercepts mknod/mknodat.
	Mknod func(p *Proc, path string, mode uint32, dev vfs.Dev) (errno.Errno, bool)

	// StatExit rewrites stat results at syscall exit — how a consistent
	// emulator shows its recorded ownership back to the process.
	StatExit func(p *Proc, path string, follow bool, st vfs.Stat, e errno.Errno) (vfs.Stat, errno.Errno)

	// GetID intercepts get[e]uid/get[e]gid and the getres* triples,
	// returning the fake identity.
	GetID func(p *Proc, name string) (int, bool)

	// SetID intercepts the set*id family. args carries the syscall's id
	// arguments verbatim ([uid], [r,e] or [r,e,s]; -1 means keep), the
	// same shape CHook.SetID receives.
	SetID func(p *Proc, name string, args []int) (errno.Errno, bool)
}

// CHook is an LD_PRELOAD-style libc interposer: optional overrides for the
// wrapper functions the consistent emulators hook. A nil field passes
// through. Hooks receive the CLib so they can chain to the real syscall.
type CHook struct {
	Name string

	Chown  func(c *CLib, path string, uid, gid int, follow bool) (errno.Errno, bool)
	Fchown func(c *CLib, fdn int, uid, gid int) (errno.Errno, bool)
	Stat   func(c *CLib, path string, follow bool) (vfs.Stat, errno.Errno, bool)
	Mknod  func(c *CLib, path string, mode uint32, dev vfs.Dev) (errno.Errno, bool)
	GetID  func(c *CLib, name string) (int, bool)
	SetID  func(c *CLib, name string, args []int) (errno.Errno, bool)
	Chmod  func(c *CLib, path string, mode uint32) (errno.Errno, bool)
}

// CLib is the "libc" a binary was linked against: a thin wrapper over the
// process's syscalls that consults the preload chain first — unless the
// binary is static, in which case Exec builds a CLib with no hooks and the
// preload emulator silently loses (fakeroot's documented failure mode).
type CLib struct {
	P     *Proc
	Hooks []*CHook // nil for static binaries
}

func (c *CLib) hit() {
	c.P.k.counters.PreloadHits.Add(1)
	c.P.k.vclock.charge(c.P.k.cost.PreloadIPC)
}

// Chown follows symlinks.
func (c *CLib) Chown(path string, uid, gid int) errno.Errno {
	for _, h := range c.Hooks {
		if h.Chown != nil {
			if e, handled := h.Chown(c, c.P.abs(path), uid, gid, true); handled {
				c.hit()
				return e
			}
		}
	}
	return c.P.Chown(path, uid, gid)
}

// Lchown does not follow.
func (c *CLib) Lchown(path string, uid, gid int) errno.Errno {
	for _, h := range c.Hooks {
		if h.Chown != nil {
			if e, handled := h.Chown(c, c.P.abs(path), uid, gid, false); handled {
				c.hit()
				return e
			}
		}
	}
	return c.P.Lchown(path, uid, gid)
}

// Fchown operates on a descriptor.
func (c *CLib) Fchown(fdn int, uid, gid int) errno.Errno {
	for _, h := range c.Hooks {
		if h.Fchown != nil {
			if e, handled := h.Fchown(c, fdn, uid, gid); handled {
				c.hit()
				return e
			}
		}
	}
	return c.P.Fchown(fdn, uid, gid)
}

// Stat follows symlinks.
func (c *CLib) Stat(path string) (vfs.Stat, errno.Errno) {
	for _, h := range c.Hooks {
		if h.Stat != nil {
			if st, e, handled := h.Stat(c, c.P.abs(path), true); handled {
				c.hit()
				return st, e
			}
		}
	}
	return c.P.Stat(path)
}

// Lstat does not follow.
func (c *CLib) Lstat(path string) (vfs.Stat, errno.Errno) {
	for _, h := range c.Hooks {
		if h.Stat != nil {
			if st, e, handled := h.Stat(c, c.P.abs(path), false); handled {
				c.hit()
				return st, e
			}
		}
	}
	return c.P.Lstat(path)
}

// Mknod creates nodes.
func (c *CLib) Mknod(path string, mode uint32, dev vfs.Dev) errno.Errno {
	for _, h := range c.Hooks {
		if h.Mknod != nil {
			if e, handled := h.Mknod(c, c.P.abs(path), mode, dev); handled {
				c.hit()
				return e
			}
		}
	}
	return c.P.Mknod(path, mode, dev)
}

// Chmod changes permissions.
func (c *CLib) Chmod(path string, mode uint32) errno.Errno {
	for _, h := range c.Hooks {
		if h.Chmod != nil {
			if e, handled := h.Chmod(c, c.P.abs(path), mode); handled {
				c.hit()
				return e
			}
		}
	}
	return c.P.Chmod(path, mode)
}

// Getuid consults identity hooks (fakeroot reports uid 0).
func (c *CLib) Getuid() int {
	for _, h := range c.Hooks {
		if h.GetID != nil {
			if v, handled := h.GetID(c, "getuid"); handled {
				c.hit()
				return v
			}
		}
	}
	return c.P.Getuid()
}

// Geteuid consults identity hooks.
func (c *CLib) Geteuid() int {
	for _, h := range c.Hooks {
		if h.GetID != nil {
			if v, handled := h.GetID(c, "geteuid"); handled {
				c.hit()
				return v
			}
		}
	}
	return c.P.Geteuid()
}

// Setuid consults identity hooks.
func (c *CLib) Setuid(uid int) errno.Errno {
	for _, h := range c.Hooks {
		if h.SetID != nil {
			if e, handled := h.SetID(c, "setuid", []int{uid}); handled {
				c.hit()
				return e
			}
		}
	}
	return c.P.Setuid(uid)
}

// Setresuid consults identity hooks.
func (c *CLib) Setresuid(r, e, s int) errno.Errno {
	for _, h := range c.Hooks {
		if h.SetID != nil {
			if er, handled := h.SetID(c, "setresuid", []int{r, e, s}); handled {
				c.hit()
				return er
			}
		}
	}
	return c.P.Setresuid(r, e, s)
}
