package simos

import (
	"repro/internal/errno"
)

// Identity syscalls — the paper's class 2 (19 syscalls). All take and
// return namespace-local IDs, translating at the boundary; unmapped inputs
// are EINVAL, exactly the failure apt's privilege drop hits in a
// single-mapping Type III container.

// idSysname picks the *32 variant where the ABI has one (what glibc does
// on i386/arm).
func (p *Proc) idSysname(generic string) string {
	if p.arch.Has(generic + "32") {
		return generic + "32"
	}
	return generic
}

// Getuid returns the real UID in the caller's namespace view.
func (p *Proc) Getuid() int {
	if v, handled := p.consultGetID("getuid"); handled {
		return v
	}
	if ok, _ := p.enter(p.idSysname("getuid")); !ok {
		return OverflowUID
	}
	p.trace("getuid", "", errno.OK, "")
	return p.cred.NS.ViewUID(p.cred.RUID)
}

// Geteuid returns the effective UID view.
func (p *Proc) Geteuid() int {
	if v, handled := p.consultGetID("geteuid"); handled {
		return v
	}
	if ok, _ := p.enter(p.idSysname("geteuid")); !ok {
		return OverflowUID
	}
	p.trace("geteuid", "", errno.OK, "")
	return p.cred.NS.ViewUID(p.cred.EUID)
}

// Getgid returns the real GID view.
func (p *Proc) Getgid() int {
	if v, handled := p.consultGetID("getgid"); handled {
		return v
	}
	if ok, _ := p.enter(p.idSysname("getgid")); !ok {
		return OverflowUID
	}
	p.trace("getgid", "", errno.OK, "")
	return p.cred.NS.ViewGID(p.cred.RGID)
}

// Getegid returns the effective GID view.
func (p *Proc) Getegid() int {
	if v, handled := p.consultGetID("getegid"); handled {
		return v
	}
	if ok, _ := p.enter(p.idSysname("getegid")); !ok {
		return OverflowUID
	}
	p.trace("getegid", "", errno.OK, "")
	return p.cred.NS.ViewGID(p.cred.EGID)
}

// consultGetID lets a ptrace supervisor (PRoot with fake-id mode) claim
// get*id calls and substitute its own answer (typically 0: "you are root").
func (p *Proc) consultGetID(name string) (int, bool) {
	if p.ptrace != nil && p.ptrace.GetID != nil {
		if v, handled := p.ptrace.GetID(p, name); handled {
			p.k.counters.Syscalls.Add(1)
			p.k.counters.PtraceStops.Add(2)
			p.k.vclock.charge(p.k.cost.SyscallTrap + 2*p.k.cost.PtraceStop)
			p.trace(name, "", errno.OK, "ptrace")
			return v, true
		}
	}
	return 0, false
}

// Getresuid returns the real/effective/saved UID views — apt's
// verification call. A ptrace supervisor with fake-id mode (PRoot) may
// claim it, keeping the triple consistent with earlier faked set*id.
func (p *Proc) Getresuid() (r, e, s int, err errno.Errno) {
	if v, ok := p.consultGetID("getresuid"); ok {
		return v, v, v, errno.OK
	}
	if ok, e2 := p.enter("getresuid", 0, 0, 0); !ok {
		return 0, 0, 0, e2
	}
	p.trace("getresuid", "", errno.OK, "")
	ns := p.cred.NS
	return ns.ViewUID(p.cred.RUID), ns.ViewUID(p.cred.EUID), ns.ViewUID(p.cred.SUID), errno.OK
}

// Getresgid returns the GID triple views.
func (p *Proc) Getresgid() (r, e, s int, err errno.Errno) {
	if v, ok := p.consultGetID("getresgid"); ok {
		return v, v, v, errno.OK
	}
	if ok, e2 := p.enter("getresgid", 0, 0, 0); !ok {
		return 0, 0, 0, e2
	}
	p.trace("getresgid", "", errno.OK, "")
	ns := p.cred.NS
	return ns.ViewGID(p.cred.RGID), ns.ViewGID(p.cred.EGID), ns.ViewGID(p.cred.SGID), errno.OK
}

// Getgroups returns supplementary groups as namespace views.
func (p *Proc) Getgroups() ([]int, errno.Errno) {
	if ok, e := p.enter("getgroups", uint64(len(p.cred.Groups))); !ok {
		return nil, e
	}
	p.trace("getgroups", "", errno.OK, "")
	out := make([]int, len(p.cred.Groups))
	for i, g := range p.cred.Groups {
		out[i] = p.cred.NS.ViewGID(g)
	}
	return out, errno.OK
}

// Setuid implements setuid(2): with CAP_SETUID all four UIDs change;
// otherwise uid must equal the real or saved UID and only the effective
// (and fs) UID changes.
func (p *Proc) Setuid(uid int) errno.Errno {
	name := p.idSysname("setuid")
	if e, handled := p.consultSetID(name, []int{uid}); handled {
		return e
	}
	if ok, e := p.enter(name, u64(uid)); !ok {
		return e
	}
	kuid, ok := p.cred.NS.UIDToGlobal(uid)
	if !ok {
		return p.trace(name, "", errno.EINVAL, "")
	}
	c := p.cred
	if c.Capable(CapSetuid) {
		c.RUID, c.EUID, c.SUID, c.FSUID = kuid, kuid, kuid, kuid
		p.maybeDropCaps()
	} else if kuid == c.RUID || kuid == c.SUID {
		c.EUID, c.FSUID = kuid, kuid
	} else {
		return p.trace(name, "", errno.EPERM, "")
	}
	return p.trace(name, "", errno.OK, "")
}

// Setgid implements setgid(2) with the analogous rules.
func (p *Proc) Setgid(gid int) errno.Errno {
	name := p.idSysname("setgid")
	if e, handled := p.consultSetID(name, []int{gid}); handled {
		return e
	}
	if ok, e := p.enter(name, u64(gid)); !ok {
		return e
	}
	kgid, ok := p.cred.NS.GIDToGlobal(gid)
	if !ok {
		return p.trace(name, "", errno.EINVAL, "")
	}
	c := p.cred
	if c.Capable(CapSetgid) {
		c.RGID, c.EGID, c.SGID, c.FSGID = kgid, kgid, kgid, kgid
	} else if kgid == c.RGID || kgid == c.SGID {
		c.EGID, c.FSGID = kgid, kgid
	} else {
		return p.trace(name, "", errno.EPERM, "")
	}
	return p.trace(name, "", errno.OK, "")
}

// Setresuid implements setresuid(2); -1 keeps a field. This is the exact
// call apt's sandbox uses to become _apt. A ptrace supervisor (PRoot)
// may claim it and fake the drop in user space.
func (p *Proc) Setresuid(ruid, euid, suid int) errno.Errno {
	name := p.idSysname("setresuid")
	if e, handled := p.consultSetID(name, []int{ruid, euid, suid}); handled {
		return e
	}
	if ok, e := p.enter(name, u64(ruid), u64(euid), u64(suid)); !ok {
		return e
	}
	c := p.cred
	translate := func(v int) (int, errno.Errno) {
		if v == -1 {
			return -1, errno.OK
		}
		kv, ok := p.cred.NS.UIDToGlobal(v)
		if !ok {
			return 0, errno.EINVAL
		}
		return kv, errno.OK
	}
	kr, e := translate(ruid)
	if e != errno.OK {
		return p.trace(name, "", e, "")
	}
	ke, e := translate(euid)
	if e != errno.OK {
		return p.trace(name, "", e, "")
	}
	ks, e := translate(suid)
	if e != errno.OK {
		return p.trace(name, "", e, "")
	}
	if !c.Capable(CapSetuid) {
		allowed := func(v int) bool {
			return v == -1 || v == c.RUID || v == c.EUID || v == c.SUID
		}
		if !allowed(kr) || !allowed(ke) || !allowed(ks) {
			return p.trace(name, "", errno.EPERM, "")
		}
	}
	if kr != -1 {
		c.RUID = kr
	}
	if ke != -1 {
		c.EUID = ke
		c.FSUID = ke
	}
	if ks != -1 {
		c.SUID = ks
	}
	p.maybeDropCaps()
	return p.trace(name, "", errno.OK, "")
}

// Setresgid implements setresgid(2).
func (p *Proc) Setresgid(rgid, egid, sgid int) errno.Errno {
	name := p.idSysname("setresgid")
	if e, handled := p.consultSetID(name, []int{rgid, egid, sgid}); handled {
		return e
	}
	if ok, e := p.enter(name, u64(rgid), u64(egid), u64(sgid)); !ok {
		return e
	}
	c := p.cred
	translate := func(v int) (int, errno.Errno) {
		if v == -1 {
			return -1, errno.OK
		}
		kv, ok := p.cred.NS.GIDToGlobal(v)
		if !ok {
			return 0, errno.EINVAL
		}
		return kv, errno.OK
	}
	kr, e := translate(rgid)
	if e != errno.OK {
		return p.trace(name, "", e, "")
	}
	ke, e := translate(egid)
	if e != errno.OK {
		return p.trace(name, "", e, "")
	}
	ks, e := translate(sgid)
	if e != errno.OK {
		return p.trace(name, "", e, "")
	}
	if !c.Capable(CapSetgid) {
		allowed := func(v int) bool {
			return v == -1 || v == c.RGID || v == c.EGID || v == c.SGID
		}
		if !allowed(kr) || !allowed(ke) || !allowed(ks) {
			return p.trace(name, "", errno.EPERM, "")
		}
	}
	if kr != -1 {
		c.RGID = kr
	}
	if ke != -1 {
		c.EGID = ke
		c.FSGID = ke
	}
	if ks != -1 {
		c.SGID = ks
	}
	return p.trace(name, "", errno.OK, "")
}

// Setreuid implements setreuid(2).
func (p *Proc) Setreuid(ruid, euid int) errno.Errno {
	name := p.idSysname("setreuid")
	if e, handled := p.consultSetID(name, []int{ruid, euid}); handled {
		return e
	}
	if ok, e := p.enter(name, u64(ruid), u64(euid)); !ok {
		return e
	}
	// Delegate to the setresuid rules with suid unchanged, close enough
	// to the kernel's (which also updates suid in some transitions).
	c := p.cred
	translate := func(v int) (int, bool) {
		if v == -1 {
			return -1, true
		}
		return p.cred.NS.UIDToGlobal(v)
	}
	kr, ok := translate(ruid)
	if !ok {
		return p.trace(name, "", errno.EINVAL, "")
	}
	ke, ok := translate(euid)
	if !ok {
		return p.trace(name, "", errno.EINVAL, "")
	}
	if !c.Capable(CapSetuid) {
		allowed := func(v int) bool { return v == -1 || v == c.RUID || v == c.EUID || v == c.SUID }
		if !allowed(kr) || !allowed(ke) {
			return p.trace(name, "", errno.EPERM, "")
		}
	}
	if kr != -1 {
		c.RUID = kr
	}
	if ke != -1 {
		c.EUID = ke
		c.FSUID = ke
	}
	return p.trace(name, "", errno.OK, "")
}

// Setregid implements setregid(2).
func (p *Proc) Setregid(rgid, egid int) errno.Errno {
	name := p.idSysname("setregid")
	if e, handled := p.consultSetID(name, []int{rgid, egid}); handled {
		return e
	}
	if ok, e := p.enter(name, u64(rgid), u64(egid)); !ok {
		return e
	}
	c := p.cred
	translate := func(v int) (int, bool) {
		if v == -1 {
			return -1, true
		}
		return p.cred.NS.GIDToGlobal(v)
	}
	kr, ok := translate(rgid)
	if !ok {
		return p.trace(name, "", errno.EINVAL, "")
	}
	ke, ok := translate(egid)
	if !ok {
		return p.trace(name, "", errno.EINVAL, "")
	}
	if !c.Capable(CapSetgid) {
		allowed := func(v int) bool { return v == -1 || v == c.RGID || v == c.EGID || v == c.SGID }
		if !allowed(kr) || !allowed(ke) {
			return p.trace(name, "", errno.EPERM, "")
		}
	}
	if kr != -1 {
		c.RGID = kr
	}
	if ke != -1 {
		c.EGID = ke
		c.FSGID = ke
	}
	return p.trace(name, "", errno.OK, "")
}

// Setfsuid implements setfsuid(2)'s odd contract: returns the previous
// fsuid and never fails; invalid requests simply change nothing.
func (p *Proc) Setfsuid(uid int) int {
	name := p.idSysname("setfsuid")
	old := p.cred.NS.ViewUID(p.cred.FSUID)
	if ok, _ := p.enter(name, u64(uid)); !ok {
		// Under the zero-consistency filter this path returns the faked
		// success value 0 — which callers interpret as "previous fsuid
		// was root". Harmless for build tools.
		return 0
	}
	kuid, ok := p.cred.NS.UIDToGlobal(uid)
	if !ok {
		p.trace(name, "", errno.OK, "")
		return old
	}
	c := p.cred
	if c.Capable(CapSetuid) || kuid == c.RUID || kuid == c.EUID || kuid == c.SUID || kuid == c.FSUID {
		c.FSUID = kuid
	}
	p.trace(name, "", errno.OK, "")
	return old
}

// Setfsgid implements setfsgid(2).
func (p *Proc) Setfsgid(gid int) int {
	name := p.idSysname("setfsgid")
	old := p.cred.NS.ViewGID(p.cred.FSGID)
	if ok, _ := p.enter(name, u64(gid)); !ok {
		return 0
	}
	kgid, ok := p.cred.NS.GIDToGlobal(gid)
	if !ok {
		p.trace(name, "", errno.OK, "")
		return old
	}
	c := p.cred
	if c.Capable(CapSetgid) || kgid == c.RGID || kgid == c.EGID || kgid == c.SGID || kgid == c.FSGID {
		c.FSGID = kgid
	}
	p.trace(name, "", errno.OK, "")
	return old
}

// Setgroups implements setgroups(2): CAP_SETGID required, and — the Type
// III catch — refused outright in a namespace where setgroups was denied
// to permit the unprivileged gid_map write.
func (p *Proc) Setgroups(gids []int) errno.Errno {
	name := p.idSysname("setgroups")
	if ok, e := p.enter(name, uint64(len(gids))); !ok {
		return e
	}
	if p.cred.NS.SetgroupsDenied() {
		return p.trace(name, "", errno.EPERM, "")
	}
	if !p.cred.Capable(CapSetgid) {
		return p.trace(name, "", errno.EPERM, "")
	}
	global := make([]int, len(gids))
	for i, g := range gids {
		kg, ok := p.cred.NS.GIDToGlobal(g)
		if !ok {
			return p.trace(name, "", errno.EINVAL, "")
		}
		global[i] = kg
	}
	p.cred.Groups = global
	return p.trace(name, "", errno.OK, "")
}

// consultSetID lets a ptrace supervisor claim set*id calls (PRoot fakes
// them in user space).
func (p *Proc) consultSetID(name string, args []int) (errno.Errno, bool) {
	if p.ptrace != nil && p.ptrace.SetID != nil {
		if e, handled := p.ptrace.SetID(p, name, args); handled {
			p.k.counters.Syscalls.Add(1)
			p.k.counters.PtraceStops.Add(2)
			p.k.vclock.charge(p.k.cost.SyscallTrap + 2*p.k.cost.PtraceStop)
			p.trace(name, "", e, "ptrace")
			return e, true
		}
	}
	return errno.OK, false
}

// maybeDropCaps clears effective/permitted capabilities when all three
// UIDs become nonzero *in the namespace view*, the kernel's
// cap_emulate_setxuid rule. Without this, "su nobody" would retain root's
// powers.
func (p *Proc) maybeDropCaps() {
	c := p.cred
	ns := c.NS
	if ns.ViewUID(c.RUID) != 0 && ns.ViewUID(c.EUID) != 0 && ns.ViewUID(c.SUID) != 0 {
		c.CapEffective = 0
		c.CapPermitted = 0
	}
}

// Capget returns the capability sets.
func (p *Proc) Capget() (effective, permitted CapSet, e errno.Errno) {
	if ok, e2 := p.enter("capget", 0, 0); !ok {
		return 0, 0, e2
	}
	p.trace("capget", "", errno.OK, "")
	return p.cred.CapEffective, p.cred.CapPermitted, errno.OK
}

// Capset replaces the capability sets: effective must be a subset of the
// new permitted, and permitted cannot grow beyond the old permitted
// (without CAP_SETPCAP games, which the workloads don't play).
func (p *Proc) Capset(effective, permitted CapSet) errno.Errno {
	if ok, e := p.enter("capset", 0, 0); !ok {
		return e
	}
	c := p.cred
	if permitted&^c.CapPermitted != 0 {
		return p.trace("capset", "", errno.EPERM, "")
	}
	if effective&^permitted != 0 {
		return p.trace("capset", "", errno.EPERM, "")
	}
	c.CapPermitted = permitted
	c.CapEffective = effective
	return p.trace("capset", "", errno.OK, "")
}
