package simos

import (
	"repro/internal/errno"
	"repro/internal/seccomp"
)

// Miscellaneous syscalls: namespaces, prctl, seccomp installation, and the
// self-test vehicle kexec_load.

// prctl option numbers used.
const (
	PrSetNoNewPrivs = 38
	PrGetNoNewPrivs = 39
)

// Prctl implements the two no_new_privs options, the prerequisite for
// unprivileged filter installation.
func (p *Proc) Prctl(option int, arg uint64) (int, errno.Errno) {
	if ok, e := p.enter("prctl", u64(option), arg); !ok {
		return -1, e
	}
	switch option {
	case PrSetNoNewPrivs:
		if arg != 1 {
			return -1, p.trace("prctl", "NO_NEW_PRIVS", errno.EINVAL, "")
		}
		p.cred.NoNewPrivs = true
		return 0, p.trace("prctl", "NO_NEW_PRIVS=1", errno.OK, "")
	case PrGetNoNewPrivs:
		p.trace("prctl", "GET_NO_NEW_PRIVS", errno.OK, "")
		if p.cred.NoNewPrivs {
			return 1, errno.OK
		}
		return 0, errno.OK
	}
	return -1, p.trace("prctl", "", errno.EINVAL, "")
}

// SeccompInstall loads a filter onto the process, enforcing the kernel's
// precondition: no_new_privs set, or CAP_SYS_ADMIN in the *current* user
// namespace. Once installed the filter also applies to this very syscall's
// successors and to all children (§4: it "binds program children whether
// they like it or not").
func (p *Proc) SeccompInstall(f *seccomp.Filter) errno.Errno {
	if ok, e := p.enter("seccomp", 1 /* SECCOMP_SET_MODE_FILTER */, 0, 0); !ok {
		return e
	}
	if !p.cred.NoNewPrivs && !p.cred.Capable(CapSysAdmin) {
		return p.trace("seccomp", f.Name(), errno.EACCES, "")
	}
	p.seccomp.Install(f)
	return p.trace("seccomp", f.Name(), errno.OK, "")
}

// KexecLoad implements kexec_load(2) as far as the build world cares:
// CAP_SYS_BOOT in the *init* namespace or EPERM. No container process ever
// has that, which is exactly why the paper picked it for the filter
// self-test — a faked success is unambiguous (§5 class 4).
func (p *Proc) KexecLoad() errno.Errno {
	if ok, e := p.enter("kexec_load", 0, 0, 0, 0); !ok {
		return e
	}
	if !p.cred.CapableIn(CapSysBoot, p.k.initNS) {
		return p.trace("kexec_load", "", errno.EPERM, "")
	}
	// A real success would reboot the machine; the simulation stops short.
	return p.trace("kexec_load", "", errno.OK, "")
}

// UnshareUser implements unshare(CLONE_NEWUSER): a new namespace owned by
// the caller's global EUID, full capabilities inside it, maps initially
// unwritten. Requires no privilege — the foundation of Type III containers.
func (p *Proc) UnshareUser() errno.Errno {
	const cloneNewuser = 0x10000000
	if ok, e := p.enter("unshare", cloneNewuser); !ok {
		return e
	}
	ns := &UserNS{
		name:     p.k.newNSName(),
		parent:   p.cred.NS,
		level:    p.cred.NS.level + 1,
		ownerUID: p.cred.EUID,
	}
	if ns.level > 32 { // kernel limit
		return p.trace("unshare", "CLONE_NEWUSER", errno.EPERM, "")
	}
	p.cred.NS = ns
	p.cred.CapEffective = CapFull
	p.cred.CapPermitted = CapFull
	p.cred.CapBounding = CapFull
	return p.trace("unshare", "CLONE_NEWUSER", errno.OK, "")
}

// WriteUIDMap models writing /proc/self/uid_map. The privileged path (for
// Type II setups via newuidmap) requires CAP_SETUID in the parent
// namespace, which the helper — not the user — holds.
func (p *Proc) WriteUIDMap(entries []MapRange) errno.Errno {
	ns := p.cred.NS
	if ns.parent == nil {
		return errno.EPERM // cannot rewrite the init map
	}
	privileged := p.cred.CapableIn(CapSetuid, ns.parent)
	e := ns.writeUIDMap(entries, p.cred.EUID, privileged)
	p.trace("write", "/proc/self/uid_map", e, "")
	return e
}

// WriteGIDMap models writing /proc/self/gid_map.
func (p *Proc) WriteGIDMap(entries []MapRange) errno.Errno {
	ns := p.cred.NS
	if ns.parent == nil {
		return errno.EPERM
	}
	privileged := p.cred.CapableIn(CapSetgid, ns.parent)
	e := ns.writeGIDMap(entries, p.cred.EGID, privileged)
	p.trace("write", "/proc/self/gid_map", e, "")
	return e
}

// DenySetgroups models writing "deny" to /proc/self/setgroups, required
// before an unprivileged gid_map write.
func (p *Proc) DenySetgroups() errno.Errno {
	ns := p.cred.NS
	if ns.parent == nil {
		return errno.EPERM
	}
	e := ns.denySetgroups()
	p.trace("write", "/proc/self/setgroups", e, "")
	return e
}

// HelperWriteMaps installs multi-range ID maps on p's namespace the way
// the setuid-root helpers newuidmap(1)/newgidmap(1) do: with
// CAP_SETUID/CAP_SETGID in the parent namespace, regardless of the
// caller's own credentials. This is the privileged step that makes Type II
// containers "rootless" in name only (§2).
func HelperWriteMaps(p *Proc, uidMaps, gidMaps []MapRange) error {
	ns := p.cred.NS
	if ns.parent == nil {
		return errno.EPERM
	}
	if e := ns.writeUIDMap(uidMaps, p.cred.EUID, true); e != errno.OK {
		return e
	}
	if e := ns.writeGIDMap(gidMaps, p.cred.EGID, true); e != errno.OK {
		return e
	}
	return nil
}

// Getpid returns the process ID.
func (p *Proc) Getpid() int {
	if ok, _ := p.enter("getpid"); !ok {
		return -1
	}
	p.trace("getpid", "", errno.OK, "")
	return p.pid
}

// Getppid returns the parent's PID.
func (p *Proc) Getppid() int {
	if ok, _ := p.enter("getppid"); !ok {
		return -1
	}
	p.trace("getppid", "", errno.OK, "")
	return p.ppid
}

// Uname reports a fixed utsname for the simulated machine.
func (p *Proc) Uname() (sysname, release, machine string, e errno.Errno) {
	if ok, e2 := p.enter("uname", 0); !ok {
		return "", "", "", e2
	}
	p.trace("uname", "", errno.OK, "")
	return "Linux", "6.1.0-sim", p.arch.Name, errno.OK
}

// Exit records the exit status; the binary function should return
// immediately after.
func (p *Proc) Exit(code int) {
	if ok, _ := p.enter("exit_group", u64(code)); !ok {
		return
	}
	p.exited = true
	p.exitCode = code
	p.trace("exit_group", "", errno.OK, "")
}

// Exited reports whether Exit was called, and the status.
func (p *Proc) Exited() (bool, int) { return p.exited, p.exitCode }
