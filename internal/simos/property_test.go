package simos

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/errno"
	"repro/internal/seccomp"
	"repro/internal/vfs"
)

// Property tests on the namespace and emulation invariants.

// TestQuickUIDMapRoundTrip: for any mapped inside ID, ToGlobal∘FromGlobal
// is the identity; unmapped IDs fail both ways.
func TestQuickUIDMapRoundTrip(t *testing.T) {
	f := func(globalBase uint16, count uint8, probe uint16) bool {
		if count == 0 {
			return true
		}
		ns := &UserNS{
			name: "q", parent: newInitNS(), level: 1, ownerUID: 1000,
		}
		if e := ns.writeUIDMap([]MapRange{
			{Inside: 0, Global: int(globalBase), Count: int(count)},
		}, 0, true); e != errno.OK {
			return true // invalid map rejected is fine
		}
		inside := int(probe)
		g, ok := ns.UIDToGlobal(inside)
		if inside < int(count) {
			if !ok || g != int(globalBase)+inside {
				return false
			}
			back, ok2 := ns.UIDFromGlobal(g)
			return ok2 && back == inside
		}
		return !ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickOverlappingMapsRejected: any two ranges overlapping on either
// side are refused.
func TestQuickOverlappingMapsRejected(t *testing.T) {
	f := func(a, b uint8, n1, n2 uint8) bool {
		if n1 == 0 || n2 == 0 {
			return true
		}
		entries := []MapRange{
			{Inside: int(a), Global: 10000 + int(a), Count: int(n1)},
			{Inside: int(b), Global: 20000 + int(b), Count: int(n2)},
		}
		overlaps := rangesOverlap(int(a), int(n1), int(b), int(n2))
		err := validateMap(entries)
		if overlaps {
			return err != errno.OK
		}
		return err == errno.OK
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickZeroConsistencyInvariant: THE paper's invariant. For any
// (uid, gid) chown target, under the filter the call reports success and
// the file's observable ownership never changes.
func TestQuickZeroConsistencyInvariant(t *testing.T) {
	k := NewKernel()
	fs := newTestFS()
	p := k.NewInitProc(Mount{FS: fs, Owner: k.InitNS()}, 1000, 1000)
	fs.ChownAll(1000, 1000)
	if e := p.UnshareUser(); e != errno.OK {
		t.Fatal(e)
	}
	p.WriteUIDMap([]MapRange{{Inside: 0, Global: 1000, Count: 1}})
	p.DenySetgroups()
	p.WriteGIDMap([]MapRange{{Inside: 0, Global: 1000, Count: 1}})
	p.WriteFileAll("/f", []byte("x"), 0o644)
	p.Prctl(PrSetNoNewPrivs, 1)
	p.SeccompInstall(core.MustNewFilter(core.Config{}))
	st0, _ := p.Stat("/f")

	f := func(uid, gid uint16) bool {
		if e := p.Chown("/f", int(uid), int(gid)); e != errno.OK {
			return false // the lie must always be told
		}
		st, e := p.Stat("/f")
		return e == errno.OK && st.UID == st0.UID && st.GID == st0.GID
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickIdentityInvariantUnderFilter: for any setresuid triple, the
// faked call succeeds and getresuid is unchanged.
func TestQuickIdentityInvariantUnderFilter(t *testing.T) {
	k := NewKernel()
	fs := newTestFS()
	p := k.NewInitProc(Mount{FS: fs, Owner: k.InitNS()}, 1000, 1000)
	p.UnshareUser()
	p.WriteUIDMap([]MapRange{{Inside: 0, Global: 1000, Count: 1}})
	p.Prctl(PrSetNoNewPrivs, 1)
	p.SeccompInstall(core.MustNewFilter(core.Config{}))
	r0, e0, s0, _ := p.Getresuid()

	f := func(r, e, s uint16) bool {
		if er := p.Setresuid(int(r), int(e), int(s)); er != errno.OK {
			return false
		}
		r1, e1, s1, _ := p.Getresuid()
		return r1 == r0 && e1 == e0 && s1 == s0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickFilterTotality: for every syscall number in a wide range, on
// every architecture, the filter returns either ALLOW or ERRNO(0) — never
// a kill, never an unexpected errno. (The paper's filter never breaks a
// build; at worst it lies.)
func TestQuickFilterTotality(t *testing.T) {
	fil := core.MustNewFilter(core.Config{})
	prog := fil.Program()
	if err := prog.ValidateSeccomp(); err != nil {
		t.Fatal(err)
	}
	f := func(nr uint16, archIdx uint8, a1, a2 uint64) bool {
		arches := []uint32{0xc000003e, 0x40000003, 0x40000028, 0xc00000b7, 0xc0000015, 0x80000016, 0xdeadbeef}
		arch := arches[int(archIdx)%len(arches)]
		d := dataFor(int32(nr), arch, a1, a2)
		ret := fil.EvaluateData(&d)
		action := ret & 0xffff0000
		return action == 0x7fff0000 /* ALLOW */ ||
			(action == 0x00050000 && ret&0xffff == 0 /* ERRNO(0) */)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func dataFor(nr int32, arch uint32, a1, a2 uint64) (d seccomp.Data) {
	d.NR = nr
	d.Arch = arch
	d.Args[1] = a1
	d.Args[2] = a2
	return
}

// newTestFS builds a world-writable root.
func newTestFS() *vfs.FS {
	fs := vfs.New()
	fs.Chmod(vfs.RootContext(), "/", 0o777, true)
	return fs
}
