package simos

import (
	"repro/internal/errno"
	"repro/internal/vfs"
)

// File-system syscalls. Each wrapper picks the syscall name the
// architecture's libc would actually issue — on i386/arm the *32 identity
// variants, on arm64 the *at forms (§5 fn. 7: "arm64 lacks chown(2),
// relying on user-space code to translate its calls to fchownat(2)") — so
// seccomp filters observe realistic per-arch numbers.

// AT_FDCWD sentinel for *at syscalls.
const AtFDCWD = -100

// OFlags selects open(2) behaviour.
type OFlags struct {
	Write    bool
	Create   bool
	Excl     bool
	Truncate bool
	Append   bool
	Mode     uint32
}

// Open opens path and returns a file descriptor.
func (p *Proc) Open(path string, flags OFlags) (int, errno.Errno) {
	full := p.abs(path)
	name := "open"
	args := []uint64{pathArg(full), 0, uint64(flags.Mode)}
	if !p.arch.Has("open") {
		name = "openat"
		args = []uint64{u64(AtFDCWD), pathArg(full), 0, uint64(flags.Mode)}
	}
	if ok, e := p.enter(name, args...); !ok {
		return -1, e
	}
	ac := p.accessCtx()
	st, se := p.mount.FS.Stat(ac, full, true)
	if se == errno.OK && st.Type == vfs.TypeDir && !flags.Write {
		// Opening a directory for read: readdir handle.
		ents, e := p.mount.FS.ReadDir(ac, full)
		if e != errno.OK {
			return -1, p.trace(name, full, e, "")
		}
		n := p.nextFD
		p.nextFD++
		p.fds[n] = &fd{path: full, isDir: true, dir: ents}
		p.trace(name, full, errno.OK, "")
		return n, errno.OK
	}
	h, e := p.mount.FS.Open(ac, full, vfs.OpenFlags{
		Write: flags.Write, Create: flags.Create, Excl: flags.Excl,
		Truncate: flags.Truncate, Mode: flags.Mode &^ p.umask,
		UID: p.cred.FSUID, GID: p.cred.FSGID,
	})
	if e != errno.OK {
		return -1, p.trace(name, full, e, "")
	}
	n := p.nextFD
	p.nextFD++
	f := &fd{h: h, path: full}
	if flags.Append {
		f.off = h.Size()
	}
	p.fds[n] = f
	p.trace(name, full, errno.OK, "")
	return n, errno.OK
}

// Close closes a descriptor.
func (p *Proc) Close(fdn int) errno.Errno {
	if ok, e := p.enter("close", u64(fdn)); !ok {
		return e
	}
	if _, ok := p.fds[fdn]; !ok {
		return p.trace("close", "", errno.EBADF, "")
	}
	delete(p.fds, fdn)
	return p.trace("close", "", errno.OK, "")
}

func (p *Proc) fdGet(fdn int) (*fd, errno.Errno) {
	f, ok := p.fds[fdn]
	if !ok {
		return nil, errno.EBADF
	}
	return f, errno.OK
}

// Read reads up to len(buf) bytes at the descriptor offset.
func (p *Proc) Read(fdn int, buf []byte) (int, errno.Errno) {
	if ok, e := p.enter("read", u64(fdn), 0, uint64(len(buf))); !ok {
		return 0, e
	}
	f, e := p.fdGet(fdn)
	if e != errno.OK {
		return 0, p.trace("read", "", e, "")
	}
	if f.isDir {
		return 0, p.trace("read", f.path, errno.EISDIR, "")
	}
	n, e := f.h.ReadAt(buf, f.off)
	if e != errno.OK {
		return 0, p.trace("read", f.path, e, "")
	}
	f.off += int64(n)
	p.trace("read", f.path, errno.OK, "")
	return n, errno.OK
}

// Write writes buf at the descriptor offset.
func (p *Proc) Write(fdn int, buf []byte) (int, errno.Errno) {
	if ok, e := p.enter("write", u64(fdn), 0, uint64(len(buf))); !ok {
		return 0, e
	}
	f, e := p.fdGet(fdn)
	if e != errno.OK {
		return 0, p.trace("write", "", e, "")
	}
	if f.h == nil {
		return 0, p.trace("write", f.path, errno.EBADF, "")
	}
	n, e := f.h.WriteAt(buf, f.off)
	if e != errno.OK {
		return 0, p.trace("write", f.path, e, "")
	}
	f.off += int64(n)
	p.trace("write", f.path, errno.OK, "")
	return n, errno.OK
}

// Fstat stats an open descriptor, namespace-translated.
func (p *Proc) Fstat(fdn int) (vfs.Stat, errno.Errno) {
	if ok, e := p.enter("fstat", u64(fdn)); !ok {
		return vfs.Stat{}, e
	}
	f, e := p.fdGet(fdn)
	if e != errno.OK {
		return vfs.Stat{}, p.trace("fstat", "", e, "")
	}
	if f.h == nil {
		st, e2 := p.mount.FS.Stat(p.accessCtx(), f.path, true)
		return p.viewStat(st), p.trace("fstat", f.path, e2, "")
	}
	p.trace("fstat", f.path, errno.OK, "")
	return p.viewStat(f.h.Stat()), errno.OK
}

// statName picks stat vs newfstatat per ABI.
func (p *Proc) statName() string {
	if p.arch.Has("stat") {
		return "stat"
	}
	return "newfstatat"
}

// Stat follows symlinks (stat(2)); the ptrace exit hook may rewrite the
// result, which is how PRoot presents its recorded ownership.
func (p *Proc) Stat(path string) (vfs.Stat, errno.Errno) {
	return p.statCommon(path, true)
}

// Lstat does not follow a trailing symlink.
func (p *Proc) Lstat(path string) (vfs.Stat, errno.Errno) {
	return p.statCommon(path, false)
}

func (p *Proc) statCommon(path string, follow bool) (vfs.Stat, errno.Errno) {
	full := p.abs(path)
	name := p.statName()
	if !follow && p.arch.Has("lstat") {
		name = "lstat"
	}
	if ok, e := p.enter(name, pathArg(full)); !ok {
		return vfs.Stat{}, e
	}
	st, e := p.mount.FS.Stat(p.accessCtx(), full, follow)
	st = p.viewStat(st)
	if p.ptrace != nil && p.ptrace.StatExit != nil {
		st, e = p.ptrace.StatExit(p, full, follow, st, e)
	}
	return st, p.trace(name, full, e, "")
}

// Mkdir creates a directory (umask applied).
func (p *Proc) Mkdir(path string, mode uint32) errno.Errno {
	full := p.abs(path)
	name := "mkdir"
	args := []uint64{pathArg(full), uint64(mode)}
	if !p.arch.Has("mkdir") {
		name = "mkdirat"
		args = []uint64{u64(AtFDCWD), pathArg(full), uint64(mode)}
	}
	if ok, e := p.enter(name, args...); !ok {
		return e
	}
	e := p.mount.FS.Mkdir(p.accessCtx(), full, mode&^p.umask, p.cred.FSUID, p.cred.FSGID)
	return p.trace(name, full, e, "")
}

// Rmdir removes an empty directory.
func (p *Proc) Rmdir(path string) errno.Errno {
	full := p.abs(path)
	name := "rmdir"
	args := []uint64{pathArg(full)}
	if !p.arch.Has("rmdir") {
		name = "unlinkat" // AT_REMOVEDIR
		args = []uint64{u64(AtFDCWD), pathArg(full), 0x200}
	}
	if ok, e := p.enter(name, args...); !ok {
		return e
	}
	e := p.mount.FS.Rmdir(p.accessCtx(), full)
	return p.trace(name, full, e, "")
}

// Unlink removes a file.
func (p *Proc) Unlink(path string) errno.Errno {
	full := p.abs(path)
	name := "unlink"
	args := []uint64{pathArg(full)}
	if !p.arch.Has("unlink") {
		name = "unlinkat"
		args = []uint64{u64(AtFDCWD), pathArg(full), 0}
	}
	if ok, e := p.enter(name, args...); !ok {
		return e
	}
	e := p.mount.FS.Unlink(p.accessCtx(), full)
	return p.trace(name, full, e, "")
}

// Rename moves a file.
func (p *Proc) Rename(oldpath, newpath string) errno.Errno {
	o, n := p.abs(oldpath), p.abs(newpath)
	name := "rename"
	args := []uint64{pathArg(o), pathArg(n)}
	if !p.arch.Has("rename") {
		name = "renameat"
		args = []uint64{u64(AtFDCWD), pathArg(o), u64(AtFDCWD), pathArg(n)}
	}
	if ok, e := p.enter(name, args...); !ok {
		return e
	}
	e := p.mount.FS.Rename(p.accessCtx(), o, n)
	return p.trace(name, o+" -> "+n, e, "")
}

// Link creates a hard link.
func (p *Proc) Link(oldpath, newpath string) errno.Errno {
	o, n := p.abs(oldpath), p.abs(newpath)
	name := "link"
	args := []uint64{pathArg(o), pathArg(n)}
	if !p.arch.Has("link") {
		name = "linkat"
		args = []uint64{u64(AtFDCWD), pathArg(o), u64(AtFDCWD), pathArg(n), 0}
	}
	if ok, e := p.enter(name, args...); !ok {
		return e
	}
	e := p.mount.FS.Link(p.accessCtx(), o, n)
	return p.trace(name, o+" -> "+n, e, "")
}

// Symlink creates a symbolic link at newpath pointing to target.
func (p *Proc) Symlink(target, newpath string) errno.Errno {
	n := p.abs(newpath)
	name := "symlink"
	args := []uint64{pathArg(target), pathArg(n)}
	if !p.arch.Has("symlink") {
		name = "symlinkat"
		args = []uint64{pathArg(target), u64(AtFDCWD), pathArg(n)}
	}
	if ok, e := p.enter(name, args...); !ok {
		return e
	}
	e := p.mount.FS.Symlink(p.accessCtx(), target, n, p.cred.FSUID, p.cred.FSGID)
	return p.trace(name, target+" <- "+n, e, "")
}

// Readlink reads a symlink target.
func (p *Proc) Readlink(path string) (string, errno.Errno) {
	full := p.abs(path)
	name := "readlink"
	args := []uint64{pathArg(full)}
	if !p.arch.Has("readlink") {
		name = "readlinkat"
		args = []uint64{u64(AtFDCWD), pathArg(full)}
	}
	if ok, e := p.enter(name, args...); !ok {
		return "", e
	}
	t, e := p.mount.FS.Readlink(p.accessCtx(), full)
	return t, p.trace(name, full, e, "")
}

// Chmod changes permissions.
func (p *Proc) Chmod(path string, mode uint32) errno.Errno {
	full := p.abs(path)
	name := "chmod"
	args := []uint64{pathArg(full), uint64(mode)}
	if !p.arch.Has("chmod") {
		name = "fchmodat"
		args = []uint64{u64(AtFDCWD), pathArg(full), uint64(mode)}
	}
	if ok, e := p.enter(name, args...); !ok {
		return e
	}
	e := p.mount.FS.Chmod(p.accessCtx(), full, mode, true)
	return p.trace(name, full, e, "")
}

// Access probes permissions (mask: 4 read, 2 write, 1 exec).
func (p *Proc) Access(path string, mask uint32) errno.Errno {
	full := p.abs(path)
	name := "access"
	args := []uint64{pathArg(full), uint64(mask)}
	if !p.arch.Has("access") {
		name = "faccessat"
		args = []uint64{u64(AtFDCWD), pathArg(full), uint64(mask)}
	}
	if ok, e := p.enter(name, args...); !ok {
		return e
	}
	e := p.mount.FS.Access(p.accessCtx(), full, mask)
	return p.trace(name, full, e, "")
}

// Chdir changes the working directory.
func (p *Proc) Chdir(path string) errno.Errno {
	full := p.abs(path)
	if ok, e := p.enter("chdir", pathArg(full)); !ok {
		return e
	}
	st, e := p.mount.FS.Stat(p.accessCtx(), full, true)
	if e != errno.OK {
		return p.trace("chdir", full, e, "")
	}
	if st.Type != vfs.TypeDir {
		return p.trace("chdir", full, errno.ENOTDIR, "")
	}
	p.cwd = full
	return p.trace("chdir", full, errno.OK, "")
}

// Getcwd returns the working directory.
func (p *Proc) Getcwd() (string, errno.Errno) {
	if ok, e := p.enter("getcwd", 0, 0); !ok {
		return "", e
	}
	return p.cwd, p.trace("getcwd", p.cwd, errno.OK, "")
}

// Umask sets the file-creation mask, returning the previous one.
func (p *Proc) Umask(mask uint32) uint32 {
	old := p.umask
	if ok, _ := p.enter("umask", uint64(mask)); !ok {
		return old
	}
	p.umask = mask & 0o777
	p.trace("umask", "", errno.OK, "")
	return old
}

// ReadDir lists a directory (the getdents analog; the fd-based variant is
// Open+Getdents).
func (p *Proc) ReadDir(path string) ([]vfs.DirEntry, errno.Errno) {
	fdn, e := p.Open(path, OFlags{})
	if e != errno.OK {
		return nil, e
	}
	defer p.Close(fdn)
	return p.Getdents(fdn)
}

// Getdents returns the remaining entries of an open directory.
func (p *Proc) Getdents(fdn int) ([]vfs.DirEntry, errno.Errno) {
	f, e := p.fdGet(fdn)
	if e != errno.OK {
		return nil, e
	}
	if !f.isDir {
		return nil, errno.ENOTDIR
	}
	out := f.dir[f.dirPos:]
	f.dirPos = len(f.dir)
	return out, errno.OK
}

// Utimens updates timestamps.
func (p *Proc) Utimens(path string) errno.Errno {
	full := p.abs(path)
	if ok, e := p.enter("utimensat", u64(AtFDCWD), pathArg(full)); !ok {
		return e
	}
	e := p.mount.FS.Utimens(p.accessCtx(), full, 0, true)
	return p.trace("utimensat", full, e, "")
}

// --- ownership and nodes: the filtered classes ---------------------------

// Chown follows symlinks, routed as libc would: chown32 on legacy 32-bit
// ABIs, fchownat where chown does not exist.
func (p *Proc) Chown(path string, uid, gid int) errno.Errno {
	full := p.abs(path)
	var name string
	var args []uint64
	switch {
	case p.arch.Has("chown32"):
		name, args = "chown32", []uint64{pathArg(full), u64(uid), u64(gid)}
	case p.arch.Has("chown"):
		name, args = "chown", []uint64{pathArg(full), u64(uid), u64(gid)}
	default:
		name, args = "fchownat", []uint64{u64(AtFDCWD), pathArg(full), u64(uid), u64(gid), 0}
	}
	return p.chownGate(name, args, full, uid, gid, true)
}

// Lchown does not follow a trailing symlink.
func (p *Proc) Lchown(path string, uid, gid int) errno.Errno {
	full := p.abs(path)
	var name string
	var args []uint64
	switch {
	case p.arch.Has("lchown32"):
		name, args = "lchown32", []uint64{pathArg(full), u64(uid), u64(gid)}
	case p.arch.Has("lchown"):
		name, args = "lchown", []uint64{pathArg(full), u64(uid), u64(gid)}
	default:
		name, args = "fchownat", []uint64{u64(AtFDCWD), pathArg(full), u64(uid), u64(gid), 0x100} // AT_SYMLINK_NOFOLLOW
	}
	return p.chownGate(name, args, full, uid, gid, false)
}

// Fchownat is the modern entry point, used directly by rpm's cpio layer.
func (p *Proc) Fchownat(dirfd int, path string, uid, gid int, flags uint32) errno.Errno {
	full := p.abs(path) // dirfd handling beyond AT_FDCWD is not needed by the workloads
	args := []uint64{u64(dirfd), pathArg(full), u64(uid), u64(gid), uint64(flags)}
	return p.chownGate("fchownat", args, full, uid, gid, flags&0x100 == 0)
}

// Fchown operates on an open descriptor.
func (p *Proc) Fchown(fdn int, uid, gid int) errno.Errno {
	name := "fchown"
	if p.arch.Has("fchown32") {
		name = "fchown32"
	}
	if ok, e := p.enter(name, u64(fdn), u64(uid), u64(gid)); !ok {
		return e
	}
	f, e := p.fdGet(fdn)
	if e != errno.OK {
		return p.trace(name, "", e, "")
	}
	kuid, kgid, e := p.translateChownIDs(uid, gid)
	if e != errno.OK {
		return p.trace(name, f.path, e, "")
	}
	if f.h == nil {
		return p.trace(name, f.path, errno.EBADF, "")
	}
	e = f.h.Chown(p.accessCtx(), kuid, kgid)
	return p.trace(name, f.path, e, "")
}

func (p *Proc) chownGate(name string, args []uint64, full string, uid, gid int, follow bool) errno.Errno {
	if p.ptrace != nil && p.ptrace.Chown != nil {
		if e, handled := p.ptrace.Chown(p, full, uid, gid, follow); handled {
			p.k.counters.Syscalls.Add(1)
			p.k.counters.PtraceStops.Add(2)
			p.k.vclock.charge(p.k.cost.SyscallTrap + 2*p.k.cost.PtraceStop)
			return p.trace(name, full, e, "ptrace")
		}
	}
	if ok, e := p.enter(name, args...); !ok {
		return e
	}
	kuid, kgid, e := p.translateChownIDs(uid, gid)
	if e != errno.OK {
		return p.trace(name, full, e, "")
	}
	e = p.mount.FS.Chown(p.accessCtx(), full, kuid, kgid, follow)
	return p.trace(name, full, e, "")
}

// translateChownIDs maps namespace-local chown targets to global IDs;
// unmapped IDs are EINVAL — the make_kuid failure of Figure 1b.
func (p *Proc) translateChownIDs(uid, gid int) (int, int, errno.Errno) {
	kuid, kgid := -1, -1
	if uid != -1 {
		var ok bool
		kuid, ok = p.cred.NS.UIDToGlobal(uid)
		if !ok {
			return 0, 0, errno.EINVAL
		}
	}
	if gid != -1 {
		var ok bool
		kgid, ok = p.cred.NS.GIDToGlobal(gid)
		if !ok {
			return 0, 0, errno.EINVAL
		}
	}
	return kuid, kgid, errno.OK
}

// Mknod creates a node; mode carries S_IF* type bits. The mode travels in
// args[1] (mknod) or args[2] (mknodat) — the argument the paper's filter
// inspects.
func (p *Proc) Mknod(path string, mode uint32, dev vfs.Dev) errno.Errno {
	full := p.abs(path)
	var name string
	var args []uint64
	if p.arch.Has("mknod") {
		name, args = "mknod", []uint64{pathArg(full), uint64(mode), uint64(dev)}
	} else {
		name, args = "mknodat", []uint64{u64(AtFDCWD), pathArg(full), uint64(mode), uint64(dev)}
	}
	if p.ptrace != nil && p.ptrace.Mknod != nil {
		if e, handled := p.ptrace.Mknod(p, full, mode, dev); handled {
			p.k.counters.Syscalls.Add(1)
			p.k.counters.PtraceStops.Add(2)
			p.k.vclock.charge(p.k.cost.SyscallTrap + 2*p.k.cost.PtraceStop)
			return p.trace(name, full, e, "ptrace")
		}
	}
	if ok, e := p.enter(name, args...); !ok {
		return e
	}
	typ, ok := vfs.TypeFromMode(mode)
	if !ok || typ == vfs.TypeDir || typ == vfs.TypeSymlink {
		return p.trace(name, full, errno.EINVAL, "")
	}
	e := p.mount.FS.Mknod(p.accessCtx(), full, typ, mode&^p.umask, dev, p.cred.FSUID, p.cred.FSGID)
	return p.trace(name, full, e, "")
}

// --- xattrs ---------------------------------------------------------------

// Setxattr sets an extended attribute (following symlinks).
func (p *Proc) Setxattr(path, attr string, value []byte) errno.Errno {
	full := p.abs(path)
	if ok, e := p.enter("setxattr", pathArg(full), pathArg(attr), 0, uint64(len(value))); !ok {
		return e
	}
	e := p.mount.FS.SetXattr(p.accessCtx(), full, attr, value, true)
	return p.trace("setxattr", full+" "+attr, e, "")
}

// Lsetxattr sets an attribute without following a trailing symlink.
func (p *Proc) Lsetxattr(path, attr string, value []byte) errno.Errno {
	full := p.abs(path)
	if ok, e := p.enter("lsetxattr", pathArg(full), pathArg(attr), 0, uint64(len(value))); !ok {
		return e
	}
	e := p.mount.FS.SetXattr(p.accessCtx(), full, attr, value, false)
	return p.trace("lsetxattr", full+" "+attr, e, "")
}

// Getxattr reads an attribute.
func (p *Proc) Getxattr(path, attr string) ([]byte, errno.Errno) {
	full := p.abs(path)
	if ok, e := p.enter("getxattr", pathArg(full), pathArg(attr)); !ok {
		return nil, e
	}
	v, e := p.mount.FS.GetXattr(p.accessCtx(), full, attr, true)
	return v, p.trace("getxattr", full+" "+attr, e, "")
}

// Listxattr lists attribute names.
func (p *Proc) Listxattr(path string) ([]string, errno.Errno) {
	full := p.abs(path)
	if ok, e := p.enter("listxattr", pathArg(full)); !ok {
		return nil, e
	}
	v, e := p.mount.FS.ListXattr(p.accessCtx(), full, true)
	return v, p.trace("listxattr", full, e, "")
}

// Removexattr deletes an attribute.
func (p *Proc) Removexattr(path, attr string) errno.Errno {
	full := p.abs(path)
	if ok, e := p.enter("removexattr", pathArg(full), pathArg(attr)); !ok {
		return e
	}
	e := p.mount.FS.RemoveXattr(p.accessCtx(), full, attr, true)
	return p.trace("removexattr", full+" "+attr, e, "")
}

// --- convenience (libc-level, still syscall-accurate) ---------------------

// ReadFileAll opens, reads fully, closes — three-plus syscalls like a real
// cat.
func (p *Proc) ReadFileAll(path string) ([]byte, errno.Errno) {
	fdn, e := p.Open(path, OFlags{})
	if e != errno.OK {
		return nil, e
	}
	defer p.Close(fdn)
	var out []byte
	buf := make([]byte, 64*1024)
	for {
		n, e := p.Read(fdn, buf)
		if e != errno.OK {
			return nil, e
		}
		if n == 0 {
			return out, errno.OK
		}
		out = append(out, buf[:n]...)
	}
}

// WriteFileAll creates/truncates and writes data.
func (p *Proc) WriteFileAll(path string, data []byte, mode uint32) errno.Errno {
	fdn, e := p.Open(path, OFlags{Write: true, Create: true, Truncate: true, Mode: mode})
	if e != errno.OK {
		return e
	}
	defer p.Close(fdn)
	for len(data) > 0 {
		n, e := p.Write(fdn, data)
		if e != errno.OK {
			return e
		}
		data = data[n:]
	}
	return errno.OK
}

// Lseek whence values.
const (
	SeekSet = 0
	SeekCur = 1
	SeekEnd = 2
)

// Lseek repositions a descriptor offset.
func (p *Proc) Lseek(fdn int, off int64, whence int) (int64, errno.Errno) {
	if ok, e := p.enter("lseek", u64(fdn), uint64(off), u64(whence)); !ok {
		return -1, e
	}
	f, e := p.fdGet(fdn)
	if e != errno.OK {
		return -1, p.trace("lseek", "", e, "")
	}
	if f.isDir {
		return -1, p.trace("lseek", f.path, errno.EISDIR, "")
	}
	var base int64
	switch whence {
	case SeekSet:
		base = 0
	case SeekCur:
		base = f.off
	case SeekEnd:
		base = f.h.Size()
	default:
		return -1, p.trace("lseek", f.path, errno.EINVAL, "")
	}
	pos := base + off
	if pos < 0 {
		return -1, p.trace("lseek", f.path, errno.EINVAL, "")
	}
	f.off = pos
	p.trace("lseek", f.path, errno.OK, "")
	return pos, errno.OK
}
