package simos

import (
	"bytes"
	"io"
	"strings"

	"repro/internal/errno"
	"repro/internal/vfs"
)

// Program execution. Binaries are Go functions registered under image
// paths; execve resolves the path in the image filesystem (following
// symlinks, checking execute permission), forks a child process that
// inherits credentials, the seccomp chain, hooks and the working
// directory, and runs the function to completion — the synchronous,
// deterministic analog of fork+execve+wait.

// BinaryFunc is a program's main(). The return value is the exit status.
type BinaryFunc func(ctx *ExecCtx) int

// Binary describes an executable registered in an image.
type Binary struct {
	Name   string // basename, for diagnostics
	Static bool   // statically linked: immune to LD_PRELOAD hooks
	Main   BinaryFunc
}

// BinaryRegistry maps image paths to executables. The registry is part of
// the image (internal/image copies it alongside the filesystem), so a FROM
// layer brings its distribution's toolset.
type BinaryRegistry struct {
	bins map[string]*Binary
}

// NewBinaryRegistry creates an empty registry.
func NewBinaryRegistry() *BinaryRegistry {
	return &BinaryRegistry{bins: map[string]*Binary{}}
}

// Register adds a binary at an absolute image path.
func (r *BinaryRegistry) Register(path string, b *Binary) {
	r.bins[path] = b
}

// Lookup finds a binary by exact path.
func (r *BinaryRegistry) Lookup(path string) (*Binary, bool) {
	b, ok := r.bins[path]
	return b, ok
}

// Clone copies the registry (images are snapshots).
func (r *BinaryRegistry) Clone() *BinaryRegistry {
	c := NewBinaryRegistry()
	for k, v := range r.bins {
		c.bins[k] = v
	}
	return c
}

// Paths lists registered paths (sorted insertion order not kept; callers
// sort if needed).
func (r *BinaryRegistry) Paths() []string {
	out := make([]string, 0, len(r.bins))
	for k := range r.bins {
		out = append(out, k)
	}
	return out
}

// ExecCtx is the world a running binary sees.
type ExecCtx struct {
	Proc *Proc
	C    *CLib // the "libc" — consult for anything a preload hook may claim
	Argv []string
	Env  map[string]string

	Stdin          io.Reader
	Stdout, Stderr io.Writer
}

// Getenv with empty-string default.
func (ctx *ExecCtx) Getenv(key string) string { return ctx.Env[key] }

// AbsPath resolves a path against the process's working directory.
func (ctx *ExecCtx) AbsPath(p string) string { return ctx.Proc.abs(p) }

// LookupPath resolves a command word against PATH (or literally if it
// contains a slash), following image symlinks, and returns the registry
// binary plus its resolved path.
func (p *Proc) LookupPath(cmd string, env map[string]string) (*Binary, string, errno.Errno) {
	if p.registry == nil {
		return nil, "", errno.ENOENT
	}
	try := func(path string) (*Binary, string, errno.Errno) {
		st, e := p.mount.FS.Stat(p.accessCtx(), path, true)
		if e != errno.OK {
			return nil, "", e
		}
		if st.Type == vfs.TypeDir {
			return nil, "", errno.EACCES
		}
		// Resolve symlinks for registry lookup (e.g. /bin/sh -> busybox).
		real := p.resolveBinaryPath(path)
		b, ok := p.registry.Lookup(real)
		if !ok {
			return nil, "", errno.ENOEXEC
		}
		return b, real, errno.OK
	}
	if strings.ContainsRune(cmd, '/') {
		return try(p.abs(cmd))
	}
	path := env["PATH"]
	if path == "" {
		path = "/usr/local/sbin:/usr/local/bin:/usr/sbin:/usr/bin:/sbin:/bin"
	}
	for _, dir := range strings.Split(path, ":") {
		if dir == "" {
			continue
		}
		if b, real, e := try(dir + "/" + cmd); e == errno.OK {
			return b, real, errno.OK
		}
	}
	return nil, "", errno.ENOENT
}

// resolveBinaryPath chases symlinks to at most 8 levels for registry
// lookup, resolving relative targets against the link's directory.
func (p *Proc) resolveBinaryPath(path string) string {
	ac := p.accessCtx()
	for i := 0; i < 8; i++ {
		st, e := p.mount.FS.Stat(ac, path, false)
		if e != errno.OK || st.Type != vfs.TypeSymlink {
			return path
		}
		target, e := p.mount.FS.Readlink(ac, path)
		if e != errno.OK {
			return path
		}
		if strings.HasPrefix(target, "/") {
			path = target
		} else {
			dir := path[:strings.LastIndexByte(path, '/')+1]
			path = dir + target
		}
	}
	return path
}

// Exec runs argv[0] as a child process and returns its exit status. This
// is fork+execve+wait4 in one step: the child inherits a *copy* of the
// credentials, the cwd and umask, and — crucially — a clone of the seccomp
// chain and the hook attachments, so emulation follows the process tree.
//
// Exit status 159 (128+SIGSYS) reports a seccomp kill.
func (p *Proc) Exec(argv []string, env map[string]string, stdin io.Reader, stdout, stderr io.Writer) (int, errno.Errno) {
	if len(argv) == 0 {
		return -1, errno.EINVAL
	}
	bin, realPath, e := p.LookupPath(argv[0], env)
	if e != errno.OK {
		return -1, e
	}
	// Execute permission on the resolved file.
	if ee := p.mount.FS.Access(p.accessCtx(), realPath, 1); ee != errno.OK {
		return -1, ee
	}
	if ok, e := p.enter("execve", pathArg(realPath), 0, 0); !ok {
		return -1, e
	}
	p.trace("execve", realPath, errno.OK, "")

	child := &Proc{
		k: p.k, pid: p.k.takePID(), ppid: p.pid, comm: bin.Name,
		cred: p.cred.clone(), arch: p.arch, mount: p.mount,
		cwd: p.cwd, umask: p.umask,
		seccomp: p.seccomp.Clone(), notifier: p.notifier,
		ptrace: p.ptrace, preload: p.preload,
		registry: p.registry,
		fds:      map[int]*fd{}, nextFD: 3,
	}
	p.k.register(child)
	defer p.k.unregister(child.pid)

	if stdin == nil {
		stdin = bytes.NewReader(nil)
	}
	if stdout == nil {
		stdout = io.Discard
	}
	if stderr == nil {
		stderr = io.Discard
	}
	if env == nil {
		env = map[string]string{}
	}
	clib := &CLib{P: child}
	if !bin.Static {
		clib.Hooks = child.preload
	}
	ctx := &ExecCtx{
		Proc: child, C: clib, Argv: argv, Env: env,
		Stdin: stdin, Stdout: stdout, Stderr: stderr,
	}

	status := runGuarded(bin, ctx)
	if exited, code := child.Exited(); exited {
		status = code
	}
	return status, errno.OK
}

// runGuarded converts a seccomp kill into exit status 128+31 (SIGSYS), the
// value a shell would report.
func runGuarded(bin *Binary, ctx *ExecCtx) (status int) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(KilledBySeccomp); ok {
				status = 128 + 31
				return
			}
			panic(r)
		}
	}()
	return bin.Main(ctx)
}
