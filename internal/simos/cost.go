package simos

import "sync/atomic"

// CostModel charges modeled wall-clock costs (nanoseconds) for the
// mechanism events whose real prices the simulation cannot reproduce with
// Go function calls: a ptrace stop is two scheduler round trips, a fakeroot
// interception is an IPC round trip to the faked daemon, a seccomp filter
// is a short BPF interpretation on the syscall path. The kernel accrues
// these into a virtual clock; the E8 benchmarks report virtual time as the
// primary metric and real CPU time as a secondary one.
//
// Defaults are order-of-magnitude figures from the literature the paper
// cites for seccomp overhead [14, 23] and from common microbenchmarks of
// ptrace and local IPC:
//
//	syscall trap            ~100 ns  (KPTI-era getpid round trip)
//	seccomp, per BPF insn   ~2 ns    (interpreter; [14]'s constant-action
//	                                  bitmap shortcut would make common
//	                                  ALLOWs ~0, kept off to match the
//	                                  paper's kernel vintage)
//	ptrace stop             ~3000 ns (tracee stop + tracer wake ×2 per
//	                                  syscall makes ~12 µs/syscall)
//	preload daemon IPC      ~4000 ns (fakeroot's faked round trip)
//	USER_NOTIF round trip   ~5000 ns (fd wake + response)
type CostModel struct {
	SyscallTrap   int64 // per syscall entry
	FilterPerInsn int64 // per BPF instruction executed
	PtraceStop    int64 // per stop event (2 per syscall when traced)
	PreloadIPC    int64 // per intercepted libc call
	NotifRound    int64 // per USER_NOTIF round trip
}

// DefaultCostModel returns the calibration described above.
func DefaultCostModel() CostModel {
	return CostModel{
		SyscallTrap:   100,
		FilterPerInsn: 2,
		PtraceStop:    3000,
		PreloadIPC:    4000,
		NotifRound:    5000,
	}
}

// virtualClock accumulates modeled nanoseconds.
type virtualClock struct {
	ns atomic.Int64
}

func (v *virtualClock) charge(ns int64) {
	if ns != 0 {
		v.ns.Add(ns)
	}
}

// VirtualNanos reports the modeled time accrued since boot or the last
// ResetVirtualTime.
func (k *Kernel) VirtualNanos() int64 { return k.vclock.ns.Load() }

// ResetVirtualTime zeroes the virtual clock (between benchmark phases).
func (k *Kernel) ResetVirtualTime() { k.vclock.ns.Store(0) }

// SetCostModel replaces the cost model (zero values charge nothing, which
// turns the virtual clock into a pure event counter).
func (k *Kernel) SetCostModel(m CostModel) { k.cost = m }

// Cost returns the active cost model.
func (k *Kernel) Cost() CostModel { return k.cost }
