// Package dockerfile parses Dockerfiles into instruction lists, covering
// the subset ch-image supports plus the instructions the experiments use:
// FROM, RUN (shell and exec form), COPY, ADD, ENV, ARG, WORKDIR, USER,
// LABEL, CMD, ENTRYPOINT, SHELL, EXPOSE, VOLUME, STOPSIGNAL, COMMENT
// handling, line continuations, and ARG/ENV variable expansion at build
// time (performed by the builder, not the parser).
package dockerfile

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Instruction is one parsed Dockerfile instruction.
type Instruction struct {
	// Cmd is the upper-cased instruction name ("FROM", "RUN", ...).
	Cmd string
	// Raw is the full argument string after the instruction word, with
	// continuations folded.
	Raw string
	// ExecForm is the parsed JSON array for exec-form RUN/CMD/ENTRYPOINT,
	// nil for shell form.
	ExecForm []string
	// Line is the 1-based source line of the instruction start.
	Line int
}

// File is a parsed Dockerfile.
type File struct {
	Instructions []Instruction
}

// ParseError reports a syntax error with its line.
type ParseError struct {
	Line   int
	Reason string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("dockerfile: line %d: %s", e.Line, e.Reason)
}

// knownInstructions gates parsing; unknown instructions are errors, as in
// BuildKit.
var knownInstructions = map[string]bool{
	"FROM": true, "RUN": true, "COPY": true, "ADD": true, "ENV": true,
	"ARG": true, "WORKDIR": true, "USER": true, "LABEL": true, "CMD": true,
	"ENTRYPOINT": true, "SHELL": true, "EXPOSE": true, "VOLUME": true,
	"STOPSIGNAL": true, "HEALTHCHECK": true, "ONBUILD": true,
	"MAINTAINER": true,
}

// Parse parses Dockerfile text.
func Parse(text string) (*File, error) {
	var f File
	lines := strings.Split(text, "\n")
	i := 0
	for i < len(lines) {
		startLine := i + 1
		line := lines[i]
		i++
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		// Fold continuations; a trailing backslash joins the next
		// non-comment line (comment lines inside a continuation are
		// skipped, as BuildKit does).
		full := trimmed
		for strings.HasSuffix(full, "\\") && i < len(lines) {
			full = strings.TrimSpace(strings.TrimSuffix(full, "\\"))
			for i < len(lines) {
				next := strings.TrimSpace(lines[i])
				i++
				if strings.HasPrefix(next, "#") {
					continue
				}
				full += " " + next
				break
			}
		}
		word, rest, _ := strings.Cut(full, " ")
		cmd := strings.ToUpper(word)
		if !knownInstructions[cmd] {
			return nil, &ParseError{Line: startLine, Reason: fmt.Sprintf("unknown instruction %q", word)}
		}
		ins := Instruction{Cmd: cmd, Raw: strings.TrimSpace(rest), Line: startLine}
		if ins.Raw == "" && cmd != "HEALTHCHECK" {
			return nil, &ParseError{Line: startLine, Reason: cmd + " requires arguments"}
		}
		if cmd == "RUN" || cmd == "CMD" || cmd == "ENTRYPOINT" || cmd == "SHELL" {
			if strings.HasPrefix(ins.Raw, "[") {
				var exec []string
				if err := json.Unmarshal([]byte(ins.Raw), &exec); err != nil {
					return nil, &ParseError{Line: startLine, Reason: "malformed exec form: " + err.Error()}
				}
				ins.ExecForm = exec
			}
		}
		f.Instructions = append(f.Instructions, ins)
	}
	if len(f.Instructions) == 0 {
		return nil, &ParseError{Line: 1, Reason: "empty Dockerfile"}
	}
	// The first non-ARG instruction must be FROM.
	for _, ins := range f.Instructions {
		if ins.Cmd == "ARG" {
			continue
		}
		if ins.Cmd != "FROM" {
			return nil, &ParseError{Line: ins.Line, Reason: "first instruction must be FROM"}
		}
		break
	}
	return &f, nil
}

// KeyValues parses "K=V K2=V2" or legacy "K V" argument forms (ENV, LABEL,
// ARG).
func KeyValues(raw string) (map[string]string, error) {
	out := map[string]string{}
	if !strings.Contains(raw, "=") {
		// Legacy form: ENV key value...
		k, v, ok := strings.Cut(raw, " ")
		if !ok {
			// ARG without default.
			out[strings.TrimSpace(raw)] = ""
			return out, nil
		}
		out[k] = strings.TrimSpace(v)
		return out, nil
	}
	for _, tok := range splitQuoted(raw) {
		k, v, ok := strings.Cut(tok, "=")
		if !ok {
			return nil, fmt.Errorf("dockerfile: malformed key=value %q", tok)
		}
		out[k] = unquote(v)
	}
	return out, nil
}

// splitQuoted splits on spaces outside quotes.
func splitQuoted(s string) []string {
	var out []string
	var cur strings.Builder
	quote := byte(0)
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case quote != 0:
			cur.WriteByte(c)
			if c == quote {
				quote = 0
			}
		case c == '"' || c == '\'':
			quote = c
			cur.WriteByte(c)
		case c == ' ' || c == '\t':
			if cur.Len() > 0 {
				out = append(out, cur.String())
				cur.Reset()
			}
		default:
			cur.WriteByte(c)
		}
	}
	if cur.Len() > 0 {
		out = append(out, cur.String())
	}
	return out
}

func unquote(s string) string {
	if len(s) >= 2 && (s[0] == '"' || s[0] == '\'') && s[len(s)-1] == s[0] {
		return s[1 : len(s)-1]
	}
	return s
}

// Expand substitutes $VAR and ${VAR} (with ${VAR:-default} support)
// against the build-time variable table.
func Expand(s string, vars map[string]string) string {
	var b strings.Builder
	i := 0
	for i < len(s) {
		if s[i] != '$' {
			b.WriteByte(s[i])
			i++
			continue
		}
		if i+1 < len(s) && s[i+1] == '{' {
			end := strings.IndexByte(s[i:], '}')
			if end < 0 {
				b.WriteByte(s[i])
				i++
				continue
			}
			expr := s[i+2 : i+end]
			name, def, hasDef := strings.Cut(expr, ":-")
			if v, ok := vars[name]; ok && v != "" {
				b.WriteString(v)
			} else if hasDef {
				b.WriteString(def)
			}
			i += end + 1
			continue
		}
		j := i + 1
		for j < len(s) && (isAlnum(s[j]) || s[j] == '_') {
			j++
		}
		if j == i+1 {
			b.WriteByte(s[i])
			i++
			continue
		}
		b.WriteString(vars[s[i+1:j]])
		i = j
	}
	return b.String()
}

func isAlnum(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}
