// Package dockerfile parses Dockerfiles into stage-structured instruction
// lists, covering the subset ch-image supports plus the instructions the
// experiments use: FROM (including multi-stage `FROM ref AS name`), RUN
// (shell and exec form), COPY (including `COPY --from=stage`), ADD, ENV,
// ARG, WORKDIR, USER, LABEL, CMD, ENTRYPOINT, SHELL, EXPOSE, VOLUME,
// STOPSIGNAL, comment handling, line continuations, and ARG/ENV variable
// expansion at build time (performed by the builder, not the parser).
//
// A parsed File carries both the flat instruction list and the stage
// structure: one Stage per FROM, each with its own instruction body, plus
// a validated stage-reference DAG. Stage references (a FROM naming an
// earlier stage, or COPY --from by name or index) may only point backward;
// forward and self references are rejected at parse time with line
// numbers, which also makes reference cycles impossible by construction.
// The complete dialect, including known divergences from Docker/BuildKit,
// is documented in docs/dockerfile-dialect.md.
package dockerfile

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// Instruction is one parsed Dockerfile instruction.
type Instruction struct {
	// Cmd is the upper-cased instruction name ("FROM", "RUN", ...).
	Cmd string
	// Raw is the full argument string after the instruction word, with
	// continuations folded.
	Raw string
	// ExecForm is the parsed JSON array for exec-form RUN/CMD/ENTRYPOINT,
	// nil for shell form.
	ExecForm []string
	// Line is the 1-based source line of the instruction start.
	Line int
	// From is the value of a COPY --from= flag, "" when absent.
	From string
	// FromStage is the index of the stage a COPY --from references, -1
	// when the instruction has no --from or it names an external image.
	FromStage int
}

// Stage is one FROM block of a (possibly multi-stage) Dockerfile: the FROM
// instruction itself plus every instruction up to the next FROM.
type Stage struct {
	// Index is the stage's 0-based position in the Dockerfile.
	Index int
	// Name is the lower-cased `AS name`, "" for anonymous stages.
	Name string
	// Base is the FROM reference with any AS clause stripped, unexpanded.
	Base string
	// BaseStage is the index of the earlier stage Base names, or -1 when
	// Base is an external image reference.
	BaseStage int
	// Line is the 1-based source line of the FROM.
	Line int
	// From is the stage's FROM instruction.
	From Instruction
	// Body holds the stage's instructions after FROM, in order.
	Body []Instruction
	// Deps lists the indices of earlier stages this stage reads — its FROM
	// base and every COPY --from source — sorted and deduplicated. The
	// per-stage Deps slices together form the stage DAG.
	Deps []int
}

// File is a parsed Dockerfile.
type File struct {
	// Instructions is the flat instruction list, in source order
	// (GlobalArgs and every stage's FROM and body included).
	Instructions []Instruction
	// GlobalArgs holds the ARG instructions before the first FROM.
	GlobalArgs []Instruction
	// Stages holds one entry per FROM, in source order. The last stage is
	// the build target; stages it does not transitively reference are
	// unreachable (see Reachable) and builders prune them.
	Stages []Stage
}

// ParseError reports a syntax error with its line.
type ParseError struct {
	Line   int
	Reason string
}

// Error renders the error as "dockerfile: line N: reason".
func (e *ParseError) Error() string {
	return fmt.Sprintf("dockerfile: line %d: %s", e.Line, e.Reason)
}

// knownInstructions gates parsing; unknown instructions are errors, as in
// BuildKit.
var knownInstructions = map[string]bool{
	"FROM": true, "RUN": true, "COPY": true, "ADD": true, "ENV": true,
	"ARG": true, "WORKDIR": true, "USER": true, "LABEL": true, "CMD": true,
	"ENTRYPOINT": true, "SHELL": true, "EXPOSE": true, "VOLUME": true,
	"STOPSIGNAL": true, "HEALTHCHECK": true, "ONBUILD": true,
	"MAINTAINER": true,
}

// Parse parses Dockerfile text.
func Parse(text string) (*File, error) {
	var f File
	lines := strings.Split(text, "\n")
	i := 0
	for i < len(lines) {
		startLine := i + 1
		line := lines[i]
		i++
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		// Fold continuations; a trailing backslash joins the next
		// non-comment line (comment lines inside a continuation are
		// skipped, as BuildKit does).
		full := trimmed
		for strings.HasSuffix(full, "\\") && i < len(lines) {
			full = strings.TrimSpace(strings.TrimSuffix(full, "\\"))
			for i < len(lines) {
				next := strings.TrimSpace(lines[i])
				i++
				if strings.HasPrefix(next, "#") {
					continue
				}
				full += " " + next
				break
			}
		}
		word, rest, _ := strings.Cut(full, " ")
		cmd := strings.ToUpper(word)
		if !knownInstructions[cmd] {
			return nil, &ParseError{Line: startLine, Reason: fmt.Sprintf("unknown instruction %q", word)}
		}
		ins := Instruction{Cmd: cmd, Raw: strings.TrimSpace(rest), Line: startLine, FromStage: -1}
		if ins.Raw == "" && cmd != "HEALTHCHECK" {
			return nil, &ParseError{Line: startLine, Reason: cmd + " requires arguments"}
		}
		if cmd == "RUN" || cmd == "CMD" || cmd == "ENTRYPOINT" || cmd == "SHELL" {
			if strings.HasPrefix(ins.Raw, "[") {
				var exec []string
				if err := json.Unmarshal([]byte(ins.Raw), &exec); err != nil {
					return nil, &ParseError{Line: startLine, Reason: "malformed exec form: " + err.Error()}
				}
				ins.ExecForm = exec
			}
		}
		f.Instructions = append(f.Instructions, ins)
	}
	if len(f.Instructions) == 0 {
		return nil, &ParseError{Line: 1, Reason: "empty Dockerfile"}
	}
	// The first non-ARG instruction must be FROM.
	for _, ins := range f.Instructions {
		if ins.Cmd == "ARG" {
			continue
		}
		if ins.Cmd != "FROM" {
			return nil, &ParseError{Line: ins.Line, Reason: "first instruction must be FROM"}
		}
		break
	}
	if err := f.structure(); err != nil {
		return nil, err
	}
	return &f, nil
}

// structure splits the flat instruction list into GlobalArgs and Stages,
// parses FROM AS clauses and COPY --from flags, and validates the stage
// reference DAG: names may not be reused, references resolve only to
// earlier stages, and forward or self references are errors. Because every
// edge points backward, the resulting DAG cannot contain cycles.
func (f *File) structure() error {
	// Pass 1: split into stages and collect names.
	names := map[string]int{}
	for i := range f.Instructions {
		ins := &f.Instructions[i]
		if ins.Cmd != "FROM" {
			if len(f.Stages) == 0 {
				f.GlobalArgs = append(f.GlobalArgs, *ins)
				continue
			}
			st := &f.Stages[len(f.Stages)-1]
			st.Body = append(st.Body, *ins)
			continue
		}
		st := Stage{Index: len(f.Stages), BaseStage: -1, Line: ins.Line, From: *ins}
		base, name, err := parseFromClause(ins.Raw, ins.Line)
		if err != nil {
			return err
		}
		st.Base, st.Name = base, name
		if name != "" {
			if prev, dup := names[name]; dup {
				return &ParseError{Line: ins.Line, Reason: fmt.Sprintf(
					"stage name %q already used by stage %d", name, prev)}
			}
			names[name] = st.Index
		}
		f.Stages = append(f.Stages, st)
	}

	// Pass 2: resolve stage references and build the DAG. Bodies hold
	// copies of the flat instructions, so resolution is written to both.
	for i := range f.Stages {
		st := &f.Stages[i]
		if idx, ok := names[strings.ToLower(st.Base)]; ok {
			if idx >= st.Index {
				return &ParseError{Line: st.Line, Reason: fmt.Sprintf(
					"FROM %s: forward reference to stage %d (stages may only reference earlier stages)",
					st.Base, idx)}
			}
			st.BaseStage = idx
		}
		for j := range st.Body {
			ins := &st.Body[j]
			if err := parseCopyFrom(ins, st.Index, len(f.Stages), names); err != nil {
				return err
			}
		}
		st.Deps = stageDeps(st)
	}

	// Mirror the resolved From/FromStage fields back onto the flat list so
	// both views of the file agree (bodies hold copies).
	syncFlat(f)
	return nil
}

// syncFlat copies each stage body's resolved From/FromStage back onto the
// corresponding flat Instructions entries, matched by source line.
func syncFlat(f *File) {
	byLine := map[int]*Instruction{}
	for i := range f.Instructions {
		byLine[f.Instructions[i].Line] = &f.Instructions[i]
	}
	for i := range f.Stages {
		for j := range f.Stages[i].Body {
			b := &f.Stages[i].Body[j]
			if flat, ok := byLine[b.Line]; ok {
				flat.From, flat.FromStage = b.From, b.FromStage
			}
		}
	}
}

// parseFromClause splits "ref [AS name]", validating the stage name and
// rejecting flags (e.g. --platform, which the simulation cannot honor).
func parseFromClause(raw string, line int) (base, name string, err error) {
	fields := strings.Fields(raw)
	for _, w := range fields {
		if strings.HasPrefix(w, "--") {
			return "", "", &ParseError{Line: line, Reason: "unsupported FROM flag " + w}
		}
	}
	switch {
	case len(fields) == 1:
		return fields[0], "", nil
	case len(fields) == 3 && strings.EqualFold(fields[1], "AS"):
		name = strings.ToLower(fields[2])
		if !validStageName(name) {
			return "", "", &ParseError{Line: line, Reason: fmt.Sprintf("invalid stage name %q", fields[2])}
		}
		return fields[0], name, nil
	default:
		return "", "", &ParseError{Line: line, Reason: "malformed FROM: want FROM <ref> [AS <name>]"}
	}
}

// parseCopyFrom extracts and resolves a COPY --from= flag. Only the
// leading --flags of COPY/ADD are inspected (Docker's flag position), so
// shell text in other instructions — or a COPY source that merely looks
// like a flag — is never misparsed. References by index or by the name of
// a stage must point strictly backward; an unknown name is an external
// image reference resolved at build time. ADD does not accept --from (as
// in Docker).
func parseCopyFrom(ins *Instruction, stageIdx, nStages int, names map[string]int) error {
	if ins.Cmd != "COPY" && ins.Cmd != "ADD" {
		return nil
	}
	var from string
	inFlags := true
	for _, w := range strings.Fields(ins.Raw) {
		if !strings.HasPrefix(w, "--") {
			inFlags = false // flags precede arguments
			continue
		}
		if !strings.HasPrefix(w, "--from=") {
			continue
		}
		if !inFlags {
			// Docker treats a misplaced flag as a literal path and fails;
			// silently copying from the context instead would be worse.
			return &ParseError{Line: ins.Line, Reason: "--from must precede the source arguments"}
		}
		if ins.Cmd != "COPY" {
			return &ParseError{Line: ins.Line, Reason: ins.Cmd + " does not support --from"}
		}
		if from != "" {
			return &ParseError{Line: ins.Line, Reason: "duplicate --from flag"}
		}
		from = strings.TrimPrefix(w, "--from=")
		if from == "" {
			return &ParseError{Line: ins.Line, Reason: "--from requires a stage name, index or image reference"}
		}
	}
	if from == "" {
		return nil
	}
	ins.From = from
	if idx, err := strconv.Atoi(from); err == nil {
		if idx < 0 || idx >= nStages {
			return &ParseError{Line: ins.Line, Reason: fmt.Sprintf(
				"COPY --from=%d: stage index out of range (%d stages)", idx, nStages)}
		}
		if idx >= stageIdx {
			return &ParseError{Line: ins.Line, Reason: fmt.Sprintf(
				"COPY --from=%d: forward or self reference (this is stage %d)", idx, stageIdx)}
		}
		ins.FromStage = idx
		return nil
	}
	if idx, ok := names[strings.ToLower(from)]; ok {
		if idx >= stageIdx {
			return &ParseError{Line: ins.Line, Reason: fmt.Sprintf(
				"COPY --from=%s: forward or self reference to stage %d (this is stage %d)",
				from, idx, stageIdx)}
		}
		ins.FromStage = idx
	}
	return nil
}

// stageDeps collects the earlier stages st reads: its FROM base plus every
// COPY --from source, sorted and deduplicated.
func stageDeps(st *Stage) []int {
	seen := map[int]bool{}
	if st.BaseStage >= 0 {
		seen[st.BaseStage] = true
	}
	for _, ins := range st.Body {
		if ins.FromStage >= 0 {
			seen[ins.FromStage] = true
		}
	}
	if len(seen) == 0 {
		return nil
	}
	out := make([]int, 0, len(seen))
	for i := range seen {
		out = append(out, i)
	}
	for i := 1; i < len(out); i++ { // insertion sort; deps are tiny
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// validStageName reports whether name is a legal stage name
// ([a-zA-Z][a-zA-Z0-9_.-]*, already lower-cased by the caller).
func validStageName(name string) bool {
	if name == "" || !(name[0] >= 'a' && name[0] <= 'z') {
		return false
	}
	for i := 1; i < len(name); i++ {
		c := name[i]
		if !(c >= 'a' && c <= 'z' || c >= '0' && c <= '9' || c == '_' || c == '.' || c == '-') {
			return false
		}
	}
	return true
}

// StageIndex resolves a stage reference — a name (case-insensitive) or a
// decimal index — to a stage index.
func (f *File) StageIndex(ref string) (int, bool) {
	if idx, err := strconv.Atoi(ref); err == nil {
		return idx, idx >= 0 && idx < len(f.Stages)
	}
	want := strings.ToLower(ref)
	for i := range f.Stages {
		if f.Stages[i].Name == want && want != "" {
			return i, true
		}
	}
	return 0, false
}

// Reachable reports, per stage, whether the final stage transitively
// depends on it (the final stage itself included). Builders skip
// unreachable stages entirely — they are parsed and validated but never
// executed.
func (f *File) Reachable() []bool {
	return f.ReachableFrom(len(f.Stages) - 1)
}

// ReachableFrom reports, per stage, whether stage root transitively
// depends on it (root itself included) — the reachability a --target
// build prunes against. An out-of-range root marks nothing reachable.
func (f *File) ReachableFrom(root int) []bool {
	seen := make([]bool, len(f.Stages))
	var visit func(int)
	visit = func(i int) {
		if seen[i] {
			return
		}
		seen[i] = true
		for _, d := range f.Stages[i].Deps {
			visit(d)
		}
	}
	if root >= 0 && root < len(f.Stages) {
		visit(root)
	}
	return seen
}

// KeyValues parses "K=V K2=V2" or legacy "K V" argument forms (ENV, LABEL,
// ARG).
func KeyValues(raw string) (map[string]string, error) {
	out := map[string]string{}
	if !strings.Contains(raw, "=") {
		// Legacy form: ENV key value...
		k, v, ok := strings.Cut(raw, " ")
		if !ok {
			// ARG without default.
			out[strings.TrimSpace(raw)] = ""
			return out, nil
		}
		out[k] = strings.TrimSpace(v)
		return out, nil
	}
	for _, tok := range splitQuoted(raw) {
		k, v, ok := strings.Cut(tok, "=")
		if !ok {
			return nil, fmt.Errorf("dockerfile: malformed key=value %q", tok)
		}
		out[k] = unquote(v)
	}
	return out, nil
}

// splitQuoted splits on spaces outside quotes.
func splitQuoted(s string) []string {
	var out []string
	var cur strings.Builder
	quote := byte(0)
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case quote != 0:
			cur.WriteByte(c)
			if c == quote {
				quote = 0
			}
		case c == '"' || c == '\'':
			quote = c
			cur.WriteByte(c)
		case c == ' ' || c == '\t':
			if cur.Len() > 0 {
				out = append(out, cur.String())
				cur.Reset()
			}
		default:
			cur.WriteByte(c)
		}
	}
	if cur.Len() > 0 {
		out = append(out, cur.String())
	}
	return out
}

func unquote(s string) string {
	if len(s) >= 2 && (s[0] == '"' || s[0] == '\'') && s[len(s)-1] == s[0] {
		return s[1 : len(s)-1]
	}
	return s
}

// Expand substitutes $VAR and ${VAR} (with ${VAR:-default} support)
// against the build-time variable table.
func Expand(s string, vars map[string]string) string {
	var b strings.Builder
	i := 0
	for i < len(s) {
		if s[i] != '$' {
			b.WriteByte(s[i])
			i++
			continue
		}
		if i+1 < len(s) && s[i+1] == '{' {
			end := strings.IndexByte(s[i:], '}')
			if end < 0 {
				b.WriteByte(s[i])
				i++
				continue
			}
			expr := s[i+2 : i+end]
			name, def, hasDef := strings.Cut(expr, ":-")
			if v, ok := vars[name]; ok && v != "" {
				b.WriteString(v)
			} else if hasDef {
				b.WriteString(def)
			}
			i += end + 1
			continue
		}
		j := i + 1
		for j < len(s) && (isAlnum(s[j]) || s[j] == '_') {
			j++
		}
		if j == i+1 {
			b.WriteByte(s[i])
			i++
			continue
		}
		b.WriteString(vars[s[i+1:j]])
		i = j
	}
	return b.String()
}

func isAlnum(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}
