package dockerfile

import (
	"strings"
	"testing"
)

// Multi-stage structure: stage splitting, AS names, --from resolution, DAG
// validation and reachability pruning.

const builderPattern = `ARG BASE=alpine:3.19
FROM centos:7 AS build
RUN yum install -y openssh
RUN echo artifact > /opt/out

FROM $BASE AS debug
RUN apk add sl

FROM $BASE
COPY --from=build /opt/out /app/out
CMD ["/app/out"]
`

func TestStageStructure(t *testing.T) {
	f := parse(t, builderPattern)
	if len(f.Stages) != 3 {
		t.Fatalf("stages: %d", len(f.Stages))
	}
	if len(f.GlobalArgs) != 1 || f.GlobalArgs[0].Cmd != "ARG" {
		t.Fatalf("global args: %+v", f.GlobalArgs)
	}
	b := f.Stages[0]
	if b.Name != "build" || b.Base != "centos:7" || b.Index != 0 || b.BaseStage != -1 {
		t.Fatalf("stage 0: %+v", b)
	}
	if len(b.Body) != 2 || b.Body[0].Cmd != "RUN" {
		t.Fatalf("stage 0 body: %+v", b.Body)
	}
	final := f.Stages[2]
	if final.Name != "" || final.Base != "$BASE" {
		t.Fatalf("final: %+v", final)
	}
	if len(final.Deps) != 1 || final.Deps[0] != 0 {
		t.Fatalf("final deps: %v", final.Deps)
	}
	copyIns := final.Body[0]
	if copyIns.From != "build" || copyIns.FromStage != 0 {
		t.Fatalf("copy --from: %+v", copyIns)
	}
}

func TestStageSingleStageCompat(t *testing.T) {
	// A single-stage file still exposes one Stage, and FROM ... AS is
	// accepted and stripped.
	f := parse(t, "FROM alpine:3.19 AS base\nRUN apk add sl\n")
	if len(f.Stages) != 1 {
		t.Fatalf("stages: %d", len(f.Stages))
	}
	if f.Stages[0].Base != "alpine:3.19" || f.Stages[0].Name != "base" {
		t.Fatalf("stage: %+v", f.Stages[0])
	}
}

func TestStageNameReuseRejected(t *testing.T) {
	_, err := Parse("FROM a AS dup\nFROM b AS dup\n")
	if err == nil {
		t.Fatal("duplicate stage name must fail")
	}
	pe, ok := err.(*ParseError)
	if !ok || pe.Line != 2 || !strings.Contains(pe.Reason, "already used") {
		t.Fatalf("error: %v", err)
	}
	// Names are case-insensitive, so reuse across cases is still reuse.
	if _, err := Parse("FROM a AS dup\nFROM b AS DUP\n"); err == nil {
		t.Fatal("case-insensitive duplicate must fail")
	}
}

func TestStageNameValidation(t *testing.T) {
	for _, bad := range []string{"1stage", "-x", "has space", "ü"} {
		if _, err := Parse("FROM a AS " + bad + "\n"); err == nil {
			t.Errorf("stage name %q must fail", bad)
		}
	}
	for _, good := range []string{"b", "Build2", "my-stage.v1_x"} {
		if _, err := Parse("FROM a AS " + good + "\n"); err != nil {
			t.Errorf("stage name %q: %v", good, err)
		}
	}
}

func TestCopyFromByIndex(t *testing.T) {
	f := parse(t, "FROM a\nRUN true\nFROM b\nCOPY --from=0 /x /y\n")
	ins := f.Stages[1].Body[0]
	if ins.From != "0" || ins.FromStage != 0 {
		t.Fatalf("from: %+v", ins)
	}
	if d := f.Stages[1].Deps; len(d) != 1 || d[0] != 0 {
		t.Fatalf("deps: %v", d)
	}
	// The flat instruction list carries the same resolution.
	var flat *Instruction
	for i := range f.Instructions {
		if f.Instructions[i].Cmd == "COPY" {
			flat = &f.Instructions[i]
		}
	}
	if flat == nil || flat.FromStage != 0 {
		t.Fatalf("flat copy: %+v", flat)
	}
}

func TestCopyFromIndexOutOfRange(t *testing.T) {
	_, err := Parse("FROM a\nFROM b\nCOPY --from=7 /x /y\n")
	if err == nil {
		t.Fatal("out-of-range index must fail")
	}
	if pe := err.(*ParseError); pe.Line != 3 || !strings.Contains(pe.Reason, "out of range") {
		t.Fatalf("error: %v", err)
	}
}

func TestCopyFromForwardAndSelfRejected(t *testing.T) {
	cases := []struct{ text, wantLine string }{
		// Forward by name.
		{"FROM a AS one\nCOPY --from=two /x /y\nFROM b AS two\n", "line 2"},
		// Self by name.
		{"FROM a AS me\nCOPY --from=me /x /y\n", "line 2"},
		// Self by index.
		{"FROM a\nFROM b\nCOPY --from=1 /x /y\n", "line 3"},
		// FROM naming a later stage.
		{"FROM later\nRUN true\nFROM b AS later\n", "line 1"},
		// FROM naming itself.
		{"FROM me AS me\n", "line 1"},
	}
	for _, c := range cases {
		_, err := Parse(c.text)
		if err == nil {
			t.Errorf("%q must fail", c.text)
			continue
		}
		if !strings.Contains(err.Error(), c.wantLine) {
			t.Errorf("%q: error %v, want %s", c.text, err, c.wantLine)
		}
	}
}

func TestCopyFromExternalImage(t *testing.T) {
	// An unknown --from name is an external image reference, resolved at
	// build time, not a parse error.
	f := parse(t, "FROM a\nCOPY --from=alpine:3.19 /etc/os-release /x\n")
	ins := f.Stages[0].Body[0]
	if ins.From != "alpine:3.19" || ins.FromStage != -1 {
		t.Fatalf("external from: %+v", ins)
	}
}

func TestCopyFromFlagErrors(t *testing.T) {
	if _, err := Parse("FROM a\nFROM b\nADD --from=0 /x /y\n"); err == nil {
		t.Fatal("ADD --from must fail")
	}
	if _, err := Parse("FROM a\nFROM b\nCOPY --from=0 --from=0 /x /y\n"); err == nil {
		t.Fatal("duplicate --from must fail")
	}
	if _, err := Parse("FROM a\nFROM b\nCOPY --from= /x /y\n"); err == nil {
		t.Fatal("empty --from must fail")
	}
	if _, err := Parse("FROM --platform=linux/amd64 a\n"); err == nil {
		t.Fatal("FROM flags must fail")
	}
}

// --from extraction only looks at COPY/ADD flags: shell text in other
// instructions that happens to contain "--from=" is left alone, while a
// --from misplaced after COPY's sources is an error rather than a silent
// context copy.
func TestFromTokenInShellTextIgnored(t *testing.T) {
	f := parse(t, "FROM alpine:3.19\nRUN mytool --from=source --to=dest\n")
	run := f.Stages[0].Body[0]
	if run.From != "" || run.FromStage != -1 {
		t.Fatalf("RUN misparsed as --from: %+v", run)
	}
	_, err := Parse("FROM a\nFROM b\nCOPY /x --from=0 /dst\n")
	if err == nil || !strings.Contains(err.Error(), "must precede") {
		t.Fatalf("misplaced --from: %v", err)
	}
	// ADD with non-from leading flags is fine; only --from is rejected.
	if _, err := Parse("FROM a\nADD --chown=x /src /dst\n"); err != nil {
		t.Fatalf("ADD with leading flag: %v", err)
	}
}

func TestReachablePrunesUnreferencedStages(t *testing.T) {
	f := parse(t, builderPattern)
	reach := f.Reachable()
	want := []bool{true, false, true} // "debug" is never referenced
	for i := range want {
		if reach[i] != want[i] {
			t.Fatalf("reachable: %v, want %v", reach, want)
		}
	}
}

func TestReachableChain(t *testing.T) {
	// A FROM chain: final → mid → base, all reachable.
	f := parse(t, "FROM a AS base\nFROM base AS mid\nRUN true\nFROM mid\nRUN true\n")
	for i, ok := range f.Reachable() {
		if !ok {
			t.Fatalf("stage %d unreachable", i)
		}
	}
	if f.Stages[1].BaseStage != 0 || f.Stages[2].BaseStage != 1 {
		t.Fatalf("base stages: %+v", f.Stages)
	}
}

func TestStageIndexLookup(t *testing.T) {
	f := parse(t, builderPattern)
	if i, ok := f.StageIndex("build"); !ok || i != 0 {
		t.Fatalf("by name: %d %v", i, ok)
	}
	if i, ok := f.StageIndex("BUILD"); !ok || i != 0 {
		t.Fatalf("case-insensitive: %d %v", i, ok)
	}
	if i, ok := f.StageIndex("2"); !ok || i != 2 {
		t.Fatalf("by index: %d %v", i, ok)
	}
	if _, ok := f.StageIndex("nope"); ok {
		t.Fatal("unknown name resolved")
	}
	if _, ok := f.StageIndex("9"); ok {
		t.Fatal("out-of-range index resolved")
	}
}

func TestReachableFrom(t *testing.T) {
	f := parse(t, builderPattern)
	// From the final stage: build + final, debug unreachable (Reachable()
	// delegates here).
	if got := f.ReachableFrom(2); !got[0] || got[1] || !got[2] {
		t.Fatalf("from final: %v", got)
	}
	// From the build stage: only itself.
	if got := f.ReachableFrom(0); !got[0] || got[1] || got[2] {
		t.Fatalf("from build: %v", got)
	}
	// Out-of-range roots mark nothing.
	for _, root := range []int{-1, 3} {
		for i, ok := range f.ReachableFrom(root) {
			if ok {
				t.Fatalf("root %d marks stage %d", root, i)
			}
		}
	}
}
