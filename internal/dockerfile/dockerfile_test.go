package dockerfile

import (
	"strings"
	"testing"
)

func parse(t *testing.T, text string) *File {
	t.Helper()
	f, err := Parse(text)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f
}

func TestParsePaperFigure1a(t *testing.T) {
	f := parse(t, "FROM alpine:3.19\nRUN apk add sl\n")
	if len(f.Instructions) != 2 {
		t.Fatalf("instructions: %d", len(f.Instructions))
	}
	if f.Instructions[0].Cmd != "FROM" || f.Instructions[0].Raw != "alpine:3.19" {
		t.Fatalf("from: %+v", f.Instructions[0])
	}
	if f.Instructions[1].Cmd != "RUN" || f.Instructions[1].Raw != "apk add sl" {
		t.Fatalf("run: %+v", f.Instructions[1])
	}
}

func TestParseComments(t *testing.T) {
	f := parse(t, "# a comment\nFROM x\n  # indented comment\nRUN true\n")
	if len(f.Instructions) != 2 {
		t.Fatalf("instructions: %d", len(f.Instructions))
	}
}

func TestParseContinuations(t *testing.T) {
	f := parse(t, "FROM x\nRUN apt-get update && \\\n    apt-get install -y \\\n    curl vim\n")
	if len(f.Instructions) != 2 {
		t.Fatalf("instructions: %d", len(f.Instructions))
	}
	want := "apt-get update && apt-get install -y curl vim"
	if f.Instructions[1].Raw != want {
		t.Fatalf("folded: %q, want %q", f.Instructions[1].Raw, want)
	}
}

func TestParseContinuationWithEmbeddedComment(t *testing.T) {
	f := parse(t, "FROM x\nRUN echo a \\\n# interleaved comment\necho b\n")
	if !strings.Contains(f.Instructions[1].Raw, "echo a") {
		t.Fatalf("raw: %q", f.Instructions[1].Raw)
	}
}

func TestParseExecForm(t *testing.T) {
	f := parse(t, `FROM x
RUN ["apk", "add", "sl"]
CMD ["/bin/sh", "-c", "echo hi"]
ENTRYPOINT ["/entry"]
`)
	run := f.Instructions[1]
	if len(run.ExecForm) != 3 || run.ExecForm[0] != "apk" {
		t.Fatalf("exec form: %v", run.ExecForm)
	}
	if f.Instructions[3].ExecForm[0] != "/entry" {
		t.Fatalf("entrypoint: %v", f.Instructions[3].ExecForm)
	}
}

func TestParseMalformedExecForm(t *testing.T) {
	if _, err := Parse("FROM x\nRUN [\"unterminated\n"); err == nil {
		t.Fatal("malformed exec form must fail")
	}
}

func TestParseUnknownInstruction(t *testing.T) {
	_, err := Parse("FROM x\nFLY to the moon\n")
	if err == nil {
		t.Fatal("unknown instruction must fail")
	}
	pe, ok := err.(*ParseError)
	if !ok || pe.Line != 2 {
		t.Fatalf("error: %v", err)
	}
}

func TestParseFirstMustBeFrom(t *testing.T) {
	if _, err := Parse("RUN true\n"); err == nil {
		t.Fatal("RUN before FROM must fail")
	}
	// ARG before FROM is allowed.
	if _, err := Parse("ARG VERSION=3.19\nFROM alpine:$VERSION\n"); err != nil {
		t.Fatalf("ARG before FROM: %v", err)
	}
}

func TestParseEmpty(t *testing.T) {
	for _, text := range []string{"", "\n\n", "# only comments\n"} {
		if _, err := Parse(text); err == nil {
			t.Fatalf("%q must fail", text)
		}
	}
}

func TestParseMissingArguments(t *testing.T) {
	if _, err := Parse("FROM\n"); err == nil {
		t.Fatal("FROM without args must fail")
	}
}

func TestKeyValuesForms(t *testing.T) {
	kv, err := KeyValues(`A=1 B="two words" C='single'`)
	if err != nil {
		t.Fatal(err)
	}
	if kv["A"] != "1" || kv["B"] != "two words" || kv["C"] != "single" {
		t.Fatalf("kv: %v", kv)
	}
	// Legacy space form.
	kv, _ = KeyValues("KEY the whole rest")
	if kv["KEY"] != "the whole rest" {
		t.Fatalf("legacy kv: %v", kv)
	}
	// ARG without default.
	kv, _ = KeyValues("NAME")
	if _, ok := kv["NAME"]; !ok {
		t.Fatalf("bare arg: %v", kv)
	}
}

func TestExpand(t *testing.T) {
	vars := map[string]string{"V": "3.19", "NAME": "alpine"}
	cases := []struct{ in, want string }{
		{"$NAME:$V", "alpine:3.19"},
		{"${NAME}:${V}", "alpine:3.19"},
		{"${MISSING:-fallback}", "fallback"},
		{"${V:-fallback}", "3.19"},
		{"no vars here", "no vars here"},
		{"$", "$"},
		{"$ NAME", "$ NAME"},
		{"a$Vb", "a"}, // $Vb is an (unset) variable, like shell
	}
	for _, c := range cases {
		if got := Expand(c.in, vars); got != c.want {
			t.Errorf("Expand(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestLineNumbersTracked(t *testing.T) {
	f := parse(t, "\n# c\nFROM x\n\nRUN true\n")
	if f.Instructions[0].Line != 3 || f.Instructions[1].Line != 5 {
		t.Fatalf("lines: %d %d", f.Instructions[0].Line, f.Instructions[1].Line)
	}
}

func TestParseAllSupportedInstructions(t *testing.T) {
	f := parse(t, `FROM base
RUN true
COPY a b
ADD c d
ENV K=V
ARG X=1
WORKDIR /w
USER nobody
LABEL l=v
CMD ["x"]
ENTRYPOINT ["y"]
SHELL ["/bin/sh", "-c"]
EXPOSE 8080
VOLUME /data
STOPSIGNAL SIGTERM
MAINTAINER someone
`)
	if len(f.Instructions) != 16 {
		t.Fatalf("instructions: %d", len(f.Instructions))
	}
}
