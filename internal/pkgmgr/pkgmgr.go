// Package pkgmgr implements simulated Linux distribution package managers —
// apk (Alpine), rpm/yum (CentOS), dpkg/apt (Debian) — with real package
// formats (tar and cpio-newc payloads) and, critically, the same
// privileged-syscall profiles as the originals:
//
//   - rpm extracts its cpio payload and *always* chowns every entry to the
//     recorded owner, which is why Figure 1b dies with "cpio: chown";
//
//   - apk compares the archive owner against the file it just created and
//     skips redundant chowns, which is why Figure 1a needs no privilege;
//
//   - apt drops privileges to the _apt user for downloads via
//     setgroups/setresgid/setresuid and then **verifies** the drop with
//     getresuid — the one consistency check the paper's zero-consistency
//     emulation cannot satisfy (§5), worked around with
//     -o APT::Sandbox::User=root.
//
// Packages are synthetic but structurally real; the managers parse the
// bytes with internal/cpio and archive/tar and issue their filesystem
// operations through the simulated process's libc (ctx.C), so every
// emulation mechanism — seccomp, preload, ptrace — sees exactly what it
// would see from the real tools.
package pkgmgr

import (
	"fmt"
	"sort"

	"repro/internal/errno"
	"repro/internal/simos"
	"repro/internal/vfs"
)

// FileSpec is one file carried by a package, with full metadata.
type FileSpec struct {
	Path   string // absolute
	Type   vfs.FileType
	Mode   uint32 // permission bits
	UID    int    // owner recorded in the archive
	GID    int
	Data   []byte // regular files
	Target string // symlinks
	Major  uint32 // device nodes
	Minor  uint32
}

// Package is the distribution-neutral package model the format encoders
// serialise.
type Package struct {
	Name    string
	Version string
	Arch    string
	Depends []string
	Files   []FileSpec

	// PostInstall is a shell script run after extraction (rpm %post,
	// dpkg postinst).
	PostInstall string

	// Trigger is an apk-style trigger script name printed and run at
	// commit ("Executing busybox-1.36.1-r15.trigger").
	Trigger string

	// Size is the advertised installed size in KiB, for transcripts.
	Size int
}

// Repo is a package repository: metadata plus fetchable blobs in one of
// the three formats.
type Repo struct {
	URL    string // displayed in fetch lines
	Format string // "apk", "rpm", "deb"

	metas map[string]*Package
	blobs map[string][]byte
}

// NewRepo creates an empty repository.
func NewRepo(url, format string) *Repo {
	return &Repo{URL: url, Format: format, metas: map[string]*Package{}, blobs: map[string][]byte{}}
}

// Add encodes and publishes a package.
func (r *Repo) Add(p *Package) error {
	var blob []byte
	var err error
	switch r.Format {
	case "apk":
		blob, err = BuildAPK(p)
	case "rpm":
		blob, err = BuildRPM(p)
	case "deb":
		blob, err = BuildDEB(p)
	default:
		return fmt.Errorf("pkgmgr: unknown repo format %q", r.Format)
	}
	if err != nil {
		return err
	}
	r.metas[p.Name] = p
	r.blobs[p.Name] = blob
	return nil
}

// MustAdd is Add for static test fixtures.
func (r *Repo) MustAdd(p *Package) {
	if err := r.Add(p); err != nil {
		panic(err)
	}
}

// Meta returns package metadata.
func (r *Repo) Meta(name string) (*Package, bool) {
	p, ok := r.metas[name]
	return p, ok
}

// Fetch returns the encoded package blob.
func (r *Repo) Fetch(name string) ([]byte, bool) {
	b, ok := r.blobs[name]
	return b, ok
}

// Names lists available packages, sorted.
func (r *Repo) Names() []string {
	out := make([]string, 0, len(r.metas))
	for n := range r.metas {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Resolve computes the install order (dependencies first) for the
// requested packages, skipping names in installed.
func (r *Repo) Resolve(requested []string, installed map[string]bool) ([]*Package, error) {
	var order []*Package
	seen := map[string]bool{}
	var visit func(name string, chain []string) error
	visit = func(name string, chain []string) error {
		if installed[name] || seen[name] {
			return nil
		}
		for _, c := range chain {
			if c == name {
				return fmt.Errorf("pkgmgr: dependency cycle through %s", name)
			}
		}
		p, ok := r.metas[name]
		if !ok {
			return fmt.Errorf("pkgmgr: package %s not found", name)
		}
		for _, d := range p.Depends {
			if err := visit(d, append(chain, name)); err != nil {
				return err
			}
		}
		seen[name] = true
		order = append(order, p)
		return nil
	}
	for _, name := range requested {
		if err := visit(name, nil); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// extractOptions tunes the shared extraction loop to each manager's
// profile.
type extractOptions struct {
	// AlwaysChown: chown every entry to the recorded owner (rpm, dpkg).
	// When false, chown only when the created file's owner differs from
	// the recorded one as seen by the process (apk).
	AlwaysChown bool
	// Tool name for error messages ("cpio", "dpkg-deb", "apk").
	Tool string
}

// extractFiles materialises specs through the process's libc, returning a
// descriptive error string (empty on success). The chown/mknod calls flow
// through ctx.C so preload hooks see them, and through the process gate so
// seccomp and ptrace see them.
func extractFiles(ctx *simos.ExecCtx, files []FileSpec, opt extractOptions) string {
	p := ctx.Proc
	for _, f := range files {
		if msg := extractOne(ctx, f, opt); msg != "" {
			return msg
		}
		_ = p
	}
	return ""
}

func extractOne(ctx *simos.ExecCtx, f FileSpec, opt extractOptions) string {
	p := ctx.Proc
	mkParents(p, f.Path)
	switch f.Type {
	case vfs.TypeDir:
		if e := p.Mkdir(f.Path, f.Mode); e != errno.OK && e != errno.EEXIST {
			return fmt.Sprintf("%s: mkdir %s failed - %s", opt.Tool, f.Path, e.Message())
		}
	case vfs.TypeRegular:
		if e := p.WriteFileAll(f.Path, f.Data, f.Mode); e != errno.OK {
			return fmt.Sprintf("%s: write %s failed - %s", opt.Tool, f.Path, e.Message())
		}
		if e := ctx.C.Chmod(f.Path, f.Mode); e != errno.OK {
			return fmt.Sprintf("%s: chmod %s failed - %s", opt.Tool, f.Path, e.Message())
		}
	case vfs.TypeSymlink:
		p.Unlink(f.Path)
		if e := p.Symlink(f.Target, f.Path); e != errno.OK {
			return fmt.Sprintf("%s: symlink %s failed - %s", opt.Tool, f.Path, e.Message())
		}
		// Symlink ownership is set with lchown by rpm/dpkg.
		if opt.AlwaysChown {
			if e := ctx.C.Lchown(f.Path, f.UID, f.GID); e != errno.OK {
				return fmt.Sprintf("%s: lchown %s failed - %s", opt.Tool, f.Path, e.Message())
			}
		}
		return ""
	case vfs.TypeCharDev, vfs.TypeBlockDev:
		mode := f.Mode | map[vfs.FileType]uint32{
			vfs.TypeCharDev: vfs.SIFCHR, vfs.TypeBlockDev: vfs.SIFBLK,
		}[f.Type]
		if e := ctx.C.Mknod(f.Path, mode, vfs.Makedev(f.Major, f.Minor)); e != errno.OK {
			return fmt.Sprintf("%s: mknod %s failed - %s", opt.Tool, f.Path, e.Message())
		}
	case vfs.TypeFIFO:
		if e := ctx.C.Mknod(f.Path, f.Mode|vfs.SIFIFO, 0); e != errno.OK {
			return fmt.Sprintf("%s: mkfifo %s failed - %s", opt.Tool, f.Path, e.Message())
		}
	}
	// Ownership.
	if opt.AlwaysChown {
		if e := ctx.C.Chown(f.Path, f.UID, f.GID); e != errno.OK {
			return fmt.Sprintf("%s: chown failed - %s", opt.Tool, e.Message())
		}
		return ""
	}
	// apk profile: stat what we created; chown only if it differs.
	st, e := ctx.C.Lstat(f.Path)
	if e == errno.OK && (st.UID != f.UID || st.GID != f.GID) {
		if e := ctx.C.Chown(f.Path, f.UID, f.GID); e != errno.OK {
			return fmt.Sprintf("%s: chown failed - %s", opt.Tool, e.Message())
		}
	}
	return ""
}

// mkParents creates missing ancestor directories with default metadata, as
// archive extractors do.
func mkParents(p *simos.Proc, path string) {
	cur := ""
	comps := splitSlash(path)
	for _, c := range comps[:max(0, len(comps)-1)] {
		cur += "/" + c
		p.Mkdir(cur, 0o755)
	}
}

func splitSlash(p string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(p); i++ {
		if i == len(p) || p[i] == '/' {
			if i > start {
				out = append(out, p[start:i])
			}
			start = i + 1
		}
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// runScript executes a maintainer script under /bin/sh.
func runScript(ctx *simos.ExecCtx, script string) int {
	if script == "" {
		return 0
	}
	status, e := ctx.Proc.Exec([]string{"/bin/sh", "-c", script}, ctx.Env, nil, ctx.Stdout, ctx.Stderr)
	if e != errno.OK {
		return 127
	}
	return status
}

// readInstalledDB reads a newline-separated package-name database.
func readInstalledDB(p *simos.Proc, path string) map[string]bool {
	out := map[string]bool{}
	data, e := p.ReadFileAll(path)
	if e != errno.OK {
		return out
	}
	start := 0
	for i := 0; i <= len(data); i++ {
		if i == len(data) || data[i] == '\n' {
			if i > start {
				out[string(data[start:i])] = true
			}
			start = i + 1
		}
	}
	return out
}

// appendInstalledDB records a package as installed.
func appendInstalledDB(p *simos.Proc, path, name string) {
	mkParents(p, path)
	old, _ := p.ReadFileAll(path)
	p.WriteFileAll(path, append(old, []byte(name+"\n")...), 0o644)
}
