package pkgmgr

import (
	"strings"
	"testing"

	"repro/internal/container"
	"repro/internal/errno"
	"repro/internal/simos"
	"repro/internal/vfs"
)

func TestAPKFormatRoundTrip(t *testing.T) {
	p := &Package{
		Name: "demo", Version: "1.0-r0", Size: 12,
		Depends:     []string{"libdemo", "base"},
		Trigger:     "demo.trigger",
		PostInstall: "echo post\ntrue",
		Files: []FileSpec{
			{Path: "/usr/bin/demo", Type: vfs.TypeRegular, Mode: 0o755, Data: []byte("ELF")},
			{Path: "/usr/lib/demo", Type: vfs.TypeDir, Mode: 0o755},
			{Path: "/usr/bin/demo-link", Type: vfs.TypeSymlink, Target: "demo"},
		},
	}
	blob, err := BuildAPK(p)
	if err != nil {
		t.Fatal(err)
	}
	q, err := ParseAPK(blob)
	if err != nil {
		t.Fatal(err)
	}
	if q.Name != "demo" || q.Version != "1.0-r0" || len(q.Depends) != 2 ||
		q.Trigger != "demo.trigger" || q.PostInstall != "echo post\ntrue" {
		t.Fatalf("meta: %+v", q)
	}
	if len(q.Files) != 3 || q.Files[0].Path != "/usr/bin/demo" ||
		string(q.Files[0].Data) != "ELF" || q.Files[2].Target != "demo" {
		t.Fatalf("files: %+v", q.Files)
	}
}

func TestRPMFormatRoundTrip(t *testing.T) {
	p := &Package{
		Name: "openssh", Version: "7.4p1-23.el7_9", Arch: "x86_64",
		Depends: []string{"fipscheck"},
		Files: []FileSpec{
			{Path: "/usr/sbin/sshd", Type: vfs.TypeRegular, Mode: 0o755, Data: []byte("ELF sshd")},
			{Path: "/usr/libexec/openssh/ssh-keysign", Type: vfs.TypeRegular,
				Mode: 0o2555, UID: 0, GID: 998, Data: []byte("ELF")},
			{Path: "/dev/demo", Type: vfs.TypeCharDev, Mode: 0o666, Major: 1, Minor: 3},
		},
	}
	blob, err := BuildRPM(p)
	if err != nil {
		t.Fatal(err)
	}
	q, err := ParseRPM(blob)
	if err != nil {
		t.Fatal(err)
	}
	if q.Name != "openssh" || len(q.Files) != 3 {
		t.Fatalf("meta: %+v", q)
	}
	if q.Files[1].GID != 998 || q.Files[1].Mode != 0o2555 {
		t.Fatalf("ownership lost: %+v", q.Files[1])
	}
	if q.Files[2].Type != vfs.TypeCharDev || q.Files[2].Major != 1 {
		t.Fatalf("device: %+v", q.Files[2])
	}
	if fullRPMName(q) != "openssh-7.4p1-23.el7_9.x86_64" {
		t.Fatalf("full name: %s", fullRPMName(q))
	}
}

func TestRPMBadMagic(t *testing.T) {
	if _, err := ParseRPM([]byte("not an rpm at all")); err == nil {
		t.Fatal("bad magic must fail")
	}
}

func TestDEBFormatRoundTrip(t *testing.T) {
	p := &Package{
		Name: "curl", Version: "7.88.1-10", Depends: []string{"libcurl4"},
		PostInstall: "true",
		Files: []FileSpec{
			{Path: "/usr/bin/curl", Type: vfs.TypeRegular, Mode: 0o755, Data: []byte("ELF")},
		},
	}
	blob, err := BuildDEB(p)
	if err != nil {
		t.Fatal(err)
	}
	q, err := ParseDEB(blob)
	if err != nil {
		t.Fatal(err)
	}
	if q.Name != "curl" || q.Depends[0] != "libcurl4" || q.PostInstall != "true" {
		t.Fatalf("meta: %+v", q)
	}
}

func TestRepoResolveTopological(t *testing.T) {
	r := NewRepo("http://example", "apk")
	r.MustAdd(&Package{Name: "a", Version: "1", Depends: []string{"b", "c"}})
	r.MustAdd(&Package{Name: "b", Version: "1", Depends: []string{"c"}})
	r.MustAdd(&Package{Name: "c", Version: "1"})
	order, err := r.Resolve([]string{"a"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, p := range order {
		names = append(names, p.Name)
	}
	if strings.Join(names, ",") != "c,b,a" {
		t.Fatalf("order: %v", names)
	}
}

func TestRepoResolveSkipsInstalled(t *testing.T) {
	r := NewRepo("http://example", "apk")
	r.MustAdd(&Package{Name: "a", Version: "1", Depends: []string{"b"}})
	r.MustAdd(&Package{Name: "b", Version: "1"})
	order, err := r.Resolve([]string{"a"}, map[string]bool{"b": true})
	if err != nil || len(order) != 1 || order[0].Name != "a" {
		t.Fatalf("order: %v err: %v", order, err)
	}
}

func TestRepoResolveMissing(t *testing.T) {
	r := NewRepo("http://example", "apk")
	if _, err := r.Resolve([]string{"ghost"}, nil); err == nil {
		t.Fatal("missing package must fail")
	}
}

func TestRepoResolveCycle(t *testing.T) {
	r := NewRepo("http://example", "apk")
	r.MustAdd(&Package{Name: "a", Version: "1", Depends: []string{"b"}})
	r.MustAdd(&Package{Name: "b", Version: "1", Depends: []string{"a"}})
	if _, err := r.Resolve([]string{"a"}, nil); err == nil {
		t.Fatal("cycle must fail")
	}
}

// containerWorld builds a Type III container on a distro base image with
// the distro's toolchain, mirroring what the builder does per RUN.
func containerWorld(t *testing.T, distro string) (*World, *simos.Proc) {
	t.Helper()
	w := NewWorld()
	img, err := w.BaseImage(distro, distro+":test")
	if err != nil {
		t.Fatal(err)
	}
	fs, err := img.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	fs.ChownAll(1000, 1000)
	k := simos.NewKernel()
	p := k.NewInitProc(simos.Mount{FS: vfs.New(), Owner: k.InitNS()}, 1000, 1000)
	if err := container.Enter(p, container.Options{Type: container.TypeIII, RootFS: fs}); err != nil {
		t.Fatal(err)
	}
	reg, err := w.Toolchain(distro)
	if err != nil {
		t.Fatal(err)
	}
	p.SetRegistry(reg)
	return w, p
}

func runCmd(t *testing.T, p *simos.Proc, line string) (int, string) {
	t.Helper()
	var out strings.Builder
	status, e := p.Exec([]string{"/bin/sh", "-c", line},
		map[string]string{"PATH": "/usr/local/sbin:/usr/local/bin:/usr/sbin:/usr/bin:/sbin:/bin"},
		nil, &out, &out)
	if e != errno.OK {
		t.Fatalf("exec: %v", e)
	}
	return status, out.String()
}

func TestApkAddInContainerNoEmulation(t *testing.T) {
	// Fig. 1a at the package-manager level.
	_, p := containerWorld(t, DistroAlpine)
	status, out := runCmd(t, p, "apk add sl")
	if status != 0 {
		t.Fatalf("apk add failed (%d):\n%s", status, out)
	}
	if !strings.Contains(out, "(3/3) Installing sl") {
		t.Fatalf("out:\n%s", out)
	}
	// The binary landed and is runnable.
	if status, _ := runCmd(t, p, "sl"); status != 0 {
		t.Fatal("installed sl does not run")
	}
	// Idempotent: second add installs nothing new.
	_, out = runCmd(t, p, "apk add sl")
	if strings.Contains(out, "Installing sl") {
		t.Fatalf("reinstalled:\n%s", out)
	}
}

func TestYumInstallFailsInContainerNoEmulation(t *testing.T) {
	// Fig. 1b at the package-manager level.
	_, p := containerWorld(t, DistroCentOS7)
	status, out := runCmd(t, p, "yum install -y openssh")
	if status == 0 {
		t.Fatalf("yum must fail:\n%s", out)
	}
	if !strings.Contains(out, "cpio: chown failed - Invalid argument") {
		t.Fatalf("out:\n%s", out)
	}
}

func TestYumInstallAllRootPackageSucceeds(t *testing.T) {
	// The all-root "which" package has no foreign owners: rpm's chowns
	// are no-ops and the install works even without emulation.
	_, p := containerWorld(t, DistroCentOS7)
	status, out := runCmd(t, p, "yum install -y which")
	if status != 0 {
		t.Fatalf("which install failed:\n%s", out)
	}
	if !strings.Contains(out, "Complete!") {
		t.Fatalf("out:\n%s", out)
	}
}

func TestRPMLocalInstall(t *testing.T) {
	w, p := containerWorld(t, DistroCentOS7)
	blob, _ := w.CentOS7.Fetch("which")
	p.WriteFileAll("/tmp/which.rpm", blob, 0o644)
	status, out := runCmd(t, p, "rpm -i /tmp/which.rpm")
	if status != 0 {
		t.Fatalf("rpm -i failed:\n%s", out)
	}
}

func TestAptInstallFailsNoEmulation(t *testing.T) {
	_, p := containerWorld(t, DistroDebian)
	status, out := runCmd(t, p, "apt-get install -y curl")
	if status == 0 {
		t.Fatalf("apt must fail:\n%s", out)
	}
	if !strings.Contains(out, "setresuid 100 failed") {
		t.Fatalf("out:\n%s", out)
	}
}

func TestAptInstallSandboxDisabled(t *testing.T) {
	// Without emulation but with the sandbox off, dpkg's chown 0:0 is a
	// no-op and the install completes.
	_, p := containerWorld(t, DistroDebian)
	status, out := runCmd(t, p, "apt-get -o APT::Sandbox::User=root install -y curl")
	if status != 0 {
		t.Fatalf("apt with sandbox off failed:\n%s", out)
	}
	if !strings.Contains(out, "unsandboxed as root") {
		t.Fatalf("out:\n%s", out)
	}
}

func TestToolchainUnknownDistro(t *testing.T) {
	w := NewWorld()
	if _, err := w.Toolchain("slackware"); err == nil {
		t.Fatal("unknown distro must fail")
	}
	if _, err := w.BaseImage("slackware", "x"); err == nil {
		t.Fatal("unknown distro must fail")
	}
}

func TestWorldRepoFor(t *testing.T) {
	w := NewWorld()
	for _, d := range []string{DistroAlpine, DistroCentOS7, DistroDebian} {
		if _, ok := w.RepoFor(d); !ok {
			t.Errorf("no repo for %s", d)
		}
	}
	if _, ok := w.RepoFor("gentoo"); ok {
		t.Error("gentoo repo should not exist")
	}
}

func TestBaseImagesHaveDistroLabel(t *testing.T) {
	w := NewWorld()
	for _, d := range []string{DistroAlpine, DistroCentOS7, DistroDebian} {
		img, err := w.BaseImage(d, d+":x")
		if err != nil {
			t.Fatal(err)
		}
		if img.Config.Distro() != d {
			t.Errorf("%s: label %q", d, img.Config.Distro())
		}
	}
}

func TestPostInstallScriptRuns(t *testing.T) {
	w, p := containerWorld(t, DistroAlpine)
	w.Alpine.MustAdd(&Package{
		Name: "scripted", Version: "1.0", Size: 1,
		PostInstall: "echo post-ran > /tmp/marker",
		Files: []FileSpec{
			{Path: "/usr/share/scripted", Type: vfs.TypeRegular, Mode: 0o644, Data: []byte("x")},
		},
	})
	status, out := runCmd(t, p, "apk add scripted")
	if status != 0 {
		t.Fatalf("install failed:\n%s", out)
	}
	if _, e := p.Stat("/tmp/marker"); e != errno.OK {
		t.Fatal("post-install script did not run")
	}
}

func TestExtractPreservesModes(t *testing.T) {
	w, p := containerWorld(t, DistroAlpine)
	w.Alpine.MustAdd(&Package{
		Name: "modes", Version: "1", Size: 1,
		Files: []FileSpec{
			{Path: "/usr/bin/exec", Type: vfs.TypeRegular, Mode: 0o755, Data: []byte("x")},
			{Path: "/etc/secret", Type: vfs.TypeRegular, Mode: 0o600, Data: []byte("x")},
		},
	})
	if status, out := runCmd(t, p, "apk add modes"); status != 0 {
		t.Fatalf("install failed:\n%s", out)
	}
	st, _ := p.Stat("/usr/bin/exec")
	if st.Mode != 0o755 {
		t.Errorf("exec mode %o", st.Mode)
	}
	st, _ = p.Stat("/etc/secret")
	if st.Mode != 0o600 {
		t.Errorf("secret mode %o", st.Mode)
	}
}

func TestDnfAliasWorks(t *testing.T) {
	_, p := containerWorld(t, DistroCentOS7)
	// dnf is a symlink to yum fronting the same engine; with no emulation
	// the openssh install fails identically.
	status, out := runCmd(t, p, "dnf install -y which")
	if status != 0 || !strings.Contains(out, "Complete!") {
		t.Fatalf("dnf install: %d\n%s", status, out)
	}
}
