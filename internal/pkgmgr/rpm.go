package pkgmgr

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"

	"repro/internal/cpio"
	"repro/internal/simos"
	"repro/internal/vfs"
)

// RPM format: the real thing is lead + signature + header + compressed
// cpio. We keep the structural essentials — a magic-tagged header carrying
// the metadata and a genuine cpio-newc payload holding the files with
// their recorded owners — because the failure the paper reproduces lives
// in the cpio-extraction chown loop.

// rpmMagic is the RPM lead magic.
var rpmMagic = []byte{0xed, 0xab, 0xee, 0xdb}

// rpmHeader is the JSON-encoded metadata block.
type rpmHeader struct {
	Name        string   `json:"name"`
	Version     string   `json:"version"`
	Arch        string   `json:"arch"`
	Depends     []string `json:"depends,omitempty"`
	PostInstall string   `json:"post_install,omitempty"`
	Size        int      `json:"size"`
	// Owners records uid/gid per path: rpm headers carry ownership in
	// RPMTAG_FILEUSERNAME/GROUPNAME; the cpio header duplicates it.
	Owners map[string][2]int `json:"owners"`
}

// BuildRPM encodes a package.
func BuildRPM(p *Package) ([]byte, error) {
	hdr := rpmHeader{
		Name: p.Name, Version: p.Version, Arch: defaultArch(p.Arch),
		Depends: p.Depends, PostInstall: p.PostInstall, Size: p.Size,
		Owners: map[string][2]int{},
	}
	var payload bytes.Buffer
	cw := cpio.NewWriter(&payload)
	for _, f := range p.Files {
		hdr.Owners[f.Path] = [2]int{f.UID, f.GID}
		ch := &cpio.Header{
			Name: strings.TrimPrefix(f.Path, "/"),
			Mode: f.Mode | f.Type.ModeBits(),
			UID:  uint32(f.UID), GID: uint32(f.GID),
			RMajor: f.Major, RMinor: f.Minor,
		}
		var body []byte
		switch f.Type {
		case vfs.TypeRegular:
			body = f.Data
		case vfs.TypeSymlink:
			body = []byte(f.Target)
		}
		if err := cw.WriteMember(ch, body); err != nil {
			return nil, err
		}
	}
	if err := cw.Close(); err != nil {
		return nil, err
	}
	meta, err := json.Marshal(hdr)
	if err != nil {
		return nil, err
	}
	var out bytes.Buffer
	out.Write(rpmMagic)
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(meta)))
	out.Write(lenBuf[:])
	out.Write(meta)
	out.Write(payload.Bytes())
	return out.Bytes(), nil
}

// ParseRPM decodes a package.
func ParseRPM(blob []byte) (*Package, error) {
	if len(blob) < 8 || !bytes.Equal(blob[:4], rpmMagic) {
		return nil, fmt.Errorf("pkgmgr: rpm: bad magic")
	}
	metaLen := binary.BigEndian.Uint32(blob[4:8])
	if int(8+metaLen) > len(blob) {
		return nil, fmt.Errorf("pkgmgr: rpm: truncated header")
	}
	var hdr rpmHeader
	if err := json.Unmarshal(blob[8:8+metaLen], &hdr); err != nil {
		return nil, fmt.Errorf("pkgmgr: rpm: header: %w", err)
	}
	p := &Package{
		Name: hdr.Name, Version: hdr.Version, Arch: hdr.Arch,
		Depends: hdr.Depends, PostInstall: hdr.PostInstall, Size: hdr.Size,
	}
	cr := cpio.NewReader(blob[8+metaLen:])
	for {
		ch, err := cr.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("pkgmgr: rpm: payload: %w", err)
		}
		typ, _ := vfs.TypeFromMode(ch.Mode)
		f := FileSpec{
			Path: "/" + ch.Name, Type: typ, Mode: ch.Mode & 0o7777,
			UID: int(ch.UID), GID: int(ch.GID),
			Major: ch.RMajor, Minor: ch.RMinor,
		}
		switch typ {
		case vfs.TypeRegular:
			f.Data = append([]byte{}, cr.Body()...)
		case vfs.TypeSymlink:
			f.Target = string(cr.Body())
		}
		p.Files = append(p.Files, f)
	}
	return p, nil
}

func defaultArch(a string) string {
	if a == "" {
		return "x86_64"
	}
	return a
}

// rpmInstalledDB is the rpmdb stand-in.
const rpmInstalledDB = "/var/lib/rpm/Packages"

// fullRPMName renders the transcript name: openssh-7.4p1-23.el7_9.x86_64.
func fullRPMName(p *Package) string {
	return fmt.Sprintf("%s-%s.%s", p.Name, p.Version, defaultArch(p.Arch))
}

// installRPMPackage extracts one parsed RPM with rpm's profile: cpio
// extraction with an unconditional chown per entry. On failure it emits
// rpm's characteristic error lines and reports false.
func installRPMPackage(ctx *simos.ExecCtx, pkg *Package, idx, total int) bool {
	fmt.Fprintf(ctx.Stdout, "  Installing : %-40s %3d/%d\n", fullRPMName(pkg), idx, total)
	if msg := extractFiles(ctx, pkg.Files, extractOptions{AlwaysChown: true, Tool: "cpio"}); msg != "" {
		// Fig. 1b lines 9-10.
		fmt.Fprintf(ctx.Stdout, "Error unpacking rpm package %s\n", fullRPMName(pkg))
		fmt.Fprintf(ctx.Stdout, "error: unpacking of archive failed: %s\n", msg)
		return false
	}
	if status := runScript(ctx, pkg.PostInstall); status != 0 {
		fmt.Fprintf(ctx.Stdout, "warning: %%post(%s) scriptlet failed, exit status %d\n",
			fullRPMName(pkg), status)
	}
	appendInstalledDB(ctx.Proc, rpmInstalledDB, pkg.Name)
	return true
}

// YumBinary builds /usr/bin/yum bound to a repository.
func YumBinary(repo *Repo) *simos.Binary {
	return &simos.Binary{
		Name:   "yum",
		Static: false,
		Main: func(ctx *simos.ExecCtx) int {
			args := filterFlags(ctx.Argv[1:])
			if len(args) == 0 || args[0] != "install" {
				fmt.Fprintln(ctx.Stderr, "yum: usage: yum install -y PKG...")
				return 1
			}
			return yumInstall(ctx, repo, args[1:])
		},
	}
}

func yumInstall(ctx *simos.ExecCtx, repo *Repo, pkgs []string) int {
	p := ctx.Proc
	fmt.Fprintln(ctx.Stdout, "Loaded plugins: fastestmirror, ovl")
	fmt.Fprintln(ctx.Stdout, "Resolving Dependencies")
	installed := readInstalledDB(p, rpmInstalledDB)
	order, err := repo.Resolve(pkgs, installed)
	if err != nil {
		fmt.Fprintf(ctx.Stderr, "Error: %v\n", err)
		return 1
	}
	if len(order) == 0 {
		fmt.Fprintln(ctx.Stdout, "Nothing to do")
		return 0
	}
	fmt.Fprintln(ctx.Stdout, "Dependencies Resolved")
	fmt.Fprintln(ctx.Stdout, "Running transaction")
	for i, meta := range order {
		blob, ok := repo.Fetch(meta.Name)
		if !ok {
			fmt.Fprintf(ctx.Stderr, "Error: cannot fetch %s\n", meta.Name)
			return 1
		}
		pkg, err := ParseRPM(blob)
		if err != nil {
			fmt.Fprintf(ctx.Stderr, "Error: %s: %v\n", meta.Name, err)
			return 1
		}
		if !installRPMPackage(ctx, pkg, i+1, len(order)) {
			// Fig. 1b lines 11-13: the transaction rolls back and the
			// RUN instruction fails.
			fmt.Fprintln(ctx.Stdout, "Verifying  : transaction rollback")
			fmt.Fprintf(ctx.Stderr, "error: %s: install failed\n", fullRPMName(pkg))
			return 1
		}
	}
	fmt.Fprintln(ctx.Stdout, "Complete!")
	return 0
}

// RPMBinary builds /usr/bin/rpm for local-file installs (rpm -i file.rpm)
// — the path Charliecloud's test suite exercises directly.
func RPMBinary(repo *Repo) *simos.Binary {
	return &simos.Binary{
		Name:   "rpm",
		Static: false,
		Main: func(ctx *simos.ExecCtx) int {
			args := ctx.Argv[1:]
			install := false
			var targets []string
			for _, a := range args {
				switch {
				case a == "-i" || a == "-U" || a == "--install":
					install = true
				case strings.HasPrefix(a, "-"):
				default:
					targets = append(targets, a)
				}
			}
			if !install || len(targets) == 0 {
				fmt.Fprintln(ctx.Stderr, "rpm: usage: rpm -i FILE.rpm")
				return 1
			}
			for i, t := range targets {
				var blob []byte
				if data, e := ctx.Proc.ReadFileAll(t); e.Ok() {
					blob = data
				} else if data, ok := repo.Fetch(strings.TrimSuffix(t, ".rpm")); ok {
					blob = data
				} else {
					fmt.Fprintf(ctx.Stderr, "rpm: %s: not found\n", t)
					return 1
				}
				pkg, err := ParseRPM(blob)
				if err != nil {
					fmt.Fprintf(ctx.Stderr, "rpm: %v\n", err)
					return 1
				}
				if !installRPMPackage(ctx, pkg, i+1, len(targets)) {
					return 1
				}
			}
			return 0
		},
	}
}
