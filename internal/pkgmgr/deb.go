package pkgmgr

import (
	"archive/tar"
	"bytes"
	"errors"
	"fmt"
	"io"
	"strings"

	"repro/internal/errno"
	"repro/internal/simos"
)

// DEB format: control metadata plus a data tar. The real thing is an ar(5)
// archive holding control.tar and data.tar; we fold both into one tar where
// the metadata travels as ./control and files as the remaining members —
// dpkg's extraction profile (chown everything) is what matters.

// BuildDEB encodes a package.
func BuildDEB(p *Package) ([]byte, error) {
	var buf bytes.Buffer
	tw := tar.NewWriter(&buf)
	var ctl strings.Builder
	fmt.Fprintf(&ctl, "Package: %s\n", p.Name)
	fmt.Fprintf(&ctl, "Version: %s\n", p.Version)
	if len(p.Depends) > 0 {
		fmt.Fprintf(&ctl, "Depends: %s\n", strings.Join(p.Depends, ", "))
	}
	fmt.Fprintf(&ctl, "Installed-Size: %d\n", p.Size)
	if p.PostInstall != "" {
		fmt.Fprintf(&ctl, "Postinst: %s\n", encodeScript(p.PostInstall))
	}
	hdr := &tar.Header{Name: "control", Mode: 0o644, Size: int64(ctl.Len()), Typeflag: tar.TypeReg}
	if err := tw.WriteHeader(hdr); err != nil {
		return nil, err
	}
	io.WriteString(tw, ctl.String())
	if err := writeFileSpecs(tw, p.Files); err != nil {
		return nil, err
	}
	if err := tw.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// ParseDEB decodes a package.
func ParseDEB(blob []byte) (*Package, error) {
	tr := tar.NewReader(bytes.NewReader(blob))
	p := &Package{}
	for {
		hdr, err := tr.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("pkgmgr: deb: %w", err)
		}
		if hdr.Name == "control" {
			data, _ := io.ReadAll(tr)
			parseControl(p, string(data))
			continue
		}
		f, err := specFromTar(hdr, tr)
		if err != nil {
			return nil, err
		}
		p.Files = append(p.Files, f)
	}
	if p.Name == "" {
		return nil, fmt.Errorf("pkgmgr: deb: missing control")
	}
	return p, nil
}

func parseControl(p *Package, text string) {
	for _, line := range strings.Split(text, "\n") {
		k, v, ok := strings.Cut(line, ": ")
		if !ok {
			continue
		}
		switch k {
		case "Package":
			p.Name = v
		case "Version":
			p.Version = v
		case "Depends":
			for _, d := range strings.Split(v, ",") {
				p.Depends = append(p.Depends, strings.TrimSpace(d))
			}
		case "Installed-Size":
			fmt.Sscanf(v, "%d", &p.Size)
		case "Postinst":
			p.PostInstall = decodeScript(v)
		}
	}
}

// dpkg status database.
const dpkgStatusDB = "/var/lib/dpkg/status"

// aptUID is the _apt user Debian creates for sandboxed downloads.
const aptUID = 100

// DpkgBinary builds /usr/bin/dpkg bound to a repository (for --install of
// fetched blobs).
func DpkgBinary(repo *Repo) *simos.Binary {
	return &simos.Binary{
		Name:   "dpkg",
		Static: false,
		Main: func(ctx *simos.ExecCtx) int {
			args := filterFlags(ctx.Argv[1:])
			if len(args) == 0 {
				fmt.Fprintln(ctx.Stderr, "dpkg: usage: dpkg -i PKG")
				return 1
			}
			for _, name := range args {
				blob, ok := repo.Fetch(name)
				if !ok {
					fmt.Fprintf(ctx.Stderr, "dpkg: package %s not available\n", name)
					return 1
				}
				pkg, err := ParseDEB(blob)
				if err != nil {
					fmt.Fprintf(ctx.Stderr, "dpkg: %v\n", err)
					return 1
				}
				if status := dpkgUnpack(ctx, pkg); status != 0 {
					return status
				}
			}
			return 0
		},
	}
}

// dpkgUnpack extracts with dpkg's profile (chown everything) and runs
// postinst.
func dpkgUnpack(ctx *simos.ExecCtx, pkg *Package) int {
	fmt.Fprintf(ctx.Stdout, "Unpacking %s (%s) ...\n", pkg.Name, pkg.Version)
	if msg := extractFiles(ctx, pkg.Files, extractOptions{AlwaysChown: true, Tool: "dpkg-deb"}); msg != "" {
		fmt.Fprintf(ctx.Stderr, "dpkg: error processing package %s (--install):\n %s\n", pkg.Name, msg)
		return 1
	}
	fmt.Fprintf(ctx.Stdout, "Setting up %s (%s) ...\n", pkg.Name, pkg.Version)
	if status := runScript(ctx, pkg.PostInstall); status != 0 {
		fmt.Fprintf(ctx.Stderr, "dpkg: error: postinst of %s returned %d\n", pkg.Name, status)
		return 1
	}
	appendInstalledDB(ctx.Proc, dpkgStatusDB, pkg.Name)
	return 0
}

// AptBinary builds /usr/bin/apt-get (and /usr/bin/apt) bound to a
// repository. This is the §5 exception in executable form: before
// downloading, apt sandboxes itself by dropping to _apt with
// setgroups/setresgid/setresuid and then *verifies* the drop with
// getresuid. Under zero-consistency emulation the set* calls "succeed"
// while getresuid still reports root, and apt aborts — unless
// -o APT::Sandbox::User=root disables the sandbox.
func AptBinary(repo *Repo) *simos.Binary {
	return &simos.Binary{
		Name:   "apt-get",
		Static: false,
		Main: func(ctx *simos.ExecCtx) int {
			sandboxUser := "_apt"
			var cmdArgs []string
			args := ctx.Argv[1:]
			for i := 0; i < len(args); i++ {
				a := args[i]
				switch {
				case a == "-o" && i+1 < len(args):
					if v, ok := strings.CutPrefix(args[i+1], "APT::Sandbox::User="); ok {
						sandboxUser = v
					}
					i++
				case strings.HasPrefix(a, "-o") && strings.Contains(a, "APT::Sandbox::User="):
					sandboxUser = a[strings.Index(a, "=")+1:]
				case strings.HasPrefix(a, "-"):
				default:
					cmdArgs = append(cmdArgs, a)
				}
			}
			if len(cmdArgs) == 0 {
				fmt.Fprintln(ctx.Stderr, "apt-get: usage: apt-get install -y PKG...")
				return 1
			}
			switch cmdArgs[0] {
			case "update":
				fmt.Fprintf(ctx.Stdout, "Get:1 %s stable InRelease\n", repo.URL)
				fmt.Fprintln(ctx.Stdout, "Reading package lists... Done")
				return 0
			case "install":
				return aptInstall(ctx, repo, cmdArgs[1:], sandboxUser)
			}
			fmt.Fprintf(ctx.Stderr, "apt-get: unknown command %q\n", cmdArgs[0])
			return 1
		},
	}
}

func aptInstall(ctx *simos.ExecCtx, repo *Repo, pkgs []string, sandboxUser string) int {
	p := ctx.Proc
	fmt.Fprintln(ctx.Stdout, "Reading package lists... Done")
	fmt.Fprintln(ctx.Stdout, "Building dependency tree... Done")
	installed := readInstalledDB(p, dpkgStatusDB)
	order, err := repo.Resolve(pkgs, installed)
	if err != nil {
		fmt.Fprintf(ctx.Stderr, "E: %v\n", err)
		return 100
	}
	if len(order) == 0 {
		fmt.Fprintln(ctx.Stdout, "0 upgraded, 0 newly installed.")
		return 0
	}

	// --- the sandboxed download (§5) ---
	for i, meta := range order {
		fmt.Fprintf(ctx.Stdout, "Get:%d %s stable/main %s %s\n", i+1, repo.URL, meta.Name, meta.Version)
		if sandboxUser != "root" {
			if status := aptSandboxedFetch(ctx, sandboxUser); status != 0 {
				return status
			}
		} else {
			fmt.Fprintln(ctx.Stdout, "W: Download is performed unsandboxed as root")
		}
	}

	// --- unpack via dpkg's engine ---
	for _, meta := range order {
		blob, ok := repo.Fetch(meta.Name)
		if !ok {
			fmt.Fprintf(ctx.Stderr, "E: Failed to fetch %s\n", meta.Name)
			return 100
		}
		pkg, err := ParseDEB(blob)
		if err != nil {
			fmt.Fprintf(ctx.Stderr, "E: %v\n", err)
			return 100
		}
		if status := dpkgUnpack(ctx, pkg); status != 0 {
			fmt.Fprintln(ctx.Stderr, "E: Sub-process dpkg returned an error code (1)")
			return 100
		}
	}
	fmt.Fprintf(ctx.Stdout, "%d newly installed.\n", len(order))
	return 0
}

// aptSandboxedFetch performs the privilege drop + verification for one
// download. The "method" process in real apt is a child; dropping in a
// child keeps the parent's credentials intact, which we model by doing the
// drop in an ephemeral child process.
func aptSandboxedFetch(ctx *simos.ExecCtx, user string) int {
	uid := aptUID
	if user != "_apt" {
		fmt.Fprintf(ctx.Stderr, "E: unknown sandbox user %s\n", user)
		return 100
	}
	// Run the drop inside a forked child so a *successful* drop doesn't
	// de-privilege the package manager itself.
	status, e := ctx.Proc.Exec([]string{"/usr/lib/apt/methods/http"}, map[string]string{
		"APT_SANDBOX_UID": fmt.Sprint(uid),
	}, nil, ctx.Stdout, ctx.Stderr)
	if e != errno.OK {
		fmt.Fprintf(ctx.Stderr, "E: method fork failed: %s\n", e.Message())
		return 100
	}
	return status
}

// AptMethodBinary is /usr/lib/apt/methods/http: the child that actually
// drops privileges and verifies.
func AptMethodBinary() *simos.Binary {
	return &simos.Binary{
		Name:   "http",
		Static: false,
		Main: func(ctx *simos.ExecCtx) int {
			p := ctx.Proc
			uid := aptUID
			// DropPrivileges(), as apt's methods do on startup.
			if e := ctx.C.Setresuid(uid, uid, uid); e != errno.OK {
				fmt.Fprintf(ctx.Stderr, "E: setresuid %d failed - %s\n", uid, e.Message())
				return 100
			}
			// …and the §5 verification: "also verifies that they were
			// dropped correctly."
			r, eu, s, _ := p.Getresuid()
			if hooked := ctx.C.Getuid(); hooked != r {
				// Under a consistent (preload) emulator the hooked view
				// wins; accept it.
				r, eu, s = hooked, hooked, hooked
			}
			if r != uid || eu != uid || s != uid {
				fmt.Fprintf(ctx.Stderr,
					"E: setresuid %d reported success but uids are still %d/%d/%d - refusing to download\n",
					uid, r, eu, s)
				return 100
			}
			// Simulated transfer; nothing further to do.
			return 0
		},
	}
}
