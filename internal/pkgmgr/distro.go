package pkgmgr

import (
	"fmt"
	"time"

	"repro/internal/image"
	"repro/internal/shell"
	"repro/internal/simos"
	"repro/internal/vfs"
)

// Distro base images and their repositories — the synthetic stand-ins for
// alpine:3.19, centos:7 and debian:12. Each base image carries the files
// its package manager needs; the matching BinaryRegistry (Go functions
// cannot travel inside a tar layer) is derived from the image's distro
// label via Toolchain.

// DistroLabel is the image config label naming the distribution.
const DistroLabel = "org.repro.distro"

// Distros supported by the simulation.
const (
	DistroAlpine  = "alpine"
	DistroCentOS7 = "centos7"
	DistroDebian  = "debian"
)

// World bundles the repositories the simulated distributions draw from.
// The zero value is empty; NewWorld populates the stock packages.
type World struct {
	Alpine  *Repo
	CentOS7 *Repo
	Debian  *Repo
}

// NewWorld builds the standard repositories with the packages the paper's
// figures install (and a few more for wider tests).
func NewWorld() *World {
	w := &World{
		Alpine:  NewRepo("https://dl-cdn.alpinelinux.org/alpine/v3.19", "apk"),
		CentOS7: NewRepo("http://mirror.centos.org/centos/7", "rpm"),
		Debian:  NewRepo("http://deb.debian.org/debian", "deb"),
	}
	populateAlpine(w.Alpine)
	populateCentOS7(w.CentOS7)
	populateDebian(w.Debian)
	return w
}

// RepoFor returns the repository for a distro name.
func (w *World) RepoFor(distro string) (*Repo, bool) {
	switch distro {
	case DistroAlpine:
		return w.Alpine, true
	case DistroCentOS7:
		return w.CentOS7, true
	case DistroDebian:
		return w.Debian, true
	}
	return nil, false
}

// Toolchain builds the binary registry for a distro: the shell and
// coreutils plus the distribution's package managers bound to their repo.
func (w *World) Toolchain(distro string) (*simos.BinaryRegistry, error) {
	reg := simos.NewBinaryRegistry()
	switch distro {
	case DistroAlpine:
		registerShellAndCoreutils(reg, true) // busybox: static
		reg.Register("/sbin/apk", APKBinary(w.Alpine))
	case DistroCentOS7:
		registerShellAndCoreutils(reg, false) // GNU coreutils: dynamic
		reg.Register("/usr/bin/yum", YumBinary(w.CentOS7))
		reg.Register("/usr/bin/dnf", YumBinary(w.CentOS7)) // dnf fronts the same engine
		reg.Register("/usr/bin/rpm", RPMBinary(w.CentOS7))
	case DistroDebian:
		registerShellAndCoreutils(reg, false)
		reg.Register("/usr/bin/apt-get", AptBinary(w.Debian))
		reg.Register("/usr/bin/apt", AptBinary(w.Debian))
		reg.Register("/usr/bin/dpkg", DpkgBinary(w.Debian))
		reg.Register("/usr/lib/apt/methods/http", AptMethodBinary())
	default:
		return nil, fmt.Errorf("pkgmgr: unknown distro %q", distro)
	}
	return reg, nil
}

func registerShellAndCoreutils(reg *simos.BinaryRegistry, static bool) {
	reg.Register("/bin/busybox", shell.Busybox(static))
	reg.Register("/bin/sh", shell.Binary())
	reg.Register("/bin/sh.real", shell.Binary())
}

// BaseImage builds the single-layer base image for a distro. The image
// filesystem is stamped with a fixed clock, not wall time: layer bytes —
// and therefore digests, the keys of the persistent build cache — must be
// identical across processes, or every invocation would start cold.
func (w *World) BaseImage(distro, name string) (*image.Image, error) {
	fs := vfs.New()
	epoch := time.Date(2024, 5, 9, 0, 0, 0, 0, time.UTC) // the simulated kernel's base time
	fs.SetClock(func() time.Time { return epoch })
	rc := vfs.RootContext()
	for _, d := range []string{"/bin", "/sbin", "/usr/bin", "/usr/sbin",
		"/usr/lib", "/etc", "/var", "/tmp", "/root", "/home", "/lib"} {
		fs.MkdirAll(rc, d, 0o755, 0, 0)
	}
	fs.Chmod(rc, "/tmp", 0o1777, true)

	// The multi-call coreutils binary plus applet symlinks.
	fs.WriteFile(rc, "/bin/busybox", []byte("ELF busybox"), 0o755, 0, 0)
	fs.WriteFile(rc, "/bin/sh.real", []byte("ELF sh"), 0o755, 0, 0)
	fs.Symlink(rc, "sh.real", "/bin/sh", 0, 0)
	for _, name := range []string{"echo", "true", "false", "cat", "id",
		"whoami", "ls", "touch", "mkdir", "rm", "chown", "chmod", "mknod",
		"stat", "ln", "readlink", "uname", "env", "sl", "sleep"} {
		fs.Symlink(rc, "busybox", "/bin/"+name, 0, 0)
	}

	passwd := "root:x:0:0:root:/root:/bin/sh\nnobody:x:65534:65534:nobody:/:/sbin/nologin\n"
	group := "root:x:0:\nnobody:x:65534:\n"
	switch distro {
	case DistroAlpine:
		fs.WriteFile(rc, "/etc/alpine-release", []byte("3.19.1\n"), 0o644, 0, 0)
		fs.WriteFile(rc, "/sbin/apk", []byte("ELF apk"), 0o755, 0, 0)
		// The 15 packages a stock alpine:3.19 ships with, so transcript
		// package counts line up with Figure 1a ("OK: 8 MiB in 18
		// packages" after installing 3 more).
		db := ""
		for _, p := range []string{"alpine-baselayout", "alpine-baselayout-data",
			"alpine-keys", "apk-tools", "busybox", "busybox-binsh", "ca-certificates-bundle",
			"libc-utils", "libcrypto3", "libssl3", "musl", "musl-utils", "scanelf",
			"ssl_client", "zlib"} {
			db += p + "\n"
		}
		fs.MkdirAll(rc, "/lib/apk/db", 0o755, 0, 0)
		fs.WriteFile(rc, "/lib/apk/db/installed", []byte(db), 0o644, 0, 0)
	case DistroCentOS7:
		fs.WriteFile(rc, "/etc/centos-release", []byte("CentOS Linux release 7.9.2009 (Core)\n"), 0o644, 0, 0)
		fs.WriteFile(rc, "/usr/bin/yum", []byte("ELF yum"), 0o755, 0, 0)
		fs.Symlink(rc, "yum", "/usr/bin/dnf", 0, 0)
		fs.WriteFile(rc, "/usr/bin/rpm", []byte("ELF rpm"), 0o755, 0, 0)
	case DistroDebian:
		fs.WriteFile(rc, "/etc/debian_version", []byte("12.5\n"), 0o644, 0, 0)
		fs.WriteFile(rc, "/usr/bin/apt-get", []byte("ELF apt-get"), 0o755, 0, 0)
		fs.Symlink(rc, "apt-get", "/usr/bin/apt", 0, 0)
		fs.WriteFile(rc, "/usr/bin/dpkg", []byte("ELF dpkg"), 0o755, 0, 0)
		fs.MkdirAll(rc, "/usr/lib/apt/methods", 0o755, 0, 0)
		fs.WriteFile(rc, "/usr/lib/apt/methods/http", []byte("ELF http"), 0o755, 0, 0)
		passwd += "_apt:x:100:65534::/nonexistent:/usr/sbin/nologin\n"
	default:
		return nil, fmt.Errorf("pkgmgr: unknown distro %q", distro)
	}
	fs.WriteFile(rc, "/etc/passwd", []byte(passwd), 0o644, 0, 0)
	fs.WriteFile(rc, "/etc/group", []byte(group), 0o644, 0, 0)

	return image.FromFS(name, fs, image.Config{
		Env:    []string{"PATH=/usr/local/sbin:/usr/local/bin:/usr/sbin:/usr/bin:/sbin:/bin"},
		Cmd:    []string{"/bin/sh"},
		Labels: map[string]string{DistroLabel: distro},
		Arch:   "x86_64",
	})
}

// populateAlpine: the Fig. 1a workload. Every file is root:root, so apk
// needs no chown at all.
func populateAlpine(r *Repo) {
	r.MustAdd(&Package{
		Name: "ncurses-terminfo-base", Version: "6.4_p20231125-r0", Size: 96,
		Files: []FileSpec{
			{Path: "/etc/terminfo", Type: vfs.TypeDir, Mode: 0o755},
			{Path: "/etc/terminfo/x/xterm", Type: vfs.TypeRegular, Mode: 0o644,
				Data: []byte("xterm|xterm terminal emulator")},
		},
	})
	r.MustAdd(&Package{
		Name: "libncursesw", Version: "6.4_p20231125-r0", Size: 560,
		Depends: []string{"ncurses-terminfo-base"},
		Files: []FileSpec{
			{Path: "/usr/lib/libncursesw.so.6.4", Type: vfs.TypeRegular, Mode: 0o755,
				Data: []byte("ELF libncursesw")},
			{Path: "/usr/lib/libncursesw.so.6", Type: vfs.TypeSymlink, Target: "libncursesw.so.6.4"},
		},
	})
	r.MustAdd(&Package{
		Name: "sl", Version: "5.02-r1", Size: 28,
		Depends: []string{"libncursesw"},
		Trigger: "busybox-1.36.1-r15.trigger",
		Files: []FileSpec{
			{Path: "/usr/bin/sl", Type: vfs.TypeRegular, Mode: 0o755, Data: []byte("ELF sl")},
		},
	})
	// A package with a non-root owner, to show apk *can* hit chown.
	r.MustAdd(&Package{
		Name: "nonroot-demo", Version: "1.0-r0", Size: 4,
		Files: []FileSpec{
			{Path: "/var/lib/demo", Type: vfs.TypeDir, Mode: 0o750, UID: 405, GID: 405},
		},
	})
}

// populateCentOS7: the Fig. 1b workload. The openssh package carries a
// group-owned setgid helper; rpm's unconditional cpio chown on it is the
// failing call.
func populateCentOS7(r *Repo) {
	r.MustAdd(&Package{
		Name: "fipscheck-lib", Version: "1.4.1-6.el7", Arch: "x86_64", Size: 40,
		Files: []FileSpec{
			{Path: "/usr/lib64/libfipscheck.so.1", Type: vfs.TypeRegular, Mode: 0o755,
				Data: []byte("ELF libfipscheck")},
		},
	})
	r.MustAdd(&Package{
		Name: "fipscheck", Version: "1.4.1-6.el7", Arch: "x86_64", Size: 32,
		Depends: []string{"fipscheck-lib"},
		Files: []FileSpec{
			{Path: "/usr/bin/fipscheck", Type: vfs.TypeRegular, Mode: 0o755,
				Data: []byte("ELF fipscheck")},
		},
	})
	r.MustAdd(&Package{
		Name: "openssh", Version: "7.4p1-23.el7_9", Arch: "x86_64", Size: 1988,
		Depends:     []string{"fipscheck"},
		PostInstall: "true",
		Files: []FileSpec{
			{Path: "/etc/ssh", Type: vfs.TypeDir, Mode: 0o755},
			{Path: "/etc/ssh/moduli", Type: vfs.TypeRegular, Mode: 0o644, Data: []byte("# moduli")},
			{Path: "/usr/bin/ssh-keygen", Type: vfs.TypeRegular, Mode: 0o755, Data: []byte("ELF ssh-keygen")},
			{Path: "/var/empty/sshd", Type: vfs.TypeDir, Mode: 0o711},
			// The killer: group ssh_keys (gid 998), which no Type III
			// single mapping contains.
			{Path: "/usr/libexec/openssh/ssh-keysign", Type: vfs.TypeRegular,
				Mode: 0o2555, UID: 0, GID: 998, Data: []byte("ELF ssh-keysign")},
		},
	})
	// An all-root package that installs fine without emulation, for the
	// contrast experiment.
	r.MustAdd(&Package{
		Name: "which", Version: "2.20-7.el7", Arch: "x86_64", Size: 80,
		Files: []FileSpec{
			{Path: "/usr/bin/which", Type: vfs.TypeRegular, Mode: 0o755, Data: []byte("ELF which")},
		},
	})
}

// populateDebian: the apt workload (§5 exception).
func populateDebian(r *Repo) {
	r.MustAdd(&Package{
		Name: "libcurl4", Version: "7.88.1-10", Size: 760,
		Files: []FileSpec{
			{Path: "/usr/lib/x86_64-linux-gnu/libcurl.so.4", Type: vfs.TypeRegular,
				Mode: 0o644, Data: []byte("ELF libcurl")},
		},
	})
	r.MustAdd(&Package{
		Name: "curl", Version: "7.88.1-10", Size: 520,
		Depends: []string{"libcurl4"},
		Files: []FileSpec{
			{Path: "/usr/bin/curl", Type: vfs.TypeRegular, Mode: 0o755, Data: []byte("ELF curl")},
		},
	})
	// A package whose postinst setcaps a binary — the future-work case.
	r.MustAdd(&Package{
		Name: "iputils-ping", Version: "3:20221126-1", Size: 120,
		PostInstall: "true",
		Files: []FileSpec{
			{Path: "/usr/bin/ping", Type: vfs.TypeRegular, Mode: 0o755, Data: []byte("ELF ping")},
		},
	})
}
