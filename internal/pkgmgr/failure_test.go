package pkgmgr

import (
	"strings"
	"testing"

	"repro/internal/vfs"
)

// Failure injection: corrupted archives, broken scripts, missing
// dependencies — the managers must fail loudly, never install partially
// silently.

func TestParseAPKCorruptArchive(t *testing.T) {
	if _, err := ParseAPK([]byte("this is not a tar archive at all, period")); err == nil {
		t.Fatal("corrupt apk must fail")
	}
}

func TestParseAPKMissingPkginfo(t *testing.T) {
	// A valid tar without .PKGINFO.
	blob, err := BuildDEB(&Package{Name: "x", Version: "1"}) // deb tar has "control", not ".PKGINFO"
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseAPK(blob); err == nil {
		t.Fatal("apk without .PKGINFO must fail")
	}
}

func TestParseRPMTruncatedPayload(t *testing.T) {
	full, err := BuildRPM(&Package{
		Name: "x", Version: "1",
		Files: []FileSpec{{Path: "/f", Type: vfs.TypeRegular, Mode: 0o644,
			Data: []byte("0123456789abcdef0123456789abcdef")}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{4, 8, 20, len(full) / 2} {
		if _, err := ParseRPM(full[:cut]); err == nil {
			t.Errorf("truncated rpm at %d bytes parsed", cut)
		}
	}
}

func TestParseDEBMissingControl(t *testing.T) {
	blob, err := BuildAPK(&Package{Name: "x", Version: "1"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseDEB(blob); err == nil {
		t.Fatal("deb without control must fail")
	}
}

func TestYumMissingPackage(t *testing.T) {
	_, p := containerWorld(t, DistroCentOS7)
	status, out := runCmd(t, p, "yum install -y no-such-package")
	if status == 0 || !strings.Contains(out, "not found") {
		t.Fatalf("status=%d out=%q", status, out)
	}
}

func TestApkMissingDependency(t *testing.T) {
	w, p := containerWorld(t, DistroAlpine)
	w.Alpine.MustAdd(&Package{
		Name: "broken-dep", Version: "1", Depends: []string{"ghost-lib"},
		Files: []FileSpec{{Path: "/x", Type: vfs.TypeRegular, Mode: 0o644}},
	})
	status, out := runCmd(t, p, "apk add broken-dep")
	if status == 0 {
		t.Fatalf("missing dep must fail:\n%s", out)
	}
	// Nothing from the broken transaction landed.
	if _, e := p.Stat("/x"); e.Ok() {
		t.Fatal("partial install leaked files")
	}
}

func TestFailingPostInstallScriptFailsInstall(t *testing.T) {
	w, p := containerWorld(t, DistroAlpine)
	w.Alpine.MustAdd(&Package{
		Name: "bad-script", Version: "1", PostInstall: "false",
		Files: []FileSpec{{Path: "/usr/share/bad", Type: vfs.TypeRegular, Mode: 0o644}},
	})
	status, out := runCmd(t, p, "apk add bad-script")
	if status == 0 {
		t.Fatalf("failing post-install must fail the add:\n%s", out)
	}
	if !strings.Contains(out, "post-install script failed") {
		t.Fatalf("out:\n%s", out)
	}
}

func TestDpkgCorruptBlobInRepo(t *testing.T) {
	w, p := containerWorld(t, DistroDebian)
	// Sabotage the blob behind a published name.
	w.Debian.blobs["curl"] = []byte("garbage")
	status, out := runCmd(t, p, "apt-get -o APT::Sandbox::User=root install -y curl")
	if status == 0 {
		t.Fatalf("corrupt deb must fail:\n%s", out)
	}
}
