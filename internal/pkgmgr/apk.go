package pkgmgr

import (
	"archive/tar"
	"bytes"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/simos"
	"repro/internal/vfs"
)

// APK format: a tar archive whose first member is .PKGINFO (key = value
// lines) followed by the package files — close enough to the real .apk
// (which is three concatenated gzipped tar segments) that parsing exercises
// the same machinery.

// BuildAPK encodes a package.
func BuildAPK(p *Package) ([]byte, error) {
	var buf bytes.Buffer
	tw := tar.NewWriter(&buf)
	var info strings.Builder
	fmt.Fprintf(&info, "pkgname = %s\n", p.Name)
	fmt.Fprintf(&info, "pkgver = %s\n", p.Version)
	fmt.Fprintf(&info, "size = %d\n", p.Size)
	for _, d := range p.Depends {
		fmt.Fprintf(&info, "depend = %s\n", d)
	}
	if p.Trigger != "" {
		fmt.Fprintf(&info, "triggers = %s\n", p.Trigger)
	}
	if p.PostInstall != "" {
		fmt.Fprintf(&info, "postinstall = %s\n", encodeScript(p.PostInstall))
	}
	hdr := &tar.Header{Name: ".PKGINFO", Mode: 0o644, Size: int64(info.Len()), Typeflag: tar.TypeReg}
	if err := tw.WriteHeader(hdr); err != nil {
		return nil, err
	}
	io.WriteString(tw, info.String())
	if err := writeFileSpecs(tw, p.Files); err != nil {
		return nil, err
	}
	if err := tw.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// ParseAPK decodes a package.
func ParseAPK(blob []byte) (*Package, error) {
	tr := tar.NewReader(bytes.NewReader(blob))
	p := &Package{}
	for {
		hdr, err := tr.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("pkgmgr: apk: %w", err)
		}
		if hdr.Name == ".PKGINFO" {
			data, _ := io.ReadAll(tr)
			parsePkginfo(p, string(data))
			continue
		}
		f, err := specFromTar(hdr, tr)
		if err != nil {
			return nil, err
		}
		p.Files = append(p.Files, f)
	}
	if p.Name == "" {
		return nil, fmt.Errorf("pkgmgr: apk: missing .PKGINFO")
	}
	return p, nil
}

func parsePkginfo(p *Package, text string) {
	for _, line := range strings.Split(text, "\n") {
		k, v, ok := strings.Cut(line, " = ")
		if !ok {
			continue
		}
		switch k {
		case "pkgname":
			p.Name = v
		case "pkgver":
			p.Version = v
		case "size":
			fmt.Sscanf(v, "%d", &p.Size)
		case "depend":
			p.Depends = append(p.Depends, v)
		case "triggers":
			p.Trigger = v
		case "postinstall":
			p.PostInstall = decodeScript(v)
		}
	}
}

// encodeScript flattens a script into one .PKGINFO line.
func encodeScript(s string) string { return strings.ReplaceAll(s, "\n", "\\n") }

func decodeScript(s string) string { return strings.ReplaceAll(s, "\\n", "\n") }

// writeFileSpecs emits FileSpecs as tar members (shared with deb).
func writeFileSpecs(tw *tar.Writer, files []FileSpec) error {
	for _, f := range files {
		hdr := &tar.Header{
			Name: strings.TrimPrefix(f.Path, "/"),
			Mode: int64(f.Mode), Uid: f.UID, Gid: f.GID,
		}
		switch f.Type {
		case vfs.TypeDir:
			hdr.Typeflag = tar.TypeDir
			hdr.Name += "/"
		case vfs.TypeRegular:
			hdr.Typeflag = tar.TypeReg
			hdr.Size = int64(len(f.Data))
		case vfs.TypeSymlink:
			hdr.Typeflag = tar.TypeSymlink
			hdr.Linkname = f.Target
		case vfs.TypeCharDev:
			hdr.Typeflag = tar.TypeChar
			hdr.Devmajor, hdr.Devminor = int64(f.Major), int64(f.Minor)
		case vfs.TypeBlockDev:
			hdr.Typeflag = tar.TypeBlock
			hdr.Devmajor, hdr.Devminor = int64(f.Major), int64(f.Minor)
		case vfs.TypeFIFO:
			hdr.Typeflag = tar.TypeFifo
		}
		if err := tw.WriteHeader(hdr); err != nil {
			return err
		}
		if f.Type == vfs.TypeRegular {
			if _, err := tw.Write(f.Data); err != nil {
				return err
			}
		}
	}
	return nil
}

// specFromTar decodes one tar member into a FileSpec (shared with deb).
func specFromTar(hdr *tar.Header, tr *tar.Reader) (FileSpec, error) {
	f := FileSpec{
		Path: "/" + strings.Trim(hdr.Name, "/"),
		Mode: uint32(hdr.Mode) & 0o7777,
		UID:  hdr.Uid, GID: hdr.Gid,
	}
	switch hdr.Typeflag {
	case tar.TypeDir:
		f.Type = vfs.TypeDir
	case tar.TypeReg:
		f.Type = vfs.TypeRegular
		data, err := io.ReadAll(tr)
		if err != nil {
			return f, err
		}
		f.Data = data
	case tar.TypeSymlink:
		f.Type = vfs.TypeSymlink
		f.Target = hdr.Linkname
	case tar.TypeChar:
		f.Type = vfs.TypeCharDev
		f.Major, f.Minor = uint32(hdr.Devmajor), uint32(hdr.Devminor)
	case tar.TypeBlock:
		f.Type = vfs.TypeBlockDev
		f.Major, f.Minor = uint32(hdr.Devmajor), uint32(hdr.Devminor)
	case tar.TypeFifo:
		f.Type = vfs.TypeFIFO
	}
	return f, nil
}

// apkInstalledDB is where apk records installed packages.
const apkInstalledDB = "/lib/apk/db/installed"

// APKBinary builds the /sbin/apk executable bound to a repository.
func APKBinary(repo *Repo) *simos.Binary {
	return &simos.Binary{
		Name:   "apk",
		Static: false, // apk links against musl dynamically
		Main: func(ctx *simos.ExecCtx) int {
			args := ctx.Argv[1:]
			if len(args) == 0 {
				fmt.Fprintln(ctx.Stderr, "apk: usage: apk add PKG...")
				return 1
			}
			switch args[0] {
			case "add":
				return apkAdd(ctx, repo, filterFlags(args[1:]))
			case "update":
				fmt.Fprintf(ctx.Stdout, "fetch %s/x86_64/APKINDEX.tar.gz\n", repo.URL)
				fmt.Fprintln(ctx.Stdout, "OK: index updated")
				return 0
			case "info":
				for _, n := range repo.Names() {
					fmt.Fprintln(ctx.Stdout, n)
				}
				return 0
			}
			fmt.Fprintf(ctx.Stderr, "apk: unknown command %q\n", args[0])
			return 1
		},
	}
}

func filterFlags(args []string) []string {
	var out []string
	for _, a := range args {
		if !strings.HasPrefix(a, "-") {
			out = append(out, a)
		}
	}
	return out
}

func apkAdd(ctx *simos.ExecCtx, repo *Repo, pkgs []string) int {
	p := ctx.Proc
	// Fig. 1a lines 7-8: two index fetches.
	fmt.Fprintf(ctx.Stdout, "fetch %s/main/x86_64/APKINDEX.tar.gz\n", repo.URL)
	fmt.Fprintf(ctx.Stdout, "fetch %s/community/x86_64/APKINDEX.tar.gz\n", repo.URL)

	installed := readInstalledDB(p, apkInstalledDB)
	order, err := repo.Resolve(pkgs, installed)
	if err != nil {
		fmt.Fprintf(ctx.Stderr, "ERROR: %v\n", err)
		return 1
	}
	var triggers []string
	totalKiB := 0
	for i, meta := range order {
		blob, ok := repo.Fetch(meta.Name)
		if !ok {
			fmt.Fprintf(ctx.Stderr, "ERROR: unable to fetch %s\n", meta.Name)
			return 1
		}
		pkg, err := ParseAPK(blob)
		if err != nil {
			fmt.Fprintf(ctx.Stderr, "ERROR: %s: %v\n", meta.Name, err)
			return 1
		}
		fmt.Fprintf(ctx.Stdout, "(%d/%d) Installing %s (%s)\n", i+1, len(order), pkg.Name, pkg.Version)
		if msg := extractFiles(ctx, pkg.Files, extractOptions{Tool: "apk"}); msg != "" {
			fmt.Fprintf(ctx.Stderr, "ERROR: %s: %s\n", pkg.Name, msg)
			return 1
		}
		if status := runScript(ctx, pkg.PostInstall); status != 0 {
			fmt.Fprintf(ctx.Stderr, "ERROR: %s: post-install script failed (%d)\n", pkg.Name, status)
			return 1
		}
		if pkg.Trigger != "" {
			triggers = append(triggers, pkg.Trigger)
		}
		appendInstalledDB(p, apkInstalledDB, pkg.Name)
		installed[pkg.Name] = true
		totalKiB += pkg.Size
	}
	sort.Strings(triggers)
	for _, t := range triggers {
		fmt.Fprintf(ctx.Stdout, "Executing %s\n", t)
	}
	fmt.Fprintf(ctx.Stdout, "OK: %d MiB in %d packages\n",
		(totalKiB+1023)/1024+7, len(installed))
	return 0
}
