package tarutil

import (
	"testing"

	"repro/internal/errno"
	"repro/internal/vfs"
)

func buildTree(t *testing.T) *vfs.FS {
	t.Helper()
	fs := vfs.New()
	rc := vfs.RootContext()
	fs.MkdirAll(rc, "/etc", 0o755, 0, 0)
	fs.WriteFile(rc, "/etc/passwd", []byte("root:x:0:0\n"), 0o644, 0, 0)
	fs.MkdirAll(rc, "/var/empty/sshd", 0o711, 74, 74)
	fs.WriteFile(rc, "/usr-bin-ssh", []byte("ELF"), 0o755, 0, 0)
	fs.Symlink(rc, "/etc/passwd", "/etc/link", 0, 0)
	fs.Mknod(rc, "/null", vfs.TypeCharDev, 0o666, vfs.Makedev(1, 3), 0, 0)
	fs.SetXattr(rc, "/usr-bin-ssh", "security.capability", []byte{0x01}, false)
	return fs
}

func TestSnapshotPackUnpackRoundTrip(t *testing.T) {
	src := buildTree(t)
	layer, err := PackFS(src)
	if err != nil {
		t.Fatalf("pack: %v", err)
	}
	dst := vfs.New()
	if err := Unpack(dst, layer); err != nil {
		t.Fatalf("unpack: %v", err)
	}
	rc := vfs.RootContext()
	st, e := dst.Stat(rc, "/var/empty/sshd", true)
	if e != errno.OK || st.UID != 74 || st.GID != 74 || st.Mode != 0o711 {
		t.Fatalf("ownership lost: %+v %v", st, e)
	}
	data, e := dst.ReadFile(rc, "/etc/passwd")
	if e != errno.OK || string(data) != "root:x:0:0\n" {
		t.Fatalf("content: %q %v", data, e)
	}
	target, e := dst.Readlink(rc, "/etc/link")
	if e != errno.OK || target != "/etc/passwd" {
		t.Fatalf("symlink: %q %v", target, e)
	}
	dev, e := dst.Stat(rc, "/null", false)
	if e != errno.OK || dev.Type != vfs.TypeCharDev || dev.Rdev.Major() != 1 {
		t.Fatalf("device: %+v %v", dev, e)
	}
	v, e := dst.GetXattr(rc, "/usr-bin-ssh", "security.capability", false)
	if e != errno.OK || len(v) != 1 || v[0] != 1 {
		t.Fatalf("xattr: %v %v", v, e)
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	a, _ := PackFS(buildTree(t))
	b, _ := PackFS(buildTree(t))
	// Mtimes come from independent clocks; compare only entry names via
	// re-snapshot.
	ea, _ := Snapshot(buildTree(t))
	eb, _ := Snapshot(buildTree(t))
	if len(ea) != len(eb) {
		t.Fatalf("entry counts differ: %d %d", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i].Path != eb[i].Path {
			t.Fatalf("entry %d: %s vs %s", i, ea[i].Path, eb[i].Path)
		}
	}
	_ = a
	_ = b
}

func TestWhiteoutDeletes(t *testing.T) {
	fs := vfs.New()
	rc := vfs.RootContext()
	fs.MkdirAll(rc, "/etc", 0o755, 0, 0)
	fs.WriteFile(rc, "/etc/old", []byte("x"), 0o644, 0, 0)
	// A layer with a whiteout for /etc/old.
	layer, err := Pack([]Entry{{
		Path: "/etc/" + WhiteoutPrefix + "old",
		Stat: vfs.Stat{Type: vfs.TypeRegular},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := Unpack(fs, layer); err != nil {
		t.Fatalf("unpack: %v", err)
	}
	if fs.Exists(rc, "/etc/old") {
		t.Fatal("whiteout did not delete")
	}
}

func TestOpaqueWhiteout(t *testing.T) {
	fs := vfs.New()
	rc := vfs.RootContext()
	fs.MkdirAll(rc, "/data/sub", 0o755, 0, 0)
	fs.WriteFile(rc, "/data/a", []byte("x"), 0o644, 0, 0)
	fs.WriteFile(rc, "/data/sub/b", []byte("x"), 0o644, 0, 0)
	layer, _ := Pack([]Entry{{
		Path: "/data/" + WhiteoutOpaque,
		Stat: vfs.Stat{Type: vfs.TypeRegular},
	}})
	if err := Unpack(fs, layer); err != nil {
		t.Fatalf("unpack: %v", err)
	}
	if fs.Exists(rc, "/data/a") || fs.Exists(rc, "/data/sub") {
		t.Fatal("opaque whiteout did not clear directory")
	}
	if !fs.Exists(rc, "/data") {
		t.Fatal("opaque whiteout removed the directory itself")
	}
}

func TestUnpackOverwritesExisting(t *testing.T) {
	fs := vfs.New()
	rc := vfs.RootContext()
	fs.WriteFile(rc, "/f", []byte("old"), 0o600, 5, 5)
	layer, _ := Pack([]Entry{{
		Path: "/f",
		Stat: vfs.Stat{Type: vfs.TypeRegular, Mode: 0o644, UID: 0, GID: 0},
		Data: []byte("new"),
	}})
	if err := Unpack(fs, layer); err != nil {
		t.Fatal(err)
	}
	data, _ := fs.ReadFile(rc, "/f")
	st, _ := fs.Stat(rc, "/f", false)
	if string(data) != "new" || st.UID != 0 || st.Mode != 0o644 {
		t.Fatalf("overwrite: %q %+v", data, st)
	}
}

func TestDiffAddChangeDelete(t *testing.T) {
	base := vfs.New()
	rc := vfs.RootContext()
	base.MkdirAll(rc, "/etc", 0o755, 0, 0)
	base.WriteFile(rc, "/etc/keep", []byte("same"), 0o644, 0, 0)
	base.WriteFile(rc, "/etc/change", []byte("v1"), 0o644, 0, 0)
	base.WriteFile(rc, "/etc/delete", []byte("bye"), 0o644, 0, 0)
	lower, _ := Snapshot(base)

	upper := vfs.New()
	upper.MkdirAll(rc, "/etc", 0o755, 0, 0)
	upper.WriteFile(rc, "/etc/keep", []byte("same"), 0o644, 0, 0)
	upper.WriteFile(rc, "/etc/change", []byte("v2"), 0o644, 0, 0)
	upper.WriteFile(rc, "/etc/new", []byte("hi"), 0o644, 0, 0)
	up, _ := Snapshot(upper)

	diff := Diff(lower, up)
	got := map[string]bool{}
	for _, d := range diff {
		got[d.Path] = true
	}
	if !got["/etc/change"] || !got["/etc/new"] || !got["/etc/"+WhiteoutPrefix+"delete"] {
		t.Fatalf("diff paths: %v", got)
	}
	if got["/etc/keep"] {
		t.Fatal("unchanged file must not appear in diff")
	}
	// Applying the diff over the base must yield the upper state.
	layer, err := Pack(diff)
	if err != nil {
		t.Fatal(err)
	}
	if err := Unpack(base, layer); err != nil {
		t.Fatal(err)
	}
	data, _ := base.ReadFile(rc, "/etc/change")
	if string(data) != "v2" {
		t.Fatalf("after apply: %q", data)
	}
	if base.Exists(rc, "/etc/delete") {
		t.Fatal("deleted file survived layer application")
	}
	if !base.Exists(rc, "/etc/new") {
		t.Fatal("new file missing after layer application")
	}
}

func TestDiffOwnershipChangeDetected(t *testing.T) {
	a := vfs.New()
	rc := vfs.RootContext()
	a.WriteFile(rc, "/f", []byte("x"), 0o644, 0, 0)
	la, _ := Snapshot(a)
	b := vfs.New()
	b.WriteFile(rc, "/f", []byte("x"), 0o644, 74, 74)
	lb, _ := Snapshot(b)
	diff := Diff(la, lb)
	if len(diff) != 1 || diff[0].Path != "/f" {
		t.Fatalf("ownership-only change: %+v", diff)
	}
}

// Regression: an instruction that only changes an extended attribute (the
// setcap pattern) must commit a non-empty layer.
func TestDiffXattrOnlyChange(t *testing.T) {
	rc := vfs.RootContext()
	mk := func() *vfs.FS {
		fs := vfs.New()
		fs.WriteFile(rc, "/bin", []byte("ELF"), 0o755, 0, 0)
		return fs
	}
	a := mk()
	la, _ := Snapshot(a)
	b := mk()
	b.SetXattr(rc, "/bin", "security.capability", []byte{0x01}, false)
	lb, _ := Snapshot(b)
	diff := Diff(la, lb)
	if len(diff) != 1 || diff[0].Path != "/bin" {
		t.Fatalf("xattr-only change: %+v", diff)
	}
	// And removing the xattr is a change too.
	if diff := Diff(lb, la); len(diff) != 1 {
		t.Fatalf("xattr removal: %+v", diff)
	}
	// The committed layer round-trips the attribute.
	layer, err := Pack(diff)
	if err != nil {
		t.Fatal(err)
	}
	dst := mk()
	dst.SetXattr(rc, "/bin", "security.capability", []byte{0x01}, false)
	if err := Unpack(dst, layer); err != nil {
		t.Fatal(err)
	}
}

// Regression: deleting a directory emits exactly one whiteout (for the
// topmost deleted path), not a whiteout per descendant — and that single
// whiteout still removes the whole subtree when the layer is applied.
func TestDiffDeletedDirSingleWhiteout(t *testing.T) {
	rc := vfs.RootContext()
	base := vfs.New()
	base.MkdirAll(rc, "/gone/sub", 0o755, 0, 0)
	base.WriteFile(rc, "/gone/f", []byte("x"), 0o644, 0, 0)
	base.WriteFile(rc, "/gone/sub/g", []byte("y"), 0o644, 0, 0)
	base.WriteFile(rc, "/keep", []byte("z"), 0o644, 0, 0)
	lower, _ := Snapshot(base)

	upper := vfs.New()
	upper.WriteFile(rc, "/keep", []byte("z"), 0o644, 0, 0)
	up, _ := Snapshot(upper)

	diff := Diff(lower, up)
	if len(diff) != 1 || diff[0].Path != "/"+WhiteoutPrefix+"gone" {
		t.Fatalf("deleted dir diff: %+v", diff)
	}
	// Round trip: applying the layer onto the base yields the upper state.
	layer, err := Pack(diff)
	if err != nil {
		t.Fatal(err)
	}
	if err := Unpack(base, layer); err != nil {
		t.Fatal(err)
	}
	if base.Exists(rc, "/gone") || base.Exists(rc, "/gone/sub/g") {
		t.Fatal("whiteout did not remove the deleted directory tree")
	}
	if !base.Exists(rc, "/keep") {
		t.Fatal("whiteout removed an unrelated file")
	}
}

func TestUnpackCreatesMissingParents(t *testing.T) {
	fs := vfs.New()
	layer, _ := Pack([]Entry{{
		Path: "/deep/nested/path/file",
		Stat: vfs.Stat{Type: vfs.TypeRegular, Mode: 0o644},
		Data: []byte("x"),
	}})
	if err := Unpack(fs, layer); err != nil {
		t.Fatal(err)
	}
	if !fs.Exists(vfs.RootContext(), "/deep/nested/path/file") {
		t.Fatal("nested file missing")
	}
}

func TestHardLinkInLayer(t *testing.T) {
	src := vfs.New()
	rc := vfs.RootContext()
	src.WriteFile(rc, "/a", []byte("shared"), 0o644, 0, 0)
	src.Link(rc, "/a", "/b")
	// Snapshot sees two regular entries (tar hard-link detection is not
	// needed for correctness; content is duplicated).
	layer, err := PackFS(src)
	if err != nil {
		t.Fatal(err)
	}
	dst := vfs.New()
	if err := Unpack(dst, layer); err != nil {
		t.Fatal(err)
	}
	da, _ := dst.ReadFile(rc, "/a")
	db, _ := dst.ReadFile(rc, "/b")
	if string(da) != "shared" || string(db) != "shared" {
		t.Fatalf("hard link contents: %q %q", da, db)
	}
}
