// Package tarutil packs simulated filesystems into tar layers and applies
// tar layers back onto filesystems, with OCI-style whiteout handling. It is
// the layer format of internal/image (FROM pulls, layer commits) and the
// payload format of apk/deb packages in internal/pkgmgr.
//
// Unpacking is where root emulation earns its keep in real builders:
// extracting as the kernel (RootContext) preserves recorded ownership the
// way a privileged tar would, while extracting as a process (the package
// managers' path) goes through chown and fails or lies accordingly.
package tarutil

import (
	"archive/tar"
	"bytes"
	"fmt"
	"io"
	"path"
	"sort"
	"strings"

	"repro/internal/errno"
	"repro/internal/vfs"
)

// WhiteoutPrefix marks a deleted file in a layer (OCI image spec).
const WhiteoutPrefix = ".wh."

// WhiteoutOpaque marks a directory whose lower contents are hidden.
const WhiteoutOpaque = ".wh..wh..opq"

// Entry is one file captured from or destined for a filesystem.
type Entry struct {
	Path   string // absolute, clean
	Stat   vfs.Stat
	Data   []byte // regular files
	Target string // symlinks
	Xattrs map[string]string
}

// Snapshot walks the filesystem and returns all entries sorted by path,
// directories first on ties — a deterministic serialisation used for layer
// digests and diffing.
func Snapshot(fs *vfs.FS) ([]Entry, error) {
	rc := vfs.RootContext()
	var out []Entry
	var walk func(dir string) error
	walk = func(dir string) error {
		ents, e := fs.ReadDir(rc, dir)
		if e != errno.OK {
			return fmt.Errorf("tarutil: readdir %s: %v", dir, e)
		}
		for _, de := range ents {
			p := path.Join(dir, de.Name)
			st, e := fs.Stat(rc, p, false)
			if e != errno.OK {
				return fmt.Errorf("tarutil: stat %s: %v", p, e)
			}
			ent := Entry{Path: p, Stat: st}
			switch st.Type {
			case vfs.TypeRegular:
				data, e := fs.ReadFile(rc, p)
				if e != errno.OK {
					return fmt.Errorf("tarutil: read %s: %v", p, e)
				}
				ent.Data = data
			case vfs.TypeSymlink:
				t, e := fs.Readlink(rc, p)
				if e != errno.OK {
					return fmt.Errorf("tarutil: readlink %s: %v", p, e)
				}
				ent.Target = t
			}
			if names, e := fs.ListXattr(rc, p, false); e == errno.OK && len(names) > 0 {
				ent.Xattrs = map[string]string{}
				for _, n := range names {
					if v, e := fs.GetXattr(rc, p, n, false); e == errno.OK {
						ent.Xattrs[n] = string(v)
					}
				}
			}
			out = append(out, ent)
			if st.Type == vfs.TypeDir {
				if err := walk(p); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := walk("/"); err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// Pack serialises entries into a tar stream.
func Pack(entries []Entry) ([]byte, error) {
	var buf bytes.Buffer
	tw := tar.NewWriter(&buf)
	for _, ent := range entries {
		hdr := &tar.Header{
			Name:    strings.TrimPrefix(ent.Path, "/"),
			Mode:    int64(ent.Stat.Mode),
			Uid:     ent.Stat.UID,
			Gid:     ent.Stat.GID,
			ModTime: ent.Stat.Mtime,
		}
		if len(ent.Xattrs) > 0 {
			hdr.PAXRecords = map[string]string{}
			for k, v := range ent.Xattrs {
				hdr.PAXRecords["SCHILY.xattr."+k] = v
			}
		}
		switch ent.Stat.Type {
		case vfs.TypeDir:
			hdr.Typeflag = tar.TypeDir
			hdr.Name += "/"
		case vfs.TypeRegular:
			hdr.Typeflag = tar.TypeReg
			hdr.Size = int64(len(ent.Data))
		case vfs.TypeSymlink:
			hdr.Typeflag = tar.TypeSymlink
			hdr.Linkname = ent.Target
		case vfs.TypeCharDev:
			hdr.Typeflag = tar.TypeChar
			hdr.Devmajor = int64(ent.Stat.Rdev.Major())
			hdr.Devminor = int64(ent.Stat.Rdev.Minor())
		case vfs.TypeBlockDev:
			hdr.Typeflag = tar.TypeBlock
			hdr.Devmajor = int64(ent.Stat.Rdev.Major())
			hdr.Devminor = int64(ent.Stat.Rdev.Minor())
		case vfs.TypeFIFO:
			hdr.Typeflag = tar.TypeFifo
		case vfs.TypeSocket:
			// tar has no socket type; skip, as GNU tar does.
			continue
		}
		if err := tw.WriteHeader(hdr); err != nil {
			return nil, fmt.Errorf("tarutil: header %s: %w", ent.Path, err)
		}
		if ent.Stat.Type == vfs.TypeRegular {
			if _, err := tw.Write(ent.Data); err != nil {
				return nil, fmt.Errorf("tarutil: body %s: %w", ent.Path, err)
			}
		}
	}
	if err := tw.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// PackFS is Snapshot followed by Pack.
func PackFS(fs *vfs.FS) ([]byte, error) {
	ents, err := Snapshot(fs)
	if err != nil {
		return nil, err
	}
	return Pack(ents)
}

// Unpack applies a tar layer onto fs as the kernel (privileged): ownership,
// modes, device nodes and xattrs land exactly as recorded, and whiteouts
// delete. This is the image-store path — equivalent to unpacking as root.
func Unpack(fs *vfs.FS, layer []byte) error {
	rc := vfs.RootContext()
	tr := tar.NewReader(bytes.NewReader(layer))
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("tarutil: %w", err)
		}
		name := "/" + strings.Trim(hdr.Name, "/")
		base := path.Base(name)
		dir := path.Dir(name)

		if base == WhiteoutOpaque {
			// Remove everything under dir, keep dir itself.
			ents, e := fs.ReadDir(rc, dir)
			if e == errno.OK {
				for _, de := range ents {
					removeAll(fs, path.Join(dir, de.Name))
				}
			}
			continue
		}
		if strings.HasPrefix(base, WhiteoutPrefix) {
			removeAll(fs, path.Join(dir, strings.TrimPrefix(base, WhiteoutPrefix)))
			continue
		}

		// Replace any existing non-directory entry.
		if st, e := fs.Stat(rc, name, false); e == errno.OK {
			if !(st.Type == vfs.TypeDir && hdr.Typeflag == tar.TypeDir) {
				removeAll(fs, name)
			}
		}
		fs.MkdirAll(rc, dir, 0o755, 0, 0)

		mode := uint32(hdr.Mode) & 0o7777
		switch hdr.Typeflag {
		case tar.TypeDir:
			if e := fs.Mkdir(rc, name, mode, hdr.Uid, hdr.Gid); e != errno.OK && e != errno.EEXIST {
				return fmt.Errorf("tarutil: mkdir %s: %v", name, e)
			}
			if e := fs.Chown(rc, name, hdr.Uid, hdr.Gid, false); e != errno.OK {
				return fmt.Errorf("tarutil: chown %s: %v", name, e)
			}
			fs.Chmod(rc, name, mode, false)
		case tar.TypeReg:
			data, err := io.ReadAll(tr)
			if err != nil {
				return fmt.Errorf("tarutil: read %s: %w", name, err)
			}
			if e := fs.WriteFile(rc, name, data, mode, hdr.Uid, hdr.Gid); e != errno.OK {
				return fmt.Errorf("tarutil: write %s: %v", name, e)
			}
			fs.Chown(rc, name, hdr.Uid, hdr.Gid, false)
			fs.Chmod(rc, name, mode, false)
		case tar.TypeSymlink:
			if e := fs.Symlink(rc, hdr.Linkname, name, hdr.Uid, hdr.Gid); e != errno.OK {
				return fmt.Errorf("tarutil: symlink %s: %v", name, e)
			}
		case tar.TypeLink:
			if e := fs.Link(rc, "/"+strings.Trim(hdr.Linkname, "/"), name); e != errno.OK {
				return fmt.Errorf("tarutil: link %s: %v", name, e)
			}
		case tar.TypeChar, tar.TypeBlock:
			typ := vfs.TypeCharDev
			if hdr.Typeflag == tar.TypeBlock {
				typ = vfs.TypeBlockDev
			}
			dev := vfs.Makedev(uint32(hdr.Devmajor), uint32(hdr.Devminor))
			if e := fs.Mknod(rc, name, typ, mode, dev, hdr.Uid, hdr.Gid); e != errno.OK {
				return fmt.Errorf("tarutil: mknod %s: %v", name, e)
			}
		case tar.TypeFifo:
			if e := fs.Mknod(rc, name, vfs.TypeFIFO, mode, 0, hdr.Uid, hdr.Gid); e != errno.OK {
				return fmt.Errorf("tarutil: mkfifo %s: %v", name, e)
			}
		}
		for k, v := range hdr.PAXRecords {
			if attr, ok := strings.CutPrefix(k, "SCHILY.xattr."); ok {
				fs.SetXattr(rc, name, attr, []byte(v), false)
			}
		}
	}
}

func removeAll(fs *vfs.FS, p string) {
	rc := vfs.RootContext()
	st, e := fs.Stat(rc, p, false)
	if e != errno.OK {
		return
	}
	if st.Type == vfs.TypeDir {
		if ents, e := fs.ReadDir(rc, p); e == errno.OK {
			for _, de := range ents {
				removeAll(fs, path.Join(p, de.Name))
			}
		}
		fs.Rmdir(rc, p)
		return
	}
	fs.Unlink(rc, p)
}

// Diff computes the layer entries present in upper but not lower (changed
// or added), plus whiteout entries for paths deleted from lower — the
// commit step of a layered build.
func Diff(lower, upper []Entry) []Entry {
	lowerByPath := make(map[string]*Entry, len(lower))
	for i := range lower {
		lowerByPath[lower[i].Path] = &lower[i]
	}
	upperPaths := make(map[string]bool, len(upper))
	var out []Entry
	for _, u := range upper {
		upperPaths[u.Path] = true
		l, ok := lowerByPath[u.Path]
		if !ok || !sameEntry(*l, u) {
			out = append(out, u)
		}
	}
	for _, l := range lower {
		if !upperPaths[l.Path] {
			dir, base := path.Split(l.Path)
			out = append(out, Entry{
				Path: path.Join(dir, WhiteoutPrefix+base),
				Stat: vfs.Stat{Type: vfs.TypeRegular, Mode: 0},
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

func sameEntry(a, b Entry) bool {
	if a.Stat.Type != b.Stat.Type || a.Stat.Mode != b.Stat.Mode ||
		a.Stat.UID != b.Stat.UID || a.Stat.GID != b.Stat.GID ||
		a.Target != b.Target || a.Stat.Rdev != b.Stat.Rdev {
		return false
	}
	return bytes.Equal(a.Data, b.Data)
}
