// Package tarutil packs simulated filesystems into tar layers and applies
// tar layers back onto filesystems, with OCI-style whiteout handling. It is
// the layer format of internal/image (FROM pulls, layer commits) and the
// payload format of apk/deb packages in internal/pkgmgr.
//
// Unpacking is where root emulation earns its keep in real builders:
// extracting as the kernel (RootContext) preserves recorded ownership the
// way a privileged tar would, while extracting as a process (the package
// managers' path) goes through chown and fails or lies accordingly.
package tarutil

import (
	"archive/tar"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"path"
	"sort"
	"strings"

	"repro/internal/errno"
	"repro/internal/vfs"
)

// WhiteoutPrefix marks a deleted file in a layer (OCI image spec).
const WhiteoutPrefix = ".wh."

// WhiteoutOpaque marks a directory whose lower contents are hidden.
const WhiteoutOpaque = ".wh..wh..opq"

// Entry is one file captured from or destined for a filesystem.
type Entry struct {
	Path   string // absolute, clean
	Stat   vfs.Stat
	Data   []byte // regular files
	Target string // symlinks
	Xattrs map[string]string
	Digest string // hex sha256 of Data; "" when not computed
}

// entryFromNode renders a vfs walk node as an Entry. Node data is shared
// with the filesystem, so callers that retain the entry must pass
// copyData.
func entryFromNode(n *vfs.Node, copyData bool) Entry {
	ent := Entry{Path: n.Path, Stat: n.Stat, Data: n.Data, Target: n.Target, Digest: n.Digest}
	if copyData && n.Data != nil {
		ent.Data = append([]byte(nil), n.Data...)
	}
	if len(n.Xattrs) > 0 {
		ent.Xattrs = make(map[string]string, len(n.Xattrs))
		for k, v := range n.Xattrs {
			ent.Xattrs[k] = string(v)
		}
	}
	return ent
}

// pathLess is the canonical entry order: parents before children, siblings
// by name — the order a depth-first walk with sorted directory listings
// produces. It differs from plain string order only for names containing
// bytes below '/'.
func pathLess(a, b string) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		ca, cb := a[i], b[i]
		if ca == cb {
			continue
		}
		if ca == '/' {
			return true
		}
		if cb == '/' {
			return false
		}
		return ca < cb
	}
	return len(a) < len(b)
}

// Snapshot walks the filesystem and returns all entries in canonical order
// (see pathLess) — the full-walk reference serialisation used for layer
// digests and as the oracle the incremental Snapshotter is tested against.
// The walk emits entries already ordered, so no sort pass is needed.
//
//chlint:keyroot
func Snapshot(fs *vfs.FS) ([]Entry, error) {
	var out []Entry
	_, err := fs.WalkSince(0, func(n *vfs.Node) error {
		if n.Path == "/" {
			return nil // the root directory itself is never an entry
		}
		out = append(out, entryFromNode(n, true))
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("tarutil: %w", err)
	}
	return out, nil
}

// Pack serialises entries into a tar stream. The buffer is pre-sized from
// the entry sizes (512-byte header + 512-padded body each) so the encoder
// never re-grows it.
//
//chlint:keyroot
func Pack(entries []Entry) ([]byte, error) {
	size := 2 * 512 // archive terminator
	for i := range entries {
		size += 512 + (len(entries[i].Data)+511)&^511
	}
	buf := bytes.NewBuffer(make([]byte, 0, size))
	tw := tar.NewWriter(buf)
	for _, ent := range entries {
		hdr := &tar.Header{
			Name:    strings.TrimPrefix(ent.Path, "/"),
			Mode:    int64(ent.Stat.Mode),
			Uid:     ent.Stat.UID,
			Gid:     ent.Stat.GID,
			ModTime: ent.Stat.Mtime,
		}
		if len(ent.Xattrs) > 0 {
			hdr.PAXRecords = map[string]string{}
			for k, v := range ent.Xattrs {
				hdr.PAXRecords["SCHILY.xattr."+k] = v
			}
		}
		switch ent.Stat.Type {
		case vfs.TypeDir:
			hdr.Typeflag = tar.TypeDir
			hdr.Name += "/"
		case vfs.TypeRegular:
			hdr.Typeflag = tar.TypeReg
			hdr.Size = int64(len(ent.Data))
		case vfs.TypeSymlink:
			hdr.Typeflag = tar.TypeSymlink
			hdr.Linkname = ent.Target
		case vfs.TypeCharDev:
			hdr.Typeflag = tar.TypeChar
			hdr.Devmajor = int64(ent.Stat.Rdev.Major())
			hdr.Devminor = int64(ent.Stat.Rdev.Minor())
		case vfs.TypeBlockDev:
			hdr.Typeflag = tar.TypeBlock
			hdr.Devmajor = int64(ent.Stat.Rdev.Major())
			hdr.Devminor = int64(ent.Stat.Rdev.Minor())
		case vfs.TypeFIFO:
			hdr.Typeflag = tar.TypeFifo
		case vfs.TypeSocket:
			// tar has no socket type; skip, as GNU tar does.
			continue
		}
		if err := tw.WriteHeader(hdr); err != nil {
			return nil, fmt.Errorf("tarutil: header %s: %w", ent.Path, err)
		}
		if ent.Stat.Type == vfs.TypeRegular {
			if _, err := tw.Write(ent.Data); err != nil {
				return nil, fmt.Errorf("tarutil: body %s: %w", ent.Path, err)
			}
		}
	}
	if err := tw.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// PackFS is Snapshot followed by Pack.
//
//chlint:keyroot
func PackFS(fs *vfs.FS) ([]byte, error) {
	ents, err := Snapshot(fs)
	if err != nil {
		return nil, err
	}
	return Pack(ents)
}

// Unpack applies a tar layer onto fs as the kernel (privileged): ownership,
// modes, device nodes and xattrs land exactly as recorded, and whiteouts
// delete. This is the image-store path — equivalent to unpacking as root.
func Unpack(fs *vfs.FS, layer []byte) error {
	rc := vfs.RootContext()
	tr := tar.NewReader(bytes.NewReader(layer))
	for {
		hdr, err := tr.Next()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return fmt.Errorf("tarutil: %w", err)
		}
		name := "/" + strings.Trim(hdr.Name, "/")
		base := path.Base(name)
		dir := path.Dir(name)

		if base == WhiteoutOpaque {
			// Remove everything under dir, keep dir itself.
			ents, e := fs.ReadDir(rc, dir)
			if e == errno.OK {
				for _, de := range ents {
					removeAll(fs, path.Join(dir, de.Name))
				}
			}
			continue
		}
		if strings.HasPrefix(base, WhiteoutPrefix) {
			removeAll(fs, path.Join(dir, strings.TrimPrefix(base, WhiteoutPrefix)))
			continue
		}

		// Replace any existing non-directory entry.
		if st, e := fs.Stat(rc, name, false); e == errno.OK {
			if !(st.Type == vfs.TypeDir && hdr.Typeflag == tar.TypeDir) {
				removeAll(fs, name)
			}
		}
		fs.MkdirAll(rc, dir, 0o755, 0, 0)

		mode := uint32(hdr.Mode) & 0o7777
		switch hdr.Typeflag {
		case tar.TypeDir:
			if e := fs.Mkdir(rc, name, mode, hdr.Uid, hdr.Gid); e != errno.OK && e != errno.EEXIST {
				return fmt.Errorf("tarutil: mkdir %s: %v", name, e)
			}
			if e := fs.Chown(rc, name, hdr.Uid, hdr.Gid, false); e != errno.OK {
				return fmt.Errorf("tarutil: chown %s: %v", name, e)
			}
			fs.Chmod(rc, name, mode, false)
		case tar.TypeReg:
			data, err := io.ReadAll(tr)
			if err != nil {
				return fmt.Errorf("tarutil: read %s: %w", name, err)
			}
			if e := fs.WriteFile(rc, name, data, mode, hdr.Uid, hdr.Gid); e != errno.OK {
				return fmt.Errorf("tarutil: write %s: %v", name, e)
			}
			fs.Chown(rc, name, hdr.Uid, hdr.Gid, false)
			fs.Chmod(rc, name, mode, false)
		case tar.TypeSymlink:
			if e := fs.Symlink(rc, hdr.Linkname, name, hdr.Uid, hdr.Gid); e != errno.OK {
				return fmt.Errorf("tarutil: symlink %s: %v", name, e)
			}
		case tar.TypeLink:
			if e := fs.Link(rc, "/"+strings.Trim(hdr.Linkname, "/"), name); e != errno.OK {
				return fmt.Errorf("tarutil: link %s: %v", name, e)
			}
		case tar.TypeChar, tar.TypeBlock:
			typ := vfs.TypeCharDev
			if hdr.Typeflag == tar.TypeBlock {
				typ = vfs.TypeBlockDev
			}
			dev := vfs.Makedev(uint32(hdr.Devmajor), uint32(hdr.Devminor))
			if e := fs.Mknod(rc, name, typ, mode, dev, hdr.Uid, hdr.Gid); e != errno.OK {
				return fmt.Errorf("tarutil: mknod %s: %v", name, e)
			}
		case tar.TypeFifo:
			if e := fs.Mknod(rc, name, vfs.TypeFIFO, mode, 0, hdr.Uid, hdr.Gid); e != errno.OK {
				return fmt.Errorf("tarutil: mkfifo %s: %v", name, e)
			}
		}
		for k, v := range hdr.PAXRecords {
			if attr, ok := strings.CutPrefix(k, "SCHILY.xattr."); ok {
				fs.SetXattr(rc, name, attr, []byte(v), false)
			}
		}
	}
}

func removeAll(fs *vfs.FS, p string) {
	rc := vfs.RootContext()
	st, e := fs.Stat(rc, p, false)
	if e != errno.OK {
		return
	}
	if st.Type == vfs.TypeDir {
		if ents, e := fs.ReadDir(rc, p); e == errno.OK {
			for _, de := range ents {
				removeAll(fs, path.Join(p, de.Name))
			}
		}
		fs.Rmdir(rc, p)
		return
	}
	fs.Unlink(rc, p)
}

// Diff computes the layer entries present in upper but not lower (changed
// or added), plus whiteout entries for paths deleted from lower — the
// commit step of a layered build. A deleted directory yields a single
// whiteout for the directory itself; its descendants are implied (Unpack
// removes recursively), matching how real layered builders keep delete
// layers small.
func Diff(lower, upper []Entry) []Entry {
	lowerByPath := make(map[string]*Entry, len(lower))
	for i := range lower {
		lowerByPath[lower[i].Path] = &lower[i]
	}
	upperPaths := make(map[string]bool, len(upper))
	var out []Entry
	for _, u := range upper {
		upperPaths[u.Path] = true
		l, ok := lowerByPath[u.Path]
		if !ok || !sameEntry(*l, u) {
			out = append(out, u)
		}
	}
	deleted := make(map[string]bool)
	for _, l := range lower {
		if !upperPaths[l.Path] {
			deleted[l.Path] = true
		}
	}
	for _, l := range lower {
		if deleted[l.Path] && !deleted[path.Dir(l.Path)] {
			out = append(out, whiteoutFor(l.Path))
		}
	}
	sort.Slice(out, func(i, j int) bool { return pathLess(out[i].Path, out[j].Path) })
	return out
}

// whiteoutFor builds the whiteout entry deleting p.
func whiteoutFor(p string) Entry {
	dir, base := path.Split(p)
	return Entry{
		Path: path.Join(dir, WhiteoutPrefix+base),
		Stat: vfs.Stat{Type: vfs.TypeRegular, Mode: 0},
	}
}

// sameEntry reports whether two entries serialise identically (modulo
// mtime, which layer diffs deliberately ignore). Content is compared by
// digest when both sides carry one — the cached-digest fast path that lets
// Diff skip re-reading unchanged file bytes.
func sameEntry(a, b Entry) bool {
	if a.Stat.Type != b.Stat.Type || a.Stat.Mode != b.Stat.Mode ||
		a.Stat.UID != b.Stat.UID || a.Stat.GID != b.Stat.GID ||
		a.Target != b.Target || a.Stat.Rdev != b.Stat.Rdev {
		return false
	}
	if !sameXattrs(a.Xattrs, b.Xattrs) {
		return false
	}
	if a.Stat.Type != vfs.TypeRegular {
		return true
	}
	if a.Digest == "" && b.Digest == "" {
		return bytes.Equal(a.Data, b.Data)
	}
	return dataDigest(a) == dataDigest(b)
}

func sameXattrs(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

// dataDigest returns the entry's content digest, computing it from Data
// when the entry was built by hand rather than by a snapshot walk.
func dataDigest(e Entry) string {
	if e.Digest != "" {
		return e.Digest
	}
	sum := sha256.Sum256(e.Data)
	return hex.EncodeToString(sum[:])
}
