// Incremental layer commits. A Snapshotter remembers a filesystem's
// serialised state (metadata + content digests, not bytes) together with
// the vfs generation it was observed at; Advance then answers "what
// changed since the last commit" by walking only dirty subtrees, so the
// builder's per-instruction commit costs O(changes) instead of O(tree).
// Snapshot+Diff remain as the full-walk reference implementation; the
// property tests assert the two pipelines produce byte-identical layers.
package tarutil

import (
	"fmt"
	"sort"

	"repro/internal/vfs"
)

// Snapshotter tracks one filesystem's committed state across layer
// commits.
type Snapshotter struct {
	gen     uint64
	entries map[string]Entry           // by path; Data dropped, Digest kept
	kids    map[string]map[string]bool // dir path -> current child names
}

// NewSnapshotter captures fs's current state with one full walk. Later
// Advance calls are incremental.
func NewSnapshotter(fs *vfs.FS) (*Snapshotter, error) {
	s := &Snapshotter{
		entries: make(map[string]Entry),
		kids:    make(map[string]map[string]bool),
	}
	gen, err := fs.WalkSince(0, func(n *vfs.Node) error {
		s.absorb(n)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("tarutil: snapshot: %w", err)
	}
	s.gen = gen
	return s, nil
}

// absorb records a walked node in the tracked state.
func (s *Snapshotter) absorb(n *vfs.Node) {
	if n.Stat.Type == vfs.TypeDir {
		ks := make(map[string]bool, len(n.Children))
		for _, c := range n.Children {
			ks[c] = true
		}
		s.kids[n.Path] = ks
	}
	if n.Path == "/" {
		return
	}
	ent := entryFromNode(n, false)
	ent.Data = nil // state compares by digest; bytes live in the FS
	s.entries[n.Path] = ent
}

// Len returns the number of tracked entries (excluding the root).
func (s *Snapshotter) Len() int { return len(s.entries) }

// Advance observes every change made to fs since the previous Advance (or
// construction) and returns the layer diff: changed and added entries plus
// one whiteout per topmost deleted path, in canonical order — exactly what
// Diff(prev, Snapshot(fs)) would return, at O(changes) cost. The tracked
// state is updated to fs's current contents.
func (s *Snapshotter) Advance(fs *vfs.FS) ([]Entry, error) {
	type dirtyDir struct {
		path string
		kids map[string]bool
	}
	var out []Entry
	var dirs []dirtyDir
	gen, err := fs.WalkSince(s.gen, func(n *vfs.Node) error {
		if n.Stat.Type == vfs.TypeDir {
			ks := make(map[string]bool, len(n.Children))
			for _, c := range n.Children {
				ks[c] = true
			}
			dirs = append(dirs, dirtyDir{n.Path, ks})
		}
		if n.Path == "/" {
			return nil
		}
		ent := entryFromNode(n, false)
		old, existed := s.entries[n.Path]
		if !existed || !sameEntry(old, ent) {
			ent.Data = append([]byte(nil), n.Data...) // escapes into the layer
			out = append(out, ent)
		}
		// A directory replaced by a non-directory keeps its old subtree in
		// prev but not in any dirty directory listing: drop it here and
		// whiteout the orphans, as the reference Diff does.
		if existed && old.Stat.Type == vfs.TypeDir && ent.Stat.Type != vfs.TypeDir {
			for name := range s.kids[n.Path] {
				child := joinChild(n.Path, name)
				s.removeTree(child)
				out = append(out, whiteoutFor(child))
			}
			delete(s.kids, n.Path)
		}
		state := ent
		state.Data = nil
		s.entries[n.Path] = state
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("tarutil: incremental snapshot: %w", err)
	}
	s.gen = gen

	// Deletions: a dirty directory whose previous child set lost names.
	// Only the topmost deleted path gets a whiteout; removeTree forgets
	// the rest.
	for _, d := range dirs {
		prev := s.kids[d.path]
		for name := range prev {
			if !d.kids[name] {
				child := joinChild(d.path, name)
				s.removeTree(child)
				out = append(out, whiteoutFor(child))
			}
		}
		s.kids[d.path] = d.kids
	}
	sort.Slice(out, func(i, j int) bool { return pathLess(out[i].Path, out[j].Path) })
	return out, nil
}

// removeTree forgets p and everything under it.
func (s *Snapshotter) removeTree(p string) {
	delete(s.entries, p)
	for name := range s.kids[p] {
		s.removeTree(joinChild(p, name))
	}
	delete(s.kids, p)
}

func joinChild(dir, name string) string {
	if dir == "/" {
		return "/" + name
	}
	return dir + "/" + name
}

// ApplyLayer unpacks a packed layer onto fs and folds the resulting
// changes into the tracked state — the cached-layer replay path, which
// previously re-walked the whole tree after applying an already-known
// diff. Unpack dirties exactly the nodes it touches, so the reconciliation
// is an Advance whose diff is discarded: O(layer), no divergence risk.
func (s *Snapshotter) ApplyLayer(fs *vfs.FS, layer []byte) error {
	if err := Unpack(fs, layer); err != nil {
		return err
	}
	_, err := s.Advance(fs)
	return err
}
